(* Cross-strategy equivalence: randomized queries over randomized small
   documents must produce byte-identical serialized results under every
   engine configuration.  This is the repository's main correctness
   property: the interpreter is the executable specification and the
   optimized algebraic plans must agree with it. *)

let strategies = Xqc.all_strategies

(* -------- random document generator -------- *)

let doc_gen : Xqc.Node.t QCheck.Gen.t =
  let open QCheck.Gen in
  (* numeric-only data values: the Section 6 join algorithms deliberately
     turn "untyped value does not cast" errors into non-matches (the
     paper's semantics), so non-numeric ages/amounts would make the
     interpreter error where the hash join returns no match *)
  let value = oneofl [ "1"; "2"; "3"; "10"; "1.5"; "0" ] in
  let person i =
    value >>= fun age ->
    oneofl [ "a"; "b"; "c" ] >>= fun name ->
    int_bound 2 >>= fun pets ->
    return
      (Printf.sprintf
         {|<person id="p%d" age="%s"><name>%s</name>%s</person>|} i age name
         (String.concat "" (List.init pets (fun p -> Printf.sprintf "<pet>x%d</pet>" p))))
  in
  let order _i =
    value >>= fun amount ->
    int_bound 4 >>= fun who ->
    return (Printf.sprintf {|<order buyer="p%d"><amount>%s</amount></order>|} who amount)
  in
  int_range 0 5 >>= fun np ->
  int_range 0 6 >>= fun no ->
  let rec seq f n acc =
    if n = 0 then return (List.rev acc)
    else f n >>= fun x -> seq f (n - 1) (x :: acc)
  in
  seq person np [] >>= fun persons ->
  seq order no [] >>= fun orders ->
  return
    (Xqc.parse_document
       (Printf.sprintf "<db><people>%s</people><orders>%s</orders></db>"
          (String.concat "" persons) (String.concat "" orders)))

(* -------- query pool -------- *)

let queries =
  [|
    "count($d//person)";
    "for $p in $d//person return $p/name/text()";
    "for $p in $d//person where $p/@age > 2 return $p/@id";
    "for $p in $d//person, $o in $d//order where $o/@buyer = $p/@id return <hit>{$p/name/text()}</hit>";
    "for $p in $d//person let $os := (for $o in $d//order where $o/@buyer = $p/@id return $o) return <p n=\"{$p/name/text()}\">{count($os)}</p>";
    "for $p in $d//person let $os := (for $o in $d//order where $o/amount < $p/@age return $o) return count($os)";
    "for $p in $d//person return <r>{for $o in $d//order where $o/@buyer = $p/@id return $o/amount/text()}</r>";
    "for $p in $d//person order by $p/@age descending return $p/name/text()";
    "for $p in $d//person[@age >= 2] return count($p/pet)";
    "sum(for $o in $d//order return $o/amount[. castable as xs:double] cast as xs:double?)";
    "for $x in $d//pet[1] return $x";
    "some $p in $d//person satisfies $p/@age = 10";
    "every $p in $d//person satisfies exists($p/name)";
    "distinct-values($d//order/@buyer)";
    "for $p in $d//person return (typeswitch ($p/pet) case element(pet)+ return \"has pets\" default return \"none\")";
    "$d//person[2]/name/text()";
    "$d//person[last()]/@id";
    "for $p in $d//person return ($p/@age + 1, string-length($p/name))";
    "<summary people=\"{count($d//people/person)}\">{$d//order[amount > 2]}</summary>";
    "for $a in $d//person, $b in $d//person where $a/@age = $b/@age return 1";
    "for $p in $d//person order by $p/name/text(), $p/@age descending return $p/@id";
    "for $x in ($d//person union $d//order) return name($x)";
    "count($d//person/pet intersect $d//pet)";
    "for $x in ($d//* except $d//pet) return name($x)";
    "for $p in $d//person return element rec { attribute age { $p/@age }, $p/name/text() }";
    "for $p in $d//person[position() > 1] return $p/@id";
    "$d//person[last()]/name/text()";
    "for $p in $d//person return (if ($p/pet) then count($p/pet) else -1)";
    "some $p in $d//person, $o in $d//order satisfies $o/@buyer = $p/@id";
    "every $o in $d//order satisfies $o/amount > 0";
    {|for $p in $d//person return string-join(for $q in $p/pet return string($q), "+")|};
    "sum(for $p in $d//person return count($p/pet) * 2)";
    "for $p in $d//person let $n := normalize-space(string($p/name)) where string-length($n) > 0 return $n";
    "for $o in $d//order order by number($o/amount) descending, $o/@buyer return $o/amount/text()";
    "deep-equal($d//person[1], $d//person[1])";
    {|for $p in $d//person return (typeswitch ($p/@age) case $a as attribute() return "attr" default return "none")|};
    {|count(clio:deep-distinct(for $o in $d//order return <o b="{$o/@buyer}"/>))|};
    "for $p in reverse($d//person) return $p/@id";
    "for $i in 1 to count($d//person) return $d//person[$i]/name/text()";
    {|for $p in $d//person where matches(string($p/name), "[ab]") return $p/name/text()|};
    "for $p in $d//person return <w>{$p/pet[1]}{$p/pet[2]}</w>";
    "(for $p in $d//person return $p/@age) = (for $o in $d//order return $o/amount)";
    {|for $p in $d//person let $c := count(for $o in $d//order where $o/@buyer = $p/@id return $o) order by $c descending, $p/@id return <r id="{$p/@id}">{$c}</r>|};
  |]

let arb =
  QCheck.make
    ~print:(fun (qi, _) -> queries.(qi))
    QCheck.Gen.(pair (int_bound (Array.length queries - 1)) doc_gen)

let run_one ?(materialize = false) ?force_join strategy doc q =
  match
    Xqc.eval_string ~strategy ~materialize ?force_join
      ~variables:[ ("d", [ Xqc.Item.Node doc ]) ]
      q
  with
  | items -> "OK:" ^ Xqc.serialize items
  | exception Xqc.Error _ -> "ERROR"

(* Run [f] with the structural-index store pinned to [mode] (threshold
   dropped so Force really indexes the tiny random documents), restoring
   the ambient configuration afterwards. *)
let with_index_mode mode f =
  let saved_mode = !Xqc.Store.mode
  and saved_min = !Xqc.Store.min_index_size
  and saved_small = !Xqc.Store.small_subtree in
  Xqc.Store.mode := mode;
  Xqc.Store.min_index_size := 0;
  Xqc.Store.small_subtree := 0;
  Fun.protect
    ~finally:(fun () ->
      Xqc.Store.mode := saved_mode;
      Xqc.Store.min_index_size := saved_min;
      Xqc.Store.small_subtree := saved_small)
    f

(* Run [f] with the fused execution tier pinned to [mode], restoring the
   ambient configuration afterwards.  [Force] fuses every lowerable
   segment regardless of the planner's cardinality estimate, so even the
   tiny random documents exercise the bytecode executor. *)
let with_fuse_mode mode f =
  let saved = !Xqc.Codegen.mode in
  Xqc.Codegen.mode := mode;
  Fun.protect ~finally:(fun () -> Xqc.Codegen.mode := saved) f

let prop_all_strategies_agree =
  QCheck.Test.make ~name:"all strategies agree on random query/doc pairs"
    ~count:500 arb (fun (qi, doc) ->
      let q = queries.(qi) in
      let results = List.map (fun s -> run_one s doc q) strategies in
      List.for_all (String.equal (List.hd results)) results)

(* The streaming pipeline against its own materialized execution (the
   [~materialize] debug knob drains every cursor eagerly and disables
   the early-termination special cases): cursors must be a pure
   evaluation-order change, never a result change. *)
let prop_streaming_is_transparent =
  QCheck.Test.make ~name:"streamed and materialized evaluation agree"
    ~count:250 arb (fun (qi, doc) ->
      let q = queries.(qi) in
      List.for_all
        (fun s ->
          String.equal (run_one s doc q) (run_one ~materialize:true s doc q))
        strategies)

(* Forcing each join algorithm against the planner's own cost-based
   choice: the physical algorithms are interchangeable implementations of
   the same logical join, so overriding the planner must never change a
   result (only the sort join is restricted — the planner falls back to
   the nested loop for predicates it cannot execute). *)
let prop_forced_joins_agree =
  QCheck.Test.make ~name:"forced join algorithms agree with the planner"
    ~count:250 arb (fun (qi, doc) ->
      let q = queries.(qi) in
      let free = run_one Xqc.Optimized doc q in
      List.for_all
        (fun alg ->
          String.equal free (run_one ~force_join:alg Xqc.Optimized doc q))
        [ Xqc.Physical.Nested_loop; Xqc.Physical.Hash; Xqc.Physical.Sort ])

(* The structural-index store against the walking axis code: forcing
   indexes on and off must never change a result, under any strategy.
   This is the index analogue of the streaming-transparency property. *)
let prop_index_is_transparent =
  QCheck.Test.make ~name:"indexed and walked axes agree" ~count:250 arb
    (fun (qi, doc) ->
      let q = queries.(qi) in
      List.for_all
        (fun s ->
          String.equal
            (with_index_mode Xqc.Store.Force (fun () -> run_one s doc q))
            (with_index_mode Xqc.Store.Off (fun () -> run_one s doc q)))
        strategies)

(* The fused bytecode tier against the closure interpreter: forcing
   fusion on and off must never change a result, under any strategy.
   This is the fusion analogue of the index-transparency property. *)
let prop_fusion_is_transparent =
  QCheck.Test.make ~name:"fused and interpreted pipelines agree" ~count:250 arb
    (fun (qi, doc) ->
      let q = queries.(qi) in
      List.for_all
        (fun s ->
          String.equal
            (with_fuse_mode Xqc.Codegen.Force (fun () -> run_one s doc q))
            (with_fuse_mode Xqc.Codegen.Off (fun () -> run_one s doc q)))
        strategies)

(* Fusion composed with the structural index: the fused executor blits
   index ranges directly, so run it against the walking code too. *)
let prop_fusion_with_index_is_transparent =
  QCheck.Test.make ~name:"fused+indexed agrees with interpreted+walked"
    ~count:150 arb (fun (qi, doc) ->
      let q = queries.(qi) in
      List.for_all
        (fun s ->
          String.equal
            (with_index_mode Xqc.Store.Force (fun () ->
                 with_fuse_mode Xqc.Codegen.Force (fun () -> run_one s doc q)))
            (with_index_mode Xqc.Store.Off (fun () ->
                 with_fuse_mode Xqc.Codegen.Off (fun () -> run_one s doc q))))
        strategies)

(* -------- bounded pulls: the early-termination property itself -------- *)

(* Existential and positional queries over an XMark document must stop
   after a constant-size prefix: the obs collector counts every tuple and
   item actually pulled through an instrumented operator, so streaming
   shows up as pull totals that do not grow with the document. *)
let pulled ~materialize doc q =
  (* fusion pinned off: these tests assert the interpreted tier's exact
     per-operator pull accounting, which a fused segment (one op_node for
     a whole pipeline) would legitimately change *)
  with_fuse_mode Xqc.Codegen.Off @@ fun () ->
  let p = Xqc.prepare ~stats:true ~materialize q in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];
  let result = Xqc.run p ctx in
  let tuples, items =
    match Xqc.stats p with
    | Some c -> Xqc.Obs.pulled_totals c
    | None -> Alcotest.fail "no collector"
  in
  (result, tuples + items)

let test_bounded_pulls () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:200_000 () in
  List.iter
    (fun (q, bound) ->
      let streamed_result, streamed = pulled ~materialize:false doc q in
      let materialized_result, materialized = pulled ~materialize:true doc q in
      Alcotest.(check string)
        (q ^ ": streamed and materialized results agree")
        (Xqc.serialize materialized_result)
        (Xqc.serialize streamed_result);
      if streamed > bound then
        Alcotest.failf "%s: pulled %d, expected at most %d" q streamed bound;
      if materialized < 10 * streamed then
        Alcotest.failf "%s: materialized pulls %d not >= 10x streamed %d" q
          materialized streamed)
    [
      ("fn:exists($auction//item)", 50);
      ("fn:empty($auction//item)", 50);
      ("fn:exists($auction/site/people/person)", 50);
      ("($auction//item)[1]", 60);
      ("fn:subsequence($auction//item, 1, 3)", 60);
      ("some $i in $auction//item satisfies fn:exists($i/name)", 60);
    ]

let test_pull_counts_match_materialized_cardinality () =
  (* a fully consumed pipeline pulls exactly what the materialized run
     produces: laziness changes when work happens, not how much *)
  let doc = Xqc_workload.Xmark.generate ~target_bytes:50_000 () in
  let q = "for $i in $auction/site/regions/africa/item return $i/name/text()" in
  let streamed_result, streamed = pulled ~materialize:false doc q in
  let materialized_result, materialized = pulled ~materialize:true doc q in
  Alcotest.(check string)
    "results agree"
    (Xqc.serialize materialized_result)
    (Xqc.serialize streamed_result);
  Alcotest.(check int) "same pull totals when fully consumed" materialized streamed

let () =
  let xmark_doc () = Xqc_workload.Xmark.generate ~target_bytes:40_000 () in
  let clio_doc () = Xqc_workload.Clio.generate ~target_bytes:15_000 () in
  let xmark_queries = Xqc_workload.Xmark_queries.all in
  Alcotest.run "equivalence"
    [
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_all_strategies_agree;
          QCheck_alcotest.to_alcotest prop_streaming_is_transparent;
          QCheck_alcotest.to_alcotest prop_forced_joins_agree;
          QCheck_alcotest.to_alcotest prop_index_is_transparent;
          QCheck_alcotest.to_alcotest prop_fusion_is_transparent;
          QCheck_alcotest.to_alcotest prop_fusion_with_index_is_transparent;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "bounded pulls under early exit" `Quick
            test_bounded_pulls;
          Alcotest.test_case "full consumption pulls everything" `Quick
            test_pull_counts_match_materialized_cardinality;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "xmark all queries" `Slow (fun () ->
              let doc = xmark_doc () in
              List.iter
                (fun (name, q) ->
                  let results =
                    List.map
                      (fun s ->
                        match
                          Xqc.eval_string ~strategy:s
                            ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] q
                        with
                        | items -> "OK:" ^ Xqc.serialize items
                        | exception Xqc.Error m -> "ERROR:" ^ m
                      )
                      strategies
                  in
                  if not (List.for_all (String.equal (List.hd results)) results)
                  then Alcotest.failf "XMark %s: strategies disagree" name)
                xmark_queries);
          Alcotest.test_case "xmark streamed vs materialized" `Slow (fun () ->
              let doc = xmark_doc () in
              List.iter
                (fun (name, q) ->
                  List.iter
                    (fun s ->
                      let go materialize =
                        match
                          Xqc.eval_string ~strategy:s ~materialize
                            ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] q
                        with
                        | items -> "OK:" ^ Xqc.serialize items
                        | exception Xqc.Error m -> "ERROR:" ^ m
                      in
                      if not (String.equal (go false) (go true)) then
                        Alcotest.failf
                          "XMark %s / %s: streamed and materialized disagree"
                          name (Xqc.strategy_name s))
                    strategies)
                xmark_queries);
          Alcotest.test_case "xmark indexed vs walk" `Slow (fun () ->
              let doc = xmark_doc () in
              List.iter
                (fun (name, q) ->
                  List.iter
                    (fun s ->
                      let go mode =
                        with_index_mode mode (fun () ->
                            match
                              Xqc.eval_string ~strategy:s
                                ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ]
                                q
                            with
                            | items -> "OK:" ^ Xqc.serialize items
                            | exception Xqc.Error m -> "ERROR:" ^ m)
                      in
                      if
                        not
                          (String.equal (go Xqc.Store.Force) (go Xqc.Store.Off))
                      then
                        Alcotest.failf
                          "XMark %s / %s: indexed and walked results disagree"
                          name (Xqc.strategy_name s))
                    strategies)
                xmark_queries);
          Alcotest.test_case "xmark fused vs interpreted" `Slow (fun () ->
              let doc = xmark_doc () in
              List.iter
                (fun (name, q) ->
                  List.iter
                    (fun s ->
                      let go mode =
                        with_fuse_mode mode (fun () ->
                            match
                              Xqc.eval_string ~strategy:s
                                ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ]
                                q
                            with
                            | items -> "OK:" ^ Xqc.serialize items
                            | exception Xqc.Error m -> "ERROR:" ^ m)
                      in
                      if
                        not
                          (String.equal (go Xqc.Codegen.Force)
                             (go Xqc.Codegen.Off))
                      then
                        Alcotest.failf
                          "XMark %s / %s: fused and interpreted results disagree"
                          name (Xqc.strategy_name s))
                    strategies)
                xmark_queries);
          Alcotest.test_case "clio all queries" `Slow (fun () ->
              let doc = clio_doc () in
              List.iter
                (fun (name, q) ->
                  let results =
                    List.map
                      (fun s ->
                        match
                          Xqc.eval_string ~strategy:s
                            ~variables:[ ("doc", [ Xqc.Item.Node doc ]) ] q
                        with
                        | items -> "OK:" ^ Xqc.serialize items
                        | exception Xqc.Error m -> "ERROR:" ^ m)
                      strategies
                  in
                  if not (List.for_all (String.equal (List.hd results)) results)
                  then Alcotest.failf "Clio %s: strategies disagree" name)
                Xqc_workload.Clio.all);
        ] );
    ]
