(* The Figure 5 rewritings: the P1 -> P2 pipeline on the paper's examples,
   the robustness rules, and the Section 6 predicate splitting.  (The
   join *algorithm* is no longer a rewrite-time decision — see
   test_planner.ml for the cost-based physical choices.) *)

open Xqc
open Algebra

let optimize ?options s =
  Rewrite.optimize ?options (Compile.compile_string s).Compile.cmain

let count n p =
  List.length (List.filter (String.equal n) (Pretty.operator_names p))

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* the paper's Section 5 example (Figure 4 query) *)
let figure4_query =
  "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) return ($x, $a)"

(* the Q8-shaped query of Section 2 *)
let q8_query =
  "for $p in $auction//person let $a := (for $t in $auction//closed_auction \
   where $t/buyer/@person = $p/@id return $t) return count($a)"

let test_figure4_plan () =
  let p = optimize figure4_query in
  check_int "one GroupBy" 1 (count "GroupBy" p);
  check_int "one LOuterJoin" 1 (count "LOuterJoin" p);
  check_int "one MapIndexStep" 1 (count "MapIndexStep" p);
  check_int "no Select left" 0 (count "Select" p);
  check_int "no OMapConcat left" 0 (count "OMapConcat" p);
  check_int "no OMap left" 0 (count "OMap" p);
  (* the <= predicate is split so the planner can pick a sort join *)
  let rec find_join = function
    | LOuterJoin (_, pred, _, _) -> Some pred
    | p -> List.find_map find_join (children_of p)
  in
  match find_join p with
  | Some (Split_pred { op = Promotion.Le; _ }) -> ()
  | Some _ -> Alcotest.fail "expected a split <= join predicate"
  | None -> Alcotest.fail "no join found"

let test_q8_plan () =
  let p = optimize q8_query in
  check_int "one GroupBy" 1 (count "GroupBy" p);
  check_int "one LOuterJoin" 1 (count "LOuterJoin" p);
  check_int "no residual MapConcat" 0 (count "MapConcat" p);
  let rec find_join = function
    | LOuterJoin (_, pred, _, _) -> Some pred
    | p -> List.find_map find_join (children_of p)
  in
  match find_join p with
  | Some (Split_pred { op = Promotion.Eq; left_key; right_key }) ->
      check_bool "left key reads fields" true (input_fields left_key <> []);
      check_bool "right key reads fields" true (input_fields right_key <> [])
  | Some _ -> Alcotest.fail "expected a split equality join predicate"
  | None -> Alcotest.fail "no join found"

let test_groupby_params_match_paper () =
  (* P2: GroupBy[a, index, null] with a single index and a single null *)
  let p = optimize q8_query in
  let rec find_groupby = function
    | GroupBy (g, i) -> Some (g, i)
    | p -> List.find_map find_groupby (children_of p)
  in
  match find_groupby p with
  | Some (g, LOuterJoin _) ->
      check_int "one index" 1 (List.length g.g_indices);
      check_int "one null" 1 (List.length g.g_nulls)
  | Some _ -> Alcotest.fail "GroupBy input is not the outer join"
  | None -> Alcotest.fail "no GroupBy"

let test_remove_map () =
  let p = optimize "for $x in (1,2,3) return $x" in
  check_int "no MapConcat" 0 (count "MapConcat" p)

let test_insert_product_and_join () =
  let p = optimize "for $x in $s, $y in $t where $x = $y return 1" in
  check_int "a join" 1 (count "Join" p);
  check_int "no product left" 0 (count "Product" p);
  check_int "no select left" 0 (count "Select" p)

let test_uncorrelated_inner_becomes_product () =
  (* a let whose value is independent of IN becomes a product *)
  let p = optimize "for $x in $s let $a := count($t) return ($x, $a)" in
  check_int "no GroupBy" 0 (count "GroupBy" p);
  check_int "product for the constant value" 1 (count "Product" p);
  (* an uncorrelated nested FLWOR still unnests into join machinery that
     evaluates the inner block once (trivially-true join predicate) *)
  let p2 = optimize "for $x in $s let $a := (for $y in $t return $y) return ($x, count($a))" in
  check_int "unnested" 0 (count "OMapConcat" p2);
  check_int "outer join" 1 (count "LOuterJoin" p2)

let test_return_position_hoisting () =
  let p =
    optimize
      "for $x in $s return <r>{for $y in $t where $y/@k = $x/@k return $y}</r>"
  in
  check_int "GroupBy introduced" 1 (count "GroupBy" p);
  check_int "outer join introduced" 1 (count "LOuterJoin" p)

let test_multiway () =
  let p = optimize Xqc_workload.Clio.n4 in
  check_int "three GroupBys" 3 (count "GroupBy" p);
  check_int "three LOuterJoins" 3 (count "LOuterJoin" p);
  check_int "no OMapConcat" 0 (count "OMapConcat" p)

let test_correlated_path_stays_dependent () =
  let p = optimize "for $x in $s, $y in $x/author return $y" in
  check_int "dependent join kept" 1 (count "MapConcat" p);
  check_int "no bogus product" 0 (count "Product" p)

let test_predicate_join_unnesting () =
  (* the paper's Q1 variant: the join is through a path predicate *)
  let p =
    optimize
      "for $p in $auction//person let $a := $auction//closed_auction[.//@person = $p/@id] return count($a)"
  in
  check_int "GroupBy" 1 (count "GroupBy" p);
  check_int "LOuterJoin" 1 (count "LOuterJoin" p)

let test_unoptimized_options () =
  let options = { Rewrite.unnest = false; split_preds = false; static_types = false } in
  let p = optimize ~options q8_query in
  check_int "no GroupBy without rewriting" 0 (count "GroupBy" p);
  check_int "no join without rewriting" 0 (count "LOuterJoin" p)

let test_nl_only_options () =
  (* without predicate splitting the join keeps its whole [Pred], which
     only the nested loop can evaluate *)
  let options = { Rewrite.unnest = true; split_preds = false; static_types = false } in
  let p = optimize ~options q8_query in
  let rec find_join = function
    | LOuterJoin (_, pred, _, _) -> Some pred
    | p -> List.find_map find_join (children_of p)
  in
  match find_join p with
  | Some (Pred _) -> ()
  | Some (Split_pred _) -> Alcotest.fail "predicate split despite split_preds = false"
  | None -> Alcotest.fail "no join found"

(* ---------------- physical predicate splitting ---------------- *)

let left = TupleConstruct [ ("l", Empty) ]
let right = TupleConstruct [ ("r", Empty) ]

let pred name =
  Pred (Call ("fn:boolean", [ Call (name, [ FieldAccess "l"; FieldAccess "r" ]) ]))

let test_split_pred () =
  (match Rewrite.split_pred (pred "op:general-eq") left right with
  | Some (Split_pred { op = Promotion.Eq; _ }) -> ()
  | _ -> Alcotest.fail "eq splits");
  (match Rewrite.split_pred (pred "op:general-lt") left right with
  | Some (Split_pred { op = Promotion.Lt; _ }) -> ()
  | _ -> Alcotest.fail "lt splits");
  (match Rewrite.split_pred (pred "op:general-ne") left right with
  | Some (Split_pred { op = Promotion.Ne; _ }) -> ()
  | _ -> Alcotest.fail "ne splits");
  (match
     Rewrite.split_pred
       (Pred (Call ("op:general-lt", [ FieldAccess "r"; FieldAccess "l" ])))
       left right
   with
  | Some (Split_pred { op = Promotion.Gt; _ }) -> ()
  | _ -> Alcotest.fail "swapped lt mirrors to gt");
  match
    Rewrite.split_pred
      (Pred
         (Call
            ( "op:general-eq",
              [ Call ("op:add", [ FieldAccess "l"; FieldAccess "r" ]); FieldAccess "r" ] )))
      left right
  with
  | None -> ()
  | Some _ -> Alcotest.fail "straddling predicate must not split"

let test_rewriting_terminates () =
  let q =
    "for $a in $s return <x>{for $b in $t return <y>{for $c in $u return \
     <z>{for $d in $v return $d}</z>}</y>}</x>"
  in
  let p = optimize q in
  check_bool "produced a plan" true (Pretty.size p > 0)

let () =
  Alcotest.run "optimizer"
    [
      ( "paper pipeline",
        [
          Alcotest.test_case "figure 4 plan" `Quick test_figure4_plan;
          Alcotest.test_case "q8 plan (P2)" `Quick test_q8_plan;
          Alcotest.test_case "groupby params" `Quick test_groupby_params_match_paper;
        ] );
      ( "rules",
        [
          Alcotest.test_case "remove map" `Quick test_remove_map;
          Alcotest.test_case "insert product/join" `Quick test_insert_product_and_join;
          Alcotest.test_case "uncorrelated -> product" `Quick test_uncorrelated_inner_becomes_product;
          Alcotest.test_case "return-position hoisting" `Quick test_return_position_hoisting;
          Alcotest.test_case "multiway joins" `Quick test_multiway;
          Alcotest.test_case "correlated path dependent" `Quick test_correlated_path_stays_dependent;
          Alcotest.test_case "predicate join" `Quick test_predicate_join_unnesting;
          Alcotest.test_case "options: unoptimized" `Quick test_unoptimized_options;
          Alcotest.test_case "options: NL only" `Quick test_nl_only_options;
          Alcotest.test_case "termination" `Quick test_rewriting_terminates;
        ] );
      ("physical", [ Alcotest.test_case "split predicates" `Quick test_split_pred ]);
    ]
