(* The relational offload backend: shredding, the second lowering, the
   columnar engine, and the planner splice.

   The load-bearing property mirrors test_par: for every strategy, a
   run under --backend rel (and auto) must be observationally identical
   to the same strategy's native run — same serialized bytes, same
   errors — over random documents and queries chosen to hit every
   lowered operator.  The engine is allowed to decline at run time
   (Rel_exec.Fallback reruns the native twin), so agreement is the
   whole contract; separate tests pin that offload actually engages on
   the join/group shapes. *)

module Rel = Xqc.Rel_algebra
module A = Xqc.Algebra

let with_backend b f =
  let saved = !Rel.backend in
  Rel.backend := b;
  Fun.protect ~finally:(fun () -> Rel.backend := saved) f

let counter name =
  match List.assoc_opt name (Xqc.Obs.global_counters ()) with
  | Some v -> v
  | None -> 0

(* -------- shredding -------- *)

let doc_gen : Xqc.Node.t QCheck.Gen.t =
  let open QCheck.Gen in
  let value = oneofl [ "1"; "2"; "3"; "10"; "1.5"; "0"; "x y" ] in
  let person i =
    value >>= fun age ->
    oneofl [ "a"; "b"; "c" ] >>= fun name ->
    int_bound 2 >>= fun pets ->
    return
      (Printf.sprintf
         {|<person id="p%d" age="%s"><name>%s</name>%s</person>|} i age name
         (String.concat ""
            (List.init pets (fun p -> Printf.sprintf "<pet>x%d</pet>" p))))
  in
  let order _i =
    value >>= fun amount ->
    int_bound 6 >>= fun who ->
    return
      (Printf.sprintf {|<order buyer="p%d"><amount>%s</amount></order>|} who
         amount)
  in
  int_range 2 7 >>= fun np ->
  int_range 0 8 >>= fun no ->
  let rec seq f n acc =
    if n = 0 then return (List.rev acc)
    else f n >>= fun x -> seq f (n - 1) (x :: acc)
  in
  seq person np [] >>= fun persons ->
  seq order no [] >>= fun orders ->
  return
    (Xqc.parse_document
       (Printf.sprintf
          "<db><people>%s</people><orders><!--log-->%s</orders></db>"
          (String.concat "" persons) (String.concat "" orders)))

let serialize_tree (n : Xqc.Node.t) = Xqc.serialize [ Xqc.Item.Node n ]

(* Shred -> rebuild reproduces the tree from the columns alone. *)
let prop_shred_roundtrip doc =
  Xqc.Node.renumber doc;
  match Xqc.Shred.of_root doc with
  | None -> QCheck.Test.fail_report "renumbered untyped document must shred"
  | Some sh ->
      let rebuilt = Xqc.Shred.rebuild sh in
      String.equal (serialize_tree doc) (serialize_tree rebuilt)
      || QCheck.Test.fail_reportf "rebuild diverged:\n%s\nvs\n%s"
           (serialize_tree doc) (serialize_tree rebuilt)

let test_shred_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"shred -> rebuild = identity" ~count:100
       (QCheck.make doc_gen) prop_shred_roundtrip)

let test_shred_columns () =
  let doc =
    Xqc.parse_document {|<a x="1"><b>t</b><c><b>u</b></c></a>|}
  in
  Xqc.Node.renumber doc;
  let sh = Option.get (Xqc.Shred.of_root doc) in
  Alcotest.(check int) "row count = tree size" (Xqc.Node.size doc) sh.Xqc.Shred.n;
  Alcotest.(check int) "root is whole tree" sh.Xqc.Shred.n
    sh.Xqc.Shred.sizes.(0);
  (* the cache hands back the same shred *)
  let again = Option.get (Xqc.Shred.of_root doc) in
  Alcotest.(check bool) "cached" true (sh == again);
  (* per-row string values agree with the data model *)
  Array.iteri
    (fun row node ->
      Alcotest.(check string) "string value" (Xqc.Item.string_value (Xqc.Item.Node node))
        (Xqc.Shred.value sh row))
    sh.Xqc.Shred.nodes

(* -------- the lowering, on hand-built plans -------- *)

let scan v out path =
  A.MapFromItem
    ( A.TupleConstruct [ (out, A.Input) ],
      List.fold_left
        (fun acc name -> A.TreeJoin (Xqc.Ast.Child, Xqc.Ast.Name_test name, acc))
        (A.Var v) path )

let split_join ?(op = Xqc.Promotion.Eq) lk rk l r =
  A.Join (A.Split_pred { op; left_key = lk; right_key = rk }, l, r)

let attr_key f name =
  A.TreeJoin (Xqc.Ast.Attribute_axis, Xqc.Ast.Name_test name, A.FieldAccess f)

let test_lower_units () =
  let people = scan "d" "p" [ "people"; "person" ] in
  let orders = scan "d" "o" [ "orders"; "order" ] in
  (* plain scan *)
  (match Xqc.Rel_lower.lower people with
  | Some rp ->
      Alcotest.(check (list string)) "scan cols" [ "p" ] (Rel.cols rp);
      Alcotest.(check bool) "scan is light" false (Xqc.Rel_lower.heavy rp)
  | None -> Alcotest.fail "scan must lower");
  (* equality split join *)
  (match
     Xqc.Rel_lower.lower
       (split_join (attr_key "p" "id") (attr_key "o" "buyer") people orders)
   with
  | Some rp ->
      Alcotest.(check (list string)) "join cols" [ "p"; "o" ] (Rel.cols rp);
      Alcotest.(check bool) "join is heavy" true (Xqc.Rel_lower.heavy rp);
      Alcotest.(check (list string)) "join params" [ "d" ] (Rel.params rp)
  | None -> Alcotest.fail "equality split join must lower");
  (* Ne split joins are outside the engine's exactness envelope *)
  Alcotest.(check bool) "ne join refused" true
    (Xqc.Rel_lower.lower
       (split_join ~op:Xqc.Promotion.Ne (attr_key "p" "id")
          (attr_key "o" "buyer") people orders)
    = None);
  (* whole-predicate joins are not split, hence not lowerable *)
  Alcotest.(check bool) "whole-pred join refused" true
    (Xqc.Rel_lower.lower
       (A.Join (A.Pred (A.Scalar (Xqc.Atomic.Boolean true)), people, orders))
    = None);
  (* selection with a literal operand *)
  (match
     Xqc.Rel_lower.lower
       (A.Select
          ( A.Call
              ( "op:general-gt",
                [ attr_key "p" "age"; A.Scalar (Xqc.Atomic.Integer 2) ] ),
            people ))
   with
  | Some rp -> Alcotest.(check (list string)) "select cols" [ "p" ] (Rel.cols rp)
  | None -> Alcotest.fail "literal selection must lower");
  (* // fuses into a descendant step instead of being refused *)
  (match
     Xqc.Rel_lower.lower
       (A.MapFromItem
          ( A.TupleConstruct [ ("x", A.Input) ],
            A.TreeJoin
              ( Xqc.Ast.Child,
                Xqc.Ast.Name_test "person",
                A.TreeJoin
                  ( Xqc.Ast.Descendant_or_self,
                    Xqc.Ast.Kind_test Xqc.Seqtype.It_node,
                    A.Var "d" ) ) ))
   with
  | Some _ -> ()
  | None -> Alcotest.fail "//person must lower via fusion");
  (* arbitrary calls stay native *)
  Alcotest.(check bool) "call refused" true
    (Xqc.Rel_lower.lower (A.Call ("fn:count", [ A.Var "d" ])) = None)

(* -------- SQL well-formedness -------- *)

let rel_subplans_of (q : string) : (Rel.plan * string list) list =
  with_backend Rel.Rel (fun () ->
      let prepared = Xqc.prepare q in
      match Xqc.physical_plan prepared with
      | None -> []
      | Some pq ->
          List.rev
            (Xqc.Physical.fold
               (fun acc (n : Xqc.Physical.t) ->
                 match n.Xqc.Physical.pop with
                 | Xqc.Physical.PRelational { rplan; rfields; _ } ->
                     (rplan, rfields) :: acc
                 | _ -> acc)
               [] pq.Xqc.Physical.pmain))

let offloadable_queries =
  [
    "for $p in $d//person, $o in $d//order where $o/@buyer = $p/@id return \
     <hit>{$p/name/text()}</hit>";
    "for $p in $d//person let $os := (for $o in $d//order where $o/@buyer = \
     $p/@id return $o) return <p n=\"{$p/name/text()}\">{count($os)}</p>";
    "for $p in $d//person order by $p/@age descending, $p/@id return \
     $p/name/text()";
    "for $p in $d/db/people/person where $p/@age > 2 return $p/@id";
    "for $p in $d//person where $p/name = \"a\" order by $p/@id descending \
     empty greatest return $p";
  ]

let balanced s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '(' then incr depth
      else if c = ')' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let test_sql_wellformed () =
  let total = ref 0 in
  List.iter
    (fun q ->
      List.iter
        (fun (rplan, _fields) ->
          incr total;
          let sql = Xqc.Rel_sql.emit rplan in
          Alcotest.(check bool) "starts with WITH" true
            (String.length sql > 4 && String.sub sql 0 4 = "WITH");
          Alcotest.(check bool) "balanced parens" true (balanced sql);
          Alcotest.(check bool) "even quote count" true
            (String.fold_left (fun n c -> if c = '\'' then n + 1 else n) 0 sql
             mod 2
            = 0);
          let contains needle =
            let nl = String.length needle and sl = String.length sql in
            let rec go i = i + nl <= sl && (String.sub sql i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "selects from node" true (contains "FROM node");
          Alcotest.(check bool) "deterministic order" true (contains "ORDER BY"))
        (rel_subplans_of q))
    offloadable_queries;
  Alcotest.(check bool) "at least one subplan per query lowered" true
    (!total >= List.length offloadable_queries)

(* -------- backend equivalence (the acceptance property) -------- *)

let queries =
  Array.of_list
    (offloadable_queries
    @ [
        (* shapes that must NOT offload, or that fall back at run time —
           agreement still required *)
        "count($d//person)";
        "for $p in $d//person order by $p/pet return $p/@id";
        "for $p in $d//person order by $p/name return $p/@age";
        "for $a in $d//person, $b in $d//person where $a/@age = $b/@age \
         return 1";
        "for $p in $d//person where $p/@age < 2 return $p/name";
        "distinct-values($d//order/@buyer)";
        "for $p in $d//person[position() > 1] return $p/@id";
      ])

let run_one strategy doc q =
  match
    Xqc.eval_string ~strategy ~variables:[ ("d", [ Xqc.Item.Node doc ]) ] q
  with
  | items -> "OK:" ^ Xqc.serialize items
  | exception Xqc.Error _ -> "ERROR"

let prop_backends_agree (qi, doc) =
  let q = queries.(qi) in
  List.for_all
    (fun strategy ->
      let reference = with_backend Rel.Native (fun () -> run_one strategy doc q) in
      List.for_all
        (fun backend ->
          let got = with_backend backend (fun () -> run_one strategy doc q) in
          String.equal got reference
          || QCheck.Test.fail_reportf
               "strategy %s, backend %s:\n  native: %s\n  got:    %s"
               (Xqc.strategy_name strategy) (Rel.backend_name backend)
               reference got)
        [ Rel.Rel; Rel.Auto ])
    Xqc.all_strategies

let arb =
  QCheck.make
    ~print:(fun (qi, _) -> queries.(qi))
    QCheck.Gen.(pair (int_bound (Array.length queries - 1)) doc_gen)

let test_backends_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rel/auto = native, all strategies" ~count:60 arb
       prop_backends_agree)

(* -------- offload engages on XMark -------- *)

let xmark_q8 =
  "for $p in $auction/site/people/person let $a := (for $t in \
   $auction/site/closed_auctions/closed_auction where $t/buyer/@person = \
   $p/@id return $t) return <item person=\"{$p/name/text()}\">{count($a)}</item>"

let test_xmark_offload () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:150_000 () in
  let run () =
    Xqc.serialize
      (Xqc.eval_string ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] xmark_q8)
  in
  let reference = with_backend Rel.Native run in
  let before = counter "rel_subplans" in
  let fallbacks_before = counter "rel_fallbacks" in
  let got = with_backend Rel.Rel run in
  Alcotest.(check string) "byte-identical to native" reference got;
  Alcotest.(check bool) "offload engaged" true (counter "rel_subplans" > before);
  Alcotest.(check int) "no run-time fallback" fallbacks_before
    (counter "rel_fallbacks");
  (* auto must also choose to offload the join.  The native runs above
     built index statistics, so the cost gate is live — lower the
     threshold so the 150 KB test document clears it (real workloads
     clear the default at real sizes). *)
  let saved_thr = !Rel.auto_cost_threshold in
  Rel.auto_cost_threshold := 1.;
  Fun.protect ~finally:(fun () -> Rel.auto_cost_threshold := saved_thr)
  @@ fun () ->
  let before_auto = counter "rel_subplans" in
  let got_auto = with_backend Rel.Auto run in
  Alcotest.(check string) "auto byte-identical" reference got_auto;
  Alcotest.(check bool) "auto offloaded the join" true
    (counter "rel_subplans" > before_auto)

(* -------- plan-cache keying: flipping any execution mode replans ---- *)

let test_plan_cache_modes () =
  let q = "for $x in (1,2,3) return $x + 1" in
  let misses () = counter "plan_cache_misses" in
  let base () = ignore (Xqc.prepare_cached q) in
  let check_flip name flip restore =
    Xqc.clear_plan_cache ();
    base ();
    let warm = misses () in
    base ();
    Alcotest.(check int) (name ^ ": warm hit") warm (misses ());
    flip ();
    Fun.protect ~finally:restore (fun () ->
        base ();
        Alcotest.(check int) (name ^ ": flip replans") (warm + 1) (misses ()))
  in
  check_flip "strategy"
    (fun () -> ignore (Xqc.prepare_cached ~strategy:Xqc.Optimized_nl q))
    (fun () -> ());
  (* the strategy flip above already compiled under nl; re-anchor *)
  let saved_store = !Xqc.Store.mode in
  check_flip "index mode"
    (fun () -> Xqc.Store.mode := Xqc.Store.Off)
    (fun () -> Xqc.Store.mode := saved_store);
  let saved_cg = !Xqc.Codegen.mode in
  check_flip "codegen mode"
    (fun () -> Xqc.Codegen.mode := Xqc.Codegen.Off)
    (fun () -> Xqc.Codegen.mode := saved_cg);
  check_flip "backend"
    (fun () -> Rel.backend := Rel.Rel)
    (fun () -> Rel.backend := Rel.Native);
  check_flip "par degree"
    (fun () -> Xqc.Domain_pool.set_budget (Some 3))
    (fun () -> Xqc.Domain_pool.set_budget None);
  (* the boolean knobs are explicit prepare_cached arguments *)
  List.iter
    (fun (name, prep) ->
      Xqc.clear_plan_cache ();
      base ();
      let warm = misses () in
      prep ();
      Alcotest.(check int) (name ^ ": flip replans") (warm + 1) (misses ()))
    [
      ("project", fun () -> ignore (Xqc.prepare_cached ~project:true q));
      ("materialize", fun () -> ignore (Xqc.prepare_cached ~materialize:true q));
      ("fuse", fun () -> ignore (Xqc.prepare_cached ~fuse:false q));
    ]

(* -------- fn:collection and per-document fan-out -------- *)

let mk_db i =
  Xqc.parse_document
    (Printf.sprintf
       "<db><people>%s</people></db>"
       (String.concat ""
          (List.init (i + 2) (fun p ->
               Printf.sprintf {|<person id="d%dp%d"><name>n%d</name></person>|}
                 i p p))))

let test_collection_builtin () =
  let docs = [ mk_db 0; mk_db 1; mk_db 2 ] in
  let ctx = Xqc.context () in
  Xqc.Dynamic_ctx.bind_collection ctx "c" docs;
  let run q = Xqc.serialize (Xqc.run (Xqc.prepare q) ctx) in
  Alcotest.(check string) "count across documents" "9"
    (run {|count(collection("c")//person)|});
  (* the sequence fn:collection returns is in binding order *)
  Alcotest.(check string) "first member is first bound doc" "d0p0"
    (run {|string((collection("c"))[1]//person[1]/@id)|});
  (match Xqc.run (Xqc.prepare {|collection("missing")|}) ctx with
  | _ -> Alcotest.fail "unbound collection must raise"
  | exception Xqc.Error _ -> ())

let test_collection_parallel () =
  let docs = List.init 5 mk_db in
  let q = {|for $p in collection("c")/db/people/person return $p/@id|} in
  let run () =
    let ctx = Xqc.context () in
    Xqc.Dynamic_ctx.bind_collection ctx "c" docs;
    Xqc.serialize (Xqc.run (Xqc.prepare q) ctx)
  in
  let reference = run () in
  let saved_min = !Xqc.Par_exec.par_min_items in
  let saved_thr = !Xqc.Planner.default_par_threshold in
  Xqc.Domain_pool.set_budget (Some 4);
  Xqc.Par_exec.par_min_items := 1;
  Xqc.Planner.default_par_threshold := 0.;
  Fun.protect
    ~finally:(fun () ->
      Xqc.Domain_pool.set_budget None;
      Xqc.Par_exec.par_min_items := saved_min;
      Xqc.Planner.default_par_threshold := saved_thr)
    (fun () ->
      Alcotest.(check string) "per-document fan-out preserves order" reference
        (run ()))

let test_chunk_by_root () =
  let d1 = mk_db 0 and d2 = mk_db 1 in
  Xqc.Node.renumber d1;
  Xqc.Node.renumber d2;
  let items1 = [ Xqc.Item.Node d1 ] and items2 = [ Xqc.Item.Node d2 ] in
  (* nodes carry parent back-pointers, so compare physically *)
  let same a b =
    List.length a = List.length b
    && List.for_all2
         (fun x y ->
           match (x, y) with
           | Xqc.Item.Node m, Xqc.Item.Node n -> m == n
           | _ -> false)
         a b
  in
  (match Xqc.Par_exec.chunk_by_root (items1 @ items2) with
  | Some [ c1; c2 ] ->
      Alcotest.(check bool) "chunk 1 = doc 1" true (same c1 items1);
      Alcotest.(check bool) "chunk 2 = doc 2" true (same c2 items2)
  | _ -> Alcotest.fail "two documents must make two chunks");
  Alcotest.(check bool) "single root: no doc chunking" true
    (Option.is_none (Xqc.Par_exec.chunk_by_root items1));
  Alcotest.(check bool) "atoms: no doc chunking" true
    (Option.is_none
       (Xqc.Par_exec.chunk_by_root
          [
            Xqc.Item.Atom (Xqc.Atomic.Integer 1);
            Xqc.Item.Atom (Xqc.Atomic.Integer 2);
          ]))

let () =
  Alcotest.run "relational"
    [
      ( "shred",
        [
          test_shred_roundtrip;
          Alcotest.test_case "columns and cache" `Quick test_shred_columns;
        ] );
      ("lower", [ Alcotest.test_case "unit plans" `Quick test_lower_units ]);
      ("sql", [ Alcotest.test_case "well-formed" `Quick test_sql_wellformed ]);
      ( "equivalence",
        [
          test_backends_agree;
          Alcotest.test_case "xmark offload" `Quick test_xmark_offload;
        ] );
      ( "plan-cache",
        [ Alcotest.test_case "mode knobs replan" `Quick test_plan_cache_modes ] );
      ( "collection",
        [
          Alcotest.test_case "builtin" `Quick test_collection_builtin;
          Alcotest.test_case "parallel fan-out" `Quick test_collection_parallel;
          Alcotest.test_case "chunk by root" `Quick test_chunk_by_root;
        ] );
    ]
