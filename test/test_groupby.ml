(* The XQuery GroupBy operator (Section 5): the Figure 4 example, the
   single-partition convention for empty grouping criteria, null-flag
   handling, and partition ordering. *)

open Xqc
open Algebra

(* Literal input tables are encoded as XML rows and unpacked by a
   MapFromItem whose tuple constructor reads the row attributes. *)
let rows_doc =
  Xqc.parse_document
    {|<t><r x="1" y="1" index="1" null="false"/><r x="1" y="2" index="1" null="false"/><r x="1" y="1" index="2" null="false"/><r x="1" y="2" index="2" null="false"/><r x="3" index="3" null="true"/></t>|}

let rows_items =
  List.filter_map
    (fun n -> if Node.name n = Some "r" then Some (Item.Node n) else None)
    (Node.descendants rows_doc)

let attr name = Call ("fn:data", [ TreeJoin (Ast.Attribute_axis, Ast.Name_test name, Input) ])

let input_table : plan =
  MapFromItem
    ( TupleConstruct
        [
          ("x", attr "x");
          ("y", attr "y");
          ("index", attr "index");
          ("null", Cast (Atomic.T_boolean, true, attr "null"));
        ],
      Var "rows" )

let ctx =
  let c = Dynamic_ctx.create () in
  Dynamic_ctx.bind_global c "rows" rows_items;
  c

let run_table (p : plan) : Eval.tuple list =
  let comp, _ = Eval.compile { Eval.layout = []; drain = true } (Planner.plan p) in
  match comp ctx Eval.INone with
  | Eval.Tab t -> List.of_seq t
  | Eval.Xml _ -> Alcotest.fail "expected a table"

let cell_str (v : Item.sequence) = String.concat "," (List.map Item.string_value v)

let test_figure4 () =
  (* GroupBy[a, index, null]{avg(IN)}{IN#y * 10}(input) *)
  let g =
    {
      g_agg = "a";
      g_indices = [ "index" ];
      g_nulls = [ "null" ];
      g_post = Call ("fn:avg", [ Input ]);
      g_pre = Call ("op:multiply", [ FieldAccess "y"; Scalar (Atomic.Integer 10) ]);
    }
  in
  let out = run_table (GroupBy (g, input_table)) in
  Alcotest.(check int) "three partitions" 3 (List.length out);
  (* output layout: x, y, index, null, a *)
  Alcotest.(check (list (pair string string)))
    "x and a per partition (Figure 4 output)"
    [ ("1", "15"); ("1", "15"); ("3", "") ]
    (List.map (fun t -> (cell_str t.(0), cell_str t.(4))) out)

let test_empty_criteria_single_partition () =
  (* no grouping criteria: the whole input forms one partition *)
  let g =
    {
      g_agg = "a";
      g_indices = [];
      g_nulls = [ "null" ];
      g_post = Call ("fn:count", [ Input ]);
      g_pre = FieldAccess "y";
    }
  in
  let out = run_table (GroupBy (g, input_table)) in
  Alcotest.(check int) "one output tuple" 1 (List.length out);
  (* four non-null rows contribute one y item each *)
  Alcotest.(check string) "partition items counted" "4" (cell_str (List.hd out).(4))

let test_null_rows_skip_pre () =
  (* pre would fail on the null row (y * 10 with y absent gives empty,
     so use a pre that errors on empty to prove it is never called) *)
  let g =
    {
      g_agg = "a";
      g_indices = [ "index" ];
      g_nulls = [ "null" ];
      g_post = Call ("fn:count", [ Input ]);
      g_pre = Call ("fn:exactly-one", [ FieldAccess "y" ]);
    }
  in
  let out = run_table (GroupBy (g, input_table)) in
  Alcotest.(check (list string)) "null partition has an empty item list"
    [ "2"; "2"; "0" ]
    (List.map (fun t -> cell_str t.(4)) out)

let test_partition_order_is_first_occurrence () =
  (* rows with indexes 2,1,2 -> partitions reported in 2,1 order of first
     occurrence, which for MapIndexStep-produced indexes is ascending *)
  let doc =
    Xqc.parse_document
      {|<t><r x="b" index="2" null="false"/><r x="a" index="1" null="false"/><r x="c" index="2" null="false"/></t>|}
  in
  let items =
    List.filter_map
      (fun n -> if Node.name n = Some "r" then Some (Item.Node n) else None)
      (Node.descendants doc)
  in
  Dynamic_ctx.bind_global ctx "rows2" items;
  let table =
    MapFromItem
      ( TupleConstruct
          [
            ("x", attr "x");
            ("index", attr "index");
            ("null", Cast (Atomic.T_boolean, true, attr "null"));
          ],
        Var "rows2" )
  in
  let g =
    {
      g_agg = "a";
      g_indices = [ "index" ];
      g_nulls = [ "null" ];
      g_post = Call ("fn:string-join", [ Input; Scalar (Atomic.String "+") ]);
      g_pre = FieldAccess "x";
    }
  in
  let out = run_table (GroupBy (g, table)) in
  Alcotest.(check (list string)) "partitions by first occurrence, members in order"
    [ "b+c"; "a" ]
    (List.map (fun t -> cell_str t.(2 + 1)) out)

let test_empty_input () =
  Dynamic_ctx.bind_global ctx "norows" [];
  let table = MapFromItem (TupleConstruct [ ("x", Input) ], Var "norows") in
  let g =
    { g_agg = "a"; g_indices = []; g_nulls = []; g_post = Input; g_pre = FieldAccess "x" }
  in
  Alcotest.(check int) "empty in, empty out" 0 (List.length (run_table (GroupBy (g, table))))

let test_multiple_null_flags () =
  (* any true flag suppresses the pre plan *)
  let table =
    MapFromItem
      ( TupleConstruct
          [
            ("y", attr "y");
            ("index", attr "index");
            ("null1", Cast (Atomic.T_boolean, true, attr "null"));
            ("null2", Scalar (Atomic.Boolean false));
          ],
        Var "rows" )
  in
  let g =
    {
      g_agg = "a";
      g_indices = [];
      g_nulls = [ "null1"; "null2" ];
      g_post = Call ("fn:count", [ Input ]);
      g_pre = FieldAccess "y";
    }
  in
  let out = run_table (GroupBy (g, table)) in
  Alcotest.(check string) "only non-null rows contribute" "4" (cell_str (List.hd out).(4))

let () =
  Alcotest.run "groupby"
    [
      ( "semantics",
        [
          Alcotest.test_case "figure 4" `Quick test_figure4;
          Alcotest.test_case "empty criteria" `Quick test_empty_criteria_single_partition;
          Alcotest.test_case "null rows skip pre" `Quick test_null_rows_skip_pre;
          Alcotest.test_case "partition order" `Quick test_partition_order_is_first_occurrence;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "multiple null flags" `Quick test_multiple_null_flags;
        ] );
    ]
