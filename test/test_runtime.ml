(* Runtime plumbing: tuple layouts and slot resolution, the map-family
   operators, element construction rules, and error paths. *)

open Xqc
open Algebra

let ctx = Dynamic_ctx.create ()

(* logical plans built by hand go through the (statistics-free) default
   planner before compilation, like the real pipeline *)
let run (p : plan) : Eval.dval =
  let comp, _ = Eval.compile { Eval.layout = []; drain = true } (Planner.plan p) in
  comp ctx Eval.INone

let run_items p = match run p with Eval.Xml s -> s | Eval.Tab _ -> Alcotest.fail "expected items"

let run_table p =
  match run p with
  | Eval.Tab t -> List.of_seq t
  | Eval.Xml _ -> Alcotest.fail "expected table"

let ser p = Serializer.sequence_to_string (run_items p)
let int_scalar i = Scalar (Atomic.Integer i)

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_concat_spec () =
  let out, width, moves = Eval.concat_spec [ "a"; "b" ] [ "c" ] in
  Alcotest.(check (list string)) "layout" [ "a"; "b"; "c" ] out;
  check_int "width" 3 width;
  Alcotest.(check (list (pair int int))) "moves" [ (0, 2) ] (Array.to_list moves);
  (* overlapping fields are overwritten in place *)
  let out2, width2, moves2 = Eval.concat_spec [ "a"; "b" ] [ "b"; "c" ] in
  Alcotest.(check (list string)) "merged layout" [ "a"; "b"; "c" ] out2;
  check_int "merged width" 3 width2;
  Alcotest.(check (list (pair int int))) "merge moves" [ (0, 1); (1, 2) ] (Array.to_list moves2)

let test_slot_resolution_error () =
  match Eval.compile { Eval.layout = [ "a" ]; drain = true } (Planner.plan (FieldAccess "nosuch")) with
  | exception Eval.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a compile error for an unknown field"

let test_tuple_construct_and_access () =
  let p =
    MapToItem
      ( Call ("op:add", [ FieldAccess "a"; FieldAccess "b" ]),
        TupleConstruct [ ("a", int_scalar 1); ("b", int_scalar 2) ] )
  in
  check "slot access adds" "3" (ser p)

let test_map_concat () =
  (* MapConcat{[y: x+1]}([x:1]) has both fields *)
  let p =
    MapToItem
      ( Call ("op:multiply", [ FieldAccess "x"; FieldAccess "y" ]),
        MapConcat
          ( TupleConstruct [ ("y", Call ("op:add", [ FieldAccess "x"; int_scalar 1 ])) ],
            TupleConstruct [ ("x", int_scalar 3) ] ) )
  in
  check "dependent sees input fields" "12" (ser p)

let test_map_from_item_and_index () =
  let src = Seq (int_scalar 10, Seq (int_scalar 20, int_scalar 30)) in
  let p = MapIndex ("i", MapFromItem (TupleConstruct [ ("v", Input) ], src)) in
  let table = run_table p in
  check_int "three tuples" 3 (List.length table);
  Alcotest.(check (list (pair string string)))
    "index prepended, 1-based"
    [ ("1", "10"); ("2", "20"); ("3", "30") ]
    (List.map
       (fun t ->
         ( Serializer.sequence_to_string t.(0),
           Serializer.sequence_to_string t.(1) ))
       table)

let test_omap () =
  (* non-empty input: flag false on each row *)
  let t1 = run_table (OMap ("n", TupleConstruct [ ("x", int_scalar 1) ])) in
  check_int "one row" 1 (List.length t1);
  check "flag false" "false" (Serializer.sequence_to_string (List.hd t1).(0));
  (* empty input: one null row *)
  let empty_table = Select (Scalar (Atomic.Boolean false), TupleConstruct [ ("x", int_scalar 1) ]) in
  let t2 = run_table (OMap ("n", empty_table)) in
  check_int "one null row" 1 (List.length t2);
  check "flag true" "true" (Serializer.sequence_to_string (List.hd t2).(0));
  check "missing field empty" "" (Serializer.sequence_to_string (List.hd t2).(1))

let test_omapconcat () =
  let dep_empty = Select (Scalar (Atomic.Boolean false), TupleConstruct [ ("y", int_scalar 9) ]) in
  let t = run_table (OMapConcat ("n", dep_empty, TupleConstruct [ ("x", int_scalar 7) ])) in
  check_int "unmatched row kept" 1 (List.length t);
  (* layout: n, x, y *)
  check "flag true" "true" (Serializer.sequence_to_string (List.hd t).(0));
  check "left preserved" "7" (Serializer.sequence_to_string (List.hd t).(1));
  check "right empty" "" (Serializer.sequence_to_string (List.hd t).(2))

let test_product_order () =
  let tbl name vals =
    MapFromItem
      (TupleConstruct [ (name, Input) ],
       List.fold_left (fun acc v -> Seq (acc, int_scalar v)) (int_scalar (List.hd vals)) (List.tl vals))
  in
  let p =
    MapToItem
      ( Seq (FieldAccess "a", FieldAccess "b"),
        Product (tbl "a" [ 1; 2 ], tbl "b" [ 10; 20 ]) )
  in
  check "left-major order" "1 10 1 20 2 10 2 20" (ser p)

let test_element_construction () =
  (* attributes collected, atoms space-joined into text, nodes copied *)
  let attr = Attribute ("k", Scalar (Atomic.String "v")) in
  let p = Element ("e", Seq (attr, Seq (int_scalar 1, int_scalar 2))) in
  check "element" {|<e k="v">1 2</e>|} (ser p);
  (* constructed content gets fresh node ids in document order *)
  match run_items p with
  | [ Item.Node e ] ->
      let ids = List.map (fun n -> n.Node.nid) (Node.descendant_or_self e) in
      Alcotest.(check bool) "preorder ids" true
        (List.sort compare ids = ids)
  | _ -> Alcotest.fail "one element"

let test_text_and_comment () =
  check "text joins atoms" "a b" (ser (Text (Seq (Scalar (Atomic.String "a"), Scalar (Atomic.String "b")))));
  check "empty text vanishes" "" (ser (Text Empty));
  check "comment" "<!--c-->" (ser (Comment (Scalar (Atomic.String "c"))));
  check "pi" "<?t d?>" (ser (Pi ("t", Scalar (Atomic.String "d"))))

let test_cond_and_typeassert () =
  check "cond true" "1"
    (ser (Cond (Scalar (Atomic.Boolean true), int_scalar 1, int_scalar 2)));
  check "cond on empty is false" "2" (ser (Cond (Empty, int_scalar 1, int_scalar 2)));
  (match run_items (TypeAssert (Seqtype.star (Seqtype.It_atomic Atomic.T_integer), Seq (int_scalar 1, int_scalar 2))) with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "assert passes through");
  match
    run_items (TypeAssert (Seqtype.item (Seqtype.It_atomic Atomic.T_string), int_scalar 1))
  with
  | exception Seqtype.Type_assertion_failure _ -> ()
  | _ -> Alcotest.fail "assert failure expected"

let test_item_quantifier () =
  (* the retained item-level Quantified operator binds its variable in
     the parameter frame *)
  let src = Seq (int_scalar 1, Seq (int_scalar 5, int_scalar 9)) in
  let body = Call ("op:general-gt", [ Var "v"; int_scalar 4 ]) in
  check "some item > 4" "true"
    (ser (Quantified (Ast.Some_quant, "v", src, body)));
  check "every item > 4" "false"
    (ser (Quantified (Ast.Every_quant, "v", src, body)))

let test_map_some_every () =
  let table =
    MapFromItem (TupleConstruct [ ("v", Input) ], Seq (int_scalar 1, int_scalar 5))
  in
  let gt3 = Call ("op:general-gt", [ FieldAccess "v"; int_scalar 3 ]) in
  check "some" "true" (ser (MapSome (gt3, table)));
  check "every" "false" (ser (MapEvery (gt3, table)))

let test_var_and_params () =
  Dynamic_ctx.bind_global ctx "g" [ Item.of_int 99 ];
  check "global lookup" "99" (ser (Var "g"));
  match run_items (Var "unbound~") with
  | exception Dynamic_ctx.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "unbound variable must fail"

let test_input_outside_context () =
  match run_items Input with
  | exception Dynamic_ctx.Dynamic_error _ -> ()
  | _ -> Alcotest.fail "IN outside dependent context must fail"

let test_serialize_operator () =
  let path = Filename.temp_file "xqc_test" ".xml" in
  let p = Serialize (path, Element ("out", int_scalar 5)) in
  (match run_items p with [] -> () | _ -> Alcotest.fail "serialize yields empty");
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check "file contents" "<out>5</out>" line

let () =
  Alcotest.run "runtime"
    [
      ( "layouts",
        [
          Alcotest.test_case "concat spec" `Quick test_concat_spec;
          Alcotest.test_case "slot errors" `Quick test_slot_resolution_error;
          Alcotest.test_case "construct/access" `Quick test_tuple_construct_and_access;
        ] );
      ( "operators",
        [
          Alcotest.test_case "map concat" `Quick test_map_concat;
          Alcotest.test_case "map from item / index" `Quick test_map_from_item_and_index;
          Alcotest.test_case "omap" `Quick test_omap;
          Alcotest.test_case "omapconcat" `Quick test_omapconcat;
          Alcotest.test_case "product order" `Quick test_product_order;
          Alcotest.test_case "element construction" `Quick test_element_construction;
          Alcotest.test_case "text/comment/pi" `Quick test_text_and_comment;
          Alcotest.test_case "cond and assert" `Quick test_cond_and_typeassert;
          Alcotest.test_case "map some/every" `Quick test_map_some_every;
          Alcotest.test_case "item quantifier" `Quick test_item_quantifier;
          Alcotest.test_case "vars" `Quick test_var_and_params;
          Alcotest.test_case "input errors" `Quick test_input_outside_context;
          Alcotest.test_case "serialize" `Quick test_serialize_operator;
        ] );
    ]
