(* Intra-query parallelism: partitioned execution must be observationally
   identical to sequential execution — same serialized results, same
   errors, same order — for every engine strategy, with the fused tier
   on and off, at several partition degrees.  The width gate is lowered
   to 1 so the machinery actually engages on the small random documents;
   a separate test keeps the default gate and checks the graceful
   sequential no-op. *)

let strategies = Xqc.all_strategies

(* Run [f] with the domain budget forced to [k] and the planner/runtime
   width gates lowered so every eligible operator actually partitions. *)
let with_par k f =
  let saved_min = !Xqc.Par_exec.par_min_items in
  let saved_thr = !Xqc.Planner.default_par_threshold in
  Xqc.Domain_pool.set_budget (Some k);
  Xqc.Par_exec.par_min_items := 1;
  Xqc.Planner.default_par_threshold := 0.;
  Fun.protect
    ~finally:(fun () ->
      Xqc.Domain_pool.set_budget None;
      Xqc.Par_exec.par_min_items := saved_min;
      Xqc.Planner.default_par_threshold := saved_thr)
    f

let with_fuse mode f =
  let saved = !Xqc.Codegen.mode in
  Xqc.Codegen.mode := mode;
  Fun.protect ~finally:(fun () -> Xqc.Codegen.mode := saved) f

let counter name =
  match List.assoc_opt name (Xqc.Obs.global_counters ()) with
  | Some v -> v
  | None -> 0

(* -------- random document generator (as in test_equivalence) -------- *)

let doc_gen : Xqc.Node.t QCheck.Gen.t =
  let open QCheck.Gen in
  let value = oneofl [ "1"; "2"; "3"; "10"; "1.5"; "0" ] in
  let person i =
    value >>= fun age ->
    oneofl [ "a"; "b"; "c" ] >>= fun name ->
    int_bound 2 >>= fun pets ->
    return
      (Printf.sprintf
         {|<person id="p%d" age="%s"><name>%s</name>%s</person>|} i age name
         (String.concat ""
            (List.init pets (fun p -> Printf.sprintf "<pet>x%d</pet>" p))))
  in
  let order _i =
    value >>= fun amount ->
    int_bound 6 >>= fun who ->
    return
      (Printf.sprintf {|<order buyer="p%d"><amount>%s</amount></order>|} who
         amount)
  in
  int_range 2 7 >>= fun np ->
  int_range 0 8 >>= fun no ->
  let rec seq f n acc =
    if n = 0 then return (List.rev acc)
    else f n >>= fun x -> seq f (n - 1) (x :: acc)
  in
  seq person np [] >>= fun persons ->
  seq order no [] >>= fun orders ->
  return
    (Xqc.parse_document
       (Printf.sprintf "<db><people>%s</people><orders>%s</orders></db>"
          (String.concat "" persons) (String.concat "" orders)))

(* Queries chosen to exercise the partitioned operators: strict step
   chains, hash joins (both build sides arise from the estimates),
   streaming aggregates over fused pipelines, and order-sensitive
   consumers downstream of a partitioned scan. *)
let queries =
  [|
    "count($d//person)";
    "$d//person/name/text()";
    "for $p in $d//person where $p/@age > 2 return $p/@id";
    "for $p in $d//person, $o in $d//order where $o/@buyer = $p/@id return \
     <hit>{$p/name/text()}</hit>";
    "for $p in $d//person let $os := (for $o in $d//order where $o/@buyer = \
     $p/@id return $o) return <p n=\"{$p/name/text()}\">{count($os)}</p>";
    "for $p in $d//person order by $p/@age descending, $p/@id return \
     $p/name/text()";
    "sum(for $o in $d//order return $o/amount[. castable as xs:double] cast \
     as xs:double?)";
    "some $p in $d//person satisfies $p/@age = 10";
    "$d//person[2]/name/text()";
    "$d//person[last()]/@id";
    "for $a in $d//person, $b in $d//person where $a/@age = $b/@age return 1";
    "distinct-values($d//order/@buyer)";
    "for $p in $d//person[position() > 1] return $p/@id";
    "count(for $i in $d//person where $i/@age >= 1 return $i)";
    "for $x in ($d//person union $d//order) return name($x)";
  |]

let arb =
  QCheck.make
    ~print:(fun (qi, _) -> queries.(qi))
    QCheck.Gen.(pair (int_bound (Array.length queries - 1)) doc_gen)

let run_one strategy doc q =
  match
    Xqc.eval_string ~strategy
      ~variables:[ ("d", [ Xqc.Item.Node doc ]) ]
      q
  with
  | items -> "OK:" ^ Xqc.serialize items
  | exception Xqc.Error _ -> "ERROR"

(* The core property: for each strategy, the partitioned run agrees
   byte-for-byte with that strategy's own sequential run, for every
   degree and both fuse modes. *)
let prop_parallel_equals_sequential (qi, doc) =
  let q = queries.(qi) in
  List.for_all
    (fun strategy ->
      let reference = run_one strategy doc q in
      List.for_all
        (fun k ->
          List.for_all
            (fun fuse ->
              let got =
                with_par k (fun () ->
                    with_fuse fuse (fun () -> run_one strategy doc q))
              in
              if String.equal got reference then true
              else
                QCheck.Test.fail_reportf
                  "strategy %s, par=%d, fuse=%s:\n  sequential: %s\n  \
                   parallel:   %s"
                  (Xqc.strategy_name strategy)
                  k
                  (match fuse with
                  | Xqc.Codegen.Off -> "off"
                  | Xqc.Codegen.Auto -> "auto"
                  | Xqc.Codegen.Force -> "force")
                  reference got)
            [ Xqc.Codegen.Off; Xqc.Codegen.Force ])
        [ 2; 3; 8 ])
    strategies

let test_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parallel(K) = sequential" ~count:25 arb
       prop_parallel_equals_sequential)

(* -------- determinism under real contention -------- *)

(* The same prepared plan, run repeatedly at a high degree over a
   document wide enough to engage every partition: all runs must give
   one answer, and it must be the sequential answer.  This is the test
   that would catch an order-dependent merge or a racy register. *)
let test_determinism () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:200_000 () in
  let q =
    "for $i in $auction/site/regions//item where $i/location = \"United \
     States\" return $i/name/text()"
  in
  let run () =
    Xqc.serialize
      (Xqc.eval_string ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] q)
  in
  let reference = run () in
  with_par 8 (fun () ->
      for i = 1 to 10 do
        let got = run () in
        if not (String.equal got reference) then
          Alcotest.failf "run %d diverged from the sequential result" i
      done)

(* -------- the machinery actually engages -------- *)

let test_par_tasks_counted () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:200_000 () in
  let q = "count($auction/site/regions//item/name)" in
  let run () =
    Xqc.serialize
      (Xqc.eval_string ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] q)
  in
  let reference = run () in
  let before = counter "par_tasks" in
  let got = with_par 4 run in
  Alcotest.(check string) "same answer" reference got;
  Alcotest.(check bool) "partition tasks ran" true (counter "par_tasks" > before)

(* -------- graceful no-op at budget 1 -------- *)

let test_budget_one_noop () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:50_000 () in
  let q = "count($auction/site/regions//item)" in
  let run () =
    Xqc.serialize
      (Xqc.eval_string ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ] q)
  in
  let reference = run () in
  Xqc.Domain_pool.set_budget (Some 1);
  Fun.protect ~finally:(fun () -> Xqc.Domain_pool.set_budget None)
  @@ fun () ->
  let tasks = counter "par_tasks" in
  let helpers = Xqc.Domain_pool.helpers_alive () in
  let got = run () in
  Alcotest.(check string) "same answer" reference got;
  Alcotest.(check int) "no partition tasks" tasks (counter "par_tasks");
  Alcotest.(check int) "no helper domains spawned" helpers
    (Xqc.Domain_pool.helpers_alive ())

(* -------- chunking -------- *)

let test_chunk () =
  let xs = List.init 10 Fun.id in
  List.iter
    (fun k ->
      let chunks = Xqc.Par_exec.chunk k xs in
      Alcotest.(check (list int)) "coverage in order" xs (List.concat chunks);
      Alcotest.(check bool)
        "at most k non-empty chunks" true
        (List.length chunks <= max 1 k
        && List.for_all (fun c -> c <> []) chunks))
    [ 1; 2; 3; 4; 10; 16 ];
  Alcotest.(check (list (list int))) "singleton" [ [ 7 ] ]
    (Xqc.Par_exec.chunk 4 [ 7 ]);
  Alcotest.(check (list (list int))) "empty" [ [] ] (Xqc.Par_exec.chunk 3 [])

(* -------- pool batch semantics -------- *)

let test_parallel_list () =
  Xqc.Domain_pool.set_budget (Some 4);
  Fun.protect ~finally:(fun () -> Xqc.Domain_pool.set_budget None)
  @@ fun () ->
  let got = Xqc.Domain_pool.parallel_list (List.init 50 (fun i () -> i * i)) in
  Alcotest.(check (list int)) "results in order" (List.init 50 (fun i -> i * i))
    got;
  (* nested batches must not deadlock *)
  let nested =
    Xqc.Domain_pool.parallel_list
      (List.init 6 (fun i () ->
           List.fold_left ( + ) 0
             (Xqc.Domain_pool.parallel_list (List.init 8 (fun j () -> (i * 8) + j)))))
  in
  Alcotest.(check int) "nested sum" (List.fold_left ( + ) 0 (List.init 48 Fun.id))
    (List.fold_left ( + ) 0 nested);
  (* the first task exception surfaces unwrapped *)
  match
    Xqc.Domain_pool.parallel_list
      (List.init 8 (fun i () -> if i = 5 then failwith "boom" else i))
  with
  | _ -> Alcotest.fail "expected the task failure to propagate"
  | exception Failure m -> Alcotest.(check string) "original exception" "boom" m

let () =
  Alcotest.run "par"
    [
      ("equivalence", [ test_equivalence ]);
      ( "determinism",
        [ Alcotest.test_case "repeated runs agree" `Quick test_determinism ] );
      ( "engagement",
        [
          Alcotest.test_case "par_tasks advance" `Quick test_par_tasks_counted;
          Alcotest.test_case "budget 1 is a no-op" `Quick test_budget_one_noop;
        ] );
      ( "pool",
        [
          Alcotest.test_case "chunk" `Quick test_chunk;
          Alcotest.test_case "parallel_list" `Quick test_parallel_list;
        ] );
    ]
