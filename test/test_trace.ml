(* The tracing and contention-telemetry plane in isolation: trace-id
   determinism under a seed, span-tree well-formedness, the per-domain
   ring store, the ambient current-trace helpers, instrumented-mutex
   contention accounting, the slow-query ring's threshold / eviction /
   cross-domain-merge behavior, and the Prometheus text renderer. *)

module Obs = Xqc.Obs
module Trace = Xqc.Trace
module Slow_log = Xqc.Slow_log

(* ------------------------------------------------------------------ *)
(* Trace ids and span trees                                            *)
(* ------------------------------------------------------------------ *)

let test_deterministic_ids () =
  Trace.reset ~seed:100 ();
  let t1 = Trace.start ~op:"query" () in
  let t2 = Trace.start ~op:"query" () in
  let t3 = Trace.start ~op:"execute" () in
  Alcotest.(check (list int))
    "seeded ids are sequential" [ 100; 101; 102 ]
    [ Trace.id t1; Trace.id t2; Trace.id t3 ];
  Trace.reset ~seed:100 ();
  let t4 = Trace.start ~op:"query" () in
  Alcotest.(check int) "reseeding restarts the sequence" 100 (Trace.id t4)

let test_span_tree_shape () =
  Trace.reset ~seed:1 ();
  let tr = Trace.start ~op:"query" () in
  Trace.set_source tr "1+1";
  Trace.span tr "outer" (fun () ->
      Trace.span tr "inner" (fun () -> Trace.event tr "tick");
      Trace.span tr ~attrs:[ ("k", "v") ] "sibling" ignore);
  ignore (Trace.finish tr ~outcome:"ok");
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "trace not well-formed: %s" m);
  let spans = Trace.spans tr in
  Alcotest.(check (list string))
    "creation order"
    [ "request"; "outer"; "inner"; "tick"; "sibling" ]
    (List.map (fun sp -> sp.Trace.sp_name) spans);
  let by_name n = List.find (fun sp -> sp.Trace.sp_name = n) spans in
  let root = by_name "request" and outer = by_name "outer" in
  Alcotest.(check int) "root has no parent" 0 root.Trace.sp_parent;
  Alcotest.(check int) "outer under root" root.Trace.sp_id outer.Trace.sp_parent;
  Alcotest.(check int)
    "inner under outer" outer.Trace.sp_id (by_name "inner").Trace.sp_parent;
  Alcotest.(check int)
    "sibling under outer" outer.Trace.sp_id (by_name "sibling").Trace.sp_parent;
  Alcotest.(check bool)
    "attrs recorded" true
    (List.mem_assoc "k" (by_name "sibling").Trace.sp_attrs)

let test_finish_closes_stragglers () =
  Trace.reset ~seed:1 ();
  let tr = Trace.start ~op:"query" () in
  let _open1 = Trace.open_span tr "left-open" in
  let _open2 = Trace.open_span tr "also-open" in
  let total = Trace.finish tr ~outcome:"error" in
  Alcotest.(check bool) "finished" true tr.Trace.tr_finished;
  Alcotest.(check bool) "nonnegative total" true (total >= 0.0);
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "straggler close broke nesting: %s" m);
  (* idempotent: a second finish neither re-stores nor restamps *)
  let again = Trace.finish tr ~outcome:"ok" in
  Alcotest.(check (float 0.0)) "finish is idempotent" total again;
  Alcotest.(check string) "first outcome wins" "error" tr.Trace.tr_outcome

let test_exception_records_error_attr () =
  Trace.reset ~seed:1 ();
  let tr = Trace.start ~op:"query" () in
  (try Trace.span tr "boom" (fun () -> failwith "nope")
   with Failure _ -> ());
  ignore (Trace.finish tr ~outcome:"error");
  let sp = List.find (fun sp -> sp.Trace.sp_name = "boom") (Trace.spans tr) in
  Alcotest.(check bool)
    "error attribute present" true
    (List.mem_assoc "error" sp.Trace.sp_attrs)

(* ------------------------------------------------------------------ *)
(* The ring store                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_find_and_recent () =
  Trace.reset ~seed:500 ();
  let finished =
    List.init 5 (fun i ->
        let tr = Trace.start ~op:(Printf.sprintf "op%d" i) () in
        ignore (Trace.finish tr ~outcome:"ok");
        tr)
  in
  let unfinished = Trace.start ~op:"pending" () in
  Alcotest.(check int) "all finished stored" 5 (Trace.stored_count ());
  List.iter
    (fun tr ->
      match Trace.find (Trace.id tr) with
      | Some found ->
          Alcotest.(check string) "found the right trace" tr.Trace.tr_op
            found.Trace.tr_op
      | None -> Alcotest.failf "trace %d not found" (Trace.id tr))
    finished;
  Alcotest.(check bool)
    "unfinished traces are not stored" true
    (Trace.find (Trace.id unfinished) = None);
  let recent2 = Trace.recent 2 in
  Alcotest.(check int) "recent bounds the count" 2 (List.length recent2)

let test_ring_across_domains () =
  Trace.reset ~seed:1000 ();
  let per_domain = 10 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              let tr = Trace.start ~op:"query" () in
              Trace.span tr "eval" ignore;
              ignore (Trace.finish tr ~outcome:"ok")
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "every domain's traces are visible" (4 * per_domain)
    (Trace.stored_count ())

(* ------------------------------------------------------------------ *)
(* Ambient current trace                                               *)
(* ------------------------------------------------------------------ *)

let test_ambient_current () =
  Trace.reset ~seed:1 ();
  Alcotest.(check bool) "no ambient trace by default" true (Trace.current () = None);
  Trace.in_span "ignored" ignore;
  let tr = Trace.start ~op:"query" () in
  Trace.with_current (Some tr) (fun () ->
      Trace.in_span "inner" (fun () ->
          Trace.annotate_current [ ("hit", "true") ]));
  Alcotest.(check bool) "ambient restored" true (Trace.current () = None);
  ignore (Trace.finish tr ~outcome:"ok");
  let sp = List.find (fun sp -> sp.Trace.sp_name = "inner") (Trace.spans tr) in
  Alcotest.(check bool)
    "ambient span recorded with annotation" true
    (List.mem_assoc "hit" sp.Trace.sp_attrs)

(* ------------------------------------------------------------------ *)
(* Instrumented mutexes                                                *)
(* ------------------------------------------------------------------ *)

let test_tmutex_contention () =
  Obs.reset_lock_stats ();
  let m = Obs.tmutex "test_contended" in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.with_lock m (fun () -> incr counter)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "mutual exclusion held" 4000 !counter;
  let lk =
    List.find (fun lk -> lk.Obs.lk_name = "test_contended") (Obs.lock_summaries ())
  in
  Alcotest.(check int) "every acquisition counted" 4000 lk.Obs.lk_acquires;
  Alcotest.(check bool) "hold time accumulated" true (lk.Obs.lk_hold_ms >= 0.0);
  Alcotest.(check bool)
    "contended never exceeds acquires" true
    (lk.Obs.lk_contended <= lk.Obs.lk_acquires)

let test_tmutex_shared_stats_record () =
  Obs.reset_lock_stats ();
  let a = Obs.tmutex "test_shared_name" in
  let b = Obs.tmutex "test_shared_name" in
  Obs.with_lock a ignore;
  Obs.with_lock b ignore;
  (* two instances, one stats record: independent mutexes, merged line *)
  Obs.with_lock a (fun () -> Obs.with_lock b ignore);
  let lk =
    List.find (fun lk -> lk.Obs.lk_name = "test_shared_name") (Obs.lock_summaries ())
  in
  Alcotest.(check int) "acquisitions merged by name" 4 lk.Obs.lk_acquires

(* ------------------------------------------------------------------ *)
(* Slow-query ring                                                     *)
(* ------------------------------------------------------------------ *)

let entry ms =
  Slow_log.entry ~op:"query" ~source:(Printf.sprintf "q%.0f" ms) ~ms
    ~at:(Obs.now ()) ()

let entry_times sl =
  List.map (fun e -> e.Slow_log.en_ms) (Slow_log.entries sl)

let test_slow_log_threshold () =
  let sl = Slow_log.create ~capacity:4 ~threshold_ms:50.0 () in
  Alcotest.(check bool) "under threshold rejected" false
    (Slow_log.note sl (entry 49.9));
  Alcotest.(check bool) "at threshold admitted" true
    (Slow_log.note sl (entry 50.0));
  Alcotest.(check bool) "over threshold admitted" true
    (Slow_log.note sl (entry 51.0));
  Alcotest.(check int) "seen counts over-threshold offers" 2 (Slow_log.seen sl);
  Alcotest.(check (list (float 0.0))) "worst first" [ 51.0; 50.0 ] (entry_times sl)

let test_slow_log_eviction () =
  let sl = Slow_log.create ~capacity:3 ~threshold_ms:1.0 () in
  List.iter
    (fun ms -> ignore (Slow_log.note sl (entry ms)))
    [ 10.0; 30.0; 20.0; 40.0; 5.0 ];
  (* capacity 3: 5.0 never displaces anything, 40.0 evicts 10.0 *)
  Alcotest.(check (list (float 0.0)))
    "keeps the global worst three, sorted" [ 40.0; 30.0; 20.0 ] (entry_times sl);
  Alcotest.(check bool) "full ring rejects a non-improvement" false
    (Slow_log.note sl (entry 15.0));
  Alcotest.(check bool) "full ring admits an improvement" true
    (Slow_log.note sl (entry 25.0));
  Alcotest.(check (list (float 0.0)))
    "improvement displaces the least-slow" [ 40.0; 30.0; 25.0 ] (entry_times sl)

let test_slow_log_racing_domains () =
  let sl = Slow_log.create ~capacity:8 ~threshold_ms:1.0 () in
  (* Four domains racing 50 inserts each with distinct durations; no
     matter the interleaving, the final contents must be exactly the
     global worst eight. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 49 do
              ignore (Slow_log.note sl (entry (float_of_int (2 + (i * 4) + d))))
            done))
  in
  List.iter Domain.join domains;
  let want = List.init 8 (fun i -> float_of_int (201 - i)) in
  Alcotest.(check (list (float 0.0))) "global top-8 survives the race" want
    (entry_times sl)

let test_slow_log_explain_attach () =
  let sl = Slow_log.create ~capacity:2 ~threshold_ms:1.0 () in
  let e = entry 10.0 in
  ignore (Slow_log.note sl e);
  Slow_log.set_explain sl e "PLAN";
  match Slow_log.entries sl with
  | [ stored ] ->
      Alcotest.(check (option string)) "explain attached" (Some "PLAN")
        stored.Slow_log.en_explain
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Prometheus text renderer                                            *)
(* ------------------------------------------------------------------ *)

let test_prometheus_rendering () =
  let text =
    Obs.prometheus_to_string
      [
        Obs.Prom_counter
          ( "xqc_requests_total",
            "Total requests.",
            [ ([], 42.0); ([ ("worker", "0") ], 7.0) ] );
        Obs.Prom_gauge ("xqc_queue_depth", "Queued \"requests\"\nnow.", [ ([], 3.0) ]);
        Obs.Prom_summary
          ( "xqc_latency_ms",
            "Latency.",
            [ (0.5, 1.25); (0.99, 9.0) ],
            100.5,
            17 );
      ]
  in
  let has s =
    let n = String.length s and m = String.length text in
    let rec at i = i + n <= m && (String.sub text i n = s || at (i + 1)) in
    at 0
  in
  List.iter
    (fun line ->
      if not (has line) then
        Alcotest.failf "missing %S in rendered text:\n%s" line text)
    [
      "# HELP xqc_requests_total Total requests.";
      "# TYPE xqc_requests_total counter";
      "xqc_requests_total 42";
      "xqc_requests_total{worker=\"0\"} 7";
      "# TYPE xqc_queue_depth gauge";
      (* newline in help must be escaped, not literal *)
      "Queued \"requests\"\\nnow.";
      "# TYPE xqc_latency_ms summary";
      "xqc_latency_ms{quantile=\"0.5\"} 1.25";
      "xqc_latency_ms{quantile=\"0.99\"} 9";
      "xqc_latency_ms_sum 100.5";
      "xqc_latency_ms_count 17";
    ]

let () =
  Alcotest.run "trace"
    [
      ( "ids",
        [ Alcotest.test_case "deterministic ids" `Quick test_deterministic_ids ] );
      ( "spans",
        [
          Alcotest.test_case "span tree shape" `Quick test_span_tree_shape;
          Alcotest.test_case "finish closes stragglers" `Quick
            test_finish_closes_stragglers;
          Alcotest.test_case "exception error attr" `Quick
            test_exception_records_error_attr;
        ] );
      ( "rings",
        [
          Alcotest.test_case "find and recent" `Quick test_ring_find_and_recent;
          Alcotest.test_case "across domains" `Quick test_ring_across_domains;
        ] );
      ( "ambient",
        [ Alcotest.test_case "current trace" `Quick test_ambient_current ] );
      ( "locks",
        [
          Alcotest.test_case "contention stats" `Quick test_tmutex_contention;
          Alcotest.test_case "shared stats record" `Quick
            test_tmutex_shared_stats_record;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "threshold" `Quick test_slow_log_threshold;
          Alcotest.test_case "eviction order" `Quick test_slow_log_eviction;
          Alcotest.test_case "racing domains" `Quick test_slow_log_racing_domains;
          Alcotest.test_case "explain attach" `Quick test_slow_log_explain_attach;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "text exposition" `Quick test_prometheus_rendering;
        ] );
    ]
