(* The cost-based physical planner (Section 6): plan-shape snapshots for
   the queries the paper optimizes — equi-joins become hash joins,
   positional predicates become streamed prefixes, count over a name
   chain becomes an index range probe — plus the hash build-side choice
   and the typed order-by comparison the planner's plans execute. *)

open Xqc
open Algebra

let physical_main q =
  match Xqc.physical_plan (Xqc.prepare q) with
  | Some pq -> pq.Physical.pmain
  | None -> Alcotest.fail "no physical plan for an algebraic strategy"

let count_ops pred (p : Physical.t) =
  Physical.fold (fun n t -> if pred t.Physical.pop then n + 1 else n) 0 p

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------- join algorithm snapshots -------- *)

let test_xmark_joins_are_hash () =
  List.iter
    (fun name ->
      let q = List.assoc name Xqc_workload.Xmark_queries.all in
      let p = physical_main q in
      let hash =
        count_ops (function Physical.PHashJoin _ -> true | _ -> false) p
      in
      let nl =
        count_ops (function Physical.PNestedLoop _ -> true | _ -> false) p
      in
      check_bool (name ^ " plans a hash join") true (hash >= 1);
      check_int (name ^ " plans no nested loop") 0 nl)
    [ "Q8"; "Q9" ]

let test_inequality_join_is_sort () =
  let p =
    physical_main
      "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y return \
       $y * 10) return ($x, $a)"
  in
  check_bool "figure 4 plans a sort join" true
    (count_ops
       (function
         | Physical.PSortJoin { op = Promotion.Le; _ } -> true | _ -> false)
       p
    >= 1)

let test_forced_algorithm_overrides_cost () =
  let q =
    List.assoc "Q8" Xqc_workload.Xmark_queries.all
  in
  match Xqc.physical_plan (Xqc.prepare ~force_join:Physical.Nested_loop q) with
  | Some pq ->
      check_int "forcing NL leaves no hash join" 0
        (count_ops
           (function Physical.PHashJoin _ -> true | _ -> false)
           pq.Physical.pmain);
      check_bool "forcing NL plans a nested loop" true
        (count_ops
           (function Physical.PNestedLoop _ -> true | _ -> false)
           pq.Physical.pmain
        >= 1)
  | None -> Alcotest.fail "no physical plan"

(* -------- streaming choices -------- *)

let test_positional_becomes_stream_select () =
  let p = physical_main "($auction//item)[1]" in
  check_bool "[1] plans a streamed prefix" true
    (count_ops
       (function
         | Physical.PStreamSelect { bound = 1; _ } -> true | _ -> false)
       p
    >= 1)

let test_count_becomes_index_probe () =
  let p = physical_main "count($auction//item)" in
  check_bool "count over a name chain plans the index probe" true
    (count_ops
       (function
         | Physical.PCallStream (Physical.SCount, "fn:count", _) -> true
         | _ -> false)
       p
    >= 1)

let test_exists_streams () =
  let p = physical_main "exists($auction//item)" in
  check_bool "exists streams with early exit" true
    (count_ops
       (function
         | Physical.PCallStream (Physical.SExists false, _, _) -> true
         | _ -> false)
       p
    >= 1)

(* -------- hash build side: smaller estimated input builds -------- *)

(* a literal table of [n] rows with a single field [f] *)
let tbl f n =
  let rec scalars k =
    if k = 1 then Scalar (Atomic.Integer 1)
    else Seq (scalars (k - 1), Scalar (Atomic.Integer k))
  in
  MapFromItem (TupleConstruct [ (f, Input) ], scalars n)

let eq_join left right =
  Join
    ( Split_pred
        { op = Promotion.Eq;
          left_key = FieldAccess "a";
          right_key = FieldAccess "b" },
      left, right )

let build_side_of (p : Physical.t) =
  let found =
    Physical.fold
      (fun acc t ->
        match t.Physical.pop with
        | Physical.PHashJoin { build; _ } -> Some build
        | _ -> acc)
      None p
  in
  match found with
  | Some b -> b
  | None -> Alcotest.fail "expected a hash join in the plan"

let test_build_side_follows_cardinality () =
  (* 2 rows vs 5 rows: the smaller left side is the build side *)
  let small_left = Planner.plan (eq_join (tbl "a" 2) (tbl "b" 5)) in
  (match build_side_of small_left with
  | Physical.Build_left -> ()
  | Physical.Build_right -> Alcotest.fail "smaller left side must build");
  (* flipping the cardinalities flips the orientation *)
  let small_right = Planner.plan (eq_join (tbl "a" 5) (tbl "b" 2)) in
  (match build_side_of small_right with
  | Physical.Build_right -> ()
  | Physical.Build_left -> Alcotest.fail "smaller right side must build");
  (* a tie keeps the classic probe-left/build-right orientation *)
  match build_side_of (Planner.plan (eq_join (tbl "a" 3) (tbl "b" 3))) with
  | Physical.Build_right -> ()
  | Physical.Build_left -> Alcotest.fail "ties keep build-right"

let test_build_sides_agree () =
  (* both orientations produce the same pairs in the same order *)
  let q =
    "for $p in $d//person, $o in $d//order where $o/@buyer = $p/@id return \
     <hit b=\"{$o/@buyer}\">{$p/name/text()}</hit>"
  in
  let doc =
    Xqc.parse_document
      {|<db><people><person id="p1"><name>a</name></person><person id="p2"><name>b</name></person></people><orders><order buyer="p2"/><order buyer="p1"/><order buyer="p2"/><order buyer="p9"/><order buyer="p1"/></orders></db>|}
  in
  let go q' =
    Xqc.serialize
      (Xqc.eval_string ~variables:[ ("d", [ Xqc.Item.Node doc ]) ] q')
  in
  (* swapping the for-clause order swaps which side is smaller, so the
     two runs exercise both build orientations on the same data *)
  let swapped =
    "for $o in $d//order, $p in $d//person where $o/@buyer = $p/@id return \
     <hit b=\"{$o/@buyer}\">{$p/name/text()}</hit>"
  in
  Alcotest.(check bool)
    "both orientations find all matches" true
    (String.length (go q) > 0 && String.length (go swapped) > 0);
  Alcotest.(check string)
    "orientation does not change the match set (sorted)"
    (String.concat "|" (List.sort compare (String.split_on_char '<' (go q))))
    (String.concat "|" (List.sort compare (String.split_on_char '<' (go swapped))))

(* -------- typed order-by comparison (all strategies) -------- *)

let sort_all q =
  List.map
    (fun s ->
      match Xqc.eval_string ~strategy:s q with
      | items -> "OK:" ^ Xqc.serialize items
      | exception Xqc.Error m -> "ERROR:" ^ m)
    Xqc.all_strategies

let test_mixed_numeric_sort_keys () =
  (* integers and doubles compare numerically, not lexically or by
     constructor tag *)
  let results = sort_all "for $x in (3, 1.5, 2, 10) order by $x return $x" in
  List.iter
    (fun r -> Alcotest.(check string) "numeric order" "OK:1.5 2 3 10" r)
    results

let test_incomparable_sort_keys_error () =
  let results = sort_all {|for $x in (1, "a") order by $x return $x|} in
  List.iter
    (fun r ->
      check_bool "mixed int/string keys raise a dynamic error" true
        (String.length r >= 6 && String.sub r 0 6 = "ERROR:"))
    results

let test_string_and_boolean_sorts () =
  List.iter
    (fun r -> Alcotest.(check string) "string order" {|OK:a b c|} r)
    (sort_all {|for $x in ("b", "c", "a") order by $x return $x|});
  List.iter
    (fun r -> Alcotest.(check string) "boolean order" "OK:false true" r)
    (sort_all "for $x in (true(), false()) order by $x return $x")

let () =
  Alcotest.run "planner"
    [
      ( "join choice",
        [
          Alcotest.test_case "xmark equi-joins -> hash" `Quick
            test_xmark_joins_are_hash;
          Alcotest.test_case "inequality -> sort" `Quick
            test_inequality_join_is_sort;
          Alcotest.test_case "force overrides cost" `Quick
            test_forced_algorithm_overrides_cost;
        ] );
      ( "streaming choice",
        [
          Alcotest.test_case "positional prefix" `Quick
            test_positional_becomes_stream_select;
          Alcotest.test_case "count -> index probe" `Quick
            test_count_becomes_index_probe;
          Alcotest.test_case "exists -> early exit" `Quick test_exists_streams;
        ] );
      ( "build side",
        [
          Alcotest.test_case "smaller side builds" `Quick
            test_build_side_follows_cardinality;
          Alcotest.test_case "orientations agree" `Quick test_build_sides_agree;
        ] );
      ( "order by",
        [
          Alcotest.test_case "mixed numeric keys" `Quick
            test_mixed_numeric_sort_keys;
          Alcotest.test_case "incomparable keys" `Quick
            test_incomparable_sort_keys_error;
          Alcotest.test_case "string/boolean keys" `Quick
            test_string_and_boolean_sorts;
        ] );
    ]
