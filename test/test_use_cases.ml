(* The W3C XML Query Use Cases, group "XMP" (the bibliography use case),
   adapted to this engine's subset.  The paper reports that the compiler
   passes a regression suite including the Use Cases; this suite runs the
   twelve XMP queries against the W3C sample data, checks exact results
   where the use-case document fixes them, and checks that all five
   engine configurations agree everywhere. *)

let bib_xml =
  {|<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="1992"><title>Advanced Programming in the Unix environment</title><author><last>Stevens</last><first>W.</first></author><publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last><first>Serge</first></author><author><last>Buneman</last><first>Peter</first></author><author><last>Suciu</last><first>Dan</first></author><publisher>Morgan Kaufmann Publishers</publisher><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology and Content for Digital TV</title><editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor><publisher>Kluwer Academic Publishers</publisher><price>129.95</price></book>
</bib>|}

let reviews_xml =
  {|<reviews>
  <entry><title>Data on the Web</title><price>34.95</price><review>A very good discussion of semi-structured database systems and XML.</review></entry>
  <entry><title>Advanced Programming in the Unix environment</title><price>65.95</price><review>A clear and detailed discussion of UNIX programming.</review></entry>
  <entry><title>TCP/IP Illustrated</title><price>65.95</price><review>One of the best books on TCP/IP.</review></entry>
</reviews>|}

let prices_xml =
  {|<prices>
  <book><title>Advanced Programming in the Unix environment</title><source>bstore2.example.com</source><price>65.95</price></book>
  <book><title>Advanced Programming in the Unix environment</title><source>bstore1.example.com</source><price>65.95</price></book>
  <book><title>TCP/IP Illustrated</title><source>bstore2.example.com</source><price>65.95</price></book>
  <book><title>TCP/IP Illustrated</title><source>bstore1.example.com</source><price>65.95</price></book>
  <book><title>Data on the Web</title><source>bstore2.example.com</source><price>34.95</price></book>
  <book><title>Data on the Web</title><source>bstore1.example.com</source><price>39.95</price></book>
</prices>|}

let variables =
  [
    ("bib", [ Xqc.Item.Node (Xqc.parse_document ~uri:"bib.xml" bib_xml) ]);
    ("reviews", [ Xqc.Item.Node (Xqc.parse_document ~uri:"reviews.xml" reviews_xml) ]);
    ("prices", [ Xqc.Item.Node (Xqc.parse_document ~uri:"prices.xml" prices_xml) ]);
  ]

let eval ?(strategy = Xqc.Optimized) ?(materialize = false) q =
  Xqc.serialize (Xqc.eval_string ~strategy ~materialize ~variables q)

(* (name, query, expected-or-None) *)
let cases =
  [
    ( "Q1: AW books after 1991",
      {|<bib>{
          for $b in $bib/bib/book
          where $b/publisher = "Addison-Wesley" and $b/@year > 1991
          return <book year="{$b/@year}">{$b/title}</book>
        }</bib>|},
      Some
        {|<bib><book year="1994"><title>TCP/IP Illustrated</title></book><book year="1992"><title>Advanced Programming in the Unix environment</title></book></bib>|}
    );
    ( "Q2: flat title/author pairs",
      {|<results>{
          for $b in $bib/bib/book, $t in $b/title, $a in $b/author
          return <result>{$t}{$a}</result>
        }</results>|},
      None );
    ( "Q3: titles with all authors",
      {|<results>{
          for $b in $bib/bib/book
          return <result>{$b/title}{$b/author}</result>
        }</results>|},
      None );
    ( "Q4: books per author",
      {|<results>{
          for $last in distinct-values($bib/bib/book/author/last/text())
          return
            <result>
              <author>{$last}</author>
              {for $b in $bib/bib/book
               where $b/author/last/text() = $last
               return $b/title}
            </result>
        }</results>|},
      Some
        {|<results><result><author>Stevens</author><title>TCP/IP Illustrated</title><title>Advanced Programming in the Unix environment</title></result><result><author>Abiteboul</author><title>Data on the Web</title></result><result><author>Buneman</author><title>Data on the Web</title></result><result><author>Suciu</author><title>Data on the Web</title></result></results>|}
    );
    ( "Q5: join with reviews on title",
      {|<books-with-prices>{
          for $b in $bib//book, $a in $reviews//entry
          where $b/title/text() = $a/title/text()
          return
            <book-with-prices>
              {$b/title}
              <price-review>{$a/price/text()}</price-review>
              <price>{$b/price/text()}</price>
            </book-with-prices>
        }</books-with-prices>|},
      None );
    ( "Q6: books with more than one author",
      {|<bib>{
          for $b in $bib//book
          where count($b/author) > 0
          return
            <book>
              {$b/title}
              {for $a at $i in $b/author where $i <= 2 return $a}
              {if (count($b/author) > 2) then <et-al/> else ()}
            </book>
        }</bib>|},
      None );
    ( "Q7: AW titles/years in year order",
      {|<bib>{
          for $b in $bib//book
          where $b/publisher = "Addison-Wesley" and $b/@year > 1991
          order by $b/@year
          return <book>{$b/@year}{$b/title}</book>
        }</bib>|},
      Some
        {|<bib><book year="1992"><title>Advanced Programming in the Unix environment</title></book><book year="1994"><title>TCP/IP Illustrated</title></book></bib>|}
    );
    ( "Q8: books mentioning Suciu",
      {|for $b in $bib//book
        where some $a in $b/author satisfies $a/last/text() = "Suciu"
        return $b/title/text()|},
      Some "Data on the Web" );
    ( "Q9: titles containing a keyword",
      {|<results>{
          for $t in $bib//title
          where contains(string($t), "Unix")
          return $t
        }</results>|},
      Some
        {|<results><title>Advanced Programming in the Unix environment</title></results>|}
    );
    ( "Q10: minimum price per title",
      {|<results>{
          for $t in distinct-values($prices//book/title/text())
          let $p := for $b in $prices//book where $b/title/text() = $t return $b/price/text()
          return <minprice title="{$t}"><price>{min(for $v in $p return number($v))}</price></minprice>
        }</results>|},
      Some
        {|<results><minprice title="Advanced Programming in the Unix environment"><price>65.95</price></minprice><minprice title="TCP/IP Illustrated"><price>65.95</price></minprice><minprice title="Data on the Web"><price>34.95</price></minprice></results>|}
    );
    ( "Q11: editors with affiliations",
      {|<bib>{
          for $b in $bib//book
          where exists($b/editor/affiliation)
          return <book>{$b/title}{$b/editor/affiliation}</book>
        }</bib>|},
      Some
        {|<bib><book><title>The Economics of Technology and Content for Digital TV</title><affiliation>CITI</affiliation></book></bib>|}
    );
    ( "Q12: pairs of books with the same authors",
      {|<bib>{
          for $book1 in $bib//book, $book2 in $bib//book
          let $aut1 := for $a in $book1/author order by $a/last/text(), $a/first/text() return $a
          let $aut2 := for $a in $book2/author order by $a/last/text(), $a/first/text() return $a
          where $book1 << $book2 and not($book1/title = $book2/title) and deep-equal($aut1, $aut2) and exists($aut1)
          return <book-pair>{$book1/title}{$book2/title}</book-pair>
        }</bib>|},
      Some
        {|<bib><book-pair><title>TCP/IP Illustrated</title><title>Advanced Programming in the Unix environment</title></book-pair></bib>|}
    );
  ]

let strategies = Xqc.all_strategies

(* Run [f] with the structural-index store pinned to [mode] (threshold
   dropped so Force indexes the small sample documents), restoring the
   ambient configuration afterwards. *)
let with_index_mode mode f =
  let saved_mode = !Xqc.Store.mode
  and saved_min = !Xqc.Store.min_index_size
  and saved_small = !Xqc.Store.small_subtree in
  Xqc.Store.mode := mode;
  Xqc.Store.min_index_size := 0;
  Xqc.Store.small_subtree := 0;
  Fun.protect
    ~finally:(fun () ->
      Xqc.Store.mode := saved_mode;
      Xqc.Store.min_index_size := saved_min;
      Xqc.Store.small_subtree := saved_small)
    f

let make_case (name, query, expected) =
  Alcotest.test_case name `Quick (fun () ->
      (* every strategy, streamed and fully materialized, with the
         structural indexes forced on and off: all twenty runs agree *)
      let results =
        List.concat_map
          (fun s ->
            List.concat_map
              (fun materialize ->
                List.map
                  (fun mode ->
                    with_index_mode mode (fun () ->
                        match eval ~strategy:s ~materialize query with
                        | r -> r
                        | exception Xqc.Error m ->
                            Alcotest.failf "%s [%s]: %s" name
                              (Xqc.strategy_name s) m))
                  [ Xqc.Store.Force; Xqc.Store.Off ])
              [ false; true ])
          strategies
      in
      let first = List.hd results in
      if not (List.for_all (String.equal first) results) then
        Alcotest.failf "%s: strategies disagree" name;
      match expected with
      | Some e -> Alcotest.(check string) name e first
      | None ->
          if String.length first = 0 then Alcotest.failf "%s: empty result" name)

let () = Alcotest.run "use_cases" [ ("xmp", List.map make_case cases) ]
