(* The update subsystem: XQUF parsing/application, incremental index
   maintenance, and MVCC snapshot isolation.

   The load-bearing property: applying a random update script to a
   live gap-numbered tree — patching its structural indexes and shred
   tables in place — must be observationally identical to reparsing
   the updated bytes and rebuilding everything from scratch, for every
   execution strategy, with and without the name index, under both the
   native and relational backends.  Separate units pin XQUF apply
   order, conflict detection, and that readers pinned to a snapshot
   never observe a concurrent writer. *)

module Rel = Xqc.Rel_algebra

let with_backend b f =
  let saved = !Rel.backend in
  Rel.backend := b;
  Fun.protect ~finally:(fun () -> Rel.backend := saved) f

let counter name =
  match List.assoc_opt name (Xqc.Obs.global_counters ()) with
  | Some v -> v
  | None -> 0

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let serialize_tree (n : Xqc.Node.t) = Xqc.serialize [ Xqc.Item.Node n ]

(* Bind the document the way the server binds preloads: fn:doc under a
   name and the tree as a variable. *)
let make_ctx ~var root =
  let ctx = Xqc.context () in
  Xqc.bind_document ctx (var ^ ".xml") root;
  Xqc.bind_variable ctx var [ Xqc.Item.Node root ];
  ctx

let run_probe ~strategy root q =
  Xqc.serialize (Xqc.run (Xqc.prepare ~strategy q) (make_ctx ~var:"db" root))

(* -------- random documents and scripts -------- *)

(* Every generated document has >= 3 persons and >= 2 log entries, so
   scripts indexing person [1..3] and entry [1..2] always resolve. *)
let doc_gen : string QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 3 6 >>= fun np ->
  int_range 2 5 >>= fun ne ->
  oneofl [ "ada"; "bob"; "cleo" ] >>= fun name ->
  let persons =
    List.init np (fun i ->
        Printf.sprintf
          {|<person id="p%d"><name>%s%d</name><age>%d</age></person>|} (i + 1)
          name (i + 1)
          (20 + i))
  in
  let entries =
    List.init ne (fun i -> Printf.sprintf {|<entry n="%d"/>|} (i + 1))
  in
  return
    (Printf.sprintf "<db><people>%s</people><log>%s</log></db>"
       (String.concat "" persons)
       (String.concat "" entries))

let stmt_gen : string QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 3 >>= fun k ->
  int_range 1 2 >>= fun j ->
  int_range 0 999 >>= fun i ->
  oneofl
    [
      Printf.sprintf "insert node <note>t%d</note> into ($db//person)[%d]" i k;
      Printf.sprintf
        "insert node <person id=\"pn%d\"><name>first</name></person> as first \
         into $db/db/people"
        i;
      Printf.sprintf
        "insert node <person id=\"pl%d\"><name>last</name></person> as last \
         into $db/db/people"
        i;
      Printf.sprintf "insert node <entry n=\"b%d\"/> before ($db//entry)[%d]" i j;
      Printf.sprintf "insert node <entry n=\"a%d\"/> after ($db//entry)[%d]" i j;
      Printf.sprintf "delete node ($db//entry)[%d]" j;
      Printf.sprintf "delete nodes ($db//age)[%d]" k;
      Printf.sprintf
        "replace node ($db//person)[%d] with <person \
         id=\"pr%d\"><name>rep</name></person>"
        k i;
      Printf.sprintf "replace value of node ($db//name)[%d] with \"v%d\"" k i;
      Printf.sprintf "rename node ($db//person)[%d] as \"member\"" k;
      Printf.sprintf "rename node ($db//entry)[%d] as \"row\"" j;
    ]

let script_gen : string QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 4 >>= fun n ->
  list_repeat n stmt_gen >>= fun stmts -> return (String.concat ",\n" stmts)

(* Probes chosen to exercise the name index and the shred columns but
   stay insensitive to text-node merging (the one place the in-place
   tree may differ structurally from its reparse: XQUF-adjacent text
   nodes are kept separate, which serializes identically). *)
let probes =
  [
    "count($db//*)";
    "count($db//@*)";
    "string($db)";
    "count($db//person) + count($db//member)";
    "for $p in $db//person return string($p/name)";
  ]

let rel = Rel.Rel
let native = Rel.Native

(* Apply [script] to a live gap-numbered (and optionally indexed /
   shredded) tree, then probe it; reference answers come from a
   from-scratch reparse of the updated bytes. *)
let apply_and_probe ~strategy ~index ~backend xml script =
  with_backend backend @@ fun () ->
  let prep root =
    Xqc.Node.renumber_gapped root;
    if index then ignore (Xqc.Store.index_nodes root);
    if backend = rel then ignore (Xqc.Shred.of_root root)
  in
  let root = Xqc.parse_document ~uri:"db.xml" xml in
  prep root;
  match
    let compiled = Xqc.Update.compile ~strategy script in
    Xqc.Update.apply_to_root compiled ~make_ctx:(make_ctx ~var:"db") root
  with
  | exception Xqc.Error m -> Error m
  | _applied ->
      let bytes = serialize_tree root in
      let incr = List.map (run_probe ~strategy root) probes in
      let fresh = Xqc.parse_document ~uri:"db.xml" bytes in
      prep fresh;
      let reference = List.map (run_probe ~strategy fresh) probes in
      Ok (bytes, incr, reference)

let combos =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun index -> [ (s, index, native); (s, index, rel) ])
        [ false; true ])
    Xqc.all_strategies

let combo_name (s, index, b) =
  Printf.sprintf "%s/%s/%s" (Xqc.strategy_name s)
    (if index then "indexed" else "plain")
    (Rel.backend_name b)

let prop_incremental_equals_reparse (xml, script) =
  let results =
    List.map
      (fun (s, index, b) ->
        ((s, index, b), apply_and_probe ~strategy:s ~index ~backend:b xml script))
      combos
  in
  (* each combo agrees with its own from-scratch reparse *)
  List.iter
    (fun (c, r) ->
      match r with
      | Error _ -> ()
      | Ok (_, incr, reference) ->
          if incr <> reference then
            QCheck.Test.fail_reportf
              "[%s] incremental probes diverge from reparse\nscript:\n%s\n\
               incremental: %s\nreparse:     %s"
              (combo_name c) script
              (String.concat " | " incr)
              (String.concat " | " reference))
    results;
  (* and all combos agree with each other: same bytes, same answers,
     same error-ness (messages may differ across evaluators) *)
  (match results with
  | ((c0, r0) : _ * _) :: rest ->
      List.iter
        (fun (c, r) ->
          match (r0, r) with
          | Ok (b0, i0, _), Ok (b, i, _) ->
              if b0 <> b then
                QCheck.Test.fail_reportf
                  "[%s] vs [%s]: updated bytes diverge\nscript:\n%s\n%s\nvs\n%s"
                  (combo_name c0) (combo_name c) script b0 b;
              if i0 <> i then
                QCheck.Test.fail_reportf
                  "[%s] vs [%s]: probe answers diverge\nscript:\n%s"
                  (combo_name c0) (combo_name c) script
          | Error _, Error _ -> ()
          | Ok _, Error m ->
              QCheck.Test.fail_reportf
                "[%s] succeeded but [%s] failed (%s)\nscript:\n%s"
                (combo_name c0) (combo_name c) m script
          | Error m, Ok _ ->
              QCheck.Test.fail_reportf
                "[%s] failed (%s) but [%s] succeeded\nscript:\n%s"
                (combo_name c0) m (combo_name c) script)
        rest
  | [] -> ());
  true

let test_incremental_equals_reparse =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         "random scripts: incremental maintenance = from-scratch reparse, all \
          strategies x index x backend"
       ~count:40
       (QCheck.make QCheck.Gen.(pair doc_gen script_gen))
       prop_incremental_equals_reparse)

(* -------- units: parsing, ordering, conflicts -------- *)

let apply_script ?(strategy = Xqc.Optimized) xml script =
  let root = Xqc.parse_document ~uri:"d.xml" xml in
  Xqc.Node.renumber_gapped root;
  ignore (Xqc.Store.index_nodes root);
  let c = Xqc.Update.compile ~strategy script in
  let n = Xqc.Update.apply_to_root c ~make_ctx:(make_ctx ~var:"d") root in
  (n, serialize_tree root)

let check_script msg xml script expected =
  let _, out = apply_script xml script in
  Alcotest.(check string) msg expected out

let test_basic_forms () =
  check_script "insert into" "<r><a/></r>" "insert node <b/> into $d/r"
    "<r><a/><b/></r>";
  check_script "insert as first" "<r><a/></r>"
    "insert node <b/> as first into $d/r" "<r><b/><a/></r>";
  check_script "insert before" "<r><a/><c/></r>"
    "insert node <b/> before ($d/r/c)[1]" "<r><a/><b/><c/></r>";
  check_script "insert after" "<r><a/><c/></r>"
    "insert node <b/> after ($d/r/a)[1]" "<r><a/><b/><c/></r>";
  check_script "delete" "<r><a/><b/></r>" "delete node ($d/r/a)[1]" "<r><b/></r>";
  check_script "replace node" "<r><a/></r>"
    "replace node ($d/r/a)[1] with <b>x</b>" "<r><b>x</b></r>";
  check_script "replace value (text)" "<r><a>old</a></r>"
    "replace value of node ($d/r/a/text())[1] with \"new\"" "<r><a>new</a></r>";
  check_script "replace element content" "<r><a><x/><y/></a></r>"
    "replace value of node ($d/r/a)[1] with \"flat\"" "<r><a>flat</a></r>";
  check_script "rename element" "<r><a>v</a></r>"
    "rename node ($d/r/a)[1] as \"b\"" "<r><b>v</b></r>";
  check_script "rename attribute" {|<r><a k="1"/></r>|}
    "rename node ($d/r/a/@k)[1] as \"m\"" {|<r><a m="1"/></r>|};
  check_script "replace attribute value" {|<r><a k="1"/></r>|}
    "replace value of node ($d/r/a/@k)[1] with \"9\"" {|<r><a k="9"/></r>|}

let test_xquf_order () =
  (* every target resolves against the admission snapshot, and inserts
     apply before deletes: the insert lands inside the subtree the
     delete then removes *)
  check_script "insert applies before delete of its target" "<r><x><a/></x></r>"
    "delete node ($d/r/x)[1], insert node <y/> into ($d/r/x)[1]" "<r/>";
  (* before/after anchors may themselves be deleted in the same script *)
  check_script "insert after a deleted anchor" "<r><a/></r>"
    "insert node <n/> after ($d/r/a)[1], delete node ($d/r/a)[1]" "<r><n/></r>";
  (* rename sees the snapshot name, not the replaced content *)
  check_script "replace + sibling rename" "<r><a/><b/></r>"
    "replace node ($d/r/a)[1] with <c/>, rename node ($d/r/b)[1] as \"z\""
    "<r><c/><z/></r>"

let test_detached_subtree_primitives () =
  (* Regression: primitives may legally target nodes inside a subtree an
     earlier primitive of the same list detached (targets are snapshot
     nodes).  Their nids are stale — replace node reuses the freed
     interval for its new content — so letting them patch the live
     per-name arrays strips whichever live nodes now own that interval
     (the all-elements count undercounts while the bytes stay right). *)
  let xml =
    "<db><p id=\"1\"><name>a</name><age>1</age></p>\
     <p id=\"2\"><name>b</name><age>2</age></p>\
     <p id=\"3\"><name>c</name><age>3</age></p></db>"
  in
  let root = Xqc.parse_document ~uri:"d.xml" xml in
  Xqc.Node.renumber_gapped root;
  ignore (Xqc.Store.index_nodes root);
  let script =
    "replace node ($d//p)[3] with <p id=\"r\"><name>rep</name></p>,\n\
     delete nodes ($d//age)[3],\n\
     replace value of node ($d//name)[3] with \"dead\",\n\
     rename node ($d//p)[3] as \"q\""
  in
  let c = Xqc.Update.compile script in
  ignore (Xqc.Update.apply_to_root c ~make_ctx:(make_ctx ~var:"d") root);
  let bytes = serialize_tree root in
  Alcotest.(check string)
    "only the replace is visible"
    "<db><p id=\"1\"><name>a</name><age>1</age></p><p id=\"2\"><name>b</name>\
     <age>2</age></p><p id=\"r\"><name>rep</name></p></db>"
    bytes;
  let fresh = Xqc.parse_document ~uri:"d.xml" bytes in
  Xqc.Node.renumber_gapped fresh;
  ignore (Xqc.Store.index_nodes fresh);
  List.iter
    (fun q ->
      List.iter
        (fun strategy ->
          let probe r =
            Xqc.serialize (Xqc.run (Xqc.prepare ~strategy q) (make_ctx ~var:"d" r))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s matches reparse" q
               (Xqc.strategy_name strategy))
            (probe fresh) (probe root))
        [ Xqc.No_algebra; Xqc.Saxon_like; Xqc.Optimized ])
    [ "count($d//*)"; "count($d/db/p[3]//*)"; "count($d//name)"; "count($d//q)" ]

let test_conflicts () =
  let conflicts = counter "update_conflicts" in
  (match
     apply_script "<r><a>v</a></r>"
       "rename node ($d/r/a)[1] as \"b\", rename node ($d/r/a)[1] as \"c\""
   with
  | exception Xqc.Error m ->
      Alcotest.(check bool)
        "conflict error mentions the class" true (contains ~sub:"rename" m)
  | _ -> Alcotest.fail "duplicate rename must be rejected");
  (match
     apply_script "<r><a>v</a></r>"
       "replace value of node ($d/r/a)[1] with \"x\", replace value of node \
        ($d/r/a)[1] with \"y\""
   with
  | exception Xqc.Error _ -> ()
  | _ -> Alcotest.fail "duplicate replace value must be rejected");
  Alcotest.(check bool)
    "update_conflicts counted" true
    (counter "update_conflicts" >= conflicts + 2);
  (* deleting the same node twice is allowed by XQUF *)
  let _, out =
    apply_script "<r><a/><b/></r>"
      "delete node ($d/r/a)[1], delete node ($d/r/a)[1]"
  in
  Alcotest.(check string) "double delete is idempotent" "<r><b/></r>" out

let test_target_validation () =
  let expect_error msg xml script =
    match apply_script xml script with
    | exception Xqc.Error _ -> ()
    | _ -> Alcotest.fail msg
  in
  expect_error "insert into a text node" "<r>t</r>"
    "insert node <x/> into ($d/r/text())[1]";
  expect_error "replace the root element (no parent)" "<r/>"
    "replace node $d/r/.. with <x/>";
  expect_error "insert before a parentless node" "<r/>"
    "insert node <x/> before $d";
  expect_error "rename to an empty name" "<r><a/></r>"
    "rename node ($d/r/a)[1] as \"\"";
  expect_error "multi-node target for replace" "<r><a/><a/></r>"
    "replace node $d/r/a with <b/>"

(* -------- incremental maintenance under pressure -------- *)

let test_gap_exhaustion_renumbers () =
  let root = Xqc.parse_document ~uri:"g.xml" "<r><seed/></r>" in
  Xqc.Node.renumber_gapped root;
  ignore (Xqc.Store.index_nodes root);
  let renumbers = counter "full_renumbers" in
  let patches = counter "incremental_index_patches" in
  let c = Xqc.Update.compile "insert node <x/> as first into $d/r" in
  for _ = 1 to 60 do
    ignore (Xqc.Update.apply_to_root c ~make_ctx:(make_ctx ~var:"d") root)
  done;
  (* prepends drain the head gap; the fallback renumber must have fired
     at least once, and the cheap path must have carried most inserts *)
  Alcotest.(check bool)
    "full renumber fell back" true
    (counter "full_renumbers" > renumbers);
  Alcotest.(check bool)
    "incremental patches dominated" true
    (counter "incremental_index_patches" - patches > 30);
  Alcotest.(check string)
    "indexed count survives renumbering" "60"
    (run_probe ~strategy:Xqc.Saxon_like root "count($db//x)");
  Alcotest.(check string)
    "first child is the newest insert" "true"
    (run_probe ~strategy:Xqc.Optimized root "name(($db/r/*)[1]) = \"x\"")

(* -------- MVCC snapshot isolation -------- *)

let test_mvcc_snapshot () =
  Xqc.Version.clear ();
  let root = Xqc.parse_document ~uri:"v" "<r><a/></r>" in
  Xqc.Version.register "v" root;
  ignore (Xqc.Store.index_nodes root);
  Alcotest.(check int) "one live version" 1 (Xqc.Version.live_versions ());
  (* no admitted readers: the writer patches the head in place *)
  let r1 = Xqc.Update.execute ~uri:"v" "insert node <b/> into doc(\"v\")/r" in
  Alcotest.(check bool) "in place without readers" true r1.Xqc.Update.u_in_place;
  (* a pinned reader forces the next writer onto the copy path *)
  let v1 = Option.get (Xqc.Version.pin "v") in
  let before = serialize_tree v1.Xqc.Version.v_root in
  let r2 = Xqc.Update.execute ~uri:"v" "insert node <c/> into doc(\"v\")/r" in
  Alcotest.(check bool) "copy path under a reader" false r2.Xqc.Update.u_in_place;
  Alcotest.(check string)
    "pinned snapshot unchanged" before
    (serialize_tree v1.Xqc.Version.v_root);
  Alcotest.(check int) "old + new live" 2 (Xqc.Version.live_versions ());
  (* the new head has the write the snapshot does not *)
  let v2 = Option.get (Xqc.Version.pin "v") in
  Alcotest.(check string)
    "new head sees the write" "<r><a/><b/><c/></r>"
    (serialize_tree v2.Xqc.Version.v_root);
  Alcotest.(check bool) "distinct versions" true (v1 != v2);
  Xqc.Version.unpin "v" v2;
  Xqc.Version.unpin "v" v1;
  Alcotest.(check int)
    "retired snapshot purged at last unpin" 1
    (Xqc.Version.live_versions ());
  Xqc.Version.clear ()

let test_generation_bumps () =
  Xqc.Version.clear ();
  let root = Xqc.parse_document ~uri:"g" "<r/>" in
  Xqc.Version.register "g" root;
  let g0 = Xqc.Version.generation () in
  ignore (Xqc.Update.execute ~uri:"g" "insert node <a/> into doc(\"g\")/r");
  Alcotest.(check bool)
    "generation advances on publish" true
    (Xqc.Version.generation () > g0);
  Xqc.Version.clear ()

(* Three readers race a writer: within one pin, the tree's bytes must
   never change, and every observed state must be one the writer
   actually published (a prefix of the insert sequence). *)
let test_racing_readers () =
  Xqc.Version.clear ();
  let root = Xqc.parse_document ~uri:"w" "<log/>" in
  Xqc.Version.register "w" root;
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let observed_bad = Atomic.make 0 in
  let reader () =
    while not (Atomic.get stop) do
      (match Xqc.Version.pin "w" with
      | None -> Atomic.incr torn
      | Some v ->
          let a = serialize_tree v.Xqc.Version.v_root in
          Thread.yield ();
          let b = serialize_tree v.Xqc.Version.v_root in
          if not (String.equal a b) then Atomic.incr torn;
          (* entries are only ever appended in order 1..n, so every
             legally-observable snapshot is exactly a prefix *)
          let entries = ref 0 in
          String.iter (fun ch -> if ch = 'e' then incr entries) a;
          (* each <e n="i"/> contributes exactly one 'e' *)
          let expected =
            if !entries = 0 then "<log/>"
            else
              "<log>"
              ^ String.concat ""
                  (List.init !entries (fun i ->
                       Printf.sprintf {|<e n="%d"/>|} (i + 1)))
              ^ "</log>"
          in
          if not (String.equal a expected) then Atomic.incr observed_bad;
          Xqc.Version.unpin "w" v);
      Thread.yield ()
    done
  in
  let readers = List.init 3 (fun _ -> Thread.create reader ()) in
  for i = 1 to 40 do
    ignore
      (Xqc.Update.execute ~uri:"w"
         (Printf.sprintf "insert node <e n=\"%d\"/> as last into doc(\"w\")/log"
            i))
  done;
  Atomic.set stop true;
  List.iter Thread.join readers;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
  Alcotest.(check int) "only published prefixes seen" 0 (Atomic.get observed_bad);
  let v = Option.get (Xqc.Version.pin "w") in
  Alcotest.(check string)
    "all writes present at the final head" "40"
    (run_probe ~strategy:Xqc.Optimized v.Xqc.Version.v_root "count($db//e)");
  Xqc.Version.unpin "w" v;
  Alcotest.(check int) "single live version" 1 (Xqc.Version.live_versions ());
  Xqc.Version.clear ()

let test_unknown_document () =
  Xqc.Version.clear ();
  match Xqc.Update.execute ~uri:"nope" "delete node doc(\"nope\")/r" with
  | exception Xqc.Error m ->
      Alcotest.(check bool) "names the missing uri" true (contains ~sub:"nope" m)
  | _ -> Alcotest.fail "update against an unregistered uri must fail"

let () =
  Alcotest.run "update"
    [
      ( "equivalence",
        [ test_incremental_equals_reparse ] );
      ( "xquf",
        [
          Alcotest.test_case "basic forms" `Quick test_basic_forms;
          Alcotest.test_case "apply order" `Quick test_xquf_order;
          Alcotest.test_case "detached-subtree primitives" `Quick
            test_detached_subtree_primitives;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "target validation" `Quick test_target_validation;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "gap exhaustion renumbers" `Quick
            test_gap_exhaustion_renumbers;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "snapshot isolation" `Quick test_mvcc_snapshot;
          Alcotest.test_case "generation bumps" `Quick test_generation_bumps;
          Alcotest.test_case "racing readers" `Quick test_racing_readers;
          Alcotest.test_case "unknown document" `Quick test_unknown_document;
        ] );
    ]
