(* XML data model, parser and serializer. *)

module N = Xqc.Node
module P = Xqc.Xml_parser
module S = Xqc.Serializer
module I = Xqc.Item

let parse s = P.parse_string s
let roundtrip s = S.node_to_string (parse s)

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_parse_simple () =
  check "element with text" "<a>hi</a>" (roundtrip "<a>hi</a>");
  check "nested" "<a><b/><c>x</c></a>" (roundtrip "<a><b/><c>x</c></a>");
  check "attributes" {|<a x="1" y="two"/>|} (roundtrip {|<a x="1" y="two"/>|});
  check "single-quoted attrs normalize" {|<a x="1"/>|} (roundtrip "<a x='1'/>")

let test_entities () =
  check "predefined entities" "<a>a&lt;b&amp;c&gt;d</a>"
    (roundtrip "<a>a&lt;b&amp;c&gt;d</a>");
  check "quote entities decode" {|<a q="say &quot;hi&quot;"/>|}
    (roundtrip "<a q='say &quot;hi&quot;'/>");
  check "numeric char ref" "<a>A</a>" (roundtrip "<a>&#65;</a>");
  check "hex char ref" "<a>A</a>" (roundtrip "<a>&#x41;</a>")

let test_misc_nodes () =
  check "comment kept" "<a><!--note--></a>" (roundtrip "<a><!--note--></a>");
  check "pi kept" "<a><?target data?></a>" (roundtrip "<a><?target data?></a>");
  check "cdata becomes text" "<a>1 &lt; 2</a>" (roundtrip "<a><![CDATA[1 < 2]]></a>");
  check "xml decl skipped" "<a/>" (roundtrip "<?xml version=\"1.0\"?><a/>");
  check "doctype skipped" "<a/>" (roundtrip "<!DOCTYPE a><a/>")

let test_parse_errors () =
  let fails s =
    match P.parse_string s with
    | exception P.Parse_error _ -> true
    | _ -> false
  in
  check_bool "mismatched tags" true (fails "<a></b>");
  check_bool "unterminated" true (fails "<a>");
  check_bool "no root" true (fails "just text");
  check_bool "bad entity" true (fails "<a>&nosuch;</a>");
  check_bool "trailing garbage" true (fails "<a/><b/>...")

let test_string_value () =
  let doc = parse "<a>one<b>two<c>three</c></b><!--x-->four</a>" in
  check "concatenated descendant text" "onetwothreefour" (N.string_value doc)

let test_document_order () =
  let doc = parse "<a><b/><c><d/></c><e/></a>" in
  let names =
    List.filter_map N.name (N.descendants doc) |> String.concat ","
  in
  check "descendants preorder" "a,b,c,d,e" names;
  let all = N.descendants doc in
  check_bool "ids strictly ascend" true
    (let rec asc = function
       | a :: (b :: _ as rest) -> a.N.nid < b.N.nid && asc rest
       | _ -> true
     in
     asc all)

let test_axes () =
  let doc = parse "<a><b><c/><d/></b><e/></a>" in
  let find name =
    List.find (fun n -> N.name n = Some name) (N.descendants doc)
  in
  let c = find "c" and b = find "b" and d = find "d" in
  check_bool "parent" true (N.parent c == Some b |> fun _ -> Option.get (N.parent c) == b);
  check "ancestors" "b,a"
    (String.concat "," (List.filter_map N.name (List.filter (fun n -> N.name n <> None) (N.ancestors c))));
  check "following siblings of c" "d"
    (String.concat "," (List.filter_map N.name (N.following_siblings c)));
  check "preceding siblings of d" "c"
    (String.concat "," (List.filter_map N.name (N.preceding_siblings d)))

let test_copy_fresh_ids () =
  let doc = parse "<a><b x=\"1\">t</b></a>" in
  let copy = N.copy doc in
  check "copy serializes identically" (S.node_to_string doc) (S.node_to_string copy);
  check_bool "copy has fresh ids" true (copy.N.nid <> doc.N.nid);
  check_bool "deep ids fresh" true
    (List.for_all2 (fun a b -> a.N.nid <> b.N.nid) (N.descendants doc) (N.descendants copy))

let test_typed_value () =
  let doc = parse "<a>42</a>" in
  (match N.typed_value doc with
  | Xqc.Atomic.Untyped "42" -> ()
  | other -> Alcotest.failf "expected untyped 42, got %s" (Xqc.Atomic.to_string other));
  let elem = List.hd (N.children doc) in
  N.set_type_annotation elem (Some "xs:integer");
  match N.typed_value elem with
  | Xqc.Atomic.Integer 42 -> ()
  | other -> Alcotest.failf "expected integer 42, got %s" (Xqc.Atomic.to_string other)

let test_sort_doc_order () =
  let doc = parse "<a><b/><c/></a>" in
  let kids = N.children doc |> List.hd |> N.children in
  let shuffled = List.rev kids @ kids in
  let sorted = N.sort_doc_order shuffled in
  check_int "dedup" 2 (List.length sorted);
  check "order" "b,c" (String.concat "," (List.filter_map N.name sorted))

let test_sorted_fast_path () =
  let doc = parse "<a><b/><c/><d/></a>" in
  let kids = N.children doc |> List.hd |> N.children in
  (* detector: both answers *)
  check_bool "sorted detected" true (N.is_doc_sorted_uniq kids);
  check_bool "empty is sorted" true (N.is_doc_sorted_uniq []);
  check_bool "singleton is sorted" true (N.is_doc_sorted_uniq [ List.hd kids ]);
  check_bool "reversal detected" false (N.is_doc_sorted_uniq (List.rev kids));
  check_bool "duplicate detected" false
    (N.is_doc_sorted_uniq (List.hd kids :: kids));
  (* fast path: already-sorted input comes back as the same list, no
     copy; the slow path still sorts and dedups *)
  check_bool "sorted input returned as-is" true (N.sort_doc_order kids == kids);
  check "slow path sorts" "b,c,d"
    (String.concat "," (List.filter_map N.name (N.sort_doc_order (List.rev kids))))

let test_descendants_seq () =
  let doc = parse "<a><b><c/></b><d/></a>" in
  let strict = N.descendants doc in
  check "lazy walk matches strict preorder"
    (String.concat "," (List.filter_map N.name strict))
    (String.concat "," (List.filter_map N.name (List.of_seq (N.descendants_seq doc))));
  check_int "descendant-or-self adds self"
    (1 + List.length strict)
    (Seq.length (N.descendant_or_self_seq doc));
  (* laziness: pulling the head visits one node, not the whole subtree *)
  match N.descendants_seq doc () with
  | Seq.Cons (first, _) -> check "first pull is the first child" "a" (Option.get (N.name first))
  | Seq.Nil -> Alcotest.fail "non-empty walk"

let test_size () =
  let doc = parse "<a x=\"1\"><b/>text</a>" in
  (* document + a + attribute + b + text *)
  check_int "node count" 5 (N.size doc)

let test_sequence_serialization () =
  let s =
    S.sequence_to_string
      [ I.of_int 1; I.of_int 2; I.Node (N.text "x"); I.of_string "y" ]
  in
  check "atoms space separated, nodes adjacent" "1 2xy" s

(* qcheck: random generated trees survive a serialize/parse roundtrip. *)
let gen_tree : N.t QCheck.arbitrary =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "x1" ] in
  let text_gen = oneofl [ "hello"; "1 < 2 & 3"; "  spaced  "; "quote\"s" ] in
  let rec tree depth =
    if depth = 0 then map N.text text_gen
    else
      frequency
        [
          (2, map N.text text_gen);
          ( 3,
            name >>= fun nm ->
            list_size (int_bound 3) (tree (depth - 1)) >>= fun children ->
            list_size (int_bound 2) (pair (oneofl [ "p"; "q" ]) text_gen)
            >>= fun attrs ->
            (* attribute names must be unique *)
            let attrs =
              List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs
              |> List.map (fun (n, v) -> N.attribute n v)
            in
            return (N.element nm ~attrs ~children) );
        ]
  in
  QCheck.make
    (name >>= fun nm ->
     list_size (int_bound 4) (tree 2) >>= fun children ->
     return (N.document [ N.element nm ~attrs:[] ~children ]))

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip" ~count:100 gen_tree
    (fun doc ->
      let s = S.node_to_string doc in
      String.equal s (S.node_to_string (P.parse_string s)))

let prop_copy_preserves_string_value =
  QCheck.Test.make ~name:"copy preserves string value" ~count:100 gen_tree
    (fun doc -> String.equal (N.string_value doc) (N.string_value (N.copy doc)))

let () =
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "misc nodes" `Quick test_misc_nodes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "data model",
        [
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "document order" `Quick test_document_order;
          Alcotest.test_case "axes" `Quick test_axes;
          Alcotest.test_case "copy fresh ids" `Quick test_copy_fresh_ids;
          Alcotest.test_case "typed value" `Quick test_typed_value;
          Alcotest.test_case "sort doc order" `Quick test_sort_doc_order;
          Alcotest.test_case "sorted fast path" `Quick test_sorted_fast_path;
          Alcotest.test_case "lazy descendants" `Quick test_descendants_seq;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "sequence serialization" `Quick test_sequence_serialization;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_copy_preserves_string_value ] );
    ]
