(* Unit tests for the fused-loop compiled execution tier (lib/codegen):
   EXPLAIN rendering of fused segments, splice points where a fused
   pipeline feeds a blocking operator, the runtime-fallback protocol
   (multi-node sources, user declarations shadowing a fused builtin),
   the [~fuse]/mode knobs, and the allocation win the tier exists for.
   Cross-engine result equivalence is covered separately by the QCheck
   properties in test_equivalence.ml. *)

let xmark = lazy (Xqc_workload.Xmark.generate ~target_bytes:300_000 ())

let with_fuse mode f =
  let saved = !Xqc.Codegen.mode in
  Xqc.Codegen.mode := mode;
  Fun.protect ~finally:(fun () -> Xqc.Codegen.mode := saved) f

let counter name =
  match List.assoc_opt name (Xqc.Obs.global_counters ()) with
  | Some v -> v
  | None -> 0

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let eval_xmark q =
  let variables = [ ("auction", [ Xqc.Item.Node (Lazy.force xmark) ]) ] in
  Xqc.serialize (Xqc.eval_string ~variables q)

(* EXPLAIN renders the segments the evaluator will fuse — and renders
   nothing when the tier is off, so the plan text doubles as a check
   that the knob reached the planner. *)
let test_explain_segments () =
  let q = "$auction/site/regions//item/name" in
  let on = with_fuse Xqc.Codegen.Force (fun () -> Xqc.explain q) in
  Alcotest.(check bool)
    "explain lists fused segments" true
    (contains on "=== Fused segments ===");
  Alcotest.(check bool) "segment shows instruction count" true (contains on "instrs");
  let off = with_fuse Xqc.Codegen.Off (fun () -> Xqc.explain q) in
  Alcotest.(check bool)
    "no fused section when the tier is off" false
    (contains off "=== Fused segments ===")

(* A fused scan spliced under a blocking OrderBy: the segment produces
   the tuple batch, the interpreted sort consumes it.  The plan must
   show both, and the answer must match the fully interpreted run. *)
let test_orderby_splice () =
  let q =
    {|for $i in $auction/site/regions/africa/item
      where $i/location = "United States"
      order by $i/name
      return $i/name|}
  in
  let plan = with_fuse Xqc.Codegen.Force (fun () -> Xqc.explain q) in
  Alcotest.(check bool)
    "fused segment under the sort" true
    (contains plan "=== Fused segments ===");
  let fused = with_fuse Xqc.Codegen.Force (fun () -> eval_xmark q) in
  let interp = with_fuse Xqc.Codegen.Off (fun () -> eval_xmark q) in
  Alcotest.(check string) "fused agrees across the splice" interp fused

(* A compiled program whose runtime source is a two-node sequence is
   outside the single-root proof: it must raise [Fallback], splice in
   the interpreted twin, record the event — and still be right. *)
let test_multinode_fallback () =
  with_fuse Xqc.Codegen.Force @@ fun () ->
  let d1 = Xqc.parse_document "<r><item>a</item></r>" in
  let d2 = Xqc.parse_document "<r><item>b</item></r>" in
  let p = Xqc.prepare "$docs/r/item" in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "docs" [ Xqc.Item.Node d1; Xqc.Item.Node d2 ];
  let before = counter "fused_fallbacks" in
  let got = Xqc.serialize (Xqc.run p ctx) in
  Alcotest.(check string)
    "interpreted twin result" "<item>a</item><item>b</item>" got;
  Alcotest.(check bool)
    "fallback recorded" true
    (counter "fused_fallbacks" > before)

(* A user declaration shadowing fn:count at run time: the lowered
   aggregate baked the builtin in, so the program must detect the
   shadow and defer to the interpreted twin (which dispatches to the
   user function). *)
let test_shadowed_builtin_fallback () =
  with_fuse Xqc.Codegen.Force @@ fun () ->
  let q =
    {|declare function fn:count($x) { 999 };
      count(for $i in $d/r/item where $i = "a" return $i)|}
  in
  let d = Xqc.parse_document "<r><item>a</item><item>b</item></r>" in
  let variables = [ ("d", [ Xqc.Item.Node d ]) ] in
  let before = counter "fused_fallbacks" in
  let got = Xqc.serialize (Xqc.eval_string ~variables q) in
  Alcotest.(check string) "user function wins" "999" got;
  Alcotest.(check bool)
    "shadow fallback recorded" true
    (counter "fused_fallbacks" > before)

(* The prepare-side knob: [~fuse:false] pins the tier off for that
   prepared query only, and must agree with the fused default. *)
let test_prepare_knob () =
  let q = "$auction/site/regions/africa/item/name" in
  let variables = [ ("auction", [ Xqc.Item.Node (Lazy.force xmark) ]) ] in
  let on = Xqc.serialize (Xqc.eval_string ~fuse:true ~variables q) in
  let off = Xqc.serialize (Xqc.eval_string ~fuse:false ~variables q) in
  Alcotest.(check string) "~fuse:false agrees" on off

(* The fused tier's reason to exist: a filtered count over the item
   table runs in the bytecode loop with no per-tuple allocation, so its
   allocation footprint must sit well below the closure interpreter's.
   Both runs pay the same per-run plan-compilation cost ([Eval.run]
   rebuilds closures each run), so the document must be big enough for
   execution allocation to dominate that shared baseline. *)
let test_allocation_win () =
  let q =
    {|count(for $i in $auction/site/regions//item
           where $i/location = "United States"
           return $i)|}
  in
  let big = Xqc_workload.Xmark.generate ~target_bytes:2_000_000 () in
  let p = Xqc.prepare q in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node big ];
  let measure mode =
    with_fuse mode @@ fun () ->
    ignore (Xqc.run p ctx);
    let a = Gc.allocated_bytes () in
    let r = Xqc.run p ctx in
    let b = Gc.allocated_bytes () in
    (Xqc.serialize r, b -. a)
  in
  let fused, alloc_fused = measure Xqc.Codegen.Force in
  let interp, alloc_interp = measure Xqc.Codegen.Off in
  Alcotest.(check string) "same count" interp fused;
  if not (alloc_fused *. 2.0 < alloc_interp) then
    Alcotest.failf "fused path allocated %.0f bytes vs interpreted %.0f"
      alloc_fused alloc_interp

(* The obs counters behind `xqc serve`'s metrics plane: a fused run
   must account its executions and rows. *)
let test_counters () =
  with_fuse Xqc.Codegen.Force @@ fun () ->
  let execs = counter "fused_execs" and rows = counter "fused_rows" in
  let got = eval_xmark "count(for $i in $auction/site/regions/africa/item return $i/name)" in
  Alcotest.(check bool) "nonempty result" true (String.length got > 0);
  Alcotest.(check bool) "fused_execs advanced" true (counter "fused_execs" > execs);
  Alcotest.(check bool) "fused_rows advanced" true (counter "fused_rows" > rows)

let () =
  Alcotest.run "fused"
    [
      ( "explain",
        [
          Alcotest.test_case "segments rendered" `Quick test_explain_segments;
          Alcotest.test_case "orderby splice" `Quick test_orderby_splice;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "multi-node source" `Quick test_multinode_fallback;
          Alcotest.test_case "shadowed builtin" `Quick
            test_shadowed_builtin_fallback;
        ] );
      ( "knobs",
        [ Alcotest.test_case "prepare ~fuse:false" `Quick test_prepare_knob ] );
      ( "perf",
        [
          Alcotest.test_case "allocation win" `Quick test_allocation_win;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
    ]
