(* Systematic coverage of the built-in function library: every function
   registered in Builtins.table is exercised by at least one case below
   (a meta-test enforces this), with edge cases for empty sequences and
   dynamic errors. *)

let doc =
  Xqc.parse_document ~uri:"b.xml"
    {|<r><a>1</a><a>2</a><b href="http://x">text</b><!--c--><?pi d?></r>|}

let eval q =
  Xqc.serialize
    (Xqc.eval_string ~strategy:Xqc.Optimized
       ~variables:[ ("d", [ Xqc.Item.Node doc ]) ]
       ~documents:[ ("b.xml", doc) ]
       q)

(* (builtin names covered, test name, query, expected) *)
let cases =
  [
    ([ "fn:boolean" ], "boolean", "(boolean((1)), boolean(()))", "true false");
    ([ "fn:not" ], "not", "not(())", "true");
    ([ "fn:true"; "fn:false" ], "true/false", "(true(), false())", "true false");
    ([ "fn:count" ], "count", "count($d//a)", "2");
    ([ "fn:empty"; "fn:exists" ], "empty/exists", "(empty($d//zz), exists($d//a))", "true true");
    ([ "fn:data" ], "data", "data($d//a)", "1 2");
    ([ "fn:reverse" ], "reverse", "reverse(1 to 3)", "3 2 1");
    ([ "fn:subsequence" ], "subsequence", "(subsequence(1 to 5, 2), \"/\", subsequence(1 to 5, 2, 2))", "2 3 4 5 / 2 3");
    ([ "fn:insert-before" ], "insert-before", "insert-before((1,2), 99, 0)", "1 2 0");
    ([ "fn:remove" ], "remove", "remove((1,2,3), 1)", "2 3");
    ([ "fn:exactly-one" ], "exactly-one", "exactly-one((5))", "5");
    ([ "fn:zero-or-one" ], "zero-or-one", "zero-or-one(())", "");
    ([ "fn:one-or-more" ], "one-or-more", "one-or-more((1))", "1");
    ([ "fn:distinct-values" ], "distinct-values", "distinct-values((\"a\", \"b\", \"a\"))", "a b");
    ([ "fn:sum" ], "sum", "(sum((1,2,3)), sum(()))", "6 0");
    ([ "fn:avg" ], "avg", "avg((2, 4))", "3");
    ([ "fn:min"; "fn:max" ], "min/max", "(min((3,1)), max((3,1)))", "1 3");
    ([ "fn:string" ], "string", "string($d//b)", "text");
    ([ "fn:concat" ], "concat", "concat(\"a\", 1, \"b\")", "a1b");
    ([ "fn:string-join" ], "string-join", "string-join((\"x\",\"y\"), \"+\")", "x+y");
    ([ "fn:string-length" ], "string-length", "string-length(\"abc\")", "3");
    ([ "fn:contains" ], "contains", "contains(\"abc\", \"\")", "true");
    ([ "fn:starts-with"; "fn:ends-with" ], "starts/ends", "(starts-with(\"ab\",\"a\"), ends-with(\"ab\",\"a\"))", "true false");
    ([ "fn:substring" ], "substring", "substring(\"hello\", 1, 2)", "he");
    ([ "fn:upper-case"; "fn:lower-case" ], "case", "(upper-case(\"a\"), lower-case(\"A\"))", "A a");
    ([ "fn:normalize-space" ], "normalize-space", "normalize-space(\" a  b \")", "a b");
    ([ "fn:translate" ], "translate", "translate(\"abc\", \"abc\", \"xy\")", "xy");
    ([ "fn:number" ], "number", "number(\"2.5\") * 2", "5");
    ([ "fn:round"; "fn:floor"; "fn:ceiling"; "fn:abs" ], "rounding",
     "(round(1.5), floor(1.5), ceiling(1.5), abs(-1.5))", "2 1 2 1.5");
    ([ "fn:name"; "fn:local-name" ], "names", "(name($d/r), local-name($d/r))", "r r");
    ([ "fn:root" ], "root", "count(root($d//a[1])/r)", "1");
    ([ "fn:doc" ], "doc", "count(doc(\"b.xml\")//a)", "2");
    ([ "fn:deep-equal" ], "deep-equal", "deep-equal($d//a[1], $d//a[1])", "true");
    ([ "clio:deep-distinct" ], "deep-distinct",
     "count(clio:deep-distinct((<x>1</x>, <x>1</x>, <x>2</x>)))", "2");
    ([ "fn:index-of" ], "index-of", "index-of((5,6,5), 5)", "1 3");
    ([ "fn:compare" ], "compare", "compare(\"a\", \"a\")", "0");
    ([ "fn:substring-before"; "fn:substring-after" ], "substring-before/after",
     "(substring-before(\"a-b\", \"-\"), substring-after(\"a-b\", \"-\"))", "a b");
    ([ "fn:matches" ], "matches", "matches(\"a1\", \"\\w\\d\")", "true");
    ([ "fn:replace" ], "replace", "replace(\"aaa\", \"a\", \"b\")", "bbb");
    ([ "fn:tokenize" ], "tokenize", "tokenize(\"a:b\", \":\")", "a b");
    ([ "fn:string-to-codepoints"; "fn:codepoints-to-string" ], "codepoints",
     "codepoints-to-string(string-to-codepoints(\"ok\"))", "ok");
    (* operators introduced by normalization *)
    ([ "op:general-eq"; "op:general-ne" ], "general eq/ne", "(1 = 1, 1 != 1)", "true false");
    ([ "op:general-lt"; "op:general-le"; "op:general-gt"; "op:general-ge" ],
     "general orderings", "(1 < 2, 1 <= 1, 2 > 1, 1 >= 2)", "true true true false");
    ([ "op:eq"; "op:ne"; "op:lt"; "op:le"; "op:gt"; "op:ge" ], "value comparisons",
     "(1 eq 1, 1 ne 1, 1 lt 2, 1 le 1, 1 gt 0, 1 ge 2)", "true false true true true false");
    ([ "op:is-same-node" ], "is", "$d//a[1] is $d//a[1]", "true");
    ([ "op:node-before"; "op:node-after" ], "before/after",
     "($d//a[1] << $d//a[2], $d//a[1] >> $d//a[2])", "true false");
    ([ "op:add"; "op:subtract"; "op:multiply"; "op:divide" ], "arithmetic",
     "(1 + 1, 3 - 1, 2 * 3, 5 div 2)", "2 2 6 2.5");
    ([ "op:integer-divide"; "op:mod" ], "idiv/mod", "(7 idiv 2, 7 mod 2)", "3 1");
    ([ "op:unary-minus" ], "unary minus", "-(5)", "-5");
    ([ "op:to" ], "to", "count(1 to 100)", "100");
    ([ "op:union"; "op:intersect"; "op:except" ], "set ops",
     "(count($d//a | $d//b), count($d//a intersect $d//a), count($d//a except $d//a))",
     "3 2 0");
    (* fs: helpers *)
    ([ "fs:predicate-truth" ], "positional predicate", "(10,20,30)[position() = 2]", "20");
    ([ "fs:item-sequence-to-string" ], "avt", "<x y=\"{1,2}\"/>", {|<x y="1 2"/>|});
    ([ "fs:document" ], "document ctor", "count(document { <a/> }/a)", "1");
  ]

(* fn:collection needs a context-level binding that eval_string cannot
   express, so it gets a dedicated case below. *)
let test_collection () =
  let ctx = Xqc.context () in
  Xqc.Dynamic_ctx.bind_collection ctx "c" [ doc ];
  Alcotest.(check string) "collection" "2"
    (Xqc.serialize (Xqc.run (Xqc.prepare "count(collection(\"c\")//a)") ctx))

let covered =
  "fn:collection" :: List.concat_map (fun (names, _, _, _) -> names) cases

let make_case (_, name, q, expected) =
  Alcotest.test_case name `Quick (fun () -> Alcotest.(check string) name expected (eval q))

let test_coverage () =
  let missing =
    List.filter (fun n -> not (List.mem n covered)) Xqc.Builtins.names
  in
  Alcotest.(check (list string)) "every builtin exercised" [] missing

let error_cases =
  [
    ("count arity", "count(1, 2)");
    ("exactly-one empty", "exactly-one(())");
    ("one-or-more empty", "one-or-more(())");
    ("sum of strings", "sum((\"a\"))");
    ("arith non-singleton", "(1,2) + 1");
    ("idiv by zero", "1 idiv 0");
    ("mod by zero", "1 mod 0");
    ("to with bad bound", "\"x\" to 3");
    ("union over atomics", "1 | 2");
    ("doc unresolvable", "doc(\"nosuch.xml\")");
  ]

let make_error_case (name, q) =
  Alcotest.test_case name `Quick (fun () ->
      match eval q with
      | exception Xqc.Error _ -> ()
      | r -> Alcotest.failf "expected error, got %S" r)

let () =
  Alcotest.run "builtins"
    [
      ( "functions",
        List.map make_case cases
        @ [ Alcotest.test_case "collection" `Quick test_collection ] );
      ("coverage", [ Alcotest.test_case "all builtins covered" `Quick test_coverage ]);
      ("errors", List.map make_error_case error_cases);
    ]
