(* Observability: the Obs primitives, pipeline phase timing, per-operator
   runtime statistics (EXPLAIN ANALYZE), join accounting, the
   rewrite-rule firing trace, and — crucially — that collecting
   statistics never changes query results. *)

open Xqc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let test_json () =
  check_string "escaping"
    {|{"a":1,"b":"x\"y\n","c":[true,null],"d":1.5}|}
    (Obs.json_to_string
       (Obs.Obj
          [
            ("a", Obs.Int 1);
            ("b", Obs.Str "x\"y\n");
            ("c", Obs.Arr [ Obs.Bool true; Obs.Null ]);
            ("d", Obs.Float 1.5);
          ]));
  check_string "non-finite floats are null" {|[null,null,null]|}
    (Obs.json_to_string
       (Obs.Arr [ Obs.Float Float.nan; Obs.Float Float.infinity; Obs.Float Float.neg_infinity ]));
  check_string "control chars escape" "\"\\u0001\""
    (Obs.json_to_string (Obs.Str "\001"))

let test_counter_timer () =
  let c = Obs.counter "c" in
  Obs.incr_counter c;
  Obs.add_counter c 4;
  check_int "counter accumulates" 5 (Obs.counter_value c);
  let t = Obs.timer "t" in
  let v = Obs.time t (fun () -> 41 + 1) in
  check_int "time returns the thunk's value" 42 v;
  check_int "timer counts runs" 1 t.Obs.tm_count;
  check_bool "timer accumulates non-negative time" true (t.Obs.tm_secs >= 0.0);
  (* time must record even when the thunk raises *)
  (try Obs.time t (fun () -> failwith "boom") with Failure _ -> ());
  check_int "timer counts failed runs too" 2 t.Obs.tm_count

let test_sink_span () =
  let s = Obs.sink () in
  Obs.emit s ~attrs:[ ("k", "v") ] "plain";
  let r = Obs.span s "outer" (fun () -> Obs.span s "inner" (fun () -> 7)) in
  check_int "span returns the thunk's value" 7 r;
  (match Obs.events s with
  | [ e1; e2; e3 ] ->
      check_string "emission order" "plain" e1.Obs.ev_name;
      (* inner completes (and is emitted) before outer *)
      check_string "inner first" "inner" e2.Obs.ev_name;
      check_string "outer last" "outer" e3.Obs.ev_name;
      check_bool "outer spans inner" true (e3.Obs.ev_dur >= e2.Obs.ev_dur)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
  let lines = String.split_on_char '\n' (String.trim (Obs.events_to_json_lines s)) in
  check_int "one JSON line per event" 3 (List.length lines);
  List.iter
    (fun l -> check_bool "line is an object" true (String.length l > 0 && l.[0] = '{'))
    lines

let test_rewrite_trace_primitives () =
  let t = Obs.rewrite_trace () in
  Obs.fire t "insert join";
  Obs.fire t "remove map";
  Obs.fire t "insert join";
  check_int "per-rule count" 2 (Obs.rule_count t "insert join");
  check_int "unknown rule is zero" 0 (Obs.rule_count t "no such rule");
  check_int "total firings" 3 (Obs.total_firings t)

(* ------------------------------------------------------------------ *)
(* Pipeline phases                                                     *)
(* ------------------------------------------------------------------ *)

let phase_names c = List.map (fun p -> p.Obs.ph_name) c.Obs.co_phases

let test_phase_timing () =
  let p = prepare ~stats:true "for $x in (1,2,3) return $x + 1" in
  let c = match stats p with Some c -> c | None -> Alcotest.fail "no collector" in
  List.iter
    (fun name ->
      check_bool (name ^ " phase recorded") true (List.mem name (phase_names c)))
    [ "parse"; "normalize"; "compile"; "rewrite" ];
  check_bool "no eval before running" false (List.mem "eval" (phase_names c));
  let ctx = context () in
  ignore (run p ctx);
  ignore (run p ctx);
  let find name = List.find (fun ph -> ph.Obs.ph_name = name) c.Obs.co_phases in
  check_int "eval counted per run" 2 (find "eval").Obs.ph_count;
  check_int "parse ran once" 1 (find "parse").Obs.ph_count;
  check_bool "eval time accumulates" true ((find "eval").Obs.ph_secs >= 0.0)

let test_stats_off_by_default () =
  let p = prepare "1 + 1" in
  check_bool "no collector unless requested" true (stats p = None)

(* ------------------------------------------------------------------ *)
(* Per-operator statistics                                             *)
(* ------------------------------------------------------------------ *)

let run_with_stats ?(strategy = Optimized) q =
  let p = prepare ~strategy ~stats:true q in
  let result = run p (context ()) in
  let c = match stats p with Some c -> c | None -> Alcotest.fail "no collector" in
  (result, c)

let find_nodes pred root =
  Obs.fold_nodes (fun acc n -> if pred n then n :: acc else acc) [] root

let test_operator_cardinalities () =
  let _, c = run_with_stats "for $x in (1,2,3) return $x + 1" in
  let root = List.assoc "main" c.Obs.co_plans in
  check_string "root operator" "MapToItem" root.Obs.on_label;
  check_int "root called once" 1 root.Obs.on_stats.Obs.op_calls;
  check_int "root emits 3 items" 3 root.Obs.on_stats.Obs.op_items;
  (* the MapFromItem under the map-to-item produces the 3-tuple table *)
  (match find_nodes (fun n -> n.Obs.on_label = "MapFromItem") root with
  | [ mfi ] -> check_int "table has 3 tuples" 3 mfi.Obs.on_stats.Obs.op_tuples
  | l -> Alcotest.failf "expected 1 MapFromItem, got %d" (List.length l));
  (* the body runs once per tuple *)
  match find_nodes (fun n -> n.Obs.on_label = "Call[op:add]") root with
  | [ add ] ->
      check_int "body called per tuple" 3 add.Obs.on_stats.Obs.op_calls;
      check_int "body emits one item per call" 3 add.Obs.on_stats.Obs.op_items
  | l -> Alcotest.failf "expected 1 op:add, got %d" (List.length l)

let hash_join_query = "for $x in (1,2,3), $y in (2,3,4) where $x = $y return $x"

let test_join_statistics () =
  let result, c = run_with_stats hash_join_query in
  check_string "result" "2 3" (serialize result);
  let root = List.assoc "main" c.Obs.co_plans in
  (match
     find_nodes (fun n -> n.Obs.on_join <> None) root
     |> List.concat_map (fun n -> Option.to_list n.Obs.on_join)
   with
  | [ js ] ->
      check_int "one build" 1 js.Obs.js_builds;
      check_int "inner side has 3 tuples" 3 js.Obs.js_build_tuples;
      check_int "3 probes" 3 js.Obs.js_probes;
      check_int "2 matches" 2 js.Obs.js_matches
  | l -> Alcotest.failf "expected 1 join node, got %d" (List.length l));
  let totals = Obs.join_totals c in
  check_int "totals aggregate probes" 3 totals.Obs.js_probes

let test_sort_join_statistics () =
  let result, c =
    run_with_stats "for $x in (1,2,3), $y in (2,3,4) where $x < $y return $x + $y"
  in
  check_string "result" "3 4 5 5 6 7" (serialize result);
  let totals = Obs.join_totals c in
  check_int "one sorted build" 1 totals.Obs.js_builds;
  check_bool "numeric sort keys materialized" true (totals.Obs.js_sort_numeric > 0);
  check_int "6 matches" 6 totals.Obs.js_matches

(* ------------------------------------------------------------------ *)
(* Rewrite-rule trace                                                  *)
(* ------------------------------------------------------------------ *)

(* The MapConcat-to-Join unnesting chain of Figure 5 on a two-generator
   FLWOR: product insertion, join insertion, map removal, then the
   physical pass picking the hash algorithm for [=]. *)
let test_rewrite_trace_unnesting () =
  let _, c = run_with_stats hash_join_query in
  let t = c.Obs.co_rewrite in
  List.iter
    (fun rule -> check_int ("fired once: " ^ rule) 1 (Obs.rule_count t rule))
    [ "insert product"; "insert join"; "remove map"; "choose hash join" ];
  check_bool "reaches fixpoint in >1 pass" true (t.Obs.rw_passes > 1)

let test_rewrite_trace_strategies () =
  (* no-optim performs no rewriting at all; nl-join never picks physical
     algorithms *)
  let _, c_none = run_with_stats ~strategy:Algebra_unoptimized hash_join_query in
  check_int "no-optim fires nothing" 0 (Obs.total_firings c_none.Obs.co_rewrite);
  let _, c_nl = run_with_stats ~strategy:Optimized_nl hash_join_query in
  check_int "nl-join inserts the join" 1 (Obs.rule_count c_nl.Obs.co_rewrite "insert join");
  check_int "nl-join picks no algorithm" 0
    (Obs.rule_count c_nl.Obs.co_rewrite "choose hash join")

let test_groupby_rule_trace () =
  let q =
    "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
     return ($x, $a)"
  in
  let result, c = run_with_stats q in
  check_string "figure 4 result" "1 15 1 15 3" (serialize result);
  let t = c.Obs.co_rewrite in
  check_bool "insert group-by fired" true (Obs.rule_count t "insert group-by" > 0);
  check_bool "insert outer-join fired" true (Obs.rule_count t "insert outer-join" > 0);
  check_bool "choose sort join fired" true (Obs.rule_count t "choose sort join" > 0)

(* ------------------------------------------------------------------ *)
(* Statistics collection is observation only                           *)
(* ------------------------------------------------------------------ *)

let test_stats_do_not_change_results () =
  let queries =
    [
      "for $x in (1,2,3) return $x + 1";
      hash_join_query;
      "for $x in (1,2,3), $y in (2,3,4) where $x < $y return <r>{$x + $y}</r>";
      "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
       return ($x, $a)";
      "let $s := (for $i in 1 to 10 return <a><b>{$i}</b></a>) \
       for $x in $s where $x/b mod 2 = 0 return $x/b/text()";
    ]
  in
  List.iter
    (fun q ->
      List.iter
        (fun strategy ->
          let plain = serialize (run (prepare ~strategy q) (context ())) in
          let with_stats = serialize (run (prepare ~strategy ~stats:true q) (context ())) in
          check_string
            (Printf.sprintf "%s / %s" (strategy_name strategy) q)
            plain with_stats)
        all_strategies)
    queries

(* Generated field names (and therefore plans and reports) must not
   depend on how many queries were prepared before. *)
let test_deterministic_field_names () =
  let report () = explain ~strategy:Optimized hash_join_query in
  let first = report () in
  ignore (prepare "for $a in (1,2) for $b in (3,4) where $a = $b return $a");
  check_string "explain is reproducible" first (report ())

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let test_explain_analyze_report () =
  let p = prepare ~stats:true hash_join_query in
  ignore (run p (context ()));
  let report = explain_analyze p in
  let contains needle =
    let nl = String.length needle and hl = String.length report in
    let rec go i = i + nl <= hl && (String.sub report i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool ("report contains " ^ needle) true (contains needle))
    [
      "=== Pipeline phases ===";
      "rewrite";
      "=== Rewrite trace ===";
      "insert join";
      "=== EXPLAIN ANALYZE (main) ===";
      "PHashJoin<eq>";
      "est=";
      "builds=1";
      "calls=";
      "=== Join totals ===";
    ]

let test_explain_analyze_requires_stats () =
  let p = prepare "1 + 1" in
  match explain_analyze p with
  | exception Error _ -> ()
  | _ -> Alcotest.fail "expected Error for a stats-less prepared query"

let test_stats_json () =
  let p = prepare ~stats:true hash_join_query in
  check_bool "json absent without stats" true (stats_json (prepare "1") = None);
  ignore (run p (context ()));
  match stats_json p with
  | None -> Alcotest.fail "expected JSON"
  | Some s ->
      check_bool "is an object" true (String.length s > 0 && s.[0] = '{');
      let contains needle =
        let nl = String.length needle and hl = String.length s in
        let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle -> check_bool ("json contains " ^ needle) true (contains needle))
        [ {|"phases":[|}; {|"rewrite":{|}; {|"insert join":1|}; {|"joins":{|};
          {|"plans":[|}; {|"op":"MapToItem"|} ]

let () =
  Alcotest.run "obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "json" `Quick test_json;
          Alcotest.test_case "counter and timer" `Quick test_counter_timer;
          Alcotest.test_case "sink and span" `Quick test_sink_span;
          Alcotest.test_case "rewrite trace" `Quick test_rewrite_trace_primitives;
        ] );
      ( "phases",
        [
          Alcotest.test_case "phase timing" `Quick test_phase_timing;
          Alcotest.test_case "off by default" `Quick test_stats_off_by_default;
        ] );
      ( "operators",
        [
          Alcotest.test_case "cardinalities" `Quick test_operator_cardinalities;
          Alcotest.test_case "hash join stats" `Quick test_join_statistics;
          Alcotest.test_case "sort join stats" `Quick test_sort_join_statistics;
        ] );
      ( "rewrite-trace",
        [
          Alcotest.test_case "unnesting chain" `Quick test_rewrite_trace_unnesting;
          Alcotest.test_case "per-strategy" `Quick test_rewrite_trace_strategies;
          Alcotest.test_case "group-by rules" `Quick test_groupby_rule_trace;
        ] );
      ( "non-interference",
        [
          Alcotest.test_case "results unchanged" `Quick test_stats_do_not_change_results;
          Alcotest.test_case "deterministic fields" `Quick test_deterministic_field_names;
        ] );
      ( "reports",
        [
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze_report;
          Alcotest.test_case "requires stats" `Quick test_explain_analyze_requires_stats;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
    ]
