(* The query service end to end, in process: a server thread (accept
   loop + worker domains) exercised through real Unix-domain sockets by
   concurrent clients — correctness under parallelism, prepared-statement
   reuse through the shared plan cache, deadline and admission-control
   error paths, graceful shutdown, and the determinism of parallel plan
   compilation (the gensym that used to be a global is now domain-local). *)

module Server = Xqc_server.Server
module Client = Xqc_server.Client
module Json_parse = Xqc_server.Json_parse
module Obs = Xqc.Obs

let tmp = Filename.get_temp_dir_name ()
let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat tmp
    (Printf.sprintf "xqc-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* One small XMark document shared by all service tests. *)
let xmark_path =
  lazy
    (let path =
       Filename.concat tmp (Printf.sprintf "xqc-test-%d-xmark.xml" (Unix.getpid ()))
     in
     let s = Xqc_workload.Xmark.generate_string ~seed:42 ~target_bytes:150_000 () in
     let oc = open_out_bin path in
     output_string oc s;
     close_out oc;
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Evaluate [q] locally against the XMark doc — the oracle the server's
   answers must match. *)
let expected_results queries =
  let ctx = Xqc.context () in
  let doc = Xqc.parse_document ~uri:"auction.xml" (read_file (Lazy.force xmark_path)) in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];
  List.map (fun q -> (q, Xqc.serialize (Xqc.run (Xqc.prepare q) ctx))) queries

(* Run [f sock] against a live server; always shut it down afterwards. *)
let with_server ?(workers = 2) ?(queue_depth = 64) ?default_timeout_ms
    ?(preload = []) ?(trace_sample = 1.0) ?(slow_ms = 100.0)
    ?(slow_analyze = true) f =
  let sock = fresh_sock () in
  let ready_lock = Mutex.create () in
  let ready_cond = Condition.create () in
  let is_ready = ref false in
  let cfg =
    {
      Server.default_config with
      unix_socket = Some sock;
      workers;
      queue_depth;
      default_timeout_ms;
      preload;
      trace_sample;
      slow_ms;
      slow_analyze;
    }
  in
  let th =
    Thread.create
      (fun () ->
        Server.serve
          ~ready:(fun () ->
            Mutex.protect ready_lock (fun () ->
                is_ready := true;
                Condition.signal ready_cond))
          cfg)
      ()
  in
  Mutex.lock ready_lock;
  while not !is_ready do
    Condition.wait ready_cond ready_lock
  done;
  Mutex.unlock ready_lock;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect_unix sock in
         (try Client.shutdown c with _ -> ());
         Client.close c
       with _ -> ());
      Thread.join th)
    (fun () -> f sock)

let preload_xmark () = [ ("auction", Lazy.force xmark_path) ]

(* A query whose dependent inner loop makes the evaluator hit its
   per-tuple deadline checks for roughly [n^2 / 1e6] cpu-seconds. *)
let slow_query n =
  Printf.sprintf
    "count(for $i in 1 to %d for $j in 1 to %d where $i * $j = -1 return 1)" n n

let check_ok what = function
  | Ok v -> v
  | Error (code, m) -> Alcotest.failf "%s: unexpected error %s: %s" what code m

(* JSON accessors for poking at stats / metrics / trace responses. *)
let jfield name = function
  | Obs.Obj fields -> List.assoc_opt name fields
  | _ -> None

let jint what name json =
  match jfield name json with
  | Some (Obs.Int n) -> n
  | _ -> Alcotest.failf "%s: no integer field %S" what name

let jnum what name json =
  match jfield name json with
  | Some (Obs.Float f) -> f
  | Some (Obs.Int n) -> float_of_int n
  | _ -> Alcotest.failf "%s: no numeric field %S" what name

let jarr what name json =
  match jfield name json with
  | Some (Obs.Arr l) -> l
  | _ -> Alcotest.failf "%s: no array field %S" what name

let jstr what name json =
  match jfield name json with
  | Some (Obs.Str s) -> s
  | _ -> Alcotest.failf "%s: no string field %S" what name

(* ------------------------------------------------------------------ *)
(* JSON wire format                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"op":"query","q":"1+1","id":7,"timeout_ms":250}|};
      {|[1,-2.5,1e3,true,false,null,"a\"b\\c\nd"]|};
      {|{"nested":{"deep":[{"x":[]},{}]},"u":"é☃😀"}|};
    ]
  in
  (* print/parse stabilizes after one round trip (a float like 1e3
     prints as an integer literal, so values need one normalization) *)
  List.iter
    (fun s ->
      let printed = Obs.json_to_string (Json_parse.parse s) in
      let reprinted = Obs.json_to_string (Json_parse.parse printed) in
      Alcotest.(check string) s printed reprinted)
    cases;
  (match Json_parse.parse "42" with
  | Obs.Int 42 -> ()
  | _ -> Alcotest.fail "integer did not parse as Int");
  List.iter
    (fun bad ->
      match Json_parse.parse bad with
      | exception Json_parse.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ "{"; "[1,]"; "{\"a\":1"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Concurrent correctness                                              *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients () =
  let queries =
    [
      "count($auction//item)";
      "count($auction//person)";
      "count($auction//bidder)";
      "for $p in $auction/site/people/person where $p/@id = \"person0\" \
       return $p/name/text()";
      "count(for $i in $auction//item where $i/location = \"United States\" \
       return $i)";
    ]
  in
  let expected = expected_results queries in
  with_server ~workers:3 ~preload:(preload_xmark ()) @@ fun sock ->
  let n_clients = 3 and rounds = 3 in
  let failures = ref [] in
  let fail_lock = Mutex.create () in
  let client_loop k () =
    let c = Client.connect_unix sock in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for r = 0 to rounds - 1 do
      List.iteri
        (fun i (q, want) ->
          (* stagger the order per client so they collide on different
             plans at different times *)
          ignore (r + i + k);
          match Client.query c q with
          | Ok got when got = want -> ()
          | Ok got ->
              Mutex.protect fail_lock (fun () ->
                  failures := Printf.sprintf "%s: got %S want %S" q got want :: !failures)
          | Error (code, m) ->
              Mutex.protect fail_lock (fun () ->
                  failures := Printf.sprintf "%s: error %s: %s" q code m :: !failures))
        expected
    done
  in
  let threads = List.init n_clients (fun k -> Thread.create (client_loop k) ()) in
  List.iter Thread.join threads;
  match !failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d wrong answers under concurrency, e.g. %s"
        (List.length !failures) f

(* ------------------------------------------------------------------ *)
(* Prepared statements and the shared plan cache                       *)
(* ------------------------------------------------------------------ *)

let test_prepared_reuse () =
  let q = "count($auction//open_auction)" in
  let want =
    match expected_results [ q ] with
    | [ (_, w) ] -> w
    | _ -> Alcotest.fail "oracle evaluation failed"
  in
  with_server ~workers:2 ~preload:(preload_xmark ()) @@ fun sock ->
  let c1 = Client.connect_unix sock in
  let c2 = Client.connect_unix sock in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2)
  @@ fun () ->
  let hits_before =
    Option.value (Client.stat_counter (Client.stats c1) "plan_cache_hits") ~default:0
  in
  ignore (check_ok "prepare" (Result.map (fun () -> "") (Client.prepare c1 ~name:"auctions" q)));
  for _ = 1 to 3 do
    Alcotest.(check string) "execute via c1" want (check_ok "execute" (Client.execute c1 "auctions"));
    Alcotest.(check string) "execute via c2" want (check_ok "execute" (Client.execute c2 "auctions"))
  done;
  let hits_after =
    Option.value (Client.stat_counter (Client.stats c1) "plan_cache_hits") ~default:0
  in
  if hits_after - hits_before < 6 then
    Alcotest.failf "expected >= 6 plan-cache hits from statement reuse, got %d"
      (hits_after - hits_before);
  match Client.execute c1 "no-such-statement" with
  | Error ("unknown_statement", _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "executing an unknown statement must fail"

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeout () =
  with_server ~workers:1 ~preload:[] @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let started = Obs.now () in
  (match Client.query ~timeout_ms:150 c (slow_query 2000) with
  | Error ("timeout", _) -> ()
  | Ok v -> Alcotest.failf "slow query returned %S instead of timing out" v
  | Error (code, m) -> Alcotest.failf "expected timeout, got %s: %s" code m);
  let elapsed = Obs.now () -. started in
  if elapsed > 1.5 then
    Alcotest.failf "timeout took %.2fs — deadline not enforced cooperatively" elapsed;
  (* the worker that aborted the query must still be serving *)
  Alcotest.(check string) "worker survives" "2" (check_ok "1+1" (Client.query c "1+1"))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_overloaded () =
  with_server ~workers:1 ~queue_depth:1 ~preload:[] @@ fun sock ->
  (* occupy the single worker for ~2s (bounded by its own deadline) *)
  let blocker_result = ref (Error ("unset", "")) in
  let blocker =
    Thread.create
      (fun () ->
        let c = Client.connect_unix sock in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        blocker_result := Client.query ~timeout_ms:4000 c (slow_query 2000))
      ()
  in
  Thread.delay 0.3;
  let results = Array.make 4 (Error ("unset", "")) in
  let shooters =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let c = Client.connect_unix sock in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            results.(i) <- Client.query c "1+1")
          ())
  in
  List.iter Thread.join shooters;
  Thread.join blocker;
  let overloaded =
    Array.to_list results
    |> List.filter (function Error ("overloaded", _) -> true | _ -> false)
    |> List.length
  in
  if overloaded < 1 then
    Alcotest.failf "queue overflow produced no overloaded errors (results: %s)"
      (String.concat ", "
         (Array.to_list results
         |> List.map (function
              | Ok v -> "ok:" ^ v
              | Error (c, _) -> "error:" ^ c)));
  (* whatever was admitted must still have been answered correctly *)
  Array.iter
    (function
      | Ok v -> Alcotest.(check string) "admitted answer" "2" v
      | Error ("overloaded", _) -> ()
      | Error (code, m) -> Alcotest.failf "unexpected error %s: %s" code m)
    results

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

let test_shutdown_drains () =
  with_server ~workers:1 ~preload:[] @@ fun sock ->
  let inflight_result = ref (Error ("unset", "")) in
  let worker_conn =
    Thread.create
      (fun () ->
        let c = Client.connect_unix sock in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        inflight_result := Client.query c (slow_query 1000))
      ()
  in
  Thread.delay 0.15;
  (* shutdown blocks until the in-flight query has drained *)
  let c = Client.connect_unix sock in
  Client.shutdown c;
  Client.close c;
  Thread.join worker_conn;
  match !inflight_result with
  | Ok v -> Alcotest.(check string) "drained result" "0" v
  | Error (code, m) ->
      Alcotest.failf "in-flight query was not drained: %s: %s" code m

(* ------------------------------------------------------------------ *)
(* Stats, metrics and the tracing plane                                *)
(* ------------------------------------------------------------------ *)

let test_stats_fields () =
  with_server ~workers:2 ~preload:[] @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (check_ok "warmup" (Client.query c "1+1"));
  (* the worker decrements inflight after writing the reply, so give the
     gauge a moment to settle *)
  let rec settled tries =
    let s = Client.stats c in
    if jint "stats" "inflight" s = 0 || tries = 0 then s
    else (
      Thread.delay 0.02;
      settled (tries - 1))
  in
  let s = settled 50 in
  Alcotest.(check bool) "uptime present and sane" true (jnum "stats" "uptime_s" s >= 0.0);
  Alcotest.(check int) "nothing in flight at rest" 0 (jint "stats" "inflight" s);
  (* the counter is process-global, so only presence/sanity is stable here *)
  Alcotest.(check bool) "admission_rejected reported" true
    (jint "stats" "admission_rejected" s >= 0);
  Alcotest.(check bool) "traced requests are counted" true (jint "stats" "traces" s >= 1);
  Alcotest.(check int) "queue empty at rest" 0 (jint "stats" "queue_depth" s)

let test_metrics_json () =
  with_server ~workers:2 ~preload:[] @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 5 do
    ignore (check_ok "query" (Client.query c "1+1"))
  done;
  Thread.delay 0.3;  (* let the gauge sampler tick a few times *)
  let m = Client.metrics c in
  Alcotest.(check bool)
    "latency histogram saw the requests" true
    (jint "metrics" "count" (Option.get (jfield "latency_ms" m)) >= 5);
  List.iter
    (fun h ->
      match jfield h m with
      | Some _ -> ()
      | None -> Alcotest.failf "metrics missing histogram %S" h)
    [ "queue_wait_ms"; "eval_ms"; "serialize_ms" ];
  let lock_names =
    List.map (fun lk -> jstr "lock" "name" lk) (jarr "metrics" "locks" m)
  in
  List.iter
    (fun name ->
      if not (List.mem name lock_names) then
        Alcotest.failf "lock table has no %S entry (got: %s)" name
          (String.concat ", " lock_names))
    [ "plan_cache"; "obs_registry"; "conn_write" ];
  Alcotest.(check int)
    "one detail row per worker" 2
    (List.length (jarr "metrics" "workers_detail" m));
  Alcotest.(check bool)
    "gauge sampler produced samples" true
    (jarr "metrics" "gauge_samples" m <> []);
  (* nothing was slower than the 100ms default threshold *)
  Alcotest.(check (list Alcotest.reject))
    "slow ring empty under threshold" []
    (jarr "metrics" "entries" (Option.get (jfield "slow_queries" m)))

(* Prometheus text exposition: HELP/TYPE headers for every family, every
   sample line parseable, and the request counter consistent with the
   load we generated. *)
let test_metrics_prometheus () =
  with_server ~workers:1 ~preload:[] @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 3 do
    ignore (check_ok "query" (Client.query c "1+1"))
  done;
  let text = Client.metrics_prometheus c in
  let lines = String.split_on_char '\n' text in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | "#" :: "TYPE" :: name :: [ kind ] -> Hashtbl.replace typed name kind
      | "#" :: "HELP" :: _ -> ()
      | [ "" ] | [] -> ()
      | parts -> (
          (* sample line: NAME[{labels}] VALUE *)
          match List.rev parts with
          | value :: _ when float_of_string_opt value <> None -> ()
          | _ -> Alcotest.failf "unparseable sample line %S" line))
    lines;
  List.iter
    (fun (name, kind) ->
      match Hashtbl.find_opt typed name with
      | Some k when k = kind -> ()
      | Some k -> Alcotest.failf "%s has TYPE %s, want %s" name k kind
      | None -> Alcotest.failf "no TYPE line for %s" name)
    [
      ("xqc_server_requests_total", "counter");
      ("xqc_lock_wait_seconds_total", "counter");
      ("xqc_worker_busy_seconds_total", "counter");
      ("xqc_queue_depth", "gauge");
      ("xqc_inflight", "gauge");
      ("xqc_request_duration_milliseconds", "summary");
      ("xqc_queue_wait_milliseconds", "summary");
    ];
  let requests_line =
    List.find_opt
      (fun l ->
        String.length l > 25 && String.sub l 0 25 = "xqc_server_requests_total")
      lines
  in
  match requests_line with
  | Some l -> (
      match String.split_on_char ' ' l with
      | [ _; v ] ->
          Alcotest.(check bool)
            "request counter reflects the load" true
            (float_of_string v >= 3.0)
      | _ -> Alcotest.failf "malformed counter line %S" l)
  | None -> Alcotest.fail "no xqc_server_requests_total sample"

(* A traced request's stored span tree covers the whole life of the
   request — admission, queue wait, deadline arming, plan cache, eval,
   serialize, reply write — and the tree is well-formed (parents exist,
   intervals nest). *)
let test_trace_full_chain () =
  with_server ~workers:1 ~default_timeout_ms:10_000 ~preload:(preload_xmark ())
  @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let resp =
    check_ok "traced query"
      (Client.query_json ~trace:true c "count($auction//item)")
  in
  let tid = jint "response" "trace_id" resp in
  (match jfield "trace" resp with
  | Some _ -> ()
  | None -> Alcotest.fail "\"trace\":true response has no embedded trace");
  (* the trace is stored just after the reply is written: poll briefly *)
  let rec fetch tries =
    match Client.fetch_trace c tid with
    | Ok tr when jfield "complete" tr = Some (Obs.Bool true) -> tr
    | _ when tries > 0 ->
        Thread.delay 0.05;
        fetch (tries - 1)
    | Ok _ -> Alcotest.fail "stored trace never marked complete"
    | Error (code, m) -> Alcotest.failf "trace fetch failed: %s: %s" code m
  in
  let tr = fetch 40 in
  let spans = jarr "trace" "spans" tr in
  let names = List.map (fun sp -> jstr "span" "name" sp) spans in
  List.iter
    (fun want ->
      if not (List.mem want names) then
        Alcotest.failf "span %S missing from chain (got: %s)" want
          (String.concat ", " names))
    [
      "request"; "admission"; "queue-wait"; "deadline-armed"; "plan-cache";
      "eval"; "serialize"; "reply-write";
    ];
  (* well-formedness over the wire representation *)
  let eps = 0.001 in
  let by_id =
    List.map (fun sp -> (jint "span" "id" sp, sp)) spans
  in
  List.iter
    (fun (id, sp) ->
      let parent = jint "span" "parent" sp in
      if parent <> 0 then
        match List.assoc_opt parent by_id with
        | None -> Alcotest.failf "span %d has unknown parent %d" id parent
        | Some psp ->
            let s = jnum "span" "start_ms" sp
            and d = jnum "span" "dur_ms" sp
            and ps = jnum "span" "start_ms" psp
            and pd = jnum "span" "dur_ms" psp in
            if s +. eps < ps then
              Alcotest.failf "span %d starts before its parent" id;
            if s +. d > ps +. pd +. eps then
              Alcotest.failf "span %d ends after its parent" id)
    by_id;
  (* an untraced fetch of a bogus id is a structured error *)
  match Client.fetch_trace c 999_999_999 with
  | Error ("unknown_trace", _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bogus trace id must yield unknown_trace"

(* Seeded trace ids: with one worker and sequential requests the ids a
   server hands out are consecutive from the seed. *)
let test_deterministic_server_ids () =
  Xqc.Trace.set_seed 7777;
  with_server ~workers:1 ~preload:[] @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let ids =
    List.init 3 (fun _ ->
        jint "response" "trace_id"
          (check_ok "traced query" (Client.query_json ~trace:true c "1+1")))
  in
  Alcotest.(check (list int)) "consecutive from the seed" [ 7777; 7778; 7779 ] ids

(* With a threshold of effectively zero every request is slow: the ring
   fills, entries keep their span timelines, and the analyzer attaches
   an EXPLAIN ANALYZE re-run. *)
let test_slow_query_ring () =
  with_server ~workers:1 ~preload:(preload_xmark ()) ~slow_ms:0.001
  @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let q = "count($auction//item)" in
  ignore (check_ok "query" (Client.query c q));
  (* note_slow runs after the reply is written: poll for the analysis *)
  let rec poll tries =
    let m = Client.metrics c in
    let slow = Option.get (jfield "slow_queries" m) in
    match jarr "slow" "entries" slow with
    | e :: _ when jfield "explain" e <> None -> e
    | _ when tries > 0 ->
        Thread.delay 0.05;
        poll (tries - 1)
    | e :: _ -> e
    | [] -> Alcotest.fail "no slow-ring entry for an over-threshold request"
  in
  let e = poll 60 in
  Alcotest.(check string) "entry keeps the source" q (jstr "entry" "source" e);
  Alcotest.(check string) "outcome recorded" "ok" (jstr "entry" "outcome" e);
  Alcotest.(check bool) "span timeline attached" true (jarr "entry" "spans" e <> []);
  (match jfield "explain" e with
  | Some (Obs.Str text) ->
      Alcotest.(check bool) "explain analyze non-empty" true
        (String.length text > 0)
  | _ -> Alcotest.fail "no EXPLAIN ANALYZE attached to the slow entry");
  Alcotest.(check bool) "trace id linked" true (jint "entry" "trace_id" e > 0)

(* ------------------------------------------------------------------ *)
(* Parallel plan compilation is deterministic                          *)
(* ------------------------------------------------------------------ *)

(* Regression for the formerly-global gensym: two domains compiling
   different queries at once must each produce exactly the plan a
   sequential compile produces (fresh field names neither collide nor
   depend on interleaving). *)
let test_parallel_prepare_deterministic () =
  let qa =
    "for $p in $auction//person for $i in $auction//item where $p/@id = \
     $i/@featured return $p/name"
  in
  let qb =
    "for $x in (1,2,3) let $y := for $z in (4,5,6) where $z = $x + 3 return \
     $z return count($y)"
  in
  let plan_str q =
    let p = Xqc.prepare ~strategy:Xqc.Optimized q in
    match p.Xqc.plan with
    | Some plan -> Xqc.Pretty.to_string plan
    | None -> Alcotest.fail "optimized strategy produced no logical plan"
  in
  let want_a = plan_str qa and want_b = plan_str qb in
  for _ = 1 to 3 do
    let da = Domain.spawn (fun () -> plan_str qa) in
    let db = Domain.spawn (fun () -> plan_str qb) in
    let got_a = Domain.join da and got_b = Domain.join db in
    Alcotest.(check string) "plan A stable under parallel compilation" want_a got_a;
    Alcotest.(check string) "plan B stable under parallel compilation" want_b got_b
  done

let () =
  Alcotest.run "server"
    [
      ("wire", [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip ]);
      ( "service",
        [
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "prepared reuse" `Quick test_prepared_reuse;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats fields" `Quick test_stats_fields;
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "metrics prometheus" `Quick test_metrics_prometheus;
          Alcotest.test_case "trace full chain" `Quick test_trace_full_chain;
          Alcotest.test_case "deterministic ids" `Quick
            test_deterministic_server_ids;
          Alcotest.test_case "slow query ring" `Quick test_slow_query_ring;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel prepare" `Quick
            test_parallel_prepare_deterministic;
        ] );
    ]
