(* The indexed document store: interval encoding, per-name indexes,
   the invalidation protocol, and the document/plan caches.

   The contract under test: with indexes forced on, every store answer
   equals the walking answer; renumbering or copying a tree never serves
   a stale nid range; fn:doc parses once per URI per context; prepare is
   memoized by (source, strategy, knobs). *)

module Node = Xqc.Node
module Store = Xqc.Store
module Obs = Xqc.Obs

let with_index_mode mode f =
  let saved_mode = !Store.mode
  and saved_min = !Store.min_index_size
  and saved_small = !Store.small_subtree in
  Store.mode := mode;
  Store.min_index_size := 0;
  Store.small_subtree := 0;
  Fun.protect
    ~finally:(fun () ->
      Store.mode := saved_mode;
      Store.min_index_size := saved_min;
      Store.small_subtree := saved_small)
    f

let counter name = List.assoc name (Obs.global_counters ())

let doc () =
  Xqc.parse_document ~uri:"t.xml"
    {|<site><a><b/><b><c/></b></a><a/><b x="1" y="2"><a><b/></a></b></site>|}

(* -------- interval encoding -------- *)

(* every node of a renumbered tree: size = extent = 1 + attrs + descendant
   sizes, and the subtree interval contains exactly the subtree *)
let test_extents () =
  let d = doc () in
  let rec walk_size n =
    1
    + List.length (Node.attributes n)
    + List.fold_left (fun acc c -> acc + walk_size c) 0 (Node.children n)
  in
  let rec check n =
    Alcotest.(check int) "size = walked size" (walk_size n) (Node.size n);
    (match Node.subtree_interval n with
    | None -> Alcotest.fail "renumbered node has no interval"
    | Some (lo, hi) ->
        Alcotest.(check int) "interval width = size" (Node.size n) (hi - lo);
        List.iter
          (fun m ->
            let inside = lo < m.Node.nid && m.Node.nid < hi in
            if not inside then
              Alcotest.failf "descendant nid %d outside (%d, %d)" m.Node.nid lo
                hi)
          (Node.descendants n));
    List.iter check (Node.children n)
  in
  check d

(* the interval test is exactly the ancestor relation *)
let test_interval_is_descendant_test () =
  let d = doc () in
  let all = Node.descendant_or_self d in
  List.iter
    (fun n ->
      match Node.subtree_interval n with
      | None -> Alcotest.fail "no interval"
      | Some (lo, hi) ->
          List.iter
            (fun m ->
              let by_interval = lo < m.Node.nid && m.Node.nid < hi in
              let by_walk = Node.is_ancestor_of ~anc:n m && m != n in
              if by_interval <> by_walk then
                Alcotest.failf "interval test disagrees with walk (%d in %d..%d)"
                  m.Node.nid lo hi)
            all)
    all

(* -------- index answers = walk answers -------- *)

let names_of nodes =
  List.map (fun n -> match Node.name n with Some q -> q | None -> "?") nodes

let walk_descendants ?(self = false) n name =
  List.filter
    (fun m ->
      Node.kind m = Node.Kelement
      && (String.equal name "*" || Node.name m = Some name))
    (if self then Node.descendant_or_self n else Node.descendants n)

let test_index_matches_walk () =
  with_index_mode Store.Force (fun () ->
      let d = doc () in
      let all = Node.descendant_or_self d in
      List.iter
        (fun n ->
          List.iter
            (fun name ->
              let indexed =
                match Store.descendants_by_name n name with
                | Some l -> l
                | None -> Alcotest.fail "Force mode returned None"
              in
              let walked = walk_descendants n name in
              Alcotest.(check (list string))
                (Printf.sprintf "descendant::%s under nid %d" name n.Node.nid)
                (names_of walked) (names_of indexed);
              if not (List.for_all2 ( == ) walked indexed) then
                Alcotest.fail "same names but different nodes";
              Alcotest.(check int)
                ("count " ^ name)
                (List.length walked)
                (Option.get (Store.count_descendants_by_name n name));
              Alcotest.(check bool)
                ("exists " ^ name) (walked <> [])
                (Option.get (Store.exists_descendant_by_name n name));
              match Store.children_by_name n name with
              | None -> ()  (* cost guard sent the caller to the walk *)
              | Some kids ->
                  let walked_kids =
                    List.filter
                      (fun m ->
                        Node.kind m = Node.Kelement
                        && (String.equal name "*" || Node.name m = Some name))
                      (Node.children n)
                  in
                  if not (List.for_all2 ( == ) walked_kids kids) then
                    Alcotest.failf "child::%s mismatch" name)
            [ "a"; "b"; "c"; "nosuch"; "*" ])
        all)

let test_attributes_by_name () =
  with_index_mode Store.Force (fun () ->
      let d = doc () in
      let b =
        List.find
          (fun n -> Node.attributes n <> [])
          (Node.descendants d)
      in
      (match Store.attributes_by_name b "x" with
      | Some [ a ] -> Alcotest.(check string) "@x" "1" (Node.string_value a)
      | _ -> Alcotest.fail "attribute index miss");
      match Store.attributes_by_name (doc ()) "x" with
      | Some [] | None -> ()
      | Some _ -> Alcotest.fail "@x found outside its tree")

(* -------- invalidation -------- *)

let count_items d q =
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "d" [ Xqc.Item.Node d ];
  Xqc.serialize (Xqc.run (Xqc.prepare q) ctx)

let test_renumber_invalidates () =
  with_index_mode Store.Force (fun () ->
      let d = doc () in
      Alcotest.(check string) "initial count" "4" (count_items d "count($d//b)");
      let builds0 = counter "index_builds" in
      (* renumbering moves every nid: a stale range would now select
         arbitrary nodes, so the count only survives via a rebuild *)
      Node.renumber d;
      Alcotest.(check string) "after renumber" "4" (count_items d "count($d//b)");
      if counter "index_builds" <= builds0 then
        Alcotest.fail "renumber did not trigger a rebuild")

let test_copy_is_independent () =
  with_index_mode Store.Force (fun () ->
      let d = doc () in
      Alcotest.(check string) "original" "4" (count_items d "count($d//b)");
      let c = Node.copy d in
      Node.renumber c;
      Alcotest.(check string) "copy" "4" (count_items c "count($d//b)");
      (* the copy got its own index; the original still answers *)
      Alcotest.(check string) "original again" "4" (count_items d "count($d//b)"))

let test_constructed_trees () =
  with_index_mode Store.Force (fun () ->
      let d = doc () in
      (* constructors copy + renumber their content: the fresh tree must
         be indexed on its own, not through the source document's index.
         $d//b selects 4 nodes of which one pair nests, so the copies in
         <r> contain the inner b twice: 5 *)
      Alcotest.(check string) "count inside constructor" "5"
        (count_items d "count(<r>{$d//b}</r>//b)");
      Alcotest.(check string) "nested constructors" "2"
        (count_items d "count(<r><s><t/></s><t/></r>//t)"))

(* an assembled tree that was never renumbered as a whole violates the
   preorder invariant and must be refused, not mis-indexed *)
let test_unindexable_tree () =
  with_index_mode Store.Force (fun () ->
      let kid = Xqc.parse_document "<a><b/></a>" in
      let d2 = Xqc.parse_document "<x/>" in
      ignore d2;
      (* two roots numbered in separate renumber calls, glued without a
         fresh renumber: descending nids at the splice point *)
      let glued =
        Node.element "r" ~attrs:[]
          ~children:[ List.hd (Node.children kid) ]
      in
      match Store.descendants_by_name glued "b" with
      | None -> ()  (* refused: correct *)
      | Some l ->
          (* accepted is fine only if the answer is right *)
          Alcotest.(check int) "glued count" 1 (List.length l))

(* -------- QCheck: random trees, indexed = walked -------- *)

let tree_gen : Node.t QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "d" ] in
  let rec elem depth =
    name >>= fun nm ->
    (if depth = 0 then return []
     else list_size (int_bound 3) (elem (depth - 1)))
    >>= fun children ->
    list_size (int_bound 2) (name >>= fun an -> return (Node.attribute an "v"))
    >>= fun attrs ->
    return (Node.element nm ~attrs ~children)
  in
  elem 3 >>= fun root ->
  let d = Node.document [ root ] in
  Node.renumber d;
  return d

let prop_random_trees =
  QCheck.Test.make ~name:"indexed axes equal walked axes on random trees"
    ~count:200
    (QCheck.make tree_gen)
    (fun d ->
      with_index_mode Store.Force (fun () ->
          List.for_all
            (fun n ->
              List.for_all
                (fun name ->
                  let walked = walk_descendants n name in
                  match
                    ( Store.descendants_by_name n name,
                      Store.count_descendants_by_name n name )
                  with
                  | Some l, Some k ->
                      k = List.length walked && List.for_all2 ( == ) walked l
                  | _ -> false)
                [ "a"; "b"; "c"; "d"; "nosuch"; "*" ])
            (Node.descendant_or_self d)))

(* -------- document cache -------- *)

let test_doc_cache () =
  let parses = ref 0 in
  let resolver uri =
    incr parses;
    Xqc.parse_document ~uri {|<r><a/><a/></r>|}
  in
  let ctx = Xqc.context ~resolver () in
  let p = Xqc.prepare {|count(doc("u.xml")//a)|} in
  let hits0 = counter "doc_cache_hits" and parses0 = counter "doc_parses" in
  for _ = 1 to 5 do
    Alcotest.(check string) "cached doc result" "2"
      (Xqc.serialize (Xqc.run p ctx))
  done;
  Alcotest.(check int) "resolver ran once" 1 !parses;
  Alcotest.(check int) "one recorded parse" 1 (counter "doc_parses" - parses0);
  if counter "doc_cache_hits" - hits0 < 4 then
    Alcotest.fail "doc cache hits not recorded";
  (* the escape hatch really drops the cache *)
  Xqc.Dynamic_ctx.clear_doc_cache ctx;
  Alcotest.(check string) "after clear" "2" (Xqc.serialize (Xqc.run p ctx));
  Alcotest.(check int) "resolver ran again" 2 !parses

(* -------- prepared-plan cache -------- *)

let test_plan_cache () =
  Xqc.clear_plan_cache ();
  let q = "1 + 2" in
  let p1 = Xqc.prepare_cached q in
  let p2 = Xqc.prepare_cached q in
  if p1 != p2 then Alcotest.fail "same key not memoized";
  let p3 = Xqc.prepare_cached ~strategy:Xqc.No_algebra q in
  if p1 == p3 then Alcotest.fail "strategy not part of the key";
  let ctx = Xqc.context () in
  Alcotest.(check string) "cached plan runs" "3"
    (Xqc.serialize (Xqc.run p2 ctx));
  (* capacity bounds the cache and eviction is LRU *)
  Xqc.clear_plan_cache ();
  Xqc.set_plan_cache_capacity 2;
  let pa = Xqc.prepare_cached "1" in
  let _pb = Xqc.prepare_cached "2" in
  let _ = Xqc.prepare_cached "1" in  (* touch: "2" is now LRU *)
  let _pc = Xqc.prepare_cached "3" in  (* evicts "2" *)
  Alcotest.(check int) "capacity respected" 2 (Xqc.plan_cache_size ());
  if Xqc.prepare_cached "1" != pa then Alcotest.fail "recently used entry evicted";
  Xqc.set_plan_cache_capacity 128;
  Xqc.clear_plan_cache ()

let () =
  Alcotest.run "store"
    [
      ( "intervals",
        [
          Alcotest.test_case "extents and sizes" `Quick test_extents;
          Alcotest.test_case "interval = descendant test" `Quick
            test_interval_is_descendant_test;
        ] );
      ( "index",
        [
          Alcotest.test_case "index matches walk" `Quick test_index_matches_walk;
          Alcotest.test_case "attributes by name" `Quick test_attributes_by_name;
          QCheck_alcotest.to_alcotest prop_random_trees;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "renumber invalidates" `Quick
            test_renumber_invalidates;
          Alcotest.test_case "copy is independent" `Quick test_copy_is_independent;
          Alcotest.test_case "constructed trees" `Quick test_constructed_trees;
          Alcotest.test_case "unindexable tree refused" `Quick
            test_unindexable_tree;
        ] );
      ( "caches",
        [
          Alcotest.test_case "doc cache" `Quick test_doc_cache;
          Alcotest.test_case "plan cache" `Quick test_plan_cache;
        ] );
    ]
