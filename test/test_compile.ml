(* Algebraic compilation (Section 4): plan shapes for the Figure 2 FLWOR
   rules, typeswitch (Figure 3), and the structural helpers the optimizer
   relies on. *)

open Xqc
open Algebra

let compile s = (Compile.compile_string s).Compile.cmain
let check_bool = Alcotest.(check bool)
let names p = Pretty.operator_names p
let count n p = List.length (List.filter (String.equal n) (names p))

let test_for_clause () =
  (* (FOR): MapToItem{ret}(MapConcat{MapFromItem{[x:IN]}(src)}([])) *)
  match compile "for $x in $s return $x" with
  | MapToItem
      ( FieldAccess _,
        MapConcat (MapFromItem (TupleConstruct [ (_, Input) ], Var "s"), TupleConstruct [])
      ) ->
      ()
  | p -> Alcotest.failf "for shape:\n%s" (Pretty.to_string p)

let test_for_with_at () =
  match compile "for $x at $i in $s return $i" with
  | MapToItem (FieldAccess _, MapIndex (_, MapConcat _)) -> ()
  | p -> Alcotest.failf "at shape:\n%s" (Pretty.to_string p)

let test_for_with_astype () =
  match compile "for $x as xs:integer in $s return $x" with
  | MapToItem (_, MapConcat (MapFromItem (TupleConstruct [ (_, TypeAssert _) ], _), _)) -> ()
  | p -> Alcotest.failf "as-type shape:\n%s" (Pretty.to_string p)

let test_let_clause () =
  (* (LET): the tuple constructor is the dependent of MapConcat directly *)
  match compile "let $a := $s return $a" with
  | MapToItem (FieldAccess _, MapConcat (TupleConstruct [ (_, Var "s") ], TupleConstruct []))
    ->
      ()
  | p -> Alcotest.failf "let shape:\n%s" (Pretty.to_string p)

let test_where_clause () =
  match compile "for $x in $s where $x > 1 return $x" with
  | MapToItem (_, Select (Call ("fn:boolean", _), MapConcat _)) -> ()
  | p -> Alcotest.failf "where shape:\n%s" (Pretty.to_string p)

let test_order_by () =
  match compile "for $x in $s order by $x descending return $x" with
  | MapToItem (_, OrderBy ([ { sdir = Ast.Descending; _ } ], _)) -> ()
  | p -> Alcotest.failf "order shape:\n%s" (Pretty.to_string p)

let test_nested_flwor_starts_from_input () =
  (* a FLWOR in a dependent context starts from IN, not the unit table *)
  let p = compile "for $x in $s return (for $y in $t return ($x, $y))" in
  let rec has_inner_mapconcat_over_input = function
    | MapConcat (_, Input) -> true
    | other -> List.exists has_inner_mapconcat_over_input (children_of other)
  in
  check_bool "inner block chains from IN" true (has_inner_mapconcat_over_input p)

let test_typeswitch () =
  match compile "typeswitch ($v) case xs:integer return 1 default return 2" with
  | MapToItem
      ( Cond (TypeMatches (_, FieldAccess _), Scalar _, Scalar _),
        MapConcat (TupleConstruct [ _ ], TupleConstruct []) ) ->
      ()
  | p -> Alcotest.failf "typeswitch shape:\n%s" (Pretty.to_string p)

let test_quantifier () =
  match compile "some $x in $s satisfies $x = 1" with
  | MapSome (_, MapConcat (MapFromItem _, TupleConstruct [])) -> ()
  | p -> Alcotest.failf "quantifier shape:\n%s" (Pretty.to_string p)

let test_doc_becomes_parse () =
  check_bool "fn:doc compiles to Parse" true (count "Parse" (compile "doc(\"x.xml\")") = 1)

let test_functions_compile () =
  let q = Compile.compile_string "declare function local:f($x) { $x + 1 }; local:f(2)" in
  (match q.Compile.cfunctions with
  | [ f ] ->
      check_bool "param is a Var leaf" true (count "Var" f.Compile.fn_body = 1);
      check_bool "body adds" true (count "Call" f.Compile.fn_body >= 1)
  | _ -> Alcotest.fail "one function");
  match q.Compile.cmain with
  | Call ("local:f", [ Scalar _ ]) -> ()
  | p -> Alcotest.failf "main: %s" (Pretty.to_string p)

let test_globals_compile () =
  let q = Compile.compile_string "declare variable $g := 1 + 1; $g + 1" in
  check_bool "one global" true (List.length q.Compile.cglobals = 1);
  match q.Compile.cmain with
  | Call ("op:add", [ Var "g"; Scalar _ ]) -> ()
  | p -> Alcotest.failf "main: %s" (Pretty.to_string p)

(* ---------------- structural helpers ---------------- *)

let test_output_fields () =
  Alcotest.(check (list string)) "tuple construct" [ "a"; "b" ]
    (output_fields (TupleConstruct [ ("a", Empty); ("b", Empty) ]));
  Alcotest.(check (list string)) "map concat appends" [ "a"; "b" ]
    (output_fields
       (MapConcat (TupleConstruct [ ("b", Empty) ], TupleConstruct [ ("a", Empty) ])));
  Alcotest.(check (list string)) "louterjoin prepends flag" [ "n"; "a"; "b" ]
    (output_fields
       (LOuterJoin
          ( "n",
            Pred Empty,
            TupleConstruct [ ("a", Empty) ],
            TupleConstruct [ ("b", Empty) ] )));
  Alcotest.(check (list string)) "groupby appends agg" [ "a"; "g" ]
    (output_fields
       (GroupBy
          ( { g_agg = "g"; g_indices = []; g_nulls = []; g_post = Input; g_pre = Input },
            TupleConstruct [ ("a", Empty) ] )))

let test_uses_input () =
  check_bool "field access" true (uses_input (FieldAccess "x"));
  check_bool "bare input" true (uses_input Input);
  check_bool "constant" false (uses_input (Scalar (Atomic.Integer 1)));
  check_bool "rebinding hides dependent" false
    (uses_input (Select (FieldAccess "x", TupleConstruct [])));
  check_bool "independent input still traversed" true
    (uses_input (Select (Scalar (Atomic.Boolean true), Input)))

let test_uses_bare_input () =
  check_bool "bare" true (uses_bare_input Input);
  check_bool "field access is not bare" false (uses_bare_input (FieldAccess "x"));
  check_bool "rebound dep hidden" false
    (uses_bare_input (MapToItem (Input, TupleConstruct [])))

let test_input_fields () =
  Alcotest.(check (list string)) "collects field reads" [ "x"; "y" ]
    (List.sort_uniq compare
       (input_fields (Call ("f", [ FieldAccess "x"; FieldAccess "y"; FieldAccess "x" ]))));
  Alcotest.(check (list string)) "dependent positions skipped" [ "z" ]
    (input_fields (Select (FieldAccess "hidden", MapConcat (FieldAccess "hidden2", Join (Pred Empty, Input, FieldAccess "z")))))

let () =
  Alcotest.run "compile"
    [
      ( "flwor rules",
        [
          Alcotest.test_case "for" `Quick test_for_clause;
          Alcotest.test_case "for at" `Quick test_for_with_at;
          Alcotest.test_case "for as-type" `Quick test_for_with_astype;
          Alcotest.test_case "let" `Quick test_let_clause;
          Alcotest.test_case "where" `Quick test_where_clause;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "nested from IN" `Quick test_nested_flwor_starts_from_input;
        ] );
      ( "other rules",
        [
          Alcotest.test_case "typeswitch" `Quick test_typeswitch;
          Alcotest.test_case "quantifier" `Quick test_quantifier;
          Alcotest.test_case "doc -> Parse" `Quick test_doc_becomes_parse;
          Alcotest.test_case "functions" `Quick test_functions_compile;
          Alcotest.test_case "globals" `Quick test_globals_compile;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "output_fields" `Quick test_output_fields;
          Alcotest.test_case "uses_input" `Quick test_uses_input;
          Alcotest.test_case "uses_bare_input" `Quick test_uses_bare_input;
          Alcotest.test_case "input_fields" `Quick test_input_fields;
        ] );
    ]
