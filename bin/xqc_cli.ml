(* xqc — command-line XQuery runner.

     xqc run 'count(doc("f.xml")//item)' --doc f.xml
     xqc run -q query.xq --doc auction.xml --var auction=auction.xml
     xqc explain 'for $x in (1,2) return $x + 1' --strategy optim
     xqc gen xmark --bytes 1000000 -o auction.xml
     xqc gen dblp --bytes 250000 -o dblp.xml

   Documents named with --doc are available to fn:doc under both their
   path and basename; --var NAME=FILE binds $NAME to the document node. *)

open Cmdliner

let strategy_conv =
  let parse = function
    | "no-algebra" -> Ok Xqc.No_algebra
    | "saxon-like" | "indexed" -> Ok Xqc.Saxon_like
    | "no-optim" -> Ok Xqc.Algebra_unoptimized
    | "nl" | "optim-nl" -> Ok Xqc.Optimized_nl
    | "optim" | "full" -> Ok Xqc.Optimized
    | other -> Error (`Msg (Printf.sprintf "unknown strategy %S" other))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Xqc.strategy_name s))

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Xqc.Optimized
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Engine configuration: no-algebra, saxon-like, no-optim, nl, or \
           optim (default).")

let project_arg =
  Arg.(
    value & flag
    & info [ "project" ]
        ~doc:"Prune document variables to statically inferred projection paths before evaluation.")

let indent_arg =
  Arg.(value & flag & info [ "indent" ] ~doc:"Indent the serialized output.")

let query_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Query text.")

let query_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "q"; "query-file" ] ~docv:"FILE" ~doc:"Read the query from a file.")

let docs_arg =
  Arg.(
    value & opt_all file []
    & info [ "doc" ] ~docv:"FILE" ~doc:"Pre-load an XML document for fn:doc.")

let vars_arg =
  Arg.(
    value & opt_all string []
    & info [ "var" ] ~docv:"NAME=FILE"
        ~doc:"Bind variable \\$NAME to the document node of FILE.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_query query query_file =
  match (query, query_file) with
  | Some q, None -> Ok q
  | None, Some f -> Ok (read_file f)
  | Some _, Some _ -> Error "give either a query argument or --query-file, not both"
  | None, None -> Error "no query given (positional argument or --query-file)"

let make_context docs vars =
  let ctx = Xqc.context ~resolver:(fun uri -> Xqc.parse_document ~uri (read_file uri)) () in
  List.iter
    (fun path ->
      let doc = Xqc.parse_document ~uri:path (read_file path) in
      Xqc.bind_document ctx path doc;
      Xqc.bind_document ctx (Filename.basename path) doc)
    docs;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          let doc = Xqc.parse_document ~uri:path (read_file path) in
          Xqc.bind_variable ctx name [ Xqc.Item.Node doc ]
      | None -> failwith (Printf.sprintf "--var expects NAME=FILE, got %S" spec))
    vars;
  ctx

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect pipeline phase timings, per-operator runtime statistics \
           and the rewrite-rule trace, and print the report to stderr after \
           the result.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the collected statistics as JSON to FILE (implies \
           \\$(b,--stats) collection; use - for stderr).")

let write_stats_json prepared path =
  match (Xqc.stats_json prepared, path) with
  | Some json, "-" -> prerr_endline json
  | Some json, path ->
      let oc = open_out_bin path in
      output_string oc json;
      output_char oc '\n';
      close_out oc
  | None, _ -> ()

let run_cmd =
  let action strategy project indent stats stats_json query query_file docs vars =
    match load_query query query_file with
    | Error m ->
        prerr_endline m;
        1
    | Ok q -> (
        try
          let ctx = make_context docs vars in
          let stats = stats || stats_json <> None in
          let prepared = Xqc.prepare ~strategy ~project ~stats q in
          let result = Xqc.run prepared ctx in
          print_endline
            (if indent then Xqc.Serializer.sequence_to_string_indented result
             else Xqc.serialize result);
          if stats then prerr_string (Xqc.explain_analyze prepared);
          Option.iter (write_stats_json prepared) stats_json;
          0
        with
        | Xqc.Error m ->
            prerr_endline ("error: " ^ m);
            1
        | Failure m | Sys_error m ->
            prerr_endline ("error: " ^ m);
            1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate a query and print the serialized result.")
    Term.(
      const action $ strategy_arg $ project_arg $ indent_arg $ stats_arg
      $ stats_json_arg $ query_arg $ query_file_arg $ docs_arg $ vars_arg)

let explain_cmd =
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Actually run the query (documents via \\$(b,--doc)/\\$(b,--var)) \
             and print phase timings, per-operator runtime statistics, and \
             the rewrite-rule trace instead of the static report.")
  in
  let action strategy project analyze stats_json query query_file docs vars =
    match load_query query query_file with
    | Error m ->
        prerr_endline m;
        1
    | Ok q -> (
        try
          if analyze then begin
            let ctx = make_context docs vars in
            let prepared = Xqc.prepare ~strategy ~project ~stats:true q in
            ignore (Xqc.run prepared ctx);
            print_string (Xqc.explain_analyze prepared);
            Option.iter (write_stats_json prepared) stats_json
          end
          else print_string (Xqc.explain ~strategy q);
          0
        with
        | Xqc.Error m ->
            prerr_endline ("error: " ^ m);
            1
        | Failure m | Sys_error m ->
            prerr_endline ("error: " ^ m);
            1)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the XQuery Core form and the logical plan before and after \
          optimization, in the paper's notation.  With \\$(b,--analyze), run \
          the query and print the EXPLAIN ANALYZE report (annotated plan \
          with per-operator calls, time and cardinality).")
    Term.(
      const action $ strategy_arg $ project_arg $ analyze_arg $ stats_json_arg
      $ query_arg $ query_file_arg $ docs_arg $ vars_arg)

let gen_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("xmark", `Xmark); ("dblp", `Dblp) ])) None
      & info [] ~docv:"KIND" ~doc:"Document kind: xmark or dblp.")
  in
  let bytes_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "bytes" ] ~docv:"N" ~doc:"Approximate document size in bytes.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let action kind bytes seed out =
    let s =
      match kind with
      | `Xmark -> Xqc_workload.Xmark.generate_string ~seed ~target_bytes:bytes ()
      | `Dblp -> Xqc_workload.Clio.generate_string ~seed ~target_bytes:bytes ()
    in
    (match out with
    | None -> print_string s
    | Some path ->
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc;
        Printf.eprintf "wrote %d bytes to %s\n" (String.length s) path);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark document (XMark or DBLP-style).")
    Term.(const action $ kind_arg $ bytes_arg $ seed_arg $ out_arg)

let queries_cmd =
  let action () =
    print_endline "XMark queries:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Xqc_workload.Xmark_queries.all;
    print_endline "Clio queries:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Xqc_workload.Clio.all;
    0
  in
  Cmd.v
    (Cmd.info "queries" ~doc:"List the built-in benchmark queries.")
    Term.(const action $ const ())

let show_query_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Query name (Q1..Q20, N2..N4).")
  in
  let action name =
    match
      List.assoc_opt name (Xqc_workload.Xmark_queries.all @ Xqc_workload.Clio.all)
    with
    | Some q ->
        print_endline q;
        0
    | None ->
        Printf.eprintf "unknown query %s\n" name;
        1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Print the text of a built-in benchmark query.")
    Term.(const action $ name_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "xqc" ~version:"0.1.0"
       ~doc:"An algebraic XQuery compiler (ICDE 2006 reproduction).")
    [ run_cmd; explain_cmd; gen_cmd; queries_cmd; show_query_cmd ]

let () = Stdlib.exit (Cmd.eval' main_cmd)
