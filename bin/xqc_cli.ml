(* xqc — command-line XQuery runner.

     xqc run 'count(doc("f.xml")//item)' --doc f.xml
     xqc run -q query.xq --doc auction.xml --var auction=auction.xml
     xqc explain 'for $x in (1,2) return $x + 1' --strategy optim
     xqc gen xmark --bytes 1000000 -o auction.xml
     xqc gen dblp --bytes 250000 -o dblp.xml

   Documents named with --doc are available to fn:doc under both their
   path and basename; --var NAME=FILE binds $NAME to the document node. *)

open Cmdliner

let strategy_conv =
  let parse = function
    | "no-algebra" -> Ok Xqc.No_algebra
    | "saxon-like" | "indexed" -> Ok Xqc.Saxon_like
    | "no-optim" -> Ok Xqc.Algebra_unoptimized
    | "nl" | "optim-nl" -> Ok Xqc.Optimized_nl
    | "optim" | "full" -> Ok Xqc.Optimized
    | other -> Error (`Msg (Printf.sprintf "unknown strategy %S" other))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Xqc.strategy_name s))

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Xqc.Optimized
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Engine configuration: no-algebra, saxon-like, no-optim, nl, or \
           optim (default).")

let project_arg =
  Arg.(
    value & flag
    & info [ "project" ]
        ~doc:"Prune document variables to statically inferred projection paths before evaluation.")

let no_fuse_arg =
  Arg.(
    value & flag
    & info [ "no-fuse" ]
        ~doc:
          "Disable the fused execution tier: run every pipeline through the \
           closure interpreter (equivalent to XQC_FUSE=off).")

let par_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "par" ] ~docv:"N"
        ~doc:
          "Intra-query parallelism: total domain budget for partitioned \
           scans, joins and aggregates (overrides XQC_PAR; 1 disables; \
           default: XQC_PAR, else the hardware core count).")

let apply_par par = Option.iter (fun n -> Xqc.Domain_pool.set_budget (Some n)) par

let backend_conv =
  let parse s =
    match Xqc.Rel_algebra.backend_of_string s with
    | Some b -> Ok b
    | None ->
        Error (`Msg (Printf.sprintf "unknown backend %S (native, rel or auto)" s))
  in
  Arg.conv
    (parse, fun ppf b -> Format.pp_print_string ppf (Xqc.Rel_algebra.backend_name b))

let backend_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"MODE"
        ~doc:
          "Relational offload mode: native (never offload), rel (offload \
           every lowerable subplan to the shredded-table engine), or auto \
           (cost-based per-subplan choice).  Overrides XQC_BACKEND; default \
           native.")

let apply_backend b = Option.iter (fun b -> Xqc.Rel_algebra.backend := b) b

let collections_arg =
  Arg.(
    value & opt_all string []
    & info [ "collection" ] ~docv:"NAME=F1,F2,..."
        ~doc:
          "Bind fn:collection(\"NAME\") to the document nodes of the listed \
           files, in order.  Repeatable.")

let indent_arg =
  Arg.(value & flag & info [ "indent" ] ~doc:"Indent the serialized output.")

let query_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Query text.")

let query_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "q"; "query-file" ] ~docv:"FILE" ~doc:"Read the query from a file.")

let docs_arg =
  Arg.(
    value & opt_all file []
    & info [ "doc" ] ~docv:"FILE" ~doc:"Pre-load an XML document for fn:doc.")

let vars_arg =
  Arg.(
    value & opt_all string []
    & info [ "var" ] ~docv:"NAME=FILE"
        ~doc:"Bind variable \\$NAME to the document node of FILE.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_query query query_file =
  match (query, query_file) with
  | Some q, None -> Ok q
  | None, Some f -> Ok (read_file f)
  | Some _, Some _ -> Error "give either a query argument or --query-file, not both"
  | None, None -> Error "no query given (positional argument or --query-file)"

let make_context ?(collections = []) docs vars =
  let ctx = Xqc.context ~resolver:(fun uri -> Xqc.parse_document ~uri (read_file uri)) () in
  List.iter
    (fun path ->
      let doc = Xqc.parse_document ~uri:path (read_file path) in
      Xqc.bind_document ctx path doc;
      Xqc.bind_document ctx (Filename.basename path) doc)
    docs;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          let doc = Xqc.parse_document ~uri:path (read_file path) in
          Xqc.bind_variable ctx name [ Xqc.Item.Node doc ]
      | None -> failwith (Printf.sprintf "--var expects NAME=FILE, got %S" spec))
    vars;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let files =
            String.split_on_char ','
              (String.sub spec (i + 1) (String.length spec - i - 1))
            |> List.filter (fun f -> f <> "")
          in
          let nodes =
            List.map (fun f -> Xqc.parse_document ~uri:f (read_file f)) files
          in
          Xqc.Dynamic_ctx.bind_collection ctx name nodes
      | None ->
          failwith (Printf.sprintf "--collection expects NAME=F1,F2,..., got %S" spec))
    collections;
  ctx

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect pipeline phase timings, per-operator runtime statistics \
           and the rewrite-rule trace, and print the report to stderr after \
           the result.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the collected statistics as JSON to FILE (implies \
           \\$(b,--stats) collection; use - for stderr).")

let write_stats_json prepared path =
  match (Xqc.stats_json prepared, path) with
  | Some json, "-" -> prerr_endline json
  | Some json, path ->
      let oc = open_out_bin path in
      output_string oc json;
      output_char oc '\n';
      close_out oc
  | None, _ -> ()

let run_cmd =
  let action strategy project no_fuse par backend indent stats stats_json query
      query_file docs vars collections =
    match load_query query query_file with
    | Error m ->
        prerr_endline m;
        1
    | Ok q -> (
        try
          if no_fuse then Xqc.Codegen.mode := Xqc.Codegen.Off;
          apply_par par;
          apply_backend backend;
          let ctx = make_context ~collections docs vars in
          let stats = stats || stats_json <> None in
          let prepared = Xqc.prepare ~strategy ~project ~fuse:(not no_fuse) ~stats q in
          let result = Xqc.run prepared ctx in
          print_endline
            (if indent then Xqc.Serializer.sequence_to_string_indented result
             else Xqc.serialize result);
          if stats then prerr_string (Xqc.explain_analyze prepared);
          Option.iter (write_stats_json prepared) stats_json;
          0
        with
        | Xqc.Error m ->
            prerr_endline ("error: " ^ m);
            1
        | Failure m | Sys_error m ->
            prerr_endline ("error: " ^ m);
            1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate a query and print the serialized result.")
    Term.(
      const action $ strategy_arg $ project_arg $ no_fuse_arg $ par_arg
      $ backend_arg $ indent_arg $ stats_arg $ stats_json_arg $ query_arg
      $ query_file_arg $ docs_arg $ vars_arg $ collections_arg)

let explain_cmd =
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Actually run the query (documents via \\$(b,--doc)/\\$(b,--var)) \
             and print phase timings, per-operator runtime statistics, and \
             the rewrite-rule trace instead of the static report.")
  in
  let action strategy project no_fuse backend analyze stats_json query
      query_file docs vars collections =
    match load_query query query_file with
    | Error m ->
        prerr_endline m;
        1
    | Ok q -> (
        try
          if no_fuse then Xqc.Codegen.mode := Xqc.Codegen.Off;
          apply_backend backend;
          if analyze then begin
            let ctx = make_context ~collections docs vars in
            let prepared =
              Xqc.prepare ~strategy ~project ~fuse:(not no_fuse) ~stats:true q
            in
            ignore (Xqc.run prepared ctx);
            print_string (Xqc.explain_analyze prepared);
            Option.iter (write_stats_json prepared) stats_json
          end
          else print_string (Xqc.explain ~strategy q);
          0
        with
        | Xqc.Error m ->
            prerr_endline ("error: " ^ m);
            1
        | Failure m | Sys_error m ->
            prerr_endline ("error: " ^ m);
            1)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the XQuery Core form and the logical plan before and after \
          optimization, in the paper's notation.  With \\$(b,--analyze), run \
          the query and print the EXPLAIN ANALYZE report (annotated plan \
          with per-operator calls, time and cardinality).")
    Term.(
      const action $ strategy_arg $ project_arg $ no_fuse_arg $ backend_arg
      $ analyze_arg $ stats_json_arg $ query_arg $ query_file_arg $ docs_arg
      $ vars_arg $ collections_arg)

let gen_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("xmark", `Xmark); ("dblp", `Dblp) ])) None
      & info [] ~docv:"KIND" ~doc:"Document kind: xmark or dblp.")
  in
  let bytes_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "bytes" ] ~docv:"N" ~doc:"Approximate document size in bytes.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let action kind bytes seed out =
    let s =
      match kind with
      | `Xmark -> Xqc_workload.Xmark.generate_string ~seed ~target_bytes:bytes ()
      | `Dblp -> Xqc_workload.Clio.generate_string ~seed ~target_bytes:bytes ()
    in
    (match out with
    | None -> print_string s
    | Some path ->
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc;
        Printf.eprintf "wrote %d bytes to %s\n" (String.length s) path);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark document (XMark or DBLP-style).")
    Term.(const action $ kind_arg $ bytes_arg $ seed_arg $ out_arg)

let queries_cmd =
  let action () =
    print_endline "XMark queries:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Xqc_workload.Xmark_queries.all;
    print_endline "Clio queries:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Xqc_workload.Clio.all;
    0
  in
  Cmd.v
    (Cmd.info "queries" ~doc:"List the built-in benchmark queries.")
    Term.(const action $ const ())

let show_query_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Query name (Q1..Q20, N2..N4).")
  in
  let action name =
    match
      List.assoc_opt name (Xqc_workload.Xmark_queries.all @ Xqc_workload.Clio.all)
    with
    | Some q ->
        print_endline q;
        0
    | None ->
        Printf.eprintf "unknown query %s\n" name;
        1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Print the text of a built-in benchmark query.")
    Term.(const action $ name_arg)

(* ------------------------------------------------------------------ *)
(* Query service                                                       *)
(* ------------------------------------------------------------------ *)

let unix_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with \\$(b,--port)).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on / connect to.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains evaluating queries in parallel.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission-control bound: requests beyond this many queued get an overloaded error.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline (requests may set their own).")
  in
  let preload_arg =
    Arg.(
      value & opt_all string []
      & info [ "preload" ] ~docv:"NAME=FILE"
          ~doc:
            "Parse and index FILE at startup; bind it to \\$NAME and make \
             it available to fn:doc under NAME, its path and basename.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log connections and requests to stderr.")
  in
  let trace_sample_arg =
    Arg.(
      value & opt float 1.0
      & info [ "trace-sample" ] ~docv:"P"
          ~doc:
            "Fraction of requests to trace (0.0 to 1.0; requests with \
             \"trace\":true are always traced).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 100.0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Requests slower than this land in the slow-query ring.")
  in
  let slow_log_arg =
    Arg.(
      value & opt int 16
      & info [ "slow-log" ] ~docv:"N"
          ~doc:"Slow-query ring capacity (the N worst requests are kept).")
  in
  let no_slow_analyze_arg =
    Arg.(
      value & flag
      & info [ "no-slow-analyze" ]
          ~doc:"Skip the EXPLAIN ANALYZE re-run for slow-ring entries.")
  in
  let gauge_interval_arg =
    Arg.(
      value & opt int 100
      & info [ "gauge-interval-ms" ] ~docv:"MS"
          ~doc:"Queue-depth/inflight gauge sampling period.")
  in
  let action unix_socket host port workers queue_depth timeout_ms preload
      strategy no_fuse par backend verbose trace_sample slow_ms slow_log
      no_slow_analyze gauge_interval_ms =
    try
      apply_par par;
      apply_backend backend;
      let preload =
        List.map
          (fun spec ->
            match String.index_opt spec '=' with
            | Some i ->
                ( String.sub spec 0 i,
                  String.sub spec (i + 1) (String.length spec - i - 1) )
            | None ->
                failwith (Printf.sprintf "--preload expects NAME=FILE, got %S" spec))
          preload
      in
      let cfg =
        {
          Xqc_server.Server.unix_socket;
          tcp = Option.map (fun p -> (host, p)) port;
          workers;
          queue_depth;
          default_timeout_ms = timeout_ms;
          preload;
          strategy;
          fuse = not no_fuse;
          verbose;
          trace_sample;
          slow_ms;
          slow_capacity = slow_log;
          slow_analyze = not no_slow_analyze;
          gauge_interval_ms;
        }
      in
      Xqc_server.Server.serve cfg;
      0
    with
    | Invalid_argument m | Failure m | Sys_error m ->
        prerr_endline ("error: " ^ m);
        1
    | Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message e);
        1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the query service: preload and index documents once, then \
          answer newline-delimited JSON requests (query, prepare/execute, \
          stats, metrics, trace, shutdown) over a Unix and/or TCP socket \
          with a pool of worker domains.")
    Term.(
      const action $ unix_socket_arg $ host_arg $ port_arg $ workers_arg
      $ queue_arg $ timeout_arg $ preload_arg $ strategy_arg $ no_fuse_arg
      $ par_arg $ backend_arg $ verbose_arg $ trace_sample_arg $ slow_ms_arg
      $ slow_log_arg $ no_slow_analyze_arg
      $ gauge_interval_arg)

(* JSON accessors for rendering server responses client-side. *)
module J = struct
  let field name = function
    | Xqc.Obs.Obj fields -> List.assoc_opt name fields
    | _ -> None

  let str ?(default = "") name json =
    match field name json with Some (Xqc.Obs.Str s) -> s | _ -> default

  let int ?(default = 0) name json =
    match field name json with Some (Xqc.Obs.Int n) -> n | _ -> default

  let num ?(default = 0.0) name json =
    match field name json with
    | Some (Xqc.Obs.Float f) -> f
    | Some (Xqc.Obs.Int n) -> float_of_int n
    | _ -> default

  let arr name json =
    match field name json with Some (Xqc.Obs.Arr l) -> l | _ -> []
end

(* Indented span timeline from a trace JSON object (as served by the
   "trace" verb or embedded in a traced response). *)
let render_trace_json (trace : Xqc.Obs.json) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "trace %d  op=%s  outcome=%s  total=%.3fms\n"
    (J.int "trace_id" trace) (J.str "op" trace)
    (J.str ~default:"?" "outcome" trace)
    (J.num "total_ms" trace);
  (match J.str "source" trace with
  | "" -> ()
  | src -> Printf.bprintf b "  source: %s\n" src);
  let spans = J.arr "spans" trace in
  let parent_of = List.map (fun sp -> (J.int "id" sp, J.int "parent" sp)) spans in
  let rec depth id =
    match List.assoc_opt id parent_of with
    | Some 0 | None -> 0
    | Some p -> 1 + depth p
  in
  List.iter
    (fun sp ->
      let attrs =
        match J.field "attrs" sp with
        | Some (Xqc.Obs.Obj kvs) ->
            " "
            ^ String.concat " "
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=%s" k
                       (match v with Xqc.Obs.Str s -> s | j -> Xqc.Obs.json_to_string j))
                   kvs)
        | _ -> ""
      in
      Printf.bprintf b "  %9.3fms %s%s %.3fms%s\n" (J.num "start_ms" sp)
        (String.make (2 * depth (J.int "id" sp)) ' ')
        (J.str "name" sp) (J.num "dur_ms" sp) attrs)
    spans;
  Buffer.contents b

let render_stats (stats : Xqc.Obs.json) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "uptime              %.1fs\n" (J.num "uptime_s" stats);
  Printf.bprintf b "workers             %d\n" (J.int "workers" stats);
  Printf.bprintf b "queue               %d / %d\n" (J.int "queue_depth" stats)
    (J.int "queue_capacity" stats);
  Printf.bprintf b "inflight            %d\n" (J.int "inflight" stats);
  Printf.bprintf b "admission rejected  %d\n" (J.int "admission_rejected" stats);
  Printf.bprintf b "prepared statements %d\n" (J.int "prepared_statements" stats);
  Printf.bprintf b "plan cache          %d\n" (J.int "plan_cache_size" stats);
  Printf.bprintf b "stored traces       %d\n" (J.int "traces" stats);
  Printf.bprintf b "snapshot versions   %d\n" (J.int "snapshot_versions_live" stats);
  (match J.field "latency_ms" stats with
  | Some lat ->
      Printf.bprintf b
        "latency             n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n"
        (J.int "count" lat) (J.num "mean" lat) (J.num "p50" lat)
        (J.num "p95" lat) (J.num "p99" lat)
  | None -> ());
  (match J.field "counters" stats with
  | Some (Xqc.Obs.Obj kvs) ->
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (k, v) ->
          match v with
          | Xqc.Obs.Int n -> Printf.bprintf b "  %-28s %d\n" k n
          | _ -> ())
        kvs
  | _ -> ());
  Buffer.contents b

let client_cmd =
  let module C = Xqc_server.Client in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N" ~doc:"Send the query/execute N times.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let prepare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prepare" ] ~docv:"NAME"
          ~doc:"Prepare the query argument as statement NAME instead of running it.")
  in
  let execute_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "execute" ] ~docv:"NAME" ~doc:"Execute prepared statement NAME.")
  in
  let update_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "update" ] ~docv:"DOC"
          ~doc:
            "Run the query argument as an XQuery Update script (insert, \
             delete, replace, rename) against the server's preloaded \
             document DOC.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "server-stats" ] ~doc:"Print the server's stats JSON.")
  in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to shut down (after any query).")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Force the request to be traced and print its span timeline \
             after the result.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FORMAT"
          ~doc:"Print the server's metrics: \\$(b,json) or \\$(b,prometheus).")
  in
  let args_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ARG"
          ~doc:
            "A query to evaluate, \\$(b,stats) for a human-readable stats \
             report, \\$(b,trace) to list recent traces, or \\$(b,trace ID) \
             to fetch one stored trace.")
  in
  let action unix_socket host port repeat timeout_ms prepare execute update
      server_stats shutdown trace metrics args =
    try
      let client =
        match (unix_socket, port) with
        | Some path, _ -> C.connect_unix path
        | None, Some p -> C.connect_tcp host p
        | None, None -> failwith "give --unix PATH or --port PORT"
      in
      Fun.protect ~finally:(fun () -> C.close client) @@ fun () ->
      let failed = ref false in
      (* A traced ok-response prints the result, then the timeline. *)
      let show_json = function
        | Ok json ->
            (match J.field "result" json with
            | Some (Xqc.Obs.Str s) -> print_endline s
            | _ -> ());
            if trace then (
              match J.field "trace" json with
              | Some tr -> print_string (render_trace_json tr)
              | None -> ())
        | Error (code, m) ->
            Printf.eprintf "error (%s): %s\n" code m;
            failed := true
      in
      let query =
        match args with
        | [] -> None
        | [ "stats" ] ->
            print_string (render_stats (C.stats client));
            None
        | [ "trace" ] ->
            List.iter
              (fun s ->
                Printf.printf "trace %-8d %-8s %-10s %8.3fms  %d spans  %.1fs ago\n"
                  (J.int "trace_id" s) (J.str "op" s) (J.str "outcome" s)
                  (J.num "total_ms" s) (J.int "spans" s) (J.num "age_s" s))
              (C.recent_traces client);
            None
        | [ "trace"; id ] -> (
            match int_of_string_opt id with
            | None -> failwith (Printf.sprintf "trace id must be an integer, got %S" id)
            | Some tid -> (
                match C.fetch_trace client tid with
                | Ok tr ->
                    print_string (render_trace_json tr);
                    None
                | Error (code, m) ->
                    Printf.eprintf "error (%s): %s\n" code m;
                    failed := true;
                    None))
        | [ q ] -> Some q
        | _ -> failwith "too many positional arguments"
      in
      (match (prepare, query) with
      | Some name, Some q -> (
          match C.prepare client ~name q with
          | Ok () -> Printf.printf "prepared %s\n" name
          | Error (code, m) ->
              Printf.eprintf "error (%s): %s\n" code m;
              failed := true)
      | Some _, None -> failwith "--prepare needs a query argument"
      | None, _ -> ());
      (match (update, query) with
      | Some doc, Some q ->
          for _ = 1 to repeat do
            match C.update_json ?timeout_ms ~trace client ~doc q with
            | Ok json ->
                Printf.printf "applied %d; version %d (%s)\n"
                  (J.int "applied" json) (J.int "version" json)
                  (match J.field "in_place" json with
                  | Some (Xqc.Obs.Bool true) -> "in place"
                  | _ -> "new snapshot");
                if trace then (
                  match J.field "trace" json with
                  | Some tr -> print_string (render_trace_json tr)
                  | None -> ())
            | Error (code, m) ->
                Printf.eprintf "error (%s): %s\n" code m;
                failed := true
          done
      | Some _, None -> failwith "--update needs an update-script argument"
      | None, _ -> ());
      (match execute with
      | Some name ->
          for _ = 1 to repeat do
            show_json (C.execute_json ?timeout_ms ~trace client name)
          done
      | None -> (
          match (prepare, update, query) with
          | None, None, Some q ->
              for _ = 1 to repeat do
                show_json (C.query_json ?timeout_ms ~trace client q)
              done
          | _ -> ()));
      if server_stats then
        print_endline (Xqc.Obs.json_to_string (C.stats client));
      (match metrics with
      | Some "json" -> print_endline (Xqc.Obs.json_to_string (C.metrics client))
      | Some ("prometheus" | "prom" | "text") ->
          print_string (C.metrics_prometheus client)
      | Some other -> failwith (Printf.sprintf "unknown metrics format %S" other)
      | None -> ());
      if shutdown then C.shutdown client;
      if !failed then 1 else 0
    with
    | C.Client_error m | Failure m | Sys_error m ->
        prerr_endline ("error: " ^ m);
        1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running query service: evaluate a query \
          (optionally repeated, optionally traced), run an update script \
          against a preloaded document, prepare/execute named statements, \
          fetch server statistics, metrics or stored traces, or request \
          shutdown.")
    Term.(
      const action $ unix_socket_arg $ host_arg $ port_arg $ repeat_arg
      $ timeout_arg $ prepare_arg $ execute_arg $ update_arg $ stats_flag
      $ shutdown_flag $ trace_flag $ metrics_arg $ args_arg)

(* Live terminal dashboard over the metrics verb: QPS and latency
   percentiles, queue depth, per-worker utilization, the slow-query
   ring.  QPS is the request-counter delta between frames (first frame:
   cumulative over uptime). *)
let top_cmd =
  let module C = Xqc_server.Client in
  let interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh period.")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Render N frames then exit (0 = until interrupted).")
  in
  let render_frame ~clear prev_requests prev_t metrics =
    let now = Unix.gettimeofday () in
    let requests =
      match J.field "counters" metrics with
      | Some c -> J.int "server_requests" c
      | None -> 0
    in
    let qps =
      match prev_requests with
      | Some prev when now > prev_t ->
          float_of_int (requests - prev) /. (now -. prev_t)
      | _ ->
          let up = J.num "uptime_s" metrics in
          if up > 0.0 then float_of_int requests /. up else 0.0
    in
    let b = Buffer.create 512 in
    if clear then Buffer.add_string b "\027[H\027[2J";
    Printf.bprintf b "xqc top — up %.0fs  %d workers  %.1f req/s  inflight %d  queue %d/%d  rejected %d\n"
      (J.num "uptime_s" metrics) (J.int "workers" metrics) qps
      (J.int "inflight" metrics) (J.int "queue_depth" metrics)
      (J.int "queue_capacity" metrics) (J.int "admission_rejected" metrics);
    let hist label name =
      match J.field name metrics with
      | Some h ->
          Printf.bprintf b "%-11s n=%-8d mean=%8.3fms  p50=%8.3fms  p95=%8.3fms  p99=%8.3fms\n"
            label (J.int "count" h) (J.num "mean" h) (J.num "p50" h)
            (J.num "p95" h) (J.num "p99" h)
      | None -> ()
    in
    hist "latency" "latency_ms";
    hist "queue wait" "queue_wait_ms";
    hist "eval" "eval_ms";
    hist "serialize" "serialize_ms";
    Buffer.add_string b "workers:\n";
    List.iter
      (fun w ->
        let util = J.num "utilization" w in
        let bar = int_of_float (util *. 20.0) in
        Printf.bprintf b "  %2d [%-20s] %5.1f%%  %d jobs\n" (J.int "worker" w)
          (String.make (min 20 (max 0 bar)) '#')
          (util *. 100.0) (J.int "jobs" w))
      (J.arr "workers_detail" metrics);
    (match J.field "slow_queries" metrics with
    | Some slow ->
        let entries = J.arr "entries" slow in
        if entries <> [] then begin
          Printf.bprintf b "slow queries (>= %.1fms, worst first):\n"
            (J.num "threshold_ms" slow);
          List.iteri
            (fun i e ->
              if i < 8 then
                let src = J.str "source" e in
                let src =
                  if String.length src > 48 then String.sub src 0 45 ^ "..."
                  else src
                in
                Printf.bprintf b "  %8.2fms %-8s %-10s %s\n" (J.num "ms" e)
                  (J.str "op" e) (J.str "outcome" e) src)
            entries
        end
    | None -> ());
    print_string (Buffer.contents b);
    flush stdout;
    (Some requests, now)
  in
  let action unix_socket host port interval_ms frames =
    try
      let client =
        match (unix_socket, port) with
        | Some path, _ -> C.connect_unix path
        | None, Some p -> C.connect_tcp host p
        | None, None -> failwith "give --unix PATH or --port PORT"
      in
      Fun.protect ~finally:(fun () -> C.close client) @@ fun () ->
      let clear = frames <> 1 in
      let prev = ref (None, Unix.gettimeofday ()) in
      let frame () =
        let prev_requests, prev_t = !prev in
        prev := render_frame ~clear prev_requests prev_t (C.metrics client)
      in
      if frames <= 0 then
        while true do
          frame ();
          Unix.sleepf (float_of_int (max 50 interval_ms) /. 1000.0)
        done
      else
        for i = 1 to frames do
          frame ();
          if i < frames then
            Unix.sleepf (float_of_int (max 50 interval_ms) /. 1000.0)
        done;
      0
    with
    | C.Client_error m | Failure m | Sys_error m ->
        prerr_endline ("error: " ^ m);
        1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running query service: QPS, latency \
          percentiles, queue depth, per-worker utilization and the \
          slow-query ring, refreshed from the metrics verb.")
    Term.(
      const action $ unix_socket_arg $ host_arg $ port_arg $ interval_arg
      $ frames_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "xqc" ~version:"0.1.0"
       ~doc:"An algebraic XQuery compiler (ICDE 2006 reproduction).")
    [
      run_cmd; explain_cmd; gen_cmd; queries_cmd; show_query_cmd; serve_cmd;
      client_cmd; top_cmd;
    ]

let () = Stdlib.exit (Cmd.eval' main_cmd)
