(* Xqc — the public engine API.

   The pipeline is the paper's: parse -> normalize (XQuery Core) ->
   algebraic compilation (Section 4) -> logical rewriting (Section 5) ->
   cost-based physical planning (Section 6, join algorithms and build
   sides chosen from index statistics) -> evaluation.  The [strategy]
   type exposes the four engine configurations measured in Table 3, plus
   the indexed interpreter that stands in for Saxon in Table 5.

   Typical use:

     let doc = Xqc.parse_document ~uri:"auction.xml" xml_string in
     let ctx = Xqc.context () in
     Xqc.bind_document ctx "auction.xml" doc;
     Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];
     let result = Xqc.run (Xqc.prepare "count($auction//person)") ctx in
     print_endline (Xqc.serialize result)
*)

module Atomic = Xqc_xml.Atomic
module Node = Xqc_xml.Node
module Item = Xqc_xml.Item
module Xml_parser = Xqc_xml.Xml_parser
module Serializer = Xqc_xml.Serializer
module Schema = Xqc_types.Schema
module Seqtype = Xqc_types.Seqtype
module Promotion = Xqc_types.Promotion
module Ast = Xqc_frontend.Ast
module Xq_parser = Xqc_frontend.Xq_parser
module Core_ast = Xqc_frontend.Core_ast
module Normalize = Xqc_frontend.Normalize
module Algebra = Xqc_algebra.Algebra
module Physical = Xqc_algebra.Physical
module Pretty = Xqc_algebra.Pretty
module Compile = Xqc_compiler.Compile
module Rewrite = Xqc_optimizer.Rewrite
module Planner = Xqc_optimizer.Planner
module Doc_paths = Xqc_optimizer.Doc_paths
module Eval = Xqc_runtime.Eval
module Projection = Xqc_runtime.Projection
module Regex = Xqc_runtime.Regex
module Joins = Xqc_runtime.Joins
module Dynamic_ctx = Xqc_runtime.Dynamic_ctx
module Builtins = Xqc_runtime.Builtins
module Interp = Xqc_interp.Interp
module Indexed = Xqc_interp.Indexed
module Store = Xqc_store.Store
module Domain_pool = Xqc_runtime.Domain_pool
module Par_exec = Xqc_runtime.Par_exec
module Codegen = Xqc_codegen.Codegen
module Rel_algebra = Xqc_rel.Rel_algebra
module Rel_sql = Xqc_rel.Rel_sql
module Rel_exec = Xqc_rel.Rel_exec
module Shred = Xqc_rel.Shred
module Rel_lower = Xqc_rel_lower.Lower
module Obs = Xqc_obs.Obs
module Trace = Xqc_obs.Trace
module Slow_log = Xqc_obs.Slow_log
module Mutate = Xqc_update.Mutate
module Pul = Xqc_update.Pul
module Version = Xqc_update.Version

type strategy =
  | No_algebra  (** direct interpretation of the Core AST (pre-paper Galax) *)
  | Saxon_like  (** Core interpreter with automatic where-clause indexes *)
  | Algebra_unoptimized  (** algebraic plan, no rewriting ("Algebra + no optim") *)
  | Optimized_nl  (** unnesting rewritings, nested-loop joins *)
  | Optimized  (** unnesting + XQuery hash/sort joins (the full compiler) *)

let strategy_name = function
  | No_algebra -> "no-algebra"
  | Saxon_like -> "saxon-like"
  | Algebra_unoptimized -> "algebra-no-optim"
  | Optimized_nl -> "optim-nl-join"
  | Optimized -> "optim-xquery-join"

let all_strategies =
  [ No_algebra; Saxon_like; Algebra_unoptimized; Optimized_nl; Optimized ]

type prepared = {
  source : string;
  strategy : strategy;
  core : Core_ast.cquery;
  plan : Algebra.plan option;  (** logical main plan, after this strategy's rewriting *)
  pplan : Physical.query option;
      (** the cost-based planner's physical plans (algebraic strategies) *)
  projection : (string * Doc_paths.spec list option) list;
      (** per-free-variable projection paths (empty unless ~project) *)
  runner : Dynamic_ctx.t -> Item.sequence;
  stats : Obs.collector option;
      (** statistics collector (present iff prepared with [~stats:true]);
          phase timings accumulate across runs, the annotated plan
          reflects the most recent run *)
}

exception Error of string

let optimizer_options = function
  | Optimized -> Some Rewrite.default_options
  | Optimized_nl -> Some { Rewrite.unnest = true; split_preds = false; static_types = true }
  | Algebra_unoptimized -> Some { Rewrite.unnest = false; split_preds = false; static_types = false }
  | No_algebra | Saxon_like -> None

(* The physical planner's configuration per strategy: the nested-loop
   strategies pin the join algorithm (their predicates are unsplit
   anyway, so this is belt and braces); [~force_join] overrides for the
   planner-agreement tests and benchmarks.  [par] overrides the
   intra-query parallelism degree; by default the planner is granted the
   domain pool's per-query share of the machine ([query_degree]), which
   is 1 — annotation-free plans — when the pool budget is 1. *)
let planner_config ?par strategy force_join : Planner.config =
  let default =
    match strategy with
    | Optimized_nl | Algebra_unoptimized -> Some Physical.Nested_loop
    | No_algebra | Saxon_like | Optimized -> None
  in
  {
    Planner.force_join = (match force_join with Some _ as f -> f | None -> default);
    par_degree =
      (match par with Some n -> max 1 n | None -> Domain_pool.query_degree ());
    par_threshold = !Planner.default_par_threshold;
  }

let plan_query config (q : Compile.compiled_query) : Physical.query =
  {
    Physical.pfunctions =
      List.map
        (fun (f : Compile.compiled_function) ->
          {
            Physical.pf_name = f.Compile.fn_name;
            pf_params = f.Compile.fn_params;
            pf_body = Planner.plan ~config f.Compile.fn_body;
          })
        q.Compile.cfunctions;
    pglobals =
      List.map (fun (v, p) -> (v, Planner.plan ~config p)) q.Compile.cglobals;
    pmain = Planner.plan ~config q.Compile.cmain;
  }

let optimize_query ?trace strategy (q : Compile.compiled_query) : Compile.compiled_query =
  match optimizer_options strategy with
  | None | Some { Rewrite.unnest = false; split_preds = false; static_types = false } -> q
  | Some options ->
      {
        Compile.cmain = Rewrite.optimize ~options ?trace q.Compile.cmain;
        cglobals =
          List.map (fun (v, p) -> (v, Rewrite.optimize ~options ?trace p)) q.Compile.cglobals;
        cfunctions =
          List.map
            (fun (f : Compile.compiled_function) ->
              { f with Compile.fn_body = Rewrite.optimize ~options ?trace f.Compile.fn_body })
            q.Compile.cfunctions;
      }

(* Compile one core query into a bare runner under [strategy] — the same
   per-strategy execution paths [prepare] wires up, without the
   projection/statistics/knob plumbing.  The update driver evaluates
   every statement's source and target queries through this, so updates
   exercise whichever engine configuration the session runs queries
   under. *)
let runner_of_core ?(strategy = Optimized) (core : Core_ast.cquery) :
    Dynamic_ctx.t -> Item.sequence =
  match strategy with
  | No_algebra -> fun ctx -> Interp.run ctx core
  | Saxon_like -> fun ctx -> Indexed.run ctx core
  | Algebra_unoptimized | Optimized_nl | Optimized ->
      let compiled = optimize_query strategy (Compile.compile_query core) in
      let planned = plan_query (planner_config strategy None) compiled in
      fun ctx -> Eval.run ctx planned

(* Project the bindings of analyzable free variables before running,
   restoring the original bindings afterwards.  [ph] times the pruning
   under a named phase when statistics are being collected. *)
let with_projection ?(ph = fun _name f -> f ())
    (projection : (string * Doc_paths.spec list option) list)
    (runner : Dynamic_ctx.t -> Item.sequence) (ctx : Dynamic_ctx.t) :
    Item.sequence =
  let saved = ref [] in
  ph "projection apply" (fun () ->
      List.iter
        (fun (var, specs) ->
          match (specs, Hashtbl.find_opt ctx.Dynamic_ctx.globals var) with
          | Some specs, Some value when List.exists Item.is_node value ->
              let projected =
                Projection.project_specs ctx.Dynamic_ctx.schema
                  (List.map
                     (fun (sp : Doc_paths.spec) ->
                       { Projection.steps = sp.Doc_paths.steps; subtree = sp.Doc_paths.subtree })
                     specs)
                  value
              in
              saved := (var, value) :: !saved;
              Hashtbl.replace ctx.Dynamic_ctx.globals var projected
          | _ -> ())
        projection);
  let restore () =
    List.iter (fun (var, value) -> Hashtbl.replace ctx.Dynamic_ctx.globals var value) !saved
  in
  match runner ctx with
  | r ->
      restore ();
      r
  | exception e ->
      restore ();
      raise e

(* Parse, normalize, compile and (per strategy) optimize a query once; the
   result can be run against many dynamic contexts.  With [~project:true]
   the bindings of free document variables are pruned to the statically
   inferred projection paths before evaluation (Marian-Siméon document
   projection). *)
let prepare ?(strategy = Optimized) ?(project = false) ?(stats = false)
    ?(materialize = false) ?(fuse = true) ?force_join ?par (source : string) :
    prepared =
  let collector = if stats then Some (Obs.collector ()) else None in
  (* time a prepare-side phase *)
  let ph name f = match collector with Some c -> Obs.phase c name f | None -> f () in
  (* time every invocation of a runner under a named phase *)
  let timed_runner name runner =
    match collector with
    | None -> runner
    | Some c -> fun ctx -> Obs.phase c name (fun () -> runner ctx)
  in
  let wrap f =
    try f () with
    | Xq_parser.Syntax_error { position; message } ->
        raise (Error (Printf.sprintf "syntax error at offset %d: %s" position message))
    | Normalize.Norm_error m -> raise (Error ("normalization error: " ^ m))
    | Eval.Compile_error m -> raise (Error ("plan compilation error: " ^ m))
  in
  wrap (fun () ->
      let ast = ph "parse" (fun () -> Xq_parser.parse_query source) in
      let core = ph "normalize" (fun () -> Normalize.normalize_query ast) in
      let projection =
        if project then ph "projection analysis" (fun () -> Doc_paths.analyze core)
        else []
      in
      let finish runner plan pplan =
        let runner =
          if project then with_projection ~ph:(fun n f -> ph n f) projection runner
          else runner
        in
        { source; strategy; core; plan; pplan; projection; runner; stats = collector }
      in
      match strategy with
      | No_algebra ->
          finish (timed_runner "eval" (fun ctx -> Interp.run ctx core)) None None
      | Saxon_like ->
          finish (timed_runner "eval" (fun ctx -> Indexed.run ctx core)) None None
      | Algebra_unoptimized | Optimized_nl | Optimized ->
          let compiled = ph "compile" (fun () -> Compile.compile_query core) in
          let compiled =
            ph "rewrite" (fun () ->
                optimize_query
                  ?trace:(Option.map (fun c -> c.Obs.co_rewrite) collector)
                  strategy compiled)
          in
          (* cost-based physical planning: every execution-strategy
             decision (join algorithm, build side, index-vs-walk,
             streaming bounds, materialization points) is made here,
             fed by the store's index statistics *)
          let planned =
            ph "plan" (fun () ->
                plan_query (planner_config ?par strategy force_join) compiled)
          in
          (* [Eval.run] recompiles closures per run, so toggling the
             materialization and fusion knobs around it covers the whole
             plan *)
          let run_fused ctx =
            if fuse then Eval.run ?stats:collector ctx planned
            else begin
              let saved = !Codegen.mode in
              Codegen.mode := Codegen.Off;
              Fun.protect
                ~finally:(fun () -> Codegen.mode := saved)
                (fun () -> Eval.run ?stats:collector ctx planned)
            end
          in
          let run_compiled ctx =
            if materialize then begin
              let saved = !Eval.force_materialize in
              Eval.force_materialize := true;
              Fun.protect
                ~finally:(fun () -> Eval.force_materialize := saved)
                (fun () -> run_fused ctx)
            end
            else run_fused ctx
          in
          finish run_compiled (Some compiled.Compile.cmain) (Some planned))

(* ------------------------------------------------------------------ *)
(* Prepared-plan cache                                                 *)
(* ------------------------------------------------------------------ *)

(* LRU cache over [prepare], keyed by everything that shapes the
   compiled plan: query text, strategy, the projection, materialization
   and fusion knobs, the store's index mode, the codegen mode, and the
   relational backend mode — physical planning is statistics-sensitive,
   so a plan prepared with indexing off must not be reused once indexes
   are available (and vice versa), and a fuse- or backend-mode change
   must replan for the same reason.
   Stats-collecting preparations are never cached — each caller of
   [~stats:true] expects its own collector.  Recency is a global tick;
   eviction scans for the minimum (the cache is small, capacity beats
   constant factors). *)

(* Every execution-mode knob that shapes a compiled plan, gathered in
   one record so the cache key cannot silently drift from the set of
   modes: adding a knob here forces the compiler to visit every place a
   key is built.  [m_par] is the parallelism degree the plan was
   annotated with: a plan annotated under [--par 4] must not be reused
   after the budget drops to 1 (and vice versa) — the annotation changes
   the compiled execution strategy, not just a runtime gate.  [m_backend]
   keys the relational-offload mode the planner spliced under. *)
type exec_modes = {
  m_strategy : strategy;
  m_project : bool;
  m_materialize : bool;
  m_fuse : bool;
  m_par : int;  (** domain-pool per-query degree at planning time *)
  m_index : Store.mode;
  m_codegen : Codegen.mode;
  m_backend : Rel_algebra.backend;
  m_docs_gen : int;
      (** the MVCC document-state generation at planning time: plans are
          costed against index statistics, and an applied update changes
          both the statistics and (on full renumber) the identity of the
          trees they describe — a cached plan must not survive the
          document state it was planned for *)
}

(* The ambient execution modes: everything not passed explicitly is read
   from the process-wide knobs, exactly as [prepare] will read them. *)
let current_exec_modes ~strategy ~project ~materialize ~fuse () : exec_modes =
  {
    m_strategy = strategy;
    m_project = project;
    m_materialize = materialize;
    m_fuse = fuse;
    m_par = Domain_pool.query_degree ();
    m_index = !Store.mode;
    m_codegen = !Codegen.mode;
    m_backend = !Rel_algebra.backend;
    m_docs_gen = Version.generation ();
  }

type plan_key = string * exec_modes

(* All cache state is guarded by [plan_lock]: the query server's worker
   domains share this cache (prepared statements resolve through it), so
   lookup/insert/eviction must not race.  Compilation itself runs outside
   the lock — two domains racing on the same cold key may both compile,
   and the loser's insert is a harmless overwrite.  The lock is
   instrumented ("plan_cache" in the lock table) so cross-domain
   contention on it is visible in the server's metrics plane. *)
let plan_lock = Obs.tmutex "plan_cache"

let plan_cache : (plan_key, prepared * int ref) Hashtbl.t = Hashtbl.create 32
let plan_cache_capacity = ref 128
let plan_tick = ref 0

let c_plan_hits = Obs.global_counter "plan_cache_hits"
let c_plan_misses = Obs.global_counter "plan_cache_misses"

let clear_plan_cache () = Obs.with_lock plan_lock (fun () -> Hashtbl.reset plan_cache)

let set_plan_cache_capacity n =
  Obs.with_lock plan_lock (fun () ->
      plan_cache_capacity := max 0 n;
      if Hashtbl.length plan_cache > !plan_cache_capacity then Hashtbl.reset plan_cache)

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key (_, tick) acc ->
        match acc with
        | Some (_, best) when best <= !tick -> acc
        | _ -> Some (key, !tick))
      plan_cache None
  in
  match victim with Some (key, _) -> Hashtbl.remove plan_cache key | None -> ()

let prepare_cached ?(strategy = Optimized) ?(project = false)
    ?(materialize = false) ?(fuse = true) (source : string) : prepared =
  Trace.in_span "plan-cache" @@ fun () ->
  let key =
    (source, current_exec_modes ~strategy ~project ~materialize ~fuse ())
  in
  let hit =
    Obs.with_lock plan_lock (fun () ->
        incr plan_tick;
        match Hashtbl.find_opt plan_cache key with
        | Some (p, tick) ->
            tick := !plan_tick;
            Obs.incr_counter c_plan_hits;
            Some p
        | None ->
            Obs.incr_counter c_plan_misses;
            None)
  in
  match hit with
  | Some p ->
      Trace.annotate_current [ ("hit", "true") ];
      p
  | None ->
      Trace.annotate_current [ ("hit", "false") ];
      let p =
        Trace.in_span "compile" (fun () ->
            prepare ~strategy ~project ~materialize ~fuse source)
      in
      Obs.with_lock plan_lock (fun () ->
          if !plan_cache_capacity > 0 then begin
            if Hashtbl.length plan_cache >= !plan_cache_capacity then evict_lru ();
            Hashtbl.replace plan_cache key (p, ref !plan_tick)
          end);
      p

let plan_cache_size () = Obs.with_lock plan_lock (fun () -> Hashtbl.length plan_cache)

let run (p : prepared) (ctx : Dynamic_ctx.t) : Item.sequence =
  try p.runner ctx with
  | Dynamic_ctx.Dynamic_error m -> raise (Error ("dynamic error: " ^ m))
  | Atomic.Cast_error m -> raise (Error ("type error: " ^ m))
  | Seqtype.Type_assertion_failure m -> raise (Error ("type assertion failure: " ^ m))

(* ------------------------------------------------------------------ *)
(* Conveniences                                                        *)
(* ------------------------------------------------------------------ *)

let context ?schema ?resolver () : Dynamic_ctx.t = Dynamic_ctx.create ?schema ?resolver ()

let bind_variable = Dynamic_ctx.bind_global
let bind_document = Dynamic_ctx.bind_document

let parse_document ?uri (xml : string) : Node.t = Xml_parser.parse_string ?uri xml

let serialize (s : Item.sequence) : string = Serializer.sequence_to_string s

(* One-shot evaluation with optional bindings. *)
let eval_string ?strategy ?project ?materialize ?fuse ?force_join ?schema
    ?(variables = []) ?(documents = []) (source : string) : Item.sequence =
  let ctx = context ?schema () in
  List.iter (fun (name, value) -> bind_variable ctx name value) variables;
  List.iter (fun (uri, doc) -> bind_document ctx uri doc) documents;
  run (prepare ?strategy ?project ?materialize ?fuse ?force_join source) ctx

(* A multi-section compilation report: the Core form and the logical plan
   before and after optimization, in the paper's notation, plus the
   inferred document-projection paths and the rewrite-rule firing trace. *)
let explain ?(strategy = Optimized) (source : string) : string =
  let core = Normalize.normalize_string source in
  let buf = Buffer.create 1024 in
  (match Doc_paths.analyze core with
  | [] -> ()
  | projection ->
      Buffer.add_string buf "=== Document projection paths ===\n";
      List.iter
        (fun (v, specs) ->
          match specs with
          | None -> Buffer.add_string buf (Printf.sprintf "$%s: not projectable\n" v)
          | Some specs ->
              List.iter
                (fun (sp : Doc_paths.spec) ->
                  Buffer.add_string buf
                    (Printf.sprintf "$%s/%s%s\n" v
                       (String.concat "/"
                          (List.map
                             (fun (ax, t) ->
                               Printf.sprintf "%s::%s" (Ast.axis_to_string ax)
                                 (Ast.node_test_to_string t))
                             sp.Doc_paths.steps))
                       (if sp.Doc_paths.subtree then "  (subtree)" else "  (node)")))
                specs)
        projection;
      Buffer.add_string buf "\n");
  Buffer.add_string buf "=== XQuery Core ===\n";
  Buffer.add_string buf (Core_ast.to_string core.Core_ast.cq_main);
  Buffer.add_string buf "\n\n=== Logical plan (naive compilation) ===\n";
  let compiled = Compile.compile_query core in
  Buffer.add_string buf (Pretty.to_string compiled.Compile.cmain);
  (match optimizer_options strategy with
  | None -> ()
  | Some options ->
      let trace = Obs.rewrite_trace () in
      let optimized = Rewrite.optimize ~options ~trace compiled.Compile.cmain in
      Buffer.add_string buf "\n\n=== Optimized plan ===\n";
      Buffer.add_string buf (Pretty.to_string optimized);
      Buffer.add_string buf "\n\n=== Physical plan ===\n";
      let config = planner_config strategy None in
      let physical = Planner.plan ~config optimized in
      Buffer.add_string buf (Pretty.physical_to_string physical);
      (match
         List.rev
           (Physical.fold
              (fun acc (n : Physical.t) ->
                match n.Physical.pop with
                | Physical.PRelational { rplan; rfields; _ } ->
                    (rplan, rfields) :: acc
                | _ -> acc)
              [] physical)
       with
      | [] -> ()
      | subplans ->
          Buffer.add_string buf "\n\n=== Relational subplans ===\n";
          List.iteri
            (fun i (rplan, rfields) ->
              Buffer.add_string buf
                (Printf.sprintf "#%d [%d ops -> %s]\n%s\nSQL:\n%s\n" (i + 1)
                   (Rel_algebra.size rplan)
                   (String.concat ";" rfields)
                   (Rel_algebra.to_string rplan)
                   (Rel_sql.emit rplan)))
            subplans);
      (match Codegen.annotate physical with
      | [] -> ()
      | segments ->
          Buffer.add_string buf "\n\n=== Fused segments ===\n";
          List.iteri
            (fun i (label, prog) ->
              Buffer.add_string buf
                (Printf.sprintf "#%d [%d instrs] at %s\n    %s\n" (i + 1)
                   (Codegen.instr_count prog) label (Codegen.describe prog)))
            segments);
      if Obs.total_firings trace > 0 then begin
        Buffer.add_string buf "\n\n=== Rewrite trace ===\n";
        Buffer.add_string buf (Obs.rewrite_to_string trace)
      end);
  Buffer.add_string buf "\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)
(* ------------------------------------------------------------------ *)

let stats (p : prepared) : Obs.collector option = p.stats

let physical_plan (p : prepared) : Physical.query option = p.pplan

(* Render the statistics a [~stats:true] prepared query has collected so
   far: pipeline phase timings, the rewrite-rule trace, and (after at
   least one [run]) the annotated per-operator plans with join
   accounting.  Raises [Error] when the query was prepared without
   [~stats:true]. *)
let explain_analyze (p : prepared) : string =
  match p.stats with
  | None -> raise (Error "explain_analyze: query was not prepared with ~stats:true")
  | Some c ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "=== Pipeline phases ===\n";
      Buffer.add_string buf (Obs.phases_to_string c);
      if Obs.total_firings c.Obs.co_rewrite > 0 then begin
        Buffer.add_string buf "\n=== Rewrite trace ===\n";
        Buffer.add_string buf (Obs.rewrite_to_string c.Obs.co_rewrite)
      end;
      (match c.Obs.co_plans with
      | [] ->
          Buffer.add_string buf
            "\n(no annotated plans: run the query at least once, with an \
             algebraic strategy, to collect per-operator statistics)\n"
      | plans ->
          List.iter
            (fun (name, root) ->
              Buffer.add_string buf
                (Printf.sprintf "\n=== EXPLAIN ANALYZE (%s) ===\n" name);
              Buffer.add_string buf (Pretty.analyze_to_string root))
            plans;
          let totals = Obs.join_totals c in
          if totals.Obs.js_builds > 0 || totals.Obs.js_probes > 0 then begin
            Buffer.add_string buf "\n=== Join totals ===\n";
            Buffer.add_string buf (Obs.join_stats_to_string totals);
            Buffer.add_char buf '\n'
          end);
      (* process-wide counters: index builds/hits, doc and plan caches *)
      let counters = Obs.global_counters_to_string () in
      if not (String.equal counters "") then begin
        Buffer.add_string buf "\n=== Engine counters (process-wide) ===\n";
        Buffer.add_string buf counters
      end;
      Buffer.contents buf

let stats_json (p : prepared) : string option =
  Option.map Obs.collector_to_json_string p.stats

(* ------------------------------------------------------------------ *)
(* Updates (XQuery Update Facility subset)                             *)
(* ------------------------------------------------------------------ *)

(* Driver for update scripts: parse -> normalize (each statement's
   source/target position becomes a core query sharing the prolog) ->
   evaluate everything against ONE snapshot through the chosen execution
   strategy -> merge into a pending update list -> conflict-check and
   apply in XQUF order.  Registered documents go through the MVCC layer
   ([Version.with_write]): in place with incremental index patches when
   no reader is admitted, against a published copy otherwise. *)
module Update = struct
  type result = {
    u_applied : int;  (** primitives applied *)
    u_version : int;  (** published version id after the write *)
    u_in_place : bool;  (** live head patched (vs copy published) *)
  }

  type crunner = Dynamic_ctx.t -> Item.sequence

  type cstmt =
    | C_insert of crunner * Ast.insert_pos * crunner
    | C_delete of crunner
    | C_replace_node of crunner * crunner
    | C_replace_value of crunner * crunner
    | C_rename of crunner * crunner

  type compiled = {
    c_source : string;
    c_strategy : strategy;
    c_stmts : cstmt list;
  }

  let compile ?(strategy = Optimized) (source : string) : compiled =
    let stmts =
      try Normalize.normalize_update (Xq_parser.parse_update source) with
      | Xq_parser.Syntax_error { position; message } ->
          raise (Error (Printf.sprintf "syntax error at offset %d: %s" position message))
      | Normalize.Norm_error m -> raise (Error ("normalization error: " ^ m))
      | Eval.Compile_error m -> raise (Error ("plan compilation error: " ^ m))
    in
    let r core = runner_of_core ~strategy core in
    let stmts =
      List.map
        (function
          | Normalize.N_insert (src, pos, tgt) -> C_insert (r src, pos, r tgt)
          | Normalize.N_delete tgt -> C_delete (r tgt)
          | Normalize.N_replace_node (tgt, src) -> C_replace_node (r tgt, r src)
          | Normalize.N_replace_value (tgt, src) -> C_replace_value (r tgt, r src)
          | Normalize.N_rename (tgt, name) -> C_rename (r tgt, r name))
        stmts
    in
    { c_source = source; c_strategy = strategy; c_stmts = stmts }

  let update_error fmt = Printf.ksprintf (fun m -> raise (Pul.Update_error m)) fmt

  let single_node what (s : Item.sequence) : Node.t =
    match s with
    | [ Item.Node n ] -> n
    | _ -> update_error "%s must be a single node" what

  let all_nodes what (s : Item.sequence) : Node.t list =
    List.map
      (function
        | Item.Node n -> n
        | Item.Atom _ -> update_error "%s must be a sequence of nodes" what)
      s

  (* Construction semantics for inserted content: nodes are deep-copied
     (the pending list owns its content) and runs of adjacent atomics
     become one space-separated text node. *)
  let content_nodes (s : Item.sequence) : Node.t list =
    let flush atoms acc =
      if atoms = [] then acc
      else Node.text (String.concat " " (List.rev atoms)) :: acc
    in
    let rec go atoms acc = function
      | [] -> List.rev (flush atoms acc)
      | (Item.Atom _ as it) :: rest -> go (Item.string_value it :: atoms) acc rest
      | Item.Node n :: rest -> go [] (Node.copy n :: flush atoms acc) rest
    in
    go [] [] s

  let string_of_seq (s : Item.sequence) : string =
    String.concat " " (List.map Item.string_value s)

  let is_attr n = Node.kind n = Node.Kattribute
  let split_attrs ns = List.partition is_attr ns

  (* Evaluate one statement against the snapshot context and produce its
     pending primitives. *)
  let prims_of_stmt (ctx : Dynamic_ctx.t) (stmt : cstmt) : Pul.primitive list =
    match stmt with
    | C_insert (srcr, pos, tgtr) -> (
        let attrs, kids = split_attrs (content_nodes (srcr ctx)) in
        let tgt = tgtr ctx in
        match pos with
        | Ast.Into | Ast.As_last_into | Ast.As_first_into ->
            let t = single_node "insert target" tgt in
            (match t.Node.desc with
            | Node.Element _ -> ()
            | Node.Document _ ->
                if attrs <> [] then
                  update_error "cannot insert attributes into a document node"
            | _ ->
                update_error "insert into target must be an element or document node");
            (if attrs = [] then [] else [ Pul.Insert_attributes (t, attrs) ])
            @
            if kids = [] then []
            else
              [
                (match pos with
                | Ast.As_first_into -> Pul.Insert_first (t, kids)
                | _ -> Pul.Insert_into (t, kids));
              ]
        | Ast.Before | Ast.After ->
            let t = single_node "insert target" tgt in
            let p =
              match Node.parent t with
              | Some p -> p
              | None -> update_error "insert before/after target has no parent"
            in
            (* attribute content attaches to the target's parent, per XQUF *)
            (if attrs = [] then [] else [ Pul.Insert_attributes (p, attrs) ])
            @
            if kids = [] then []
            else if pos = Ast.Before then [ Pul.Insert_before (t, kids) ]
            else [ Pul.Insert_after (t, kids) ])
    | C_delete tgtr ->
        List.map (fun n -> Pul.Delete n) (all_nodes "delete target" (tgtr ctx))
    | C_replace_node (tgtr, srcr) ->
        let t = single_node "replace target" (tgtr ctx) in
        if Node.parent t = None then update_error "replace target has no parent";
        let src = content_nodes (srcr ctx) in
        (match t.Node.desc with
        | Node.Attribute _ ->
            if List.exists (fun n -> not (is_attr n)) src then
              update_error "replacing an attribute requires attribute content"
        | _ ->
            if List.exists is_attr src then
              update_error "attribute content cannot replace a non-attribute node");
        [ Pul.Replace_node (t, src) ]
    | C_replace_value (tgtr, srcr) ->
        let t = single_node "replace target" (tgtr ctx) in
        [ Pul.Replace_value (t, string_of_seq (srcr ctx)) ]
    | C_rename (tgtr, namer) ->
        let t = single_node "rename target" (tgtr ctx) in
        let name = String.trim (string_of_seq (namer ctx)) in
        if name = "" then update_error "rename requires a non-empty name";
        [ Pul.Rename (t, name) ]

  let wrap_errors f =
    try f () with
    | Pul.Update_error m -> raise (Error ("update error: " ^ m))
    | Version.Unknown_document u -> raise (Error ("unknown document: " ^ u))
    | Dynamic_ctx.Dynamic_error m -> raise (Error ("dynamic error: " ^ m))
    | Atomic.Cast_error m -> raise (Error ("type error: " ^ m))
    | Seqtype.Type_assertion_failure m ->
        raise (Error ("type assertion failure: " ^ m))

  (* Apply a compiled script to a tree the caller owns exclusively — no
     MVCC, used directly by tests and benchmarks.  Returns the number of
     applied primitives. *)
  let apply_to_root (c : compiled) ~(make_ctx : Node.t -> Dynamic_ctx.t)
      (root : Node.t) : int =
    wrap_errors (fun () ->
        let ctx = make_ctx root in
        let prims = List.concat_map (prims_of_stmt ctx) c.c_stmts in
        Pul.apply root prims)

  (* Execute a compiled script against the registered document [uri],
     under its MVCC write lock.  [make_ctx] builds the evaluation
     context over whichever tree the version layer chose (live head or
     fresh copy) — bind it exactly as the session's queries would see
     the document. *)
  let execute_compiled (c : compiled) ~(uri : string)
      ~(make_ctx : Node.t -> Dynamic_ctx.t) : result =
    wrap_errors (fun () ->
        let applied, in_place =
          Version.with_write uri (fun root ~in_place ->
              let ctx = make_ctx root in
              let prims = List.concat_map (prims_of_stmt ctx) c.c_stmts in
              (Pul.apply root prims, in_place))
        in
        let version =
          match Version.head uri with Some v -> v.Version.v_id | None -> 0
        in
        { u_applied = applied; u_version = version; u_in_place = in_place })

  let execute ?strategy ~(uri : string)
      ?(make_ctx =
        fun root ->
          let ctx = context () in
          bind_document ctx uri root;
          ctx) (source : string) : result =
    execute_compiled (compile ?strategy source) ~uri ~make_ctx
end
