(** XML node trees with global document order.

    Node identity is physical.  Every node carries a globally unique
    integer id [nid] maintained in document (pre-)order, so document-order
    comparison — including between different documents — is an integer
    comparison.  Trees are built bottom-up, so each construction boundary
    (parser, constructors, generators) calls {!renumber} on the finished
    subtree to restore the preorder invariant. *)

type qname = string

type t = {
  mutable nid : int;
  mutable parent : t option;
  mutable extent : int;
      (** subtree node count (self + attributes + descendants) cached by
          {!renumber}; 0 until computed.  After a renumber of the
          containing root, the subtree of [n] occupies exactly the id
          interval [n.nid, n.nid + n.extent) — the pre/size encoding. *)
  mutable desc : desc;
}

and desc =
  | Document of { mutable dchildren : t list; duri : string option }
  | Element of {
      ename : qname;
      mutable attrs : t list;
      mutable children : t list;
      mutable eannot : string option;  (** type annotation from validation *)
    }
  | Attribute of { aname : qname; avalue : string; mutable aannot : string option }
  | Text of string
  | Comment of string
  | Pi of { target : string; pdata : string }

(** {1 Construction} *)

val document : ?uri:string -> t list -> t
(** A document node owning the given children (parent pointers are set). *)

val element : ?annot:string -> qname -> attrs:t list -> children:t list -> t
val attribute : ?annot:string -> qname -> string -> t
val text : string -> t
val comment : string -> t
val pi : string -> string -> t

val copy : t -> t
(** Deep copy with fresh node ids — the copy performed by XQuery element
    constructors.  Call {!renumber} on the surrounding tree afterwards if
    preorder ids are required. *)

val renumber : t -> unit
(** Re-assign ids across the subtree in document order (node, then its
    attributes, then its children).  Ids are drawn consecutively, and the
    same pass caches every node's subtree [extent], making {!size} O(1)
    and enabling the interval descendant test
    [anc.nid < n.nid && n.nid < anc.nid + anc.extent]. *)

val renumber_gapped : ?gap:int -> t -> unit
(** Gap-reserving renumber for updatable documents: every insertion
    position (after the attributes, after each child) reserves [gap]
    spare ids, so small inserts draw from the local slack without
    touching any ancestor.  [extent] then caches the interval {e width}
    (gaps included), not the node count — the descendant test and the
    store's range arithmetic are unaffected; use {!count_nodes} for
    exact counts.  Default gap: 8. *)

val count_nodes : t -> int
(** Exact node count (attributes included) by walking — unlike {!size}
    it never reads the cached extent, so it is correct on gap-numbered
    trees where the extent is an interval width. *)

val interval_end : t -> int
(** [n.nid + n.extent]: first id past [n]'s interval.  Only meaningful
    after a renumber of the containing root. *)

(** {1 Observation} *)

type kind = Kdocument | Kelement | Kattribute | Ktext | Kcomment | Kpi

val kind : t -> kind
val kind_name : kind -> string

val name : t -> qname option
(** Element/attribute name, or PI target; [None] for other kinds. *)

val children : t -> t list
val attributes : t -> t list
val parent : t -> t option
val type_annotation : t -> string option
val set_type_annotation : t -> string option -> unit

val string_value : t -> string
(** The data-model string value (concatenated descendant text). *)

val typed_value : t -> Atomic.t
(** fn:data on a node: untypedAtomic for unvalidated nodes, the annotated
    atomic type for validated ones. *)

(** {1 Document order and axes} *)

val doc_order_compare : t -> t -> int

val is_doc_sorted_uniq : t list -> bool
(** One O(n) pass: strictly ascending node ids (sorted, duplicate-free). *)

val sort_doc_order : t list -> t list
(** Sort into document order and drop duplicates — the closure every axis
    step maintains.  Already-sorted input (the common case for child and
    descendant steps) is returned as-is without sorting. *)

val is_ancestor_of : anc:t -> t -> bool
val root : t -> t
val descendants : t -> t list
val descendant_or_self : t -> t list

val descendants_seq : t -> t Seq.t
(** Lazy preorder walk of the descendants (self excluded): streaming
    consumers pull only the prefix they need. *)

val descendant_or_self_seq : t -> t Seq.t
val ancestors : t -> t list
val following_siblings : t -> t list
val preceding_siblings : t -> t list

val size : t -> int
(** Number of nodes in the subtree (attributes included).  O(1) after
    {!renumber} has cached the extent; otherwise a full walk. *)

val subtree_interval : t -> (int * int) option
(** [Some (lo, hi)] when the extent is cached: the subtree occupies
    exactly the ids [lo <= nid < hi] (valid as long as the containing
    root has not been renumbered since). *)
