(* XML node trees with global document order.

   Node identity is physical; each node carries a globally unique [nid]
   assigned in construction (pre-)order, so document order between any two
   nodes — including nodes of different documents — is a comparison of ids,
   and sorting-by-document-order after a TreeJoin is a sort on ints.

   Element and attribute nodes carry an optional type annotation, the name
   of the schema type assigned by validation.  Unvalidated elements have no
   annotation and their typed value is xdt:untypedAtomic, per the XQuery
   data model. *)

type qname = string

type t = {
  mutable nid : int;
  mutable parent : t option;
  mutable extent : int;
      (* number of nodes in the subtree (self + attributes + descendants),
         cached by [renumber]; 0 = not yet computed.  Together with [nid]
         this is the pre/size interval encoding: after a renumber of the
         containing root, the subtree of [n] occupies exactly the nids
         [n.nid, n.nid + n.extent). *)
  mutable desc : desc;
}

and desc =
  | Document of { mutable dchildren : t list; duri : string option }
  | Element of {
      ename : qname;
      mutable attrs : t list;
      mutable children : t list;
      mutable eannot : string option;
    }
  | Attribute of { aname : qname; avalue : string; mutable aannot : string option }
  | Text of string
  | Comment of string
  | Pi of { target : string; pdata : string }

(* Ids are drawn from a process-global atomic counter: node construction
   happens concurrently on server worker domains (element constructors
   copy and renumber trees mid-query), and torn or duplicated ids would
   silently break document-order comparison.  [renumber] reserves its
   whole block in one fetch-and-add so a subtree's ids stay consecutive
   even while other domains allocate. *)
let counter = Stdlib.Atomic.make 0

let fresh_id () = Stdlib.Atomic.fetch_and_add counter 1 + 1

let mk desc = { nid = fresh_id (); parent = None; extent = 0; desc }

let document ?uri children =
  let d = mk (Document { dchildren = children; duri = uri }) in
  List.iter (fun c -> c.parent <- Some d) children;
  d

let element ?annot name ~attrs ~children =
  let e = mk (Element { ename = name; attrs; children; eannot = annot }) in
  List.iter (fun a -> a.parent <- Some e) attrs;
  List.iter (fun c -> c.parent <- Some e) children;
  e

let attribute ?annot name value =
  mk (Attribute { aname = name; avalue = value; aannot = annot })

let text s = mk (Text s)
let comment s = mk (Comment s)
let pi target pdata = mk (Pi { target; pdata })

type kind = Kdocument | Kelement | Kattribute | Ktext | Kcomment | Kpi

let kind n =
  match n.desc with
  | Document _ -> Kdocument
  | Element _ -> Kelement
  | Attribute _ -> Kattribute
  | Text _ -> Ktext
  | Comment _ -> Kcomment
  | Pi _ -> Kpi

let kind_name = function
  | Kdocument -> "document"
  | Kelement -> "element"
  | Kattribute -> "attribute"
  | Ktext -> "text"
  | Kcomment -> "comment"
  | Kpi -> "processing-instruction"

let name n =
  match n.desc with
  | Element e -> Some e.ename
  | Attribute a -> Some a.aname
  | Pi p -> Some p.target
  | Document _ | Text _ | Comment _ -> None

let children n =
  match n.desc with
  | Document d -> d.dchildren
  | Element e -> e.children
  | Attribute _ | Text _ | Comment _ | Pi _ -> []

let attributes n =
  match n.desc with
  | Element e -> e.attrs
  | Document _ | Attribute _ | Text _ | Comment _ | Pi _ -> []

let parent n = n.parent

let type_annotation n =
  match n.desc with
  | Element e -> e.eannot
  | Attribute a -> a.aannot
  | Document _ | Text _ | Comment _ | Pi _ -> None

let set_type_annotation n annot =
  match n.desc with
  | Element e -> e.eannot <- annot
  | Attribute a -> a.aannot <- annot
  | Document _ | Text _ | Comment _ | Pi _ -> ()

(* String value: concatenation of all descendant text, per the data model. *)
let string_value n =
  match n.desc with
  | Text s -> s
  | Comment s -> s
  | Pi p -> p.pdata
  | Attribute a -> a.avalue
  | Document _ | Element _ ->
      let buf = Buffer.create 16 in
      let rec go n =
        match n.desc with
        | Text s -> Buffer.add_string buf s
        | Element _ | Document _ -> List.iter go (children n)
        | Attribute _ | Comment _ | Pi _ -> ()
      in
      go n;
      Buffer.contents buf

(* Typed value (fn:data on a node).  Elements/attributes without a type
   annotation atomize to untypedAtomic; annotated nodes atomize to the
   atomic type recorded by validation when that type names an atomic type,
   and to untypedAtomic otherwise (we do not model complex typed values). *)
let typed_value n : Atomic.t =
  let sv = string_value n in
  match type_annotation n with
  | None -> (
      match n.desc with
      | Comment _ | Pi _ -> Atomic.String sv
      | Document _ | Element _ | Attribute _ | Text _ -> Atomic.Untyped sv)
  | Some ty -> (
      match Atomic.type_name_of_string ty with
      | Some tn -> ( try Atomic.cast tn (Atomic.Untyped sv) with Atomic.Cast_error _ -> Atomic.Untyped sv)
      | None -> Atomic.Untyped sv)

(* Deep copy with fresh node ids: XQuery element constructors copy their
   content, which is why construction shows up in the paper's profiles. *)
let rec copy n =
  match n.desc with
  | Document d -> document ?uri:d.duri (List.map copy d.dchildren)
  | Element e ->
      element ?annot:e.eannot e.ename ~attrs:(List.map copy e.attrs)
        ~children:(List.map copy e.children)
  | Attribute a -> attribute ?annot:a.aannot a.aname a.avalue
  | Text s -> text s
  | Comment s -> comment s
  | Pi p -> pi p.target p.pdata

(* Re-assign node ids in document order (preorder; attributes between the
   element and its children).  Trees are built bottom-up by the parser,
   the constructors and the generators, so each construction boundary
   renumbers the finished subtree to restore the preorder invariant.

   The same pass caches each node's subtree extent: ids are drawn
   consecutively from the global counter, so after renumbering the
   subtree of [n] occupies exactly the id interval
   [n.nid, n.nid + n.extent) — the pre/size encoding the indexed store
   answers axis steps against, and an O(1) [size]. *)
let renumber (root : t) : unit =
  (* Two passes so the whole id block can be reserved atomically: the
     first caches extents (also giving the block size), the second
     assigns consecutive ids from the reserved range.  Per-node
     fetch-and-add would interleave with other domains and break the
     consecutive-interval invariant. *)
  let rec measure n =
    let sub = ref 1 in
    List.iter (fun a -> sub := !sub + measure a) (attributes n);
    List.iter (fun c -> sub := !sub + measure c) (children n);
    n.extent <- !sub;
    !sub
  in
  let total = measure root in
  let next = ref (Stdlib.Atomic.fetch_and_add counter total) in
  let rec assign n =
    incr next;
    n.nid <- !next;
    List.iter assign (attributes n);
    List.iter assign (children n)
  in
  assign root

(* Gap-reserving renumber for updatable documents (the update subsystem's
   nid allocator).  Same preorder discipline as [renumber], but every
   insertion position reserves [gap] spare ids: after the attributes
   (before the first child) and after each child.  [extent] then caches
   the *interval width* — gaps included — rather than the node count, so
   the descendant test [n.nid < m.nid < n.nid + n.extent] and the store's
   range arithmetic keep working unchanged, while an insert that fits in
   the local slack touches no ancestor extent at all.  Use [count_nodes]
   where the exact node count is needed on a gap-numbered tree. *)
let renumber_gapped ?(gap = 8) (root : t) : unit =
  let gap = max 0 gap in
  let rec measure n =
    let w = ref 1 in
    List.iter (fun a -> w := !w + measure a) (attributes n);
    w := !w + gap;
    List.iter (fun c -> w := !w + measure c + gap) (children n);
    n.extent <- !w;
    !w
  in
  let total = measure root in
  let next = ref (Stdlib.Atomic.fetch_and_add counter total + 1) in
  let rec assign n =
    n.nid <- !next;
    incr next;
    List.iter assign (attributes n);
    next := !next + gap;
    List.iter
      (fun c ->
        assign c;
        next := !next + gap)
      (children n)
  in
  assign root

(* Exact node count by walking — [size]/[extent] over-report on
   gap-numbered trees (they measure the reserved interval). *)
let rec count_nodes n =
  1
  + List.length (attributes n)
  + List.fold_left (fun acc c -> acc + count_nodes c) 0 (children n)

(* First id past [n]'s interval (self, attributes, descendants and — on
   gap-numbered trees — the trailing slack).  Meaningful only after a
   renumber of the containing root. *)
let interval_end n = n.nid + n.extent

let doc_order_compare a b = compare a.nid b.nid

(* One O(n) strictly-ascending check: child/descendant axis output is
   almost always already in document order and duplicate-free, in which
   case sorting is the identity and we can skip the comparator closure
   and the sort allocation entirely. *)
let rec is_doc_sorted_uniq = function
  | a :: (b :: _ as rest) -> a.nid < b.nid && is_doc_sorted_uniq rest
  | [] | [ _ ] -> true

(* Sort a node list into document order and remove duplicate nodes
   (by identity).  This is the closure every axis step must maintain. *)
let sort_doc_order nodes =
  if is_doc_sorted_uniq nodes then nodes
  else List.sort_uniq (fun a b -> compare a.nid b.nid) nodes

let is_ancestor_of ~anc n =
  let rec up = function
    | None -> false
    | Some p -> p == anc || up p.parent
  in
  up n.parent

let root n =
  let rec up n = match n.parent with None -> n | Some p -> up p in
  up n

(* Descendants in document order (self excluded). *)
let descendants n =
  let acc = ref [] in
  let rec go n =
    List.iter
      (fun c ->
        acc := c :: !acc;
        go c)
      (children n)
  in
  go n;
  List.rev !acc

let descendant_or_self n = n :: descendants n

(* Lazy preorder walk of the descendants (self excluded): the streaming
   evaluator's existential consumers (fn:exists over a //-path) pull only
   the prefix they need instead of materializing the whole subtree. *)
let rec descendants_seq n : t Seq.t =
  Seq.concat_map (fun c -> fun () -> Seq.Cons (c, descendants_seq c)) (List.to_seq (children n))

let descendant_or_self_seq n : t Seq.t = fun () -> Seq.Cons (n, descendants_seq n)

let ancestors n =
  let rec up acc = function None -> List.rev acc | Some p -> up (p :: acc) p.parent in
  up [] n.parent

let following_siblings n =
  match n.parent with
  | None -> []
  | Some p ->
      let rec after = function
        | [] -> []
        | c :: rest -> if c == n then rest else after rest
      in
      after (children p)

let preceding_siblings n =
  match n.parent with
  | None -> []
  | Some p ->
      let rec before acc = function
        | [] -> []
        | c :: rest -> if c == n then List.rev acc else before (c :: acc) rest
      in
      before [] (children p)

(* Count of nodes in the subtree (attributes included).  O(1) once
   [renumber] has cached the extent; the walk remains for trees (or
   freshly copied subtrees) that have not been numbered yet, and does
   not write the cache — only [renumber], which controls the ids the
   extent is an interval over, is allowed to. *)
let rec size n =
  if n.extent > 0 then n.extent
  else 1 + List.length (attributes n) + List.fold_left (fun acc c -> acc + size c) 0 (children n)

(* The pre/size interval of the subtree, when cached by [renumber]. *)
let subtree_interval n = if n.extent > 0 then Some (n.nid, n.nid + n.extent) else None
