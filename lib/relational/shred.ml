(* Document shredding: columnar relational tables over the pre/size
   interval encoding.

   A shred turns one renumbered document root into flat int arrays —
   node(pre, size, level, kind, qname_id, value_id) plus qname and
   value dictionaries — with row i holding the node whose preorder id
   is [base + i].  Subtree membership, child/descendant navigation and
   per-qname lookups then become range arithmetic and binary search
   over int arrays, exactly like the structural name indexes of
   Xqc_store, and the node's data-model string value is one dictionary
   probe.

   Cache protocol (copied from Store): shreds are keyed by the root's
   nid at build time and published through one [Atomic] holding an
   immutable map — readers take no lock.  [Node.renumber], the only
   operation that changes ids, gives the root a fresh nid, so a stale
   shred can never be looked up again; stale entries are purged on
   publish.  The build walk verifies strictly consecutive preorder ids
   and refuses validated (type-annotated) trees, whose typed values
   the untyped column encoding cannot represent; such roots are
   recorded [Unshreddable] so they are not re-walked per query. *)

open Xqc_xml
module Obs = Xqc_obs.Obs
module R = Rel_algebra

let c_shreds = Obs.global_counter "rel_shreds"
let c_shred_nodes = Obs.global_counter "rel_shred_nodes"

(* Kind codes of the [kinds] column. *)
let k_document = 0
let k_element = 1
let k_attribute = 2
let k_text = 3
let k_comment = 4
let k_pi = 5

type t = {
  root : Node.t;
  base : int;  (** root nid at build: row i holds nid [base + i] *)
  n : int;
  nodes : Node.t array;  (** row -> node (the bridge back to items) *)
  sizes : int array;  (** subtree node count, self included *)
  levels : int array;
  kinds : int array;
  parents : int array;  (** parent row, -1 for the root *)
  qids : int array;  (** qname dictionary id, -1 when unnamed *)
  vids : int array;  (** value dictionary id of the string value *)
  qnames : string array;
  values : string array;
  elem_rows : int array array;  (** qid -> element rows, ascending *)
  attr_rows : int array array;  (** qid -> attribute rows, ascending *)
  all_elems : int array;  (** every element row, ascending *)
}

type entry = Shredded of t | Unshreddable of Node.t

exception Not_shreddable

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

type dict = { tbl : (string, int) Hashtbl.t; mutable rev : string list; mutable next : int }

let dict_make () = { tbl = Hashtbl.create 64; rev = []; next = 0 }

let dict_id (d : dict) (s : string) : int =
  match Hashtbl.find_opt d.tbl s with
  | Some i -> i
  | None ->
      let i = d.next in
      Hashtbl.add d.tbl s i;
      d.rev <- s :: d.rev;
      d.next <- i + 1;
      i

let dict_array (d : dict) : string array =
  let a = Array.make d.next "" in
  List.iteri (fun i s -> a.(d.next - 1 - i) <- s) d.rev;
  a

let build (root : Node.t) : entry =
  let total = Node.size root in
  if total = 0 then Unshreddable root
  else
    let base = root.Node.nid in
    let nodes = Array.make total root in
    let sizes = Array.make total 0 in
    let levels = Array.make total 0 in
    let kinds = Array.make total 0 in
    let parents = Array.make total (-1) in
    let qids = Array.make total (-1) in
    let vids = Array.make total (-1) in
    let qdict = dict_make () and vdict = dict_make () in
    let elem_acc : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let attr_acc : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let all_elems = ref [] in
    let push tbl qid row =
      match Hashtbl.find_opt tbl qid with
      | Some l -> l := row :: !l
      | None -> Hashtbl.add tbl qid (ref [ row ])
    in
    let count = ref 0 in
    let rec go level parent_row (nd : Node.t) =
      let row = !count in
      (* the encoding requires exactly consecutive preorder ids *)
      if row >= total || nd.Node.nid <> base + row then raise Not_shreddable;
      if Node.type_annotation nd <> None then raise Not_shreddable;
      incr count;
      nodes.(row) <- nd;
      levels.(row) <- level;
      parents.(row) <- parent_row;
      (match nd.Node.desc with
      | Node.Document _ ->
          kinds.(row) <- k_document;
          vids.(row) <- dict_id vdict (Node.string_value nd)
      | Node.Element { ename; _ } ->
          kinds.(row) <- k_element;
          let q = dict_id qdict ename in
          qids.(row) <- q;
          vids.(row) <- dict_id vdict (Node.string_value nd);
          push elem_acc q row;
          all_elems := row :: !all_elems
      | Node.Attribute { aname; avalue; _ } ->
          kinds.(row) <- k_attribute;
          let q = dict_id qdict aname in
          qids.(row) <- q;
          vids.(row) <- dict_id vdict avalue;
          push attr_acc q row
      | Node.Text s ->
          kinds.(row) <- k_text;
          vids.(row) <- dict_id vdict s
      | Node.Comment s ->
          kinds.(row) <- k_comment;
          vids.(row) <- dict_id vdict s
      | Node.Pi { target; pdata } ->
          kinds.(row) <- k_pi;
          qids.(row) <- dict_id qdict target;
          vids.(row) <- dict_id vdict pdata);
      List.iter (go (level + 1) row) (Node.attributes nd);
      List.iter (go (level + 1) row) (Node.children nd);
      sizes.(row) <- !count - row
    in
    match go 0 (-1) root with
    | exception Not_shreddable -> Unshreddable root
    | () ->
        if !count <> total then Unshreddable root
        else begin
          let rows_of tbl =
            let a = Array.make qdict.next [||] in
            Hashtbl.iter
              (fun qid l -> a.(qid) <- Array.of_list (List.rev !l))
              tbl;
            a
          in
          Obs.incr_counter c_shreds;
          Obs.add_counter c_shred_nodes total;
          Shredded
            {
              root;
              base;
              n = total;
              nodes;
              sizes;
              levels;
              kinds;
              parents;
              qids;
              vids;
              qnames = dict_array qdict;
              values = dict_array vdict;
              elem_rows = rows_of elem_acc;
              attr_rows = rows_of attr_acc;
              all_elems = Array.of_list (List.rev !all_elems);
            }
        end

(* ------------------------------------------------------------------ *)
(* Cache (the Store publication protocol)                              *)
(* ------------------------------------------------------------------ *)

let lock = Obs.tmutex "shred_publish"

module IntMap = Map.Make (Int)

let snapshot : entry IntMap.t Stdlib.Atomic.t = Stdlib.Atomic.make IntMap.empty

let entry_root = function Shredded s -> s.root | Unshreddable r -> r

let cache_size () = IntMap.cardinal (Stdlib.Atomic.get snapshot)

let clear () =
  Obs.with_lock lock (fun () -> Stdlib.Atomic.set snapshot IntMap.empty)

let purge_stale (m : entry IntMap.t) : entry IntMap.t =
  IntMap.filter (fun key e -> (entry_root e).Node.nid = key) m

let live_entry key e = if (entry_root e).Node.nid = key then Some e else None

let entry_for (root : Node.t) : entry =
  let key = root.Node.nid in
  match
    Option.bind (IntMap.find_opt key (Stdlib.Atomic.get snapshot)) (live_entry key)
  with
  | Some e -> e
  | None ->
      (* build outside the lock (idempotent; a racing loser's publish is
         a harmless overwrite), publish under it *)
      let e = build root in
      Obs.with_lock lock (fun () ->
          let m = Stdlib.Atomic.get snapshot in
          match Option.bind (IntMap.find_opt key m) (live_entry key) with
          | Some winner -> winner
          | None ->
              Stdlib.Atomic.set snapshot (IntMap.add key e (purge_stale m));
              e)

let of_root (root : Node.t) : t option =
  match entry_for root with Shredded s -> Some s | Unshreddable _ -> None

(* Locate an arbitrary node inside its root's shred: its row is its
   nid offset, verified by physical identity (a renumbered tree would
   miss the cache and rebuild, but belt and braces). *)
let find (n : Node.t) : (t * int) option =
  match of_root (Node.root n) with
  | None -> None
  | Some sh ->
      let row = n.Node.nid - sh.base in
      if row >= 0 && row < sh.n && sh.nodes.(row) == n then Some (sh, row)
      else None

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let value (sh : t) (row : int) : string =
  let v = sh.vids.(row) in
  if v < 0 then "" else sh.values.(v)

let atom (sh : t) (row : int) : Atomic.t = Atomic.Untyped (value sh row)

let qid_of_name (sh : t) (name : string) : int option =
  (* the dictionary is small; scan once per plan operator evaluation *)
  let n = Array.length sh.qnames in
  let rec go i =
    if i >= n then None
    else if String.equal sh.qnames.(i) name then Some i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Navigation                                                          *)
(* ------------------------------------------------------------------ *)

(* First index in [arr] with value >= v (arr ascending). *)
let lower_bound (arr : int array) (v : int) : int =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

(* Rows of [arr] inside [lo, hi) appended to [acc] in ascending order. *)
let range_rows (arr : int array) (lo : int) (hi : int) : int list =
  let i0 = lower_bound arr lo in
  let rec go i acc = if i < i0 then acc else go (i - 1) (arr.(i) :: acc) in
  let rec last i = if i < Array.length arr && arr.(i) < hi then last (i + 1) else i in
  go (last i0 - 1) []

let attrs_of (sh : t) (r : int) : int list =
  if sh.kinds.(r) <> k_element then []
  else begin
    let stop = r + sh.sizes.(r) in
    let rec go i acc =
      if i < stop && sh.kinds.(i) = k_attribute then go (i + 1) (i :: acc)
      else List.rev acc
    in
    go (r + 1) []
  end

let children_of (sh : t) (r : int) : int list =
  if sh.kinds.(r) <> k_element && sh.kinds.(r) <> k_document then []
  else begin
    let stop = r + sh.sizes.(r) in
    (* attributes come first in preorder; skip them, then hop siblings
       by subtree size *)
    let rec skip_attrs i =
      if i < stop && sh.kinds.(i) = k_attribute then skip_attrs (i + 1) else i
    in
    let rec go i acc =
      if i >= stop then List.rev acc else go (i + sh.sizes.(i)) (i :: acc)
    in
    go (skip_attrs (r + 1)) []
  end

let step_rows (sh : t) (s : R.rstep) (r : int) : int list =
  match (s.R.ra, s.R.rt) with
  | R.RChild, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q ->
          List.filter
            (fun c -> sh.kinds.(c) = k_element && sh.qids.(c) = q)
            (children_of sh r))
  | R.RChild, R.RStar ->
      List.filter (fun c -> sh.kinds.(c) = k_element) (children_of sh r)
  | R.RAttr, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> List.filter (fun a -> sh.qids.(a) = q) (attrs_of sh r))
  | R.RAttr, R.RStar -> attrs_of sh r
  | R.RDesc, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> range_rows sh.elem_rows.(q) (r + 1) (r + sh.sizes.(r)))
  | R.RDesc, R.RStar -> range_rows sh.all_elems (r + 1) (r + sh.sizes.(r))
  | R.RDescSelf, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> range_rows sh.elem_rows.(q) r (r + sh.sizes.(r)))
  | R.RDescSelf, R.RStar -> range_rows sh.all_elems r (r + sh.sizes.(r))

(* Apply a whole path from one row.  Each step's output over ascending
   disjoint inputs is ascending by construction for the downward axes,
   but nested descendant inputs can interleave — close with a cheap
   sort_uniq exactly like the native tree_join closes with
   sort_doc_order (already-sorted inputs cost one comparison pass). *)
let path_rows (sh : t) (path : R.rpath) (r : int) : int list =
  List.fold_left
    (fun rows s ->
      match rows with
      | [] -> []
      | [ one ] -> step_rows sh s one
      | many -> List.sort_uniq compare (List.concat_map (step_rows sh s) many))
    [ r ] path

(* ------------------------------------------------------------------ *)
(* Rebuild (round-trip testing)                                        *)
(* ------------------------------------------------------------------ *)

(* Reconstruct a fresh tree from the columns alone — [nodes] is not
   consulted — so tests can check the shred captured the document. *)
let rebuild (sh : t) : Node.t =
  let kids = Array.make sh.n [] in
  for r = sh.n - 1 downto 1 do
    kids.(sh.parents.(r)) <- r :: kids.(sh.parents.(r))
  done;
  let name r = sh.qnames.(sh.qids.(r)) in
  let rec make r : Node.t =
    let k = sh.kinds.(r) in
    if k = k_element then begin
      let attrs, children =
        List.partition (fun c -> sh.kinds.(c) = k_attribute) kids.(r)
      in
      Node.element (name r) ~attrs:(List.map make attrs)
        ~children:(List.map make children)
    end
    else if k = k_document then Node.document (List.map make kids.(r))
    else if k = k_attribute then Node.attribute (name r) (value sh r)
    else if k = k_text then Node.text (value sh r)
    else if k = k_comment then Node.comment (value sh r)
    else Node.pi (name r) (value sh r)
  in
  let t = make 0 in
  Node.renumber t;
  t
