(* Document shredding: columnar relational tables over the pre/size
   interval encoding.

   A shred turns one renumbered document root into flat int arrays —
   node(pre, size, level, kind, qname_id, value_id) plus qname and
   value dictionaries — with row i holding the node whose preorder id
   is [base + i].  Subtree membership, child/descendant navigation and
   per-qname lookups then become range arithmetic and binary search
   over int arrays, exactly like the structural name indexes of
   Xqc_store, and the node's data-model string value is one dictionary
   probe.

   Cache protocol (copied from Store): shreds are keyed by the root's
   nid at build time and published through one [Atomic] holding an
   immutable map — readers take no lock.  [Node.renumber], the only
   operation that changes ids, gives the root a fresh nid, so a stale
   shred can never be looked up again; stale entries are purged on
   publish.  The build walk verifies strictly consecutive preorder ids
   and refuses validated (type-annotated) trees, whose typed values
   the untyped column encoding cannot represent; such roots are
   recorded [Unshreddable] so they are not re-walked per query. *)

open Xqc_xml
module Obs = Xqc_obs.Obs
module R = Rel_algebra

let c_shreds = Obs.global_counter "rel_shreds"
let c_shred_nodes = Obs.global_counter "rel_shred_nodes"

(* Kind codes of the [kinds] column. *)
let k_document = 0
let k_element = 1
let k_attribute = 2
let k_text = 3
let k_comment = 4
let k_pi = 5

type t = {
  root : Node.t;
  base : int;  (** root nid at build *)
  n : int;
  pres : int array;
      (** row -> preorder nid, strictly ascending.  On gap-numbered
          (updatable) trees the ids are not consecutive, so node->row is
          a binary search over this column rather than [nid - base]. *)
  nodes : Node.t array;  (** row -> node (the bridge back to items) *)
  sizes : int array;  (** subtree node count, self included *)
  levels : int array;
  kinds : int array;
  parents : int array;  (** parent row, -1 for the root *)
  qids : int array;  (** qname dictionary id, -1 when unnamed *)
  vids : int array;  (** value dictionary id of the string value *)
  qnames : string array;
  values : string array;
  elem_rows : int array array;  (** qid -> element rows, ascending *)
  attr_rows : int array array;  (** qid -> attribute rows, ascending *)
  all_elems : int array;  (** every element row, ascending *)
}

type entry = Shredded of t | Unshreddable of Node.t

exception Not_shreddable

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

type dict = { tbl : (string, int) Hashtbl.t; mutable rev : string list; mutable next : int }

let dict_make () = { tbl = Hashtbl.create 64; rev = []; next = 0 }

let dict_id (d : dict) (s : string) : int =
  match Hashtbl.find_opt d.tbl s with
  | Some i -> i
  | None ->
      let i = d.next in
      Hashtbl.add d.tbl s i;
      d.rev <- s :: d.rev;
      d.next <- i + 1;
      i

let dict_array (d : dict) : string array =
  let a = Array.make d.next "" in
  List.iteri (fun i s -> a.(d.next - 1 - i) <- s) d.rev;
  a

let build (root : Node.t) : entry =
  let total = Node.count_nodes root in
  if total = 0 then Unshreddable root
  else
    let base = root.Node.nid in
    let pres = Array.make total 0 in
    let nodes = Array.make total root in
    let sizes = Array.make total 0 in
    let levels = Array.make total 0 in
    let kinds = Array.make total 0 in
    let parents = Array.make total (-1) in
    let qids = Array.make total (-1) in
    let vids = Array.make total (-1) in
    let qdict = dict_make () and vdict = dict_make () in
    let elem_acc : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let attr_acc : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let all_elems = ref [] in
    let push tbl qid row =
      match Hashtbl.find_opt tbl qid with
      | Some l -> l := row :: !l
      | None -> Hashtbl.add tbl qid (ref [ row ])
    in
    let count = ref 0 in
    let last = ref (base - 1) in
    let rec go level parent_row (nd : Node.t) =
      let row = !count in
      (* the encoding requires strictly ascending preorder ids (gaps are
         fine — gap-numbered updatable trees shred too; node->row then
         binary-searches the [pres] column) *)
      if row >= total || nd.Node.nid <= !last then raise Not_shreddable;
      last := nd.Node.nid;
      if Node.type_annotation nd <> None then raise Not_shreddable;
      incr count;
      pres.(row) <- nd.Node.nid;
      nodes.(row) <- nd;
      levels.(row) <- level;
      parents.(row) <- parent_row;
      (match nd.Node.desc with
      | Node.Document _ ->
          kinds.(row) <- k_document;
          vids.(row) <- dict_id vdict (Node.string_value nd)
      | Node.Element { ename; _ } ->
          kinds.(row) <- k_element;
          let q = dict_id qdict ename in
          qids.(row) <- q;
          vids.(row) <- dict_id vdict (Node.string_value nd);
          push elem_acc q row;
          all_elems := row :: !all_elems
      | Node.Attribute { aname; avalue; _ } ->
          kinds.(row) <- k_attribute;
          let q = dict_id qdict aname in
          qids.(row) <- q;
          vids.(row) <- dict_id vdict avalue;
          push attr_acc q row
      | Node.Text s ->
          kinds.(row) <- k_text;
          vids.(row) <- dict_id vdict s
      | Node.Comment s ->
          kinds.(row) <- k_comment;
          vids.(row) <- dict_id vdict s
      | Node.Pi { target; pdata } ->
          kinds.(row) <- k_pi;
          qids.(row) <- dict_id qdict target;
          vids.(row) <- dict_id vdict pdata);
      List.iter (go (level + 1) row) (Node.attributes nd);
      List.iter (go (level + 1) row) (Node.children nd);
      sizes.(row) <- !count - row
    in
    match go 0 (-1) root with
    | exception Not_shreddable -> Unshreddable root
    | () ->
        if !count <> total then Unshreddable root
        else begin
          let rows_of tbl =
            let a = Array.make qdict.next [||] in
            Hashtbl.iter
              (fun qid l -> a.(qid) <- Array.of_list (List.rev !l))
              tbl;
            a
          in
          Obs.incr_counter c_shreds;
          Obs.add_counter c_shred_nodes total;
          Shredded
            {
              root;
              base;
              n = total;
              pres;
              nodes;
              sizes;
              levels;
              kinds;
              parents;
              qids;
              vids;
              qnames = dict_array qdict;
              values = dict_array vdict;
              elem_rows = rows_of elem_acc;
              attr_rows = rows_of attr_acc;
              all_elems = Array.of_list (List.rev !all_elems);
            }
        end

(* ------------------------------------------------------------------ *)
(* Cache (the Store publication protocol)                              *)
(* ------------------------------------------------------------------ *)

let lock = Obs.tmutex "shred_publish"

module IntMap = Map.Make (Int)

let snapshot : entry IntMap.t Stdlib.Atomic.t = Stdlib.Atomic.make IntMap.empty

let entry_root = function Shredded s -> s.root | Unshreddable r -> r

let cache_size () = IntMap.cardinal (Stdlib.Atomic.get snapshot)

let clear () =
  Obs.with_lock lock (fun () -> Stdlib.Atomic.set snapshot IntMap.empty)

let purge_stale (m : entry IntMap.t) : entry IntMap.t =
  IntMap.filter (fun key e -> (entry_root e).Node.nid = key) m

let live_entry key e = if (entry_root e).Node.nid = key then Some e else None

let entry_for (root : Node.t) : entry =
  let key = root.Node.nid in
  match
    Option.bind (IntMap.find_opt key (Stdlib.Atomic.get snapshot)) (live_entry key)
  with
  | Some e -> e
  | None ->
      (* build outside the lock (idempotent; a racing loser's publish is
         a harmless overwrite), publish under it *)
      let e = build root in
      Obs.with_lock lock (fun () ->
          let m = Stdlib.Atomic.get snapshot in
          match Option.bind (IntMap.find_opt key m) (live_entry key) with
          | Some winner -> winner
          | None ->
              Stdlib.Atomic.set snapshot (IntMap.add key e (purge_stale m));
              e)

let of_root (root : Node.t) : t option =
  match entry_for root with Shredded s -> Some s | Unshreddable _ -> None

(* First index in [arr] with value >= v (arr ascending). *)
let lower_bound (arr : int array) (v : int) : int =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

(* The node's row in [sh], by binary search over the preorder column,
   verified by physical identity.  [None] for nodes the shred has never
   seen (stale caches, foreign trees). *)
let row_of (sh : t) (n : Node.t) : int option =
  let row = lower_bound sh.pres n.Node.nid in
  if row < sh.n && sh.nodes.(row) == n then Some row else None

(* Locate an arbitrary node inside its root's shred. *)
let find (n : Node.t) : (t * int) option =
  match of_root (Node.root n) with
  | None -> None
  | Some sh -> (
      match row_of sh n with Some row -> Some (sh, row) | None -> None)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let value (sh : t) (row : int) : string =
  let v = sh.vids.(row) in
  if v < 0 then "" else sh.values.(v)

let atom (sh : t) (row : int) : Atomic.t = Atomic.Untyped (value sh row)

let qid_of_name (sh : t) (name : string) : int option =
  (* the dictionary is small; scan once per plan operator evaluation *)
  let n = Array.length sh.qnames in
  let rec go i =
    if i >= n then None
    else if String.equal sh.qnames.(i) name then Some i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Navigation                                                          *)
(* ------------------------------------------------------------------ *)

(* Rows of [arr] inside [lo, hi) appended to [acc] in ascending order. *)
let range_rows (arr : int array) (lo : int) (hi : int) : int list =
  let i0 = lower_bound arr lo in
  let rec go i acc = if i < i0 then acc else go (i - 1) (arr.(i) :: acc) in
  let rec last i = if i < Array.length arr && arr.(i) < hi then last (i + 1) else i in
  go (last i0 - 1) []

let attrs_of (sh : t) (r : int) : int list =
  if sh.kinds.(r) <> k_element then []
  else begin
    let stop = r + sh.sizes.(r) in
    let rec go i acc =
      if i < stop && sh.kinds.(i) = k_attribute then go (i + 1) (i :: acc)
      else List.rev acc
    in
    go (r + 1) []
  end

let children_of (sh : t) (r : int) : int list =
  if sh.kinds.(r) <> k_element && sh.kinds.(r) <> k_document then []
  else begin
    let stop = r + sh.sizes.(r) in
    (* attributes come first in preorder; skip them, then hop siblings
       by subtree size *)
    let rec skip_attrs i =
      if i < stop && sh.kinds.(i) = k_attribute then skip_attrs (i + 1) else i
    in
    let rec go i acc =
      if i >= stop then List.rev acc else go (i + sh.sizes.(i)) (i :: acc)
    in
    go (skip_attrs (r + 1)) []
  end

let step_rows (sh : t) (s : R.rstep) (r : int) : int list =
  match (s.R.ra, s.R.rt) with
  | R.RChild, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q ->
          List.filter
            (fun c -> sh.kinds.(c) = k_element && sh.qids.(c) = q)
            (children_of sh r))
  | R.RChild, R.RStar ->
      List.filter (fun c -> sh.kinds.(c) = k_element) (children_of sh r)
  | R.RAttr, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> List.filter (fun a -> sh.qids.(a) = q) (attrs_of sh r))
  | R.RAttr, R.RStar -> attrs_of sh r
  | R.RDesc, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> range_rows sh.elem_rows.(q) (r + 1) (r + sh.sizes.(r)))
  | R.RDesc, R.RStar -> range_rows sh.all_elems (r + 1) (r + sh.sizes.(r))
  | R.RDescSelf, R.RName nm -> (
      match qid_of_name sh nm with
      | None -> []
      | Some q -> range_rows sh.elem_rows.(q) r (r + sh.sizes.(r)))
  | R.RDescSelf, R.RStar -> range_rows sh.all_elems r (r + sh.sizes.(r))

(* Apply a whole path from one row.  Each step's output over ascending
   disjoint inputs is ascending by construction for the downward axes,
   but nested descendant inputs can interleave — close with a cheap
   sort_uniq exactly like the native tree_join closes with
   sort_doc_order (already-sorted inputs cost one comparison pass). *)
let path_rows (sh : t) (path : R.rpath) (r : int) : int list =
  List.fold_left
    (fun rows s ->
      match rows with
      | [] -> []
      | [ one ] -> step_rows sh s one
      | many -> List.sort_uniq compare (List.concat_map (step_rows sh s) many))
    [ r ] path

(* ------------------------------------------------------------------ *)
(* Rebuild (round-trip testing)                                        *)
(* ------------------------------------------------------------------ *)

(* Reconstruct a fresh tree from the columns alone — [nodes] is not
   consulted — so tests can check the shred captured the document. *)
let rebuild (sh : t) : Node.t =
  let kids = Array.make sh.n [] in
  for r = sh.n - 1 downto 1 do
    kids.(sh.parents.(r)) <- r :: kids.(sh.parents.(r))
  done;
  let name r = sh.qnames.(sh.qids.(r)) in
  let rec make r : Node.t =
    let k = sh.kinds.(r) in
    if k = k_element then begin
      let attrs, children =
        List.partition (fun c -> sh.kinds.(c) = k_attribute) kids.(r)
      in
      Node.element (name r) ~attrs:(List.map make attrs)
        ~children:(List.map make children)
    end
    else if k = k_document then Node.document (List.map make kids.(r))
    else if k = k_attribute then Node.attribute (name r) (value sh r)
    else if k = k_text then Node.text (value sh r)
    else if k = k_comment then Node.comment (value sh r)
    else Node.pi (name r) (value sh r)
  in
  let t = make 0 in
  Node.renumber t;
  t

(* ------------------------------------------------------------------ *)
(* Incremental maintenance (the update subsystem)                      *)
(* ------------------------------------------------------------------ *)

(* The update path patches columns instead of re-shredding: an inserted
   or deleted subtree is a contiguous row range (preorder), so every
   column is an array splice plus a row-shift of the later buckets, and
   a value change is a dictionary append.  Patches build a fresh record
   (sharing untouched columns) and republish it under the same root key
   — the caller guarantees no reader holds the version (MVCC in-place
   path).  Anything the encoding cannot patch (unknown parent, annotated
   content) purges the entry instead; the next relational query
   re-shreds lazily.

   The value dictionary is append-only under patching: stale entries and
   duplicates are harmless because vids are only ever dereferenced, never
   compared. *)

let live (root : Node.t) : t option =
  match IntMap.find_opt root.Node.nid (Stdlib.Atomic.get snapshot) with
  | Some (Shredded s) when s.root == root -> Some s
  | _ -> None

let purge_nid (nid : int) : unit =
  Obs.with_lock lock (fun () ->
      let m = Stdlib.Atomic.get snapshot in
      if IntMap.mem nid m then Stdlib.Atomic.set snapshot (IntMap.remove nid m))

let purge_root (root : Node.t) : unit = purge_nid root.Node.nid

let republish (s : t) : unit =
  Obs.with_lock lock (fun () ->
      Stdlib.Atomic.set snapshot
        (IntMap.add s.root.Node.nid (Shredded s)
           (purge_stale (Stdlib.Atomic.get snapshot))))

exception Unpatchable

let splice (arr : 'a array) (at : int) (add : 'a array) : 'a array =
  Array.concat
    [ Array.sub arr 0 at; add; Array.sub arr at (Array.length arr - at) ]

let drop_range (arr : 'a array) (at : int) (k : int) : 'a array =
  Array.append (Array.sub arr 0 at) (Array.sub arr (at + k) (Array.length arr - at - k))

(* Splice the contiguous ascending run [add] into ascending [arr]
   (run disjoint from every existing entry). *)
let splice_sorted (arr : int array) (add : int array) : int array =
  if Array.length add = 0 then arr else splice arr (lower_bound arr add.(0)) add

(* Walk up the parent column accumulating [row] and its ancestor rows. *)
let ancestor_rows (parents : int array) (row : int) : int list =
  let rec up a acc = if a < 0 then List.rev acc else up parents.(a) (a :: acc) in
  List.rev (up row [])

(* Append-only dictionary growth for one patch. *)
type growth = { mutable gnew : string list; mutable gnext : int }

let grower (base : string array) = { gnew = []; gnext = Array.length base }

let gadd (g : growth) (s : string) : int =
  g.gnew <- s :: g.gnew;
  g.gnext <- g.gnext + 1;
  g.gnext - 1

let gfreeze (g : growth) (base : string array) : string array =
  Array.append base (Array.of_list (List.rev g.gnew))

(* Re-derive the string values of [row] and every ancestor (text content
   below them changed) into fresh vid entries.  [vids] is the already
   fresh (copied/spliced) column, mutated in place before publish. *)
let refresh_ancestor_values (vg : growth) (nodes : Node.t array)
    (parents : int array) (vids : int array) (row : int) : unit =
  List.iter
    (fun a -> vids.(a) <- gadd vg (Node.string_value nodes.(a)))
    (ancestor_rows parents row)

(* [sub] was just placed (ids assigned, tree spliced) under [root]. *)
let patch_insert (root : Node.t) (sub : Node.t) : bool =
  match live root with
  | None -> false
  | Some sh -> (
      match
        let k = Node.count_nodes sub in
        let r = lower_bound sh.pres sub.Node.nid in
        (* the whole inserted interval must be new to the shred *)
        if r = 0 || (r < sh.n && sh.pres.(r) < Node.interval_end sub) then
          raise Unpatchable;
        let parent_row =
          match Node.parent sub with
          | None -> raise Unpatchable
          | Some p -> (
              match row_of sh p with Some pr -> pr | None -> raise Unpatchable)
        in
        let tpres = Array.make k 0 in
        let tnodes = Array.make k sub in
        let tsizes = Array.make k 0 in
        let tlevels = Array.make k 0 in
        let tkinds = Array.make k 0 in
        let tparents = Array.make k (-1) in
        let tqids = Array.make k (-1) in
        let tvids = Array.make k (-1) in
        let qtbl : (string, int) Hashtbl.t =
          Hashtbl.create (Array.length sh.qnames)
        in
        Array.iteri (fun i s -> Hashtbl.replace qtbl s i) sh.qnames;
        let qg = grower sh.qnames and vg = grower sh.values in
        let qid_of s =
          match Hashtbl.find_opt qtbl s with
          | Some i -> i
          | None ->
              let i = gadd qg s in
              Hashtbl.add qtbl s i;
              i
        in
        let elem_new : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let attr_new : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
        let all_new = ref [] in
        let push tbl qid row =
          match Hashtbl.find_opt tbl qid with
          | Some l -> l := row :: !l
          | None -> Hashtbl.add tbl qid (ref [ row ])
        in
        let c = ref 0 in
        let rec go level pl (nd : Node.t) =
          if Node.type_annotation nd <> None then raise Unpatchable;
          let i = !c in
          incr c;
          tpres.(i) <- nd.Node.nid;
          tnodes.(i) <- nd;
          tlevels.(i) <- level;
          tparents.(i) <- pl;
          (match nd.Node.desc with
          | Node.Document _ ->
              tkinds.(i) <- k_document;
              tvids.(i) <- gadd vg (Node.string_value nd)
          | Node.Element { ename; _ } ->
              tkinds.(i) <- k_element;
              tqids.(i) <- qid_of ename;
              tvids.(i) <- gadd vg (Node.string_value nd);
              push elem_new tqids.(i) (r + i);
              all_new := r + i :: !all_new
          | Node.Attribute { aname; avalue; _ } ->
              tkinds.(i) <- k_attribute;
              tqids.(i) <- qid_of aname;
              tvids.(i) <- gadd vg avalue;
              push attr_new tqids.(i) (r + i)
          | Node.Text s ->
              tkinds.(i) <- k_text;
              tvids.(i) <- gadd vg s
          | Node.Comment s ->
              tkinds.(i) <- k_comment;
              tvids.(i) <- gadd vg s
          | Node.Pi { target; pdata } ->
              tkinds.(i) <- k_pi;
              tqids.(i) <- qid_of target;
              tvids.(i) <- gadd vg pdata);
          List.iter (go (level + 1) i) (Node.attributes nd);
          List.iter (go (level + 1) i) (Node.children nd);
          tsizes.(i) <- !c - i
        in
        go (sh.levels.(parent_row) + 1) (-1) sub;
        let shift v = if v >= r then v + k else v in
        let pres = splice sh.pres r tpres in
        let nodes = splice sh.nodes r tnodes in
        let levels = splice sh.levels r tlevels in
        let kinds = splice sh.kinds r tkinds in
        let qids = splice sh.qids r tqids in
        let parents =
          splice
            (Array.map shift sh.parents)
            r
            (Array.map (fun pl -> if pl < 0 then parent_row else r + pl) tparents)
        in
        let sizes = splice sh.sizes r tsizes in
        (* the inserted subtree grows every ancestor's subtree *)
        let rec grow a = if a >= 0 then (sizes.(a) <- sizes.(a) + k; grow parents.(a)) in
        grow parent_row;
        let vids = splice sh.vids r tvids in
        refresh_ancestor_values vg nodes parents vids parent_row;
        let shift_bucket arr = Array.map shift arr in
        let bucket_of old tbl =
          let out = Array.make qg.gnext [||] in
          Array.iteri (fun q rows -> out.(q) <- shift_bucket rows) old;
          Hashtbl.iter
            (fun q l ->
              out.(q) <- splice_sorted out.(q) (Array.of_list (List.rev !l)))
            tbl;
          out
        in
        {
          sh with
          n = sh.n + k;
          pres;
          nodes;
          sizes;
          levels;
          kinds;
          parents;
          qids;
          vids;
          qnames = gfreeze qg sh.qnames;
          values = gfreeze vg sh.values;
          elem_rows = bucket_of sh.elem_rows elem_new;
          attr_rows = bucket_of sh.attr_rows attr_new;
          all_elems =
            splice_sorted (shift_bucket sh.all_elems)
              (Array.of_list (List.rev !all_new));
        }
      with
      | sh' ->
          republish sh';
          true
      | exception Unpatchable ->
          purge_root root;
          false)

(* [sub] is being detached from [root] (old ids intact). *)
let patch_delete (root : Node.t) (sub : Node.t) : bool =
  match live root with
  | None -> false
  | Some sh -> (
      match row_of sh sub with
      | None ->
          purge_root root;
          false
      | Some r ->
          let k = sh.sizes.(r) in
          let parent_row = sh.parents.(r) in
          let shift v = if v >= r + k then v - k else v in
          let drop arr = drop_range arr r k in
          let parents = Array.map shift (drop sh.parents) in
          let sizes = drop sh.sizes in
          let rec shrink a =
            if a >= 0 then (sizes.(a) <- sizes.(a) - k; shrink parents.(a))
          in
          shrink parent_row;
          let nodes = drop sh.nodes in
          let vids = drop sh.vids in
          let vg = grower sh.values in
          (match parent_row with
          | -1 -> ()
          | pr -> refresh_ancestor_values vg nodes parents vids pr);
          let prune_bucket arr =
            Array.of_list
              (List.filter_map
                 (fun v -> if v >= r && v < r + k then None else Some (shift v))
                 (Array.to_list arr))
          in
          republish
            {
              sh with
              n = sh.n - k;
              pres = drop sh.pres;
              nodes;
              sizes;
              levels = drop sh.levels;
              kinds = drop sh.kinds;
              parents;
              qids = drop sh.qids;
              vids;
              values = gfreeze vg sh.values;
              elem_rows = Array.map prune_bucket sh.elem_rows;
              attr_rows = Array.map prune_bucket sh.attr_rows;
              all_elems = prune_bucket sh.all_elems;
            };
          true)

(* [nd] was renamed in place (same nid, same row). *)
let patch_rename (root : Node.t) (nd : Node.t) : bool =
  match live root with
  | None -> false
  | Some sh -> (
      match (row_of sh nd, Node.name nd) with
      | Some r, Some new_name ->
          let old_q = sh.qids.(r) in
          let qg = grower sh.qnames in
          let new_q =
            let rec scan i =
              if i >= Array.length sh.qnames then gadd qg new_name
              else if String.equal sh.qnames.(i) new_name then i
              else scan (i + 1)
            in
            scan 0
          in
          let qids = Array.copy sh.qids in
          qids.(r) <- new_q;
          let move buckets =
            let out = Array.make qg.gnext [||] in
            Array.blit buckets 0 out 0 (Array.length buckets);
            if old_q >= 0 then
              out.(old_q) <-
                Array.of_list
                  (List.filter (fun v -> v <> r) (Array.to_list out.(old_q)));
            out.(new_q) <- splice_sorted out.(new_q) [| r |];
            out
          in
          let elem_rows, attr_rows =
            match nd.Node.desc with
            | Node.Element _ -> (move sh.elem_rows, sh.attr_rows)
            | Node.Attribute _ -> (sh.elem_rows, move sh.attr_rows)
            | _ ->
                (* pi rename touches only the qname column *)
                ( (if qg.gnext > Array.length sh.elem_rows then
                     Array.append sh.elem_rows
                       (Array.make (qg.gnext - Array.length sh.elem_rows) [||])
                   else sh.elem_rows),
                  sh.attr_rows )
          in
          let attr_rows =
            if Array.length attr_rows < qg.gnext then
              Array.append attr_rows
                (Array.make (qg.gnext - Array.length attr_rows) [||])
            else attr_rows
          in
          let elem_rows =
            if Array.length elem_rows < qg.gnext then
              Array.append elem_rows
                (Array.make (qg.gnext - Array.length elem_rows) [||])
            else elem_rows
          in
          republish
            { sh with qids; qnames = gfreeze qg sh.qnames; elem_rows; attr_rows };
          true
      | _ ->
          purge_root root;
          false)

(* [nd]'s own string value changed in place (text node, attribute,
   comment or pi payload): fresh vid for the row and its ancestors. *)
let patch_value (root : Node.t) (nd : Node.t) : bool =
  match live root with
  | None -> false
  | Some sh -> (
      match row_of sh nd with
      | None ->
          purge_root root;
          false
      | Some r ->
          let vg = grower sh.values in
          let vids = Array.copy sh.vids in
          refresh_ancestor_values vg sh.nodes sh.parents vids r;
          republish { sh with vids; values = gfreeze vg sh.values };
          true)
