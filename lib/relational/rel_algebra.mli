(** The relational algebra of the offload backend: the operator set the
    lowering ({!Lower} in [xqc_rel_lower]) targets, executed over
    shredded documents by {!Rel_exec} or rendered as SQL by {!Rel_sql}.

    The operators mirror the exact sequence semantics of the native
    evaluator (left-major join order, matches in inner input order with
    existential de-duplication, first-occurrence group order, stable
    sorts), so either backend yields byte-identical results. *)

module Promotion = Xqc_types.Promotion

(** Backend selection knob ([--backend] / [XQC_BACKEND]): [Native]
    never offloads, [Rel] offloads every lowerable subplan, [Auto]
    offloads join/group subplans the cost model judges heavy enough. *)
type backend = Native | Rel | Auto

val backend : backend ref
val backend_of_string : string -> backend option
val backend_name : backend -> string

val auto_cost_threshold : float ref
(** Estimated native cost above which [Auto] offloads when index
    statistics exist (optimistic without statistics). *)

type col = string

type raxis = RChild | RDesc | RDescSelf | RAttr
type rtest = RName of string | RStar
type rstep = { ra : raxis; rt : rtest }
type rpath = rstep list

type key = { k_src : col; k_path : rpath }
type operand = OKey of key | OLit of Xqc_xml.Atomic.t
type rpred = { rp_op : Promotion.cmp_op; rp_left : operand; rp_right : operand }
type rsort = { rs_key : key; rs_desc : bool; rs_empty_greatest : bool }

type plan =
  | RScan of { param : string; path : rpath; out : col }
  | RRowNum of { out : col; input : plan }
  | RSelect of { pred : rpred; input : plan }
  | RJoin of {
      null_flag : col option;
      op : Promotion.cmp_op;
      left_key : key;
      right_key : key;
      left : plan;
      right : plan;
    }
  | RGroup of {
      agg_out : col;
      indices : col list;
      nulls : col list;
      part : col;
      input : plan;
    }
  | ROrder of { keys : rsort list; input : plan }

val cols : plan -> col list
(** Output columns; must agree with [Algebra.output_fields] of the
    lowered subplan — the tuple bridge relies on it. *)

val size : plan -> int
val params : plan -> string list
(** Free variables in first-use order, de-duplicated. *)

val path_to_string : rpath -> string
val key_to_string : key -> string
val pred_to_string : rpred -> string
val label : plan -> string
val to_string : plan -> string
