(* The second lowering: logical algebra -> relational algebra.

   Recognizes the table-shaped fragment of the logical algebra that
   maps onto Rel_algebra — scans of a downward navigation chain rooted
   at a free variable, row numbering, general-comparison selections,
   split-predicate joins (inner and left-outer), the XQuery group-by
   and order-by — and refuses everything else by returning None, in
   which case the planner keeps the native lowering for that subplan.

   The checks here are what make the engine's restrictions static:
   column types are tracked (node / int / bool / node-sequence) so join
   keys are guaranteed to atomize to untyped atomics, paths only
   navigate from node columns, and the null side of an outer join is
   all-node.  A final guard verifies the relational plan's column list
   equals [Algebra.output_fields] of the source subplan — the tuple
   bridge in the evaluator relies on the two layouts agreeing. *)

open Xqc_frontend
module A = Xqc_algebra.Algebra
module R = Xqc_rel.Rel_algebra
module Promotion = Xqc_types.Promotion

type ctype = TNode | TInt | TBool | TNodes
type env = (string * ctype) list

let ( let* ) = Option.bind

let step_of (axis : Ast.axis) (test : Ast.node_test) : R.rstep option =
  let* rt =
    match test with
    | Ast.Name_test "*" -> Some R.RStar
    | Ast.Name_test nm -> Some (R.RName nm)
    | Ast.Kind_test _ -> None
  in
  match axis with
  | Ast.Child -> Some { R.ra = R.RChild; rt }
  | Ast.Descendant -> Some { R.ra = R.RDesc; rt }
  | Ast.Descendant_or_self -> Some { R.ra = R.RDescSelf; rt }
  | Ast.Attribute_axis -> Some { R.ra = R.RAttr; rt }
  | _ -> None

(* The //-fusion the physical step chain also performs: a
   descendant-or-self::node() hop followed by a child step is one
   descendant step.  Without it every path written with // would keep
   an unlowerable node() kind test. *)
let rec fuse = function
  | (Ast.Descendant_or_self, Ast.Kind_test Xqc_types.Seqtype.It_node)
    :: (Ast.Child, t)
    :: rest ->
      fuse ((Ast.Descendant, t) :: rest)
  | s :: rest -> s :: fuse rest
  | [] -> []

let path_of (steps : (Ast.axis * Ast.node_test) list) : R.rpath option =
  let rec go = function
    | [] -> Some []
    | (a, t) :: rest ->
        let* s = step_of a t in
        let* r = go rest in
        Some (s :: r)
  in
  go (fuse steps)

(* A navigation chain [root/step1/step2/...], steps in application
   order. *)
let rec chain (root : A.plan -> 'a option) (p : A.plan) :
    ('a * (Ast.axis * Ast.node_test) list) option =
  match root p with
  | Some v -> Some (v, [])
  | None -> (
      match p with
      | A.TreeJoin (axis, test, inner) ->
          let* v, steps = chain root inner in
          Some (v, steps @ [ (axis, test) ])
      | _ -> None)

let var_root = function A.Var v -> Some v | _ -> None
let field_root = function A.FieldAccess f -> Some f | _ -> None

let node_typed (env : env) (f : string) : bool =
  match List.assoc_opt f env with Some (TNode | TNodes) -> true | _ -> false

(* A comparison/sort key: a field, or a downward path from a node
   field. *)
let key_of (env : env) (p : A.plan) : R.key option =
  let* f, steps = chain field_root p in
  let* path = path_of steps in
  let* _ = List.assoc_opt f env in
  match path with
  | [] -> Some { R.k_src = f; k_path = [] }
  | _ :: _ when node_typed env f -> Some { R.k_src = f; k_path = path }
  | _ -> None

(* A join key additionally has to be node-typed even without a path, so
   its atoms are untyped and the engine's string comparison is exact. *)
let join_key_of (env : env) (p : A.plan) : R.key option =
  let* k = key_of env p in
  if node_typed env k.R.k_src then Some k else None

let cmp_of = function
  | "op:general-eq" -> Some Promotion.Eq
  | "op:general-ne" -> Some Promotion.Ne
  | "op:general-lt" -> Some Promotion.Lt
  | "op:general-le" -> Some Promotion.Le
  | "op:general-gt" -> Some Promotion.Gt
  | "op:general-ge" -> Some Promotion.Ge
  | _ -> None

let operand_of (env : env) (p : A.plan) : R.operand option =
  match p with
  | A.Scalar a -> Some (R.OLit a)
  | _ ->
      let* k = key_of env p in
      Some (R.OKey k)

let pred_of (env : env) (p : A.plan) : R.rpred option =
  let p = match p with A.Call ("fn:boolean", [ inner ]) -> inner | p -> p in
  match p with
  | A.Call (name, [ l; r ]) ->
      let* op = cmp_of name in
      let* lo = operand_of env l in
      let* ro = operand_of env r in
      Some { R.rp_op = op; rp_left = lo; rp_right = ro }
  | _ -> None

let fresh (env : env) (q : string) : bool = not (List.mem_assoc q env)

let disjoint (a : env) (b : env) : bool =
  not (List.exists (fun (c, _) -> List.mem_assoc c b) a)

let rec table (p : A.plan) : (R.plan * env) option =
  match p with
  | A.MapFromItem (A.TupleConstruct [ (f, A.Input) ], src) ->
      let* v, steps = chain var_root src in
      let* path = path_of steps in
      Some (R.RScan { param = v; path; out = f }, [ (f, TNode) ])
  | A.MapIndex (q, t) | A.MapIndexStep (q, t) ->
      let* input, env = table t in
      if fresh env q then Some (R.RRowNum { out = q; input }, (q, TInt) :: env)
      else None
  | A.Select (pred, t) ->
      let* input, env = table t in
      let* rp = pred_of env pred in
      Some (R.RSelect { pred = rp; input }, env)
  | A.Join (A.Split_pred { op; left_key; right_key }, t1, t2)
    when op <> Promotion.Ne ->
      let* left, lenv = table t1 in
      let* right, renv = table t2 in
      if not (disjoint lenv renv) then None
      else
        let* lk = join_key_of lenv left_key in
        let* rk = join_key_of renv right_key in
        Some
          ( R.RJoin
              { null_flag = None; op; left_key = lk; right_key = rk; left; right },
            lenv @ renv )
  | A.LOuterJoin (q, A.Split_pred { op; left_key; right_key }, t1, t2)
    when op <> Promotion.Ne ->
      let* left, lenv = table t1 in
      let* right, renv = table t2 in
      if
        (not (disjoint lenv renv))
        || (not (fresh lenv q))
        || (not (fresh renv q))
        (* unmatched left rows null out the right side: only node
           columns have an empty-sequence encoding *)
        || List.exists (fun (_, ty) -> ty <> TNode) renv
      then None
      else
        let* lk = join_key_of lenv left_key in
        let* rk = join_key_of renv right_key in
        Some
          ( R.RJoin
              {
                null_flag = Some q;
                op;
                left_key = lk;
                right_key = rk;
                left;
                right;
              },
            (q, TBool) :: (lenv @ renv) )
  | A.GroupBy
      ( {
          A.g_agg;
          g_indices;
          g_nulls;
          g_post = A.Input;
          g_pre = A.FieldAccess f;
        },
        t ) ->
      let* input, env = table t in
      if
        (match List.assoc_opt f env with Some TNode -> false | _ -> true)
        || (not (fresh env g_agg))
        || List.exists (fun c -> not (List.mem_assoc c env)) g_indices
        || List.exists (fun c -> not (List.mem_assoc c env)) g_nulls
      then None
      else
        Some
          ( R.RGroup
              {
                agg_out = g_agg;
                indices = g_indices;
                nulls = g_nulls;
                part = f;
                input;
              },
            env @ [ (g_agg, TNodes) ] )
  | A.OrderBy (specs, t) ->
      let* input, env = table t in
      let rec keys = function
        | [] -> Some []
        | (s : A.sort_spec) :: rest ->
            let* k = key_of env s.A.skey in
            let* r = keys rest in
            Some
              ({
                 R.rs_key = k;
                 rs_desc = s.A.sdir = Ast.Descending;
                 rs_empty_greatest = s.A.sempty = Ast.Empty_greatest;
               }
              :: r)
      in
      let* ks = keys specs in
      Some (R.ROrder { keys = ks; input }, env)
  | _ -> None

(* Only offer the relational plan when its column list reproduces the
   native output layout exactly — the eval bridge compiles downstream
   operators against it. *)
let lower (p : A.plan) : R.plan option =
  let* rp, _env = table p in
  if R.cols rp = A.output_fields p then Some rp else None

(* Does the plan contain a join or group — the shapes Auto offloads? *)
let rec heavy (rp : R.plan) : bool =
  match rp with
  | R.RJoin _ | R.RGroup _ -> true
  | R.RScan _ -> false
  | R.RRowNum { input; _ } | R.RSelect { input; _ } | R.ROrder { input; _ } ->
      heavy input
