(** The in-memory columnar engine of the relational backend.

    Executes {!Rel_algebra} plans over shredded documents using flat
    int arrays — no per-row boxing — while calling the same
    [Promotion] comparison entry points as the native evaluator, so
    both backends produce byte-identical sequences (tuple order, match
    order, group order, sort stability and error behaviour included). *)

open Xqc_xml

exception Fallback of string
(** A known engine limitation (not a query error): the caller should
    rerun the subplan on the native backend.  Comparison-level dynamic
    errors ([Promotion.Type_mismatch], [Atomic.Cast_error]) escape
    as-is and should be handled the same way — the native twin
    reproduces the exact error. *)

val run :
  Rel_algebra.plan ->
  lookup:(string -> Item.sequence) ->
  Item.sequence array list
(** Evaluate the plan with free variables resolved by [lookup]; one
    tuple per result row, slots in [Rel_algebra.cols] order. *)
