(* The in-memory columnar engine of the relational backend.

   Tables are flat arrays in column order — node columns are int row
   indexes into a shred (-1 for the empty sequence), aggregate columns
   are offset/element int pairs, row numbers and null flags are int and
   bool arrays — so navigation, joins and grouping run without per-row
   boxing.  Values only materialize as atoms at comparison points,
   where the engine calls the same [Promotion] entry points as the
   native evaluator ([general_compare], [order_key],
   [compare_order_keys]) so both backends agree byte-for-byte,
   including on error behaviour.

   The engine is deliberately partial: anything outside its contract —
   parameters that are not nodes of one shreddable document, join keys
   that atomize to something other than untyped atomics, non-singleton
   order keys — raises [Fallback], and the eval bridge reruns the
   native twin of the subplan.  Comparison-level dynamic errors
   (Type_mismatch, Cast_error) are simply allowed to escape: the bridge
   treats them as a fallback too, and the twin reproduces the exact
   native error. *)

open Xqc_xml
module Promotion = Xqc_types.Promotion
module R = Rel_algebra

exception Fallback of string
(** A known engine limitation (not an error in the query): the caller
    should rerun the subplan on the native backend. *)

let fallback fmt = Printf.ksprintf (fun s -> raise (Fallback s)) fmt

type col =
  | CNode of { nsh : Shred.t; rows : int array }  (** -1 = empty *)
  | CNodes of { nsh : Shred.t; offs : int array; elems : int array }
      (** row i holds elems\[offs.(i) .. offs.(i+1)); offs has n+1 entries *)
  | CInt of int array
  | CBool of bool array

type table = { n : int; cols : (string * col) list }

(* ------------------------------------------------------------------ *)
(* Column access                                                       *)
(* ------------------------------------------------------------------ *)

let col_of (t : table) (name : string) : col =
  match List.assoc_opt name t.cols with
  | Some c -> c
  | None -> fallback "column #%s not in table" name

let items_of_col (c : col) (i : int) : Item.sequence =
  match c with
  | CNode { nsh; rows } ->
      let r = rows.(i) in
      if r < 0 then [] else [ Item.Node nsh.Shred.nodes.(r) ]
  | CNodes { nsh; offs; elems } ->
      let rec go j acc =
        if j < offs.(i) then acc
        else go (j - 1) (Item.Node nsh.Shred.nodes.(elems.(j)) :: acc)
      in
      go (offs.(i + 1) - 1) []
  | CInt a -> [ Item.Atom (Atomic.Integer a.(i)) ]
  | CBool a -> [ Item.Atom (Atomic.Boolean a.(i)) ]

(* The atoms a comparison key yields for row [i]: navigate the key path
   from the column's node(s) and read typed values off the dictionary.
   Untyped-by-construction for node columns — shreds refuse validated
   trees. *)
let key_atoms (t : table) (k : R.key) (i : int) : Atomic.t list =
  let rows_atoms nsh rows path =
    match (rows, path) with
    | [], _ -> []
    | rs, [] -> List.map (Shred.atom nsh) rs
    | [ r ], path -> List.map (Shred.atom nsh) (Shred.path_rows nsh path r)
    | rs, path ->
        List.map (Shred.atom nsh)
          (List.sort_uniq compare
             (List.concat_map (Shred.path_rows nsh path) rs))
  in
  match (col_of t k.R.k_src, k.R.k_path) with
  | CNode { nsh; rows }, path ->
      let r = rows.(i) in
      rows_atoms nsh (if r < 0 then [] else [ r ]) path
  | CNodes { nsh; offs; elems }, path ->
      let rec slice j acc =
        if j < offs.(i) then acc else slice (j - 1) (elems.(j) :: acc)
      in
      rows_atoms nsh (slice (offs.(i + 1) - 1) []) path
  | CInt a, [] -> [ Atomic.Integer a.(i) ]
  | CBool a, [] -> [ Atomic.Boolean a.(i) ]
  | (CInt _ | CBool _), _ :: _ -> fallback "path over a scalar column"

let key_items (t : table) (k : R.key) (i : int) : Item.sequence =
  List.map Item.atom (key_atoms t k i)

let operand_items (t : table) (o : R.operand) (i : int) : Item.sequence =
  match o with
  | R.OKey k -> key_items t k i
  | R.OLit a -> [ Item.Atom a ]

(* ------------------------------------------------------------------ *)
(* Row selection                                                       *)
(* ------------------------------------------------------------------ *)

let gather_col (c : col) (idx : int array) : col =
  match c with
  | CNode { nsh; rows } ->
      CNode
        { nsh; rows = Array.map (fun i -> if i < 0 then -1 else rows.(i)) idx }
  | CInt a -> CInt (Array.map (fun i -> a.(i)) idx)
  | CBool a -> CBool (Array.map (fun i -> a.(i)) idx)
  | CNodes { nsh; offs; elems } ->
      let m = Array.length idx in
      let offs' = Array.make (m + 1) 0 in
      Array.iteri
        (fun k i -> offs'.(k + 1) <- offs'.(k) + (offs.(i + 1) - offs.(i)))
        idx;
      let elems' = Array.make offs'.(m) 0 in
      Array.iteri
        (fun k i ->
          Array.blit elems offs.(i) elems' offs'.(k) (offs.(i + 1) - offs.(i)))
        idx;
      CNodes { nsh; offs = offs'; elems = elems' }

(* Select rows [idx] (-1 only legal for node columns: the null side of
   an outer join). *)
let gather (t : table) (idx : int array) : table =
  let null_ok c =
    match c with
    | CNode _ -> ()
    | _ -> fallback "outer join null over a non-node column"
  in
  let has_null = Array.exists (fun i -> i < 0) idx in
  {
    n = Array.length idx;
    cols =
      List.map
        (fun (name, c) ->
          if has_null then null_ok c;
          (name, gather_col c idx))
        t.cols;
  }

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let eval_scan ~(lookup : string -> Item.sequence) (param : string)
    (path : R.rpath) (out : R.col) : table =
  let items = lookup param in
  let located =
    List.map
      (fun it ->
        match it with
        | Item.Node nd -> (
            match Shred.find nd with
            | Some loc -> loc
            | None -> fallback "parameter $%s not shreddable" param)
        | Item.Atom _ -> fallback "parameter $%s is not a node" param)
      items
  in
  let nsh =
    match located with
    | [] -> fallback "parameter $%s is empty" param
    | (sh, _) :: rest ->
        List.iter
          (fun (sh', _) ->
            if sh' != sh then fallback "parameter $%s spans documents" param)
          rest;
        sh
  in
  let rows =
    match located with
    | [ (_, r) ] -> Shred.path_rows nsh path r
    | many ->
        List.sort_uniq compare
          (List.concat_map (fun (_, r) -> Shred.path_rows nsh path r) many)
  in
  { n = List.length rows; cols = [ (out, CNode { nsh; rows = Array.of_list rows }) ] }

let eval_select (pred : R.rpred) (t : table) : table =
  let keep = ref [] in
  for i = t.n - 1 downto 0 do
    if
      Promotion.general_compare pred.R.rp_op
        (operand_items t pred.R.rp_left i)
        (operand_items t pred.R.rp_right i)
    then keep := i :: !keep
  done;
  gather t (Array.of_list !keep)

(* Join keys must atomize to untyped atomics (node columns over
   unvalidated trees guarantee it), under which every general
   comparison is a plain string comparison — equality by hash bucket,
   order predicates existentially via per-row min/max keys. *)
let key_strings (t : table) (k : R.key) (i : int) : string list =
  List.map
    (function
      | Atomic.Untyped s -> s
      | a -> fallback "join key of type %s" (Atomic.to_string a))
    (key_atoms t k i)

let minmax (ss : string list) : (string * string) option =
  match ss with
  | [] -> None
  | s :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) s ->
             ((if s < lo then s else lo), if s > hi then s else hi))
           (s, s) rest)

let eval_join ~(null_flag : R.col option) (op : Promotion.cmp_op)
    (left_key : R.key) (right_key : R.key) (lt : table) (rt : table) : table =
  let rkeys = Array.init rt.n (fun j -> key_strings rt right_key j) in
  (* matches for one left row, ascending j (= inner input order),
     duplicate-free — the order and existential de-duplication of the
     native join emission *)
  let matches_of : string list -> int list =
    match op with
    | Promotion.Eq ->
        let buckets : (string, int list ref) Hashtbl.t =
          Hashtbl.create (max 16 rt.n)
        in
        Array.iteri
          (fun j ss ->
            List.iter
              (fun s ->
                match Hashtbl.find_opt buckets s with
                | Some l -> if List.hd !l <> j then l := j :: !l
                | None -> Hashtbl.add buckets s (ref [ j ]))
              ss)
          rkeys;
        fun ls ->
          List.sort_uniq compare
            (List.concat_map
               (fun s ->
                 match Hashtbl.find_opt buckets s with
                 | Some l -> !l
                 | None -> [])
               ls)
    | Promotion.Ne -> fallback "!= join"
    | (Promotion.Lt | Promotion.Le | Promotion.Gt | Promotion.Ge) as op ->
        (* exists l in L, r in R with l <op> r  <=>  the extreme pair
           satisfies it: sort right rows by the relevant extreme and
           binary-search the boundary per left row *)
        let extreme_r (lo, hi) =
          match op with
          | Promotion.Lt | Promotion.Le -> hi (* need max r *)
          | _ -> lo (* need min r *)
        in
        let keyed =
          Array.of_list
            (List.filter_map
               (fun j ->
                 Option.map (fun mm -> (extreme_r mm, j)) (minmax rkeys.(j)))
               (List.init rt.n Fun.id))
        in
        Array.sort compare keyed;
        let nk = Array.length keyed in
        (* first index whose key satisfies [ok] — keys ascending, [ok]
           monotone upward for Lt/Le (suffix) and we flip for Gt/Ge *)
        let suffix_from ok =
          let lo = ref 0 and hi = ref nk in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if ok (fst keyed.(mid)) then hi := mid else lo := mid + 1
          done;
          !lo
        in
        fun ls ->
          match minmax ls with
          | None -> []
          | Some (lmin, lmax) ->
              let collect lo hi =
                let rec go i acc =
                  if i < lo then acc else go (i - 1) (snd keyed.(i) :: acc)
                in
                List.sort compare (go (hi - 1) [])
              in
              (match op with
              | Promotion.Lt -> collect (suffix_from (fun r -> lmin < r)) nk
              | Promotion.Le -> collect (suffix_from (fun r -> lmin <= r)) nk
              | Promotion.Gt -> collect 0 (suffix_from (fun r -> lmax <= r))
              | Promotion.Ge -> collect 0 (suffix_from (fun r -> lmax < r))
              | _ -> assert false)
  in
  let li = ref [] and ri = ref [] and fl = ref [] in
  for i = lt.n - 1 downto 0 do
    let ls = key_strings lt left_key i in
    match (matches_of ls, null_flag) with
    | [], None -> ()
    | [], Some _ ->
        li := i :: !li;
        ri := -1 :: !ri;
        fl := true :: !fl
    | js, _ ->
        (* left-major: every match of row i before any of row i+1 *)
        let rec push = function
          | [] -> ()
          | j :: rest ->
              push rest;
              li := i :: !li;
              ri := j :: !ri;
              fl := false :: !fl
        in
        push js
  done;
  let li = Array.of_list !li and ri = Array.of_list !ri in
  let left_out = gather lt li and right_out = gather rt ri in
  let merged = { n = Array.length li; cols = left_out.cols @ right_out.cols } in
  match null_flag with
  | None -> merged
  | Some q ->
      { merged with cols = (q, CBool (Array.of_list !fl)) :: merged.cols }

let eval_group ~(agg_out : R.col) (indices : R.col list) (nulls : R.col list)
    (part : R.col) (t : table) : table =
  let part_sh, part_rows =
    match col_of t part with
    | CNode { nsh; rows } -> (nsh, rows)
    | _ -> fallback "group part #%s is not a node column" part
  in
  let null_cols = List.map (col_of t) nulls in
  let is_null i =
    List.exists (fun c -> Item.effective_boolean_value (items_of_col c i)) null_cols
  in
  (* a row's contribution to its group's aggregate: its part node, or
     nothing when any null-test field is true (or the slot is empty) *)
  let contrib i acc =
    if is_null i then acc
    else
      let r = part_rows.(i) in
      if r < 0 then acc else r :: acc
  in
  let emit (firsts : int list) (groups : int list list) : table =
    let firsts = Array.of_list firsts in
    let m = Array.length firsts in
    let offs = Array.make (m + 1) 0 in
    List.iteri (fun k g -> offs.(k + 1) <- offs.(k) + List.length g) groups;
    let elems = Array.make offs.(m) 0 in
    List.iteri (fun k g -> List.iteri (fun j r -> elems.(offs.(k) + j) <- r) g) groups;
    let base = gather t firsts in
    {
      base with
      cols =
        base.cols @ [ (agg_out, CNodes { nsh = part_sh; offs; elems }) ];
    }
  in
  match indices with
  | [] ->
      (* no grouping criteria: the whole input is one partition *)
      if t.n = 0 then emit [] []
      else
        let g = ref [] in
        for i = t.n - 1 downto 0 do
          g := contrib i !g
        done;
        emit [ 0 ] [ !g ]
  | index_cols ->
      let index_cols = List.map (col_of t) index_cols in
      let key_of i =
        String.concat "\x00"
          (List.map
             (fun c ->
               String.concat ","
                 (List.map Item.string_value (items_of_col c i)))
             index_cols)
      in
      let partitions : (string, int * int list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      for i = 0 to t.n - 1 do
        let k = key_of i in
        match Hashtbl.find_opt partitions k with
        | Some (_, g) -> g := contrib i !g
        | None ->
            Hashtbl.add partitions k (i, ref (contrib i []));
            order := k :: !order
      done;
      let keys = List.rev !order in
      emit
        (List.map (fun k -> fst (Hashtbl.find partitions k)) keys)
        (List.map (fun k -> List.rev !(snd (Hashtbl.find partitions k))) keys)

let eval_order (keys : R.rsort list) (t : table) : table =
  (* classify every key once, exactly like the native order_by; a
     non-singleton key is a dynamic error natively — fall back and let
     the twin raise it *)
  let keyed =
    List.map
      (fun (s : R.rsort) ->
        ( s,
          Array.init t.n (fun i ->
              match key_atoms t s.R.rs_key i with
              | [] -> None
              | [ a ] -> Some (Promotion.order_key a)
              | _ -> fallback "order by key is not a singleton") ))
      keys
  in
  let compare_rows i j =
    let rec go = function
      | [] -> 0
      | ((s : R.rsort), ks) :: rest ->
          let c =
            match (ks.(i), ks.(j)) with
            | None, None -> 0
            | None, Some _ -> if s.R.rs_empty_greatest then 1 else -1
            | Some _, None -> if s.R.rs_empty_greatest then -1 else 1
            | Some a, Some b -> Promotion.compare_order_keys a b
          in
          let c = if s.R.rs_desc then -c else c in
          if c <> 0 then c else go rest
    in
    go keyed
  in
  let idx = List.stable_sort compare_rows (List.init t.n Fun.id) in
  gather t (Array.of_list idx)

(* ------------------------------------------------------------------ *)
(* Plan evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let rec eval ~(lookup : string -> Item.sequence) (p : R.plan) : table =
  match p with
  | R.RScan { param; path; out } -> eval_scan ~lookup param path out
  | R.RRowNum { out; input } ->
      let t = eval ~lookup input in
      { t with cols = (out, CInt (Array.init t.n (fun i -> i + 1))) :: t.cols }
  | R.RSelect { pred; input } -> eval_select pred (eval ~lookup input)
  | R.RJoin { null_flag; op; left_key; right_key; left; right } ->
      eval_join ~null_flag op left_key right_key (eval ~lookup left)
        (eval ~lookup right)
  | R.RGroup { agg_out; indices; nulls; part; input } ->
      eval_group ~agg_out indices nulls part (eval ~lookup input)
  | R.ROrder { keys; input } -> eval_order keys (eval ~lookup input)

let run (p : R.plan) ~(lookup : string -> Item.sequence) :
    Item.sequence array list =
  let t = eval ~lookup p in
  let cols = List.map snd t.cols in
  let width = List.length cols in
  let rec rows i acc =
    if i < 0 then acc
    else begin
      let tup = Array.make width [] in
      List.iteri (fun k c -> tup.(k) <- items_of_col c i) cols;
      rows (i - 1) (tup :: acc)
    end
  in
  rows (t.n - 1) []
