(** Render a relational plan as portable SQL (SQLite dialect) over the
    shredded-document schema
    [node(pre, size, level, kind, qname_id, value_id)] +
    [qname(id, name)] + [value(id, value)], with plan parameters as
    [:p_var] placeholders.  Documentation-grade: the statement shape
    (interval-arithmetic axes, EXISTS joins, window-function row
    numbers and orderings) is what an external backend would execute;
    sequence aggregates are approximated with GROUP_CONCAT. *)

val emit : Rel_algebra.plan -> string
