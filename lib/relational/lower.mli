(** The second lowering: logical algebra -> relational algebra.

    Partial by design — [lower] recognizes the table-shaped fragment
    ({!Xqc_rel.Rel_algebra}'s operator set) and returns [None] for
    anything else, in which case the planner keeps the native lowering
    for that subplan. *)

val lower : Xqc_algebra.Algebra.plan -> Xqc_rel.Rel_algebra.plan option
(** The relational twin of a logical subplan, or [None] when the
    subplan is outside the lowerable fragment.  On success the plan's
    [Rel_algebra.cols] equal [Algebra.output_fields] of the source. *)

val heavy : Xqc_rel.Rel_algebra.plan -> bool
(** Does the plan contain a join or group — the shapes the [Auto]
    backend offloads? *)
