(* The relational algebra of the offload backend — the second lowering
   target beside the physical algebra (Ferry/Pathfinder direction).

   Plans run over *shredded* documents: columnar tables keyed by the
   pre/size interval encoding that [Node.renumber] already maintains
   (see Shred).  The operator set is deliberately small — exactly the
   table-shaped subplans of the logical algebra that the lowering
   (Lower) accepts: scans of a navigation path rooted at a free
   variable, row numbering, selections, equality/inequality joins
   (inner and left-outer with a null flag), the XQuery group-by and
   order-by.  Everything column-valued is a node (a row index into the
   shred), a machine integer or a boolean, so the in-memory engine
   (Rel_exec) works on flat int arrays; Rel_sql renders the same plan
   as portable SQLite-dialect SQL for a future external backend.

   The operators mirror the *exact* sequence semantics of the native
   evaluator — left-major join order with matches in inner input order
   and existential de-duplication, first-occurrence group order,
   stable sorts — so a plan can be executed by either backend with
   byte-identical results. *)

module Promotion = Xqc_types.Promotion

(* Which lowering the planner uses: [Native] never offloads, [Rel]
   offloads every lowerable subplan, [Auto] offloads join/group-shaped
   subplans the cost model judges heavy enough.  The XQC_BACKEND
   environment variable seeds the initial mode; --backend overrides. *)
type backend = Native | Rel | Auto

let backend_of_string s =
  match String.lowercase_ascii s with
  | "native" | "off" -> Some Native
  | "rel" | "relational" | "sql" -> Some Rel
  | "auto" -> Some Auto
  | _ -> None

let backend_name = function Native -> "native" | Rel -> "rel" | Auto -> "auto"

let backend =
  ref
    (match Option.map backend_of_string (Sys.getenv_opt "XQC_BACKEND") with
    | Some (Some b) -> b
    | _ -> Native)

(* Estimated native cost above which [Auto] offloads a join/group
   subplan when index statistics exist (without statistics Auto is
   optimistic, like the planner's partitioning gate). *)
let auto_cost_threshold = ref 500.

type col = string
(** Column names are the logical algebra's tuple field names. *)

(* Navigation steps over the shred: the downward axes the interval
   encoding answers with range arithmetic.  [RStar] is the element
   wildcard. *)
type raxis = RChild | RDesc | RDescSelf | RAttr
type rtest = RName of string | RStar
type rstep = { ra : raxis; rt : rtest }
type rpath = rstep list

type key = { k_src : col; k_path : rpath }
(** A comparison key: navigate [k_path] from the node(s) in column
    [k_src] and atomize.  An empty path reads the column itself. *)

(* One predicate operand: a key or a literal from the query text. *)
type operand = OKey of key | OLit of Xqc_xml.Atomic.t

type rpred = { rp_op : Promotion.cmp_op; rp_left : operand; rp_right : operand }

(* One order-by key with its direction and empty-sequence placement. *)
type rsort = { rs_key : key; rs_desc : bool; rs_empty_greatest : bool }

type plan =
  | RScan of { param : string; path : rpath; out : col }
      (** one row per node reached by [path] from the single node bound
          to the free variable [param], in document order *)
  | RRowNum of { out : col; input : plan }
      (** prepend a column of consecutive 1-based row numbers
          (MapIndex/MapIndexStep) *)
  | RSelect of { pred : rpred; input : plan }
      (** keep rows satisfying the existential general comparison *)
  | RJoin of {
      null_flag : col option;  (** [Some q]: left outer join, flag q *)
      op : Promotion.cmp_op;
      left_key : key;
      right_key : key;
      left : plan;
      right : plan;
    }
  | RGroup of {
      agg_out : col;
      indices : col list;
      nulls : col list;
      part : col;  (** the node column each non-null row contributes *)
      input : plan;
    }
  | ROrder of { keys : rsort list; input : plan }

(* Output columns, mirroring [Algebra.output_fields] on the source
   subplan — the bridge back into the tuple pipeline relies on the two
   layouts agreeing. *)
let rec cols (p : plan) : col list =
  match p with
  | RScan { out; _ } -> [ out ]
  | RRowNum { out; input } -> out :: cols input
  | RSelect { input; _ } -> cols input
  | RJoin { null_flag; left; right; _ } -> (
      let merged = cols left @ cols right in
      match null_flag with Some q -> q :: merged | None -> merged)
  | RGroup { agg_out; input; _ } -> cols input @ [ agg_out ]
  | ROrder { input; _ } -> cols input

let rec size (p : plan) : int =
  match p with
  | RScan _ -> 1
  | RRowNum { input; _ } | RSelect { input; _ } | RGroup { input; _ }
  | ROrder { input; _ } ->
      1 + size input
  | RJoin { left; right; _ } -> 1 + size left + size right

(* Free variables, in first-use order, de-duplicated. *)
let params (p : plan) : string list =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let rec go = function
    | RScan { param; _ } ->
        if not (Hashtbl.mem seen param) then begin
          Hashtbl.add seen param ();
          out := param :: !out
        end
    | RRowNum { input; _ } | RSelect { input; _ } | RGroup { input; _ }
    | ROrder { input; _ } ->
        go input
    | RJoin { left; right; _ } ->
        go left;
        go right
  in
  go p;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Rendering (explain)                                                 *)
(* ------------------------------------------------------------------ *)

let axis_name = function
  | RChild -> "child"
  | RDesc -> "desc"
  | RDescSelf -> "desc-or-self"
  | RAttr -> "attr"

let step_to_string (s : rstep) =
  Printf.sprintf "%s::%s" (axis_name s.ra)
    (match s.rt with RName n -> n | RStar -> "*")

let path_to_string (p : rpath) =
  if p = [] then "." else String.concat "/" (List.map step_to_string p)

let key_to_string (k : key) =
  if k.k_path = [] then Printf.sprintf "#%s" k.k_src
  else Printf.sprintf "#%s/%s" k.k_src (path_to_string k.k_path)

let operand_to_string = function
  | OKey k -> key_to_string k
  | OLit a -> Printf.sprintf "%S" (Xqc_xml.Atomic.to_string a)

let pred_to_string (p : rpred) =
  Printf.sprintf "%s %s %s"
    (operand_to_string p.rp_left)
    (Promotion.cmp_op_name p.rp_op)
    (operand_to_string p.rp_right)

let label (p : plan) : string =
  match p with
  | RScan { param; path; out } ->
      Printf.sprintf "RScan[$%s/%s -> %s]" param (path_to_string path) out
  | RRowNum { out; _ } -> Printf.sprintf "RRowNum[%s]" out
  | RSelect { pred; _ } -> Printf.sprintf "RSelect[%s]" (pred_to_string pred)
  | RJoin { null_flag; op; left_key; right_key; _ } ->
      Printf.sprintf "%s<%s>[%s, %s]"
        (match null_flag with
        | Some q -> Printf.sprintf "RLeftOuterJoin[%s]" q
        | None -> "RJoin")
        (Promotion.cmp_op_name op) (key_to_string left_key)
        (key_to_string right_key)
  | RGroup { agg_out; indices; nulls; part; _ } ->
      Printf.sprintf "RGroup[%s,[%s],[%s],part=%s]" agg_out
        (String.concat ";" indices) (String.concat ";" nulls) part
  | ROrder { keys; _ } ->
      Printf.sprintf "ROrder[%s]"
        (String.concat ","
           (List.map
              (fun k ->
                Printf.sprintf "%s %s" (key_to_string k.rs_key)
                  (if k.rs_desc then "desc" else "asc"))
              keys))

let to_string (p : plan) : string =
  let buf = Buffer.create 256 in
  let rec go indent p =
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_string buf (label p);
    Buffer.add_char buf '\n';
    match p with
    | RScan _ -> ()
    | RRowNum { input; _ } | RSelect { input; _ } | RGroup { input; _ }
    | ROrder { input; _ } ->
        go (indent + 2) input
    | RJoin { left; right; _ } ->
        go (indent + 2) left;
        go (indent + 2) right
  in
  go 0 p;
  Buffer.contents buf
