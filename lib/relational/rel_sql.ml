(* Render a relational plan as portable SQL (SQLite dialect) over the
   shredded-document schema, so a future external backend can be
   dropped in behind the same plan interface.

   The emitted statements assume the relational encoding Shred builds
   in memory, as three tables:

     node (pre INTEGER PRIMARY KEY, size INTEGER, level INTEGER,
           kind INTEGER,          -- 0 doc, 1 elem, 2 attr, 3 text,
                                  -- 4 comment, 5 pi
           qname_id INTEGER, value_id INTEGER)
     qname (id INTEGER PRIMARY KEY, name TEXT)
     value (id INTEGER PRIMARY KEY, value TEXT)

   There is no parent column: the downward axes are rendered with the
   pre/size interval arithmetic the columnar engine uses — child is
   interval containment plus [level = parent.level + 1], descendant is
   containment alone, attributes are containment plus level plus
   [kind = 2].  Plan parameters become named placeholders [:p_var]
   holding the pre id of the bound node.

   Each operator becomes one CTE carrying its logical columns (node
   columns as pre ids) plus explicit ordering columns, so the final
   SELECT can reproduce the engine's deterministic row order with an
   ORDER BY.  Sequence-valued aggregates have no first-class SQL
   shape; RGroup renders them as GROUP_CONCAT over the members' string
   values, which is the documented approximation of this renderer. *)

module R = Rel_algebra
module Promotion = Xqc_types.Promotion

let quote_ident (s : string) : string =
  Printf.sprintf "\"%s\"" (String.concat "\"\"" (String.split_on_char '"' s))

let quote_str (s : string) : string =
  Printf.sprintf "'%s'" (String.concat "''" (String.split_on_char '\'' s))

let placeholder (v : string) : string =
  let b = Buffer.create (String.length v + 3) in
  Buffer.add_string b ":p_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    v;
  Buffer.contents b

let op_sql = function
  | Promotion.Eq -> "="
  | Promotion.Ne -> "<>"
  | Promotion.Lt -> "<"
  | Promotion.Le -> "<="
  | Promotion.Gt -> ">"
  | Promotion.Ge -> ">="

(* Join condition of one navigation step, from node alias [p] to node
   alias [c]. *)
let step_cond ~(p : string) ~(c : string) (s : R.rstep) : string =
  let interval ge =
    Printf.sprintf "%s.pre %s %s.pre AND %s.pre < %s.pre + %s.size" c
      (if ge then ">=" else ">")
      p c p p
  in
  let shape =
    match s.R.ra with
    | R.RChild ->
        Printf.sprintf "%s AND %s.level = %s.level + 1 AND %s.kind = 1"
          (interval false) c p c
    | R.RDesc -> Printf.sprintf "%s AND %s.kind = 1" (interval false) c
    | R.RDescSelf -> Printf.sprintf "%s AND %s.kind = 1" (interval true) c
    | R.RAttr ->
        Printf.sprintf "%s AND %s.level = %s.level + 1 AND %s.kind = 2"
          (interval false) c p c
  in
  match s.R.rt with
  | R.RStar -> shape
  | R.RName nm ->
      Printf.sprintf
        "%s AND %s.qname_id = (SELECT id FROM qname WHERE name = %s)" shape c
        (quote_str nm)

(* FROM/JOIN chain navigating [path] from the node whose pre id is the
   SQL expression [src]; returns (from_clause, where_cond, last_alias).
   Aliases are [prefix0 .. prefixN]. *)
let path_chain ~(prefix : string) ~(src : string) (path : R.rpath) :
    string * string * string =
  let alias i = Printf.sprintf "%s%d" prefix i in
  let joins =
    List.mapi
      (fun i s ->
        Printf.sprintf " JOIN node %s ON %s" (alias (i + 1))
          (step_cond ~p:(alias i) ~c:(alias (i + 1)) s))
      path
  in
  ( Printf.sprintf "node %s%s" (alias 0) (String.concat "" joins),
    Printf.sprintf "%s.pre = %s" (alias 0) src,
    alias (List.length path) )

(* Correlated derived table of a key's string values (column [v]):
   navigate the path from table alias [t]'s column and read the value
   dictionary. *)
let key_values ~(t : string) ~(prefix : string) (k : R.key) : string =
  let src = Printf.sprintf "%s.%s" t (quote_ident k.R.k_src) in
  let from_, where_, last = path_chain ~prefix ~src k.R.k_path in
  Printf.sprintf
    "SELECT v.value AS v FROM %s JOIN value v ON v.id = %s.value_id WHERE %s"
    from_ last where_

let operand_values ~(t : string) ~(prefix : string) (o : R.operand) : string =
  match o with
  | R.OKey k -> key_values ~t ~prefix k
  | R.OLit a ->
      Printf.sprintf "SELECT %s AS v" (quote_str (Xqc_xml.Atomic.to_string a))

(* Existential general comparison between two operands over row
   alias(es) [tl]/[tr]. *)
let exists_pred ~(tl : string) ~(tr : string) (op : Promotion.cmp_op)
    (l : R.operand) (r : R.operand) : string =
  Printf.sprintf "EXISTS (SELECT 1 FROM (%s) lk, (%s) rk WHERE lk.v %s rk.v)"
    (operand_values ~t:tl ~prefix:"lk" l)
    (operand_values ~t:tr ~prefix:"rk" r)
    (op_sql op)

(* Scalar rendering of a key for GROUP BY / ORDER BY: node columns go
   through the value dictionary (scalar columns pass through via
   COALESCE), navigated keys take the first reached value. *)
let scalar_expr ~(t : string) (k : R.key) : string =
  if k.R.k_path = [] then
    Printf.sprintf
      "COALESCE((SELECT v.value FROM node kn JOIN value v ON v.id = kn.value_id WHERE kn.pre = %s.%s), %s.%s)"
      t (quote_ident k.R.k_src) t (quote_ident k.R.k_src)
  else
    let from_, where_, last =
      path_chain ~prefix:"kp"
        ~src:(Printf.sprintf "%s.%s" t (quote_ident k.R.k_src))
        k.R.k_path
    in
    Printf.sprintf
      "(SELECT v.value FROM %s JOIN value v ON v.id = %s.value_id WHERE %s LIMIT 1)"
      from_ last where_

(* Effective-boolean-value test of a column (group-by null tests). *)
let ebv_expr ~(t : string) (c : R.col) : string =
  Printf.sprintf "(COALESCE(%s.%s, 0) <> 0 OR %s.%s IS NOT NULL)" t
    (quote_ident c) t (quote_ident c)

(* One emitted CTE: its logical columns (SQL name = quoted logical
   name) plus [extras] — already-quoted ordering columns downstream
   operators must keep selecting.  [ords] (all already quoted) is the
   ORDER BY list reproducing engine row order, drawn from both. *)
type rel = { name : string; rcols : R.col list; ords : string list; extras : string list }

let emit (p : R.plan) : string =
  let ctes = ref [] in
  let counter = ref 0 in
  let fresh prefix =
    let i = !counter in
    incr counter;
    Printf.sprintf "%s%d" prefix i
  in
  let add_cte sql rcols ords extras =
    let name = fresh "t" in
    ctes := (name, sql) :: !ctes;
    { name; rcols; ords; extras }
  in
  let col_list ~t cols =
    List.map (fun c -> Printf.sprintf "%s.%s" t (quote_ident c)) cols
  in
  (* the full select list an operator forwards from its input *)
  let passthrough ~t (r : rel) =
    col_list ~t r.rcols @ List.map (fun o -> Printf.sprintf "%s.%s" t o) r.extras
  in
  let commas = String.concat ", " in
  let ord_list ~t (r : rel) =
    commas (List.map (fun o -> Printf.sprintf "%s.%s" t o) r.ords)
  in
  let rec go (p : R.plan) : rel =
    match p with
    | R.RScan { param; path; out } ->
        let from_, where_, last =
          path_chain ~prefix:"s" ~src:(placeholder param) path
        in
        add_cte
          (Printf.sprintf "SELECT DISTINCT %s.pre AS %s FROM %s WHERE %s" last
             (quote_ident out) from_ where_)
          [ out ]
          [ quote_ident out ]
          []
    | R.RRowNum { out; input } ->
        let i = go input in
        add_cte
          (Printf.sprintf
             "SELECT ROW_NUMBER() OVER (ORDER BY %s) AS %s, %s FROM %s t"
             (ord_list ~t:"t" i) (quote_ident out)
             (commas (passthrough ~t:"t" i))
             i.name)
          (out :: i.rcols) i.ords i.extras
    | R.RSelect { pred; input } ->
        let i = go input in
        add_cte
          (Printf.sprintf "SELECT %s FROM %s t WHERE %s"
             (commas (passthrough ~t:"t" i))
             i.name
             (exists_pred ~tl:"t" ~tr:"t" pred.R.rp_op pred.R.rp_left
                pred.R.rp_right))
          i.rcols i.ords i.extras
    | R.RJoin { null_flag; op; left_key; right_key; left; right } ->
        let l = go left and r = go right in
        let on_ =
          exists_pred ~tl:"l" ~tr:"r" op (R.OKey left_key) (R.OKey right_key)
        in
        let sel = commas (passthrough ~t:"l" l @ passthrough ~t:"r" r) in
        let rcols_lr = l.rcols @ r.rcols in
        let ords = l.ords @ r.ords and extras = l.extras @ r.extras in
        (match null_flag with
        | None ->
            add_cte
              (Printf.sprintf "SELECT %s FROM %s l JOIN %s r ON %s" sel l.name
                 r.name on_)
              rcols_lr ords extras
        | Some q ->
            let probe =
              match r.rcols with
              | c :: _ -> Printf.sprintf "r.%s" (quote_ident c)
              | [] -> "r.rowid"
            in
            add_cte
              (Printf.sprintf
                 "SELECT CASE WHEN %s IS NULL THEN 1 ELSE 0 END AS %s, %s FROM %s l LEFT JOIN %s r ON %s"
                 probe (quote_ident q) sel l.name r.name on_)
              (q :: rcols_lr) ords extras)
    | R.RGroup { agg_out; indices; nulls; part; input } ->
        let i = go input in
        let keys =
          List.map
            (fun c -> scalar_expr ~t:"t" { R.k_src = c; k_path = [] })
            indices
        in
        let not_null =
          match nulls with
          | [] -> ""
          | ns ->
              Printf.sprintf " FILTER (WHERE NOT (%s))"
                (String.concat " OR " (List.map (ebv_expr ~t:"t") ns))
        in
        let agg =
          Printf.sprintf
            "GROUP_CONCAT((SELECT v.value FROM node pn JOIN value v ON v.id = pn.value_id WHERE pn.pre = t.%s), '')%s AS %s"
            (quote_ident part) not_null (quote_ident agg_out)
        in
        let out_cols =
          List.map
            (fun c ->
              Printf.sprintf "MIN(t.%s) AS %s" (quote_ident c) (quote_ident c))
            i.rcols
        in
        (* first-occurrence group order: carry the minimum of each
           ordering column into a fresh pass-through column *)
        let ords' = List.map (fun _ -> quote_ident (fresh "ord")) i.ords in
        let min_ords =
          List.map2
            (fun o o' -> Printf.sprintf "MIN(t.%s) AS %s" o o')
            i.ords ords'
        in
        add_cte
          (Printf.sprintf "SELECT %s FROM %s t%s"
             (commas (out_cols @ [ agg ] @ min_ords))
             i.name
             (if keys = [] then "" else " GROUP BY " ^ commas keys))
          (i.rcols @ [ agg_out ])
          ords' ords'
    | R.ROrder { keys; input } ->
        let i = go input in
        let key_sql (s : R.rsort) =
          Printf.sprintf "%s %s %s"
            (scalar_expr ~t:"t" s.R.rs_key)
            (if s.R.rs_desc then "DESC" else "ASC")
            (if s.R.rs_empty_greatest then "NULLS LAST" else "NULLS FIRST")
        in
        let ord = quote_ident (fresh "ord") in
        add_cte
          (Printf.sprintf
             "SELECT %s, ROW_NUMBER() OVER (ORDER BY %s) AS %s FROM %s t"
             (commas (passthrough ~t:"t" i))
             (commas
                (List.map key_sql keys
                @ List.map (fun o -> Printf.sprintf "t.%s" o) i.ords))
             ord i.name)
          i.rcols [ ord ] [ ord ]
  in
  let top = go p in
  let withs =
    String.concat ",\n"
      (List.rev_map
         (fun (name, sql) -> Printf.sprintf "%s AS (%s)" name sql)
         !ctes)
  in
  Printf.sprintf "WITH %s\nSELECT %s FROM %s%s" withs
    (commas (col_list ~t:top.name top.rcols))
    top.name
    (if top.ords = [] then "" else " ORDER BY " ^ ord_list ~t:top.name top)
