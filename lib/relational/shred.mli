(** Document shredding: columnar relational tables over the pre/size
    interval encoding.

    One shred holds one renumbered document root as flat int columns —
    [node(pre, size, level, kind, qname_id, value_id)] plus qname and
    value dictionaries — with row [i] holding the node whose preorder
    id is [base + i].  Shreds are cached per root with the same
    invalidation keying as the structural indexes of [Xqc_store]: keyed
    by the root's nid, published through an [Atomic] snapshot, and
    never looked up again once [Node.renumber] moves the root's id. *)

open Xqc_xml

(** Kind codes of the [kinds] column. *)

val k_document : int
val k_element : int
val k_attribute : int
val k_text : int
val k_comment : int
val k_pi : int

type t = private {
  root : Node.t;
  base : int;  (** root nid at build: row i holds nid [base + i] *)
  n : int;
  nodes : Node.t array;  (** row -> node (the bridge back to items) *)
  sizes : int array;  (** subtree node count, self included *)
  levels : int array;
  kinds : int array;
  parents : int array;  (** parent row, -1 for the root *)
  qids : int array;  (** qname dictionary id, -1 when unnamed *)
  vids : int array;  (** value dictionary id of the string value *)
  qnames : string array;
  values : string array;
  elem_rows : int array array;  (** qid -> element rows, ascending *)
  attr_rows : int array array;  (** qid -> attribute rows, ascending *)
  all_elems : int array;  (** every element row, ascending *)
}

val of_root : Node.t -> t option
(** Shred for the given root, cached.  [None] when the root is not
    shreddable: ids not exactly consecutive in preorder (the tree needs
    a renumber) or type-annotated nodes present. *)

val find : Node.t -> (t * int) option
(** Shred of the node's root plus the node's row in it. *)

val value : t -> int -> string
(** The data-model string value of the row's node. *)

val atom : t -> int -> Atomic.t
(** [Atomic.Untyped (value sh row)] — typed value of an unvalidated node. *)

val step_rows : t -> Rel_algebra.rstep -> int -> int list
val path_rows : t -> Rel_algebra.rpath -> int -> int list
(** Rows reached by the path from one row, in ascending (document)
    order, duplicate-free. *)

val rebuild : t -> Node.t
(** Reconstruct a fresh renumbered tree from the columns alone (the
    [nodes] bridge is not consulted) — shred/rebuild round-trip tests. *)

val cache_size : unit -> int
val clear : unit -> unit
