(** Document shredding: columnar relational tables over the pre/size
    interval encoding.

    One shred holds one renumbered document root as flat int columns —
    [node(pre, size, level, kind, qname_id, value_id)] plus qname and
    value dictionaries — with row [i] holding the node whose preorder
    id is [base + i].  Shreds are cached per root with the same
    invalidation keying as the structural indexes of [Xqc_store]: keyed
    by the root's nid, published through an [Atomic] snapshot, and
    never looked up again once [Node.renumber] moves the root's id. *)

open Xqc_xml

(** Kind codes of the [kinds] column. *)

val k_document : int
val k_element : int
val k_attribute : int
val k_text : int
val k_comment : int
val k_pi : int

type t = private {
  root : Node.t;
  base : int;  (** root nid at build (= [pres.(0)]) *)
  n : int;
  pres : int array;
      (** row -> nid, strictly ascending.  On densely numbered trees
          this is [base + row]; on gap-numbered (updatable) trees the
          node->row bridge is a binary search over this column. *)
  nodes : Node.t array;  (** row -> node (the bridge back to items) *)
  sizes : int array;  (** subtree node count, self included *)
  levels : int array;
  kinds : int array;
  parents : int array;  (** parent row, -1 for the root *)
  qids : int array;  (** qname dictionary id, -1 when unnamed *)
  vids : int array;  (** value dictionary id of the string value *)
  qnames : string array;
  values : string array;
  elem_rows : int array array;  (** qid -> element rows, ascending *)
  attr_rows : int array array;  (** qid -> attribute rows, ascending *)
  all_elems : int array;  (** every element row, ascending *)
}

val of_root : Node.t -> t option
(** Shred for the given root, cached.  [None] when the root is not
    shreddable: ids not strictly ascending in preorder (the tree needs
    a renumber) or type-annotated nodes present. *)

val find : Node.t -> (t * int) option
(** Shred of the node's root plus the node's row in it. *)

val value : t -> int -> string
(** The data-model string value of the row's node. *)

val atom : t -> int -> Atomic.t
(** [Atomic.Untyped (value sh row)] — typed value of an unvalidated node. *)

val step_rows : t -> Rel_algebra.rstep -> int -> int list
val path_rows : t -> Rel_algebra.rpath -> int -> int list
(** Rows reached by the path from one row, in ascending (document)
    order, duplicate-free. *)

val rebuild : t -> Node.t
(** Reconstruct a fresh renumbered tree from the columns alone (the
    [nodes] bridge is not consulted) — shred/rebuild round-trip tests. *)

val cache_size : unit -> int
val clear : unit -> unit

val purge_root : Node.t -> unit
(** Drop the cached shred for this root (retired document versions,
    evicted doc caches).  Missing entries are a no-op. *)

val purge_nid : int -> unit
(** Like {!purge_root} when only the old key survives (the root has
    already been renumbered). *)

(** {1 Incremental maintenance} — the update subsystem's in-place
    column patching.  Callers guarantee exclusivity: patches run only
    on a document version with no admitted readers (the MVCC writer
    copies otherwise).  Each returns [false] — after purging the stale
    entry — when the shred cannot be patched; the next relational query
    re-shreds lazily. *)

val patch_insert : Node.t -> Node.t -> bool
(** [patch_insert root sub]: [sub] was just placed (ids assigned) under
    [root]; splice its rows into every column and name bucket. *)

val patch_delete : Node.t -> Node.t -> bool
(** [patch_delete root sub]: [sub] is being detached (old ids intact);
    drop its contiguous row range. *)

val patch_rename : Node.t -> Node.t -> bool
(** The node was renamed in place (same nid, same row): patch the qname
    column and move the row between name buckets. *)

val patch_value : Node.t -> Node.t -> bool
(** The node's own string value changed in place (text/attribute/
    comment/pi payload): fresh value-dictionary entries for the row and
    its ancestors. *)
