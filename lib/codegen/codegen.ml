(* Fused-loop compiled execution tier.

   The closure evaluator interprets a tree of [comp] closures with a
   [Seq.t] thunk per tuple: every item that flows through a
   Select/map-family pipeline costs a tuple array, a cons cell and a
   closure invocation per operator.  This module lowers the hot shapes
   of that pipeline — index-range [PSteps] scans, single-variable
   Select/MapFromItem/MapToItem loops, and the streaming aggregates
   count / exists / sum over them — into a small loop IR: a flat array
   of instructions executed by a tight bytecode interpreter over
   register batches (growable [Node.t array]s).  On the fused path no
   per-tuple closure, tuple array or [Seq] node is allocated; an
   indexed descendant step is an [Array.blit] of the store's nid-range
   slice into the destination register.

   Deciding what to fuse is planner work, executed here at
   closure-compile time: [lower] pattern-matches a physical subplan and
   either produces a complete program for it or refuses, sending the
   evaluator down the interpreted tier (OrderBy, GroupBy, constructors,
   multi-variable pipelines and everything else stay interpreted, and a
   fused segment that meets an unsupported runtime shape raises
   [Fallback] so the evaluator can splice in its lazily compiled
   interpreted twin).

   Correctness protocol.  The interpreted tier maintains the XPath
   sorted-duplicate-free closure with [Node.sort_doc_order] after every
   strict step; the fused tier instead PROVES order statically and
   sorts at most once.  [chain_shape] tracks (sorted, non-nesting)
   through a downward step chain starting from a single context node
   (guarded at run time):

     child/attribute/self over a non-nesting batch preserve sortedness,
       uniqueness and non-nesting;
     child/attribute over a possibly-nesting batch stay unique (a node
       has one parent) but may lose document order;
     descendant[-or-self] over a non-nesting batch is sorted and unique
       but may nest its output;
     descendant over a possibly-nesting batch can duplicate — refused.

   Uniqueness is required everywhere (counts would overcount); when the
   final order is not provable an [ISort] instruction restores it — by
   then the batch is provably duplicate-free, so a plain sort by nid
   equals the interpreter's sort_doc_order.  Loop pipelines
   additionally sort the loop batch itself when unprovable, matching
   the strict evaluation order of the interpreted MapFromItem. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend
module P = Xqc_algebra.Physical
module Store = Xqc_store.Store
module Obs = Xqc_obs.Obs

(* [Auto] fuses lowerable segments whose source-scan estimate clears
   [min_fuse_rows], [Force] fuses everything lowerable (tests), [Off]
   disables the tier.  The XQC_FUSE environment variable seeds the
   initial mode, mirroring XQC_INDEX. *)
type mode = Auto | Off | Force

let mode =
  ref
    (match Option.map String.lowercase_ascii (Sys.getenv_opt "XQC_FUSE") with
    | Some ("off" | "0" | "no") -> Off
    | Some ("force" | "always") -> Force
    | _ -> Auto)

let min_fuse_rows = ref 4.0

(* The compiled program met a runtime shape it does not handle (multi-
   node or atomic source, user-shadowed builtin): the evaluator catches
   this and runs the interpreted twin of the same subplan. *)
exception Fallback

let c_segments = Obs.global_counter "fused_segments"
let c_execs = Obs.global_counter "fused_execs"
let c_rows = Obs.global_counter "fused_rows"
let c_fallbacks = Obs.global_counter "fused_fallbacks"
let c_alloc_words = Obs.global_counter "fused_alloc_words"

(* ------------------------------------------------------------------ *)
(* IR                                                                  *)
(* ------------------------------------------------------------------ *)

(* A value path inside a per-node predicate: the node itself, a step
   chain from it, or a literal. *)
type vpath = VSelf | VSteps of P.pstep array | VConst of Atomic.t

type pred =
  | PExists of P.pstep array * bool  (* negated = fn:empty *)
  | PCompare of Promotion.cmp_op * vpath * vpath  (* general comparison *)

type load = LVar of string | LInput

type instr =
  | IStep of P.pstep  (* dst := step over every node of src, in order *)
  | IProbe of probe  (* dst := a collapsed step chain, one index range
                        probe + reverse parent-path checks per node *)
  | IFilter of pred  (* dst := the src nodes satisfying the predicate *)
  | ISort  (* restore document order in place (batch is duplicate-free) *)

(* A collapsed downward chain — child steps headed by one
   descendant[-or-self] step, ending in a concrete element name:
   instead of one store lookup per node per level, probe the store's
   descendant range of the FINAL name under the context node once and
   keep the candidates whose (unique) parent chain matches the
   reversed tests — pointer chasing and string equality per candidate.
   Set-equivalent to the stepwise chain: a candidate is reached
   stepwise iff its anchored reverse path matches, and the range is
   duplicate-free and document-ordered.

   Only descendant-headed chains collapse: there the interpreter must
   enumerate (a superset of) the same range anyway, so the probe is a
   strict win.  An all-child chain stays stepwise — its cost is
   proportional to the branch it actually narrows to, while a probe
   would pay for every candidate in the subtree (pathological when the
   chain is selective, e.g. one region out of six). *)
and probe = {
  pb_last : string;  (* the final child step's name — the range probed *)
  pb_rev : Ast.node_test array;
      (* parent tests, innermost first: parent^1 .. parent^(len) *)
  pb_desc : Ast.node_test * bool;
      (* the heading descendant step's test: the next parent after the
         reversed tests must match it and lie inside the context node's
         subtree (or equal it, when or-self) *)
  pb_steps : P.pstep array;
      (* the original chain, applied stepwise per node when the store
         cannot serve the range *)
}

type agg =
  | ACollect  (* the batch itself, as a node sequence *)
  | ACount
  | AExists of bool  (* negated = fn:empty *)
  | ASum  (* collected then folded by the fn:sum builtin (via env) *)

type prog = {
  fp_load : load;
  fp_body : instr array;
  fp_agg : agg;
  fp_tuple : string option;
      (* [Some q]: the segment feeds the tuple pipeline — every batch
         node becomes a single-field tuple with layout [q] *)
  fp_shadow : string list;
      (* builtin names baked into the program; a user declaration
         shadowing any of them forces the interpreted twin *)
  fp_est : float;  (* the source scan's estimated cardinality *)
}

let instr_count (p : prog) : int = 2 + Array.length p.fp_body
let tuple_field (p : prog) : string option = p.fp_tuple

(* ------------------------------------------------------------------ *)
(* Static order / uniqueness analysis                                  *)
(* ------------------------------------------------------------------ *)

type shape = { sh_sorted : bool; sh_nonnest : bool }

let single_node_shape = { sh_sorted = true; sh_nonnest = true }

let downward (s : P.pstep) : bool =
  match s.P.ps_axis with
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Attribute_axis
  | Ast.Self ->
      true
  | _ -> false

(* One step of the analysis; [None] means uniqueness is not provable
   and the chain cannot be fused for counting/collecting sinks. *)
let step_shape (sh : shape) (s : P.pstep) : shape option =
  match s.P.ps_axis with
  | Ast.Self -> Some sh
  | Ast.Child | Ast.Attribute_axis ->
      if sh.sh_nonnest then Some sh
      else Some { sh_sorted = false; sh_nonnest = false }
  | Ast.Descendant | Ast.Descendant_or_self ->
      if sh.sh_nonnest then Some { sh_sorted = sh.sh_sorted; sh_nonnest = false }
      else None
  | _ -> None

let chain_shape (steps : P.pstep list) : shape option =
  List.fold_left
    (fun acc s -> Option.bind acc (fun sh -> step_shape sh s))
    (Some single_node_shape) steps

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* A pipeline under construction: instructions in reverse order, the
   provable shape of the current batch, bookkeeping for the fuse
   decision and the explain rendering. *)
type pipe = {
  pl_load : load;
  pl_body : instr list;  (* reversed *)
  pl_shape : shape;
  pl_est : float;
  pl_shadow : string list;
}

let add_sort (pipe : pipe) : pipe =
  if pipe.pl_shape.sh_sorted then pipe
  else
    {
      pipe with
      pl_body = ISort :: pipe.pl_body;
      pl_shape = { pipe.pl_shape with sh_sorted = true };
    }

(* The item source of a loop or path segment: a variable or the
   dependent input, extended by downward step chains with provable
   uniqueness. *)
let rec lower_source (p : P.t) : pipe option =
  match p.P.pop with
  | P.PVar v ->
      Some
        {
          pl_load = LVar v;
          pl_body = [];
          pl_shape = single_node_shape;
          pl_est = p.P.pest.P.est_rows;
          pl_shadow = [];
        }
  | P.PInput ->
      Some
        {
          pl_load = LInput;
          pl_body = [];
          pl_shape = single_node_shape;
          pl_est = p.P.pest.P.est_rows;
          pl_shadow = [];
        }
  | P.PSteps { steps; input; _ } when steps <> [] && List.for_all downward steps
    -> (
      match lower_source input with
      | None -> None
      | Some pipe ->
          let rec absorb pipe sh = function
            | [] -> Some { pipe with pl_shape = sh }
            | s :: rest -> (
                match step_shape sh s with
                | None -> None
                | Some sh' ->
                    absorb
                      {
                        pipe with
                        pl_body = IStep s :: pipe.pl_body;
                        pl_est = Float.max pipe.pl_est s.P.ps_est;
                      }
                      sh' rest)
          in
          absorb pipe pipe.pl_shape steps)
  | _ -> None

let cmp_of_name = function
  | "op:general-eq" -> Some Promotion.Eq
  | "op:general-ne" -> Some Promotion.Ne
  | "op:general-lt" -> Some Promotion.Lt
  | "op:general-le" -> Some Promotion.Le
  | "op:general-gt" -> Some Promotion.Gt
  | "op:general-ge" -> Some Promotion.Ge
  | _ -> None

(* A value path over the loop variable [q].  Order and duplicates are
   irrelevant inside predicates (general comparison and emptiness are
   existential), so any downward chain qualifies. *)
let lower_vpath (q : string) (p : P.t) : vpath option =
  match p.P.pop with
  | P.PScalar a -> Some (VConst a)
  | P.PFieldAccess f when String.equal f q -> Some VSelf
  | P.PSteps { steps; input = { P.pop = P.PFieldAccess f; _ }; _ }
    when String.equal f q && steps <> [] && List.for_all downward steps ->
      Some (VSteps (Array.of_list steps))
  | _ -> None

let lower_pred (q : string) (p : P.t) : (pred * string list) option =
  match p.P.pop with
  | P.PCall (name, [ a; b ]) -> (
      match cmp_of_name name with
      | Some op -> (
          match (lower_vpath q a, lower_vpath q b) with
          | Some va, Some vb -> Some (PCompare (op, va, vb), [ name ])
          | _ -> None)
      | None -> None)
  | P.PCall (("fn:exists" | "fn:empty") as name, [ a ]) -> (
      match lower_vpath q a with
      | Some (VSteps ss) ->
          Some (PExists (ss, String.equal name "fn:empty"), [ name ])
      | _ -> None)
  | P.PCallStream (P.SExists neg, name, [ a ]) -> (
      match lower_vpath q a with
      | Some (VSteps ss) -> Some (PExists (ss, neg), [ name ])
      | _ -> None)
  | P.PSteps _ -> (
      (* bare path predicate: effective boolean value = non-emptiness *)
      match lower_vpath q p with
      | Some (VSteps ss) -> Some (PExists (ss, false), [])
      | _ -> None)
  | _ -> None

(* The single-variable tuple loop: Select* over
   MapFromItem([q := IN], source).  The loop batch must reproduce the
   strict iteration order of the interpreted MapFromItem, so an
   unprovable source order gets an ISort before any filter runs. *)
let rec lower_loop (p : P.t) : (string * pipe) option =
  match p.P.pop with
  | P.PMapFromItem
      ({ P.pop = P.PTupleConstruct [ (q, { P.pop = P.PInput; _ }) ]; _ }, src)
    -> (
      match lower_source src with
      | Some pipe -> Some (q, add_sort pipe)
      | None -> None)
  | P.PSelect (pred, input) -> (
      match lower_loop input with
      | Some (q, pipe) -> (
          match lower_pred q pred with
          | Some (pr, shadow) ->
              Some
                ( q,
                  {
                    pipe with
                    pl_body = IFilter pr :: pipe.pl_body;
                    pl_shadow = shadow @ pipe.pl_shadow;
                  } )
          | None -> None)
      | None -> None)
  | _ -> None

(* The MapToItem emission over the loop variable: the node itself or a
   step chain whose per-node output is provably sorted and unique (the
   batch-wise application then equals the per-tuple concatenation of
   the interpreted tier with no sort at all). *)
let lower_ret (q : string) (p : P.t) : instr list option =
  match p.P.pop with
  | P.PFieldAccess f when String.equal f q -> Some []
  | P.PSteps { steps; input = { P.pop = P.PFieldAccess f; _ }; _ }
    when String.equal f q && steps <> [] && List.for_all downward steps -> (
      match chain_shape steps with
      | Some sh when sh.sh_sorted ->
          Some (List.rev_map (fun s -> IStep s) steps)
      | _ -> None)
  | _ -> None

(* A complete item pipeline: either a whole FLWOR loop
   (MapToItem / Select* / MapFromItem) or a bare path.  The bare path
   carries XPath set semantics, so its final order must be restored
   when unprovable. *)
let lower_items (p : P.t) : pipe option =
  match p.P.pop with
  | P.PMapToItem (dep, input) -> (
      match lower_loop input with
      | Some (q, pipe) -> (
          match lower_ret q dep with
          | Some ret -> Some { pipe with pl_body = ret @ pipe.pl_body }
          | None -> None)
      | None -> None)
  | P.PSteps _ -> (
      match lower_source p with
      | Some pipe when pipe.pl_body <> [] -> Some (add_sort pipe)
      | _ -> None)
  | _ -> None

(* Counting and existence are insensitive to order: a trailing sort
   would be pure overhead. *)
let strip_trailing_sort (pipe : pipe) : pipe =
  match pipe.pl_body with
  | ISort :: rest -> { pipe with pl_body = rest }
  | _ -> pipe

(* ------------------------------------------------------------------ *)
(* Chain collapse                                                      *)
(* ------------------------------------------------------------------ *)

(* Rewrite runs of consecutive [IStep]s into [IProbe]s.  A run is split
   before every descendant step; each segment of length >= 2 —
   descendant[-or-self]::test followed by child steps — whose last
   step is child::name with a concrete name becomes one probe.

   Soundness needs no batch-shape reasoning: per context node the probe
   computes exactly the stepwise segment's result SET (the reverse
   parent path of a candidate is unique, so it matches the anchored
   tests iff some stepwise derivation reaches the candidate, and the
   admitted chains are duplicate-free by [step_shape]).  Only the ORDER
   can differ (per-node document order instead of level-by-level), and
   every admitted body either proved the stepwise order or carries an
   [ISort] downstream. *)
let collapse_steps (body : instr list) : instr list =
  let seg_instrs seg = List.map (fun s -> IStep s) seg in
  let probe_seg (seg : P.pstep list) : instr list =
    match List.rev seg with
    | last :: (_ :: _ as front_rev) -> (
        (* front_rev: steps k-1, k-2, ..., 1 — innermost parent first *)
        let mid_rev =
          List.filteri (fun i _ -> i < List.length front_rev - 1) front_rev
        in
        let first = List.nth front_rev (List.length front_rev - 1) in
        let mids_are_child =
          List.for_all (fun s -> s.P.ps_axis = Ast.Child) mid_rev
        in
        match (last.P.ps_axis, last.P.ps_test) with
        | Ast.Child, Ast.Name_test nm
          when (not (String.equal nm "*")) && mids_are_child -> (
            let mk desc =
              [
                IProbe
                  {
                    pb_last = nm;
                    pb_rev =
                      Array.of_list (List.map (fun s -> s.P.ps_test) mid_rev);
                    pb_desc = desc;
                    pb_steps = Array.of_list seg;
                  };
              ]
            in
            match first.P.ps_axis with
            | Ast.Descendant -> mk (first.P.ps_test, false)
            | Ast.Descendant_or_self -> mk (first.P.ps_test, true)
            | _ -> seg_instrs seg)
        | _ -> seg_instrs seg)
    | _ -> seg_instrs seg
  in
  (* split a forward run before each descendant step, probe each segment *)
  let collapse_run (run : P.pstep list) : instr list =
    let flush_seg segs seg = if seg = [] then segs else List.rev seg :: segs in
    let segs, seg =
      List.fold_left
        (fun (segs, seg) s ->
          match s.P.ps_axis with
          | Ast.Descendant | Ast.Descendant_or_self -> (flush_seg segs seg, [ s ])
          | _ -> (segs, s :: seg))
        ([], []) run
    in
    List.concat_map probe_seg (List.rev (flush_seg segs seg))
  in
  let rec go (ins : instr list) (run : P.pstep list) : instr list =
    match ins with
    | IStep s :: rest -> go rest (s :: run)
    | other :: rest -> collapse_run (List.rev run) @ (other :: go rest [])
    | [] -> collapse_run (List.rev run)
  in
  go body []

(* The fuse decision for one physical subplan.  [tab] says whether the
   consumer fully drains a tabular result — tuple-batch segments are
   only offered there, so early-terminating consumers (StreamSelect,
   quantifiers) keep their lazy cursors. *)
let lower ?(tab = false) (p : P.t) : prog option =
  if !mode = Off then None
  else
    let mk ?tuple ?(shadow = []) (pipe : pipe) (agg : agg) : prog option =
      if !mode = Auto && pipe.pl_est < !min_fuse_rows then None
      else begin
        Obs.incr_counter c_segments;
        Some
          {
            fp_load = pipe.pl_load;
            fp_body = Array.of_list (collapse_steps (List.rev pipe.pl_body));
            fp_agg = agg;
            fp_tuple = tuple;
            fp_shadow = shadow @ pipe.pl_shadow;
            fp_est = pipe.pl_est;
          }
      end
    in
    match p.P.pop with
    | P.PCall (("fn:count" | "fn:sum" | "fn:exists" | "fn:empty") as name, [ arg ])
      -> (
        let agg =
          match name with
          | "fn:count" -> ACount
          | "fn:sum" -> ASum
          | "fn:exists" -> AExists false
          | _ -> AExists true
        in
        match lower_items arg with
        | Some pipe ->
            let pipe =
              match agg with
              | ACount | AExists _ -> strip_trailing_sort pipe
              | ACollect | ASum -> pipe
            in
            mk ~shadow:[ name ] pipe agg
        | None -> None)
    | P.PMapToItem _ | P.PSteps _ -> (
        match lower_items p with Some pipe -> mk pipe ACollect | None -> None)
    | (P.PMapFromItem _ | P.PSelect _) when tab -> (
        match lower_loop p with
        | Some (q, pipe) -> mk ~tuple:q pipe ACollect
        | None -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Everything the executor needs from the runtime arrives as callbacks,
   keeping this library independent of the evaluator (which depends on
   it): variable lookup, the dependent input, deadline checks, the
   shadowing test and the fn:sum builtin. *)
type env = {
  e_schema : Schema.t;
  e_lookup : string -> Item.sequence;
  e_input : unit -> Item.sequence;
  e_shadowed : string -> bool;
  e_check : unit -> unit;
  e_sum : Item.sequence -> Item.sequence;
}

(* Register batches: growable node arrays, reused across instructions
   of one execution. *)
type buf = { mutable bn : Node.t array; mutable blen : int }

let buf_make () = { bn = [||]; blen = 0 }
let buf_clear b = b.blen <- 0

let buf_reserve b extra n0 =
  let cap = Array.length b.bn in
  if b.blen + extra > cap then begin
    let ncap = max (b.blen + extra) (max 64 (cap * 2)) in
    let a = Array.make ncap n0 in
    Array.blit b.bn 0 a 0 b.blen;
    b.bn <- a
  end

let buf_push b n =
  buf_reserve b 1 n;
  b.bn.(b.blen) <- n;
  b.blen <- b.blen + 1

let buf_append_slice b arr i j =
  let len = j - i in
  if len > 0 then begin
    buf_reserve b len arr.(i);
    Array.blit arr i b.bn b.blen len;
    b.blen <- b.blen + len
  end

(* Mirrors the interpreted tier's [test_matches]: the principal node
   kind of the attribute axis is attribute, everything else element. *)
let test_matches schema (axis : Ast.axis) (test : Ast.node_test) (n : Node.t) :
    bool =
  match test with
  | Ast.Kind_test it -> Seqtype.item_matches schema (Item.Node n) it
  | Ast.Name_test name ->
      let kind_ok =
        match axis with
        | Ast.Attribute_axis -> Node.kind n = Node.Kattribute
        | _ -> Node.kind n = Node.Kelement
      in
      kind_ok && (String.equal name "*" || Node.name n = Some name)

(* One step applied to one node, appending matches to [dst] in
   traversal (= per-node document) order.  An [Index_scan] resolves
   descendant ranges to an Array.blit of the store's slice and degrades
   to the walk when the store cannot serve the tree — exactly the
   interpreted tier's policy. *)
let apply_step ?(prefer_walk = false) env (s : P.pstep) (dst : buf) (n : Node.t)
    : unit =
  let axis = s.P.ps_axis and test = s.P.ps_test in
  let indexed =
    match (s.P.ps_impl, test) with
    (* predicate chains hop from a single node: for the sibling-local
       axes a direct scan of the (short) child/attribute list beats a
       store lookup, so skip the index there *)
    | P.Index_scan, Ast.Name_test _
      when prefer_walk && (axis = Ast.Child || axis = Ast.Attribute_axis) ->
        false
    | P.Index_scan, Ast.Name_test name -> (
        match axis with
        | Ast.Descendant -> (
            match Store.descendant_range n name with
            | Some (arr, i, j) ->
                buf_append_slice dst arr i j;
                true
            | None -> false)
        | Ast.Descendant_or_self -> (
            match Store.descendant_range ~self:true n name with
            | Some (arr, i, j) ->
                buf_append_slice dst arr i j;
                true
            | None -> false)
        | Ast.Child -> (
            match Store.children_by_name n name with
            | Some ms ->
                List.iter (buf_push dst) ms;
                true
            | None -> false)
        | Ast.Attribute_axis when not (String.equal name "*") -> (
            match Store.attributes_by_name n name with
            | Some ms ->
                List.iter (buf_push dst) ms;
                true
            | None -> false)
        | _ -> false)
    | _ -> false
  in
  if not indexed then
    match axis with
    | Ast.Self -> if test_matches env.e_schema axis test n then buf_push dst n
    | Ast.Attribute_axis ->
        List.iter
          (fun m -> if test_matches env.e_schema axis test m then buf_push dst m)
          (Node.attributes n)
    | Ast.Child ->
        List.iter
          (fun m -> if test_matches env.e_schema axis test m then buf_push dst m)
          (Node.children n)
    | Ast.Descendant ->
        let rec go m =
          List.iter
            (fun c ->
              if test_matches env.e_schema axis test c then buf_push dst c;
              go c)
            (Node.children m)
        in
        go n
    | Ast.Descendant_or_self ->
        if test_matches env.e_schema axis test n then buf_push dst n;
        let rec go m =
          List.iter
            (fun c ->
              if test_matches env.e_schema axis test c then buf_push dst c;
              go c)
            (Node.children m)
        in
        go n
    | _ -> raise Fallback

(* A predicate step chain applied to one node, using the caller's two
   scratch registers; returns the register holding the result. *)
let steps_into env (ss : P.pstep array) (x : buf) (y : buf) (n : Node.t) : buf =
  buf_clear x;
  buf_push x n;
  let src = ref x and dst = ref y in
  Array.iter
    (fun s ->
      buf_clear !dst;
      let sb = !src in
      for k = 0 to sb.blen - 1 do
        apply_step ~prefer_walk:true env s !dst sb.bn.(k)
      done;
      let t = !src in
      src := !dst;
      dst := t)
    ss;
  !src

let buf_items (b : buf) : Item.sequence =
  let out = ref [] in
  for k = b.blen - 1 downto 0 do
    out := Item.Node b.bn.(k) :: !out
  done;
  !out

(* Does candidate [c]'s parent chain match the probe's reversed tests,
   anchored at context node [n]?  Candidates come from [n]'s subtree
   range, so an ancestor lies inside the subtree iff its preorder id is
   at least [n]'s (ancestors of [n] have smaller ids). *)
let probe_matches env (pb : probe) (n : Node.t) (c : Node.t) : bool =
  let nrev = Array.length pb.pb_rev in
  let rec up i (m : Node.t) =
    match m.Node.parent with
    | None -> false
    | Some p ->
        if i < nrev then
          test_matches env.e_schema Ast.Child pb.pb_rev.(i) p && up (i + 1) p
        else
          let t, or_self = pb.pb_desc in
          test_matches env.e_schema Ast.Descendant t p
          && if or_self then p.Node.nid >= n.Node.nid
             else p.Node.nid > n.Node.nid
  in
  up 0 c

(* One probe applied to one node: range + reverse-path filter, or the
   saved stepwise chain when the store cannot serve the range.  [sx]
   and [sy] are the caller's scratch registers. *)
let apply_probe env (pb : probe) (dst : buf) (sx : buf) (sy : buf)
    (n : Node.t) : unit =
  match Store.descendant_range n pb.pb_last with
  | Some (arr, i, j) ->
      for k = i to j - 1 do
        let c = arr.(k) in
        if probe_matches env pb n c then buf_push dst c
      done
  | None ->
      let r = steps_into env pb.pb_steps sx sy n in
      buf_append_slice dst r.bn 0 r.blen

let pred_holds env sx sy (pr : pred) (n : Node.t) : bool =
  match pr with
  | PExists (ss, neg) ->
      let r = steps_into env ss sx sy n in
      let nonempty = r.blen > 0 in
      if neg then not nonempty else nonempty
  | PCompare (op, va, vb) ->
      let items = function
        | VSelf -> [ Item.Node n ]
        | VConst a -> [ Item.Atom a ]
        | VSteps ss -> buf_items (steps_into env ss sx sy n)
      in
      Promotion.general_compare op (items va) (items vb)

(* Run instructions [lo, hi) of [body] over the register pair, leaving
   the result in [!src].  Factored out of [run_body] so the partitioned
   executor can replay an instruction sub-range per chunk. *)
let exec_instrs env (body : instr array) (lo : int) (hi : int) (src : buf ref)
    (dst : buf ref) (px : buf) (py : buf) : unit =
  for idx = lo to hi - 1 do
    env.e_check ();
    (match body.(idx) with
    | IStep s ->
        buf_clear !dst;
        let sb = !src in
        for k = 0 to sb.blen - 1 do
          apply_step ~prefer_walk:true env s !dst sb.bn.(k)
        done;
        let t = !src in
        src := !dst;
        dst := t
    | IProbe pb ->
        buf_clear !dst;
        let sb = !src in
        for k = 0 to sb.blen - 1 do
          apply_probe env pb !dst px py sb.bn.(k)
        done;
        let t = !src in
        src := !dst;
        dst := t
    | IFilter pr ->
        buf_clear !dst;
        let sb = !src in
        for k = 0 to sb.blen - 1 do
          let n = sb.bn.(k) in
          if pred_holds env px py pr n then buf_push !dst n
        done;
        let t = !src in
        src := !dst;
        dst := t
    | ISort ->
        (* mirror the interpreter's already-sorted fast path: one O(n)
           monotonicity scan before paying for a sort *)
        let sb = !src in
        if sb.blen > 1 then begin
          let sorted = ref true in
          (try
             for k = 1 to sb.blen - 1 do
               if sb.bn.(k - 1).Node.nid >= sb.bn.(k).Node.nid then begin
                 sorted := false;
                 raise Exit
               end
             done
           with Exit -> ());
          if not !sorted then begin
            let sub = Array.sub sb.bn 0 sb.blen in
            Array.sort (fun x y -> compare x.Node.nid y.Node.nid) sub;
            Array.blit sub 0 sb.bn 0 sb.blen
          end
        end)
  done

(* Load the program's source, enforcing the single-context-node
   precondition the order/uniqueness proof assumed. *)
let load_source env (p : prog) : buf =
  env.e_check ();
  List.iter
    (fun nm -> if env.e_shadowed nm then raise Fallback)
    p.fp_shadow;
  let src_items =
    match p.fp_load with LVar v -> env.e_lookup v | LInput -> env.e_input ()
  in
  let a = buf_make () in
  (match src_items with
  | [] -> ()
  | [ Item.Node n ] -> buf_push a n
  | _ ->
      (* multi-node or atomic source: the order/uniqueness proof assumed
         a single context node *)
      raise Fallback);
  a

(* Run the instruction array, returning the final register. *)
let run_body env (p : prog) : buf =
  let a = load_source env p in
  Obs.incr_counter c_execs;
  let w0 = Gc.minor_words () in
  let src = ref a and dst = ref (buf_make ()) in
  let px = buf_make () and py = buf_make () in
  exec_instrs env p.fp_body 0 (Array.length p.fp_body) src dst px py;
  let final = !src in
  Obs.add_counter c_rows final.blen;
  Obs.add_counter c_alloc_words (int_of_float (Gc.minor_words () -. w0));
  final

(* ------------------------------------------------------------------ *)
(* Partitioned execution                                               *)
(* ------------------------------------------------------------------ *)

let c_par_execs = Obs.global_counter "fused_par_execs"

(* Partitioned run of a fused body.  Two opportunities to split:

   1. A probe reached while the batch is still a single context node —
      the common [$doc/a/b//last] shape, where all the work is the
      per-candidate reverse-path checks over the store's descendant
      range.  The candidate range itself splits into contiguous slices,
      one per chunk; each slice filters into its own register and the
      slices concatenate in range (= document) order, exactly the
      sequential probe output.

   2. Once the batch is wide (>= [min_width]), the remaining elementwise
      instructions up to the first [ISort] replay per contiguous chunk.
      Every elementwise instruction processes source nodes left to right
      and only appends, so chunk outputs concatenated in chunk order are
      byte-identical to the sequential batch.

   Everything else — the narrow warm-up prefix, [ISort], anything after
   it — runs sequentially in place, so the function always completes
   the execution and simply degrades to [run_body] when no split ever
   applies.  [run] executes chunk thunks (the domain pool's batch
   runner, injected to keep this library below the runtime). *)
let exec_body_partitioned env (p : prog) ~(parts : int) ~(min_width : int)
    ~(run : (unit -> unit) list -> unit) : buf =
  let nbody = Array.length p.fp_body in
  let a = load_source env p in
  Obs.incr_counter c_execs;
  let src = ref a and dst = ref (buf_make ()) in
  let px = buf_make () and py = buf_make () in
  let did_par = ref false in
  let merge_results (results : buf option array) : buf =
    let merged = buf_make () in
    Array.iter
      (function
        | Some cb -> buf_append_slice merged cb.bn 0 cb.blen
        | None -> raise Fallback)
      results;
    merged
  in
  (* opportunity 1: split a range-served probe's candidate slice *)
  let try_par_probe (pb : probe) (n : Node.t) : buf option =
    match Store.descendant_range n pb.pb_last with
    | Some (arr, i, j) when parts > 1 && j - i >= min_width ->
        let width = j - i in
        let nparts = min parts width in
        let results = Array.make nparts None in
        run
          (List.init nparts (fun t ->
               let lo = i + (t * width / nparts)
               and hi = i + ((t + 1) * width / nparts) in
               fun () ->
                 let out = buf_make () in
                 for k = lo to hi - 1 do
                   let c = arr.(k) in
                   if probe_matches env pb n c then buf_push out c
                 done;
                 results.(t) <- Some out));
        Some (merge_results results)
    | _ -> None
  in
  (* sequential warm-up: run instructions until the batch is wide enough
     to split.  The floor of 2 matters when [min_width] is lowered to 1:
     a single-node batch must keep warming up (so a probe can split its
     candidate range) rather than "partition" into one inline chunk. *)
  let wide = max min_width 2 in
  let k = ref 0 in
  while !k < nbody && !src.blen < wide do
    (match p.fp_body.(!k) with
    | IProbe pb when !src.blen = 1 -> (
        match try_par_probe pb !src.bn.(0) with
        | Some merged ->
            did_par := true;
            src := merged
        | None -> exec_instrs env p.fp_body !k (!k + 1) src dst px py)
    | _ -> exec_instrs env p.fp_body !k (!k + 1) src dst px py);
    incr k
  done;
  (* opportunity 2: partition the remaining elementwise instructions *)
  let sort_idx =
    let rec go i =
      if i >= nbody then nbody
      else match p.fp_body.(i) with ISort -> i | _ -> go (i + 1)
    in
    go !k
  in
  if parts > 1 && sort_idx > !k && !src.blen >= wide then begin
    let batch = !src in
    let lo_k = !k in
    let nparts = min parts batch.blen in
    let results = Array.make nparts None in
    run
      (List.init nparts (fun t ->
           let lo = t * batch.blen / nparts
           and hi = (t + 1) * batch.blen / nparts in
           fun () ->
             let ca = buf_make () in
             buf_append_slice ca batch.bn lo hi;
             let csrc = ref ca and cdst = ref (buf_make ()) in
             let cpx = buf_make () and cpy = buf_make () in
             exec_instrs env p.fp_body lo_k sort_idx csrc cdst cpx cpy;
             results.(t) <- Some !csrc));
    did_par := true;
    src := merge_results results;
    k := sort_idx
  end;
  (* sequential tail: the sort and anything after it *)
  exec_instrs env p.fp_body !k nbody src dst px py;
  if !did_par then Obs.incr_counter c_par_execs;
  let final = !src in
  Obs.add_counter c_rows final.blen;
  final

let finish_agg env (p : prog) (final : buf) : Item.sequence =
  match p.fp_agg with
  | ACount -> [ Item.Atom (Atomic.Integer final.blen) ]
  | AExists neg ->
      let ne = final.blen > 0 in
      [ Item.Atom (Atomic.Boolean (if neg then not ne else ne)) ]
  | ASum -> env.e_sum (buf_items final)
  | ACollect -> buf_items final

let exec_partitioned (env : env) (p : prog) ~(parts : int) ~(min_width : int)
    ~(run : (unit -> unit) list -> unit) : Item.sequence =
  finish_agg env p (exec_body_partitioned env p ~parts ~min_width ~run)

let exec_nodes_partitioned (env : env) (p : prog) ~(parts : int)
    ~(min_width : int) ~(run : (unit -> unit) list -> unit) :
    Node.t array * int =
  let final = exec_body_partitioned env p ~parts ~min_width ~run in
  (final.bn, final.blen)

let exec (env : env) (p : prog) : Item.sequence =
  finish_agg env p (run_body env p)

(* For tuple-batch segments: the final register and its length (the
   array may be over-allocated past [len]). *)
let exec_nodes (env : env) (p : prog) : Node.t array * int =
  let final = run_body env p in
  (final.bn, final.blen)

let fallback_counter_incr () = Obs.incr_counter c_fallbacks

(* ------------------------------------------------------------------ *)
(* Rendering (EXPLAIN)                                                 *)
(* ------------------------------------------------------------------ *)

let step_str (s : P.pstep) : string =
  Printf.sprintf "%s::%s%s"
    (Ast.axis_to_string s.P.ps_axis)
    (Ast.node_test_to_string s.P.ps_test)
    (match s.P.ps_impl with P.Index_scan -> "[ix]" | P.Tree_walk -> "")

let vpath_str = function
  | VSelf -> "."
  | VConst a -> Printf.sprintf "%S" (Atomic.to_string a)
  | VSteps ss ->
      String.concat "/" (Array.to_list (Array.map step_str ss))

let pred_str = function
  | PExists (ss, neg) ->
      Printf.sprintf "%s(%s)"
        (if neg then "empty" else "exists")
        (String.concat "/" (Array.to_list (Array.map step_str ss)))
  | PCompare (op, va, vb) ->
      Printf.sprintf "%s %s %s" (vpath_str va)
        (Promotion.cmp_op_name op)
        (vpath_str vb)

let instr_str = function
  | IStep s -> "step " ^ step_str s
  | IProbe pb ->
      Printf.sprintf "probe %s"
        (String.concat "/" (Array.to_list (Array.map step_str pb.pb_steps)))
  | IFilter pr -> "filter " ^ pred_str pr
  | ISort -> "sort"

let describe (p : prog) : string =
  let load =
    match p.fp_load with LVar v -> "load $" ^ v | LInput -> "load IN"
  in
  let sink =
    match (p.fp_agg, p.fp_tuple) with
    | ACount, _ -> "count"
    | AExists false, _ -> "exists"
    | AExists true, _ -> "empty"
    | ASum, _ -> "sum"
    | ACollect, Some q -> Printf.sprintf "tuples [%s]" q
    | ACollect, None -> "collect"
  in
  String.concat "; "
    ((load :: List.map instr_str (Array.to_list p.fp_body)) @ [ sink ])

(* Top-down scan of a physical plan for the segments the evaluator will
   fuse, outermost first and non-overlapping (used by the static
   EXPLAIN rendering).  Tuple-batch fusion is advertised only outside
   early-terminating consumers, mirroring the evaluator's drain flag. *)
let rec annotate ?(tab = true) (p : P.t) : (string * prog) list =
  match lower ~tab p with
  | Some prog -> [ (Xqc_algebra.Pretty.physical_label p, prog) ]
  | None ->
      let tab =
        match p.P.pop with
        | P.PStreamSelect _ | P.PMapSome _ | P.PMapEvery _ -> false
        | _ -> tab
      in
      List.concat_map (fun c -> annotate ~tab c) (P.children p)
