(** Fused-loop compiled execution tier.

    Lowers hot physical pipelines — downward [PSteps] chains,
    single-variable Select/MapFromItem/MapToItem loops and the
    streaming aggregates count/exists/empty/sum over them — into a flat
    instruction array executed by a tight bytecode interpreter over
    register batches ([Node.t array]s), with no per-tuple closure,
    tuple array or [Seq] node allocation on the fused path.  Index-
    range descendant scans become [Array.blit]s of the store's slice.

    Order and uniqueness are proven statically (a (sorted, non-nesting)
    state machine over the step chain); segments that cannot be proven
    duplicate-free are refused at lowering time, and compiled programs
    that meet an unsupported runtime shape (multi-node source, shadowed
    builtin) raise {!Fallback} so the evaluator splices in the
    interpreted twin. *)

open Xqc_xml
open Xqc_types
module P = Xqc_algebra.Physical

(** [Auto] fuses lowerable segments whose source estimate clears
    [min_fuse_rows], [Force] fuses everything lowerable, [Off] disables
    the tier.  Seeded from the [XQC_FUSE] environment variable
    ("off"/"force"), mirroring [XQC_INDEX]. *)
type mode = Auto | Off | Force

val mode : mode ref
val min_fuse_rows : float ref

exception Fallback
(** Raised by {!exec}/{!exec_nodes} when the runtime shape is outside
    the program's proof (the caller runs the interpreted twin). *)

type prog
(** A lowered segment: load register, flat instruction array, sink. *)

val instr_count : prog -> int
val tuple_field : prog -> string option
(** [Some q] when the segment produces a tuple batch with single-field
    layout [q] (rather than an item sequence). *)

val lower : ?tab:bool -> P.t -> prog option
(** The fuse decision for one physical subplan.  [tab] advertises that
    the consumer fully drains a tabular result, enabling tuple-batch
    fusion of bare Select/MapFromItem pipelines; item pipelines and
    aggregates fuse regardless.  [None]: stay interpreted. *)

(** {1 Execution} *)

(** Runtime services, passed as callbacks so this library stays below
    the evaluator in the dependency order. *)
type env = {
  e_schema : Schema.t;
  e_lookup : string -> Item.sequence;  (** free-variable lookup *)
  e_input : unit -> Item.sequence;  (** the dependent [IN] item *)
  e_shadowed : string -> bool;  (** user declaration shadows builtin? *)
  e_check : unit -> unit;  (** deadline / cancellation check *)
  e_sum : Item.sequence -> Item.sequence;  (** the fn:sum builtin *)
}

val exec : env -> prog -> Item.sequence
(** Run an item-pipeline or aggregate segment. *)

val exec_nodes : env -> prog -> Node.t array * int
(** Run a tuple-batch segment; returns the final register and its
    length (the array may be over-allocated past it). *)

val exec_partitioned :
  env ->
  prog ->
  parts:int ->
  min_width:int ->
  run:((unit -> unit) list -> unit) ->
  Item.sequence

val exec_nodes_partitioned :
  env ->
  prog ->
  parts:int ->
  min_width:int ->
  run:((unit -> unit) list -> unit) ->
  Node.t array * int
(** Partitioned variants of {!exec}/{!exec_nodes}.  Instructions run
    sequentially until the batch is at least [min_width] wide; a probe
    reached on a single context node splits its store candidate range
    into contiguous slices instead; once wide, the remaining elementwise
    instructions (up to the first sort) replay per contiguous chunk via
    [run] (the domain pool's batch runner, injected to keep this library
    below the runtime).  Chunk outputs concatenate in chunk order —
    byte-identical to the sequential batch because every elementwise
    instruction is a left-to-right append.  Degrades to the sequential
    execution when no split applies, so the result always equals
    {!exec}/{!exec_nodes}.
    @raise Fallback as {!exec}. *)

val fallback_counter_incr : unit -> unit
(** Record a runtime fallback in the [fused_fallbacks] counter. *)

(** {1 EXPLAIN rendering} *)

val describe : prog -> string
(** One-line program listing: [load $v; step ...; filter ...; count]. *)

val annotate : ?tab:bool -> P.t -> (string * prog) list
(** The segments the evaluator will fuse in this plan, outermost first
    and non-overlapping, each with the physical label of its root. *)
