(** Observability primitives: counters, monotonic timers, a lightweight
    span/event sink (text + JSON line output), and the structured
    statistics the pipeline records — phase timings, per-operator
    runtime statistics (EXPLAIN ANALYZE), join build/probe accounting,
    and rewrite-rule firing traces.

    The library sits below the algebra so every layer can depend on it.
    All records are plain mutable structs updated in place; with
    statistics disabled none of this code runs, leaving the
    uninstrumented hot path unchanged. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact rendering; non-finite floats become [null]. *)

(** {1 Counters and timers} *)

type counter = { cn_name : string; cn_cell : int Atomic.t }
(** Counters are atomic so the server's worker domains can increment the
    shared process-wide counters without tearing; uncontended increments
    stay a single fetch-and-add (no lock, no allocation). *)

val counter : string -> counter
val incr_counter : counter -> unit
val add_counter : counter -> int -> unit
val counter_value : counter -> int

(** {1 Instrumented mutexes (contention telemetry)} *)

type lock_stats = {
  ls_name : string;
  ls_acquires : int Atomic.t;  (** total acquisitions *)
  ls_contended : int Atomic.t;  (** acquisitions that had to block *)
  ls_wait_ns : int Atomic.t;  (** cumulative time spent blocked *)
  ls_hold_ns : int Atomic.t;  (** cumulative time the lock was held *)
}

type tmutex = { tx_stats : lock_stats; tx_mutex : Mutex.t }
(** A mutex that accounts for its own contention.  Statistics are
    interned by name, so several mutex instances protecting the same
    kind of resource share one stats record, and the registry can be
    walked for the server's metrics plane.  The fast path costs one
    [Mutex.try_lock] plus two clock reads over a plain mutex. *)

val tmutex : string -> tmutex
(** Fresh mutex whose statistics record is interned under [name]. *)

val with_lock : tmutex -> (unit -> 'a) -> 'a
(** [Mutex.protect] with wait/hold accounting (also on exceptions). *)

type lock_summary = {
  lk_name : string;
  lk_acquires : int;
  lk_contended : int;
  lk_wait_ms : float;
  lk_hold_ms : float;
}

val lock_summaries : unit -> lock_summary list
(** Current statistics of every interned lock, in interning order. *)

val reset_lock_stats : unit -> unit
(** Zero every lock-stats record (tests and benchmarks). *)

val lock_summary_to_json : lock_summary -> json

val global_counter : string -> counter
(** Interned process-wide counter: repeated calls with the same name
    return the same record.  Used by subsystems whose statistics outlive
    any one prepared query (indexed store, document and plan caches);
    the current values are included in every collector report. *)

val global_counters : unit -> (string * int) list
(** Current values of all global counters, in registration order. *)

val reset_global_counters : unit -> unit
(** Zero every global counter (tests and benchmarks). *)

val global_counters_to_string : unit -> string
(** One line per non-zero global counter. *)

type timer = { tm_name : string; mutable tm_secs : float; mutable tm_count : int }

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its duration (also on exceptions). *)

(** {1 Latency histograms} *)

type histogram
(** Thread-safe reservoir: lifetime count/mean/max plus percentiles
    (p50/p95/p99) over a ring buffer of the most recent samples.  The
    query server records one sample per request. *)

val histogram : ?window:int -> string -> histogram
(** [window] is the number of recent samples retained for percentile
    computation (default 4096). *)

val observe : histogram -> float -> unit
(** Record one sample.  Lock-free: an atomic count/fixed-point sum/CAS
    max plus a [fetch_and_add] ring ticket — concurrent observers never
    serialize.  Lifetime aggregates are exact; a percentile read racing
    an insert may count one stale window sample. *)

val histogram_count : histogram -> int

val histogram_summary : histogram -> (string * float) list
(** [count]/[mean]/[max] over the lifetime, [p50]/[p95]/[p99] over the
    retained window (nearest rank). *)

val histogram_to_json : histogram -> json

(** {1 Span/event sink} *)

type event = {
  ev_name : string;
  ev_start : float;  (** seconds since the sink's epoch *)
  ev_dur : float;
  ev_attrs : (string * string) list;
}

type sink = { mutable sk_events : event list; sk_epoch : float }

val sink : unit -> sink
val emit : sink -> ?attrs:(string * string) list -> ?dur:float -> string -> unit
val span : sink -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val events : sink -> event list
(** In emission order. *)

val event_to_text : event -> string
val event_to_json : event -> json

val events_to_json_lines : sink -> string
(** One JSON object per line, in emission order. *)

(** {1 Per-operator runtime statistics (EXPLAIN ANALYZE)} *)

type op_stats = {
  mutable op_calls : int;  (** closure invocations *)
  mutable op_secs : float;  (** cumulative (inclusive) time *)
  mutable op_tuples : int;  (** tuples actually pulled through the operator *)
  mutable op_items : int;  (** items produced / pulled when XML *)
}

val op_stats : unit -> op_stats

val counted_seq : op_stats -> (op_stats -> unit) -> 'a Seq.t -> 'a Seq.t
(** Wrap a lazy cursor so every pull is timed into [op_secs] (inclusive:
    child pulls nest inside the parent's timed window) and counted into
    the given cardinality field. *)

val tuple_counted_seq : op_stats -> 'a Seq.t -> 'a Seq.t
(** [counted_seq] counting into [op_tuples]. *)

val item_counted_seq : op_stats -> 'a Seq.t -> 'a Seq.t
(** [counted_seq] counting into [op_items]. *)

type join_stats = {
  mutable js_builds : int;
  mutable js_build_tuples : int;
  mutable js_probes : int;
  mutable js_matches : int;
  mutable js_sort_numeric : int;
  mutable js_sort_string : int;
}

val join_stats : unit -> join_stats

(** How the physical operator moves tuples: [Streamed] operators are lazy
    cursors forwarding tuples as the consumer pulls, [Blocking] operators
    materialize before producing output, [Opaque] operators are item-level
    XML operators outside the tuple pipeline. *)
type stream_kind = Streamed | Blocking | Opaque

val stream_kind_name : stream_kind -> string

(** The annotated plan: a mirror of the algebraic plan tree carrying one
    [op_stats] per operator (plus [join_stats] on join operators). *)
type op_node = {
  on_label : string;
  on_stats : op_stats;
  on_join : join_stats option;
  on_stream : stream_kind;
  on_est : float option;
      (** the physical planner's estimated output cardinality, rendered
          as estimated-vs-actual in EXPLAIN ANALYZE and the stats JSON *)
  mutable on_children : op_node list;
}

(** Builder used by the evaluator while compiling an instrumented plan:
    a stack mirroring the compile recursion. *)
type builder

val builder : unit -> builder

val push_node :
  builder -> ?join:join_stats -> ?stream:stream_kind -> ?est:float -> string -> op_node
(** Create a node, attach it under the current parent (or as root), and
    make it the current parent.  [stream] defaults to [Opaque]; [est] is
    the planner's cardinality estimate, if the operator has one. *)

val pop_node : builder -> unit
(** Close the current node, restoring its children to source order. *)

val top_join : builder -> join_stats option
(** The join statistics of the node currently being compiled, if any. *)

val builder_root : builder -> op_node option

val fold_nodes : ('a -> op_node -> 'a) -> 'a -> op_node -> 'a
(** Preorder fold over the annotated tree. *)

(** {1 Pipeline phase timing} *)

type phase = { ph_name : string; mutable ph_secs : float; mutable ph_count : int }

(** {1 Rewrite-rule firing trace} *)

type rewrite_trace = {
  mutable rw_passes : int;  (** fixpoint iterations of the rewrite driver *)
  mutable rw_rules : (string * int ref) list;  (** first-firing order *)
}

val rewrite_trace : unit -> rewrite_trace
val fire : rewrite_trace -> string -> unit
val rule_count : rewrite_trace -> string -> int
val total_firings : rewrite_trace -> int

(** {1 Collector: one prepared query's worth of statistics} *)

type collector = {
  mutable co_phases : phase list;  (** first-seen order *)
  mutable co_plans : (string * op_node) list;
      (** annotated plans by name ("main", "global $v", "function f") *)
  co_rewrite : rewrite_trace;
  co_sink : sink;
}

val collector : unit -> collector

val phase : collector -> string -> (unit -> 'a) -> 'a
(** Time the thunk under the named phase, accumulating across runs, and
    record a span event in the sink. *)

val set_plan : collector -> string -> op_node -> unit
(** Register (or replace) an annotated plan tree. *)

val pulled_totals : collector -> int * int
(** Total (tuples, items) pulled through all operators of the registered
    plans — what the early-exit bench/CI smoke asserts on. *)

val join_totals : collector -> join_stats
(** Sum of all join statistics across the registered plans. *)

(** {1 Reports} *)

val ms : float -> float

val phases_to_string : collector -> string
val rewrite_to_string : rewrite_trace -> string
val join_stats_to_string : join_stats -> string

val op_node_to_json : op_node -> json
val join_stats_to_json : join_stats -> json
val rewrite_to_json : rewrite_trace -> json
val phases_to_json : collector -> json

val collector_to_json : ?plans:bool -> collector -> json
(** Full machine-readable statistics; [~plans:false] omits the
    per-operator trees (used for compact bench records). *)

val collector_to_json_string : ?plans:bool -> collector -> string

(** {1 Prometheus text exposition} *)

(** Metric families for the Prometheus text format (0.0.4): counters and
    gauges carry (labels, value) samples; summaries carry
    (quantile, value) samples plus the _sum/_count pair. *)
type prom_family =
  | Prom_counter of string * string * ((string * string) list * float) list
  | Prom_gauge of string * string * ((string * string) list * float) list
  | Prom_summary of string * string * (float * float) list * float * int

val prometheus_to_string : prom_family list -> string
(** Render families with their # HELP / # TYPE headers. *)

val histogram_prom_summary :
  histogram -> name:string -> help:string -> prom_family
(** p50/p95/p99 over the retained window, _sum/_count over the
    lifetime. *)
