(* Observability primitives for the engine: counters, monotonic timers,
   a lightweight span/event sink, and the structured statistics the
   pipeline records — phase timings, per-operator runtime statistics
   (EXPLAIN ANALYZE), join build/probe accounting, and rewrite-rule
   firing traces.

   This library sits below the algebra so every layer can depend on it;
   it depends on nothing but unix (for the clock).  All records are
   plain mutable structs updated in place: with statistics disabled none
   of this code runs, so the uninstrumented hot path is unchanged. *)

(* Monotonic-enough wall clock in seconds.  [Unix.gettimeofday] is what
   the benchmark harness already measures with; operator timings are
   relative differences over short spans, where drift is negligible. *)
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* JSON (minimal emitter; no external dependency)                      *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_string (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec add_json (buf : Buffer.t) (j : json) : unit =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* NaN/infinities are not JSON numbers *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          add_json buf v)
        kvs;
      Buffer.add_char buf '}'

let json_to_string (j : json) : string =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Counters and timers                                                 *)
(* ------------------------------------------------------------------ *)

(* Counters are atomic ints: the query server increments them from
   several worker domains at once, and --stats-json must never report a
   torn value.  On the single-threaded CLI path an uncontended
   [Atomic.incr] is a plain fetch-and-add — no allocation, no lock. *)
type counter = { cn_name : string; cn_cell : int Atomic.t }

let counter name = { cn_name = name; cn_cell = Atomic.make 0 }
let incr_counter c = Atomic.incr c.cn_cell
let add_counter c n = ignore (Atomic.fetch_and_add c.cn_cell n)
let counter_value c = Atomic.get c.cn_cell

(* ------------------------------------------------------------------ *)
(* Instrumented mutexes (contention telemetry)                         *)
(* ------------------------------------------------------------------ *)

(* A [tmutex] is a mutex that accounts for its own contention: every
   acquisition is counted, acquisitions that had to block record the
   time spent waiting, and [with_lock] records the time the lock was
   held.  Statistics are interned by name so several mutex instances
   protecting the same kind of resource (e.g. one write lock per client
   connection) share a single stats record, and so the registry can be
   walked for the server's `metrics` verb and Prometheus exposition.

   The fast path costs one [Mutex.try_lock] plus two clock reads over a
   plain mutex; all stats cells are atomics, so readers never take the
   lock they are reporting on. *)

type lock_stats = {
  ls_name : string;
  ls_acquires : int Atomic.t;  (* total acquisitions *)
  ls_contended : int Atomic.t;  (* acquisitions that had to block *)
  ls_wait_ns : int Atomic.t;  (* cumulative time spent blocked *)
  ls_hold_ns : int Atomic.t;  (* cumulative time the lock was held *)
}

type tmutex = { tx_stats : lock_stats; tx_mutex : Mutex.t }

(* The lock-stats registry is guarded by a plain mutex: it cannot
   instrument itself, and it is only touched at interning time and when
   a report is rendered. *)
let lock_registry : (string, lock_stats) Hashtbl.t = Hashtbl.create 16
let lock_order : string list ref = ref []
let lock_registry_lock = Mutex.create ()

let lock_stats_intern (name : string) : lock_stats =
  Mutex.protect lock_registry_lock (fun () ->
      match Hashtbl.find_opt lock_registry name with
      | Some ls -> ls
      | None ->
          let ls =
            {
              ls_name = name;
              ls_acquires = Atomic.make 0;
              ls_contended = Atomic.make 0;
              ls_wait_ns = Atomic.make 0;
              ls_hold_ns = Atomic.make 0;
            }
          in
          Hashtbl.add lock_registry name ls;
          lock_order := !lock_order @ [ name ];
          ls)

let tmutex (name : string) : tmutex =
  { tx_stats = lock_stats_intern name; tx_mutex = Mutex.create () }

let add_ns (cell : int Atomic.t) (secs : float) : unit =
  ignore (Atomic.fetch_and_add cell (int_of_float (secs *. 1e9)))

let with_lock (tx : tmutex) (f : unit -> 'a) : 'a =
  let st = tx.tx_stats in
  (if Mutex.try_lock tx.tx_mutex then Atomic.incr st.ls_acquires
   else begin
     let t0 = now () in
     Mutex.lock tx.tx_mutex;
     add_ns st.ls_wait_ns (now () -. t0);
     Atomic.incr st.ls_acquires;
     Atomic.incr st.ls_contended
   end);
  let t1 = now () in
  Fun.protect
    ~finally:(fun () ->
      add_ns st.ls_hold_ns (now () -. t1);
      Mutex.unlock tx.tx_mutex)
    f

type lock_summary = {
  lk_name : string;
  lk_acquires : int;
  lk_contended : int;
  lk_wait_ms : float;
  lk_hold_ms : float;
}

let lock_summaries () : lock_summary list =
  let names = Mutex.protect lock_registry_lock (fun () -> !lock_order) in
  List.map
    (fun name ->
      let ls = Mutex.protect lock_registry_lock (fun () -> Hashtbl.find lock_registry name) in
      {
        lk_name = ls.ls_name;
        lk_acquires = Atomic.get ls.ls_acquires;
        lk_contended = Atomic.get ls.ls_contended;
        lk_wait_ms = float_of_int (Atomic.get ls.ls_wait_ns) /. 1e6;
        lk_hold_ms = float_of_int (Atomic.get ls.ls_hold_ns) /. 1e6;
      })
    names

let reset_lock_stats () : unit =
  Mutex.protect lock_registry_lock (fun () ->
      Hashtbl.iter
        (fun _ ls ->
          Atomic.set ls.ls_acquires 0;
          Atomic.set ls.ls_contended 0;
          Atomic.set ls.ls_wait_ns 0;
          Atomic.set ls.ls_hold_ns 0)
        lock_registry)

let lock_summary_to_json (lk : lock_summary) : json =
  Obj
    [
      ("name", Str lk.lk_name);
      ("acquires", Int lk.lk_acquires);
      ("contended", Int lk.lk_contended);
      ("wait_ms", Float lk.lk_wait_ms);
      ("hold_ms", Float lk.lk_hold_ms);
    ]

(* Global named counters: process-wide always-on counters for the
   cross-cutting subsystems that outlive any one prepared query — the
   indexed document store (builds/hits/fallbacks), the fn:doc document
   cache, the prepared-plan cache and the query server.  Incrementing is
   a single atomic add; the registry (guarded by [global_lock], since
   worker domains may intern counters concurrently) is only walked when
   a report is rendered. *)
let global_registry : (string, counter) Hashtbl.t = Hashtbl.create 16
let global_order : string list ref = ref []
let global_lock = tmutex "obs_registry"

let global_counter (name : string) : counter =
  with_lock global_lock (fun () ->
      match Hashtbl.find_opt global_registry name with
      | Some c -> c
      | None ->
          let c = counter name in
          Hashtbl.add global_registry name c;
          global_order := !global_order @ [ name ];
          c)

let global_counters () : (string * int) list =
  with_lock global_lock (fun () ->
      List.map
        (fun name -> (name, counter_value (Hashtbl.find global_registry name)))
        !global_order)

let reset_global_counters () =
  with_lock global_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cn_cell 0) global_registry)

type timer = { tm_name : string; mutable tm_secs : float; mutable tm_count : int }

let timer name = { tm_name = name; tm_secs = 0.0; tm_count = 0 }

let time (tm : timer) (f : unit -> 'a) : 'a =
  let t0 = now () in
  let finish () =
    tm.tm_secs <- tm.tm_secs +. (now () -. t0);
    tm.tm_count <- tm.tm_count + 1
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                  *)
(* ------------------------------------------------------------------ *)

(* Lock-free reservoir: lifetime count/sum/max plus a ring buffer of the
   most recent samples, from which percentiles are computed on demand
   (sorting a copy of the window — reports are rare, observations are
   hot).  The query server records one sample per request from every
   worker domain, so the insert path must not serialize the workers:

   - count is an atomic increment; sum accumulates in fixed point
     (integer micro-units, [fetch_and_add]) since there is no atomic
     float add; max is a CAS loop on the same fixed-point scale.
   - the ring position is a monotone [fetch_and_add] ticket (slot =
     ticket mod window), so two concurrent observers take different
     slots.  The slot write itself is a plain 64-bit float store —
     unsynchronized by design: a reader may see a stale sample in a
     slot being overwritten, which shifts a percentile by one sample at
     worst.  Percentiles over a sliding window are already approximate;
     the lifetime count/sum/max are exact.

   Before this design the insert took a ["hist:<name>"] tmutex —
   measurably the hottest locks in the server's contention table. *)

let fixed_scale = 1_000_000.

type histogram = {
  hg_name : string;
  hg_count : int Atomic.t;
  hg_sum_fx : int Atomic.t;  (* lifetime sum, fixed-point micro-units *)
  hg_max_fx : int Atomic.t;  (* lifetime max, fixed-point micro-units *)
  hg_window : float array;  (* ring buffer of recent samples *)
  hg_pos : int Atomic.t;  (* monotone ticket; slot = ticket mod window *)
}

let histogram ?(window = 4096) name =
  {
    hg_name = name;
    hg_count = Atomic.make 0;
    hg_sum_fx = Atomic.make 0;
    hg_max_fx = Atomic.make 0;
    hg_window = Array.make (max 1 window) 0.0;
    hg_pos = Atomic.make 0;
  }

let observe (h : histogram) (v : float) : unit =
  Atomic.incr h.hg_count;
  let fx = int_of_float (v *. fixed_scale) in
  ignore (Atomic.fetch_and_add h.hg_sum_fx fx);
  let rec bump () =
    let cur = Atomic.get h.hg_max_fx in
    if fx > cur && not (Atomic.compare_and_set h.hg_max_fx cur fx) then bump ()
  in
  bump ();
  let ticket = Atomic.fetch_and_add h.hg_pos 1 in
  h.hg_window.(ticket mod Array.length h.hg_window) <- v

let histogram_count (h : histogram) : int = Atomic.get h.hg_count

(* Snapshot the window for percentile computation: valid entries are
   [min ticket window] (the ring fills front to back). *)
let window_snapshot (h : histogram) : float array =
  let filled = min (Atomic.get h.hg_pos) (Array.length h.hg_window) in
  let sorted = Array.sub h.hg_window 0 filled in
  Array.sort compare sorted;
  sorted

let pct_of (sorted : float array) (q : float) : float =
  let filled = Array.length sorted in
  if filled = 0 then 0.0
  else
    let i = int_of_float (Float.round (q *. float_of_int (filled - 1))) in
    sorted.(min (filled - 1) (max 0 i))

(* count/mean/max over the histogram's lifetime, percentiles over the
   retained window (nearest-rank on the sorted samples). *)
let histogram_summary (h : histogram) : (string * float) list =
  let count = Atomic.get h.hg_count in
  let sum = float_of_int (Atomic.get h.hg_sum_fx) /. fixed_scale in
  let maxv = float_of_int (Atomic.get h.hg_max_fx) /. fixed_scale in
  let sorted = window_snapshot h in
  [
    ("count", float_of_int count);
    ("mean", if count = 0 then 0.0 else sum /. float_of_int count);
    ("max", maxv);
    ("p50", pct_of sorted 0.5);
    ("p95", pct_of sorted 0.95);
    ("p99", pct_of sorted 0.99);
  ]

let histogram_to_json (h : histogram) : json =
  Obj
    (("name", Str h.hg_name)
    :: List.map
         (fun (k, v) -> (k, if String.equal k "count" then Int (int_of_float v) else Float v))
         (histogram_summary h))

(* ------------------------------------------------------------------ *)
(* Span/event sink                                                     *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_start : float;  (** seconds since the sink's epoch *)
  ev_dur : float;  (** span duration in seconds *)
  ev_attrs : (string * string) list;
}

type sink = { mutable sk_events : event list (* newest first *); sk_epoch : float }

let sink () = { sk_events = []; sk_epoch = now () }

let emit (sk : sink) ?(attrs = []) ?(dur = 0.0) (name : string) : unit =
  sk.sk_events <-
    { ev_name = name; ev_start = now () -. sk.sk_epoch; ev_dur = dur; ev_attrs = attrs }
    :: sk.sk_events

let span (sk : sink) ?(attrs = []) (name : string) (f : unit -> 'a) : 'a =
  let t0 = now () in
  let finish () =
    sk.sk_events <-
      {
        ev_name = name;
        ev_start = t0 -. sk.sk_epoch;
        ev_dur = now () -. t0;
        ev_attrs = attrs;
      }
      :: sk.sk_events
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let events (sk : sink) : event list = List.rev sk.sk_events

let event_to_text (e : event) : string =
  Printf.sprintf "%9.3fms +%.3fms %s%s" (e.ev_start *. 1000.0) (e.ev_dur *. 1000.0)
    e.ev_name
    (match e.ev_attrs with
    | [] -> ""
    | attrs ->
        " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))

let event_to_json (e : event) : json =
  Obj
    ([
       ("event", Str e.ev_name);
       ("start_ms", Float (e.ev_start *. 1000.0));
       ("dur_ms", Float (e.ev_dur *. 1000.0));
     ]
    @ List.map (fun (k, v) -> (k, Str v)) e.ev_attrs)

let events_to_json_lines (sk : sink) : string =
  String.concat ""
    (List.map (fun e -> json_to_string (event_to_json e) ^ "\n") (events sk))

(* ------------------------------------------------------------------ *)
(* Per-operator runtime statistics (EXPLAIN ANALYZE)                   *)
(* ------------------------------------------------------------------ *)

type op_stats = {
  mutable op_calls : int;  (** closure invocations *)
  mutable op_secs : float;  (** cumulative (inclusive) time *)
  mutable op_tuples : int;  (** tuples actually pulled through the operator *)
  mutable op_items : int;  (** items produced / pulled when XML *)
}

let op_stats () = { op_calls = 0; op_secs = 0.0; op_tuples = 0; op_items = 0 }

(* Wrap a lazy cursor so every pull is timed into [op_secs] and counted
   into the given cardinality field.  Pull timing is inclusive: a parent
   operator's pull forces its child's pull inside the parent's timed
   window, matching the inclusive-time convention of the eager wrapper. *)
let counted_seq (st : op_stats) (count : op_stats -> unit) (s : 'a Seq.t) : 'a Seq.t =
  let rec wrap s () =
    let t0 = now () in
    let node = s () in
    st.op_secs <- st.op_secs +. (now () -. t0);
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
        count st;
        Seq.Cons (x, wrap rest)
  in
  wrap s

let tuple_counted_seq st s = counted_seq st (fun st -> st.op_tuples <- st.op_tuples + 1) s
let item_counted_seq st s = counted_seq st (fun st -> st.op_items <- st.op_items + 1) s

type join_stats = {
  mutable js_builds : int;  (** inner-side materializations *)
  mutable js_build_tuples : int;  (** tuples on the build side, summed *)
  mutable js_probes : int;  (** outer tuples probed *)
  mutable js_matches : int;  (** inner tuples matched, summed *)
  mutable js_sort_numeric : int;  (** sort-join numeric array length *)
  mutable js_sort_string : int;  (** sort-join string array length *)
}

let join_stats () =
  {
    js_builds = 0;
    js_build_tuples = 0;
    js_probes = 0;
    js_matches = 0;
    js_sort_numeric = 0;
    js_sort_string = 0;
  }

(* How the physical operator moves tuples: [Streamed] operators are lazy
   cursors that forward tuples as the consumer pulls, [Blocking] operators
   materialize (their input or build side) before producing output, and
   [Opaque] operators are item-level XML operators outside the pipeline. *)
type stream_kind = Streamed | Blocking | Opaque

let stream_kind_name = function
  | Streamed -> "streamed"
  | Blocking -> "blocking"
  | Opaque -> "opaque"

(* The annotated plan: a mirror of the algebraic plan tree carrying one
   [op_stats] per operator (plus [join_stats] on join operators),
   labelled with the printer's one-line operator rendering. *)
type op_node = {
  on_label : string;
  on_stats : op_stats;
  on_join : join_stats option;
  on_stream : stream_kind;
  on_est : float option;  (* planner's estimated output cardinality *)
  mutable on_children : op_node list;
}

(* Builder used by the evaluator while compiling an instrumented plan:
   a stack mirroring the compile recursion; push on entry, pop (and
   restore child order) on exit. *)
type builder = { mutable bd_stack : op_node list; mutable bd_root : op_node option }

let builder () = { bd_stack = []; bd_root = None }

let push_node (b : builder) ?join ?(stream = Opaque) ?est (label : string) :
    op_node =
  let n =
    { on_label = label; on_stats = op_stats (); on_join = join; on_stream = stream;
      on_est = est; on_children = [] }
  in
  (match b.bd_stack with
  | parent :: _ -> parent.on_children <- n :: parent.on_children
  | [] -> if b.bd_root = None then b.bd_root <- Some n);
  b.bd_stack <- n :: b.bd_stack;
  n

let pop_node (b : builder) : unit =
  match b.bd_stack with
  | n :: rest ->
      n.on_children <- List.rev n.on_children;
      b.bd_stack <- rest
  | [] -> ()

let top_join (b : builder) : join_stats option =
  match b.bd_stack with n :: _ -> n.on_join | [] -> None

let builder_root (b : builder) : op_node option = b.bd_root

let rec fold_nodes (f : 'a -> op_node -> 'a) (acc : 'a) (n : op_node) : 'a =
  List.fold_left (fold_nodes f) (f acc n) n.on_children

(* ------------------------------------------------------------------ *)
(* Pipeline phase timing                                               *)
(* ------------------------------------------------------------------ *)

type phase = { ph_name : string; mutable ph_secs : float; mutable ph_count : int }

(* ------------------------------------------------------------------ *)
(* Rewrite-rule firing trace                                           *)
(* ------------------------------------------------------------------ *)

type rewrite_trace = {
  mutable rw_passes : int;  (** fixpoint iterations of the rewrite driver *)
  mutable rw_rules : (string * int ref) list;  (** first-firing order *)
}

let rewrite_trace () = { rw_passes = 0; rw_rules = [] }

let fire (t : rewrite_trace) (rule : string) : unit =
  match List.assoc_opt rule t.rw_rules with
  | Some r -> incr r
  | None -> t.rw_rules <- t.rw_rules @ [ (rule, ref 1) ]

let rule_count (t : rewrite_trace) (rule : string) : int =
  match List.assoc_opt rule t.rw_rules with Some r -> !r | None -> 0

let total_firings (t : rewrite_trace) : int =
  List.fold_left (fun acc (_, r) -> acc + !r) 0 t.rw_rules

(* ------------------------------------------------------------------ *)
(* Collector: one run's worth of statistics                            *)
(* ------------------------------------------------------------------ *)

type collector = {
  mutable co_phases : phase list;  (** first-seen order *)
  mutable co_plans : (string * op_node) list;  (** "main", "global $v", "function f" *)
  co_rewrite : rewrite_trace;
  co_sink : sink;
}

let collector () =
  { co_phases = []; co_plans = []; co_rewrite = rewrite_trace (); co_sink = sink () }

let phase (c : collector) (name : string) (f : unit -> 'a) : 'a =
  let ph =
    match List.find_opt (fun p -> String.equal p.ph_name name) c.co_phases with
    | Some p -> p
    | None ->
        let p = { ph_name = name; ph_secs = 0.0; ph_count = 0 } in
        c.co_phases <- c.co_phases @ [ p ];
        p
  in
  let t0 = now () in
  let finish () =
    let dt = now () -. t0 in
    ph.ph_secs <- ph.ph_secs +. dt;
    ph.ph_count <- ph.ph_count + 1;
    c.co_sink.sk_events <-
      { ev_name = name; ev_start = t0 -. c.co_sink.sk_epoch; ev_dur = dt; ev_attrs = [] }
      :: c.co_sink.sk_events
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* Re-registering a plan (each run re-compiles the closures) replaces
   the previous annotated tree for that name. *)
let set_plan (c : collector) (name : string) (root : op_node) : unit =
  c.co_plans <- List.filter (fun (n, _) -> not (String.equal n name)) c.co_plans @ [ (name, root) ]

(* Total (tuples, items) pulled through all operators of all annotated
   plans — the quantity the streaming evaluator's early termination
   bounds, and what the early-exit bench/CI smoke asserts on. *)
let pulled_totals (c : collector) : int * int =
  List.fold_left
    (fun acc (_, root) ->
      fold_nodes
        (fun (t, i) n -> (t + n.on_stats.op_tuples, i + n.on_stats.op_items))
        acc root)
    (0, 0) c.co_plans

let join_totals (c : collector) : join_stats =
  let total = join_stats () in
  List.iter
    (fun (_, root) ->
      ignore
        (fold_nodes
           (fun () n ->
             match n.on_join with
             | None -> ()
             | Some js ->
                 total.js_builds <- total.js_builds + js.js_builds;
                 total.js_build_tuples <- total.js_build_tuples + js.js_build_tuples;
                 total.js_probes <- total.js_probes + js.js_probes;
                 total.js_matches <- total.js_matches + js.js_matches;
                 total.js_sort_numeric <- total.js_sort_numeric + js.js_sort_numeric;
                 total.js_sort_string <- total.js_sort_string + js.js_sort_string)
           () root))
    c.co_plans;
  total

(* ------------------------------------------------------------------ *)
(* Text reports                                                        *)
(* ------------------------------------------------------------------ *)

let ms (s : float) : float = s *. 1000.0

let phases_to_string (c : collector) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %10.3f ms  (%d run%s)\n" p.ph_name (ms p.ph_secs)
           p.ph_count
           (if p.ph_count = 1 then "" else "s")))
    c.co_phases;
  Buffer.contents buf

let rewrite_to_string (t : rewrite_trace) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fixpoint passes: %d, rule firings: %d\n" t.rw_passes
       (total_firings t));
  List.iter
    (fun (rule, n) -> Buffer.add_string buf (Printf.sprintf "  %-36s %4d\n" rule !n))
    t.rw_rules;
  Buffer.contents buf

let global_counters_to_string () : string =
  let buf = Buffer.create 128 in
  List.iter
    (fun (name, v) ->
      if v > 0 then Buffer.add_string buf (Printf.sprintf "%-24s %10d\n" name v))
    (global_counters ());
  Buffer.contents buf

let join_stats_to_string (js : join_stats) : string =
  let sort =
    if js.js_sort_numeric = 0 && js.js_sort_string = 0 then ""
    else Printf.sprintf ", sorted=%d num/%d str" js.js_sort_numeric js.js_sort_string
  in
  Printf.sprintf "builds=%d (%d tuples), probes=%d, matches=%d%s" js.js_builds
    js.js_build_tuples js.js_probes js.js_matches sort

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let join_stats_to_json (js : join_stats) : json =
  Obj
    [
      ("builds", Int js.js_builds);
      ("build_tuples", Int js.js_build_tuples);
      ("probes", Int js.js_probes);
      ("matches", Int js.js_matches);
      ("sort_numeric", Int js.js_sort_numeric);
      ("sort_string", Int js.js_sort_string);
    ]

let rec op_node_to_json (n : op_node) : json =
  let st = n.on_stats in
  Obj
    ([
       ("op", Str n.on_label);
       ("calls", Int st.op_calls);
       ("time_ms", Float (ms st.op_secs));
       ("tuples", Int st.op_tuples);
       ("items", Int st.op_items);
       ( "estimated_rows",
         match n.on_est with Some e -> Float e | None -> Null );
       ("actual_rows", Int (st.op_tuples + st.op_items));
     ]
    @ (match n.on_stream with
      | Opaque -> []
      | k -> [ ("mode", Str (stream_kind_name k)) ])
    @ (match n.on_join with
      | None -> []
      | Some js -> [ ("join", join_stats_to_json js) ])
    @
    match n.on_children with
    | [] -> []
    | cs -> [ ("children", Arr (List.map op_node_to_json cs)) ])

let rewrite_to_json (t : rewrite_trace) : json =
  Obj
    [
      ("passes", Int t.rw_passes);
      ("firings", Int (total_firings t));
      ("rules", Obj (List.map (fun (rule, n) -> (rule, Int !n)) t.rw_rules));
    ]

let phases_to_json (c : collector) : json =
  Arr
    (List.map
       (fun p ->
         Obj
           [
             ("phase", Str p.ph_name);
             ("time_ms", Float (ms p.ph_secs));
             ("runs", Int p.ph_count);
           ])
       c.co_phases)

let collector_to_json ?(plans = true) (c : collector) : json =
  let pulled_tuples, pulled_items = pulled_totals c in
  Obj
    ([
       ("phases", phases_to_json c);
       ("rewrite", rewrite_to_json c.co_rewrite);
       ("joins", join_stats_to_json (join_totals c));
       ( "pulled",
         Obj [ ("tuples", Int pulled_tuples); ("items", Int pulled_items) ] );
       ( "counters",
         Obj (List.map (fun (name, v) -> (name, Int v)) (global_counters ())) );
     ]
    @
    if plans then
      [
        ( "plans",
          Arr
            (List.map
               (fun (name, root) ->
                 Obj [ ("name", Str name); ("plan", op_node_to_json root) ])
               c.co_plans) );
      ]
    else [])

let collector_to_json_string ?plans (c : collector) : string =
  json_to_string (collector_to_json ?plans c)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Minimal writer for the Prometheus text format (version 0.0.4): one
   # HELP and # TYPE line per family followed by its samples.  Summaries
   are rendered the canonical way — quantile-labelled samples plus the
   _sum/_count pair. *)

type prom_family =
  | Prom_counter of string * string * ((string * string) list * float) list
  | Prom_gauge of string * string * ((string * string) list * float) list
  | Prom_summary of string * string * (float * float) list * float * int
      (* name, help, (quantile, value) list, sum, count *)

let prom_escape_help (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_escape_label (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_value (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prom_sample (buf : Buffer.t) (name : string)
    (labels : (string * string) list) (v : float) : unit =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (prom_escape_label value);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (prom_value v);
  Buffer.add_char buf '\n'

let prom_header (buf : Buffer.t) (name : string) (help : string) (kind : string) :
    unit =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (prom_escape_help help)
       name kind)

let prometheus_to_string (families : prom_family list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fam ->
      match fam with
      | Prom_counter (name, help, samples) ->
          prom_header buf name help "counter";
          List.iter (fun (labels, v) -> prom_sample buf name labels v) samples
      | Prom_gauge (name, help, samples) ->
          prom_header buf name help "gauge";
          List.iter (fun (labels, v) -> prom_sample buf name labels v) samples
      | Prom_summary (name, help, quantiles, sum, count) ->
          prom_header buf name help "summary";
          List.iter
            (fun (q, v) ->
              prom_sample buf name [ ("quantile", Printf.sprintf "%g" q) ] v)
            quantiles;
          prom_sample buf (name ^ "_sum") [] sum;
          prom_sample buf (name ^ "_count") [] (float_of_int count))
    families;
  Buffer.contents buf

(* Render a histogram as a Prometheus summary family: p50/p95/p99 over
   the retained window, _sum/_count over the lifetime. *)
let histogram_prom_summary (h : histogram) ~(name : string) ~(help : string) :
    prom_family =
  let sorted = window_snapshot h in
  let pct = pct_of sorted in
  Prom_summary
    ( name,
      help,
      [ (0.5, pct 0.5); (0.95, pct 0.95); (0.99, pct 0.99) ],
      float_of_int (Atomic.get h.hg_sum_fx) /. fixed_scale,
      Atomic.get h.hg_count )
