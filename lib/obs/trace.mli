(** Request tracing: a trace is a causally-linked tree of timed spans
    covering one server request (admission → queue wait → deadline
    arming → plan-cache lookup / compile → eval → serialize → reply
    write), identified by a process-unique trace id.

    A trace is mutated by exactly one thread at a time (the admitting
    reader thread, then — after the queue hand-off, which provides the
    happens-before edge — the worker domain), so no locking is done on
    the trace itself.  Finished traces land in bounded per-domain ring
    buffers: storing is a plain slot write plus an atomic cursor bump;
    the ring registry is only locked at ring creation and lookup. *)

type span = {
  sp_id : int;  (** per-trace sequential, root is 1 *)
  sp_parent : int;  (** 0 = no parent (the root span) *)
  sp_name : string;
  sp_start_ms : float;  (** relative to the trace epoch *)
  mutable sp_dur_ms : float;
  mutable sp_attrs : (string * string) list;
}

type t = {
  tr_id : int;
  tr_op : string;
  mutable tr_source : string;
  tr_epoch : float;  (** wall clock at trace start *)
  mutable tr_spans : span list;  (** reverse creation order *)
  mutable tr_stack : span list;  (** open spans, innermost first *)
  mutable tr_next : int;
  mutable tr_outcome : string;  (** "" until finished *)
  mutable tr_total_ms : float;
  mutable tr_finished : bool;
}

(** {1 Trace ids} *)

val set_seed : int -> unit
(** Make subsequent trace ids sequential from [n]: the deterministic
    test mode (also reachable via the [XQC_TRACE_SEED] environment
    variable).  The default seed mixes PID and clock so concurrent
    servers on one host don't collide. *)

(** {1 Recording} *)

val start : ?epoch:float -> op:string -> unit -> t
(** Allocate a trace id and open the root "request" span.  [epoch]
    backdates the trace start (e.g. to when the request line was
    read). *)

val id : t -> int
val set_source : t -> string -> unit

val open_span : t -> ?attrs:(string * string) list -> string -> span
(** Open a span under the innermost open span; it becomes the innermost
    open span. *)

val close_span : t -> span -> unit
(** Close the span (and any straggler opened after it). *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; an escaping exception is recorded as an
    ["error"] attribute. *)

val add_span :
  t -> ?attrs:(string * string) list -> t0:float -> t1:float -> string -> unit
(** Retrospective span for the absolute-clock interval [t0, t1]
    (e.g. queue wait measured across the hand-off), parented under the
    innermost open span. *)

val event : t -> ?attrs:(string * string) list -> string -> unit
(** Zero-duration span at the current instant. *)

val annotate : t -> (string * string) list -> unit
(** Append attributes to the innermost open span. *)

val finish : t -> outcome:string -> float
(** Close all open spans, stamp the outcome and total, and store the
    trace in the calling domain's ring.  Returns the total duration in
    milliseconds.  Idempotent. *)

(** {1 Ambient current trace}

    The worker installs the request's trace as the domain's current
    trace so lower layers (plan cache, document resolver) can record
    spans with no API threading.  All helpers are no-ops without a
    current trace. *)

val current : unit -> t option
val with_current : t option -> (unit -> 'a) -> 'a
val in_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
val annotate_current : (string * string) list -> unit

val opt_span :
  t option -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
val opt_event : t option -> ?attrs:(string * string) list -> string -> unit

(** {1 Retrieval} *)

val find : int -> t option
(** Look a finished trace up by id across all domain rings. *)

val recent : int -> t list
(** The [n] most recently started finished traces, newest first. *)

val stored_count : unit -> int

val reset : ?seed:int -> unit -> unit
(** Clear every ring in place and optionally reseed the id counter
    (tests). *)

(** {1 Rendering} *)

val spans : t -> span list
(** In creation order (root first). *)

val span_to_json : span -> Obs.json
val spans_to_json : t -> Obs.json
val to_json : t -> Obs.json
val summary_to_json : t -> Obs.json

val timeline_to_string : t -> string
(** Human-readable indented timeline, one span per line. *)

(** {1 Well-formedness} *)

val well_formed : t -> (unit, string) result
(** Check that exactly one root exists, every parent exists and precedes
    its child, and every span's interval nests within its parent's. *)
