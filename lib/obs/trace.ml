(* Request tracing: every admitted server request gets a trace — a
   causally-linked tree of timed spans (admission → queue wait →
   deadline arming → plan-cache lookup / compile → eval → serialize →
   reply write) identified by a process-unique trace id.

   Ownership model: a trace is mutated by exactly one thread at a time —
   the reader thread that admits the request, then (after the queue
   hand-off, which provides the happens-before edge) the worker domain
   that serves it.  No lock is ever taken on the trace itself.

   Storage: finished traces are kept in bounded per-domain ring buffers.
   Each domain owns its ring (domain-local state), so storing a trace is
   a plain slot write plus an atomic cursor bump — no locking on the hot
   path.  The global registry of rings is only locked when a ring is
   created (once per domain) and when a reader scans for a trace id.

   Determinism: trace ids come from one atomic counter, seeded from the
   PID and clock so concurrent servers on one host don't collide, and
   re-seedable ([set_seed], or the XQC_TRACE_SEED environment variable)
   so tests can assert exact ids.  Span ids are per-trace sequential
   (the root span is always 1), deterministic by construction. *)

module Obs = Obs

type span = {
  sp_id : int;
  sp_parent : int;  (* 0 = no parent (the root span) *)
  sp_name : string;
  sp_start_ms : float;  (* relative to the trace epoch *)
  mutable sp_dur_ms : float;
  mutable sp_attrs : (string * string) list;
}

type t = {
  tr_id : int;
  tr_op : string;
  mutable tr_source : string;  (* query text / statement name, "" if unset *)
  tr_epoch : float;  (* wall clock at trace start (Obs.now) *)
  mutable tr_spans : span list;  (* reverse creation order *)
  mutable tr_stack : span list;  (* open spans, innermost first *)
  mutable tr_next : int;  (* next span id *)
  mutable tr_outcome : string;  (* "" until finished *)
  mutable tr_total_ms : float;
  mutable tr_finished : bool;
}

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

let default_seed () =
  match Sys.getenv_opt "XQC_TRACE_SEED" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None ->
      (* PID and clock mixed into a positive id base; only relevant when
         several servers log trace ids to a shared place. *)
      (((Unix.getpid () * 2654435761) lxor int_of_float (Unix.gettimeofday () *. 1e3))
      land 0x3FFFFFFF)
      lor 1

let next_id = Atomic.make (default_seed ())
let set_seed (n : int) : unit = Atomic.set next_id n

(* ------------------------------------------------------------------ *)
(* Span recording                                                      *)
(* ------------------------------------------------------------------ *)

let rel (tr : t) (time : float) : float = (time -. tr.tr_epoch) *. 1000.0

let start ?epoch ~(op : string) () : t =
  let ep = match epoch with Some e -> e | None -> Obs.now () in
  let id = Atomic.fetch_and_add next_id 1 in
  let root =
    {
      sp_id = 1;
      sp_parent = 0;
      sp_name = "request";
      sp_start_ms = 0.0;
      sp_dur_ms = 0.0;
      sp_attrs = [ ("op", op) ];
    }
  in
  {
    tr_id = id;
    tr_op = op;
    tr_source = "";
    tr_epoch = ep;
    tr_spans = [ root ];
    tr_stack = [ root ];
    tr_next = 2;
    tr_outcome = "";
    tr_total_ms = 0.0;
    tr_finished = false;
  }

let id (tr : t) : int = tr.tr_id
let set_source (tr : t) (s : string) : unit = tr.tr_source <- s

let parent_id (tr : t) : int =
  match tr.tr_stack with s :: _ -> s.sp_id | [] -> 0

let open_span (tr : t) ?(attrs = []) (name : string) : span =
  let sp =
    {
      sp_id = tr.tr_next;
      sp_parent = parent_id tr;
      sp_name = name;
      sp_start_ms = rel tr (Obs.now ());
      sp_dur_ms = 0.0;
      sp_attrs = attrs;
    }
  in
  tr.tr_next <- tr.tr_next + 1;
  tr.tr_spans <- sp :: tr.tr_spans;
  tr.tr_stack <- sp :: tr.tr_stack;
  sp

(* Close [sp] and any span opened after it that was left open (a
   straggler closes at the same instant as its enclosing span). *)
let close_span (tr : t) (sp : span) : unit =
  let now_ms = rel tr (Obs.now ()) in
  let rec pop = function
    | [] -> []
    | s :: rest ->
        s.sp_dur_ms <- now_ms -. s.sp_start_ms;
        if s == sp then rest else pop rest
  in
  if List.memq sp tr.tr_stack then tr.tr_stack <- pop tr.tr_stack

let span (tr : t) ?attrs (name : string) (f : unit -> 'a) : 'a =
  let sp = open_span tr ?attrs name in
  match f () with
  | v ->
      close_span tr sp;
      v
  | exception e ->
      sp.sp_attrs <- sp.sp_attrs @ [ ("error", Printexc.to_string e) ];
      close_span tr sp;
      raise e

(* Retrospective span: an interval [t0, t1] (absolute clock values,
   e.g. measured across the queue hand-off) recorded after the fact,
   parented under the innermost open span. *)
let add_span (tr : t) ?(attrs = []) ~(t0 : float) ~(t1 : float)
    (name : string) : unit =
  let sp =
    {
      sp_id = tr.tr_next;
      sp_parent = parent_id tr;
      sp_name = name;
      sp_start_ms = rel tr t0;
      sp_dur_ms = (t1 -. t0) *. 1000.0;
      sp_attrs = attrs;
    }
  in
  tr.tr_next <- tr.tr_next + 1;
  tr.tr_spans <- sp :: tr.tr_spans

let event (tr : t) ?attrs (name : string) : unit =
  let n = Obs.now () in
  add_span tr ?attrs ~t0:n ~t1:n name

let annotate (tr : t) (attrs : (string * string) list) : unit =
  match tr.tr_stack with
  | s :: _ -> s.sp_attrs <- s.sp_attrs @ attrs
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Per-domain ring storage                                             *)
(* ------------------------------------------------------------------ *)

let ring_capacity = 256

type ring = { rg_slots : t option array; rg_cursor : int Atomic.t }

let rings : ring list ref = ref []
let rings_lock = Mutex.create ()

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        { rg_slots = Array.make ring_capacity None; rg_cursor = Atomic.make 0 }
      in
      Mutex.protect rings_lock (fun () -> rings := r :: !rings);
      r)

(* Store into the calling domain's ring.  The slot write is plain (the
   domain is the only writer; option slots are word-sized pointers, so
   concurrent readers cannot observe a torn value) and the cursor bump
   publishes it. *)
let store_trace (tr : t) : unit =
  let r = Domain.DLS.get ring_key in
  let i = Atomic.fetch_and_add r.rg_cursor 1 in
  r.rg_slots.(i mod ring_capacity) <- Some tr

let finish (tr : t) ~(outcome : string) : float =
  if not tr.tr_finished then begin
    let now_ms = rel tr (Obs.now ()) in
    List.iter (fun s -> s.sp_dur_ms <- now_ms -. s.sp_start_ms) tr.tr_stack;
    tr.tr_stack <- [];
    tr.tr_outcome <- outcome;
    tr.tr_total_ms <- now_ms;
    tr.tr_finished <- true;
    store_trace tr
  end;
  tr.tr_total_ms

let all_stored () : t list =
  let rs = Mutex.protect rings_lock (fun () -> !rings) in
  List.concat_map
    (fun r ->
      Array.to_list r.rg_slots
      |> List.filter_map (fun slot ->
             match slot with Some tr when tr.tr_finished -> Some tr | _ -> None))
    rs

let find (trace_id : int) : t option =
  List.find_opt (fun tr -> tr.tr_id = trace_id) (all_stored ())

let recent (n : int) : t list =
  let all = all_stored () in
  let sorted = List.sort (fun a b -> compare b.tr_epoch a.tr_epoch) all in
  List.filteri (fun i _ -> i < n) sorted

let stored_count () : int = List.length (all_stored ())

(* Reset for tests: clear every ring in place (rings stay registered —
   a domain's ring is reachable through its domain-local key forever)
   and reseed the id counter. *)
let reset ?seed () : unit =
  let rs = Mutex.protect rings_lock (fun () -> !rings) in
  List.iter
    (fun r ->
      Array.fill r.rg_slots 0 ring_capacity None;
      Atomic.set r.rg_cursor 0)
    rs;
  match seed with Some n -> set_seed n | None -> ()

(* ------------------------------------------------------------------ *)
(* Ambient current trace                                               *)
(* ------------------------------------------------------------------ *)

(* The worker domain installs the request's trace as its current trace
   for the duration of the request, so lower layers (plan cache,
   document resolver) can add spans without any API threading.  All
   helpers are no-ops when no trace is current — the untraced hot path
   costs one domain-local read. *)

let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () : t option = !(Domain.DLS.get current_key)

let with_current (tro : t option) (f : unit -> 'a) : 'a =
  let cell = Domain.DLS.get current_key in
  let saved = !cell in
  cell := tro;
  Fun.protect ~finally:(fun () -> cell := saved) f

let in_span ?attrs (name : string) (f : unit -> 'a) : 'a =
  match current () with None -> f () | Some tr -> span tr ?attrs name f

let annotate_current (attrs : (string * string) list) : unit =
  match current () with None -> () | Some tr -> annotate tr attrs

(* Variants taking an explicit [t option] for layers that carry the
   trace in their own context record. *)
let opt_span (tro : t option) ?attrs (name : string) (f : unit -> 'a) : 'a =
  match tro with None -> f () | Some tr -> span tr ?attrs name f

let opt_event (tro : t option) ?attrs (name : string) : unit =
  match tro with None -> () | Some tr -> event tr ?attrs name

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let spans (tr : t) : span list = List.rev tr.tr_spans

let span_to_json (sp : span) : Obs.json =
  Obs.Obj
    ([
       ("id", Obs.Int sp.sp_id);
       ("parent", Obs.Int sp.sp_parent);
       ("name", Obs.Str sp.sp_name);
       ("start_ms", Obs.Float sp.sp_start_ms);
       ("dur_ms", Obs.Float sp.sp_dur_ms);
     ]
    @
    match sp.sp_attrs with
    | [] -> []
    | attrs ->
        [ ("attrs", Obs.Obj (List.map (fun (k, v) -> (k, Obs.Str v)) attrs)) ])

let spans_to_json (tr : t) : Obs.json =
  Obs.Arr (List.map span_to_json (spans tr))

let to_json (tr : t) : Obs.json =
  Obs.Obj
    ([ ("trace_id", Obs.Int tr.tr_id); ("op", Obs.Str tr.tr_op) ]
    @ (if String.equal tr.tr_source "" then []
       else [ ("source", Obs.Str tr.tr_source) ])
    @ [
        ("outcome", Obs.Str tr.tr_outcome);
        ("complete", Obs.Bool tr.tr_finished);
        ("total_ms", Obs.Float tr.tr_total_ms);
        ("spans", spans_to_json tr);
      ])

let summary_to_json (tr : t) : Obs.json =
  Obs.Obj
    [
      ("trace_id", Obs.Int tr.tr_id);
      ("op", Obs.Str tr.tr_op);
      ("outcome", Obs.Str tr.tr_outcome);
      ("total_ms", Obs.Float tr.tr_total_ms);
      ("spans", Obs.Int (List.length tr.tr_spans));
      ("age_s", Obs.Float (Obs.now () -. tr.tr_epoch));
    ]

let timeline_to_string (tr : t) : string =
  let sps = spans tr in
  let depth_of sp =
    let rec walk pid acc =
      if pid = 0 then acc
      else
        match List.find_opt (fun s -> s.sp_id = pid) sps with
        | Some p -> walk p.sp_parent (acc + 1)
        | None -> acc
    in
    walk sp.sp_parent 0
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "trace %d %s %s %.3fms%s\n" tr.tr_id tr.tr_op
       (if String.equal tr.tr_outcome "" then "(running)" else tr.tr_outcome)
       tr.tr_total_ms
       (if String.equal tr.tr_source "" then ""
        else
          let src =
            if String.length tr.tr_source > 60 then
              String.sub tr.tr_source 0 57 ^ "..."
            else tr.tr_source
          in
          "  " ^ String.map (fun c -> if c = '\n' then ' ' else c) src));
  let ordered =
    List.sort
      (fun a b ->
        match compare a.sp_start_ms b.sp_start_ms with
        | 0 -> compare a.sp_id b.sp_id
        | c -> c)
      sps
  in
  List.iter
    (fun sp ->
      Buffer.add_string buf
        (Printf.sprintf "  [%9.3f %9.3f] %s%s%s\n" sp.sp_start_ms
           (sp.sp_start_ms +. sp.sp_dur_ms)
           (String.make (2 * depth_of sp) ' ')
           sp.sp_name
           (match sp.sp_attrs with
           | [] -> ""
           | attrs ->
               " "
               ^ String.concat " "
                   (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))))
    ordered;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Well-formedness (used by tests and CI)                              *)
(* ------------------------------------------------------------------ *)

(* A trace is well-formed when exactly one root exists, every other
   span's parent exists and was created before it, and every span's
   interval nests within its parent's (with a small tolerance for
   clock granularity). *)
let well_formed (tr : t) : (unit, string) result =
  let sps = spans tr in
  let eps = 0.001 in
  let roots = List.filter (fun s -> s.sp_parent = 0) sps in
  match roots with
  | [] -> Error "no root span"
  | _ :: _ :: _ -> Error "multiple root spans"
  | [ root ] ->
      let rec check = function
        | [] -> Ok ()
        | sp :: rest when sp == root -> check rest
        | sp :: rest -> (
            match List.find_opt (fun p -> p.sp_id = sp.sp_parent) sps with
            | None ->
                Error
                  (Printf.sprintf "span %d (%s): parent %d does not exist"
                     sp.sp_id sp.sp_name sp.sp_parent)
            | Some p ->
                if p.sp_id >= sp.sp_id then
                  Error
                    (Printf.sprintf
                       "span %d (%s): parent %d was created after it" sp.sp_id
                       sp.sp_name p.sp_id)
                else if sp.sp_start_ms +. eps < p.sp_start_ms then
                  Error
                    (Printf.sprintf
                       "span %d (%s) starts before its parent %d" sp.sp_id
                       sp.sp_name p.sp_id)
                else if
                  tr.tr_finished
                  && sp.sp_start_ms +. sp.sp_dur_ms
                     > p.sp_start_ms +. p.sp_dur_ms +. eps
                then
                  Error
                    (Printf.sprintf
                       "span %d (%s) ends after its parent %d" sp.sp_id
                       sp.sp_name p.sp_id)
                else check rest)
      in
      check sps
