(** Slow-query log: a bounded ring of the N worst requests over a
    threshold, kept sorted worst-first.  Once full, a new entry must
    beat the current minimum, so the final contents are the global
    top-N regardless of arrival order.  Mutation happens under one
    instrumented mutex ("slow_log" in the lock table). *)

type entry = {
  en_op : string;
  en_source : string;
  en_outcome : string;
  en_ms : float;
  en_trace_id : int;  (** 0 = the request was not traced *)
  en_spans : Obs.json;  (** span timeline snapshot, [Arr []] if untraced *)
  en_at : float;  (** wall clock when the request finished *)
  mutable en_explain : string option;
}

type t

val create : ?capacity:int -> ?threshold_ms:float -> unit -> t
(** Defaults: capacity 16, threshold 100 ms. *)

val threshold_ms : t -> float

val entry :
  ?outcome:string ->
  ?trace_id:int ->
  ?spans:Obs.json ->
  op:string ->
  source:string ->
  ms:float ->
  at:float ->
  unit ->
  entry

val note : t -> entry -> bool
(** Offer an entry; [true] when it entered the ring (worth spending the
    effort of attaching an EXPLAIN ANALYZE).  Entries under the
    threshold are always rejected. *)

val set_explain : t -> entry -> string -> unit

val entries : t -> entry list
(** Worst first. *)

val seen : t -> int
(** Requests ever seen over the threshold (admitted or not). *)

val clear : t -> unit
val entry_to_json : entry -> Obs.json
val to_json : t -> Obs.json
