(* Slow-query log: a bounded ring of the N worst requests whose total
   time exceeded a threshold.  Each entry captures the query source, the
   request's span timeline (when it was traced) and — filled in by the
   server after admission — an EXPLAIN ANALYZE of a re-run.

   The ring is kept sorted worst-first; once full, a new entry must beat
   the current minimum to be admitted (so the final contents are the
   global top-N regardless of arrival order — the property the racing-
   domains test asserts).  All mutation happens under one instrumented
   mutex, so the log's own contention shows up in the lock table. *)

module Obs = Obs

type entry = {
  en_op : string;
  en_source : string;
  en_outcome : string;
  en_ms : float;
  en_trace_id : int;  (* 0 = the request was not traced *)
  en_spans : Obs.json;  (* span timeline snapshot, Arr [] if untraced *)
  en_at : float;  (* wall clock when the request finished *)
  mutable en_explain : string option;
}

type t = {
  sl_lock : Obs.tmutex;
  sl_capacity : int;
  sl_threshold_ms : float;
  mutable sl_entries : entry list;  (* sorted by en_ms, worst first *)
  mutable sl_admitted : int;  (* entries ever admitted to the ring *)
  mutable sl_seen : int;  (* requests over threshold, admitted or not *)
}

let create ?(capacity = 16) ?(threshold_ms = 100.0) () : t =
  {
    sl_lock = Obs.tmutex "slow_log";
    sl_capacity = max 1 capacity;
    sl_threshold_ms = threshold_ms;
    sl_entries = [];
    sl_admitted = 0;
    sl_seen = 0;
  }

let threshold_ms (t : t) : float = t.sl_threshold_ms

let entry ?(outcome = "") ?(trace_id = 0) ?(spans = Obs.Arr []) ~(op : string)
    ~(source : string) ~(ms : float) ~(at : float) () : entry =
  {
    en_op = op;
    en_source = source;
    en_outcome = outcome;
    en_ms = ms;
    en_trace_id = trace_id;
    en_spans = spans;
    en_at = at;
    en_explain = None;
  }

(* Insert keeping worst-first order; ties keep the earlier entry first. *)
let rec insert_sorted (e : entry) = function
  | [] -> [ e ]
  | x :: rest when x.en_ms >= e.en_ms -> x :: insert_sorted e rest
  | rest -> e :: rest

(* Offer an entry.  Returns [true] when it entered the ring (the caller
   then spends the effort of attaching an EXPLAIN ANALYZE). *)
let note (t : t) (e : entry) : bool =
  if e.en_ms < t.sl_threshold_ms then false
  else
    Obs.with_lock t.sl_lock (fun () ->
        t.sl_seen <- t.sl_seen + 1;
        let n = List.length t.sl_entries in
        if n < t.sl_capacity then begin
          t.sl_entries <- insert_sorted e t.sl_entries;
          t.sl_admitted <- t.sl_admitted + 1;
          true
        end
        else
          let worst_kept = List.nth t.sl_entries (n - 1) in
          if e.en_ms > worst_kept.en_ms then begin
            (* evict the least-slow entry *)
            t.sl_entries <-
              insert_sorted e (List.filteri (fun i _ -> i < n - 1) t.sl_entries);
            t.sl_admitted <- t.sl_admitted + 1;
            true
          end
          else false)

let set_explain (t : t) (e : entry) (text : string) : unit =
  Obs.with_lock t.sl_lock (fun () -> e.en_explain <- Some text)

let entries (t : t) : entry list =
  Obs.with_lock t.sl_lock (fun () -> t.sl_entries)

let seen (t : t) : int = Obs.with_lock t.sl_lock (fun () -> t.sl_seen)

let clear (t : t) : unit =
  Obs.with_lock t.sl_lock (fun () ->
      t.sl_entries <- [];
      t.sl_admitted <- 0;
      t.sl_seen <- 0)

let entry_to_json (e : entry) : Obs.json =
  Obs.Obj
    ([
       ("op", Obs.Str e.en_op);
       ("source", Obs.Str e.en_source);
       ("outcome", Obs.Str e.en_outcome);
       ("ms", Obs.Float e.en_ms);
       ("at", Obs.Float e.en_at);
     ]
    @ (if e.en_trace_id = 0 then []
       else [ ("trace_id", Obs.Int e.en_trace_id) ])
    @ [ ("spans", e.en_spans) ]
    @
    match e.en_explain with
    | None -> []
    | Some text -> [ ("explain", Obs.Str text) ])

let to_json (t : t) : Obs.json =
  Obs.with_lock t.sl_lock (fun () ->
      Obs.Obj
        [
          ("threshold_ms", Obs.Float t.sl_threshold_ms);
          ("capacity", Obs.Int t.sl_capacity);
          ("seen", Obs.Int t.sl_seen);
          ("entries", Obs.Arr (List.map entry_to_json t.sl_entries));
        ])
