(** Shared domain pool: one budget for server workers and intra-query
    partition tasks.

    The budget resolves as [--par] override > [XQC_PAR] env (off|N) >
    {!Domain.recommended_domain_count}.  With a budget of 1 (single-core
    box, or parallelism switched off) every construct here degrades to
    the plain sequential loop and no helper domain is ever spawned. *)

val budget : unit -> int
(** Effective total domain budget for the process (>= 1). *)

val set_budget : int option -> unit
(** CLI override ([--par N]); [None] restores the env/hardware default. *)

val set_reserved_workers : int -> unit
(** Declare how many long-lived worker domains (the query server's
    request workers) are drawing from the budget, so {!query_degree}
    divides the remaining slots instead of multiplying them. *)

val query_degree : unit -> int
(** Partition budget for one query: about [budget / reserved_workers],
    at least 1. *)

val parallel_list : (unit -> 'a) list -> 'a list
(** Run the thunks as one batch of claimable cells — helpers steal what
    they can, the caller runs the rest — and return the results in
    order.  The first task exception is re-raised in the caller after
    the whole batch settles.  Nested calls are deadlock-free (the
    caller never blocks on work nobody owns); with budget 1 this is
    exactly [List.map (fun f -> f ())]. *)

val run_thunks : (unit -> unit) list -> unit
(** [parallel_list] for effect-only tasks. *)

val helpers_alive : unit -> int
(** Helper domains spawned so far (monotone; for tests/stats). *)
