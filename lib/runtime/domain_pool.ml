(* A small shared domain pool: one budget for every source of
   parallelism in the process.

   The query server's worker domains and the intra-query partition
   tasks of Par_exec draw from the same global budget, so a 4-domain
   box running 4 server workers does not fan each request out 4-ways
   again (16 runnable domains on 4 cores is how the 1->4 worker
   regression in bench/BENCH_server.json happened in the first place).

   Budget resolution order: the --par CLI override, then the XQC_PAR
   environment variable (off|0|no disables, a positive integer forces),
   then [Domain.recommended_domain_count ()].  On a single-core box the
   default budget is 1 and every parallel construct degrades to the
   plain sequential loop — graceful no-op, no helper domain is ever
   spawned.

   Execution model: [parallel_list] turns a list of thunks into a batch
   of claimable cells.  The cells are published to a global queue served
   by lazily-spawned helper domains (at most budget-1 of them, ever),
   and then the *caller claims and runs unclaimed cells itself*.  Every
   cell is claimed exactly once with a compare-and-set, so the batch
   completes even when no helper is free — the caller just runs the
   whole batch inline.  That property makes nested batches
   deadlock-free: a helper that submits a sub-batch finishes it with its
   own hands if nobody else will.  Stale queue entries for cells the
   caller already ran are drained as no-ops. *)

module Obs = Xqc_obs.Obs

let c_tasks = Obs.global_counter "par_tasks"
let c_batches = Obs.global_counter "par_batches"
let c_inline = Obs.global_counter "par_inline"
let c_stolen = Obs.global_counter "par_tasks_helped"

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let env_budget =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "XQC_PAR") with
  | Some ("off" | "0" | "no") -> Some 1
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let override : int option ref = ref None
let hw_budget = lazy (Domain.recommended_domain_count ())

let budget () =
  match !override with
  | Some n -> max 1 n
  | None -> (
      match env_budget with Some n -> n | None -> Lazy.force hw_budget)

let set_budget o = override := o

(* Server workers register themselves so per-query parallelism shares
   the budget instead of multiplying it: with W workers on a B-domain
   budget each in-flight query gets about B/W partition slots. *)
let reserved = ref 1
let set_reserved_workers w = reserved := max 1 w
let query_degree () = max 1 (budget () / max 1 !reserved)

(* ------------------------------------------------------------------ *)
(* Helper domains and the claimable-cell queue                         *)
(* ------------------------------------------------------------------ *)

let qm = Mutex.create ()
let qc = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let stop = ref false
let helpers : unit Domain.t list ref = ref []
let spawned = ref 0

let helper_loop () =
  let rec loop () =
    Mutex.lock qm;
    while Queue.is_empty queue && not !stop do
      Condition.wait qc qm
    done;
    if Queue.is_empty queue then Mutex.unlock qm (* stop requested *)
    else begin
      let job = Queue.pop queue in
      Mutex.unlock qm;
      (try job () with _ -> ());
      loop ()
    end
  in
  loop ()

(* Helpers are joined at exit so the main domain never terminates while
   pool domains are parked on the condition variable. *)
let shutdown () =
  Mutex.lock qm;
  stop := true;
  Condition.broadcast qc;
  Mutex.unlock qm;
  List.iter Domain.join !helpers;
  helpers := []

let () = at_exit shutdown

(* Lazily top the pool up to [want] helpers (never beyond budget-1). *)
let ensure_helpers (want : int) =
  let cap = min want (budget () - 1) in
  if !spawned < cap then begin
    Mutex.lock qm;
    while !spawned < cap && not !stop do
      helpers := Domain.spawn helper_loop :: !helpers;
      incr spawned
    done;
    Mutex.unlock qm
  end

let helpers_alive () = !spawned

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let parallel_list (fs : (unit -> 'a) list) : 'a list =
  match fs with
  | [] -> []
  | [ f ] ->
      Obs.incr_counter c_inline;
      [ f () ]
  | _ when budget () <= 1 ->
      Obs.incr_counter c_inline;
      List.map (fun f -> f ()) fs
  | _ ->
      let thunks = Array.of_list fs in
      let n = Array.length thunks in
      let results : 'a option array = Array.make n None in
      let claimed = Array.init n (fun _ -> Atomic.make false) in
      let pending = Atomic.make n in
      let failed : exn option Atomic.t = Atomic.make None in
      let bm = Mutex.create () and bc = Condition.create () in
      let exec ~helped k =
        if Atomic.compare_and_set claimed.(k) false true then begin
          (try results.(k) <- Some (thunks.(k) ())
           with e ->
             ignore (Atomic.compare_and_set failed None (Some e)));
          Obs.incr_counter c_tasks;
          if helped then Obs.incr_counter c_stolen;
          if Atomic.fetch_and_add pending (-1) = 1 then begin
            Mutex.lock bm;
            Condition.broadcast bc;
            Mutex.unlock bm
          end
        end
      in
      Obs.incr_counter c_batches;
      ensure_helpers (n - 1);
      (* publish cells 1..n-1; the caller starts on cell 0 and then
         sweeps for anything the helpers did not get to *)
      Mutex.lock qm;
      for k = 1 to n - 1 do
        Queue.add (fun () -> exec ~helped:true k) queue
      done;
      Condition.broadcast qc;
      Mutex.unlock qm;
      for k = 0 to n - 1 do
        exec ~helped:false k
      done;
      Mutex.lock bm;
      while Atomic.get pending > 0 do
        Condition.wait bc bm
      done;
      Mutex.unlock bm;
      (* re-raise the first task failure as if it happened inline, so
         Timeout / Dynamic_error behave identically to sequential runs *)
      (match Atomic.get failed with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let run_thunks (fs : (unit -> unit) list) : unit =
  ignore (parallel_list fs : unit list)
