(** Intra-query partitioned execution: split a materialized,
    document-ordered operator input into contiguous chunks evaluated on
    the shared domain pool ({!Domain_pool}).

    Contiguous pre-order partitions preserve document order per
    partition by construction, so concatenation is the order-merge on
    disjoint inputs; {!merge_node_items} closes the rare nested cases
    with a sort+dedup whose already-sorted fast path is O(n). *)

open Xqc_xml

val par_min_items : int ref
(** Runtime width gate: inputs narrower than this run sequentially even
    under a [par > 1] plan annotation (default 256; tests lower it to
    force partitioning on small documents). *)

val eligible : par:int -> int -> bool
(** [eligible ~par width]: worth partitioning — plan budget above 1,
    width at or above {!par_min_items}, pool budget above 1. *)

val chunk : int -> 'a list -> 'a list list
(** At most [k] contiguous, near-equal, non-empty chunks (exposed for
    tests). *)

val chunk_by_root : Item.sequence -> Item.sequence list option
(** One chunk per document: group consecutive nodes sharing a root —
    the partitioning for [fn:collection] inputs, where concatenating
    per-chunk outputs preserves the collection's binding order.
    [None] when the input holds an atom or spans fewer than two
    roots. *)

val run_chunks :
  ctx:Dynamic_ctx.t ->
  task:(int -> Dynamic_ctx.t -> 'a list -> 'b) ->
  'a list list ->
  'b list
(** Run caller-made chunks on the domain pool (the caller participates),
    returning per-chunk results in chunk order; chunks beyond the pool
    budget queue.  The first task exception is re-raised in the caller
    after the batch settles. *)

val run_partitions :
  par:int ->
  ctx:Dynamic_ctx.t ->
  task:(int -> Dynamic_ctx.t -> 'a list -> 'b) ->
  'a list ->
  'b list
(** Chunk the input, run [task partition_index cloned_ctx chunk] for
    each chunk on the domain pool (the caller participates), and return
    per-chunk results in chunk order.  The first task exception is
    re-raised in the caller after the batch settles. *)

val merge_node_items : Item.sequence list -> Item.sequence
(** Concatenate per-partition node outputs and restore global document
    order + uniqueness (O(n) when partitions were disjoint, i.e. almost
    always).
    @raise Dynamic_ctx.Dynamic_error on a non-node item. *)
