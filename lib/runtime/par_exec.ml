(* Intra-query partitioned execution (the VXQuery direction of ROADMAP
   Open item 1): generic combinators that split a materialized operator
   input into contiguous chunks and evaluate them on the shared domain
   pool.

   Why contiguous chunks are the right partitioning for XQuery: every
   strict operator input that reaches these combinators is already in
   document order (preorder-nid order) — the per-qname index arrays are
   nid-sorted, and the strict step chain re-sorts between steps.
   Splitting a nid-sorted sequence into contiguous runs therefore yields
   partitions whose outputs are (a) each in document order by the same
   argument as the sequential evaluation, and (b) mutually ordered
   whenever the inputs' subtrees are disjoint — the overwhelmingly
   common case.  Concatenating per-partition outputs then *is* the
   document-order merge.  The one exception is nested context nodes
   (one partition's input inside another's subtree), where outputs can
   interleave or duplicate across partitions; the consumer closes with
   [merge_node_items], whose [Node.sort_doc_order] is O(n) on the
   already-sorted common case and only pays a real sort+dedup when
   nesting actually disturbed the order — exactly the guarantee the
   sequential strict evaluator provides.

   Every partition task runs on a [Dynamic_ctx.clone_for_task] context:
   shared read-only schema/globals/functions/frame, private document
   cache, no trace (single-owner), inherited deadline.  The combinators
   re-gate on the *actual* input width ([eligible]), so the planner's
   [par] annotation is a budget, not a command — a plan annotated
   optimistically before any index statistics existed costs one integer
   comparison per call when the input turns out small. *)

open Xqc_xml

(* Minimum materialized input width worth partitioning: below this the
   pool dispatch outweighs the work.  Tests lower it to force the
   machinery onto small documents. *)
let par_min_items = ref 256

let eligible ~par (width : int) : bool =
  par > 1 && width >= !par_min_items && Domain_pool.budget () > 1

(* At most [k] contiguous, near-equal, non-empty chunks. *)
let chunk (k : int) (xs : 'a list) : 'a list list =
  let n = List.length xs in
  if k <= 1 || n <= 1 then [ xs ]
  else begin
    let k = min k n in
    let arr = Array.of_list xs in
    let out = ref [] in
    for i = k - 1 downto 0 do
      let lo = i * n / k and hi = (i + 1) * n / k in
      out := Array.to_list (Array.sub arr lo (hi - lo)) :: !out
    done;
    !out
  end

(* One chunk per document: group consecutive nodes sharing a root.
   The natural partitioning for fn:collection-style inputs, where whole
   documents are the unit of work and chunk concatenation preserves the
   collection's binding order (roots are distinct trees, so per-chunk
   outputs cannot interleave).  [None] when the input holds an atom or
   spans fewer than two roots — the caller falls back to contiguous
   width chunking. *)
let chunk_by_root (items : Item.sequence) : Item.sequence list option =
  let exception Not_nodes in
  let root_of = function
    | Item.Node n -> Node.root n
    | Item.Atom _ -> raise Not_nodes
  in
  match items with
  | [] | [ _ ] -> None
  | first :: _ -> (
      try
        let chunks = ref [] and cur = ref [] in
        let cur_root = ref (root_of first) in
        List.iter
          (fun it ->
            let r = root_of it in
            if r == !cur_root then cur := it :: !cur
            else begin
              chunks := List.rev !cur :: !chunks;
              cur := [ it ];
              cur_root := r
            end)
          items;
        chunks := List.rev !cur :: !chunks;
        match List.rev !chunks with
        | [] | [ _ ] -> None
        | cs -> Some cs
      with Not_nodes -> None)

(* Run caller-made chunks on the domain pool: [task i ctx_i chunk_i]
   for each, returning per-chunk results in chunk order.  Each task gets
   its own cloned context; the first exception is re-raised in the
   caller.  A single-chunk list runs inline on the caller's own
   context.  More chunks than the pool budget simply queue. *)
let run_chunks ~(ctx : Dynamic_ctx.t)
    ~(task : int -> Dynamic_ctx.t -> 'a list -> 'b) (chunks : 'a list list) :
    'b list =
  match chunks with
  | [] -> []
  | [ one ] -> [ task 0 ctx one ]
  | chunks ->
      Domain_pool.parallel_list
        (List.mapi
           (fun i c ->
             let tctx = Dynamic_ctx.clone_for_task ctx in
             fun () -> task i tctx c)
           chunks)

(* Split [items] into at most [par] contiguous chunks and run them. *)
let run_partitions ~(par : int) ~(ctx : Dynamic_ctx.t)
    ~(task : int -> Dynamic_ctx.t -> 'a list -> 'b) (items : 'a list) :
    'b list =
  run_chunks ~ctx ~task (chunk par items)

(* Document-order merge of per-partition node outputs: concatenation is
   already the merge on disjoint partitions (the common case, where
   [sort_doc_order] takes its O(n) already-sorted fast path); nested
   partitions fall through to the real sort + dedup, matching the
   sequential strict semantics. *)
let merge_node_items (parts : Item.sequence list) : Item.sequence =
  let nodes =
    List.concat_map
      (List.map (function
        | Item.Node n -> n
        | Item.Atom _ ->
            Dynamic_ctx.dynamic_error
              "partitioned step produced an atomic value"))
      parts
  in
  List.map (fun n -> Item.Node n) (Node.sort_doc_order nodes)
