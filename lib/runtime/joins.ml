(* XQuery-aware physical join algorithms — Section 6 of the paper.

   The hash join is Figure 6: the inner input is materialized into a hash
   table keyed on every (value, type) pair the key value can be promoted
   to ([Promotion.promote_to_simple_types]); each entry records the
   original value type, the tuple, and its ordinal position.  A probe
   match is accepted only when the pair of *original* types prescribes the
   matched comparison type under fs:convert-operand (Table 2); accepted
   matches are then sorted on the order field and de-duplicated, which
   restores the inner sequence order and honours the existential
   quantification of general comparisons.

   The sort join plays the same trick for inequality predicates (<, <=,
   >, >=): the inner keys are materialized into two sorted arrays — one
   under the numeric (xs:double) ordering, one under the string ordering —
   and each probe key scans the range(s) that Table 2 makes comparable
   with its own type.  This covers XMark Q11/Q12-style non-equi joins. *)

open Xqc_xml
open Xqc_types
module Obs = Xqc_obs.Obs

type tuple = Item.sequence array

type 'k entry = {
  e_key : 'k;
  e_orig_type : Atomic.type_name;
  e_order : int;
  e_tuple : tuple;
}

(* ------------------------------------------------------------------ *)
(* Hash equi-join                                                      *)
(* ------------------------------------------------------------------ *)

type hash_index = {
  hi_buckets : (Atomic.t, unit entry list ref) Hashtbl.t;
  hi_size : int;
}

(* NaN compares unequal to everything, including itself, under every
   ordering operator; the polymorphic Hashtbl would treat NaN keys as
   equal, so they are excluded from indexes on both sides. *)
let is_nan_atom (a : Atomic.t) : bool =
  match a with
  | Atomic.Decimal f | Atomic.Float f | Atomic.Double f -> Float.is_nan f
  | _ -> false

(* materialize() of Figure 6. *)
let build_hash_index ?stats (inner : tuple list) (inner_key : tuple -> Item.sequence) :
    hash_index =
  let buckets = Hashtbl.create 1024 in
  let order = ref 0 in
  List.iter
    (fun tup ->
      incr order;
      let key_vals = Item.atomize (inner_key tup) in
      List.iter
        (fun key ->
          let orig_type = Atomic.type_of key in
          List.iter
            (fun (v, _target_type) ->
              if not (is_nan_atom v) then
                let entry = { e_key = (); e_orig_type = orig_type; e_order = !order; e_tuple = tup } in
                match Hashtbl.find_opt buckets v with
                | Some cell -> cell := entry :: !cell
                | None -> Hashtbl.add buckets v (ref [ entry ]))
            (Promotion.promote_to_simple_types key))
        key_vals)
    inner;
  (match stats with
  | Some js ->
      js.Obs.js_builds <- js.Obs.js_builds + 1;
      js.Obs.js_build_tuples <- js.Obs.js_build_tuples + !order
  | None -> ());
  { hi_buckets = buckets; hi_size = !order }

(* allMatches() of Figure 6: all inner tuples matching one outer tuple,
   in the inner input's original sequence order, without duplicates. *)
let probe_hash_index ?stats (index : hash_index) (key_vals : Atomic.t list) : tuple list =
  let acc : (int, tuple) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun key ->
      let key_type = Atomic.type_of key in
      List.iter
        (fun (v, target_type) ->
          match (if is_nan_atom v then None else Hashtbl.find_opt index.hi_buckets v) with
          | None -> ()
          | Some cell ->
              List.iter
                (fun e ->
                  (* the Table 2 check of Figure 6, line 25 *)
                  match Promotion.comparison_type e.e_orig_type key_type with
                  | Some prescribed when prescribed = target_type ->
                      Hashtbl.replace acc e.e_order e.e_tuple
                  | Some _ | None -> ())
                !cell)
        (Promotion.promote_to_simple_types key))
    key_vals;
  (* sortedMatches + removeDuplicates: Hashtbl keys are already unique *)
  let orders = Hashtbl.fold (fun o _ acc -> o :: acc) acc [] in
  let matches = List.map (fun o -> Hashtbl.find acc o) (List.sort compare orders) in
  (match stats with
  | Some js ->
      js.Obs.js_probes <- js.Obs.js_probes + 1;
      js.Obs.js_matches <- js.Obs.js_matches + List.length matches
  | None -> ());
  matches

(* Build-side-flipped probe: the sorted distinct build positions whose
   entries match one probe key.  Used when the planner builds the hash
   join on its *left* input: output must stay left-major with matches in
   right order, so the evaluator probes with each right tuple and buckets
   it under every matching left position, then emits bucket by bucket.
   The Table 2 check is symmetric in the two original types, so probing
   from either side accepts exactly the same pairs. *)
let probe_hash_index_orders ?stats (index : hash_index) (key_vals : Atomic.t list) :
    int list =
  let acc : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun key ->
      let key_type = Atomic.type_of key in
      List.iter
        (fun (v, target_type) ->
          match (if is_nan_atom v then None else Hashtbl.find_opt index.hi_buckets v) with
          | None -> ()
          | Some cell ->
              List.iter
                (fun e ->
                  match Promotion.comparison_type e.e_orig_type key_type with
                  | Some prescribed when prescribed = target_type ->
                      Hashtbl.replace acc e.e_order ()
                  | Some _ | None -> ())
                !cell)
        (Promotion.promote_to_simple_types key))
    key_vals;
  let orders = List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) acc []) in
  (match stats with
  | Some js ->
      js.Obs.js_probes <- js.Obs.js_probes + 1;
      js.Obs.js_matches <- js.Obs.js_matches + List.length orders
  | None -> ());
  orders

(* ------------------------------------------------------------------ *)
(* Sort join for inequalities                                          *)
(* ------------------------------------------------------------------ *)

type sort_index = {
  si_numeric : float entry array;  (** ascending by key *)
  si_string : string entry array;  (** ascending by key *)
}

let numeric_key (a : Atomic.t) : float option =
  match Atomic.type_of a with
  | Atomic.T_integer | Atomic.T_decimal | Atomic.T_float | Atomic.T_double
  | Atomic.T_untyped -> (
      match Atomic.to_float a with
      | Some f when not (Float.is_nan f) -> Some f
      | _ -> None)
  | _ -> None

let string_key (a : Atomic.t) : string option =
  match Atomic.type_of a with
  | Atomic.T_string | Atomic.T_untyped | Atomic.T_any_uri -> Some (Atomic.to_string a)
  | Atomic.T_date | Atomic.T_time | Atomic.T_date_time | Atomic.T_g_year
  | Atomic.T_g_month | Atomic.T_g_day | Atomic.T_g_year_month
  | Atomic.T_g_month_day ->
      (* calendar types are compared lexically in our model *)
      Some (Atomic.to_string a)
  | _ -> None

let build_sort_index ?stats (inner : tuple list) (inner_key : tuple -> Item.sequence) :
    sort_index =
  let numeric = ref [] and strings = ref [] in
  let order = ref 0 in
  List.iter
    (fun tup ->
      incr order;
      List.iter
        (fun key ->
          let orig = Atomic.type_of key in
          (match numeric_key key with
          | Some f ->
              numeric := { e_key = f; e_orig_type = orig; e_order = !order; e_tuple = tup } :: !numeric
          | None -> ());
          match string_key key with
          | Some s ->
              strings := { e_key = s; e_orig_type = orig; e_order = !order; e_tuple = tup } :: !strings
          | None -> ())
        (Item.atomize (inner_key tup)))
    inner;
  let by_key cmp a b =
    let c = cmp a.e_key b.e_key in
    if c <> 0 then c else compare a.e_order b.e_order
  in
  let index =
    {
      si_numeric = Array.of_list (List.sort (by_key Float.compare) !numeric);
      si_string = Array.of_list (List.sort (by_key String.compare) !strings);
    }
  in
  (match stats with
  | Some js ->
      js.Obs.js_builds <- js.Obs.js_builds + 1;
      js.Obs.js_build_tuples <- js.Obs.js_build_tuples + !order;
      js.Obs.js_sort_numeric <- js.Obs.js_sort_numeric + Array.length index.si_numeric;
      js.Obs.js_sort_string <- js.Obs.js_sort_string + Array.length index.si_string
  | None -> ());
  index

(* First index whose key satisfies [ok] assuming keys ascend and the set
   of satisfying entries is a suffix; length if none. *)
let lower_bound (arr : 'k entry array) (above : 'k -> bool) : int =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if above arr.(mid).e_key then hi := mid else lo := mid + 1
  done;
  !lo

(* All entries y in [arr] with (x op y), as index range; the satisfying
   set is a suffix for Lt/Le and a prefix for Gt/Ge. *)
let range_for (op : Promotion.cmp_op) (cmp : 'k -> 'k -> int) (x : 'k)
    (arr : 'k entry array) : int * int =
  let n = Array.length arr in
  match op with
  | Promotion.Lt -> (lower_bound arr (fun y -> cmp y x > 0), n)
  | Promotion.Le -> (lower_bound arr (fun y -> cmp y x >= 0), n)
  | Promotion.Gt -> (0, lower_bound arr (fun y -> cmp y x >= 0))
  | Promotion.Ge -> (0, lower_bound arr (fun y -> cmp y x > 0))
  | Promotion.Eq | Promotion.Ne ->
      invalid_arg "Joins.range_for: sort join handles inequalities only"

let is_numeric_tn = Atomic.is_numeric_type

(* Probe for all inner tuples with (probe_key op inner_key), honouring the
   Table 2 pairing rules between the probe key type and each entry's
   original type. *)
let probe_sort_index ?stats (op : Promotion.cmp_op) (index : sort_index)
    (key_vals : Atomic.t list) : tuple list =
  let acc : (int, tuple) Hashtbl.t = Hashtbl.create 8 in
  let add e = Hashtbl.replace acc e.e_order e.e_tuple in
  let scan_numeric x accept =
    let lo, hi = range_for op Float.compare x index.si_numeric in
    for i = lo to hi - 1 do
      let e = index.si_numeric.(i) in
      if accept e.e_orig_type then add e
    done
  in
  let scan_string x accept =
    let lo, hi = range_for op String.compare x index.si_string in
    for i = lo to hi - 1 do
      let e = index.si_string.(i) in
      if accept e.e_orig_type then add e
    done
  in
  List.iter
    (fun key ->
      let kt = Atomic.type_of key in
      if is_numeric_tn kt then (
        (* numeric probe compares with numeric and untyped entries, both
           under the double ordering; NaN matches nothing *)
        match Atomic.to_float key with
        | Some f when not (Float.is_nan f) ->
            scan_numeric f (fun t -> is_numeric_tn t || t = Atomic.T_untyped)
        | Some _ | None -> ())
      else
        match kt with
        | Atomic.T_untyped ->
            (* vs numeric entries: as double; vs untyped/string entries: as
               string (Table 2, rows 1-2) *)
            (match Atomic.to_float key with
            | Some f when not (Float.is_nan f) -> scan_numeric f is_numeric_tn
            | Some _ | None -> ());
            scan_string (Atomic.to_string key) (fun t ->
                t = Atomic.T_untyped || t = Atomic.T_string || t = Atomic.T_any_uri)
        | Atomic.T_string | Atomic.T_any_uri ->
            scan_string (Atomic.to_string key) (fun t ->
                t = Atomic.T_untyped || t = Atomic.T_string || t = Atomic.T_any_uri)
        | other -> (
            (* calendar types: lexical comparison against same-type or
               untyped entries *)
            match string_key key with
            | Some s -> scan_string s (fun t -> t = other || t = Atomic.T_untyped)
            | None -> ()))
    key_vals;
  let orders = Hashtbl.fold (fun o _ acc -> o :: acc) acc [] in
  let matches = List.map (fun o -> Hashtbl.find acc o) (List.sort compare orders) in
  (match stats with
  | Some js ->
      js.Obs.js_probes <- js.Obs.js_probes + 1;
      js.Obs.js_matches <- js.Obs.js_matches + List.length matches
  | None -> ());
  matches
