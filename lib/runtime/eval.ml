(* Physical evaluation of planned (physical) algebra plans.

   Plans are compiled to OCaml closures.  Tuples are value arrays and every
   IN#q access is resolved to an integer slot at compile time — the paper
   attributes much of the algebra's speedup over the old AST interpreter to
   this "replacement of dynamic lookups in the dynamic context by direct
   compiled memory access".

   The evaluator dispatches on the physical algebra produced by the
   cost-based planner and re-makes no strategy decision: the join
   algorithm and its build side, index-vs-walk per axis step, positional
   take-while bounds, streaming builtin calls and explicit
   materialization points all arrive encoded in the plan.

   The tabular arm of [dval] is a pull-based cursor ([tuple Seq.t]):
   Select/Map/MapConcat/OMapConcat/MapIndex chains fuse into lazy stream
   transformers that never materialize intermediate tables, and tuples
   flow only as the consumer pulls.  Materialization happens at the
   planner's explicit [PMaterialize] cuts (join and product build sides)
   and at the genuinely blocking operators — OrderBy, GroupBy, and the
   item-producing sinks (MapToItem, serialization).  Existential
   consumers (MapSome/MapEvery, streamed fn:exists/fn:empty, bounded
   positional selections, streamed fn:subsequence) stop pulling after
   the prefix they need, turning O(document) scans into O(answer).

   Laziness is confined to within one strict consumer call: every scope
   boundary (function bodies, quantifier tests, globals, all Xml-producing
   operators) forces its value strictly, so a deferred cursor can never
   observe a dynamic context whose bindings have since been restored, and
   every cursor is consumed at most once.

   Evaluation convention for the dependent-input plumbing: every compiled
   plan receives the current dependent input [inp]; operators pass it
   through unchanged to their *independent* children and rebind it for
   their *dependent* children (per-tuple predicates, map bodies, group-by
   pre/post plans, join predicates, sort keys). *)

open Xqc_xml
open Xqc_types
open Xqc_frontend
open Xqc_algebra
open Dynamic_ctx
module Obs = Xqc_obs.Obs
module Store = Xqc_store.Store
module Codegen = Xqc_codegen.Codegen
module P = Physical

exception Compile_error of string

let compile_error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

type tuple = Item.sequence array

type dval = Xml of Item.sequence | Tab of tuple Seq.t

type inp = ITuple of tuple | IItems of Item.sequence | INone

type comp = Dynamic_ctx.t -> inp -> dval

let as_items = function
  | Xml s -> s
  | Tab _ -> dynamic_error "expected an XML value, found a table"

let as_table = function
  | Tab t -> t
  | Xml _ -> dynamic_error "expected a table, found an XML value"

(* Blocking consumers (sorts, group-bys, join build sides) drain the
   cursor to a list in one pull run. *)
let table_list v = List.of_seq (as_table v)
let tab_list l = Tab (List.to_seq l)

let ebv (v : dval) : bool = Item.effective_boolean_value (as_items v)

let true_flag : Item.sequence = [ Item.Atom (Atomic.Boolean true) ]
let false_flag : Item.sequence = [ Item.Atom (Atomic.Boolean false) ]

(* Relational-backend bridge telemetry (see the PRelational case). *)
let c_rel_subplans = Obs.global_counter "rel_subplans"
let c_rel_rows = Obs.global_counter "rel_rows"
let c_rel_fallbacks = Obs.global_counter "rel_fallbacks"

(* ------------------------------------------------------------------ *)
(* Layout management                                                   *)
(* ------------------------------------------------------------------ *)

type layout = string list

let field_index (l : layout) (q : string) : int option =
  let rec go i = function
    | [] -> None
    | f :: _ when String.equal f q -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 l

(* Tuple concatenation spec: output layout merges [l2] into [l1] (fields
   already present on the left are overwritten in place — the two sides
   can only disagree transiently during rewriting, when they are aliases
   of the same value).  Returns the output layout, its width, and the
   compile-time move table for the right tuple. *)
let concat_spec (l1 : layout) (l2 : layout) : layout * int * (int * int) array =
  let extra = List.filter (fun f -> field_index l1 f = None) l2 in
  let out = l1 @ extra in
  let moves =
    List.mapi
      (fun j f ->
        match field_index out f with
        | Some k -> (j, k)
        | None -> assert false)
      l2
  in
  (out, List.length out, Array.of_list moves)

let apply_concat (n1 : int) (width : int) (moves : (int * int) array) (t1 : tuple)
    (t2 : tuple) : tuple =
  let out = Array.make width [] in
  Array.blit t1 0 out 0 n1;
  Array.iter (fun (j, k) -> out.(k) <- t2.(j)) moves;
  out

(* ------------------------------------------------------------------ *)
(* Axes and node tests                                                 *)
(* ------------------------------------------------------------------ *)

let apply_axis (axis : Ast.axis) (n : Node.t) : Node.t list =
  match axis with
  | Ast.Child -> Node.children n
  | Ast.Descendant -> Node.descendants n
  | Ast.Descendant_or_self -> Node.descendant_or_self n
  | Ast.Attribute_axis -> Node.attributes n
  | Ast.Self -> [ n ]
  | Ast.Parent -> Option.to_list (Node.parent n)
  | Ast.Ancestor -> Node.ancestors n
  | Ast.Ancestor_or_self -> n :: Node.ancestors n
  | Ast.Following_sibling -> Node.following_siblings n
  | Ast.Preceding_sibling -> Node.preceding_siblings n

let test_matches schema (axis : Ast.axis) (test : Ast.node_test) (n : Node.t) :
    bool =
  match test with
  | Ast.Kind_test it -> Seqtype.item_matches schema (Item.Node n) it
  | Ast.Name_test name ->
      (* the principal node kind of the attribute axis is attribute *)
      let kind_ok =
        match axis with
        | Ast.Attribute_axis -> Node.kind n = Node.Kattribute
        | _ -> Node.kind n = Node.Kelement
      in
      kind_ok && (String.equal name "*" || Node.name n = Some name)

(* Indexed fast path for a single axis step: name tests over the
   downward axes resolve against the document store's interval-encoded
   name indexes (a binary-searched nid range instead of a subtree walk).
   [None] sends the caller to the walking path — non-name tests, axes
   the store does not cover, unindexed trees, or cases where the store
   itself judges the walk cheaper. *)
let indexed_axis_nodes (axis : Ast.axis) (test : Ast.node_test) (n : Node.t) :
    Node.t list option =
  match test with
  | Ast.Name_test name -> (
      match axis with
      | Ast.Descendant -> Store.descendants_by_name n name
      | Ast.Descendant_or_self -> Store.descendant_or_self_by_name n name
      | Ast.Child -> Store.children_by_name n name
      | Ast.Attribute_axis ->
          (* the store has no "*" entry for attributes; @* walks *)
          if String.equal name "*" then None else Store.attributes_by_name n name
      | _ -> None)
  | Ast.Kind_test _ -> None

(* Matches are accumulated in traversal order: child/descendant axis
   output over already-sorted input is itself in document order, so the
   closing [sort_doc_order] hits its O(n) already-sorted fast path on the
   common case and only pays for a sort when an axis actually disturbs
   the order (parent, ancestor, multiple nested sources). *)
let tree_join schema axis test (input : Item.sequence) : Item.sequence =
  let out = ref [] in
  List.iter
    (fun it ->
      match it with
      | Item.Node n -> (
          match indexed_axis_nodes axis test n with
          | Some ms -> List.iter (fun m -> out := m :: !out) ms
          | None ->
              List.iter
                (fun m -> if test_matches schema axis test m then out := m :: !out)
                (apply_axis axis n))
      | Item.Atom _ -> dynamic_error "path step applied to an atomic value")
    input;
  List.map (fun n -> Item.Node n) (Node.sort_doc_order (List.rev !out))

(* One planned step: honours the planner's [ps_impl] — an [Index_scan]
   still degrades to a walk per node when the store cannot serve that
   tree, a [Tree_walk] never consults the index. *)
let step_join schema (s : P.pstep) (input : Item.sequence) : Item.sequence =
  let axis = s.P.ps_axis and test = s.P.ps_test in
  let out = ref [] in
  List.iter
    (fun it ->
      match it with
      | Item.Node n -> (
          let indexed =
            match s.P.ps_impl with
            | P.Index_scan -> indexed_axis_nodes axis test n
            | P.Tree_walk -> None
          in
          match indexed with
          | Some ms -> List.iter (fun m -> out := m :: !out) ms
          | None ->
              List.iter
                (fun m -> if test_matches schema axis test m then out := m :: !out)
                (apply_axis axis n))
      | Item.Atom _ -> dynamic_error "path step applied to an atomic value")
    input;
  List.map (fun n -> Item.Node n) (Node.sort_doc_order (List.rev !out))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Element content assembly: attribute nodes become attributes, atomic
   values merge into space-separated text, nodes are deep-copied (XQuery
   constructor copy semantics), document nodes contribute their children. *)
let assemble_content (items : Item.sequence) : Node.t list * Node.t list =
  let attrs = ref [] and content = ref [] and atom_buf = ref [] in
  let flush () =
    if !atom_buf <> [] then (
      let s = String.concat " " (List.rev_map Atomic.to_string !atom_buf) in
      atom_buf := [];
      content := Node.text s :: !content)
  in
  List.iter
    (fun it ->
      match it with
      | Item.Atom a -> atom_buf := a :: !atom_buf
      | Item.Node n -> (
          flush ();
          match Node.kind n with
          | Node.Kattribute -> attrs := Node.copy n :: !attrs
          | Node.Kdocument ->
              List.iter (fun c -> content := Node.copy c :: !content) (Node.children n)
          | Node.Kelement | Node.Ktext | Node.Kcomment | Node.Kpi ->
              content := Node.copy n :: !content))
    items;
  flush ();
  (List.rev !attrs, List.rev !content)

let construct_element name (items : Item.sequence) : Item.t =
  let attrs, children = assemble_content items in
  let e = Node.element name ~attrs ~children in
  Node.renumber e;
  Item.Node e

let construct_attribute name (items : Item.sequence) : Item.t =
  let s = String.concat " " (List.map Item.string_value items) in
  Item.Node (Node.attribute name s)

(* ------------------------------------------------------------------ *)
(* Plan compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* [drain]: the consumer of the subplan being compiled fully drains a
   tabular result — the fused tier may then replace a lazy Select/
   MapFromItem cursor with an eager tuple batch.  Cleared below
   early-terminating consumers (StreamSelect, MapSome/MapEvery) so
   their O(answer) pull bounds survive. *)
type cenv = { layout : layout; drain : bool }

(* Ablation knob: when set, IN#q accesses scan the tuple layout by name at
   every evaluation instead of using the index resolved at compile time —
   simulating the dynamic-context lookups of the pre-paper engine that
   Table 3 credits part of the algebra speedup to.  Affects plans compiled
   while the flag is set. *)
let dynamic_field_lookup = ref false

(* Debug knob: when set, every compiled operator drains its cursor eagerly
   at call time and the cursor-based early-termination special cases are
   disabled, restoring the fully materialized evaluation the streaming
   pipeline replaced.  Used by the equivalence tests (streamed and
   materialized runs must agree) and by the bench early-exit baseline.
   Affects plans compiled while the flag is set; the physical plan itself
   is unchanged, only its execution is strict. *)
let force_materialize = ref false

let materialize_comp (c : comp) : comp =
 fun ctx inp ->
  match c ctx inp with
  | Xml _ as v -> v
  | Tab s -> tab_list (List.of_seq s)

(* How each operator moves tuples, for the EXPLAIN ANALYZE annotation. *)
let stream_kind_of (pop : P.pop) : Obs.stream_kind =
  match pop with
  | P.PSelect _ | P.PStreamSelect _ | P.PMap _ | P.POMap _ | P.PMapConcat _
  | P.POMapConcat _ | P.PMapIndex _ | P.PMapIndexStep _ | P.PMapFromItem _
  | P.PTupleConstruct _ | P.PMapSome _ | P.PMapEvery _ ->
      Obs.Streamed
  | P.POrderBy _ | P.PGroupBy _ | P.PNestedLoop _ | P.PHashJoin _
  | P.PSortJoin _ | P.PProduct _ | P.PMapToItem _ | P.PMaterialize _
  | P.PRelational _ ->
      Obs.Blocking
  | _ -> Obs.Opaque

(* Instrumentation (EXPLAIN ANALYZE).  While [current_builder] is set,
   every [compile] call mirrors the plan node into an [Obs.op_node] —
   carrying the planner's cardinality estimate — and wraps the compiled
   closure to record invocation count, cumulative (inclusive) time and
   output cardinality.  Tabular results are lazy, so their cardinality is
   counted per pull (a never-pulled tuple is never counted — this is
   exactly the quantity early termination bounds), with each pull timed
   into the operator's inclusive time.  With the builder unset — the
   default — [compile] returns the raw closure: the uninstrumented hot
   path is byte-for-byte the same code as before.

   The builder is domain-local: instrumented runs on one server worker
   domain must not leak op_nodes into plans being compiled concurrently
   on another (the CLI single-domain behaviour is unchanged). *)
let current_builder_key : Obs.builder option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_builder () = Domain.DLS.get current_builder_key
let set_current_builder b = Domain.DLS.set current_builder_key b

let instrument (st : Obs.op_stats) (c : comp) : comp =
 fun ctx inp ->
  let t0 = Obs.now () in
  let v = c ctx inp in
  st.Obs.op_secs <- st.Obs.op_secs +. (Obs.now () -. t0);
  st.Obs.op_calls <- st.Obs.op_calls + 1;
  match v with
  | Xml s ->
      st.Obs.op_items <- st.Obs.op_items + List.length s;
      v
  | Tab t -> Tab (Obs.tuple_counted_seq st t)

(* Per-partition instrumentation for the parallel operators: [par]
   op_nodes registered as children of the current builder top (the
   operator being compiled), one per partition slot.  At run time
   partition task i records its row count and inclusive time into slot
   i only — each op_stats record has exactly one writing domain, so the
   parallel run needs no synchronization to keep EXPLAIN ANALYZE
   exact.  All-[None] when uninstrumented. *)
let partition_stats (par : int) (est : float) : Obs.op_stats option array =
  match current_builder () with
  | None -> Array.make par None
  | Some b ->
      Array.init par (fun i ->
          let n =
            Obs.push_node b ~stream:Obs.Streamed
              ~est:(est /. float_of_int par)
              (Printf.sprintf "Partition[%d/%d]" (i + 1) par)
          in
          Obs.pop_node b;
          Some n.Obs.on_stats)

let record_partition (st : Obs.op_stats option) (f : unit -> 'a list) : 'a list
    =
  match st with
  | None -> f ()
  | Some st ->
      let t0 = Obs.now () in
      let out = f () in
      st.Obs.op_secs <- st.Obs.op_secs +. (Obs.now () -. t0);
      st.Obs.op_calls <- st.Obs.op_calls + 1;
      st.Obs.op_items <- st.Obs.op_items + List.length out;
      out

(* ------------------------------------------------------------------ *)
(* Item-level cursors                                                  *)
(* ------------------------------------------------------------------ *)

(* Lazy axis application: descendant axes walk the subtree on demand so
   an existential consumer visits only the prefix it needs. *)
let axis_seq (axis : Ast.axis) (n : Node.t) : Node.t Seq.t =
  match axis with
  | Ast.Descendant -> Node.descendants_seq n
  | Ast.Descendant_or_self -> Node.descendant_or_self_seq n
  | a -> List.to_seq (apply_axis a n)

(* Indexed single-step cursor: the lazy counterpart of
   [indexed_axis_nodes].  A [Some] sequence already satisfies the node
   test, so no further filtering is needed; [None] falls back to the
   lazy walk. *)
let indexed_axis_seq (axis : Ast.axis) (test : Ast.node_test) (n : Node.t) :
    Node.t Seq.t option =
  match test with
  | Ast.Name_test name -> (
      match axis with
      | Ast.Descendant -> Store.descendants_by_name_seq n name
      | Ast.Descendant_or_self -> Store.descendant_or_self_by_name_seq n name
      | Ast.Child -> Option.map List.to_seq (Store.children_by_name n name)
      | _ -> None)
  | Ast.Kind_test _ -> None

(* Compile the step chain of an item cursor.  Each step registers its own
   op_node (streamed, with the planner's per-step estimate) so pull counts
   surface in EXPLAIN ANALYZE and in the collector's pulled totals.  The
   consuming operator passes the absorbed [PSteps] node as [~parent]: it
   is registered too (counting the chain's final output, exactly as the
   strict arm does), so a fully consumed cursor reports the same pull
   totals as the materialized execution of the same plan. *)
let compile_cursor_steps ?(parent : P.t option) (steps : P.pstep list) :
    Dynamic_ctx.t -> Item.t Seq.t -> Item.t Seq.t =
  let parent_stats =
    match (current_builder (), parent) with
    | Some b, Some p ->
        let n =
          Obs.push_node b ~stream:Obs.Streamed ~est:p.P.pest.P.est_rows
            (Pretty.physical_label p)
        in
        Some n.Obs.on_stats
    | _ -> None
  in
  let comps =
    List.map
      (fun (s : P.pstep) ->
        let stats =
          match current_builder () with
          | Some b ->
              let n =
                Obs.push_node b ~stream:Obs.Streamed ~est:s.P.ps_est
                  (Pretty.pstep_label s)
              in
              Obs.pop_node b;
              Some n.Obs.on_stats
          | None -> None
        in
        (s, stats))
      steps
  in
  (match (current_builder (), parent_stats) with
  | Some b, Some _ -> Obs.pop_node b
  | _ -> ());
  fun ctx s0 ->
    List.fold_left
      (fun s ((ps : P.pstep), stats) ->
        let axis = ps.P.ps_axis and test = ps.P.ps_test in
        let s' =
          Seq.concat_map
            (fun it ->
              match it with
              | Item.Node n -> (
                  let indexed =
                    match ps.P.ps_impl with
                    | P.Index_scan -> indexed_axis_seq axis test n
                    | P.Tree_walk -> None
                  in
                  match indexed with
                  | Some ms -> Seq.map (fun m -> Item.Node m) ms
                  | None ->
                      Seq.filter_map
                        (fun m ->
                          if test_matches ctx.schema axis test m then Some (Item.Node m)
                          else None)
                        (axis_seq axis n))
              | Item.Atom _ -> dynamic_error "path step applied to an atomic value")
            s
        in
        match stats with Some st -> Obs.item_counted_seq st s' | None -> s')
      s0 comps
    |> fun out ->
    match parent_stats with Some st -> Obs.item_counted_seq st out | None -> out

(* Store probes for a one-step name chain: existence and cardinality of
   descendant[-or-self]::t / child::t answered from the index's range
   bounds without touching nodes.  [None] when the chain shape is not
   probe-able; the probe itself returns [None] per node when the store
   cannot serve that tree (caller streams instead). *)
let step_shapes (steps : P.pstep list) : (Ast.axis * Ast.node_test) list =
  List.map (fun (s : P.pstep) -> (s.P.ps_axis, s.P.ps_test)) steps

let index_exists_probe (steps : P.pstep list) : (Node.t -> bool option) option =
  match step_shapes steps with
  | [ (Ast.Descendant, Ast.Name_test nm) ] ->
      Some (fun n -> Store.exists_descendant_by_name n nm)
  | [ (Ast.Descendant_or_self, Ast.Name_test nm) ] ->
      Some (fun n -> Store.exists_descendant_by_name ~self:true n nm)
  | [ (Ast.Child, Ast.Name_test nm) ] ->
      Some (fun n -> Option.map (fun l -> l <> []) (Store.children_by_name n nm))
  | _ -> None

let index_count_probe (steps : P.pstep list) : (Node.t -> int option) option =
  match step_shapes steps with
  | [ (Ast.Descendant, Ast.Name_test nm) ] ->
      Some (fun n -> Store.count_descendants_by_name n nm)
  | [ (Ast.Descendant_or_self, Ast.Name_test nm) ] ->
      Some (fun n -> Store.count_descendants_by_name ~self:true n nm)
  | [ (Ast.Child, Ast.Name_test nm) ] ->
      Some (fun n -> Option.map List.length (Store.children_by_name n nm))
  | _ -> None

(* Shared scaffolding of the three physical join operators: compiled
   inputs, merged output layout, match/unmatched emitters (outer joins
   prepend the null-flag field) and the left-major streaming driver.
   The probe (left) side streams: each outer tuple is matched as the
   consumer pulls.  The build side arrives wrapped in [PMaterialize] by
   the planner and is drained eagerly at operator call, before any pull. *)
type join_parts = {
  jp_stats : Obs.join_stats option;
  jp_left : comp;
  jp_llayout : layout;
  jp_right : comp;
  jp_rlayout : layout;
  jp_merged : layout;
  jp_n1 : int;
  jp_mwidth : int;
  jp_moves : (int * int) array;
  jp_out : layout;
  jp_run : tuple Seq.t -> (tuple -> tuple list) -> dval;
}

let rec compile (env : cenv) (p : P.t) : comp * layout =
  match compile_fused env p with
  | Some r -> r
  | None -> compile_interp env p

(* The fused tier.  When [Codegen.lower] can express this subplan as a
   flat program, the closure for the whole subtree is a single call into
   the bytecode executor; the interpreted twin of the same subtree is
   compiled lazily (at most once, outside any instrumentation) and
   spliced in when the program meets a runtime shape outside its static
   proof — a multi-node or atomic source, or a user declaration
   shadowing a builtin the program baked in.  Under the materialize
   ablation the tier is disabled outright: the equivalence suite
   compares it against the pure interpreter. *)
and compile_fused (env : cenv) (p : P.t) : (comp * layout) option =
  if !force_materialize then None
  else
    match Codegen.lower ~tab:env.drain p with
    | None -> None
    | Some prog ->
        let layout =
          match Codegen.tuple_field prog with Some q -> [ q ] | None -> []
        in
        let twin =
          lazy
            (let saved = current_builder () in
             set_current_builder None;
             Fun.protect
               ~finally:(fun () -> set_current_builder saved)
               (fun () -> fst (compile_interp env p)))
        in
        let run ctx inp =
          check_deadline ctx;
          let cg =
            {
              Codegen.e_schema = ctx.schema;
              e_lookup = (fun v -> lookup_variable ctx v);
              e_input =
                (fun () ->
                  match inp with
                  | IItems s -> s
                  | ITuple _ | INone -> raise Codegen.Fallback);
              e_shadowed = (fun nm -> Hashtbl.mem ctx.functions nm);
              e_check = (fun () -> check_deadline ctx);
              e_sum =
                (fun items ->
                  match Builtins.find "fn:sum" with
                  | Some f -> f ctx [ items ]
                  | None -> dynamic_error "unknown function fn:sum");
            }
          in
          (* The fused path honours the plan's parallelism budget too:
             when any operator under this segment was annotated, split
             the batch's elementwise prefix across the domain pool.  The
             partitioned entry re-gates on actual batch width and
             returns [None] for programs with no parallel prefix. *)
          let par =
            let d = P.max_par p in
            if d > 1 && Domain_pool.budget () > 1 then d else 1
          in
          try
            match Codegen.tuple_field prog with
            | None ->
                let items =
                  if par > 1 then
                    Codegen.exec_partitioned cg prog ~parts:par
                      ~min_width:!Par_exec.par_min_items
                      ~run:Domain_pool.run_thunks
                  else Codegen.exec cg prog
                in
                Xml items
            | Some _ ->
                let arr, len =
                  if par > 1 then
                    Codegen.exec_nodes_partitioned cg prog ~parts:par
                      ~min_width:!Par_exec.par_min_items
                      ~run:Domain_pool.run_thunks
                  else Codegen.exec_nodes cg prog
                in
                let rec pull i () =
                  if i >= len then Seq.Nil
                  else Seq.Cons ([| [ Item.Node arr.(i) ] |], pull (i + 1))
                in
                Tab (pull 0)
          with Codegen.Fallback ->
            Codegen.fallback_counter_incr ();
            (Lazy.force twin) ctx inp
        in
        let c =
          match current_builder () with
          | None -> run
          | Some b ->
              let node =
                Obs.push_node b ~stream:Obs.Blocking ~est:p.P.pest.P.est_rows
                  (Printf.sprintf "Fused[%d] %s"
                     (Codegen.instr_count prog)
                     (Pretty.physical_label p))
              in
              Obs.pop_node b;
              instrument node.Obs.on_stats run
        in
        Some (c, layout)

and compile_interp (env : cenv) (p : P.t) : comp * layout =
  let c, layout =
    match current_builder () with
    | None -> compile_node env p
    | Some b ->
        let join =
          match p.P.pop with
          | P.PNestedLoop _ | P.PHashJoin _ | P.PSortJoin _ ->
              Some (Obs.join_stats ())
          | _ -> None
        in
        let node =
          Obs.push_node b ?join ~stream:(stream_kind_of p.P.pop)
            ~est:p.P.pest.P.est_rows (Pretty.physical_label p)
        in
        let c, layout =
          match compile_node env p with
          | r ->
              Obs.pop_node b;
              r
          | exception e ->
              Obs.pop_node b;
              raise e
        in
        (instrument node.Obs.on_stats c, layout)
  in
  (* Cooperative cancellation point: dependent sub-plans (per-tuple
     predicates, map bodies, join predicate legs) are invoked once per
     tuple, so a deadline-armed context unwinds within one operator's
     work.  With no deadline — every context except the query server's —
     the check is a single field load. *)
  let c = (fun ctx inp -> check_deadline ctx; c ctx inp) in
  if !force_materialize then (materialize_comp c, layout) else (c, layout)

and compile_node (env : cenv) (p : P.t) : comp * layout =
  match p.P.pop with
  | P.PInput ->
      ( (fun _ctx inp ->
          match inp with
          | ITuple t -> Tab (Seq.return t)
          | IItems s -> Xml s
          | INone -> dynamic_error "IN used outside a dependent context"),
        env.layout )
  | P.PEmpty -> ((fun _ _ -> Xml []), [])
  | P.PScalar a ->
      let v = Xml [ Item.Atom a ] in
      ((fun _ _ -> v), [])
  | P.PSeq (a, b) ->
      let ca, _ = compile env a and cb, _ = compile env b in
      ((fun ctx inp -> Xml (as_items (ca ctx inp) @ as_items (cb ctx inp))), [])
  | P.PElement (name, content) ->
      let cc, _ = compile env content in
      ((fun ctx inp -> Xml [ construct_element name (as_items (cc ctx inp)) ]), [])
  | P.PAttribute (name, content) ->
      let cc, _ = compile env content in
      ((fun ctx inp -> Xml [ construct_attribute name (as_items (cc ctx inp)) ]), [])
  | P.PText content ->
      let cc, _ = compile env content in
      ( (fun ctx inp ->
          match as_items (cc ctx inp) with
          | [] -> Xml []
          | items ->
              Xml [ Item.Node (Node.text (String.concat " " (List.map Item.string_value items))) ]),
        [] )
  | P.PComment content ->
      let cc, _ = compile env content in
      ( (fun ctx inp ->
          Xml [ Item.Node (Node.comment (String.concat " " (List.map Item.string_value (as_items (cc ctx inp))))) ]),
        [] )
  | P.PPi (target, content) ->
      let cc, _ = compile env content in
      ( (fun ctx inp ->
          Xml [ Item.Node (Node.pi target (String.concat " " (List.map Item.string_value (as_items (cc ctx inp))))) ]),
        [] )
  | P.PSteps { steps; input; par; _ } ->
      (* strict step chain: each planned step runs in turn over the
         accumulated node set, honouring its index-vs-walk choice; the
         per-step op_nodes surface per-step output counts in EXPLAIN
         ANALYZE even in strict mode *)
      let ci, _ = compile env input in
      let comps =
        List.map
          (fun (s : P.pstep) ->
            let stats =
              match current_builder () with
              | Some b ->
                  let n = Obs.push_node b ~est:s.P.ps_est (Pretty.pstep_label s) in
                  Obs.pop_node b;
                  Some n.Obs.on_stats
              | None -> None
            in
            (s, stats))
          steps
      in
      (* When the planner granted a parallelism budget, also pre-register
         the per-partition op_nodes; the runtime still gates on the
         actual context width, so these stay at 0 calls when the input
         turns out narrow. *)
      let pstats =
        if par > 1 then
          partition_stats par
            (List.fold_left (fun e (s : P.pstep) -> max e s.P.ps_est) 0. steps)
        else [||]
      in
      let run_seq ctx items =
        List.fold_left
          (fun items (s, stats) ->
            match stats with
            | None -> step_join ctx.schema s items
            | Some st ->
                let t0 = Obs.now () in
                let out = step_join ctx.schema s items in
                st.Obs.op_secs <- st.Obs.op_secs +. (Obs.now () -. t0);
                st.Obs.op_calls <- st.Obs.op_calls + 1;
                st.Obs.op_items <- st.Obs.op_items + List.length out;
                out)
          items comps
      in
      ( (fun ctx inp ->
          let items = as_items (ci ctx inp) in
          (* Partitioned run: chunks of the context sequence each
             evaluate the whole step chain on their own domain (per-step
             stats are skipped — partition slots report instead), then
             merge.  See par_exec.ml for the order argument. *)
          let run_chunked chunks =
            Xml
              (Par_exec.merge_node_items
                 (Par_exec.run_chunks ~ctx
                    ~task:(fun i tctx chunk ->
                      let record =
                        if Array.length pstats = 0 then fun f -> f ()
                        else
                          record_partition pstats.(i mod Array.length pstats)
                      in
                      record (fun () ->
                          List.fold_left
                            (fun items (s, _) -> step_join tctx.schema s items)
                            chunk comps))
                    chunks))
          in
          (* A multi-document context (fn:collection) fans out one chunk
             per document regardless of width — whole documents are the
             unit of work, and chunk-order concatenation preserves the
             collection's binding order.  Single-document contexts keep
             the width-gated contiguous chunking. *)
          let doc_chunks =
            if par > 1 && Domain_pool.budget () > 1 then
              Par_exec.chunk_by_root items
            else None
          in
          match doc_chunks with
          | Some chunks -> run_chunked chunks
          | None ->
              if not (Par_exec.eligible ~par (List.length items)) then
                Xml (run_seq ctx items)
              else run_chunked (Par_exec.chunk par items)),
        [] )
  | P.PTreeProject (paths, input) ->
      let ci, _ = compile env input in
      ((fun ctx inp -> Xml (Projection.project ctx.schema paths (as_items (ci ctx inp)))), [])
  | P.PCastable (tn, optional, input) ->
      let ci, _ = compile env input in
      ( (fun ctx inp ->
          let ok =
            match Item.atomize (as_items (ci ctx inp)) with
            | [] -> optional
            | [ a ] -> Atomic.castable tn a
            | _ -> false
          in
          Xml [ Item.Atom (Atomic.Boolean ok) ]),
        [] )
  | P.PCast (tn, optional, input) ->
      let ci, _ = compile env input in
      ( (fun ctx inp ->
          match Item.atomize (as_items (ci ctx inp)) with
          | [] ->
              if optional then Xml []
              else dynamic_error "cast of an empty sequence to a non-optional type"
          | [ a ] -> Xml [ Item.Atom (Atomic.cast tn a) ]
          | _ -> dynamic_error "cast applied to a sequence of more than one item"),
        [] )
  | P.PValidate input ->
      let ci, _ = compile env input in
      ( (fun ctx inp ->
          match as_items (ci ctx inp) with
          | [ Item.Node n ] -> Xml [ Item.Node (Schema.validate ctx.schema n) ]
          | _ -> dynamic_error "validate requires a single element or document node"),
        [] )
  | P.PTypeMatches (ty, input) ->
      let ci, _ = compile env input in
      ( (fun ctx inp ->
          Xml [ Item.Atom (Atomic.Boolean (Seqtype.matches ctx.schema (as_items (ci ctx inp)) ty)) ]),
        [] )
  | P.PTypeAssert (ty, input) ->
      let ci, _ = compile env input in
      ((fun ctx inp -> Xml (Seqtype.assert_matches ctx.schema (as_items (ci ctx inp)) ty)), [])
  | P.PVar q -> ((fun ctx _ -> Xml (lookup_variable ctx q)), [])
  | P.PCall (name, args) -> (generic_call env name args, [])
  | P.PCallStream (kind, name, args) ->
      (* the planner marked this call streamable; under the materialize
         ablation it still runs, but as the plain generic call *)
      if !force_materialize then (generic_call env name args, [])
      else (compile_stream_call env kind name args, [])
  | P.PCond (c, t, e) ->
      let cc, _ = compile env c in
      let ct, lt = compile env t in
      let ce, _ = compile env e in
      ((fun ctx inp -> if ebv (cc ctx inp) then ct ctx inp else ce ctx inp), lt)
  | P.PQuantified (q, v, source, body) -> (
      (* existence doesn't care about order or duplicates, so a step-chain
         source streams lazily and the quantifier stops at the first
         witness / counterexample *)
      let cursor =
        if !force_materialize then None
        else
          match source.P.pop with
          | P.PSteps { steps; input = src; _ } when steps <> [] ->
              let pipe = compile_cursor_steps ~parent:source steps in
              let csrc, _ = compile env src in
              Some (fun ctx inp -> pipe ctx (List.to_seq (as_items (csrc ctx inp))))
          | _ -> None
      in
      match cursor with
      | Some cur ->
          let cb, _ = compile env body in
          ( (fun ctx inp ->
              let test it =
                with_params ctx ((v, [ it ]) :: ctx.params) (fun () -> ebv (cb ctx inp))
              in
              let items = cur ctx inp in
              let result =
                match q with
                | Ast.Some_quant -> Seq.exists test items
                | Ast.Every_quant -> Seq.for_all test items
              in
              Xml [ Item.Atom (Atomic.Boolean result) ]),
            [] )
      | None ->
          let cs, _ = compile env source in
          let cb, _ = compile env body in
          ( (fun ctx inp ->
              let test it =
                with_params ctx ((v, [ it ]) :: ctx.params) (fun () -> ebv (cb ctx inp))
              in
              let items = as_items (cs ctx inp) in
              let result =
                match q with
                | Ast.Some_quant -> List.exists test items
                | Ast.Every_quant -> List.for_all test items
              in
              Xml [ Item.Atom (Atomic.Boolean result) ]),
            [] ))
  | P.PParse uri_plan ->
      let cu, _ = compile env uri_plan in
      ( (fun ctx inp ->
          match as_items (cu ctx inp) with
          | [ it ] -> Xml [ Item.Node (resolve_document ctx (Item.string_value it)) ]
          | _ -> dynamic_error "fn:doc requires a single URI"),
        [] )
  | P.PSerialize (uri, input) ->
      let ci, _ = compile env input in
      ( (fun ctx inp ->
          Serializer.sequence_to_file uri (as_items (ci ctx inp));
          Xml []),
        [] )
  | P.PTupleConstruct fields ->
      let compiled = List.map (fun (q, fp) -> (q, fst (compile env fp))) fields in
      let n = List.length compiled in
      let comps = Array.of_list (List.map snd compiled) in
      ( (fun ctx inp ->
          let t = Array.make n [] in
          Array.iteri (fun i c -> t.(i) <- as_items (c ctx inp)) comps;
          Tab (Seq.return t)),
        List.map fst compiled )
  | P.PFieldAccess q -> (
      match field_index env.layout q with
      | Some i ->
          if !dynamic_field_lookup then
            let layout = env.layout in
            ( (fun _ctx inp ->
                match inp with
                | ITuple t -> (
                    match field_index layout q with
                    | Some j -> Xml t.(j)
                    | None -> dynamic_error "IN#%s not found" q)
                | IItems _ | INone -> dynamic_error "IN#%s outside a tuple context" q),
              [] )
          else
            ( (fun _ctx inp ->
                match inp with
                | ITuple t -> Xml t.(i)
                | IItems _ | INone -> dynamic_error "IN#%s outside a tuple context" q),
              [] )
      | None -> compile_error "unknown tuple field #%s (layout: %s)" q (String.concat "," env.layout))
  | P.PSelect (pred, input) ->
      let ci, li = compile env input in
      let cp, _ = compile { layout = li; drain = env.drain } pred in
      ( (fun ctx inp ->
          Tab (Seq.filter (fun t -> ebv (cp ctx (ITuple t))) (as_table (ci ctx inp)))),
        li )
  | P.PStreamSelect { pred; bound; input } ->
      (* positional early termination, decided by the planner: the input
         cursor is cut after [bound] tuples (the index field always sits
         in slot 0 of a MapIndex output), then the prefix is filtered.
         The cut is sound in both streamed and materialized execution:
         the predicate implies the bound. *)
      let ci, li = compile { env with drain = false } input in
      let cp, _ = compile { layout = li; drain = env.drain } pred in
      let below (t : tuple) =
        match t.(0) with
        | [ Item.Atom (Atomic.Integer i) ] -> i <= bound
        | _ -> true
      in
      ( (fun ctx inp ->
          Tab
            (Seq.filter
               (fun t -> ebv (cp ctx (ITuple t)))
               (Seq.take_while below (as_table (ci ctx inp))))),
        li )
  | P.PProduct (a, b) ->
      let ca, la = compile env a
      and cb, lb = compile { env with drain = true } b in
      let out, width, moves = concat_spec la lb in
      let n1 = List.length la in
      ( (fun ctx inp ->
          let left = as_table (ca ctx inp) in
          let right = table_list (cb ctx inp) in
          Tab
            (Seq.concat_map
               (fun l ->
                 List.to_seq (List.map (fun r -> apply_concat n1 width moves l r) right))
               left)),
        out )
  | P.PNestedLoop { outer; pred; left; right } ->
      compile_nested_loop env outer pred left right
  | P.PHashJoin { outer; build; par; left_key; right_key; left; right } ->
      compile_hash_join env outer build par left_key right_key left right
  | P.PSortJoin { outer; op; left_key; right_key; left; right } ->
      compile_sort_join env outer op left_key right_key left right
  | P.PMaterialize inner ->
      (* explicit pipeline cut: drain the child cursor to a list at call
         time (join/product build sides) *)
      let ci, li = compile { env with drain = true } inner in
      ( (fun ctx inp ->
          match ci ctx inp with Xml _ as v -> v | Tab s -> tab_list (List.of_seq s)),
        li )
  | P.PRelational { rplan; rfields; rparams = _; fallback } ->
      (* offloaded table subplan: run the relational engine over the
         shredded documents and bridge the rows back as a (strict)
         tuple table.  Any engine signal except a deadline — a stated
         limitation (Rel_exec.Fallback) or a comparison-level dynamic
         error — reruns the native twin, which reproduces the exact
         native result or error.  The twin compiles lazily so the happy
         path pays nothing for it; its layout can order fields
         differently, so a positional remap onto [rfields] is computed
         once at force time. *)
      let twin =
        lazy
          (let c, l = compile env fallback in
           if l = rfields then c
           else
             let perm =
               Array.of_list
                 (List.map
                    (fun f ->
                      match field_index l f with
                      | Some i -> i
                      | None ->
                          compile_error "relational twin layout lacks #%s" f)
                    rfields)
             in
             fun ctx inp ->
               Tab
                 (Seq.map
                    (fun t -> Array.map (fun i -> t.(i)) perm)
                    (as_table (c ctx inp))))
      in
      ( (fun ctx inp ->
          match
            Xqc_rel.Rel_exec.run rplan ~lookup:(fun v -> lookup_variable ctx v)
          with
          | tuples ->
              Obs.incr_counter c_rel_subplans;
              Obs.add_counter c_rel_rows (List.length tuples);
              tab_list tuples
          | exception Dynamic_ctx.Timeout -> raise Dynamic_ctx.Timeout
          | exception _ ->
              Obs.incr_counter c_rel_fallbacks;
              (Lazy.force twin) ctx inp),
        rfields )
  | P.PMap (dep, input) ->
      let ci, li = compile env input in
      let cd, ld = compile { layout = li; drain = env.drain } dep in
      ( (fun ctx inp ->
          Tab
            (Seq.concat_map
               (fun t -> as_table (cd ctx (ITuple t)))
               (as_table (ci ctx inp)))),
        ld )
  | P.POMap (q, input) ->
      let ci, li = compile env input in
      let width = 1 + List.length li in
      let mark t =
        let out = Array.make width [] in
        out.(0) <- false_flag;
        Array.blit t 0 out 1 (Array.length t);
        out
      in
      ( (fun ctx inp ->
          let s = as_table (ci ctx inp) in
          (* peeks one tuple to decide between the null row and the
             marked stream; the forced cell is reused, not re-pulled *)
          Tab
            (fun () ->
              match s () with
              | Seq.Nil ->
                  let t = Array.make width [] in
                  t.(0) <- true_flag;
                  Seq.Cons (t, Seq.empty)
              | Seq.Cons (t, rest) -> Seq.Cons (mark t, Seq.map mark rest))),
        q :: li )
  | P.PMapConcat (dep, input) ->
      let ci, li = compile env input in
      let cd, ld = compile { layout = li; drain = env.drain } dep in
      let out, width, moves = concat_spec li ld in
      let n1 = List.length li in
      ( (fun ctx inp ->
          Tab
            (Seq.concat_map
               (fun t ->
                 Seq.map
                   (fun d -> apply_concat n1 width moves t d)
                   (as_table (cd ctx (ITuple t))))
               (as_table (ci ctx inp)))),
        out )
  | P.POMapConcat (q, dep, input) ->
      let ci, li = compile env input in
      let cd, ld = compile { layout = li; drain = env.drain } dep in
      let merged, mwidth, moves = concat_spec li ld in
      let out = q :: merged in
      let width = 1 + mwidth in
      let n1 = List.length li in
      let unmatched t =
        let o = Array.make width [] in
        o.(0) <- true_flag;
        Array.blit t 0 o 1 n1;
        o
      in
      let matched t d =
        let m = apply_concat n1 mwidth moves t d in
        let o = Array.make width [] in
        o.(0) <- false_flag;
        Array.blit m 0 o 1 mwidth;
        o
      in
      ( (fun ctx inp ->
          Tab
            (Seq.concat_map
               (fun t () ->
                 match as_table (cd ctx (ITuple t)) () with
                 | Seq.Nil -> Seq.Cons (unmatched t, Seq.empty)
                 | Seq.Cons (d, rest) -> Seq.Cons (matched t d, Seq.map (matched t) rest))
               (as_table (ci ctx inp)))),
        out )
  | P.PMapIndex (q, input) | P.PMapIndexStep (q, input) ->
      let ci, li = compile env input in
      ( (fun ctx inp ->
          Tab
            (Seq.mapi
               (fun i t ->
                 let out = Array.make (1 + Array.length t) [] in
                 out.(0) <- [ Item.Atom (Atomic.Integer (i + 1)) ];
                 Array.blit t 0 out 1 (Array.length t);
                 out)
               (as_table (ci ctx inp)))),
        q :: li )
  | P.POrderBy (specs, input) ->
      let ci, li = compile { env with drain = true } input in
      let cspecs =
        List.map
          (fun (s : P.psort_spec) ->
            (fst (compile { layout = li; drain = env.drain } s.P.pskey), s.P.psdir, s.P.psempty))
          specs
      in
      ( (fun ctx inp ->
          let tuples = table_list (ci ctx inp) in
          tab_list (order_by ctx cspecs tuples)),
        li )
  | P.PGroupBy (g, input) -> compile_groupby env g input
  | P.PMapFromItem (dep, input) -> (
      (* when the input is an order-preserving step chain, feed the tuple
         pipeline from the lazy item cursor so the path pulls node by
         node instead of materializing the whole step output first *)
      let cursor =
        if !force_materialize then None
        else
          match input.P.pop with
          | P.PSteps { steps; ordered = true; input = src; _ } when steps <> [] ->
              let csrc, _ = compile env src in
              let pipe = compile_cursor_steps ~parent:input steps in
              Some
                (fun ctx inp ->
                  match as_items (csrc ctx inp) with
                  | ([] | [ Item.Node _ ]) as items ->
                      Some (pipe ctx (List.to_seq items))
                  | _ -> None)
          | _ -> None
      in
      match cursor with
      | Some cur ->
          let cd, ld = compile { layout = []; drain = env.drain } dep in
          let strict = lazy (fst (compile env input)) in
          ( (fun ctx inp ->
              let items =
                match cur ctx inp with
                | Some s -> s
                | None ->
                    (* source wasn't a single node: the chain may reorder
                       or duplicate, fall back to the strict evaluation *)
                    List.to_seq (as_items ((Lazy.force strict) ctx inp))
              in
              Tab (Seq.concat_map (fun it -> as_table (cd ctx (IItems [ it ]))) items)),
            ld )
      | None ->
          let ci, _ = compile env input in
          let cd, ld = compile { layout = []; drain = env.drain } dep in
          ( (fun ctx inp ->
              let items = as_items (ci ctx inp) in
              Tab
                (Seq.concat_map
                   (fun it -> as_table (cd ctx (IItems [ it ])))
                   (List.to_seq items))),
            ld ))
  | P.PMapToItem (dep, input) ->
      let ci, li = compile { env with drain = true } input in
      let cd, _ = compile { layout = li; drain = env.drain } dep in
      ( (fun ctx inp ->
          let s = as_table (ci ctx inp) in
          Xml
            (List.concat
               (List.rev
                  (Seq.fold_left (fun acc t -> as_items (cd ctx (ITuple t)) :: acc) [] s)))),
        [] )
  | P.PMapSome (dep, input) ->
      let ci, li = compile { env with drain = false } input in
      let cd, _ = compile { layout = li; drain = env.drain } dep in
      ( (fun ctx inp ->
          Xml
            [
              Item.Atom
                (Atomic.Boolean
                   (Seq.exists (fun t -> ebv (cd ctx (ITuple t))) (as_table (ci ctx inp))));
            ]),
        [] )
  | P.PMapEvery (dep, input) ->
      let ci, li = compile { env with drain = false } input in
      let cd, _ = compile { layout = li; drain = env.drain } dep in
      ( (fun ctx inp ->
          Xml
            [
              Item.Atom
                (Atomic.Boolean
                   (Seq.for_all (fun t -> ebv (cd ctx (ITuple t))) (as_table (ci ctx inp))));
            ]),
        [] )

and generic_call env name (args : P.t list) : comp =
  let cargs = List.map (fun a -> fst (compile env a)) args in
  let builtin = Builtins.find name in
  fun ctx inp ->
    let vals = List.map (fun c -> as_items (c ctx inp)) cargs in
    match Hashtbl.find_opt ctx.functions name with
    | Some f ->
        if List.length f.func_params <> List.length vals then
          dynamic_error "%s called with %d arguments, expected %d" name
            (List.length vals) (List.length f.func_params);
        Xml (f.func_impl ctx vals)
    | None -> (
        match builtin with
        | Some f -> Xml (f ctx vals)
        | None -> dynamic_error "unknown function %s" name)

(* Streaming builtin calls, planned as [PCallStream]: the first argument
   is a [PSteps] chain.  User declarations shadow builtins at run time,
   so the closures re-check the function table on every call and defer to
   a lazily compiled generic path when shadowed (compiled at most once,
   outside any instrumentation). *)
and compile_stream_call env (kind : P.stream_call) name (args : P.t list) : comp =
  let chain =
    match args with
    | ({ P.pop = P.PSteps { steps; input; _ }; _ } as snode) :: rest when steps <> [] ->
        Some (snode, steps, input, rest)
    | _ -> None
  in
  match chain with
  | None -> generic_call env name args
  | Some (snode, steps, src, rest) -> (
      let fallback = lazy (generic_call env name args) in
      match (kind, rest) with
      | P.SExists negate, [] ->
          (* emptiness is insensitive to order and duplicates, so any
             axis chain streams; the first pull decides the answer — and
             a one-step name chain over indexed trees needs no pull at
             all, just the index's range bounds *)
          let csrc, _ = compile env src in
          let pipe = compile_cursor_steps ~parent:snode steps in
          let probe = index_exists_probe steps in
          fun ctx inp ->
            if Hashtbl.mem ctx.functions name then (Lazy.force fallback) ctx inp
            else
              let items = as_items (csrc ctx inp) in
              let indexed =
                match probe with
                | None -> None
                | Some p ->
                    (* existence over many source nodes is a disjunction,
                       so nesting/duplicates are harmless; any
                       unanswerable node means stream *)
                    let rec go = function
                      | [] -> Some false
                      | Item.Node n :: rest -> (
                          match p n with
                          | Some true -> Some true
                          | Some false -> go rest
                          | None -> None)
                      | Item.Atom _ :: _ -> None
                    in
                    go items
              in
              let nonempty =
                match indexed with
                | Some b -> b
                | None -> not (Seq.is_empty (pipe ctx (List.to_seq items)))
              in
              Xml [ Item.Atom (Atomic.Boolean (if negate then not nonempty else nonempty)) ]
      | P.SCount, [] -> (
          (* exact cardinality from the index range: only for a one-step
             name chain over a single source node, where the step output
             is duplicate-free by construction *)
          match index_count_probe steps with
          | None -> generic_call env name args
          | Some probe ->
              let csrc, _ = compile env src in
              fun ctx inp ->
                if Hashtbl.mem ctx.functions name then (Lazy.force fallback) ctx inp
                else
                  match as_items (csrc ctx inp) with
                  | [] -> Xml [ Item.Atom (Atomic.Integer 0) ]
                  | [ Item.Node n ] -> (
                      match probe n with
                      | Some k -> Xml [ Item.Atom (Atomic.Integer k) ]
                      | None -> (Lazy.force fallback) ctx inp)
                  | _ -> (Lazy.force fallback) ctx inp)
      | P.SSubseq, [ start; len ] ->
          let csrc, _ = compile env src in
          let pipe = compile_cursor_steps ~parent:snode steps in
          let cstart, _ = compile env start in
          let clen, _ = compile env len in
          let to_int c ctx inp =
            match Item.atomize (as_items (c ctx inp)) with
            | [ a ] -> int_of_float (Option.value ~default:0.0 (Atomic.to_float a))
            | _ -> dynamic_error "fn:subsequence: argument is not a single atomic value"
          in
          fun ctx inp ->
            if Hashtbl.mem ctx.functions name then (Lazy.force fallback) ctx inp
            else begin
              let st = to_int cstart ctx inp and n = to_int clen ctx inp in
              match as_items (csrc ctx inp) with
              | ([] | [ Item.Node _ ]) as items ->
                  (* pull only the first st+n-1 items of the path *)
                  let s = pipe ctx (List.to_seq items) in
                  let keep =
                    Seq.filter_map
                      (fun (i, it) -> if i + 1 >= st then Some it else None)
                      (Seq.mapi (fun i it -> (i, it)) (Seq.take (max 0 (st + n - 1)) s))
                  in
                  Xml (List.of_seq keep)
              | _ -> (Lazy.force fallback) ctx inp
            end
      | _ -> generic_call env name args)

and order_by ctx cspecs tuples =
  (* evaluate all keys once, classifying each into its typed comparison
     class ([Promotion.order_key]) — pairwise fs:convert-operand is not
     transitive over mixed-type keys, the per-class comparison is *)
  let classify a =
    match Promotion.order_key a with
    | k -> k
    | exception Promotion.Type_mismatch _ ->
        dynamic_error "order by: incomparable values"
  in
  let keyed =
    List.map
      (fun t ->
        let keys =
          List.map
            (fun (ck, _, _) ->
              match Item.atomize (as_items (ck ctx (ITuple t))) with
              | [] -> None
              | [ a ] -> Some (classify a)
              | _ -> dynamic_error "order by key is not a singleton")
            cspecs
        in
        (keys, t))
      tuples
  in
  let dirs = List.map (fun (_, d, e) -> (d, e)) cspecs in
  let compare_keys ks1 ks2 =
    let rec go ks1 ks2 dirs =
      match (ks1, ks2, dirs) with
      | [], [], [] -> 0
      | k1 :: r1, k2 :: r2, (dir, empty) :: rd ->
          let c =
            match (k1, k2) with
            | None, None -> 0
            | None, Some _ -> ( match empty with Ast.Empty_least -> -1 | Ast.Empty_greatest -> 1)
            | Some _, None -> ( match empty with Ast.Empty_least -> 1 | Ast.Empty_greatest -> -1)
            | Some a, Some b -> (
                match Promotion.compare_order_keys a b with
                | c -> c
                | exception Promotion.Type_mismatch _ ->
                    dynamic_error "order by: incomparable values")
          in
          let c = match dir with Ast.Ascending -> c | Ast.Descending -> -c in
          if c <> 0 then c else go r1 r2 rd
      | _ -> 0
    in
    go ks1 ks2 dirs
  in
  List.map snd (List.stable_sort (fun (k1, _) (k2, _) -> compare_keys k1 k2) keyed)

and compile_groupby env (g : P.pgroup_spec) input =
  let ci, li = compile { env with drain = true } input in
  let cpre, _ = compile { layout = li; drain = env.drain } g.P.pg_pre in
  let cpost, _ = compile { layout = []; drain = env.drain } g.P.pg_post in
  let index_slots =
    List.map
      (fun q ->
        match field_index li q with
        | Some i -> i
        | None -> compile_error "GroupBy index field #%s not in layout" q)
      g.P.pg_indices
  in
  let null_slots =
    List.map
      (fun q ->
        match field_index li q with
        | Some i -> i
        | None -> compile_error "GroupBy null field #%s not in layout" q)
      g.P.pg_nulls
  in
  let width = List.length li + 1 in
  let out_layout = li @ [ g.P.pg_agg ] in
  ( (fun ctx inp ->
      let tuples = table_list (ci ctx inp) in
      let is_null t =
        List.exists (fun i -> Item.effective_boolean_value t.(i)) null_slots
      in
      let pre_of t = if is_null t then [] else as_items (cpre ctx (ITuple t)) in
      let emit first items =
        let out = Array.make width [] in
        Array.blit first 0 out 0 (Array.length first);
        out.(width - 1) <- as_items (cpost ctx (IItems items));
        out
      in
      match index_slots with
      | [] -> (
          (* no grouping criteria: the whole input is one partition — this
             is what makes the (insert group-by) rewriting an identity *)
          match tuples with
          | [] -> Tab Seq.empty
          | first :: _ ->
              Tab (Seq.return (emit first (List.concat_map pre_of tuples))))
      | slots ->
          let key_of t =
            String.concat "\x00"
              (List.map
                 (fun i -> String.concat "," (List.map Item.string_value t.(i)))
                 slots)
          in
          let partitions : (string, tuple * Item.sequence list ref) Hashtbl.t =
            Hashtbl.create 64
          in
          let order = ref [] in
          List.iter
            (fun t ->
              let k = key_of t in
              match Hashtbl.find_opt partitions k with
              | Some (_, items) -> items := pre_of t :: !items
              | None ->
                  Hashtbl.add partitions k (t, ref [ pre_of t ]);
                  order := k :: !order)
            tuples;
          tab_list
            (List.rev_map
               (fun k ->
                 let first, items = Hashtbl.find partitions k in
                 emit first (List.concat (List.rev !items)))
               !order)),
    out_layout )

(* The builder's top node is a join's mirror; its join_stats record is
   shared with the Joins kernels (hash/sort) or updated inline for the
   nested-loop paths. *)
and join_scaffold env (outer : P.field option) a b : join_parts =
  let jstats =
    match current_builder () with Some b -> Obs.top_join b | None -> None
  in
  let ca, la = compile env a and cb, lb = compile env b in
  let merged, mwidth, moves = concat_spec la lb in
  let n1 = List.length la in
  let is_outer = outer <> None in
  let out_layout = match outer with Some q -> q :: merged | None -> merged in
  let emit_match l r =
    let m = apply_concat n1 mwidth moves l r in
    if is_outer then (
      let o = Array.make (1 + mwidth) [] in
      o.(0) <- false_flag;
      Array.blit m 0 o 1 mwidth;
      o)
    else m
  in
  let emit_unmatched l =
    let o = Array.make (1 + mwidth) [] in
    o.(0) <- true_flag;
    Array.blit l 0 o 1 n1;
    o
  in
  let run left matches_of =
    Tab
      (Seq.concat_map
         (fun l ->
           match matches_of l with
           | [] -> if is_outer then Seq.return (emit_unmatched l) else Seq.empty
           | ms -> List.to_seq (List.map (emit_match l) ms))
         left)
  in
  {
    jp_stats = jstats;
    jp_left = ca;
    jp_llayout = la;
    jp_right = cb;
    jp_rlayout = lb;
    jp_merged = merged;
    jp_n1 = n1;
    jp_mwidth = mwidth;
    jp_moves = moves;
    jp_out = out_layout;
    jp_run = run;
  }

and compile_nested_loop env outer (pred : P.ppred) a b : comp * layout =
  let jp = join_scaffold env outer a b in
  let note_probe ms =
    (match jp.jp_stats with
    | Some js ->
        js.Obs.js_probes <- js.Obs.js_probes + 1;
        js.Obs.js_matches <- js.Obs.js_matches + List.length ms
    | None -> ());
    ms
  in
  match pred with
  | P.PWholePred p ->
      (* arbitrary predicates always run as an order-preserving NL join *)
      let cp, _ = compile { layout = jp.jp_merged; drain = env.drain } p in
      ( (fun ctx inp ->
          let left = as_table (jp.jp_left ctx inp) in
          let right = table_list (jp.jp_right ctx inp) in
          jp.jp_run left (fun l ->
              note_probe
                (List.filter_map
                   (fun r ->
                     let m = apply_concat jp.jp_n1 jp.jp_mwidth jp.jp_moves l r in
                     if ebv (cp ctx (ITuple m)) then Some r else None)
                   right))),
        jp.jp_out )
  | P.PSplitPred { op; left_key; right_key } ->
      let cl, _ = compile { layout = jp.jp_llayout; drain = env.drain } left_key in
      let cr, _ = compile { layout = jp.jp_rlayout; drain = env.drain } right_key in
      ( (fun ctx inp ->
          let left = as_table (jp.jp_left ctx inp) in
          let right = table_list (jp.jp_right ctx inp) in
          jp.jp_run left (fun l ->
              let lk = as_items (cl ctx (ITuple l)) in
              note_probe
                (List.filter
                   (fun r -> Promotion.general_compare op lk (as_items (cr ctx (ITuple r))))
                   right))),
        jp.jp_out )

and compile_hash_join env outer (build : P.build_side) par left_key right_key a
    b : comp * layout =
  let jp = join_scaffold env outer a b in
  let cl, _ = compile { layout = jp.jp_llayout; drain = env.drain } left_key in
  let cr, _ = compile { layout = jp.jp_rlayout; drain = env.drain } right_key in
  (* Per-partition op_nodes for the parallel probe phase (EXPLAIN
     ANALYZE); created at compile time while this join is the builder
     top, all-[None] otherwise. *)
  let pstats = if par > 1 then partition_stats par 0. else [||] in
  (* Build-side key extraction, partitioned when the side is wide
     enough.  [build_hash_index] calls its key function exactly once per
     tuple, in list order, so precomputed keys can be replayed
     positionally — the index (insertion orders included) is then
     byte-identical to the sequential build.  Key-evaluation races are
     avoided by giving each chunk its own cloned context; the join
     counters in [jp_stats] are skipped on this path (they would need
     synchronization) and instead absorbed by the sequential insertion
     pass below. *)
  let build_keys ctx comp tuples =
    if not (Par_exec.eligible ~par (List.length tuples)) then None
    else
      Some
        (Array.of_list
           (List.concat
              (Par_exec.run_partitions ~par ~ctx
                 ~task:(fun _ tctx chunk ->
                   List.map (fun t -> as_items (comp tctx (ITuple t))) chunk)
                 tuples)))
  in
  let build_index ctx comp tuples =
    match build_keys ctx comp tuples with
    | None ->
        Joins.build_hash_index ?stats:jp.jp_stats tuples
          (fun t -> as_items (comp ctx (ITuple t)))
    | Some keys ->
        let pos = ref (-1) in
        Joins.build_hash_index ?stats:jp.jp_stats tuples
          (fun _ ->
            incr pos;
            keys.(!pos))
  in
  match build with
  | P.Build_right when par > 1 ->
      (* Partitioned probe: materialize both sides, build the index
         once (parallel key extraction when profitable), then probe
         contiguous chunks of the outer side concurrently.  Each chunk
         produces its (probe tuple, matches) pairs in probe order, so
         chunk concatenation replayed through [jp_run] emits exactly
         the sequential left-major output.  Falls back to the plain
         streamed form when the outer side is narrow. *)
      ( (fun ctx inp ->
          let left = table_list (jp.jp_left ctx inp) in
          let right = table_list (jp.jp_right ctx inp) in
          if not (Par_exec.eligible ~par (List.length left)) then
            let index = build_index ctx cr right in
            jp.jp_run (List.to_seq left) (fun l ->
                Joins.probe_hash_index ?stats:jp.jp_stats index
                  (Item.atomize (as_items (cl ctx (ITuple l)))))
          else begin
            let index = build_index ctx cr right in
            let matches =
              Array.of_list
                (List.concat
                   (Par_exec.run_partitions ~par ~ctx
                      ~task:(fun i tctx chunk ->
                        record_partition pstats.(i) (fun () ->
                            List.map
                              (fun l ->
                                Joins.probe_hash_index index
                                  (Item.atomize
                                     (as_items (cl tctx (ITuple l)))))
                              chunk))
                      left))
            in
            let pos = ref (-1) in
            jp.jp_run (List.to_seq left) (fun _l ->
                incr pos;
                matches.(!pos))
          end),
        jp.jp_out )
  | P.Build_right ->
      ( (fun ctx inp ->
          let left = as_table (jp.jp_left ctx inp) in
          let right = table_list (jp.jp_right ctx inp) in
          let index =
            Joins.build_hash_index ?stats:jp.jp_stats right
              (fun r -> as_items (cr ctx (ITuple r)))
          in
          jp.jp_run left (fun l ->
              Joins.probe_hash_index ?stats:jp.jp_stats index
                (Item.atomize (as_items (cl ctx (ITuple l)))))),
        jp.jp_out )
  | P.Build_left ->
      (* build on the (estimated smaller) left side: index left keys,
         probe with each right tuple, and bucket the matching right
         tuples under their left position.  The output is then emitted
         left-major with matches in right order — exactly the pairs and
         order of the build-right form (the Table 2 acceptance check is
         symmetric), at the memory cost of the smaller side.

         Under a [par] budget the probe phase partitions the right side:
         each chunk computes its (right tuple, matching left orders)
         pairs concurrently — [probe_hash_index_orders] returns global
         build positions, so chunk results bucket directly — and the
         cheap bucketing pass replays them sequentially in right order,
         preserving the exact sequential output. *)
      ( (fun ctx inp ->
          let left = table_list (jp.jp_left ctx inp) in
          let right = table_list (jp.jp_right ctx inp) in
          let index = build_index ctx cl left in
          let buckets = Array.make (max 1 (List.length left)) [] in
          (if Par_exec.eligible ~par (List.length right) then
             let pairs =
               List.concat
                 (Par_exec.run_partitions ~par ~ctx
                    ~task:(fun i tctx chunk ->
                      record_partition pstats.(i) (fun () ->
                          List.map
                            (fun r ->
                              ( r,
                                Joins.probe_hash_index_orders index
                                  (Item.atomize
                                     (as_items (cr tctx (ITuple r)))) ))
                            chunk))
                    right)
             in
             List.iter
               (fun (r, orders) ->
                 List.iter
                   (fun o -> buckets.(o - 1) <- r :: buckets.(o - 1))
                   orders)
               pairs
           else
             List.iter
               (fun r ->
                 List.iter
                   (fun o -> buckets.(o - 1) <- r :: buckets.(o - 1))
                   (Joins.probe_hash_index_orders ?stats:jp.jp_stats index
                      (Item.atomize (as_items (cr ctx (ITuple r))))))
               right);
          let pos = ref 0 in
          jp.jp_run (List.to_seq left) (fun _l ->
              let i = !pos in
              incr pos;
              List.rev buckets.(i))),
        jp.jp_out )

and compile_sort_join env outer (op : Promotion.cmp_op) left_key right_key a b :
    comp * layout =
  (match op with
  | Promotion.Lt | Promotion.Le | Promotion.Gt | Promotion.Ge -> ()
  | Promotion.Eq | Promotion.Ne ->
      compile_error "sort join planned for a non-inequality operator");
  let jp = join_scaffold env outer a b in
  let cl, _ = compile { layout = jp.jp_llayout; drain = env.drain } left_key in
  let cr, _ = compile { layout = jp.jp_rlayout; drain = env.drain } right_key in
  ( (fun ctx inp ->
      let left = as_table (jp.jp_left ctx inp) in
      let right = table_list (jp.jp_right ctx inp) in
      let index =
        Joins.build_sort_index ?stats:jp.jp_stats right
          (fun r -> as_items (cr ctx (ITuple r)))
      in
      jp.jp_run left (fun l ->
          Joins.probe_sort_index ?stats:jp.jp_stats op index
            (Item.atomize (as_items (cl ctx (ITuple l)))))),
    jp.jp_out )

(* ------------------------------------------------------------------ *)
(* Whole-query evaluation                                              *)
(* ------------------------------------------------------------------ *)

(* Compile one plan with instrumentation when a collector is given: the
   annotated op_node tree is registered under [name] (replacing the tree
   from any previous run). *)
let compile_plan (stats : Obs.collector option) (name : string) (env : cenv)
    (p : P.t) : comp * layout =
  match stats with
  | None -> compile env p
  | Some c ->
      let b = Obs.builder () in
      let saved = current_builder () in
      set_current_builder (Some b);
      let finish () =
        set_current_builder saved;
        match Obs.builder_root b with
        | Some root -> Obs.set_plan c name root
        | None -> ()
      in
      (match compile env p with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

(* Install compiled user functions into the context, then evaluate the
   globals in declaration order, then run the main plan. *)
let install_query ?stats (ctx : Dynamic_ctx.t) (q : P.query) :
    Dynamic_ctx.t -> Item.sequence =
  List.iter
    (fun (f : P.pfunction) ->
      Hashtbl.replace ctx.functions f.P.pf_name
        { func_params = f.P.pf_params; func_impl = (fun _ _ -> dynamic_error "uncompiled function") })
    q.P.pfunctions;
  List.iter
    (fun (f : P.pfunction) ->
      let body, _ =
        compile_plan stats ("function " ^ f.P.pf_name) { layout = []; drain = true } f.P.pf_body
      in
      let impl ctx args =
        let frame = List.combine f.P.pf_params args in
        with_params ctx frame (fun () -> as_items (body ctx INone))
      in
      (Hashtbl.find ctx.functions f.P.pf_name).func_impl <- impl)
    q.P.pfunctions;
  let globals =
    List.map
      (fun (v, p) -> (v, fst (compile_plan stats ("global $" ^ v) { layout = []; drain = true } p)))
      q.P.pglobals
  in
  let main, _ = compile_plan stats "main" { layout = []; drain = true } q.P.pmain in
  fun ctx ->
    List.iter (fun (v, c) -> bind_global ctx v (as_items (c ctx INone))) globals;
    as_items (main ctx INone)

let run ?stats ctx (q : P.query) : Item.sequence =
  match stats with
  | None -> (install_query ctx q) ctx
  | Some c ->
      let runner =
        Obs.phase c "compile closures" (fun () -> install_query ~stats:c ctx q)
      in
      Obs.phase c "eval" (fun () -> runner ctx)
