(** Physical evaluation of planned algebra plans.

    Plans compile to OCaml closures.  Tuples are value arrays and every
    IN#q access resolves to an integer slot at compile time — the paper
    attributes part of the algebra speedup to this "replacement of
    dynamic lookups in the dynamic context by direct compiled memory
    access".

    The evaluator consumes the {e physical} algebra produced by the
    cost-based planner ([Xqc_optimizer.Planner]) and re-makes no strategy
    decision: join algorithm and build side, index-vs-walk per step,
    positional bounds, streaming calls and materialization points all
    arrive encoded in the plan.

    Dependent-input plumbing: every compiled plan receives the current
    dependent input [inp]; operators pass it through to their independent
    children unchanged and rebind it for their dependent children
    (per-tuple predicates, map bodies, group-by pre/post plans, join
    predicate legs, sort keys). *)

open Xqc_xml
open Xqc_frontend
open Xqc_algebra

exception Compile_error of string

val compile_error : ('a, unit, string, 'b) format4 -> 'a

type tuple = Item.sequence array

type dval = Xml of Item.sequence | Tab of tuple Seq.t

type inp = ITuple of tuple | IItems of Item.sequence | INone

type comp = Dynamic_ctx.t -> inp -> dval

val as_items : dval -> Item.sequence

val as_table : dval -> tuple Seq.t
(** The tabular arm is a pull-based cursor: tuples flow only as the
    consumer pulls, and each cursor must be consumed at most once. *)

val table_list : dval -> tuple list
(** [as_table] drained to a list (what blocking consumers do). *)

val ebv : dval -> bool

(** {1 Layouts} *)

type layout = string list

val field_index : layout -> string -> int option

val concat_spec : layout -> layout -> layout * int * (int * int) array
(** Tuple-concatenation spec: merged output layout (left fields keep
    their slots, overlapping right fields overwrite in place), its width,
    and the compile-time move table for the right tuple. *)

val apply_concat : int -> int -> (int * int) array -> tuple -> tuple -> tuple

(** {1 Axes and construction (shared with the interpreter)} *)

val apply_axis : Ast.axis -> Node.t -> Node.t list
val test_matches : Xqc_types.Schema.t -> Ast.axis -> Ast.node_test -> Node.t -> bool
val tree_join : Xqc_types.Schema.t -> Ast.axis -> Ast.node_test -> Item.sequence -> Item.sequence
val construct_element : string -> Item.sequence -> Item.t
val construct_attribute : string -> Item.sequence -> Item.t

(** {1 Compilation and execution} *)

type cenv = { layout : layout; drain : bool }
(** [drain]: the consumer fully drains a tabular result, so the fused
    tier may replace a lazy Select/MapFromItem cursor with an eager
    tuple batch.  Pass [true] at scope roots; cleared internally below
    early-terminating consumers. *)

val dynamic_field_lookup : bool ref
(** Ablation knob: when set during compilation, IN#q accesses scan the
    layout by name at every evaluation instead of using the resolved slot
    (simulating the pre-paper dynamic-context lookups). *)

val force_materialize : bool ref
(** Debug knob: when set during compilation, every operator drains its
    cursor eagerly at call time and the cursor-based early-termination
    paths are disabled — restoring fully materialized evaluation of the
    {e same} physical plan.  Used to cross-check streamed against
    materialized results and as the bench early-exit baseline. *)

val compile : cenv -> Physical.t -> comp * layout
(** Compile a physical plan under the layout IN will have when it is a
    tuple; returns the closure and the output layout (meaningful for
    table-producing plans).
    @raise Compile_error on unknown tuple fields or malformed plans. *)

val compile_plan :
  Xqc_obs.Obs.collector option -> string -> cenv -> Physical.t -> comp * layout
(** Compile one plan; with a collector, every operator closure is
    wrapped to record invocation count, cumulative (inclusive) time and
    output cardinality — alongside the planner's estimate — and the
    annotated tree is registered under the given name (replacing any
    previous tree of that name). *)

val install_query :
  ?stats:Xqc_obs.Obs.collector ->
  Dynamic_ctx.t -> Physical.query -> Dynamic_ctx.t -> Item.sequence
(** Register the query's functions (recursion-safe two-phase patching)
    and return a runner evaluating globals then the main plan.  With
    [~stats], compiled closures are instrumented per operator. *)

val run :
  ?stats:Xqc_obs.Obs.collector ->
  Dynamic_ctx.t -> Physical.query -> Item.sequence
(** With [~stats], times the "compile closures" and "eval" phases and
    records per-operator and join statistics into the collector. *)
