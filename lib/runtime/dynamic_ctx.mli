(** The dynamic evaluation context — the paper's implicit "algebra
    context": the schema in force, global/external variable bindings,
    compiled user functions, the document cache behind Parse/fn:doc, and
    the current function-parameter frame. *)

open Xqc_xml
open Xqc_types

exception Dynamic_error of string

exception Timeout
(** Raised by {!check_deadline} when the context's deadline has passed.
    The query server maps it to a structured ["timeout"] error. *)

val dynamic_error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Dynamic_error} with a formatted message. *)

type xvalue = Item.sequence

(** A user-defined function; [func_impl] is patched after all functions
    of a query are compiled, enabling (mutual) recursion. *)
type func = {
  func_params : string list;
  mutable func_impl : t -> xvalue list -> xvalue;
}

and t = {
  schema : Schema.t;
  globals : (string, xvalue) Hashtbl.t;
  functions : (string, func) Hashtbl.t;
  documents : (string, Node.t) Hashtbl.t;
  collections : (string, Node.t list) Hashtbl.t;
      (** named document collections behind fn:collection, in bind order *)
  resolver : (string -> Node.t) option;
  mutable params : (string * xvalue) list;  (** current function frame *)
  mutable deadline : float option;
      (** absolute wall-clock time after which evaluation aborts *)
  mutable trace : Xqc_obs.Trace.t option;
      (** request trace to record context-level spans into (deadline
          arming, document parses); [None] = untraced *)
}

val create : ?schema:Schema.t -> ?resolver:(string -> Node.t) -> unit -> t

val set_trace : t -> Xqc_obs.Trace.t option -> unit
(** Attach the request's trace so [set_deadline] and
    [resolve_document] record spans into it. *)

val set_deadline : t -> float option -> unit
(** Arm (or clear) the evaluation deadline, as an absolute [Obs.now]
    wall-clock time.  Arming is recorded as a "deadline-armed" event in
    the attached trace, if any. *)

val check_deadline : t -> unit
(** Cooperative cancellation point: raise {!Timeout} when the deadline
    has passed.  The physical evaluator calls this at operator
    invocation boundaries — for dependent sub-plans, once per tuple —
    so with no deadline set the cost is one field load. *)

val bind_global : t -> string -> xvalue -> unit
val bind_document : t -> string -> Node.t -> unit

val bind_collection : t -> string -> Node.t list -> unit
(** Bind a named collection for [fn:collection]; the member order is
    the sequence order the function returns. *)

val resolve_collection : t -> string -> Node.t list
(** @raise Dynamic_error when no collection is bound under the name. *)

val lookup_variable : t -> string -> xvalue
(** Parameter frame first, then globals.
    @raise Dynamic_error when unbound. *)

val resolve_document : t -> string -> Node.t
(** Cache lookup, falling back to the resolver (which is then cached),
    making [fn:doc] idempotent per URI for the context's lifetime.
    Hits and resolver calls are recorded in the [doc_cache_hits] /
    [doc_parses] obs global counters.
    @raise Dynamic_error when the URI cannot be resolved. *)

val clear_doc_cache : t -> unit
(** Drop every cached document so the next [fn:doc] re-resolves —
    the escape hatch for long-lived contexts whose backing files
    change.  Also purges the per-root caches keyed on the evicted
    trees (structural indexes, shredded tables): nothing reaches those
    roots afterwards, so keeping the entries would leak them. *)

val with_params : t -> (string * xvalue) list -> (unit -> 'a) -> 'a
(** Run with a parameter frame, restoring the caller's frame on exit
    (including on exceptions). *)

val clone_for_task : t -> t
(** Context for one intra-query partition task running on another
    domain.  Schema, globals, functions and the current parameter frame
    are shared (read-only for the task's lifetime — the frame is an
    immutable list, so the clone's own [with_params] never touches the
    owner's); the document cache is copied because [resolve_document]
    mutates it; the deadline is carried over; the trace is dropped
    (traces are single-owner). *)
