(* The dynamic evaluation context (the paper's implicit "algebra context"):
   schema in force, global/external variable bindings, compiled user
   functions, the document cache behind Parse/fn:doc, and the current
   function-parameter frame. *)

open Xqc_xml
open Xqc_types
module Obs = Xqc_obs.Obs
module Trace = Xqc_obs.Trace

exception Dynamic_error of string

exception Timeout
(* Raised by [check_deadline] when the context's deadline has passed;
   the query server maps it to a structured "timeout" error response. *)

let dynamic_error fmt = Printf.ksprintf (fun s -> raise (Dynamic_error s)) fmt

type xvalue = Item.sequence

type func = {
  func_params : string list;
  mutable func_impl : t -> xvalue list -> xvalue;
      (** patched after all functions are compiled, enabling recursion *)
}

and t = {
  schema : Schema.t;
  globals : (string, xvalue) Hashtbl.t;
  functions : (string, func) Hashtbl.t;
  documents : (string, Node.t) Hashtbl.t;
  collections : (string, Node.t list) Hashtbl.t;
      (** named document collections behind fn:collection, in bind order *)
  resolver : (string -> Node.t) option;
  mutable params : (string * xvalue) list;  (** current function frame *)
  mutable deadline : float option;
      (** absolute wall-clock time (Obs.now) after which evaluation must
          abort with [Timeout]; [None] disables the checks *)
  mutable trace : Trace.t option;
      (** request trace to record context-level spans into (deadline
          arming, document parses); [None] = untraced *)
}

let create ?(schema = Schema.empty) ?resolver () =
  {
    schema;
    globals = Hashtbl.create 16;
    functions = Hashtbl.create 16;
    documents = Hashtbl.create 4;
    collections = Hashtbl.create 4;
    resolver;
    params = [];
    deadline = None;
    trace = None;
  }

let set_trace ctx tro = ctx.trace <- tro

let set_deadline ctx d =
  ctx.deadline <- d;
  (* the deadline-arming instant shows up in the request's span tree *)
  match d with
  | Some dl ->
      Trace.opt_event ctx.trace
        ~attrs:
          [ ("budget_ms", Printf.sprintf "%.1f" ((dl -. Obs.now ()) *. 1000.0)) ]
        "deadline-armed"
  | None -> ()

(* Cooperative cancellation: the evaluator calls this at operator
   invocation boundaries (which for dependent sub-plans means once per
   tuple), so a runaway query unwinds within a bounded amount of work
   of its deadline.  With no deadline set the check is one field load. *)
let check_deadline ctx =
  match ctx.deadline with
  | None -> ()
  | Some t -> if Obs.now () > t then raise Timeout

let bind_global ctx name value = Hashtbl.replace ctx.globals name value

let bind_document ctx uri doc = Hashtbl.replace ctx.documents uri doc

let bind_collection ctx name docs = Hashtbl.replace ctx.collections name docs

let resolve_collection ctx name : Node.t list =
  match Hashtbl.find_opt ctx.collections name with
  | Some docs -> docs
  | None -> dynamic_error "no collection bound under %S" name

let lookup_variable ctx name : xvalue =
  match List.assoc_opt name ctx.params with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt ctx.globals name with
      | Some v -> v
      | None -> dynamic_error "unbound variable $%s" name)

let c_doc_hits = Obs.global_counter "doc_cache_hits"
let c_doc_parses = Obs.global_counter "doc_parses"

let resolve_document ctx uri : Node.t =
  match Hashtbl.find_opt ctx.documents uri with
  | Some d ->
      Obs.incr_counter c_doc_hits;
      d
  | None -> (
      match ctx.resolver with
      | Some f ->
          let d =
            Trace.opt_span ctx.trace ~attrs:[ ("uri", uri) ] "doc-parse"
              (fun () -> f uri)
          in
          Obs.incr_counter c_doc_parses;
          Hashtbl.replace ctx.documents uri d;
          d
      | None -> dynamic_error "cannot resolve document %S" uri)

(* Escape hatch for long-lived contexts: drop every cached document so
   the next fn:doc re-resolves (e.g. after the file changed on disk).
   The per-root caches keyed on the evicted trees — structural name
   indexes, shredded tables — must go with them: nothing else reaches
   those roots any more, so a stale entry is a leak that the
   opportunistic purges (which only fire on re-registration of the
   *same* root) never collect. *)
let clear_doc_cache ctx =
  Hashtbl.iter
    (fun _ doc ->
      let root = Node.root doc in
      Xqc_store.Store.purge_root root;
      Xqc_rel.Shred.purge_root root)
    ctx.documents;
  Hashtbl.reset ctx.documents

(* Context for one intra-query partition task, running on another
   domain while the owner keeps evaluating.  Shared read-only during
   the task's lifetime: schema, globals (fully bound before the main
   plan runs), compiled functions, and the current [params] frame (an
   immutable list — the clone sees the frame at spawn and its own
   [with_params] pushes never touch the owner's).  Copied: the document
   cache, because [resolve_document] mutates it on miss (a racing task
   may re-parse a document the owner is also parsing; both store
   identical trees into disjoint tables).  Dropped: the trace — traces
   are single-owner ring writers, so partition tasks go untraced rather
   than corrupt the owner's spans.  The deadline is carried over so
   partition work respects the request budget. *)
let clone_for_task (ctx : t) : t =
  {
    schema = ctx.schema;
    globals = ctx.globals;
    functions = ctx.functions;
    documents = Hashtbl.copy ctx.documents;
    collections = ctx.collections;
    resolver = ctx.resolver;
    params = ctx.params;
    deadline = ctx.deadline;
    trace = None;
  }

(* Run [f] with a fresh parameter frame, restoring the caller's frame —
   needed for recursive user-defined functions. *)
let with_params ctx frame f =
  let saved = ctx.params in
  ctx.params <- frame;
  match f () with
  | v ->
      ctx.params <- saved;
      v
  | exception e ->
      ctx.params <- saved;
      raise e
