(* The built-in function library: fn: (user-visible), op: (operators
   introduced by normalization) and fs: (formal-semantics helpers).  The
   paper notes that a number of built-in functions are required for
   completeness (fn:data etc.); this module is the algebra context's
   function table for all of them. *)

open Xqc_xml
open Xqc_types
open Dynamic_ctx

let err = dynamic_error

(* ------------------------------------------------------------------ *)
(* Small helpers over sequences                                        *)
(* ------------------------------------------------------------------ *)

let boolean b : xvalue = [ Item.Atom (Atomic.Boolean b) ]
let integer i : xvalue = [ Item.Atom (Atomic.Integer i) ]
let double f : xvalue = [ Item.Atom (Atomic.Double f) ]
let string_v s : xvalue = [ Item.Atom (Atomic.String s) ]

let one_arg name = function
  | [ x ] -> x
  | args -> err "%s expects 1 argument, got %d" name (List.length args)

let two_args name = function
  | [ x; y ] -> (x, y)
  | args -> err "%s expects 2 arguments, got %d" name (List.length args)

let singleton_atom name (s : xvalue) : Atomic.t =
  match Item.atomize s with
  | [ a ] -> a
  | [] -> err "%s: empty sequence where a single value is required" name
  | _ -> err "%s: more than one item where a single value is required" name

let string_of_arg name (s : xvalue) : string =
  match s with
  | [] -> ""
  | [ it ] -> Item.string_value it
  | _ -> err "%s: singleton string argument required" name

(* Numeric view with XQuery promotion: atomize, untyped -> double. *)
let numeric_atom name (a : Atomic.t) : Atomic.t =
  match a with
  | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Float _ | Atomic.Double _ -> a
  | Atomic.Untyped _ -> (
      try Atomic.cast Atomic.T_double a
      with Atomic.Cast_error _ -> err "%s: cannot convert %S to a number" name (Atomic.to_string a))
  | Atomic.String _ | Atomic.Boolean _ | Atomic.Any_uri _ | Atomic.Qname _
  | Atomic.Other _ ->
      err "%s: non-numeric operand %s" name (Atomic.to_string a)

(* Binary arithmetic with the spec's promotion rules: the result type is
   the least common type in the numeric tower. *)
let arith name fint ffloat (xs : xvalue) (ys : xvalue) : xvalue =
  match (Item.atomize xs, Item.atomize ys) with
  | [], _ | _, [] -> []
  | [ x ], [ y ] -> (
      let x = numeric_atom name x and y = numeric_atom name y in
      match (x, y) with
      | Atomic.Integer a, Atomic.Integer b -> (
          match fint with
          | Some f -> integer (f a b)
          | None ->
              (* integer division produces a decimal *)
              [ Item.Atom (Atomic.Decimal (ffloat (float_of_int a) (float_of_int b))) ])
      | _ ->
          let fx = Option.get (Atomic.to_float x)
          and fy = Option.get (Atomic.to_float y) in
          let result = ffloat fx fy in
          let mk =
            match (x, y) with
            | Atomic.Double _, _ | _, Atomic.Double _ -> fun f -> Atomic.Double f
            | Atomic.Float _, _ | _, Atomic.Float _ -> fun f -> Atomic.Float f
            | _ -> fun f -> Atomic.Decimal f
          in
          [ Item.Atom (mk result) ])
  | _ -> err "%s: arithmetic on non-singleton sequences" name

(* A canonical string key under which two general-comparison-equal atomics
   collide; used by fn:distinct-values. *)
let distinct_key (a : Atomic.t) : string =
  match Atomic.to_float a with
  | Some f when not (Float.is_nan f) -> Printf.sprintf "N%h" f
  | Some _ -> "NaN"
  | None -> (
      match a with
      | Atomic.Boolean b -> if b then "Btrue" else "Bfalse"
      | _ -> "S" ^ Atomic.to_string a)

let aggregate name fold_empty fold (s : xvalue) : xvalue =
  match Item.atomize s with
  | [] -> fold_empty
  | first :: rest ->
      let first = numeric_atom name first in
      let v =
        List.fold_left
          (fun acc a -> fold acc (numeric_atom name a))
          first rest
      in
      [ Item.Atom v ]

(* Combine two numeric atomics, producing a result of the widest of the
   two types (the promotion rule for arithmetic and aggregates). *)
let widest_type (a : Atomic.t) (b : Atomic.t) (r : float) : Atomic.t =
  match (a, b) with
  | Atomic.Double _, _ | _, Atomic.Double _ -> Atomic.Double r
  | Atomic.Float _, _ | _, Atomic.Float _ -> Atomic.Float r
  | _ -> Atomic.Decimal r

let add_atoms (a : Atomic.t) (b : Atomic.t) : Atomic.t =
  match (a, b) with
  | Atomic.Integer x, Atomic.Integer y -> Atomic.Integer (x + y)
  | _ ->
      widest_type a b
        (Option.get (Atomic.to_float a) +. Option.get (Atomic.to_float b))

let pick_atom keep_left (a : Atomic.t) (b : Atomic.t) : Atomic.t =
  let fa = Option.get (Atomic.to_float a) and fb = Option.get (Atomic.to_float b) in
  let winner = if keep_left fa fb then a else b in
  match (a, b) with
  | Atomic.Integer _, Atomic.Integer _ -> winner
  | _ -> widest_type a b (Option.get (Atomic.to_float winner))

(* Structural deep equality between two nodes (fn:deep-equal): same kind
   and name, equal attribute sets, pairwise deep-equal children. *)
let rec deep_node_equal (a : Node.t) (b : Node.t) : bool =
  Node.kind a = Node.kind b
  && Node.name a = Node.name b
  && (match (a.Node.desc, b.Node.desc) with
     | Node.Text s1, Node.Text s2 -> String.equal s1 s2
     | Node.Comment s1, Node.Comment s2 -> String.equal s1 s2
     | Node.Attribute a1, Node.Attribute a2 -> String.equal a1.avalue a2.avalue
     | Node.Pi p1, Node.Pi p2 -> String.equal p1.pdata p2.pdata
     | _ ->
         let attrs n =
           List.sort compare
             (List.filter_map
                (fun at ->
                  match at.Node.desc with
                  | Node.Attribute r -> Some (r.aname, r.avalue)
                  | _ -> None)
                (Node.attributes n))
         in
         attrs a = attrs b
         && List.length (Node.children a) = List.length (Node.children b)
         && List.for_all2 deep_node_equal (Node.children a) (Node.children b))

let deep_item_equal (i : Item.t) (j : Item.t) : bool =
  match (i, j) with
  | Item.Atom a, Item.Atom b -> (
      try
        Atomic.equal_same_type (Promotion.convert_operand a b)
          (Promotion.convert_operand b a)
      with Promotion.Type_mismatch _ | Atomic.Cast_error _ -> false)
  | Item.Node a, Item.Node b -> deep_node_equal a b
  | _ -> false

(* Nodes only, in document order; dynamic error on atomics. *)
let nodes_of name (s : xvalue) : Node.t list =
  List.map
    (function
      | Item.Node n -> n
      | Item.Atom _ -> err "%s: atomic value where a node is required" name)
    s

(* ------------------------------------------------------------------ *)
(* The function table                                                  *)
(* ------------------------------------------------------------------ *)

let general op _ctx args =
  let x, y = two_args "general comparison" args in
  boolean (Promotion.general_compare op x y)

let value_cmp op _ctx args =
  let x, y = two_args "value comparison" args in
  match Promotion.value_compare op x y with None -> [] | Some b -> boolean b

let node_pair name args =
  let x, y = two_args name args in
  match (x, y) with
  | [], _ | _, [] -> None
  | [ Item.Node a ], [ Item.Node b ] -> Some (a, b)
  | _ -> err "%s: operands must be single nodes" name

let table : (string * (Dynamic_ctx.t -> xvalue list -> xvalue)) list =
  [
    (* --- boolean --- *)
    ("fn:boolean", fun _ args -> boolean (Item.effective_boolean_value (one_arg "fn:boolean" args)));
    ("fn:not", fun _ args -> boolean (not (Item.effective_boolean_value (one_arg "fn:not" args))));
    ("fn:true", fun _ _ -> boolean true);
    ("fn:false", fun _ _ -> boolean false);
    (* --- sequences --- *)
    ("fn:count", fun _ args -> integer (List.length (one_arg "fn:count" args)));
    ("fn:empty", fun _ args -> boolean (one_arg "fn:empty" args = []));
    ("fn:exists", fun _ args -> boolean (one_arg "fn:exists" args <> []));
    ("fn:data", fun _ args -> List.map (fun a -> Item.Atom a) (Item.atomize (one_arg "fn:data" args)));
    ("fn:reverse", fun _ args -> List.rev (one_arg "fn:reverse" args));
    ( "fn:subsequence",
      fun _ args ->
        match args with
        | [ s; start ] ->
            let st = int_of_float (Option.value ~default:1.0 (Atomic.to_float (singleton_atom "fn:subsequence" start))) in
            List.filteri (fun i _ -> i + 1 >= st) s
        | [ s; start; len ] ->
            let f v = Option.value ~default:0.0 (Atomic.to_float (singleton_atom "fn:subsequence" v)) in
            let st = int_of_float (f start) and n = int_of_float (f len) in
            List.filteri (fun i _ -> i + 1 >= st && i + 1 < st + n) s
        | _ -> err "fn:subsequence expects 2 or 3 arguments" );
    ( "fn:insert-before",
      fun _ args ->
        match args with
        | [ s; pos; ins ] ->
            let p = max 1 (int_of_float (Option.value ~default:1.0 (Atomic.to_float (singleton_atom "fn:insert-before" pos)))) in
            let rec go i = function
              | [] -> ins
              | x :: rest when i < p -> x :: go (i + 1) rest
              | rest -> ins @ rest
            in
            go 1 s
        | _ -> err "fn:insert-before expects 3 arguments" );
    ( "fn:remove",
      fun _ args ->
        let s, pos = two_args "fn:remove" args in
        let p = int_of_float (Option.value ~default:0.0 (Atomic.to_float (singleton_atom "fn:remove" pos))) in
        List.filteri (fun i _ -> i + 1 <> p) s );
    ( "fn:exactly-one",
      fun _ args ->
        match one_arg "fn:exactly-one" args with
        | [ x ] -> [ x ]
        | _ -> err "fn:exactly-one: sequence is not a singleton" );
    ( "fn:zero-or-one",
      fun _ args ->
        match one_arg "fn:zero-or-one" args with
        | ([] | [ _ ]) as s -> s
        | _ -> err "fn:zero-or-one: more than one item" );
    ( "fn:one-or-more",
      fun _ args ->
        match one_arg "fn:one-or-more" args with
        | [] -> err "fn:one-or-more: empty sequence"
        | s -> s );
    ( "fn:distinct-values",
      fun _ args ->
        let seen = Hashtbl.create 16 in
        List.filter_map
          (fun a ->
            let k = distinct_key a in
            if Hashtbl.mem seen k then None
            else (
              Hashtbl.add seen k ();
              Some (Item.Atom a)))
          (Item.atomize (one_arg "fn:distinct-values" args)) );
    (* --- aggregates --- *)
    ( "fn:sum",
      fun _ args -> aggregate "fn:sum" (integer 0) add_atoms (one_arg "fn:sum" args) );
    ( "fn:avg",
      fun _ args ->
        match Item.atomize (one_arg "fn:avg" args) with
        | [] -> []
        | atoms ->
            let n = List.length atoms in
            let total =
              List.fold_left
                (fun acc a ->
                  match Atomic.to_float (numeric_atom "fn:avg" a) with
                  | Some f -> acc +. f
                  | None -> err "fn:avg: non-numeric value")
                0.0 atoms
            in
            double (total /. float_of_int n) );
    ( "fn:min",
      fun _ args ->
        aggregate "fn:min" [] (pick_atom (fun a b -> a <= b)) (one_arg "fn:min" args) );
    ( "fn:max",
      fun _ args ->
        aggregate "fn:max" [] (pick_atom (fun a b -> a >= b)) (one_arg "fn:max" args) );
    (* --- strings --- *)
    ( "fn:string",
      fun _ args ->
        match one_arg "fn:string" args with
        | [] -> string_v ""
        | [ it ] -> string_v (Item.string_value it)
        | _ -> err "fn:string: more than one item" );
    ( "fn:concat",
      fun _ args ->
        string_v (String.concat "" (List.map (string_of_arg "fn:concat") args)) );
    ( "fn:string-join",
      fun _ args ->
        let s, sep = two_args "fn:string-join" args in
        let sep = string_of_arg "fn:string-join" sep in
        string_v (String.concat sep (List.map Item.string_value s)) );
    ( "fn:string-length",
      fun _ args ->
        integer (String.length (string_of_arg "fn:string-length" (one_arg "fn:string-length" args))) );
    ( "fn:contains",
      fun _ args ->
        let x, y = two_args "fn:contains" args in
        let hay = string_of_arg "fn:contains" x and needle = string_of_arg "fn:contains" y in
        let n = String.length needle and h = String.length hay in
        let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
        boolean (n = 0 || scan 0) );
    ( "fn:starts-with",
      fun _ args ->
        let x, y = two_args "fn:starts-with" args in
        let hay = string_of_arg "fn:starts-with" x and p = string_of_arg "fn:starts-with" y in
        boolean (String.length p <= String.length hay && String.sub hay 0 (String.length p) = p) );
    ( "fn:ends-with",
      fun _ args ->
        let x, y = two_args "fn:ends-with" args in
        let hay = string_of_arg "fn:ends-with" x and p = string_of_arg "fn:ends-with" y in
        let lh = String.length hay and lp = String.length p in
        boolean (lp <= lh && String.sub hay (lh - lp) lp = p) );
    ( "fn:substring",
      fun _ args ->
        match args with
        | [ s; start ] | [ s; start; _ ] ->
            let str = string_of_arg "fn:substring" s in
            let sf = Option.value ~default:1.0 (Atomic.to_float (singleton_atom "fn:substring" start)) in
            let st = int_of_float (Float.round sf) in
            let len =
              match args with
              | [ _; _; l ] ->
                  int_of_float (Float.round (Option.value ~default:0.0 (Atomic.to_float (singleton_atom "fn:substring" l))))
              | _ -> String.length str
            in
            let from = max 0 (st - 1) in
            let until = min (String.length str) (st - 1 + len) in
            if until <= from then string_v ""
            else string_v (String.sub str from (until - from))
        | _ -> err "fn:substring expects 2 or 3 arguments" );
    ( "fn:upper-case",
      fun _ args ->
        string_v (String.uppercase_ascii (string_of_arg "fn:upper-case" (one_arg "fn:upper-case" args))) );
    ( "fn:lower-case",
      fun _ args ->
        string_v (String.lowercase_ascii (string_of_arg "fn:lower-case" (one_arg "fn:lower-case" args))) );
    ( "fn:normalize-space",
      fun _ args ->
        let s = string_of_arg "fn:normalize-space" (one_arg "fn:normalize-space" args) in
        let words =
          String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
        in
        string_v (String.concat " " (List.filter (fun w -> w <> "") words)) );
    ( "fn:translate",
      fun _ args ->
        match args with
        | [ s; from; to_ ] ->
            let s = string_of_arg "fn:translate" s
            and from = string_of_arg "fn:translate" from
            and to_ = string_of_arg "fn:translate" to_ in
            let buf = Buffer.create (String.length s) in
            String.iter
              (fun c ->
                match String.index_opt from c with
                | None -> Buffer.add_char buf c
                | Some i -> if i < String.length to_ then Buffer.add_char buf to_.[i])
              s;
            string_v (Buffer.contents buf)
        | _ -> err "fn:translate expects 3 arguments" );
    (* --- numbers --- *)
    ( "fn:number",
      fun _ args ->
        match Item.atomize (one_arg "fn:number" args) with
        | [ a ] -> (
            match Atomic.to_float a with
            | Some f -> double f
            | None -> double Float.nan)
        | _ -> double Float.nan );
    ( "fn:round",
      fun _ args ->
        match Item.atomize (one_arg "fn:round" args) with
        | [] -> []
        | [ Atomic.Integer i ] -> integer i
        | [ a ] -> (
            match Atomic.to_float (numeric_atom "fn:round" a) with
            | Some f -> double (Float.round f)
            | None -> err "fn:round: non-numeric")
        | _ -> err "fn:round: non-singleton" );
    ( "fn:floor",
      fun _ args ->
        match Item.atomize (one_arg "fn:floor" args) with
        | [] -> []
        | [ Atomic.Integer i ] -> integer i
        | [ a ] -> double (Float.floor (Option.get (Atomic.to_float (numeric_atom "fn:floor" a))))
        | _ -> err "fn:floor: non-singleton" );
    ( "fn:ceiling",
      fun _ args ->
        match Item.atomize (one_arg "fn:ceiling" args) with
        | [] -> []
        | [ Atomic.Integer i ] -> integer i
        | [ a ] -> double (Float.ceil (Option.get (Atomic.to_float (numeric_atom "fn:ceiling" a))))
        | _ -> err "fn:ceiling: non-singleton" );
    ( "fn:abs",
      fun _ args ->
        match Item.atomize (one_arg "fn:abs" args) with
        | [] -> []
        | [ Atomic.Integer i ] -> integer (abs i)
        | [ a ] -> double (Float.abs (Option.get (Atomic.to_float (numeric_atom "fn:abs" a))))
        | _ -> err "fn:abs: non-singleton" );
    (* --- nodes --- *)
    ( "fn:name",
      fun _ args ->
        match one_arg "fn:name" args with
        | [] -> string_v ""
        | [ Item.Node n ] -> string_v (Option.value ~default:"" (Node.name n))
        | _ -> err "fn:name: argument must be a single node" );
    ( "fn:local-name",
      fun _ args ->
        match one_arg "fn:local-name" args with
        | [] -> string_v ""
        | [ Item.Node n ] ->
            let full = Option.value ~default:"" (Node.name n) in
            let local =
              match String.rindex_opt full ':' with
              | Some i -> String.sub full (i + 1) (String.length full - i - 1)
              | None -> full
            in
            string_v local
        | _ -> err "fn:local-name: argument must be a single node" );
    ( "fn:root",
      fun _ args ->
        match one_arg "fn:root" args with
        | [] -> []
        | [ Item.Node n ] -> [ Item.Node (Node.root n) ]
        | _ -> err "fn:root: argument must be a single node" );
    ( "fn:doc",
      fun ctx args ->
        let uri = string_of_arg "fn:doc" (one_arg "fn:doc" args) in
        [ Item.Node (resolve_document ctx uri) ] );
    ( "fn:collection",
      fun ctx args ->
        let name = string_of_arg "fn:collection" (one_arg "fn:collection" args) in
        List.map (fun d -> Item.Node d) (resolve_collection ctx name) );
    (* --- comparisons introduced by normalization --- *)
    ("op:general-eq", general Promotion.Eq);
    ("op:general-ne", general Promotion.Ne);
    ("op:general-lt", general Promotion.Lt);
    ("op:general-le", general Promotion.Le);
    ("op:general-gt", general Promotion.Gt);
    ("op:general-ge", general Promotion.Ge);
    ("op:eq", value_cmp Promotion.Eq);
    ("op:ne", value_cmp Promotion.Ne);
    ("op:lt", value_cmp Promotion.Lt);
    ("op:le", value_cmp Promotion.Le);
    ("op:gt", value_cmp Promotion.Gt);
    ("op:ge", value_cmp Promotion.Ge);
    ( "op:is-same-node",
      fun _ args ->
        match node_pair "op:is-same-node" args with
        | None -> []
        | Some (a, b) -> boolean (a == b) );
    ( "op:node-before",
      fun _ args ->
        match node_pair "op:node-before" args with
        | None -> []
        | Some (a, b) -> boolean (Node.doc_order_compare a b < 0) );
    ( "op:node-after",
      fun _ args ->
        match node_pair "op:node-after" args with
        | None -> []
        | Some (a, b) -> boolean (Node.doc_order_compare a b > 0) );
    (* --- arithmetic --- *)
    ( "op:add",
      fun _ args ->
        let x, y = two_args "op:add" args in
        arith "op:add" (Some ( + )) ( +. ) x y );
    ( "op:subtract",
      fun _ args ->
        let x, y = two_args "op:subtract" args in
        arith "op:subtract" (Some ( - )) ( -. ) x y );
    ( "op:multiply",
      fun _ args ->
        let x, y = two_args "op:multiply" args in
        arith "op:multiply" (Some ( * )) ( *. ) x y );
    ( "op:divide",
      fun _ args ->
        let x, y = two_args "op:divide" args in
        arith "op:divide" None ( /. ) x y );
    ( "op:integer-divide",
      fun _ args ->
        let x, y = two_args "op:integer-divide" args in
        arith "op:integer-divide"
          (Some (fun a b -> if b = 0 then err "op:integer-divide: division by zero" else a / b))
          (fun a b -> Float.of_int (int_of_float (a /. b)))
          x y );
    ( "op:mod",
      fun _ args ->
        let x, y = two_args "op:mod" args in
        arith "op:mod"
          (Some (fun a b -> if b = 0 then err "op:mod: division by zero" else a mod b))
          Float.rem x y );
    ( "op:unary-minus",
      fun _ args ->
        match Item.atomize (one_arg "op:unary-minus" args) with
        | [] -> []
        | [ a ] -> (
            match numeric_atom "op:unary-minus" a with
            | Atomic.Integer i -> integer (-i)
            | Atomic.Decimal f -> [ Item.Atom (Atomic.Decimal (-.f)) ]
            | Atomic.Float f -> [ Item.Atom (Atomic.Float (-.f)) ]
            | Atomic.Double f -> double (-.f)
            | _ -> err "op:unary-minus: non-numeric")
        | _ -> err "op:unary-minus: non-singleton" );
    ( "op:to",
      fun _ args ->
        let x, y = two_args "op:to" args in
        match (Item.atomize x, Item.atomize y) with
        | [], _ | _, [] -> []
        | [ a ], [ b ] ->
            let ia =
              match Atomic.cast Atomic.T_integer a with
              | Atomic.Integer i -> i
              | _ -> err "op:to: non-integer bound"
            and ib =
              match Atomic.cast Atomic.T_integer b with
              | Atomic.Integer i -> i
              | _ -> err "op:to: non-integer bound"
            in
            List.init (max 0 (ib - ia + 1)) (fun k -> Item.Atom (Atomic.Integer (ia + k)))
        | _ -> err "op:to: non-singleton bounds" );
    ( "op:union",
      fun _ args ->
        let x, y = two_args "op:union" args in
        let nodes = nodes_of "op:union" x @ nodes_of "op:union" y in
        List.map (fun n -> Item.Node n) (Node.sort_doc_order nodes) );
    ( "op:intersect",
      fun _ args ->
        let x, y = two_args "op:intersect" args in
        let right = nodes_of "op:intersect" y in
        let in_right n = List.exists (fun m -> m == n) right in
        List.map
          (fun n -> Item.Node n)
          (Node.sort_doc_order (List.filter in_right (nodes_of "op:intersect" x))) );
    ( "op:except",
      fun _ args ->
        let x, y = two_args "op:except" args in
        let right = nodes_of "op:except" y in
        let in_right n = List.exists (fun m -> m == n) right in
        List.map
          (fun n -> Item.Node n)
          (Node.sort_doc_order
             (List.filter (fun n -> not (in_right n)) (nodes_of "op:except" x))) );
    (* --- formal-semantics helpers --- *)
    ( "fs:predicate-truth",
      fun _ args ->
        let v, pos = two_args "fs:predicate-truth" args in
        match v with
        | [ Item.Atom a ] when Atomic.is_numeric a ->
            let p =
              match Item.atomize pos with
              | [ Atomic.Integer i ] -> i
              | _ -> err "fs:predicate-truth: bad position"
            in
            boolean (Atomic.to_float a = Some (float_of_int p))
        | _ -> boolean (Item.effective_boolean_value v) );
    ( "fs:item-sequence-to-string",
      fun _ args ->
        let s = one_arg "fs:item-sequence-to-string" args in
        string_v (String.concat " " (List.map Item.string_value s)) );
    ( "fs:document",
      fun _ args ->
        (* the computed document constructor: copy the content into a
           fresh document node (atomics become text, as for elements) *)
        let items = one_arg "fs:document" args in
        let children =
          List.map
            (function
              | Item.Node n -> (
                  match Node.kind n with
                  | Node.Kattribute ->
                      err "fs:document: attribute node in document content"
                  | Node.Kdocument -> err "fs:document: nested document node"
                  | _ -> Node.copy n)
              | Item.Atom a -> Node.text (Atomic.to_string a))
            items
        in
        let d = Node.document children in
        Node.renumber d;
        [ Item.Node d ] );
    (* --- additional F&O functions --- *)
    ( "fn:deep-equal",
      fun _ args ->
        let x, y = two_args "fn:deep-equal" args in
        boolean (List.length x = List.length y && List.for_all2 deep_item_equal x y) );
    ( "clio:deep-distinct",
      (* Clio's helper (the paper's Figure 1 query): drop items that are
         deep-equal to an earlier item *)
      fun _ args ->
        let s = one_arg "clio:deep-distinct" args in
        List.rev
          (List.fold_left
             (fun kept it ->
               if List.exists (fun k -> deep_item_equal k it) kept then kept
               else it :: kept)
             [] s) );
    ( "fn:index-of",
      fun _ args ->
        let s, target = two_args "fn:index-of" args in
        let t = singleton_atom "fn:index-of" target in
        List.filteri (fun _ _ -> true) (Item.atomize s)
        |> List.mapi (fun i a -> (i + 1, a))
        |> List.filter_map (fun (i, a) ->
               let eq =
                 try
                   Atomic.equal_same_type (Promotion.convert_operand a t)
                     (Promotion.convert_operand t a)
                 with Promotion.Type_mismatch _ | Atomic.Cast_error _ -> false
               in
               if eq then Some (Item.Atom (Atomic.Integer i)) else None) );
    ( "fn:compare",
      fun _ args ->
        let x, y = two_args "fn:compare" args in
        match (x, y) with
        | [], _ | _, [] -> []
        | _ ->
            integer
              (compare
                 (String.compare (string_of_arg "fn:compare" x)
                    (string_of_arg "fn:compare" y))
                 0) );
    ( "fn:substring-before",
      fun _ args ->
        let x, y = two_args "fn:substring-before" args in
        let hay = string_of_arg "fn:substring-before" x
        and needle = string_of_arg "fn:substring-before" y in
        let n = String.length needle and h = String.length hay in
        let rec scan i =
          if i + n > h then None
          else if String.sub hay i n = needle then Some i
          else scan (i + 1)
        in
        if n = 0 then string_v ""
        else (
          match scan 0 with
          | Some i -> string_v (String.sub hay 0 i)
          | None -> string_v "") );
    ( "fn:substring-after",
      fun _ args ->
        let x, y = two_args "fn:substring-after" args in
        let hay = string_of_arg "fn:substring-after" x
        and needle = string_of_arg "fn:substring-after" y in
        let n = String.length needle and h = String.length hay in
        let rec scan i =
          if i + n > h then None
          else if String.sub hay i n = needle then Some (i + n)
          else scan (i + 1)
        in
        if n = 0 then string_v hay
        else (
          match scan 0 with
          | Some i -> string_v (String.sub hay i (h - i))
          | None -> string_v "") );
    ( "fn:matches",
      fun _ args ->
        let x, y = two_args "fn:matches" args in
        let s = string_of_arg "fn:matches" x in
        let re = Regex.compile (string_of_arg "fn:matches" y) in
        boolean (Regex.matches re s) );
    ( "fn:replace",
      fun _ args ->
        match args with
        | [ s; pat; rep ] ->
            let s = string_of_arg "fn:replace" s
            and pat = string_of_arg "fn:replace" pat
            and rep = string_of_arg "fn:replace" rep in
            string_v (Regex.replace (Regex.compile pat) ~by:rep s)
        | _ -> err "fn:replace expects 3 arguments" );
    ( "fn:tokenize",
      fun _ args ->
        let x, y = two_args "fn:tokenize" args in
        let s = string_of_arg "fn:tokenize" x in
        let re = Regex.compile (string_of_arg "fn:tokenize" y) in
        List.map (fun t -> Item.Atom (Atomic.String t)) (Regex.split re s) );
    ( "fn:string-to-codepoints",
      fun _ args ->
        let s = string_of_arg "fn:string-to-codepoints" (one_arg "fn:string-to-codepoints" args) in
        List.init (String.length s) (fun i -> Item.Atom (Atomic.Integer (Char.code s.[i]))) );
    ( "fn:codepoints-to-string",
      fun _ args ->
        let atoms = Item.atomize (one_arg "fn:codepoints-to-string" args) in
        let buf = Buffer.create (List.length atoms) in
        List.iter
          (fun a ->
            match a with
            | Atomic.Integer i when i >= 0 && i < 256 -> Buffer.add_char buf (Char.chr i)
            | _ -> err "fn:codepoints-to-string: code point out of range")
          atoms;
        string_v (Buffer.contents buf) );
  ]

let find : string -> (Dynamic_ctx.t -> xvalue list -> xvalue) option =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) table;
  fun name -> Hashtbl.find_opt tbl name

let names = List.map fst table
