(** XQuery-aware physical join algorithms — Section 6 of the paper.

    {b Hash join} (Figure 6): the inner input is materialized into a hash
    table keyed on every (value, type) pair each key value promotes to;
    entries record the original type, the tuple and its ordinal position.
    A probe match is accepted only when the pair of {e original} types
    prescribes the matched comparison type under fs:convert-operand
    (Table 2); matches are then sorted on the order field and
    de-duplicated, restoring the inner sequence order and honouring the
    existential semantics of general comparisons.

    {b Sort join}: for inequality predicates the inner keys are
    materialized into two sorted arrays (numeric and string orderings);
    each probe key scans the range(s) Table 2 makes comparable with its
    type.  This serves XMark Q11/Q12-style non-equi joins.

    Both algorithms turn incomparable/uncastable value pairs into
    non-matches (the paper's semantics) and exclude NaN keys. *)

open Xqc_xml
open Xqc_types

type tuple = Item.sequence array

type 'k entry = {
  e_key : 'k;
  e_orig_type : Atomic.type_name;
  e_order : int;  (** 1-based position in the inner input *)
  e_tuple : tuple;
}

(** {1 Hash equi-join} *)

type hash_index = {
  hi_buckets : (Atomic.t, unit entry list ref) Hashtbl.t;
  hi_size : int;
}

val is_nan_atom : Atomic.t -> bool

val build_hash_index :
  ?stats:Xqc_obs.Obs.join_stats -> tuple list -> (tuple -> Item.sequence) -> hash_index
(** [materialize] of Figure 6: index the inner input on the atomized key
    expression, one bucket entry per promotion target.  With [~stats],
    records one build and the build-side tuple count. *)

val probe_hash_index :
  ?stats:Xqc_obs.Obs.join_stats -> hash_index -> Atomic.t list -> tuple list
(** [allMatches] of Figure 6: every inner tuple equal to any probe key,
    in inner input order, without duplicates.  With [~stats], records one
    probe and the number of matches. *)

val probe_hash_index_orders :
  ?stats:Xqc_obs.Obs.join_stats -> hash_index -> Atomic.t list -> int list
(** The sorted distinct build positions ([e_order], 1-based) whose
    entries match any probe key — the build-side-flipped probe used when
    the planner builds the hash join on its left input.  The Table 2
    acceptance check is symmetric, so this matches exactly the pairs
    {!probe_hash_index} would.  With [~stats], records one probe and the
    number of matched positions. *)

(** {1 Sort join for inequalities} *)

type sort_index = {
  si_numeric : float entry array;  (** ascending by numeric key *)
  si_string : string entry array;  (** ascending by string key *)
}

val numeric_key : Atomic.t -> float option
val string_key : Atomic.t -> string option

val build_sort_index :
  ?stats:Xqc_obs.Obs.join_stats -> tuple list -> (tuple -> Item.sequence) -> sort_index
(** With [~stats], records one build, the build-side tuple count and the
    lengths of the two sorted key arrays. *)

val probe_sort_index :
  ?stats:Xqc_obs.Obs.join_stats ->
  Promotion.cmp_op -> sort_index -> Atomic.t list -> tuple list
(** All inner tuples with [probe_key op inner_key] for some pair of keys,
    in inner input order, without duplicates.  Only Lt/Le/Gt/Ge are
    meaningful; Eq/Ne raise [Invalid_argument]. *)

val lower_bound : 'k entry array -> ('k -> bool) -> int
val range_for : Promotion.cmp_op -> ('k -> 'k -> int) -> 'k -> 'k entry array -> int * int
