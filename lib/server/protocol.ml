(* Wire protocol: newline-delimited JSON, one request object per line,
   one response object per line.

   Request grammar (fields beyond these are ignored):

     {"op":"query",    "q":SOURCE, "id":ID?, "timeout_ms":N?}
     {"op":"prepare",  "name":NAME, "q":SOURCE, "id":ID?}
     {"op":"execute",  "name":NAME, "id":ID?, "timeout_ms":N?}
     {"op":"stats",    "id":ID?}
     {"op":"ping",     "id":ID?}
     {"op":"shutdown", "id":ID?}

   Responses echo the request's "id" (Null when absent) and carry
   "status":"ok" plus op-specific fields, or "status":"error" with a
   machine-readable "code" and a human "message".  Error codes:
   bad_request, unknown_statement, timeout, overloaded, query_error,
   shutting_down, internal. *)

module Obs = Xqc_obs.Obs

type request =
  | Query of { source : string; timeout_ms : int option }
  | Prepare of { name : string; source : string }
  | Execute of { name : string; timeout_ms : int option }
  | Stats
  | Ping
  | Shutdown

(* A decoded request line: the id is recovered even when the request
   itself is malformed, so the error response can still be correlated. *)
type envelope = { id : Obs.json; req : (request, string) result }

let field name = function
  | Obs.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name json =
  match field name json with
  | Some (Obs.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let timeout_field json =
  match field "timeout_ms" json with
  | Some (Obs.Int n) when n > 0 -> Ok (Some n)
  | Some (Obs.Int _) -> Error "field \"timeout_ms\" must be positive"
  | Some _ -> Error "field \"timeout_ms\" must be an integer"
  | None -> Ok None

let decode_request (line : string) : envelope =
  match Json_parse.parse line with
  | exception Json_parse.Parse_error m ->
      { id = Obs.Null; req = Error ("invalid JSON: " ^ m) }
  | Obs.Obj _ as json ->
      let id = Option.value (field "id" json) ~default:Obs.Null in
      let req =
        match str_field "op" json with
        | Error m -> Error m
        | Ok "query" ->
            Result.bind (str_field "q" json) (fun source ->
                Result.map
                  (fun timeout_ms -> Query { source; timeout_ms })
                  (timeout_field json))
        | Ok "prepare" ->
            Result.bind (str_field "name" json) (fun name ->
                Result.map
                  (fun source -> Prepare { name; source })
                  (str_field "q" json))
        | Ok "execute" ->
            Result.bind (str_field "name" json) (fun name ->
                Result.map
                  (fun timeout_ms -> Execute { name; timeout_ms })
                  (timeout_field json))
        | Ok "stats" -> Ok Stats
        | Ok "ping" -> Ok Ping
        | Ok "shutdown" -> Ok Shutdown
        | Ok other -> Error (Printf.sprintf "unknown op %S" other)
      in
      { id; req }
  | _ -> { id = Obs.Null; req = Error "request must be a JSON object" }

(* Client-side encoding of the same grammar. *)
let encode_request ?(id = Obs.Null) (req : request) : string =
  let base =
    match req with
    | Query { source; timeout_ms } ->
        ("query", [ ("q", Obs.Str source) ], timeout_ms)
    | Prepare { name; source } ->
        ("prepare", [ ("name", Obs.Str name); ("q", Obs.Str source) ], None)
    | Execute { name; timeout_ms } ->
        ("execute", [ ("name", Obs.Str name) ], timeout_ms)
    | Stats -> ("stats", [], None)
    | Ping -> ("ping", [], None)
    | Shutdown -> ("shutdown", [], None)
  in
  let op, fields, timeout_ms = base in
  let fields =
    match timeout_ms with
    | Some ms -> fields @ [ ("timeout_ms", Obs.Int ms) ]
    | None -> fields
  in
  let fields = if id = Obs.Null then fields else fields @ [ ("id", id) ] in
  Obs.json_to_string (Obs.Obj (("op", Obs.Str op) :: fields))

let response_ok ~(id : Obs.json) (fields : (string * Obs.json) list) : string =
  Obs.json_to_string
    (Obs.Obj (("id", id) :: ("status", Obs.Str "ok") :: fields))

let response_error ~(id : Obs.json) ~(code : string) (message : string) : string =
  Obs.json_to_string
    (Obs.Obj
       [
         ("id", id);
         ("status", Obs.Str "error");
         ("code", Obs.Str code);
         ("message", Obs.Str message);
       ])
