(* Wire protocol: newline-delimited JSON, one request object per line,
   one response object per line.

   Request grammar (fields beyond these are ignored):

     {"op":"query",    "q":SOURCE, "id":ID?, "timeout_ms":N?, "trace":BOOL?}
     {"op":"prepare",  "name":NAME, "q":SOURCE, "id":ID?}
     {"op":"execute",  "name":NAME, "id":ID?, "timeout_ms":N?, "trace":BOOL?}
     {"op":"update",   "doc":NAME, "q":SCRIPT, "id":ID?, "timeout_ms":N?, "trace":BOOL?}
     {"op":"stats",    "id":ID?}
     {"op":"metrics",  "id":ID?, "format":"json"|"prometheus"?}
     {"op":"trace",    "id":ID?, "trace_id":N?}
     {"op":"ping",     "id":ID?}
     {"op":"shutdown", "id":ID?}

   "trace":true forces the request to be traced regardless of the
   server's sampling rate, and embeds the span tree in the response
   (traced responses always carry "trace_id").  "op":"trace" with a
   trace_id fetches one stored trace; without, it lists recent trace
   summaries.  "op":"metrics" serves the full telemetry plane — JSON by
   default, Prometheus text exposition (as the "text" field) with
   "format":"prometheus".

   Responses echo the request's "id" (Null when absent) and carry
   "status":"ok" plus op-specific fields, or "status":"error" with a
   machine-readable "code" and a human "message".  Error codes:
   bad_request, unknown_statement, unknown_document, unknown_trace,
   timeout, overloaded, query_error, shutting_down, internal.

   "op":"update" runs an XQUF script against the preloaded document
   named "doc", under its MVCC write lock; ok responses carry "applied"
   (primitives applied), "version" (published version id) and
   "in_place" (whether the live head was patched vs a copy published
   for admitted readers). *)

module Obs = Xqc_obs.Obs

type metrics_format = Json_format | Prometheus_format

type request =
  | Query of { source : string; timeout_ms : int option; trace : bool }
  | Prepare of { name : string; source : string }
  | Execute of { name : string; timeout_ms : int option; trace : bool }
  | Update of { doc : string; source : string; timeout_ms : int option; trace : bool }
      (** run an XQUF script against the preloaded document [doc] *)
  | Stats
  | Metrics of metrics_format
  | Trace_get of int option
  | Ping
  | Shutdown

(* A decoded request line: the id is recovered even when the request
   itself is malformed, so the error response can still be correlated. *)
type envelope = { id : Obs.json; req : (request, string) result }

let field name = function
  | Obs.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name json =
  match field name json with
  | Some (Obs.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let timeout_field json =
  match field "timeout_ms" json with
  | Some (Obs.Int n) when n > 0 -> Ok (Some n)
  | Some (Obs.Int _) -> Error "field \"timeout_ms\" must be positive"
  | Some _ -> Error "field \"timeout_ms\" must be an integer"
  | None -> Ok None

let trace_field json =
  match field "trace" json with
  | Some (Obs.Bool b) -> Ok b
  | Some _ -> Error "field \"trace\" must be a boolean"
  | None -> Ok false

let format_field json =
  match field "format" json with
  | Some (Obs.Str ("json" | "")) | None -> Ok Json_format
  | Some (Obs.Str ("prometheus" | "prom" | "text")) -> Ok Prometheus_format
  | Some _ -> Error "field \"format\" must be \"json\" or \"prometheus\""

let trace_id_field json =
  match field "trace_id" json with
  | Some (Obs.Int n) -> Ok (Some n)
  | Some _ -> Error "field \"trace_id\" must be an integer"
  | None -> Ok None

let decode_request (line : string) : envelope =
  match Json_parse.parse line with
  | exception Json_parse.Parse_error m ->
      { id = Obs.Null; req = Error ("invalid JSON: " ^ m) }
  | Obs.Obj _ as json ->
      let id = Option.value (field "id" json) ~default:Obs.Null in
      let req =
        match str_field "op" json with
        | Error m -> Error m
        | Ok "query" ->
            Result.bind (str_field "q" json) (fun source ->
                Result.bind (timeout_field json) (fun timeout_ms ->
                    Result.map
                      (fun trace -> Query { source; timeout_ms; trace })
                      (trace_field json)))
        | Ok "prepare" ->
            Result.bind (str_field "name" json) (fun name ->
                Result.map
                  (fun source -> Prepare { name; source })
                  (str_field "q" json))
        | Ok "execute" ->
            Result.bind (str_field "name" json) (fun name ->
                Result.bind (timeout_field json) (fun timeout_ms ->
                    Result.map
                      (fun trace -> Execute { name; timeout_ms; trace })
                      (trace_field json)))
        | Ok "update" ->
            Result.bind (str_field "doc" json) (fun doc ->
                Result.bind (str_field "q" json) (fun source ->
                    Result.bind (timeout_field json) (fun timeout_ms ->
                        Result.map
                          (fun trace -> Update { doc; source; timeout_ms; trace })
                          (trace_field json))))
        | Ok "stats" -> Ok Stats
        | Ok "metrics" -> Result.map (fun f -> Metrics f) (format_field json)
        | Ok "trace" -> Result.map (fun n -> Trace_get n) (trace_id_field json)
        | Ok "ping" -> Ok Ping
        | Ok "shutdown" -> Ok Shutdown
        | Ok other -> Error (Printf.sprintf "unknown op %S" other)
      in
      { id; req }
  | _ -> { id = Obs.Null; req = Error "request must be a JSON object" }

(* Client-side encoding of the same grammar. *)
let encode_request ?(id = Obs.Null) (req : request) : string =
  let timeout fields = function
    | Some ms -> fields @ [ ("timeout_ms", Obs.Int ms) ]
    | None -> fields
  in
  let traced fields = function
    | true -> fields @ [ ("trace", Obs.Bool true) ]
    | false -> fields
  in
  let op, fields =
    match req with
    | Query { source; timeout_ms; trace } ->
        ("query", traced (timeout [ ("q", Obs.Str source) ] timeout_ms) trace)
    | Prepare { name; source } ->
        ("prepare", [ ("name", Obs.Str name); ("q", Obs.Str source) ])
    | Execute { name; timeout_ms; trace } ->
        ("execute", traced (timeout [ ("name", Obs.Str name) ] timeout_ms) trace)
    | Update { doc; source; timeout_ms; trace } ->
        ( "update",
          traced
            (timeout [ ("doc", Obs.Str doc); ("q", Obs.Str source) ] timeout_ms)
            trace )
    | Stats -> ("stats", [])
    | Metrics Json_format -> ("metrics", [ ("format", Obs.Str "json") ])
    | Metrics Prometheus_format ->
        ("metrics", [ ("format", Obs.Str "prometheus") ])
    | Trace_get (Some n) -> ("trace", [ ("trace_id", Obs.Int n) ])
    | Trace_get None -> ("trace", [])
    | Ping -> ("ping", [])
    | Shutdown -> ("shutdown", [])
  in
  let fields = if id = Obs.Null then fields else fields @ [ ("id", id) ] in
  Obs.json_to_string (Obs.Obj (("op", Obs.Str op) :: fields))

let response_ok ~(id : Obs.json) (fields : (string * Obs.json) list) : string =
  Obs.json_to_string
    (Obs.Obj (("id", id) :: ("status", Obs.Str "ok") :: fields))

(* [extra] lets a response carry op-specific fields alongside the error
   (e.g. the trace_id of a timed-out traced request). *)
let response_error ?(extra = []) ~(id : Obs.json) ~(code : string)
    (message : string) : string =
  Obs.json_to_string
    (Obs.Obj
       ([
          ("id", id);
          ("status", Obs.Str "error");
          ("code", Obs.Str code);
          ("message", Obs.Str message);
        ]
       @ extra))
