(* A small synchronous client for the query service: one connection, one
   request in flight at a time (the server itself multiplexes across
   connections, not within one).  Typed helpers cover every protocol op;
   [rpc] is the raw escape hatch. *)

module Obs = Xqc_obs.Obs

exception Client_error of string

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel; mutable next_id : int }

let make fd = { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; next_id = 1 }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     raise (Client_error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))));
  make fd

let connect_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
     Unix.connect fd (Unix.ADDR_INET (addr, port))
   with
  | Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      raise (Client_error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e)))
  | Not_found ->
      Unix.close fd;
      raise (Client_error (Printf.sprintf "unknown host %s" host)));
  make fd

let close t =
  close_out_noerr t.oc;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let field name = function
  | Obs.Obj fields -> List.assoc_opt name fields
  | _ -> None

(* Send one request line and read the matching response line. *)
let rpc (t : t) (req : Protocol.request) : Obs.json =
  let id = Obs.Int t.next_id in
  t.next_id <- t.next_id + 1;
  output_string t.oc (Protocol.encode_request ~id req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file -> raise (Client_error "server closed the connection")
  | line -> (
      match Json_parse.parse line with
      | json -> json
      | exception Json_parse.Parse_error m ->
          raise (Client_error ("malformed response: " ^ m)))

(* Ok payload or [Error (code, message)]. *)
let result_of (json : Obs.json) : (Obs.json, string * string) result =
  match field "status" json with
  | Some (Obs.Str "ok") -> Ok json
  | Some (Obs.Str "error") ->
      let str name =
        match field name json with Some (Obs.Str s) -> s | _ -> ""
      in
      Error (str "code", str "message")
  | _ -> raise (Client_error "response has no status field")

(* Full ok-response object — for callers that want trace_id / items /
   the embedded span tree alongside the result text. *)
let query_json ?timeout_ms ?(trace = false) t source :
    (Obs.json, string * string) result =
  result_of (rpc t (Protocol.Query { source; timeout_ms; trace }))

let query ?timeout_ms ?(trace = false) t source :
    (string, string * string) result =
  match query_json ?timeout_ms ~trace t source with
  | Error _ as e -> e
  | Ok json -> (
      match field "result" json with
      | Some (Obs.Str s) -> Ok s
      | _ -> raise (Client_error "ok response has no result field"))

let prepare t ~name source : (unit, string * string) result =
  Result.map (fun _ -> ()) (result_of (rpc t (Protocol.Prepare { name; source })))

let execute_json ?timeout_ms ?(trace = false) t name :
    (Obs.json, string * string) result =
  result_of (rpc t (Protocol.Execute { name; timeout_ms; trace }))

let execute ?timeout_ms ?(trace = false) t name :
    (string, string * string) result =
  match execute_json ?timeout_ms ~trace t name with
  | Error _ as e -> e
  | Ok json -> (
      match field "result" json with
      | Some (Obs.Str s) -> Ok s
      | _ -> raise (Client_error "ok response has no result field"))

(* Outcome of an applied update script, from the server's ok response. *)
type update_result = {
  ur_applied : int;  (** update primitives applied *)
  ur_version : int;  (** published document version id *)
  ur_in_place : bool;  (** live head patched (vs copy published) *)
}

let update_json ?timeout_ms ?(trace = false) t ~doc source :
    (Obs.json, string * string) result =
  result_of (rpc t (Protocol.Update { doc; source; timeout_ms; trace }))

let update ?timeout_ms ?(trace = false) t ~doc source :
    (update_result, string * string) result =
  match update_json ?timeout_ms ~trace t ~doc source with
  | Error _ as e -> e
  | Ok json ->
      let int name =
        match field name json with
        | Some (Obs.Int n) -> n
        | _ -> raise (Client_error ("ok response has no " ^ name ^ " field"))
      in
      let in_place =
        match field "in_place" json with Some (Obs.Bool b) -> b | _ -> false
      in
      Ok
        {
          ur_applied = int "applied";
          ur_version = int "version";
          ur_in_place = in_place;
        }

let stats t : Obs.json =
  match result_of (rpc t Protocol.Stats) with
  | Ok json -> Option.value (field "stats" json) ~default:Obs.Null
  | Error (code, m) -> raise (Client_error (Printf.sprintf "stats: %s: %s" code m))

(* Dig an [Int] counter out of a stats response, e.g.
   [stat_counter s "plan_cache_hits"]. *)
let stat_counter (stats : Obs.json) name : int option =
  match field "counters" stats with
  | Some counters -> (
      match field name counters with Some (Obs.Int n) -> Some n | _ -> None)
  | None -> None

let metrics t : Obs.json =
  match result_of (rpc t (Protocol.Metrics Protocol.Json_format)) with
  | Ok json -> Option.value (field "metrics" json) ~default:Obs.Null
  | Error (code, m) ->
      raise (Client_error (Printf.sprintf "metrics: %s: %s" code m))

let metrics_prometheus t : string =
  match result_of (rpc t (Protocol.Metrics Protocol.Prometheus_format)) with
  | Ok json -> (
      match field "text" json with
      | Some (Obs.Str s) -> s
      | _ -> raise (Client_error "metrics response has no text field"))
  | Error (code, m) ->
      raise (Client_error (Printf.sprintf "metrics: %s: %s" code m))

let fetch_trace t trace_id : (Obs.json, string * string) result =
  match result_of (rpc t (Protocol.Trace_get (Some trace_id))) with
  | Error _ as e -> e
  | Ok json -> (
      match field "trace" json with
      | Some tr -> Ok tr
      | None -> raise (Client_error "ok response has no trace field"))

let recent_traces t : Obs.json list =
  match result_of (rpc t (Protocol.Trace_get None)) with
  | Ok json -> (
      match field "traces" json with Some (Obs.Arr l) -> l | _ -> [])
  | Error (code, m) ->
      raise (Client_error (Printf.sprintf "trace: %s: %s" code m))

let ping t : bool =
  match result_of (rpc t Protocol.Ping) with Ok _ -> true | Error _ -> false

let shutdown t : unit =
  match result_of (rpc t Protocol.Shutdown) with
  | Ok _ -> ()
  | Error (code, m) -> raise (Client_error (Printf.sprintf "shutdown: %s: %s" code m))
