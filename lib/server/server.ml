(* The query service: a long-lived process that parses and indexes its
   documents once, then answers XQuery requests over newline-delimited
   JSON (see {!Protocol}) on a Unix-domain and/or TCP socket.

   Threading model — three kinds of execution context:

   - the *accept loop* (the calling thread) blocks in [select] with a
     short timeout so it can observe the [stopping] flag;
   - one *reader thread* ([Thread.create]) per connection parses request
     lines.  Cheap control requests (ping, stats, metrics, trace,
     shutdown) are answered inline; query work is pushed onto the
     bounded job queue.  A full queue is an immediate ["overloaded"]
     error — admission control, so latency stays bounded instead of the
     queue growing without limit;
   - [workers] *domains* ([Domain.spawn]) drain the queue in parallel.
     Each request evaluates against a fresh [Dynamic_ctx] that shares
     the read-only preloaded documents; everything mutable that crosses
     domains (plan cache, store index tables, obs counters, node-id
     allocation) is atomic or lock-guarded, and per-request compiler
     state (gensym, dead-null sets) is domain-local.

   Observability — three layers, all served by the metrics plane:

   - *traces*: every admitted request (subject to [trace_sample], or
     forced with "trace":true) gets a span tree — admission, queue
     wait, deadline arming, plan-cache lookup/compile, eval, serialize,
     reply write — stored in per-domain rings and fetchable by trace id
     through the "trace" verb;
   - *contention*: every shared lock is a [Obs.tmutex], so the lock
     table attributes wall time to waiting vs. holding per lock name; a
     sampler thread records a queue-depth/inflight gauge series, and
     each worker accounts its busy/idle split;
   - *slow queries*: requests over [slow_ms] land in a bounded
     worst-N ring with their span timeline and an EXPLAIN ANALYZE from
     a re-run (gated by [slow_analyze]).

   Deadlines are armed at admission, so time spent queued counts against
   the budget; the evaluator checks the deadline at operator-invocation
   boundaries and raises [Dynamic_ctx.Timeout], which maps to a
   structured ["timeout"] error without tearing down the worker.

   Shutdown ("op":"shutdown") is graceful: stop admitting, wait for the
   queue and in-flight work to drain, acknowledge, then close the
   listeners and join the workers. *)

module Obs = Xqc_obs.Obs
module Trace = Xqc_obs.Trace
module Slow_log = Xqc_obs.Slow_log

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind address and port *)
  workers : int;
  queue_depth : int;  (** admission-control bound on queued requests *)
  default_timeout_ms : int option;  (** per-request default deadline *)
  preload : (string * string) list;  (** [name, path] document preloads *)
  strategy : Xqc.strategy;
  fuse : bool;
      (** run lowerable pipelines through the fused execution tier
          (default); [false] pins [Codegen.mode] to [Off] at startup *)
  verbose : bool;
  trace_sample : float;
      (** fraction of admitted requests that get a span tree (1.0 =
          all); "trace":true on a request forces tracing regardless *)
  slow_ms : float;  (** slow-query threshold, milliseconds *)
  slow_capacity : int;  (** slow-query ring size (worst N kept) *)
  slow_analyze : bool;
      (** attach an EXPLAIN ANALYZE re-run to slow-ring entries *)
  gauge_interval_ms : int;  (** queue-depth/inflight sampling period *)
}

let default_config =
  {
    unix_socket = None;
    tcp = None;
    workers = 2;
    queue_depth = 64;
    default_timeout_ms = None;
    preload = [];
    strategy = Xqc.Optimized;
    fuse = true;
    verbose = false;
    trace_sample = 1.0;
    slow_ms = 100.0;
    slow_capacity = 16;
    slow_analyze = true;
    gauge_interval_ms = 100;
  }

(* ------------------------------------------------------------------ *)
(* Bounded job queue                                                   *)
(* ------------------------------------------------------------------ *)

(* The queue keeps a plain mutex ([Condition.wait] needs the raw lock);
   queue wait is measured per job across the hand-off instead, which is
   the quantity that matters — time blocked on the condition variable
   is idle capacity, not contention. *)
module Bqueue = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
    lock : Mutex.t;
    nonempty : Condition.t;
  }

  let create capacity =
    {
      items = Queue.create ();
      capacity;
      closed = false;
      lock = Mutex.create ();
      nonempty = Condition.create ();
    }

  (* Admission control: never blocks the producer. *)
  let try_push t x =
    Mutex.protect t.lock (fun () ->
        if t.closed then `Closed
        else if Queue.length t.items >= t.capacity then `Full
        else begin
          Queue.push x t.items;
          Condition.signal t.nonempty;
          `Ok
        end)

  (* Blocks until an item arrives; [None] once closed *and* drained, so
     closing lets consumers finish the backlog before exiting. *)
  let pop t =
    Mutex.lock t.lock;
    let rec loop () =
      if not (Queue.is_empty t.items) then begin
        let x = Queue.pop t.items in
        Mutex.unlock t.lock;
        Some x
      end
      else if t.closed then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.nonempty t.lock;
        loop ()
      end
    in
    loop ()

  let close t =
    Mutex.protect t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty)

  let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)
end

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

(* The reader thread and any worker domain may reply on the same
   connection concurrently, so writes go through [write_line] under the
   connection's lock (one flushed line per reply keeps the NDJSON
   framing intact).  Each connection has its own mutex but they all
   share the "conn_write" stats record, so reply-write contention shows
   up as one line in the lock table. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Obs.tmutex;
  peer : string;
}

let write_line conn line =
  (* frame the reply outside the lock so the critical section is one
     buffered write + flush, not string assembly *)
  let framed = line ^ "\n" in
  Obs.with_lock conn.wlock (fun () ->
      output_string conn.oc framed;
      flush conn.oc)

type job = {
  jb_conn : conn;
  jb_id : Obs.json;
  jb_req : Protocol.request;
  jb_deadline : float option;  (** armed at admission *)
  jb_trace : Trace.t option;  (** span tree, when sampled or forced *)
  jb_want_trace : bool;  (** embed the span tree in the response *)
  jb_enqueued : float;  (** [Obs.now] at queue push *)
}

(* Per-worker busy/idle accounting: each worker domain is the only
   writer of its slot; atomics make the cross-domain reads exact. *)
type worker_stat = {
  ws_busy_ns : int Atomic.t;
  ws_idle_ns : int Atomic.t;
  ws_jobs : int Atomic.t;
}

type gauge_sample = { gs_t : float; gs_queue : int; gs_inflight : int }

type t = {
  cfg : config;
  queue : job Bqueue.t;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;  (** admitted (queued or executing) requests *)
  statements : (string, string) Hashtbl.t;  (** prepared name -> source *)
  st_lock : Obs.tmutex;
  preloaded : (string * string) list;  (** name, path; trees live in {!Xqc.Version} *)
  started : float;
  latency : Obs.histogram;  (** request service time, milliseconds *)
  h_queue_wait : Obs.histogram;  (** admission -> dequeue, milliseconds *)
  h_eval : Obs.histogram;  (** plan execution, milliseconds *)
  h_serialize : Obs.histogram;  (** result serialization, milliseconds *)
  slow : Slow_log.t;
  worker_stats : worker_stat array;
  gauges : gauge_sample array;  (** ring of sampled gauge readings *)
  mutable g_pos : int;
  mutable g_filled : int;
  g_lock : Obs.tmutex;
  sample_seq : int Atomic.t;  (** trace-sampling decision counter *)
}

let c_requests = Obs.global_counter "server_requests"
let c_ok = Obs.global_counter "server_ok"
let c_errors = Obs.global_counter "server_errors"
let c_timeouts = Obs.global_counter "server_timeouts"
let c_overloaded = Obs.global_counter "server_overloaded"
let c_connections = Obs.global_counter "server_connections"
let c_traced = Obs.global_counter "server_traced"

let log t fmt =
  if t.cfg.verbose then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* Trace-sampling decision for requests that did not force tracing:
   deterministic every-Nth-request at rate 1/N, so a given rate yields a
   steady stream of traces rather than bursts. *)
let sampled t =
  let p = t.cfg.trace_sample in
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else
    let n = Atomic.fetch_and_add t.sample_seq 1 in
    let period = max 1 (int_of_float (Float.round (1.0 /. p))) in
    n mod period = 0

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Readers get snapshot isolation: each request pins every preload's
   head version when evaluation starts and reads exactly those trees
   for its whole lifetime, whatever writers publish meanwhile.  Each
   pinned document is visible to fn:doc under its preload name, its
   path and its basename, and bound to the variable $name. *)
let pin_preloads t : (string * string * Xqc.Version.version) list =
  List.filter_map
    (fun (name, path) ->
      Option.map (fun v -> (name, path, v)) (Xqc.Version.pin name))
    t.preloaded

let bind_preload ctx ~name ~path doc =
  Xqc.bind_document ctx name doc;
  Xqc.bind_document ctx path doc;
  Xqc.bind_document ctx (Filename.basename path) doc;
  Xqc.bind_variable ctx name [ Xqc.Item.Node doc ]

let ctx_of_pins pins =
  let ctx = Xqc.context () in
  List.iter
    (fun (name, path, v) -> bind_preload ctx ~name ~path v.Xqc.Version.v_root)
    pins;
  ctx

(* Run [f] over a context bound to pinned snapshots; the unpin in
   [finally] is what lets the version layer purge a retired snapshot
   once its last reader is done. *)
let with_snapshot t f =
  let pins = pin_preloads t in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (name, _, v) -> Xqc.Version.unpin name v) pins)
    (fun () -> f (ctx_of_pins pins))

let deadline_of t timeout_ms =
  match (timeout_ms, t.cfg.default_timeout_ms) with
  | Some ms, _ | None, Some ms -> Some (Obs.now () +. (float_of_int ms /. 1000.))
  | None, None -> None

(* Response fields tying a reply to its trace: traced responses always
   carry the trace id; "trace":true additionally embeds the span tree
   as recorded so far (the reply-write span only exists in the stored
   trace, fetched with the "trace" verb). *)
let trace_fields (tr : Trace.t option) ~(want_trace : bool) :
    (string * Obs.json) list =
  match tr with
  | None -> []
  | Some tr ->
      ("trace_id", Obs.Int (Trace.id tr))
      :: (if want_trace then [ ("trace", Trace.to_json tr) ] else [])

(* Evaluate [source] under [deadline]; ok responses carry the serialized
   result and the item count. *)
let eval_query t ~id ~tr ~want_trace ~source ~deadline : string =
  let extra = trace_fields tr ~want_trace in
  match
    let prepared = Xqc.prepare_cached ~strategy:t.cfg.strategy source in
    (* serialization happens under the same pins as evaluation: the
       result sequence references snapshot nodes *)
    with_snapshot t (fun ctx ->
        Xqc.Dynamic_ctx.set_trace ctx tr;
        Xqc.Dynamic_ctx.set_deadline ctx deadline;
        let te = Obs.now () in
        let items = Trace.in_span "eval" (fun () -> Xqc.run prepared ctx) in
        Obs.observe t.h_eval ((Obs.now () -. te) *. 1000.);
        let ts = Obs.now () in
        let text = Trace.in_span "serialize" (fun () -> Xqc.serialize items) in
        Obs.observe t.h_serialize ((Obs.now () -. ts) *. 1000.);
        (items, text))
  with
  | items, text ->
      Obs.incr_counter c_ok;
      Protocol.response_ok ~id
        ([ ("result", Obs.Str text); ("items", Obs.Int (List.length items)) ]
        @ trace_fields tr ~want_trace)
  | exception Xqc.Dynamic_ctx.Timeout ->
      Obs.incr_counter c_timeouts;
      Protocol.response_error ~extra ~id ~code:"timeout" "deadline exceeded"
  | exception Xqc.Error m ->
      Obs.incr_counter c_errors;
      Protocol.response_error ~extra ~id ~code:"query_error" m
  | exception Json_parse.Parse_error m | exception Failure m ->
      Obs.incr_counter c_errors;
      Protocol.response_error ~extra ~id ~code:"internal" m

(* Run an XQUF script against the preloaded document [doc], under its
   per-document MVCC write lock.  The script's queries evaluate against
   whichever tree the version layer chose (live head or fresh copy),
   bound exactly as a reader would see the document; the reply reports
   how many primitives applied and whether the live head was patched in
   place (vs a new version published for the admitted readers). *)
let exec_update t ~id ~tr ~want_trace ~doc ~source ~deadline : string =
  let extra = trace_fields tr ~want_trace in
  match List.find_opt (fun (n, _) -> String.equal n doc) t.preloaded with
  | None ->
      Obs.incr_counter c_errors;
      Protocol.response_error ~extra ~id ~code:"unknown_document"
        (Printf.sprintf "no preloaded document %S" doc)
  | Some (name, path) -> (
      let make_ctx root =
        let ctx = Xqc.context () in
        bind_preload ctx ~name ~path root;
        Xqc.Dynamic_ctx.set_trace ctx tr;
        Xqc.Dynamic_ctx.set_deadline ctx deadline;
        ctx
      in
      match
        let te = Obs.now () in
        let r =
          Trace.in_span "update" (fun () ->
              Xqc.Update.execute ~strategy:t.cfg.strategy ~uri:name ~make_ctx
                source)
        in
        Obs.observe t.h_eval ((Obs.now () -. te) *. 1000.);
        r
      with
      | r ->
          Obs.incr_counter c_ok;
          Protocol.response_ok ~id
            ([
               ("applied", Obs.Int r.Xqc.Update.u_applied);
               ("version", Obs.Int r.Xqc.Update.u_version);
               ("in_place", Obs.Bool r.Xqc.Update.u_in_place);
             ]
            @ trace_fields tr ~want_trace)
      | exception Xqc.Dynamic_ctx.Timeout ->
          Obs.incr_counter c_timeouts;
          Protocol.response_error ~extra ~id ~code:"timeout" "deadline exceeded"
      | exception Xqc.Error m ->
          Obs.incr_counter c_errors;
          Protocol.response_error ~extra ~id ~code:"query_error" m
      | exception Json_parse.Parse_error m | exception Failure m ->
          Obs.incr_counter c_errors;
          Protocol.response_error ~extra ~id ~code:"internal" m)

(* Offer a finished request to the slow-query ring; when it is admitted
   (and analysis is on), re-run it once with a stats collector to attach
   EXPLAIN ANALYZE.  The re-run happens on the worker that already blew
   the threshold — bounded by being over-threshold-only, and fenced with
   its own deadline so a pathological query cannot wedge the worker. *)
let note_slow t (job : job) ~op ~source ~outcome ~ms =
  if ms >= Slow_log.threshold_ms t.slow then begin
    let src = Option.value source ~default:"" in
    let entry =
      Slow_log.entry ~outcome
        ~trace_id:(match job.jb_trace with Some tr -> Trace.id tr | None -> 0)
        ~spans:
          (match job.jb_trace with
          | Some tr -> Trace.spans_to_json tr
          | None -> Obs.Arr [])
        ~op ~source:src ~ms ~at:(Obs.now ()) ()
    in
    if
      Slow_log.note t.slow entry
      && t.cfg.slow_analyze && source <> None
      && (String.equal op "query" || String.equal op "execute")
    then
      try
        let p = Xqc.prepare ~strategy:t.cfg.strategy ~stats:true src in
        with_snapshot t (fun ctx ->
            Xqc.Dynamic_ctx.set_deadline ctx
              (Some (Obs.now () +. Float.max (2.0 *. ms /. 1000.) 1.0));
            ignore (Xqc.run p ctx);
            ignore (Xqc.serialize (Xqc.run p ctx)));
        Slow_log.set_explain t.slow entry (Xqc.explain_analyze p)
      with e ->
        Slow_log.set_explain t.slow entry
          ("analyze failed: " ^ Printexc.to_string e)
  end

let handle_job t (job : job) : unit =
  let dequeued = Obs.now () in
  Obs.observe t.h_queue_wait ((dequeued -. job.jb_enqueued) *. 1000.);
  (match job.jb_trace with
  | Some tr -> Trace.add_span tr ~t0:job.jb_enqueued ~t1:dequeued "queue-wait"
  | None -> ());
  Trace.with_current job.jb_trace @@ fun () ->
  let tr = job.jb_trace and want_trace = job.jb_want_trace in
  let op, source, reply =
    match job.jb_req with
    | Protocol.Query { source; _ } ->
        ( "query",
          Some source,
          eval_query t ~id:job.jb_id ~tr ~want_trace ~source
            ~deadline:job.jb_deadline )
    | Protocol.Prepare { name; source } -> (
        (* Compile eagerly so syntax errors surface at prepare time; the
           compiled plan lands in the shared LRU plan cache and the
           name -> source binding makes execute re-resolve through it
           (each reuse is a recorded plan-cache hit). *)
        ( "prepare",
          Some source,
          match Xqc.prepare_cached ~strategy:t.cfg.strategy source with
          | (_ : Xqc.prepared) ->
              Obs.with_lock t.st_lock (fun () ->
                  Hashtbl.replace t.statements name source);
              Obs.incr_counter c_ok;
              Protocol.response_ok ~id:job.jb_id
                (("name", Obs.Str name) :: trace_fields tr ~want_trace)
          | exception Xqc.Error m ->
              Obs.incr_counter c_errors;
              Protocol.response_error
                ~extra:(trace_fields tr ~want_trace)
                ~id:job.jb_id ~code:"query_error" m ))
    | Protocol.Execute { name; _ } -> (
        match
          Obs.with_lock t.st_lock (fun () -> Hashtbl.find_opt t.statements name)
        with
        | Some source ->
            ( "execute",
              Some source,
              eval_query t ~id:job.jb_id ~tr ~want_trace ~source
                ~deadline:job.jb_deadline )
        | None ->
            Obs.incr_counter c_errors;
            ( "execute",
              None,
              Protocol.response_error
                ~extra:(trace_fields tr ~want_trace)
                ~id:job.jb_id ~code:"unknown_statement"
                (Printf.sprintf "no prepared statement %S" name) ))
    | Protocol.Update { doc; source; _ } ->
        ( "update",
          Some source,
          exec_update t ~id:job.jb_id ~tr ~want_trace ~doc ~source
            ~deadline:job.jb_deadline )
    | Protocol.Stats | Protocol.Metrics _ | Protocol.Trace_get _
    | Protocol.Ping | Protocol.Shutdown ->
        (* handled inline by the reader; never queued *)
        assert false
  in
  let ms = (Obs.now () -. dequeued) *. 1000. in
  Obs.observe t.latency ms;
  let outcome =
    match Json_parse.parse reply with
    | Obs.Obj fields -> (
        match (List.assoc_opt "status" fields, List.assoc_opt "code" fields) with
        | _, Some (Obs.Str code) -> code
        | Some (Obs.Str s), _ -> s
        | _ -> "ok")
    | _ | (exception Json_parse.Parse_error _) -> "ok"
  in
  (try
     match tr with
     | Some tr -> Trace.span tr "reply-write" (fun () -> write_line job.jb_conn reply)
     | None -> write_line job.jb_conn reply
   with Sys_error _ | Unix.Unix_error _ ->
     log t "reply to %s lost (connection closed)" job.jb_conn.peer);
  let total_ms =
    match tr with Some tr -> Trace.finish tr ~outcome | None -> ms
  in
  note_slow t job ~op ~source ~outcome ~ms:total_ms;
  log t "%s %s %.2fms" job.jb_conn.peer op ms

let ns_of (secs : float) : int = int_of_float (secs *. 1e9)

let worker_loop t (i : int) () =
  let ws = t.worker_stats.(i) in
  let rec loop () =
    let t0 = Obs.now () in
    match Bqueue.pop t.queue with
    | None -> ignore (Atomic.fetch_and_add ws.ws_idle_ns (ns_of (Obs.now () -. t0)))
    | Some job ->
        let t1 = Obs.now () in
        ignore (Atomic.fetch_and_add ws.ws_idle_ns (ns_of (t1 -. t0)));
        (try handle_job t job
         with e ->
           Obs.incr_counter c_errors;
           (try
              write_line job.jb_conn
                (Protocol.response_error ~id:job.jb_id ~code:"internal"
                   (Printexc.to_string e))
            with _ -> ()));
        ignore (Atomic.fetch_and_add ws.ws_busy_ns (ns_of (Obs.now () -. t1)));
        Atomic.incr ws.ws_jobs;
        ignore (Atomic.fetch_and_add t.inflight (-1));
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Gauge sampler                                                       *)
(* ------------------------------------------------------------------ *)

let record_gauge t =
  let s =
    {
      gs_t = Obs.now ();
      gs_queue = Bqueue.length t.queue;
      gs_inflight = Atomic.get t.inflight;
    }
  in
  Obs.with_lock t.g_lock (fun () ->
      t.gauges.(t.g_pos) <- s;
      t.g_pos <- (t.g_pos + 1) mod Array.length t.gauges;
      if t.g_filled < Array.length t.gauges then t.g_filled <- t.g_filled + 1)

let sampler_loop t () =
  let interval = float_of_int (max 10 t.cfg.gauge_interval_ms) /. 1000. in
  while not (Atomic.get t.stopping) do
    record_gauge t;
    Thread.delay interval
  done

let gauge_samples t : gauge_sample list =
  Obs.with_lock t.g_lock (fun () ->
      let n = Array.length t.gauges in
      let k = t.g_filled in
      List.init k (fun i -> t.gauges.((t.g_pos - k + i + (2 * n)) mod n)))

(* ------------------------------------------------------------------ *)
(* Server statistics and the metrics plane                             *)
(* ------------------------------------------------------------------ *)

let stats_json t : Obs.json =
  let store = Xqc.Store.stats () in
  Obs.Obj
    [
      ("uptime_s", Obs.Float (Obs.now () -. t.started));
      ("workers", Obs.Int t.cfg.workers);
      ("queue_depth", Obs.Int (Bqueue.length t.queue));
      ("queue_capacity", Obs.Int t.cfg.queue_depth);
      ("inflight", Obs.Int (Atomic.get t.inflight));
      ("admission_rejected", Obs.Int (Obs.counter_value c_overloaded));
      ( "prepared_statements",
        Obs.Int (Obs.with_lock t.st_lock (fun () -> Hashtbl.length t.statements)) );
      ("plan_cache_size", Obs.Int (Xqc.plan_cache_size ()));
      ( "store",
        Obs.Obj
          [
            ("roots", Obs.Int store.Xqc.Store.st_roots);
            ("nodes", Obs.Int store.Xqc.Store.st_nodes);
          ] );
      ("latency_ms", Obs.histogram_to_json t.latency);
      ("traces", Obs.Int (Trace.stored_count ()));
      ("snapshot_versions_live", Obs.Int (Xqc.Version.live_versions ()));
      ( "counters",
        Obs.Obj (List.map (fun (n, v) -> (n, Obs.Int v)) (Obs.global_counters ())) );
    ]

let worker_json t : Obs.json =
  Obs.Arr
    (List.mapi
       (fun i ws ->
         let busy = float_of_int (Atomic.get ws.ws_busy_ns) /. 1e9 in
         let idle = float_of_int (Atomic.get ws.ws_idle_ns) /. 1e9 in
         let util = if busy +. idle > 0.0 then busy /. (busy +. idle) else 0.0 in
         Obs.Obj
           [
             ("worker", Obs.Int i);
             ("busy_s", Obs.Float busy);
             ("idle_s", Obs.Float idle);
             ("jobs", Obs.Int (Atomic.get ws.ws_jobs));
             ("utilization", Obs.Float util);
           ])
       (Array.to_list t.worker_stats))

let metrics_json t : Obs.json =
  Obs.Obj
    [
      ("uptime_s", Obs.Float (Obs.now () -. t.started));
      ("workers", Obs.Int t.cfg.workers);
      ("queue_depth", Obs.Int (Bqueue.length t.queue));
      ("queue_capacity", Obs.Int t.cfg.queue_depth);
      ("inflight", Obs.Int (Atomic.get t.inflight));
      ("admission_rejected", Obs.Int (Obs.counter_value c_overloaded));
      ("trace_sample", Obs.Float t.cfg.trace_sample);
      ("traces_stored", Obs.Int (Trace.stored_count ()));
      ("latency_ms", Obs.histogram_to_json t.latency);
      ("queue_wait_ms", Obs.histogram_to_json t.h_queue_wait);
      ("eval_ms", Obs.histogram_to_json t.h_eval);
      ("serialize_ms", Obs.histogram_to_json t.h_serialize);
      ( "locks",
        Obs.Arr (List.map Obs.lock_summary_to_json (Obs.lock_summaries ())) );
      ("workers_detail", worker_json t);
      ( "gauge_samples",
        Obs.Arr
          (List.map
             (fun g ->
               Obs.Obj
                 [
                   ("t_s", Obs.Float (g.gs_t -. t.started));
                   ("queue", Obs.Int g.gs_queue);
                   ("inflight", Obs.Int g.gs_inflight);
                 ])
             (gauge_samples t)) );
      ("slow_queries", Slow_log.to_json t.slow);
      ("snapshot_versions_live", Obs.Int (Xqc.Version.live_versions ()));
      ( "counters",
        Obs.Obj (List.map (fun (n, v) -> (n, Obs.Int v)) (Obs.global_counters ())) );
    ]

let prometheus_text t : string =
  let counter_fams =
    List.map
      (fun (name, v) ->
        Obs.Prom_counter
          ( "xqc_" ^ name ^ "_total",
            "Cumulative " ^ name ^ " count.",
            [ ([], float_of_int v) ] ))
      (Obs.global_counters ())
  in
  let locks = Obs.lock_summaries () in
  let lsam f = List.map (fun lk -> ([ ("lock", lk.Obs.lk_name) ], f lk)) locks in
  let lock_fams =
    [
      Obs.Prom_counter
        ( "xqc_lock_acquisitions_total",
          "Acquisitions per instrumented lock.",
          lsam (fun lk -> float_of_int lk.Obs.lk_acquires) );
      Obs.Prom_counter
        ( "xqc_lock_contended_total",
          "Acquisitions that had to block, per instrumented lock.",
          lsam (fun lk -> float_of_int lk.Obs.lk_contended) );
      Obs.Prom_counter
        ( "xqc_lock_wait_seconds_total",
          "Time spent blocked waiting, per instrumented lock.",
          lsam (fun lk -> lk.Obs.lk_wait_ms /. 1000.) );
      Obs.Prom_counter
        ( "xqc_lock_hold_seconds_total",
          "Time the lock was held, per instrumented lock.",
          lsam (fun lk -> lk.Obs.lk_hold_ms /. 1000.) );
    ]
  in
  let wsam f =
    List.mapi
      (fun i ws -> ([ ("worker", string_of_int i) ], f ws))
      (Array.to_list t.worker_stats)
  in
  let worker_fams =
    [
      Obs.Prom_counter
        ( "xqc_worker_busy_seconds_total",
          "Time each worker domain spent serving requests.",
          wsam (fun ws -> float_of_int (Atomic.get ws.ws_busy_ns) /. 1e9) );
      Obs.Prom_counter
        ( "xqc_worker_idle_seconds_total",
          "Time each worker domain spent waiting for work.",
          wsam (fun ws -> float_of_int (Atomic.get ws.ws_idle_ns) /. 1e9) );
      Obs.Prom_counter
        ( "xqc_worker_jobs_total",
          "Requests served per worker domain.",
          wsam (fun ws -> float_of_int (Atomic.get ws.ws_jobs)) );
    ]
  in
  let gauge_fams =
    [
      Obs.Prom_gauge
        ( "xqc_uptime_seconds",
          "Seconds since the server started.",
          [ ([], Obs.now () -. t.started) ] );
      Obs.Prom_gauge
        ( "xqc_queue_depth",
          "Requests currently queued.",
          [ ([], float_of_int (Bqueue.length t.queue)) ] );
      Obs.Prom_gauge
        ( "xqc_queue_capacity",
          "Admission-control bound on queued requests.",
          [ ([], float_of_int t.cfg.queue_depth) ] );
      Obs.Prom_gauge
        ( "xqc_inflight",
          "Admitted (queued or executing) requests.",
          [ ([], float_of_int (Atomic.get t.inflight)) ] );
      Obs.Prom_gauge
        ( "xqc_workers",
          "Worker domains.",
          [ ([], float_of_int t.cfg.workers) ] );
      Obs.Prom_gauge
        ( "xqc_trace_sampling",
          "Fraction of requests being traced.",
          [ ([], t.cfg.trace_sample) ] );
      Obs.Prom_gauge
        ( "xqc_slow_queries",
          "Entries currently in the slow-query ring.",
          [ ([], float_of_int (List.length (Slow_log.entries t.slow))) ] );
      Obs.Prom_gauge
        ( "xqc_snapshot_versions_live",
          "Reachable document versions: heads plus retired-but-pinned snapshots.",
          [ ([], float_of_int (Xqc.Version.live_versions ())) ] );
    ]
  in
  let summary_fams =
    [
      Obs.histogram_prom_summary t.latency
        ~name:"xqc_request_duration_milliseconds"
        ~help:"Request service time (dequeue to reply), milliseconds.";
      Obs.histogram_prom_summary t.h_queue_wait
        ~name:"xqc_queue_wait_milliseconds"
        ~help:"Time between admission and dequeue, milliseconds.";
      Obs.histogram_prom_summary t.h_eval ~name:"xqc_eval_milliseconds"
        ~help:"Plan execution time, milliseconds.";
      Obs.histogram_prom_summary t.h_serialize
        ~name:"xqc_serialize_milliseconds"
        ~help:"Result serialization time, milliseconds.";
    ]
  in
  Obs.prometheus_to_string
    (counter_fams @ lock_fams @ worker_fams @ gauge_fams @ summary_fams)

(* ------------------------------------------------------------------ *)
(* Connection readers                                                  *)
(* ------------------------------------------------------------------ *)

(* Graceful shutdown, triggered by the first "shutdown" request: stop
   admissions, wait for admitted work to drain, acknowledge, then close
   the queue so the workers exit once idle.  The accept loop notices
   [stopping] within its select timeout and stops accepting. *)
let initiate_shutdown t conn id =
  if Atomic.compare_and_set t.stopping false true then begin
    log t "shutdown requested by %s; draining %d in-flight" conn.peer
      (Atomic.get t.inflight);
    while Atomic.get t.inflight > 0 do
      Thread.delay 0.005
    done;
    (try write_line conn (Protocol.response_ok ~id [ ("bye", Obs.Bool true) ])
     with Sys_error _ | Unix.Unix_error _ -> ());
    Bqueue.close t.queue
  end
  else
    (* already stopping: acknowledge without re-draining *)
    try write_line conn (Protocol.response_ok ~id [ ("bye", Obs.Bool true) ])
    with Sys_error _ | Unix.Unix_error _ -> ()

let handle_line t conn line =
  let t0 = Obs.now () in
  let { Protocol.id; req } = Protocol.decode_request line in
  Obs.incr_counter c_requests;
  match req with
  | Error m ->
      Obs.incr_counter c_errors;
      write_line conn (Protocol.response_error ~id ~code:"bad_request" m)
  | Ok Protocol.Ping ->
      write_line conn (Protocol.response_ok ~id [ ("pong", Obs.Bool true) ])
  | Ok Protocol.Stats ->
      write_line conn (Protocol.response_ok ~id [ ("stats", stats_json t) ])
  | Ok (Protocol.Metrics Protocol.Json_format) ->
      write_line conn (Protocol.response_ok ~id [ ("metrics", metrics_json t) ])
  | Ok (Protocol.Metrics Protocol.Prometheus_format) ->
      write_line conn
        (Protocol.response_ok ~id [ ("text", Obs.Str (prometheus_text t)) ])
  | Ok (Protocol.Trace_get (Some tid)) -> (
      match Trace.find tid with
      | Some tr ->
          write_line conn
            (Protocol.response_ok ~id [ ("trace", Trace.to_json tr) ])
      | None ->
          Obs.incr_counter c_errors;
          write_line conn
            (Protocol.response_error ~id ~code:"unknown_trace"
               (Printf.sprintf "no stored trace %d" tid)))
  | Ok (Protocol.Trace_get None) ->
      write_line conn
        (Protocol.response_ok ~id
           [
             ( "traces",
               Obs.Arr (List.map Trace.summary_to_json (Trace.recent 20)) );
           ])
  | Ok Protocol.Shutdown -> initiate_shutdown t conn id
  | Ok req ->
      if Atomic.get t.stopping then begin
        Obs.incr_counter c_errors;
        write_line conn
          (Protocol.response_error ~id ~code:"shutting_down"
             "server is shutting down")
      end
      else begin
        let timeout_ms, want_trace, op, source =
          match req with
          | Protocol.Query { timeout_ms; trace; source } ->
              (timeout_ms, trace, "query", Some source)
          | Protocol.Execute { timeout_ms; trace; name } ->
              (timeout_ms, trace, "execute", Some name)
          | Protocol.Update { timeout_ms; trace; source; _ } ->
              (timeout_ms, trace, "update", Some source)
          | Protocol.Prepare { name; _ } -> (None, false, "prepare", Some name)
          | _ -> (None, false, "request", None)
        in
        (* The trace opens at [t0] so decode + admission are on it; a
           rejected request's trace is simply dropped (never stored). *)
        let tr =
          if want_trace || sampled t then begin
            let tr = Trace.start ~epoch:t0 ~op () in
            (match source with
            | Some s -> Trace.set_source tr s
            | None -> ());
            Trace.add_span tr ~t0 ~t1:(Obs.now ()) "admission";
            Obs.incr_counter c_traced;
            Some tr
          end
          else None
        in
        let job =
          {
            jb_conn = conn;
            jb_id = id;
            jb_req = req;
            jb_deadline = deadline_of t timeout_ms;
            jb_trace = tr;
            jb_want_trace = want_trace;
            jb_enqueued = Obs.now ();
          }
        in
        ignore (Atomic.fetch_and_add t.inflight 1);
        match Bqueue.try_push t.queue job with
        | `Ok -> ()
        | `Full ->
            ignore (Atomic.fetch_and_add t.inflight (-1));
            Obs.incr_counter c_overloaded;
            write_line conn
              (Protocol.response_error ~id ~code:"overloaded"
                 (Printf.sprintf "queue full (%d requests pending)"
                    t.cfg.queue_depth))
        | `Closed ->
            ignore (Atomic.fetch_and_add t.inflight (-1));
            Obs.incr_counter c_errors;
            write_line conn
              (Protocol.response_error ~id ~code:"shutting_down"
                 "server is shutting down")
      end

let reader_thread t conn () =
  Obs.incr_counter c_connections;
  log t "%s connected" conn.peer;
  let rec loop () =
    match input_line conn.ic with
    | "" -> loop ()
    | line ->
        (try handle_line t conn line
         with Sys_error _ | Unix.Unix_error _ -> raise End_of_file);
        loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  log t "%s disconnected" conn.peer;
  (try close_in_noerr conn.ic with _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listeners and the accept loop                                       *)
(* ------------------------------------------------------------------ *)

let make_unix_listener path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let make_tcp_listener host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let peer_name = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Parse, register and interval-index every preload once, before
   accepting.  Registration makes each document updatable through the
   MVCC layer (and gap-renumbers it — which is why it must precede the
   index build: the structural indexes key on node ids); readers then
   pin per-request snapshots instead of sharing a mutable tree. *)
let load_preloads cfg =
  List.map
    (fun (name, path) ->
      let doc = Xqc.parse_document ~uri:path (read_file path) in
      Xqc.Version.register name doc;
      ignore (Xqc.Store.index_nodes doc);
      if cfg.verbose then
        Printf.eprintf "preloaded %s from %s (%d bytes)\n%!" name path
          (in_channel_length (open_in_bin path));
      (name, path))
    cfg.preload

(* Run the server until a shutdown request.  [ready] fires after the
   listeners are bound (tests use it to avoid connect races). *)
let serve ?(ready = fun () -> ()) (cfg : config) : unit =
  if cfg.unix_socket = None && cfg.tcp = None then
    invalid_arg "Server.serve: no listener (need a unix socket path or a TCP address)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if not cfg.fuse then Xqc.Codegen.mode := Xqc.Codegen.Off;
  let nworkers = max 1 cfg.workers in
  (* the worker domains draw from the same machine budget as intra-query
     partition tasks: declare them so each query's partition degree is
     the per-worker share (budget/workers), not an oversubscription *)
  Xqc.Domain_pool.set_reserved_workers nworkers;
  let t =
    {
      cfg;
      queue = Bqueue.create (max 1 cfg.queue_depth);
      stopping = Atomic.make false;
      inflight = Atomic.make 0;
      statements = Hashtbl.create 16;
      st_lock = Obs.tmutex "server_statements";
      preloaded = load_preloads cfg;
      started = Obs.now ();
      latency = Obs.histogram "server_request_ms";
      h_queue_wait = Obs.histogram "server_queue_wait_ms";
      h_eval = Obs.histogram "server_eval_ms";
      h_serialize = Obs.histogram "server_serialize_ms";
      slow =
        Slow_log.create ~capacity:(max 1 cfg.slow_capacity)
          ~threshold_ms:cfg.slow_ms ();
      worker_stats =
        Array.init nworkers (fun _ ->
            {
              ws_busy_ns = Atomic.make 0;
              ws_idle_ns = Atomic.make 0;
              ws_jobs = Atomic.make 0;
            });
      gauges = Array.make 600 { gs_t = 0.0; gs_queue = 0; gs_inflight = 0 };
      g_pos = 0;
      g_filled = 0;
      g_lock = Obs.tmutex "gauge_ring";
      sample_seq = Atomic.make 0;
    }
  in
  let listeners =
    (match cfg.unix_socket with Some p -> [ make_unix_listener p ] | None -> [])
    @ match cfg.tcp with Some (h, p) -> [ make_tcp_listener h p ] | None -> []
  in
  let workers = List.init nworkers (fun i -> Domain.spawn (worker_loop t i)) in
  let sampler = Thread.create (sampler_loop t) () in
  log t "serving with %d workers (queue depth %d)" nworkers cfg.queue_depth;
  ready ();
  (* Accept until the stopping flag is raised; the select timeout bounds
     how long raising it can go unnoticed. *)
  while not (Atomic.get t.stopping) do
    match Unix.select listeners [] [] 0.2 with
    | readable, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept lfd with
            | fd, addr ->
                let conn =
                  {
                    fd;
                    ic = Unix.in_channel_of_descr fd;
                    oc = Unix.out_channel_of_descr fd;
                    wlock = Obs.tmutex "conn_write";
                    peer = peer_name addr;
                  }
                in
                ignore (Thread.create (reader_thread t conn) ())
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (* The shutdown initiator closes the queue once drained; joining here
     guarantees every worker observed that before we return. *)
  List.iter Domain.join workers;
  Thread.join sampler;
  Xqc.Domain_pool.set_reserved_workers 1;
  (match cfg.unix_socket with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  log t "server stopped"
