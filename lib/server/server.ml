(* The query service: a long-lived process that parses and indexes its
   documents once, then answers XQuery requests over newline-delimited
   JSON (see {!Protocol}) on a Unix-domain and/or TCP socket.

   Threading model — three kinds of execution context:

   - the *accept loop* (the calling thread) blocks in [select] with a
     short timeout so it can observe the [stopping] flag;
   - one *reader thread* ([Thread.create]) per connection parses request
     lines.  Cheap control requests (ping, stats, shutdown) are answered
     inline; query work is pushed onto the bounded job queue.  A full
     queue is an immediate ["overloaded"] error — admission control, so
     latency stays bounded instead of the queue growing without limit;
   - [workers] *domains* ([Domain.spawn]) drain the queue in parallel.
     Each request evaluates against a fresh [Dynamic_ctx] that shares
     the read-only preloaded documents; everything mutable that crosses
     domains (plan cache, store index tables, obs counters, node-id
     allocation) is atomic or lock-guarded, and per-request compiler
     state (gensym, dead-null sets) is domain-local.

   Deadlines are armed at admission, so time spent queued counts against
   the budget; the evaluator checks the deadline at operator-invocation
   boundaries and raises [Dynamic_ctx.Timeout], which maps to a
   structured ["timeout"] error without tearing down the worker.

   Shutdown ("op":"shutdown") is graceful: stop admitting, wait for the
   queue and in-flight work to drain, acknowledge, then close the
   listeners and join the workers. *)

module Obs = Xqc_obs.Obs

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind address and port *)
  workers : int;
  queue_depth : int;  (** admission-control bound on queued requests *)
  default_timeout_ms : int option;  (** per-request default deadline *)
  preload : (string * string) list;  (** [name, path] document preloads *)
  strategy : Xqc.strategy;
  verbose : bool;
}

let default_config =
  {
    unix_socket = None;
    tcp = None;
    workers = 2;
    queue_depth = 64;
    default_timeout_ms = None;
    preload = [];
    strategy = Xqc.Optimized;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Bounded job queue                                                   *)
(* ------------------------------------------------------------------ *)

module Bqueue = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
    lock : Mutex.t;
    nonempty : Condition.t;
  }

  let create capacity =
    {
      items = Queue.create ();
      capacity;
      closed = false;
      lock = Mutex.create ();
      nonempty = Condition.create ();
    }

  (* Admission control: never blocks the producer. *)
  let try_push t x =
    Mutex.protect t.lock (fun () ->
        if t.closed then `Closed
        else if Queue.length t.items >= t.capacity then `Full
        else begin
          Queue.push x t.items;
          Condition.signal t.nonempty;
          `Ok
        end)

  (* Blocks until an item arrives; [None] once closed *and* drained, so
     closing lets consumers finish the backlog before exiting. *)
  let pop t =
    Mutex.lock t.lock;
    let rec loop () =
      if not (Queue.is_empty t.items) then begin
        let x = Queue.pop t.items in
        Mutex.unlock t.lock;
        Some x
      end
      else if t.closed then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.nonempty t.lock;
        loop ()
      end
    in
    loop ()

  let close t =
    Mutex.protect t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty)

  let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)
end

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

(* The reader thread and any worker domain may reply on the same
   connection concurrently, so writes go through [write_line] under the
   connection's lock (one flushed line per reply keeps the NDJSON
   framing intact). *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  peer : string;
}

let write_line conn line =
  Mutex.protect conn.wlock (fun () ->
      output_string conn.oc line;
      output_char conn.oc '\n';
      flush conn.oc)

type job = {
  jb_conn : conn;
  jb_id : Obs.json;
  jb_req : Protocol.request;
  jb_deadline : float option;  (** armed at admission *)
}

type t = {
  cfg : config;
  queue : job Bqueue.t;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;  (** admitted (queued or executing) requests *)
  statements : (string, string) Hashtbl.t;  (** prepared name -> source *)
  st_lock : Mutex.t;
  preloaded : (string * string * Xqc.Node.t) list;  (** name, path, doc *)
  started : float;
  latency : Obs.histogram;  (** request service time, milliseconds *)
  sink : Obs.sink;  (** per-request spans *)
  sink_lock : Mutex.t;
}

let c_requests = Obs.global_counter "server_requests"
let c_ok = Obs.global_counter "server_ok"
let c_errors = Obs.global_counter "server_errors"
let c_timeouts = Obs.global_counter "server_timeouts"
let c_overloaded = Obs.global_counter "server_overloaded"
let c_connections = Obs.global_counter "server_connections"

let log t fmt =
  if t.cfg.verbose then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* Record a per-request span; the sink is reset past 4096 events so a
   long-lived server does not accumulate them without bound. *)
let record_span t ~op ~outcome ~ms =
  Mutex.protect t.sink_lock (fun () ->
      if List.length t.sink.Obs.sk_events >= 4096 then t.sink.Obs.sk_events <- [];
      Obs.emit t.sink
        ~attrs:[ ("op", op); ("outcome", outcome) ]
        ~dur:(ms /. 1000.) "request")

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Every request gets a fresh dynamic context over the shared read-only
   preloads: each document is visible to fn:doc under its preload name,
   its path and its basename, and bound to the variable $name. *)
let fresh_ctx t =
  let ctx = Xqc.context () in
  List.iter
    (fun (name, path, doc) ->
      Xqc.bind_document ctx name doc;
      Xqc.bind_document ctx path doc;
      Xqc.bind_document ctx (Filename.basename path) doc;
      Xqc.bind_variable ctx name [ Xqc.Item.Node doc ])
    t.preloaded;
  ctx

let deadline_of t timeout_ms =
  match (timeout_ms, t.cfg.default_timeout_ms) with
  | Some ms, _ | None, Some ms -> Some (Obs.now () +. (float_of_int ms /. 1000.))
  | None, None -> None

(* Evaluate [source] under [deadline]; ok responses carry the serialized
   result and the item count. *)
let eval_query t ~id ~source ~deadline : string =
  match
    let prepared = Xqc.prepare_cached ~strategy:t.cfg.strategy source in
    let ctx = fresh_ctx t in
    Xqc.Dynamic_ctx.set_deadline ctx deadline;
    let items = Xqc.run prepared ctx in
    (items, Xqc.serialize items)
  with
  | items, text ->
      Obs.incr_counter c_ok;
      Protocol.response_ok ~id
        [ ("result", Obs.Str text); ("items", Obs.Int (List.length items)) ]
  | exception Xqc.Dynamic_ctx.Timeout ->
      Obs.incr_counter c_timeouts;
      Protocol.response_error ~id ~code:"timeout" "deadline exceeded"
  | exception Xqc.Error m ->
      Obs.incr_counter c_errors;
      Protocol.response_error ~id ~code:"query_error" m
  | exception Json_parse.Parse_error m | exception Failure m ->
      Obs.incr_counter c_errors;
      Protocol.response_error ~id ~code:"internal" m

let handle_job t (job : job) : unit =
  let started = Obs.now () in
  let op, reply =
    match job.jb_req with
    | Protocol.Query { source; _ } ->
        ("query", eval_query t ~id:job.jb_id ~source ~deadline:job.jb_deadline)
    | Protocol.Prepare { name; source } -> (
        (* Compile eagerly so syntax errors surface at prepare time; the
           compiled plan lands in the shared LRU plan cache and the
           name -> source binding makes execute re-resolve through it
           (each reuse is a recorded plan-cache hit). *)
        ( "prepare",
          match Xqc.prepare_cached ~strategy:t.cfg.strategy source with
        | (_ : Xqc.prepared) ->
            Mutex.protect t.st_lock (fun () ->
                Hashtbl.replace t.statements name source);
            Obs.incr_counter c_ok;
            Protocol.response_ok ~id:job.jb_id [ ("name", Obs.Str name) ]
        | exception Xqc.Error m ->
            Obs.incr_counter c_errors;
            Protocol.response_error ~id:job.jb_id ~code:"query_error" m ))
    | Protocol.Execute { name; _ } -> (
        ( "execute",
          match
            Mutex.protect t.st_lock (fun () -> Hashtbl.find_opt t.statements name)
          with
        | Some source ->
            eval_query t ~id:job.jb_id ~source ~deadline:job.jb_deadline
        | None ->
            Obs.incr_counter c_errors;
            Protocol.response_error ~id:job.jb_id ~code:"unknown_statement"
              (Printf.sprintf "no prepared statement %S" name) ))
    | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
        (* handled inline by the reader; never queued *)
        assert false
  in
  let ms = (Obs.now () -. started) *. 1000. in
  Obs.observe t.latency ms;
  let outcome =
    match Json_parse.parse reply with
    | Obs.Obj fields -> (
        match (List.assoc_opt "status" fields, List.assoc_opt "code" fields) with
        | _, Some (Obs.Str code) -> code
        | Some (Obs.Str s), _ -> s
        | _ -> "ok")
    | _ | (exception Json_parse.Parse_error _) -> "ok"
  in
  record_span t ~op ~outcome ~ms;
  (try write_line job.jb_conn reply
   with Sys_error _ | Unix.Unix_error _ -> log t "reply to %s lost (connection closed)" job.jb_conn.peer);
  log t "%s %s %.2fms" job.jb_conn.peer op ms

let worker_loop t () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some job ->
        (try handle_job t job
         with e ->
           Obs.incr_counter c_errors;
           (try
              write_line job.jb_conn
                (Protocol.response_error ~id:job.jb_id ~code:"internal"
                   (Printexc.to_string e))
            with _ -> ()));
        ignore (Atomic.fetch_and_add t.inflight (-1));
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Server statistics                                                   *)
(* ------------------------------------------------------------------ *)

let stats_json t : Obs.json =
  let store = Xqc.Store.stats () in
  Obs.Obj
    [
      ("uptime_s", Obs.Float (Obs.now () -. t.started));
      ("workers", Obs.Int t.cfg.workers);
      ("queue_depth", Obs.Int (Bqueue.length t.queue));
      ("queue_capacity", Obs.Int t.cfg.queue_depth);
      ("inflight", Obs.Int (Atomic.get t.inflight));
      ( "prepared_statements",
        Obs.Int (Mutex.protect t.st_lock (fun () -> Hashtbl.length t.statements)) );
      ("plan_cache_size", Obs.Int (Xqc.plan_cache_size ()));
      ( "store",
        Obs.Obj
          [
            ("roots", Obs.Int store.Xqc.Store.st_roots);
            ("nodes", Obs.Int store.Xqc.Store.st_nodes);
          ] );
      ("latency_ms", Obs.histogram_to_json t.latency);
      ( "spans",
        Obs.Int (Mutex.protect t.sink_lock (fun () -> List.length (Obs.events t.sink))) );
      ( "counters",
        Obs.Obj (List.map (fun (n, v) -> (n, Obs.Int v)) (Obs.global_counters ())) );
    ]

(* ------------------------------------------------------------------ *)
(* Connection readers                                                  *)
(* ------------------------------------------------------------------ *)

(* Graceful shutdown, triggered by the first "shutdown" request: stop
   admissions, wait for admitted work to drain, acknowledge, then close
   the queue so the workers exit once idle.  The accept loop notices
   [stopping] within its select timeout and stops accepting. *)
let initiate_shutdown t conn id =
  if Atomic.compare_and_set t.stopping false true then begin
    log t "shutdown requested by %s; draining %d in-flight" conn.peer
      (Atomic.get t.inflight);
    while Atomic.get t.inflight > 0 do
      Thread.delay 0.005
    done;
    (try write_line conn (Protocol.response_ok ~id [ ("bye", Obs.Bool true) ])
     with Sys_error _ | Unix.Unix_error _ -> ());
    Bqueue.close t.queue
  end
  else
    (* already stopping: acknowledge without re-draining *)
    try write_line conn (Protocol.response_ok ~id [ ("bye", Obs.Bool true) ])
    with Sys_error _ | Unix.Unix_error _ -> ()

let handle_line t conn line =
  let { Protocol.id; req } = Protocol.decode_request line in
  Obs.incr_counter c_requests;
  match req with
  | Error m ->
      Obs.incr_counter c_errors;
      write_line conn (Protocol.response_error ~id ~code:"bad_request" m)
  | Ok Protocol.Ping ->
      write_line conn (Protocol.response_ok ~id [ ("pong", Obs.Bool true) ])
  | Ok Protocol.Stats ->
      write_line conn (Protocol.response_ok ~id [ ("stats", stats_json t) ])
  | Ok Protocol.Shutdown -> initiate_shutdown t conn id
  | Ok req ->
      if Atomic.get t.stopping then begin
        Obs.incr_counter c_errors;
        write_line conn
          (Protocol.response_error ~id ~code:"shutting_down"
             "server is shutting down")
      end
      else begin
        let timeout_ms =
          match req with
          | Protocol.Query { timeout_ms; _ } | Protocol.Execute { timeout_ms; _ } ->
              timeout_ms
          | _ -> None
        in
        let job =
          {
            jb_conn = conn;
            jb_id = id;
            jb_req = req;
            jb_deadline = deadline_of t timeout_ms;
          }
        in
        ignore (Atomic.fetch_and_add t.inflight 1);
        match Bqueue.try_push t.queue job with
        | `Ok -> ()
        | `Full ->
            ignore (Atomic.fetch_and_add t.inflight (-1));
            Obs.incr_counter c_overloaded;
            write_line conn
              (Protocol.response_error ~id ~code:"overloaded"
                 (Printf.sprintf "queue full (%d requests pending)"
                    t.cfg.queue_depth))
        | `Closed ->
            ignore (Atomic.fetch_and_add t.inflight (-1));
            Obs.incr_counter c_errors;
            write_line conn
              (Protocol.response_error ~id ~code:"shutting_down"
                 "server is shutting down")
      end

let reader_thread t conn () =
  Obs.incr_counter c_connections;
  log t "%s connected" conn.peer;
  let rec loop () =
    match input_line conn.ic with
    | "" -> loop ()
    | line ->
        (try handle_line t conn line
         with Sys_error _ | Unix.Unix_error _ -> raise End_of_file);
        loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  log t "%s disconnected" conn.peer;
  (try close_in_noerr conn.ic with _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listeners and the accept loop                                       *)
(* ------------------------------------------------------------------ *)

let make_unix_listener path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let make_tcp_listener host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let peer_name = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Parse and interval-index every preload once, before accepting: the
   documents (and their name indexes) are shared read-only by all
   workers for the server's lifetime. *)
let load_preloads cfg =
  List.map
    (fun (name, path) ->
      let doc = Xqc.parse_document ~uri:path (read_file path) in
      ignore (Xqc.Store.index_nodes doc);
      if cfg.verbose then
        Printf.eprintf "preloaded %s from %s (%d bytes)\n%!" name path
          (in_channel_length (open_in_bin path));
      (name, path, doc))
    cfg.preload

(* Run the server until a shutdown request.  [ready] fires after the
   listeners are bound (tests use it to avoid connect races). *)
let serve ?(ready = fun () -> ()) (cfg : config) : unit =
  if cfg.unix_socket = None && cfg.tcp = None then
    invalid_arg "Server.serve: no listener (need a unix socket path or a TCP address)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    {
      cfg;
      queue = Bqueue.create (max 1 cfg.queue_depth);
      stopping = Atomic.make false;
      inflight = Atomic.make 0;
      statements = Hashtbl.create 16;
      st_lock = Mutex.create ();
      preloaded = load_preloads cfg;
      started = Obs.now ();
      latency = Obs.histogram "server_request_ms";
      sink = Obs.sink ();
      sink_lock = Mutex.create ();
    }
  in
  let listeners =
    (match cfg.unix_socket with Some p -> [ make_unix_listener p ] | None -> [])
    @ match cfg.tcp with Some (h, p) -> [ make_tcp_listener h p ] | None -> []
  in
  let workers =
    List.init (max 1 cfg.workers) (fun _ -> Domain.spawn (worker_loop t))
  in
  log t "serving with %d workers (queue depth %d)" (max 1 cfg.workers)
    cfg.queue_depth;
  ready ();
  (* Accept until the stopping flag is raised; the select timeout bounds
     how long raising it can go unnoticed. *)
  while not (Atomic.get t.stopping) do
    match Unix.select listeners [] [] 0.2 with
    | readable, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept lfd with
            | fd, addr ->
                let conn =
                  {
                    fd;
                    ic = Unix.in_channel_of_descr fd;
                    oc = Unix.out_channel_of_descr fd;
                    wlock = Mutex.create ();
                    peer = peer_name addr;
                  }
                in
                ignore (Thread.create (reader_thread t conn) ())
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (* The shutdown initiator closes the queue once drained; joining here
     guarantees every worker observed that before we return. *)
  List.iter Domain.join workers;
  (match cfg.unix_socket with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  log t "server stopped"
