(* Minimal JSON reader for the wire protocol.

   The engine already has a JSON *emitter* ([Obs.json] /
   [Obs.json_to_string]); the server only needs the inverse for the
   one-line requests clients send, so this is a small recursive-descent
   parser over the same [Obs.json] type rather than a dependency.
   Numbers without a fraction or exponent that fit in an OCaml [int]
   parse as [Int]; everything else numeric becomes [Float].  Input must
   be a single JSON value — trailing non-whitespace is an error. *)

module Obs = Xqc_obs.Obs

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail "expected %C at offset %d, found %C" c st.pos d
  | None -> fail "expected %C at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at offset %d" st.pos

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.src then fail "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "invalid hex digit %C in \\u escape" c
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then fail "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.src then fail "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let u = hex4 st in
            (* surrogate pair: a high surrogate must be followed by
               [\uDC00-\uDFFF]; anything else renders as U+FFFD *)
            if u >= 0xD800 && u <= 0xDBFF then
              if
                st.pos + 1 < String.length st.src
                && st.src.[st.pos] = '\\'
                && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                else add_utf8 buf 0xFFFD
              end
              else add_utf8 buf 0xFFFD
            else if u >= 0xDC00 && u <= 0xDFFF then add_utf8 buf 0xFFFD
            else add_utf8 buf u
        | _ -> fail "invalid escape \\%C" e);
        loop ())
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let n0 = st.pos in
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = n0 then fail "invalid number at offset %d" start
  in
  digits ();
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1;
      (match peek st with Some ('+' | '-') -> st.pos <- st.pos + 1 | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Obs.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Obs.Int i
    | None -> Obs.Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Obs.Str (parse_string st)
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obs.Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obs.Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Obs.Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        Obs.Arr (elems [])
      end
  | Some 't' -> literal st "true" (Obs.Bool true)
  | Some 'f' -> literal st "false" (Obs.Bool false)
  | Some 'n' -> literal st "null" Obs.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected character %C at offset %d" c st.pos

let parse (s : string) : Obs.json =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v
