(* Pending update lists (XQUF snapshot semantics).

   An update script is evaluated *fully* against one snapshot of the
   data before anything mutates: every statement contributes primitives
   to a pending list, the merged list is checked for conflicts, and only
   then is it applied — in the order prescribed by the XQuery Update
   Facility, so the outcome is independent of statement order within the
   script.  Targets are physical nodes of the snapshot (resolved during
   evaluation), which is what makes "delete the node my sibling was
   renamed by" well-defined: both statements saw the same tree. *)

open Xqc_xml
module Obs = Xqc_obs.Obs

exception Update_error = Mutate.Update_error

let c_applied = Obs.global_counter "updates_applied"
let c_conflicts = Obs.global_counter "update_conflicts"

type primitive =
  | Insert_into of Node.t * Node.t list
  | Insert_first of Node.t * Node.t list
  | Insert_last of Node.t * Node.t list
  | Insert_before of Node.t * Node.t list
  | Insert_after of Node.t * Node.t list
  | Insert_attributes of Node.t * Node.t list
  | Delete of Node.t
  | Replace_node of Node.t * Node.t list
  | Replace_value of Node.t * string
  | Rename of Node.t * string

let target = function
  | Insert_into (t, _)
  | Insert_first (t, _)
  | Insert_last (t, _)
  | Insert_before (t, _)
  | Insert_after (t, _)
  | Insert_attributes (t, _)
  | Delete t
  | Replace_node (t, _)
  | Replace_value (t, _)
  | Rename (t, _) ->
      t

(* XQUF compatibility: at most one replace node, one replace value and
   one rename may address the same target in one pending list.  Targets
   belong to one snapshot, so their preorder ids identify them. *)
let check_conflicts (prims : primitive list) : unit =
  let class_of tag pick =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun pr ->
        match pick pr with
        | None -> ()
        | Some (t : Node.t) ->
            if Hashtbl.mem seen t.Node.nid then begin
              Obs.incr_counter c_conflicts;
              raise
                (Update_error
                   (Printf.sprintf "two %s updates target the same node" tag))
            end;
            Hashtbl.add seen t.Node.nid ())
      prims
  in
  class_of "replace node" (function Replace_node (t, _) -> Some t | _ -> None);
  class_of "replace value" (function Replace_value (t, _) -> Some t | _ -> None);
  class_of "rename" (function Rename (t, _) -> Some t | _ -> None)

(* Apply the checked list against the document rooted at [root] in XQUF
   order — inserts-into / attribute inserts / non-element value
   replaces / renames, then the positional inserts, then node replaces,
   then element-content replaces, then deletes — and return how many
   primitives were applied. *)
let apply (root : Node.t) (prims : primitive list) : int =
  check_conflicts prims;
  let applied = ref 0 in
  let step f =
    List.iter
      (fun pr ->
        if f pr then begin
          incr applied;
          Obs.incr_counter c_applied
        end)
      prims
  in
  let is_element (n : Node.t) =
    match n.Node.desc with Node.Element _ -> true | _ -> false
  in
  step (function
    | Insert_into (t, ns) | Insert_last (t, ns) ->
        Mutate.insert root (Mutate.P_last t) ns;
        true
    | Insert_attributes (t, ns) ->
        Mutate.insert root (Mutate.P_attr t) ns;
        true
    | Replace_value (t, s) when not (is_element t) ->
        Mutate.replace_value root t s;
        true
    | Rename (t, name) ->
        Mutate.rename root t name;
        true
    | _ -> false);
  step (function
    | Insert_first (t, ns) ->
        Mutate.insert root (Mutate.P_first t) ns;
        true
    | Insert_before (t, ns) ->
        Mutate.insert root (Mutate.P_before t) ns;
        true
    | Insert_after (t, ns) ->
        Mutate.insert root (Mutate.P_after t) ns;
        true
    | _ -> false);
  step (function
    | Replace_node (t, ns) ->
        Mutate.replace_node root t ns;
        true
    | _ -> false);
  step (function
    | Replace_value (t, s) when is_element t ->
        Mutate.replace_value root t s;
        true
    | _ -> false);
  step (function
    | Delete t ->
        Mutate.delete root t;
        true
    | _ -> false);
  !applied
