(** Pending update lists: XQUF snapshot semantics.

    A script's statements are evaluated fully against one snapshot, the
    resulting primitives merged, conflict-checked, and applied in the
    XQUF-prescribed order — so the outcome does not depend on statement
    order.  Applied primitives are counted in the [updates_applied]
    global counter, rejected lists in [update_conflicts]. *)

open Xqc_xml

exception Update_error of string
(** Alias of [Mutate.Update_error]. *)

type primitive =
  | Insert_into of Node.t * Node.t list
  | Insert_first of Node.t * Node.t list
  | Insert_last of Node.t * Node.t list
  | Insert_before of Node.t * Node.t list
  | Insert_after of Node.t * Node.t list
  | Insert_attributes of Node.t * Node.t list
  | Delete of Node.t
  | Replace_node of Node.t * Node.t list
  | Replace_value of Node.t * string
  | Rename of Node.t * string

val target : primitive -> Node.t

val check_conflicts : primitive list -> unit
(** @raise Update_error when two replace-node, two replace-value or two
    rename primitives address the same target. *)

val apply : Node.t -> primitive list -> int
(** Conflict-check then apply against the document rooted at the first
    argument, in XQUF order; returns the number of applied primitives.
    Caller holds exclusive write access (see [Version.with_write]). *)
