(* Tree mutation under the gapped pre/size encoding.

   The update subsystem's physical layer: every XQUF primitive bottoms
   out here as a structural splice that keeps the preorder-id invariant
   [n.nid < m.nid < n.nid + n.extent  <=>  m descends from n] intact
   without renumbering the document.

   [Node.renumber_gapped] reserves spare ids at every insertion position
   (after the attributes, after each child), and [extent] measures the
   interval *width* — so each position's free id range is computable
   from the neighbours alone:

       before child c    [prev sibling's end | attrs end,  c.nid)
       after  child c    [c's end,  next sibling's nid | parent's end)
       as first into p   [attrs end,  first child's nid | parent's end)
       as last  into p   [last child's end | attrs end,  parent's end)

   Deletions never shrink an interval (the freed ids become slack), and
   an insert whose content fits the local slack touches no ancestor
   extent at all — which is what lets the sorted per-name index arrays
   (Xqc_store) and the shred columns (Xqc_rel) be patched in place
   instead of rebuilt.  Inserted content is numbered with a small
   inter-node gap first, so the new subtree is itself updatable,
   retrying dense when tight; only when even dense numbering does not
   fit does the document fall back to a full [renumber_gapped] (counted
   in [full_renumbers]), which moves the root id and thereby kills every
   cache keyed on it.

   Positions that allocate at the front of a child list (before /
   as first) number from the high end of their free interval and the
   rest from the low end, so repeated prepends and appends drain the
   shared slack from opposite sides instead of colliding after one
   insert. *)

open Xqc_xml
module Obs = Xqc_obs.Obs
module Store = Xqc_store.Store
module Shred = Xqc_rel.Shred

exception Update_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Update_error s)) fmt

let c_patches = Obs.global_counter "incremental_index_patches"
let c_renumbers = Obs.global_counter "full_renumbers"

(* Inter-node gap when numbering inserted content: enough slack that
   follow-up edits inside fresh content also patch in place. *)
let content_gap = 8

(* ------------------------------------------------------------------ *)
(* Tree surgery                                                        *)
(* ------------------------------------------------------------------ *)

let set_children (p : Node.t) (cs : Node.t list) : unit =
  match p.Node.desc with
  | Node.Element e -> e.children <- cs
  | Node.Document d -> d.dchildren <- cs
  | _ -> err "%s nodes cannot hold children" (Node.kind_name (Node.kind p))

let set_attrs (p : Node.t) (l : Node.t list) : unit =
  match p.Node.desc with
  | Node.Element e -> e.attrs <- l
  | _ -> err "only element nodes hold attributes"

(* Is [n] still reachable from [root]?  A primitive may legally target
   a node whose ancestor an earlier primitive detached (XQUF targets
   are snapshot nodes): the mutation must still happen — the pending
   list was checked against the snapshot — but it is invisible, and
   its nids are stale (a replace may have reassigned the freed interval
   to live content), so it must never touch [root]'s indexes, shreds
   or numbering. *)
let attached (root : Node.t) (n : Node.t) : bool =
  let rec up m =
    m == root || match m.Node.parent with Some p -> up p | None -> false
  in
  up n

(* Remove [n] from its parent's child (or attribute) list; detached
   nodes keep their ids, so their old interval becomes slack. *)
let detach (n : Node.t) : unit =
  match n.Node.parent with
  | None -> ()
  | Some p ->
      (match n.Node.desc with
      | Node.Attribute _ ->
          set_attrs p (List.filter (fun a -> a != n) (Node.attributes p))
      | _ -> set_children p (List.filter (fun c -> c != n) (Node.children p)));
      n.Node.parent <- None

(* ------------------------------------------------------------------ *)
(* Free intervals                                                      *)
(* ------------------------------------------------------------------ *)

(* First id past the attribute block of [p]. *)
let attrs_end (p : Node.t) : int =
  match List.rev (Node.attributes p) with
  | [] -> p.Node.nid + 1
  | a :: _ -> Node.interval_end a

let rec last_opt = function [] -> None | [ x ] -> Some x | _ :: t -> last_opt t

type position =
  | P_first of Node.t  (** as first into p *)
  | P_last of Node.t  (** [as last] into p *)
  | P_before of Node.t  (** before anchor *)
  | P_after of Node.t  (** after anchor *)
  | P_attr of Node.t  (** attributes into p *)

let parent_of_anchor (a : Node.t) : Node.t =
  match a.Node.parent with
  | Some p -> p
  | None -> err "insert before/after target has no parent"

let position_parent = function
  | P_first p | P_last p | P_attr p -> p
  | P_before a | P_after a -> parent_of_anchor a

(* The free id interval [lo, hi) of an insertion position, derived from
   the neighbours alone (valid only on a gap-renumbered tree). *)
let free_interval = function
  | P_first p | P_attr p -> (
      ( attrs_end p,
        match Node.children p with
        | [] -> Node.interval_end p
        | c :: _ -> c.Node.nid ))
  | P_last p ->
      ( (match last_opt (Node.children p) with
        | None -> attrs_end p
        | Some c -> Node.interval_end c),
        Node.interval_end p )
  | P_before a -> (
      let p = parent_of_anchor a in
      let rec prev before = function
        | [] -> None
        | c :: rest -> if c == a then before else prev (Some c) rest
      in
      match prev None (Node.children p) with
      | Some b -> (Node.interval_end b, a.Node.nid)
      | None -> (attrs_end p, a.Node.nid))
  | P_after a -> (
      let p = parent_of_anchor a in
      let rec next = function
        | [] | [ _ ] -> None
        | c :: (s :: _ as rest) -> if c == a then Some s else next rest
      in
      match next (Node.children p) with
      | Some s -> (Node.interval_end a, s.Node.nid)
      | None -> (Node.interval_end a, Node.interval_end p))

(* ------------------------------------------------------------------ *)
(* Numbering inserted content                                          *)
(* ------------------------------------------------------------------ *)

(* Width of [n] numbered with inter-gap [gap] (same recurrence as
   [Node.renumber_gapped]); caches extents as a side effect. *)
let rec measure_gapped gap (n : Node.t) : int =
  let w = ref 1 in
  List.iter (fun a -> w := !w + measure_gapped gap a) (Node.attributes n);
  w := !w + gap;
  List.iter (fun c -> w := !w + measure_gapped gap c + gap) (Node.children n);
  n.Node.extent <- !w;
  !w

let assign_from (start : int) gap (n : Node.t) : unit =
  let next = ref start in
  let rec go n =
    n.Node.nid <- !next;
    incr next;
    List.iter go (Node.attributes n);
    next := !next + gap;
    List.iter
      (fun c ->
        go c;
        next := !next + gap)
      (Node.children n)
  in
  go n

(* Number the run [nodes] inside the free interval [lo, hi): gapped
   first, dense as a fallback.  [from_hi] packs the run against the high
   end (front-of-list positions).  False when even dense ids do not
   fit. *)
let try_number (nodes : Node.t list) ~lo ~hi ~from_hi : bool =
  let attempt gap =
    let widths = List.map (measure_gapped gap) nodes in
    let total =
      List.fold_left ( + ) 0 widths + (gap * max 0 (List.length nodes - 1))
    in
    total <= hi - lo
    &&
    (let next = ref (if from_hi then hi - total else lo) in
     List.iter2
       (fun n w ->
         assign_from !next gap n;
         next := !next + w + gap)
       nodes widths;
     true)
  in
  attempt content_gap || attempt 0

(* ------------------------------------------------------------------ *)
(* Index maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let patched b = if b then Obs.incr_counter c_patches

let patch_insert_indexes root sub =
  patched (Store.patch_insert root sub);
  patched (Shred.patch_insert root sub)

let patch_delete_indexes root sub =
  patched (Store.patch_delete root sub);
  patched (Shred.patch_delete root sub)

(* Gap exhausted (or the tree was never gap-numbered): renumber the
   whole document.  The root's nid moves, so every cache keyed on it —
   structural indexes, shreds, cached plans — is dead; purge the old
   key eagerly rather than waiting for the opportunistic sweeps. *)
let full_renumber (root : Node.t) : unit =
  let old = root.Node.nid in
  Store.purge_nid old;
  Shred.purge_nid old;
  Node.renumber_gapped root;
  Obs.incr_counter c_renumbers

(* ------------------------------------------------------------------ *)
(* Primitive mutations                                                 *)
(* ------------------------------------------------------------------ *)

let splice_children (p : Node.t) (pos : position) (nodes : Node.t list) : unit =
  List.iter (fun n -> n.Node.parent <- Some p) nodes;
  match pos with
  | P_first _ -> set_children p (nodes @ Node.children p)
  | P_last _ -> set_children p (Node.children p @ nodes)
  | P_attr _ -> set_attrs p (Node.attributes p @ nodes)
  | P_before a ->
      let rec ins = function
        | [] -> err "insert anchor is no longer a child of its parent"
        | c :: rest -> if c == a then nodes @ (c :: rest) else c :: ins rest
      in
      set_children p (ins (Node.children p))
  | P_after a ->
      let rec ins = function
        | [] -> err "insert anchor is no longer a child of its parent"
        | c :: rest -> if c == a then c :: (nodes @ rest) else c :: ins rest
      in
      set_children p (ins (Node.children p))

(* Place [nodes] (fresh, parentless, ids stale) at [pos] in the
   document rooted at [root]: number them into the position's slack and
   patch the live indexes, or splice and fall back to a full
   renumber. *)
let insert (root : Node.t) (pos : position) (nodes : Node.t list) : unit =
  if nodes <> [] then begin
    let p = position_parent pos in
    if not (attached root p) then
      (* Inserting under a subtree some earlier primitive detached: the
         splice keeps the snapshot consistent, but the content is
         invisible and the position's nids are stale — no numbering, no
         patches, and certainly no full renumber of the live tree. *)
      splice_children p pos nodes
    else begin
      let from_hi =
        match pos with P_first _ | P_before _ -> true | _ -> false
      in
      let fits =
        root.Node.extent > 0
        &&
        let lo, hi = free_interval pos in
        try_number nodes ~lo ~hi ~from_hi
      in
      splice_children p pos nodes;
      if fits then List.iter (patch_insert_indexes root) nodes
      else full_renumber root
    end
  end

let delete (root : Node.t) (n : Node.t) : unit =
  match n.Node.parent with
  | None -> () (* already detached by an earlier primitive *)
  | Some _ ->
      let live = attached root n in
      detach n;
      (* A node inside an already-detached subtree still has a parent,
         but its nids are stale — patching the live arrays with them
         would strip whichever nodes now own that interval. *)
      if live then patch_delete_indexes root n

let rename (root : Node.t) (n : Node.t) (name : string) : unit =
  let live = attached root n in
  match n.Node.desc with
  | Node.Element e ->
      let old_name = e.ename in
      n.Node.desc <-
        Node.Element
          { ename = name; attrs = e.attrs; children = e.children; eannot = e.eannot };
      if live then begin
        patched (Store.patch_rename root n ~old_name);
        patched (Shred.patch_rename root n)
      end
  | Node.Attribute a ->
      let old_name = a.aname in
      n.Node.desc <-
        Node.Attribute { aname = name; avalue = a.avalue; aannot = a.aannot };
      if live then begin
        patched (Store.patch_rename root n ~old_name);
        patched (Shred.patch_rename root n)
      end
  | Node.Pi p ->
      n.Node.desc <- Node.Pi { target = name; pdata = p.pdata };
      if live then patched (Shred.patch_rename root n)
  | _ -> err "rename target must be an element, attribute or processing-instruction"

let replace_value (root : Node.t) (n : Node.t) (s : string) : unit =
  let live = attached root n in
  match n.Node.desc with
  | Node.Text _ ->
      n.Node.desc <- Node.Text s;
      if live then patched (Shred.patch_value root n)
  | Node.Comment _ ->
      n.Node.desc <- Node.Comment s;
      if live then patched (Shred.patch_value root n)
  | Node.Pi p ->
      n.Node.desc <- Node.Pi { target = p.target; pdata = s };
      if live then patched (Shred.patch_value root n)
  | Node.Attribute a ->
      n.Node.desc <- Node.Attribute { aname = a.aname; avalue = s; aannot = a.aannot };
      if live then patched (Shred.patch_value root n)
  | Node.Element _ ->
      (* replaceElementContent: every child is dropped and replaced by a
         single text node holding the new value (nothing when empty). *)
      List.iter (delete root) (Node.children n);
      if s <> "" then insert root (P_last n) [ Node.text s ]
  | Node.Document _ -> err "cannot replace the value of a document node"

let replace_node (root : Node.t) (old : Node.t) (news : Node.t list) : unit =
  match old.Node.parent with
  | None -> err "replace target has no parent"
  | Some p -> (
      match old.Node.desc with
      | Node.Attribute _ ->
          delete root old;
          insert root (P_attr p) news
      | _ ->
          let pos =
            let rec next = function
              | [] | [ _ ] -> None
              | c :: (s :: _ as rest) -> if c == old then Some s else next rest
            in
            match next (Node.children p) with
            | Some s -> P_before s
            | None -> P_last p
          in
          delete root old;
          insert root pos news)
