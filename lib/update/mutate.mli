(** Tree mutation under the gapped pre/size encoding.

    The physical layer of the update subsystem: structural splices that
    preserve the preorder-id invariant without renumbering.  Inserts
    number their content into the target position's free id interval —
    the slack reserved by {!Xqc_xml.Node.renumber_gapped} — and patch
    the live structural indexes ([Xqc_store.Store]) and shred columns
    ([Xqc_rel.Shred]) in place; only gap exhaustion falls back to a full
    renumber of the document, which moves the root id and invalidates
    every cache keyed on it.

    Successful in-place index patches are counted in the
    [incremental_index_patches] global counter, full-renumber fallbacks
    in [full_renumbers].

    All functions here assume the caller holds exclusive write access to
    the document (see [Version.with_write]). *)

open Xqc_xml

exception Update_error of string
(** Dynamic errors of the update facility: invalid targets, conflicting
    primitives, vanished anchors. *)

(** Where an insert places its content. *)
type position =
  | P_first of Node.t  (** as first into p *)
  | P_last of Node.t  (** [as last] into p *)
  | P_before of Node.t  (** before anchor *)
  | P_after of Node.t  (** after anchor *)
  | P_attr of Node.t  (** attributes into p *)

val insert : Node.t -> position -> Node.t list -> unit
(** [insert root pos nodes] places the fresh, parentless [nodes] at
    [pos] in the document rooted at [root].  Content that fits the
    position's free interval is numbered into the slack (gapped first,
    dense as fallback) and index-patched; otherwise the whole document
    is renumbered. *)

val delete : Node.t -> Node.t -> unit
(** Detach the node (already-detached targets are a no-op).  The freed
    id interval becomes slack; no ancestor extent changes. *)

val replace_node : Node.t -> Node.t -> Node.t list -> unit
(** [replace_node root old news]: [old] is detached and [news] take its
    place (attribute targets are replaced in the attribute list). *)

val replace_value : Node.t -> Node.t -> string -> unit
(** New string value in place: text/comment/pi/attribute nodes swap
    their payload (same id, same row); an element target gets the XQUF
    replaceElementContent treatment — children deleted, one text node
    inserted. *)

val rename : Node.t -> Node.t -> string -> unit
(** In-place rename of an element, attribute or processing-instruction;
    the node keeps its id and the per-name index buckets are patched. *)

val full_renumber : Node.t -> unit
(** Renumber the whole document with fresh gaps, purging the caches
    keyed on the old root id.  Exposed for the update driver's
    recovery path; counted in [full_renumbers]. *)
