(** MVCC snapshot isolation for updatable documents.

    Registered documents are read through pinned versions: a reader pins
    the head at admission and keeps that exact tree for the whole
    request.  Writers serialize per document ({!with_write}) and either
    apply in place (no admitted readers — incremental index patches on
    the live caches, admissions briefly gated) or publish a fresh copy
    (readers live — nobody waits, the old version's caches are purged
    when its last reader unpins).

    {!generation} bumps on every publish; execution-mode fingerprints
    include it so cached plans die with the document state they were
    costed against. *)

open Xqc_xml

exception Unknown_document of string

type version = {
  v_root : Node.t;
  mutable v_id : int;  (** bumped on every publish, including in-place *)
  mutable v_readers : int;
  mutable v_retired : bool;
}

val register : string -> Node.t -> unit
(** Make [root] the head version of this uri (gap-renumbering it first —
    not counted as a full-renumber fallback).  Replaces and retires any
    previous head. *)

val registered : unit -> string list
(** Registered uris, sorted. *)

val head : string -> version option
(** Current head without pinning (monitoring only — may retire under
    you; use {!pin} to read). *)

val pin : string -> version option
(** Admission: pin the head version ([None] for unknown uris).  Waits
    only while an in-place apply is publishing.  Every [pin] must be
    matched by an {!unpin}. *)

val unpin : string -> version -> unit
(** Release a pin; the last unpin of a retired version purges the
    caches keyed on its root. *)

val with_write : string -> (Node.t -> in_place:bool -> 'a) -> 'a
(** Run one writer on this document.  The callback receives the tree to
    evaluate/apply the update against: the live head when no readers
    are admitted ([in_place:true]) or a fresh copy published on success
    ([in_place:false]).
    @raise Unknown_document for unregistered uris. *)

val generation : unit -> int
(** Global document-state generation, bumped on every publish. *)

val live_versions : unit -> int
(** Currently reachable versions: heads plus retired-but-pinned
    snapshots (the [snapshot_versions_live] gauge). *)

val clear : unit -> unit
(** Test support: drop every registration. *)
