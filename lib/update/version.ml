(* MVCC snapshot isolation for updatable documents.

   Each registered document uri has a head version — a root node plus a
   reader refcount.  Readers pin the head at admission and keep that
   exact tree for the whole request, whatever writers do meanwhile;
   writers serialize per document and choose between two publication
   strategies:

     - no admitted readers: apply the pending updates *in place*,
       patching the live indexes incrementally (the fast path the
       gapped numbering exists for).  Admissions arriving mid-apply
       wait on the entry's condition until the new state is published —
       they can never observe a half-applied tree.

     - readers hold the snapshot: evaluate and apply against a deep
       copy, then publish the copy as the new head.  Nobody waits; the
       old version retires and its caches (structural indexes, shreds)
       are purged when its last reader unpins.

   A global generation counter bumps on every publish; the plan cache
   keys on it, so compiled plans never outlive the document state they
   were costed against.  [live_versions] gauges how many versions are
   currently reachable (heads plus retired-but-pinned snapshots). *)

open Xqc_xml
module Obs = Xqc_obs.Obs
module Store = Xqc_store.Store
module Shred = Xqc_rel.Shred

exception Unknown_document of string

type version = {
  v_root : Node.t;
  mutable v_id : int;  (** bumped on every publish, including in-place *)
  mutable v_readers : int;
  mutable v_retired : bool;
}

type entry = {
  e_wlock : Obs.tmutex;  (* one writer at a time per document *)
  e_m : Mutex.t;  (* admission gate: guards head/readers/blocked *)
  e_c : Condition.t;
  mutable e_blocked : bool;  (* in-place apply running: admissions wait *)
  mutable e_head : version;
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 8
let reg_lock = Obs.tmutex "update.version.registry"
let vid_counter = Stdlib.Atomic.make 0
let fresh_vid () = Stdlib.Atomic.fetch_and_add vid_counter 1 + 1

let live = Stdlib.Atomic.make 0
let live_versions () = Stdlib.Atomic.get live

let generation_counter = Stdlib.Atomic.make 0
let generation () = Stdlib.Atomic.get generation_counter
let bump_generation () = ignore (Stdlib.Atomic.fetch_and_add generation_counter 1)

(* A version nothing can reach any more: drop the caches keyed on its
   root. *)
let purge_version (v : version) : unit =
  Store.purge_root v.v_root;
  Shred.purge_root v.v_root;
  ignore (Stdlib.Atomic.fetch_and_add live (-1))

let find (uri : string) : entry option =
  Obs.with_lock reg_lock (fun () -> Hashtbl.find_opt registry uri)

let registered () : string list =
  Obs.with_lock reg_lock (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

let register (uri : string) (root : Node.t) : unit =
  (* the initial gap numbering — before any index is built over the
     tree, and not counted as a full-renumber fallback *)
  Node.renumber_gapped root;
  let v = { v_root = root; v_id = fresh_vid (); v_readers = 0; v_retired = false } in
  ignore (Stdlib.Atomic.fetch_and_add live 1);
  Obs.with_lock reg_lock (fun () ->
      match Hashtbl.find_opt registry uri with
      | Some e ->
          Mutex.lock e.e_m;
          let old = e.e_head in
          old.v_retired <- true;
          e.e_head <- v;
          let dead = old.v_readers = 0 in
          Mutex.unlock e.e_m;
          if dead then purge_version old;
          bump_generation ()
      | None ->
          Hashtbl.replace registry uri
            {
              e_wlock = Obs.tmutex ("update.write." ^ uri);
              e_m = Mutex.create ();
              e_c = Condition.create ();
              e_blocked = false;
              e_head = v;
            })

let head (uri : string) : version option =
  Option.map (fun e -> e.e_head) (find uri)

(* Admission: pin the head version.  Waits only while an in-place apply
   is publishing; never waits on copy-path writers. *)
let pin (uri : string) : version option =
  match find uri with
  | None -> None
  | Some e ->
      Mutex.lock e.e_m;
      while e.e_blocked do
        Condition.wait e.e_c e.e_m
      done;
      let v = e.e_head in
      v.v_readers <- v.v_readers + 1;
      Mutex.unlock e.e_m;
      Some v

let unpin (uri : string) (v : version) : unit =
  match find uri with
  | None -> ()
  | Some e ->
      Mutex.lock e.e_m;
      v.v_readers <- v.v_readers - 1;
      let dead = v.v_retired && v.v_readers = 0 in
      Mutex.unlock e.e_m;
      if dead then purge_version v

(* Serialize a write on [uri].  [f] receives the tree to evaluate and
   apply the script against and whether that tree is the live head
   ([in_place:true], exclusive — index patches hit the live caches) or
   a fresh copy to be published afterwards ([in_place:false]). *)
let with_write (uri : string) (f : Node.t -> in_place:bool -> 'a) : 'a =
  match find uri with
  | None -> raise (Unknown_document uri)
  | Some e ->
      Obs.with_lock e.e_wlock (fun () ->
          Mutex.lock e.e_m;
          let hd = e.e_head in
          let exclusive = hd.v_readers = 0 in
          if exclusive then e.e_blocked <- true;
          Mutex.unlock e.e_m;
          if exclusive then (
            let release publish =
              Mutex.lock e.e_m;
              if publish then hd.v_id <- fresh_vid ();
              e.e_blocked <- false;
              Condition.broadcast e.e_c;
              Mutex.unlock e.e_m
            in
            match f hd.v_root ~in_place:true with
            | r ->
                bump_generation ();
                release true;
                r
            | exception ex ->
                release false;
                raise ex)
          else
            let root' = Node.copy hd.v_root in
            Node.renumber_gapped root';
            match f root' ~in_place:false with
            | r ->
                let v' =
                  { v_root = root'; v_id = fresh_vid (); v_readers = 0; v_retired = false }
                in
                ignore (Stdlib.Atomic.fetch_and_add live 1);
                Mutex.lock e.e_m;
                let old = e.e_head in
                old.v_retired <- true;
                e.e_head <- v';
                let dead = old.v_readers = 0 in
                Mutex.unlock e.e_m;
                if dead then purge_version old;
                bump_generation ();
                r
            | exception ex ->
                (* evaluation against the copy may have built caches *)
                Store.purge_root root';
                Shred.purge_root root';
                raise ex)

(* Test support: drop every registration (pinned snapshots keep their
   trees alive; their caches purge on unpin as usual). *)
let clear () : unit =
  Obs.with_lock reg_lock (fun () ->
      Hashtbl.iter
        (fun _ e ->
          Mutex.lock e.e_m;
          let hd = e.e_head in
          hd.v_retired <- true;
          let dead = hd.v_readers = 0 in
          Mutex.unlock e.e_m;
          if dead then purge_version hd)
        registry;
      Hashtbl.reset registry)
