(** Type promotion and fs:convert-operand — Section 6 / Table 2 of the
    paper.

    The observation exploited by the XQuery hash join is that
    [fs:convert-operand (x, y)] depends only on the {e type} of [y], never
    its value, so the two join inputs can be materialized independently:
    each key is stored under every (value, type) pair it can be promoted
    to, and a probe match is accepted only when the pair of original types
    prescribes that comparison type. *)

open Xqc_xml

val numeric_rank : Atomic.type_name -> int option
(** Position in the numeric tower integer(0) < decimal < float < double(3),
    [None] for non-numeric types. *)

val promotion_targets : Atomic.type_name -> Atomic.type_name list
(** All types a value of the given type can be promoted to, itself
    included, in increasing order.  Untyped promotes to string and double;
    anyURI to string. *)

val promote_to_simple_types : Atomic.t -> (Atomic.t * Atomic.type_name) list
(** [promoteToSimpleTypes] of Figure 6: the (value, type) pairs under
    which a join key is materialized.  Promotions whose cast fails (an
    untyped value that is not numeric has no double entry) are dropped. *)

val comparison_type :
  Atomic.type_name -> Atomic.type_name -> Atomic.type_name option
(** The comparison type Table 2 prescribes for two original operand
    types, or [None] when they are incomparable (err:XPTY0004). *)

exception Type_mismatch of Atomic.type_name * Atomic.type_name

val convert_operand : Atomic.t -> Atomic.t -> Atomic.t
(** [convert_operand x other] is fs:convert-operand: cast [x] to the
    comparison type prescribed by the type of [other].
    @raise Type_mismatch when the types are incomparable. *)

(** The six comparison operators. *)
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

val cmp_op_name : cmp_op -> string

val atomic_compare : cmp_op -> Atomic.t -> Atomic.t -> bool
(** op:equal / op:less-than etc. between two atomics, after applying
    {!convert_operand} to both sides.
    @raise Type_mismatch or Atomic.Cast_error on bad pairs. *)

val general_compare : cmp_op -> Item.sequence -> Item.sequence -> bool
(** General comparison: existentially quantified over the atomized
    operands (the normalization shown in Section 2 of the paper). *)

val value_compare : cmp_op -> Item.sequence -> Item.sequence -> bool option
(** Value comparison (eq/lt/...): [None] if either operand is empty.
    @raise Atomic.Cast_error on non-singleton operands. *)

(** {1 Typed order keys}

    Sort keys classified once, by type, into a class with a total order
    — pairwise [convert_operand] is not transitive over mixed-type keys
    (untyped compares as string against strings but as double against
    numerics).  The numeric tower collapses to one class with integers
    kept exact; untyped and anyURI keys compare as strings; calendar and
    binary types compare lexically within the same type. *)
type order_key =
  | K_int of int
  | K_float of float
  | K_string of string
  | K_bool of bool
  | K_cal of Atomic.type_name * string

val order_key : Atomic.t -> order_key
(** Classify one atomic sort key.
    @raise Type_mismatch on xs:QName (no order relation). *)

val compare_order_keys : order_key -> order_key -> int
(** Total within a class.
    @raise Type_mismatch across classes (err:XPTY0004). *)
