(* Type promotion and fs:convert-operand — Section 6 / Table 2 of the paper.

   The key observation exploited by the hash join is that
   fs:convert-operand(x, y) depends only on the *type* of y, never its
   value, so both join inputs can be materialized independently: each key
   is stored under every (value, type) pair it can be promoted to, and a
   probe match is accepted only when the pair of *original* types prescribes
   that comparison type. *)

open Xqc_xml

(* The numeric tower: integer < decimal < float < double. *)
let numeric_rank = function
  | Atomic.T_integer -> Some 0
  | Atomic.T_decimal -> Some 1
  | Atomic.T_float -> Some 2
  | Atomic.T_double -> Some 3
  | Atomic.T_untyped | Atomic.T_string | Atomic.T_boolean | Atomic.T_any_uri
  | Atomic.T_qname | Atomic.T_date | Atomic.T_time | Atomic.T_date_time
  | Atomic.T_duration | Atomic.T_g_year | Atomic.T_g_month | Atomic.T_g_day
  | Atomic.T_g_year_month | Atomic.T_g_month_day | Atomic.T_hex_binary
  | Atomic.T_base64_binary | Atomic.T_notation ->
      None

let of_numeric_rank = function
  | 0 -> Atomic.T_integer
  | 1 -> Atomic.T_decimal
  | 2 -> Atomic.T_float
  | _ -> Atomic.T_double

(* All types a value of type [tn] can be promoted to, itself included,
   in increasing order.  anyURI promotes to string per XPath 2.0. *)
let promotion_targets (tn : Atomic.type_name) : Atomic.type_name list =
  match numeric_rank tn with
  | Some r ->
      List.filter_map
        (fun r' -> if r' >= r then Some (of_numeric_rank r') else None)
        [ 0; 1; 2; 3 ]
  | None -> (
      match tn with
      | Atomic.T_any_uri -> [ Atomic.T_any_uri; Atomic.T_string ]
      | Atomic.T_untyped ->
          (* Table 2: an untyped operand compares as xs:string against
             strings/untyped, and as xs:double against numerics. *)
          [ Atomic.T_string; Atomic.T_double ]
      | other -> [ other ])

(* The (value, type) pairs under which a join key is materialized —
   [promoteToSimpleTypes] in Figure 6 of the paper.  An untyped value that
   does not parse as a number simply has no double entry. *)
let promote_to_simple_types (a : Atomic.t) : (Atomic.t * Atomic.type_name) list =
  List.filter_map
    (fun target ->
      match Atomic.cast target a with
      | v -> Some (v, target)
      | exception Atomic.Cast_error _ -> None)
    (promotion_targets (Atomic.type_of a))

(* The comparison type prescribed by Table 2 for two *original* operand
   types, or None when the operands are incomparable (err:XPTY0004). *)
let comparison_type (t1 : Atomic.type_name) (t2 : Atomic.type_name) :
    Atomic.type_name option =
  let numeric t = numeric_rank t <> None in
  match (t1, t2) with
  | Atomic.T_untyped, Atomic.T_untyped -> Some Atomic.T_string
  | Atomic.T_untyped, t when numeric t -> Some Atomic.T_double
  | t, Atomic.T_untyped when numeric t -> Some Atomic.T_double
  | Atomic.T_untyped, t -> Some t
  | t, Atomic.T_untyped -> Some t
  | t1, t2 when numeric t1 && numeric t2 ->
      let r1 = Option.get (numeric_rank t1) and r2 = Option.get (numeric_rank t2) in
      Some (of_numeric_rank (max r1 r2))
  | (Atomic.T_string | Atomic.T_any_uri), (Atomic.T_string | Atomic.T_any_uri) ->
      Some Atomic.T_string
  | t1, t2 when t1 = t2 -> Some t1
  | _, _ -> None

exception Type_mismatch of Atomic.type_name * Atomic.type_name

(* fs:convert-operand, Table 2: convert [x] based on the type of [other]. *)
let convert_operand (x : Atomic.t) (other : Atomic.t) : Atomic.t =
  let tx = Atomic.type_of x and to_ = Atomic.type_of other in
  match comparison_type tx to_ with
  | Some target -> Atomic.cast target x
  | None -> raise (Type_mismatch (tx, to_))

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

let cmp_op_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

(* op:equal / op:less-than etc. between two atomics, applying
   fs:convert-operand to both sides first. *)
let atomic_compare (op : cmp_op) (x : Atomic.t) (y : Atomic.t) : bool =
  let x' = convert_operand x y and y' = convert_operand y x in
  match op with
  | Eq -> Atomic.equal_same_type x' y'
  | Ne -> not (Atomic.equal_same_type x' y')
  | Lt -> Atomic.compare_same_type x' y' < 0
  | Le -> Atomic.compare_same_type x' y' <= 0
  | Gt -> Atomic.compare_same_type x' y' > 0
  | Ge -> Atomic.compare_same_type x' y' >= 0

(* General comparison between two item sequences: existentially quantified
   over the atomized operands (the normalization shown in Section 2). *)
let general_compare (op : cmp_op) (xs : Item.sequence) (ys : Item.sequence) :
    bool =
  let axs = Item.atomize xs and ays = Item.atomize ys in
  List.exists (fun x -> List.exists (fun y -> atomic_compare op x y) ays) axs

(* Value comparison (eq/lt/...): both operands must atomize to singletons. *)
let value_compare (op : cmp_op) (xs : Item.sequence) (ys : Item.sequence) :
    bool option =
  match (Item.atomize xs, Item.atomize ys) with
  | [], _ | _, [] -> None
  | [ x ], [ y ] -> Some (atomic_compare op x y)
  | _, _ -> Atomic.cast_error "value comparison requires singleton operands"

(* ------------------------------------------------------------------ *)
(* Typed order keys (OrderBy)                                          *)
(* ------------------------------------------------------------------ *)

(* Sort keys classified once, by type.  Pairwise fs:convert-operand is
   not a total order over mixed-type keys (untyped compares as string
   against strings but as double against numerics, which is not
   transitive), so OrderBy instead classifies each key into one of these
   comparison classes up front: the numeric tower collapses to one class
   (integers kept exact until a fractional key appears), untyped/anyURI
   keys compare as strings per the XQuery ordering rules, and calendar /
   binary types compare lexically within the same type only.  Comparing
   across classes raises [Type_mismatch] (err:XPTY0004). *)
type order_key =
  | K_int of int
  | K_float of float
  | K_string of string
  | K_bool of bool
  | K_cal of Atomic.type_name * string

let order_key (a : Atomic.t) : order_key =
  match a with
  | Atomic.Integer i -> K_int i
  | Atomic.Decimal f | Atomic.Float f | Atomic.Double f -> K_float f
  | Atomic.Untyped s | Atomic.String s | Atomic.Any_uri s -> K_string s
  | Atomic.Boolean b -> K_bool b
  | Atomic.Other (t, s) -> K_cal (t, s)
  | Atomic.Qname _ ->
      (* xs:QName has no order relation *)
      raise (Type_mismatch (Atomic.T_qname, Atomic.T_qname))

let order_key_type = function
  | K_int _ -> Atomic.T_integer
  | K_float _ -> Atomic.T_double
  | K_string _ -> Atomic.T_string
  | K_bool _ -> Atomic.T_boolean
  | K_cal (t, _) -> t

let compare_order_keys (k1 : order_key) (k2 : order_key) : int =
  match (k1, k2) with
  | K_int a, K_int b -> Int.compare a b
  | K_int a, K_float b -> Float.compare (float_of_int a) b
  | K_float a, K_int b -> Float.compare a (float_of_int b)
  | K_float a, K_float b -> Float.compare a b
  | K_string a, K_string b -> String.compare a b
  | K_bool a, K_bool b -> Bool.compare a b
  | K_cal (t1, a), K_cal (t2, b) when t1 = t2 -> String.compare a b
  | _ -> raise (Type_mismatch (order_key_type k1, order_key_type k2))
