(** Normalization: surface AST -> XQuery Core (Section 4 of the paper).

    Deviations from the W3C rules follow the paper: FLWOR expressions are
    preserved as whole blocks; each path predicate becomes one complete
    FLWOR with an [at] variable and a [where] clause (positional machinery
    omitted for statically boolean predicates, which is what lets the
    optimizer unnest joins expressed through predicates); typeswitch uses
    one common variable across its branches.  All bound variables are
    alpha-renamed to globally fresh names so tuple fields never collide. *)

exception Norm_error of string

val normalize_query : Ast.query -> Core_ast.cquery

val normalize_string : string -> Core_ast.cquery
(** Parse then normalize.
    @raise Xq_parser.Syntax_error on parse errors.
    @raise Norm_error on context-dependence errors (e.g. "." with no
    context item in scope). *)

(** {1 Update scripts} *)

(** A normalized update statement: every source/target position is a
    complete core query (sharing the script's prolog), so the update
    driver can run each through any execution strategy unchanged. *)
type nupdate_stmt =
  | N_insert of Core_ast.cquery * Ast.insert_pos * Core_ast.cquery
      (** source, position, target *)
  | N_delete of Core_ast.cquery
  | N_replace_node of Core_ast.cquery * Core_ast.cquery  (** target, source *)
  | N_replace_value of Core_ast.cquery * Core_ast.cquery  (** target, source *)
  | N_rename of Core_ast.cquery * Core_ast.cquery  (** target, name expr *)

val normalize_update : Ast.update_script -> nupdate_stmt list
