(* Normalization: surface AST -> XQuery Core (Section 4 of the paper).

   Follows the paper's deviations from the W3C normalization rules:
   - FLWOR expressions are preserved as whole blocks;
   - each path step normalizes into one complete FLWOR with an `at`
     positional variable and a `where` clause for the predicate (rather
     than nested for/if), which is what later allows Select introduction;
   - typeswitch is renormalized so every branch shares one variable.

   All bound variables are alpha-renamed to fresh names ("x~3") so tuple
   fields never collide in the algebra; fs: helpers carry the dynamic
   pieces of the spec semantics (predicate truth, AVT stringification). *)

open Xqc_xml
open Core_ast

exception Norm_error of string

let norm_error fmt = Printf.ksprintf (fun s -> raise (Norm_error s)) fmt

type env = {
  bindings : (string * string) list;  (** surface name -> unique core name *)
  context : string option;  (** core name of $fs:dot, if a context item is in scope *)
  position : string option;  (** core name of $fs:position *)
  last : string option;  (** core name of $fs:last *)
  functions : (string * int) list;  (** declared (name, arity) *)
  counter : int ref;
}

let initial_env functions =
  { bindings = []; context = None; position = None; last = None; functions; counter = ref 0 }

let fresh env base =
  incr env.counter;
  Printf.sprintf "%s~%d" base !(env.counter)

let bind env surface core = { env with bindings = (surface, core) :: env.bindings }

let lookup env v =
  match List.assoc_opt v env.bindings with
  | Some core -> core
  | None -> v (* free variable: global or external binding, kept by name *)

let seq_of_list = function
  | [] -> C_empty
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun acc x -> C_seq (acc, x)) e rest

let ebv e = C_call ("fn:boolean", [ e ])

let is_whitespace_only s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* Does a surface expression mention fn:last() / fn:position() outside a
   nested predicate (which rebinds them)?  A conservative syntactic check
   used to avoid materializing the sequence length when not needed. *)
let rec mentions_fn names (e : Ast.expr) : bool =
  let mentions_last = mentions_fn names in
  let open Ast in
  match e with
  | Call (f, []) when List.mem f names -> true
  | Sequence_expr es -> List.exists mentions_last es
  | Flwor (clauses, orders, ret) ->
      List.exists
        (function
          | For_clause { source; _ } -> mentions_last source
          | Let_clause { value; _ } -> mentions_last value
          | Where_clause w -> mentions_last w)
        clauses
      || List.exists (fun o -> mentions_last o.key) orders
      || mentions_last ret
  | If_expr (a, b, c) -> mentions_last a || mentions_last b || mentions_last c
  | Quantified (_, binds, body) ->
      List.exists (fun (_, s) -> mentions_last s) binds || mentions_last body
  | Typeswitch (s, cases, (_, d)) ->
      mentions_last s
      || List.exists (fun c -> mentions_last c.case_body) cases
      || mentions_last d
  | Or_expr (a, b) | And_expr (a, b) | Range (a, b) | Union_expr (a, b)
  | Intersect_expr (a, b) | Except_expr (a, b) ->
      mentions_last a || mentions_last b
  | General_comp (_, a, b) | Value_comp (_, a, b) | Node_comp (_, a, b)
  | Arith (_, a, b) ->
      mentions_last a || mentions_last b
  | Unary_minus a | Enclosed a | Text_constructor a | Comment_constructor a
  | Pi_constructor (_, a) | Document_constructor a | Computed_element (_, a)
  | Computed_attribute (_, a)
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _, _)
  | Cast_as (a, _, _) | Validate_expr a ->
      mentions_last a
  | Path (origin, _) -> mentions_last origin (* predicates rebind last() *)
  | Filter (p, _) -> mentions_last p
  | Call (_, args) -> List.exists mentions_last args
  | Literal _ | Var _ | Context_item | Root | Text_content _ -> false
  | Elem_constructor (_, attrs, content) ->
      List.exists
        (fun (_, Attr_parts parts) ->
          List.exists (function Attr_expr e -> mentions_last e | Attr_text _ -> false) parts)
        attrs
      || List.exists mentions_last content

let mentions_last = mentions_fn [ "last"; "fn:last" ]
let mentions_position = mentions_fn [ "position"; "fn:position" ]

let rec normalize env (e : Ast.expr) : cexpr =
  let open Ast in
  match e with
  | Literal a -> C_scalar a
  | Var v -> C_var (lookup env v)
  | Context_item -> (
      match env.context with
      | Some dot -> C_var dot
      | None -> norm_error "no context item in scope for '.'")
  | Root -> (
      match env.context with
      | Some dot -> C_call ("fn:root", [ C_var dot ])
      | None -> norm_error "no context item in scope for '/'")
  | Sequence_expr es -> seq_of_list (List.map (normalize env) es)
  | Flwor (clauses, orders, ret) -> normalize_flwor env clauses orders ret
  | If_expr (c, t, e) -> C_if (ebv (normalize env c), normalize env t, normalize env e)
  | Quantified (q, binds, body) ->
      let rec build env = function
        | [] -> ebv (normalize env body)
        | (v, source) :: rest ->
            let source = normalize env source in
            let v' = fresh env v in
            C_quant (q, v', source, build (bind env v v') rest)
      in
      build env binds
  | Typeswitch (scrut, cases, (dvar, dbody)) ->
      let scrut = normalize env scrut in
      let x = fresh env "ts" in
      let norm_case c =
        let env' =
          match c.case_var with Some v -> bind env v x | None -> env
        in
        (c.case_type, normalize env' c.case_body)
      in
      let default =
        let env' = match dvar with Some v -> bind env v x | None -> env in
        normalize env' dbody
      in
      C_typeswitch (x, scrut, List.map norm_case cases, default)
  | Or_expr (a, b) ->
      C_if (ebv (normalize env a), C_scalar (Atomic.Boolean true), ebv (normalize env b))
  | And_expr (a, b) ->
      C_if (ebv (normalize env a), ebv (normalize env b), C_scalar (Atomic.Boolean false))
  | General_comp (op, a, b) ->
      let name =
        match op with
        | Gen_eq -> "op:general-eq"
        | Gen_ne -> "op:general-ne"
        | Gen_lt -> "op:general-lt"
        | Gen_le -> "op:general-le"
        | Gen_gt -> "op:general-gt"
        | Gen_ge -> "op:general-ge"
      in
      C_call (name, [ normalize env a; normalize env b ])
  | Value_comp (op, a, b) ->
      let name =
        match op with
        | Val_eq -> "op:eq"
        | Val_ne -> "op:ne"
        | Val_lt -> "op:lt"
        | Val_le -> "op:le"
        | Val_gt -> "op:gt"
        | Val_ge -> "op:ge"
      in
      C_call (name, [ normalize env a; normalize env b ])
  | Node_comp (op, a, b) ->
      let name =
        match op with
        | Node_is -> "op:is-same-node"
        | Node_before -> "op:node-before"
        | Node_after -> "op:node-after"
      in
      C_call (name, [ normalize env a; normalize env b ])
  | Range (a, b) -> C_call ("op:to", [ normalize env a; normalize env b ])
  | Arith (op, a, b) ->
      let name =
        match op with
        | Add -> "op:add"
        | Sub -> "op:subtract"
        | Mul -> "op:multiply"
        | Div -> "op:divide"
        | Idiv -> "op:integer-divide"
        | Mod -> "op:mod"
      in
      C_call (name, [ normalize env a; normalize env b ])
  | Unary_minus a -> C_call ("op:unary-minus", [ normalize env a ])
  | Union_expr (a, b) -> C_call ("op:union", [ normalize env a; normalize env b ])
  | Intersect_expr (a, b) ->
      C_call ("op:intersect", [ normalize env a; normalize env b ])
  | Except_expr (a, b) -> C_call ("op:except", [ normalize env a; normalize env b ])
  | Path (origin, steps) ->
      let origin = normalize env origin in
      List.fold_left (normalize_step env) origin steps
  | Filter (primary, predicates) ->
      let base = normalize env primary in
      List.fold_left (fun acc p -> normalize_predicate env acc p) base predicates
  | Call (name, args) -> normalize_call env name args
  | Elem_constructor (name, attrs, content) ->
      let attr_exprs =
        List.map (fun (aname, av) -> C_attr (aname, normalize_avt env av)) attrs
      in
      let content_exprs =
        List.filter_map
          (fun item ->
            match item with
            | Text_content s ->
                if is_whitespace_only s then None
                else Some (C_text (C_scalar (Atomic.String s)))
            | Enclosed e -> Some (normalize env e)
            | other -> Some (normalize env other))
          content
      in
      C_elem (name, seq_of_list (attr_exprs @ content_exprs))
  | Enclosed e -> normalize env e
  | Text_content s -> C_text (C_scalar (Atomic.String s))
  | Text_constructor e -> C_text (normalize env e)
  | Comment_constructor e -> C_comment (normalize env e)
  | Pi_constructor (t, e) -> C_pi (t, normalize env e)
  | Document_constructor e -> C_call ("fs:document", [ normalize env e ])
  | Computed_element (n, e) -> C_elem (n, normalize env e)
  | Computed_attribute (n, e) -> C_attr (n, C_call ("fs:item-sequence-to-string", [ normalize env e ]))
  | Instance_of (e, ty) -> C_instance_of (normalize env e, ty)
  | Treat_as (e, ty) -> C_typeassert (normalize env e, ty)
  | Castable_as (e, tn, opt) -> C_castable (normalize env e, tn, opt)
  | Cast_as (e, tn, opt) -> C_cast (normalize env e, tn, opt)
  | Validate_expr e -> C_validate (normalize env e)

and normalize_call env name args =
  match (name, args) with
  | ("position" | "fn:position"), [] -> (
      match env.position with
      | Some p -> C_var p
      | None -> norm_error "fn:position() used outside a predicate")
  | ("last" | "fn:last"), [] -> (
      match env.last with
      | Some l -> C_var l
      | None -> norm_error "fn:last() used outside a predicate")
  | _ ->
      let arity = List.length args in
      let resolved =
        if List.mem (name, arity) env.functions then name
        else if String.contains name ':' then name
        else "fn:" ^ name
      in
      C_call (resolved, List.map (normalize env) args)

(* E1/step — one complete FLWOR block per step, per the paper. *)
and normalize_step env input (step : Ast.step) =
  let base = C_treejoin (step.Ast.axis, step.Ast.test, input) in
  List.fold_left (fun acc p -> normalize_predicate env acc p) base step.Ast.predicates

(* Is a predicate expression statically known to be boolean-valued (so its
   truth is its effective boolean value, independent of the context
   position)?  Such predicates normalize without the positional variable,
   which is what lets the optimizer unnest joins expressed through path
   predicates (the Q1 variant at the end of Section 4 of the paper). *)
and statically_boolean (pred : Ast.expr) : bool =
  match pred with
  | Ast.General_comp _ | Ast.Value_comp _ | Ast.Node_comp _ | Ast.Quantified _
  | Ast.Or_expr _ | Ast.And_expr _ | Ast.Instance_of _ | Ast.Castable_as _ ->
      true
  | Ast.Call (name, _) ->
      List.mem name
        [ "boolean"; "fn:boolean"; "not"; "fn:not"; "empty"; "fn:empty";
          "exists"; "fn:exists"; "contains"; "fn:contains"; "starts-with";
          "fn:starts-with"; "ends-with"; "fn:ends-with"; "true"; "fn:true";
          "false"; "fn:false" ]
  | _ -> false

(* E[p]  ~~>  for $fs:dot at $fs:position in E
              where fs:predicate-truth(p', $fs:position)
              return $fs:dot
   with a let-bound fn:count when p uses last(), and without the
   positional machinery when p is statically boolean. *)
and normalize_predicate env input (pred : Ast.expr) =
  if statically_boolean pred && not (mentions_last pred) && not (mentions_position pred)
  then
    let dot = fresh env "fs_dot" in
    let penv = { env with context = Some dot; position = None; last = None } in
    let p' = normalize penv pred in
    C_flwor
      ( [
          CC_for { var = dot; at_var = None; astype = None; source = input };
          CC_where (ebv p');
        ],
        [],
        C_var dot )
  else normalize_predicate_positional env input pred

and normalize_predicate_positional env input (pred : Ast.expr) =
  let dot = fresh env "fs_dot" in
  let pos = fresh env "fs_pos" in
  let uses_last = mentions_last pred in
  let seq_var = fresh env "fs_seq" in
  let len_var = fresh env "fs_last" in
  let penv =
    { env with context = Some dot; position = Some pos;
      last = (if uses_last then Some len_var else None) }
  in
  let p' = normalize penv pred in
  let where =
    (* a literal integer predicate is directly a position test, which keeps
       plans in the shape shown in the paper's Section 4 example *)
    match p' with
    | C_scalar (Atomic.Integer _) -> C_call ("op:eq", [ C_var pos; p' ])
    | _ -> C_call ("fs:predicate-truth", [ p'; C_var pos ])
  in
  if uses_last then
    C_flwor
      ( [
          CC_let { var = seq_var; astype = None; value = input };
          CC_let { var = len_var; astype = None; value = C_call ("fn:count", [ C_var seq_var ]) };
          CC_for { var = dot; at_var = Some pos; astype = None; source = C_var seq_var };
          CC_where where;
        ],
        [],
        C_var dot )
  else
    C_flwor
      ( [
          CC_for { var = dot; at_var = Some pos; astype = None; source = input };
          CC_where where;
        ],
        [],
        C_var dot )

and normalize_avt env (Ast.Attr_parts parts) =
  let pieces =
    List.map
      (function
        | Ast.Attr_text s -> C_scalar (Atomic.String s)
        | Ast.Attr_expr e -> C_call ("fs:item-sequence-to-string", [ normalize env e ]))
      parts
  in
  match pieces with
  | [] -> C_scalar (Atomic.String "")
  | [ p ] -> p
  | ps -> C_call ("fn:concat", ps)

and normalize_flwor env clauses orders ret =
  let rec norm_clauses env acc = function
    | [] ->
        let orders' =
          List.map
            (fun o ->
              { ckey = normalize env o.Ast.key;
                cdir = o.Ast.dir;
                cempty = o.Ast.empty })
            orders
        in
        (env, List.rev acc, orders')
    | Ast.For_clause { var; at_var; astype; source } :: rest ->
        let source = normalize env source in
        let var' = fresh env var in
        let env = bind env var var' in
        let at_var', env =
          match at_var with
          | None -> (None, env)
          | Some a ->
              let a' = fresh env a in
              (Some a', bind env a a')
        in
        norm_clauses env (CC_for { var = var'; at_var = at_var'; astype; source } :: acc) rest
    | Ast.Let_clause { var; astype; value } :: rest ->
        let value = normalize env value in
        let var' = fresh env var in
        let env = bind env var var' in
        norm_clauses env (CC_let { var = var'; astype; value } :: acc) rest
    | Ast.Where_clause w :: rest ->
        norm_clauses env (CC_where (ebv (normalize env w)) :: acc) rest
  in
  let env', clauses', orders' = norm_clauses env [] clauses in
  C_flwor (clauses', orders', normalize env' ret)

(* ------------------------------------------------------------------ *)

let normalize_query (q : Ast.query) : cquery =
  let declared =
    List.filter_map
      (function
        | Ast.Function_decl f -> Some (f.Ast.fname, List.length f.Ast.params)
        | Ast.Variable_decl _ -> None)
      q.Ast.prolog
  in
  let base_env = initial_env declared in
  let functions =
    List.filter_map
      (function
        | Ast.Function_decl f ->
            let env =
              List.fold_left (fun e (p, _) -> bind e p p) base_env f.Ast.params
            in
            Some
              {
                cf_name = f.Ast.fname;
                cf_params = f.Ast.params;
                cf_return = f.Ast.return_type;
                cf_body = normalize env f.Ast.body;
              }
        | Ast.Variable_decl _ -> None)
      q.Ast.prolog
  in
  let globals =
    List.filter_map
      (function
        | Ast.Variable_decl (v, e) -> Some (v, normalize base_env e)
        | Ast.Function_decl _ -> None)
      q.Ast.prolog
  in
  { cq_functions = functions; cq_globals = globals; cq_main = normalize base_env q.Ast.main }

let normalize_string (src : string) : cquery =
  normalize_query (Xq_parser.parse_query src)

(* ------------------------------------------------------------------ *)
(* Update scripts                                                      *)
(* ------------------------------------------------------------------ *)

(* A normalized update statement: every source/target position is a
   complete core query (sharing the script's prolog), so the update
   driver can run each through any of the engine's execution
   strategies unchanged. *)
type nupdate_stmt =
  | N_insert of cquery * Ast.insert_pos * cquery
  | N_delete of cquery
  | N_replace_node of cquery * cquery  (** target, source *)
  | N_replace_value of cquery * cquery  (** target, source *)
  | N_rename of cquery * cquery  (** target, name expression *)

let normalize_update (u : Ast.update_script) : nupdate_stmt list =
  let q expr = normalize_query { Ast.prolog = u.Ast.uprolog; main = expr } in
  List.map
    (function
      | Ast.Insert (src, pos, tgt) -> N_insert (q src, pos, q tgt)
      | Ast.Delete tgt -> N_delete (q tgt)
      | Ast.Replace_node (tgt, src) -> N_replace_node (q tgt, q src)
      | Ast.Replace_value (tgt, src) -> N_replace_value (q tgt, q src)
      | Ast.Rename (tgt, name) -> N_rename (q tgt, q name))
    u.Ast.stmts
