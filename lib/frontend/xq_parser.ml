(* A scannerless recursive-descent parser for the XQuery subset in ast.ml.

   XQuery lexing is context dependent: "*" is a wildcard in step position
   and multiplication in operator position, and "<" starts a direct element
   constructor in operand position but a comparison in operator position.
   A scannerless parser encodes those contexts directly in the call sites,
   which keeps the grammar faithful without lexer state machines. *)

open Xqc_xml
open Xqc_types

exception Syntax_error of { position : int; message : string }

type state = { src : string; mutable pos : int; len : int }

let fail st fmt =
  Printf.ksprintf
    (fun message -> raise (Syntax_error { position = st.pos; message }))
    fmt

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < st.len then Some st.src.[st.pos + 1] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

(* Whitespace and (: nested comments :). *)
let rec skip_ws st =
  while
    st.pos < st.len
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st 1
  done;
  if looking_at st "(:" then (
    advance st 2;
    let depth = ref 1 in
    while !depth > 0 do
      if st.pos >= st.len then fail st "unterminated comment"
      else if looking_at st "(:" then (incr depth; advance st 2)
      else if looking_at st ":)" then (decr depth; advance st 2)
      else advance st 1
    done;
    skip_ws st)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'
let is_digit c = c >= '0' && c <= '9'

(* An NCName, optionally prefixed (foo:bar).  "::" is never swallowed. *)
let read_qname st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st 1
  | _ -> fail st "expected a name");
  while st.pos < st.len && is_name_char st.src.[st.pos] do
    advance st 1
  done;
  if
    st.pos < st.len
    && st.src.[st.pos] = ':'
    && st.pos + 1 < st.len
    && is_name_start st.src.[st.pos + 1]
  then (
    advance st 1;
    while st.pos < st.len && is_name_char st.src.[st.pos] do
      advance st 1
    done);
  String.sub st.src start (st.pos - start)

(* Does a whole word [w] occur at the cursor?  Does not consume. *)
let at_word st w =
  looking_at st w
  && (st.pos + String.length w >= st.len
     || not (is_name_char st.src.[st.pos + String.length w]
            || st.src.[st.pos + String.length w] = ':'))

let eat_word st w =
  if at_word st w then (
    advance st (String.length w);
    skip_ws st;
    true)
  else false

let expect_word st w = if not (eat_word st w) then fail st "expected %S" w

let expect_char st c =
  match peek st with
  | Some c' when c' = c ->
      advance st 1;
      skip_ws st
  | Some c' -> fail st "expected %C, found %C" c c'
  | None -> fail st "expected %C, found end of input" c

let eat_char st c =
  match peek st with
  | Some c' when c' = c ->
      advance st 1;
      skip_ws st;
      true
  | Some _ | None -> false

(* A symbolic token like "//" or "<=", longest match first at call site. *)
let eat_sym st s =
  if looking_at st s then (
    advance st (String.length s);
    skip_ws st;
    true)
  else false

let read_string_literal st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st 1; q
    | _ -> fail st "expected a string literal"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some c when c = quote ->
        advance st 1;
        (* doubled quote is an escaped quote *)
        if peek st = Some quote then (Buffer.add_char buf quote; advance st 1; go ())
    | Some '&' ->
        (* reuse the XML entity decoder for &amp; etc. *)
        let sub = { Xml_parser.src = st.src; pos = st.pos; len = st.len } in
        (try Buffer.add_string buf (Xml_parser.decode_entity sub)
         with Xml_parser.Parse_error _ -> fail st "bad entity in string literal");
        st.pos <- sub.Xml_parser.pos;
        go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  skip_ws st;
  Buffer.contents buf

let read_number st =
  let start = st.pos in
  while st.pos < st.len && is_digit st.src.[st.pos] do
    advance st 1
  done;
  let is_decimal =
    st.pos < st.len && st.src.[st.pos] = '.' && st.pos + 1 < st.len
    && is_digit st.src.[st.pos + 1]
  in
  if is_decimal then (
    advance st 1;
    while st.pos < st.len && is_digit st.src.[st.pos] do
      advance st 1
    done);
  let is_double =
    st.pos < st.len && (st.src.[st.pos] = 'e' || st.src.[st.pos] = 'E')
  in
  if is_double then (
    advance st 1;
    (match peek st with Some ('+' | '-') -> advance st 1 | _ -> ());
    while st.pos < st.len && is_digit st.src.[st.pos] do
      advance st 1
    done);
  let text = String.sub st.src start (st.pos - start) in
  skip_ws st;
  if is_double then Atomic.Double (float_of_string text)
  else if is_decimal then Atomic.Decimal (float_of_string text)
  else Atomic.Integer (int_of_string text)

(* ------------------------------------------------------------------ *)
(* Sequence types                                                      *)
(* ------------------------------------------------------------------ *)

let atomic_type_of_name st name =
  match Atomic.type_name_of_string name with
  | Some tn -> tn
  | None -> fail st "unknown atomic type %s" name

(* element(name-or-*, Type) / attribute(...) argument lists. *)
let parse_kind_args st =
  if eat_char st ')' then (None, None)
  else
    let name = if eat_sym st "*" then None else Some (read_qname st) in
    skip_ws st;
    let ty =
      if eat_char st ',' then (
        let t = read_qname st in
        skip_ws st;
        Some t)
      else None
    in
    expect_char st ')';
    (name, ty)

let rec parse_item_type st : Seqtype.item_type =
  if eat_word st "item" then (expect_char st '('; expect_char st ')'; Seqtype.It_item)
  else if eat_word st "node" then (expect_char st '('; expect_char st ')'; Seqtype.It_node)
  else if eat_word st "text" then (expect_char st '('; expect_char st ')'; Seqtype.It_text)
  else if eat_word st "comment" then (expect_char st '('; expect_char st ')'; Seqtype.It_comment)
  else if eat_word st "processing-instruction" then (
    expect_char st '(';
    (if not (eat_char st ')') then (
       let _ = read_qname st in
       skip_ws st;
       expect_char st ')'));
    Seqtype.It_pi)
  else if eat_word st "document-node" then (
    expect_char st '(';
    (if not (eat_char st ')') then (
       let _ = parse_item_type st in
       expect_char st ')'));
    Seqtype.It_document)
  else if eat_word st "element" then (
    expect_char st '(';
    let name, ty = parse_kind_args st in
    Seqtype.It_element (name, ty))
  else if eat_word st "attribute" then (
    expect_char st '(';
    let name, ty = parse_kind_args st in
    Seqtype.It_attribute (name, ty))
  else
    let name = read_qname st in
    skip_ws st;
    Seqtype.It_atomic (atomic_type_of_name st name)

and parse_sequence_type st : Seqtype.t =
  if eat_word st "empty-sequence" then (
    expect_char st '(';
    expect_char st ')';
    Seqtype.Empty_sequence)
  else
    let it = parse_item_type st in
    if eat_sym st "?" then Seqtype.Occ (it, Seqtype.Zero_or_one)
    else if eat_sym st "+" then Seqtype.Occ (it, Seqtype.One_or_more)
    else if
      (* "*" is an occurrence indicator only if not beginning an operand *)
      peek st = Some '*'
    then (
      advance st 1;
      skip_ws st;
      Seqtype.Occ (it, Seqtype.Zero_or_more))
    else Seqtype.Occ (it, Seqtype.Exactly_one)

let parse_single_type st =
  let name = read_qname st in
  skip_ws st;
  let tn = atomic_type_of_name st name in
  let optional = eat_sym st "?" in
  (tn, optional)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let axis_of_word = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "attribute" -> Some Ast.Attribute_axis
  | "self" -> Some Ast.Self
  | "parent" -> Some Ast.Parent
  | "ancestor" -> Some Ast.Ancestor
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | "following-sibling" -> Some Ast.Following_sibling
  | "preceding-sibling" -> Some Ast.Preceding_sibling
  | _ -> None

let kind_test_keywords =
  [ "node"; "text"; "comment"; "processing-instruction"; "document-node"; "element"; "attribute" ]

let reserved_function_names =
  [ "if"; "typeswitch"; "item"; "node"; "text"; "comment"; "document-node";
    "element"; "attribute"; "processing-instruction"; "empty-sequence" ]

let rec parse_expr st : Ast.expr =
  let first = parse_expr_single st in
  if peek st = Some ',' then (
    let acc = ref [ first ] in
    while eat_char st ',' do
      acc := parse_expr_single st :: !acc
    done;
    Ast.Sequence_expr (List.rev !acc))
  else first

and parse_expr_single st : Ast.expr =
  skip_ws st;
  if (at_word st "for" || at_word st "let") && next_nonword_is st '$' then
    parse_flwor st
  else if (at_word st "some" || at_word st "every") && next_nonword_is st '$' then
    parse_quantified st
  else if at_word st "if" && next_nonword_is st '(' then parse_if st
  else if at_word st "typeswitch" && next_nonword_is st '(' then parse_typeswitch st
  else parse_or_expr st

(* Is the next char after the keyword (and whitespace) equal to [c]?  Used
   to disambiguate keywords from element names in step position. *)
and next_nonword_is st c =
  let save = st.pos in
  let _ = read_qname st in
  skip_ws st;
  let r = peek st = Some c in
  st.pos <- save;
  r

and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    skip_ws st;
    if at_word st "for" && next_nonword_is st '$' then (
      expect_word st "for";
      parse_for_bindings ();
      clause_loop ())
    else if at_word st "let" && next_nonword_is st '$' then (
      expect_word st "let";
      parse_let_bindings ();
      clause_loop ())
    else if at_word st "where" then (
      expect_word st "where";
      clauses := Ast.Where_clause (parse_expr_single st) :: !clauses;
      clause_loop ())
  and parse_for_bindings () =
    let rec one () =
      expect_char st '$';
      let var = read_qname st in
      skip_ws st;
      let astype = if eat_word st "as" then Some (parse_sequence_type st) else None in
      let at_var =
        if eat_word st "at" then (
          expect_char st '$';
          let v = read_qname st in
          skip_ws st;
          Some v)
        else None
      in
      expect_word st "in";
      let source = parse_expr_single st in
      clauses := Ast.For_clause { var; at_var; astype; source } :: !clauses;
      if eat_char st ',' then one ()
    in
    one ()
  and parse_let_bindings () =
    let rec one () =
      expect_char st '$';
      let var = read_qname st in
      skip_ws st;
      let astype = if eat_word st "as" then Some (parse_sequence_type st) else None in
      if not (eat_sym st ":=") then fail st "expected := in let clause";
      let value = parse_expr_single st in
      clauses := Ast.Let_clause { var; astype; value } :: !clauses;
      if eat_char st ',' then one ()
    in
    one ()
  in
  clause_loop ();
  let order_specs =
    if at_word st "order" then (
      expect_word st "order";
      expect_word st "by";
      let rec specs acc =
        let key = parse_expr_single st in
        let dir =
          if eat_word st "descending" then Ast.Descending
          else (
            let _ = eat_word st "ascending" in
            Ast.Ascending)
        in
        let empty =
          if eat_word st "empty" then
            if eat_word st "greatest" then Ast.Empty_greatest
            else (
              expect_word st "least";
              Ast.Empty_least)
          else Ast.Empty_least
        in
        let acc = { Ast.key; dir; empty } :: acc in
        if eat_char st ',' then specs acc else List.rev acc
      in
      specs [])
    else if at_word st "stable" then (
      expect_word st "stable";
      expect_word st "order";
      expect_word st "by";
      let key = parse_expr_single st in
      [ { Ast.key; dir = Ast.Ascending; empty = Ast.Empty_least } ])
    else []
  in
  expect_word st "return";
  let body = parse_expr_single st in
  Ast.Flwor (List.rev !clauses, order_specs, body)

and parse_quantified st =
  let quant =
    if eat_word st "some" then Ast.Some_quant
    else (
      expect_word st "every";
      Ast.Every_quant)
  in
  let rec bindings acc =
    expect_char st '$';
    let var = read_qname st in
    skip_ws st;
    (* optional "as T" in quantifier bindings: accepted and checked
       dynamically via the for-clause type assertion *)
    let _ = if eat_word st "as" then Some (parse_sequence_type st) else None in
    expect_word st "in";
    let source = parse_expr_single st in
    let acc = (var, source) :: acc in
    if eat_char st ',' then bindings acc else List.rev acc
  in
  let binds = bindings [] in
  expect_word st "satisfies";
  let body = parse_expr_single st in
  Ast.Quantified (quant, binds, body)

and parse_if st =
  expect_word st "if";
  expect_char st '(';
  let cond = parse_expr st in
  expect_char st ')';
  expect_word st "then";
  let then_ = parse_expr_single st in
  expect_word st "else";
  let else_ = parse_expr_single st in
  Ast.If_expr (cond, then_, else_)

and parse_typeswitch st =
  expect_word st "typeswitch";
  expect_char st '(';
  let scrutinee = parse_expr st in
  expect_char st ')';
  let rec cases acc =
    if at_word st "case" then (
      expect_word st "case";
      let case_var =
        if peek st = Some '$' then (
          advance st 1;
          let v = read_qname st in
          skip_ws st;
          expect_word st "as";
          Some v)
        else None
      in
      let case_type = parse_sequence_type st in
      expect_word st "return";
      let case_body = parse_expr_single st in
      cases ({ Ast.case_var; case_type; case_body } :: acc))
    else List.rev acc
  in
  let cases = cases [] in
  expect_word st "default";
  let default_var =
    if peek st = Some '$' then (
      advance st 1;
      let v = read_qname st in
      skip_ws st;
      Some v)
    else None
  in
  expect_word st "return";
  let default_body = parse_expr_single st in
  Ast.Typeswitch (scrutinee, cases, (default_var, default_body))

and parse_or_expr st =
  let lhs = parse_and_expr st in
  if at_word st "or" && not (next_word_breaks_operand st) then (
    expect_word st "or";
    Ast.Or_expr (lhs, parse_or_expr st))
  else lhs

and next_word_breaks_operand _st = false

and parse_and_expr st =
  let lhs = parse_comparison st in
  if at_word st "and" then (
    expect_word st "and";
    Ast.And_expr (lhs, parse_and_expr st))
  else lhs

and parse_comparison st =
  let lhs = parse_range st in
  skip_ws st;
  let mk g = Ast.General_comp (g, lhs, parse_range st) in
  let mkv v = Ast.Value_comp (v, lhs, parse_range st) in
  let mkn n = Ast.Node_comp (n, lhs, parse_range st) in
  if eat_word st "eq" then mkv Ast.Val_eq
  else if eat_word st "ne" then mkv Ast.Val_ne
  else if eat_word st "lt" then mkv Ast.Val_lt
  else if eat_word st "le" then mkv Ast.Val_le
  else if eat_word st "gt" then mkv Ast.Val_gt
  else if eat_word st "ge" then mkv Ast.Val_ge
  else if eat_word st "is" then mkn Ast.Node_is
  else if eat_sym st "<<" then mkn Ast.Node_before
  else if eat_sym st ">>" then mkn Ast.Node_after
  else if eat_sym st "!=" then mk Ast.Gen_ne
  else if eat_sym st "<=" then mk Ast.Gen_le
  else if eat_sym st ">=" then mk Ast.Gen_ge
  else if eat_sym st "=" then mk Ast.Gen_eq
  else if eat_sym st "<" then mk Ast.Gen_lt
  else if eat_sym st ">" then mk Ast.Gen_gt
  else lhs

and parse_range st =
  let lhs = parse_additive st in
  if at_word st "to" then (
    expect_word st "to";
    Ast.Range (lhs, parse_additive st))
  else lhs

and parse_additive st =
  let rec loop lhs =
    skip_ws st;
    if eat_sym st "+" then loop (Ast.Arith (Ast.Add, lhs, parse_multiplicative st))
    else if eat_sym st "-" then loop (Ast.Arith (Ast.Sub, lhs, parse_multiplicative st))
    else lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    skip_ws st;
    if eat_sym st "*" then loop (Ast.Arith (Ast.Mul, lhs, parse_union st))
    else if at_word st "div" then (
      expect_word st "div";
      loop (Ast.Arith (Ast.Div, lhs, parse_union st)))
    else if at_word st "idiv" then (
      expect_word st "idiv";
      loop (Ast.Arith (Ast.Idiv, lhs, parse_union st)))
    else if at_word st "mod" then (
      expect_word st "mod";
      loop (Ast.Arith (Ast.Mod, lhs, parse_union st)))
    else lhs
  in
  loop (parse_union st)

and parse_union st =
  let rec loop lhs =
    skip_ws st;
    if at_word st "union" then (
      expect_word st "union";
      loop (Ast.Union_expr (lhs, parse_intersect st)))
    else if peek st = Some '|' && peek2 st <> Some '|' then (
      advance st 1;
      skip_ws st;
      loop (Ast.Union_expr (lhs, parse_intersect st)))
    else lhs
  in
  loop (parse_intersect st)

and parse_intersect st =
  let rec loop lhs =
    skip_ws st;
    if at_word st "intersect" then (
      expect_word st "intersect";
      loop (Ast.Intersect_expr (lhs, parse_instanceof st)))
    else if at_word st "except" then (
      expect_word st "except";
      loop (Ast.Except_expr (lhs, parse_instanceof st)))
    else lhs
  in
  loop (parse_instanceof st)

and parse_instanceof st =
  let lhs = parse_treat st in
  if at_word st "instance" then (
    expect_word st "instance";
    expect_word st "of";
    Ast.Instance_of (lhs, parse_sequence_type st))
  else lhs

and parse_treat st =
  let lhs = parse_castable st in
  if at_word st "treat" then (
    expect_word st "treat";
    expect_word st "as";
    Ast.Treat_as (lhs, parse_sequence_type st))
  else lhs

and parse_castable st =
  let lhs = parse_cast st in
  if at_word st "castable" then (
    expect_word st "castable";
    expect_word st "as";
    let tn, opt = parse_single_type st in
    Ast.Castable_as (lhs, tn, opt))
  else lhs

and parse_cast st =
  let lhs = parse_unary st in
  if at_word st "cast" then (
    expect_word st "cast";
    expect_word st "as";
    let tn, opt = parse_single_type st in
    Ast.Cast_as (lhs, tn, opt))
  else lhs

and parse_unary st =
  skip_ws st;
  if eat_sym st "-" then Ast.Unary_minus (parse_unary st)
  else if eat_sym st "+" then parse_unary st
  else parse_value_expr st

and parse_value_expr st =
  if at_word st "validate" then (
    expect_word st "validate";
    let _ = eat_word st "strict" || eat_word st "lax" in
    expect_char st '{';
    let e = parse_expr st in
    expect_char st '}';
    Ast.Validate_expr e)
  else parse_path_expr st

and parse_path_expr st =
  skip_ws st;
  if looking_at st "//" then (
    advance st 2;
    skip_ws st;
    let steps = parse_relative_steps st in
    Ast.Path
      ( Ast.Root,
        { Ast.axis = Ast.Descendant_or_self; test = Ast.Kind_test Seqtype.It_node; predicates = [] }
        :: steps ))
  else if peek st = Some '/' && peek2 st <> Some '/' then (
    advance st 1;
    skip_ws st;
    if starts_step st then Ast.Path (Ast.Root, parse_relative_steps st)
    else Ast.Root)
  else
    let first = parse_step_expr st in
    if looking_at st "/" then
      match first with
      | Ast.Path (origin, steps) ->
          let more = parse_path_continuation st in
          Ast.Path (origin, steps @ more)
      | origin ->
          let more = parse_path_continuation st in
          Ast.Path (origin, more)
    else first

and parse_path_continuation st =
  let steps = ref [] in
  let rec go () =
    if looking_at st "//" then (
      advance st 2;
      skip_ws st;
      steps :=
        { Ast.axis = Ast.Descendant_or_self; test = Ast.Kind_test Seqtype.It_node; predicates = [] }
        :: !steps;
      steps := parse_axis_step st :: !steps;
      go ())
    else if peek st = Some '/' then (
      advance st 1;
      skip_ws st;
      steps := parse_axis_step st :: !steps;
      go ())
  in
  go ();
  List.rev !steps

(* Could the cursor start an axis step? *)
and starts_step st =
  match peek st with
  | Some '@' | Some '*' -> true
  | Some '.' -> looking_at st ".."
  | Some c when is_name_start c -> true
  | Some _ | None -> false

(* One step in a relative path: either an axis step, or (for the first
   step only, handled by the caller) a primary expression. *)
and parse_relative_steps st =
  let first = parse_axis_step st in
  first :: parse_path_continuation st

and parse_predicates st =
  let rec go acc =
    skip_ws st;
    if peek st = Some '[' then (
      advance st 1;
      skip_ws st;
      let p = parse_expr st in
      expect_char st ']';
      go (p :: acc))
    else List.rev acc
  in
  go []

and parse_axis_step st : Ast.step =
  skip_ws st;
  if looking_at st ".." then (
    advance st 2;
    skip_ws st;
    let predicates = parse_predicates st in
    { Ast.axis = Ast.Parent; test = Ast.Kind_test Seqtype.It_node; predicates })
  else if peek st = Some '@' then (
    advance st 1;
    let test =
      if peek st = Some '*' then (
        advance st 1;
        Ast.Name_test "*")
      else Ast.Name_test (read_qname st)
    in
    skip_ws st;
    let predicates = parse_predicates st in
    { Ast.axis = Ast.Attribute_axis; test; predicates })
  else
    let axis, explicit_axis =
      let save = st.pos in
      match peek st with
      | Some c when is_name_start c -> (
          let w = read_qname st in
          match axis_of_word w with
          | Some a when looking_at st "::" ->
              advance st 2;
              (a, true)
          | Some _ | None ->
              st.pos <- save;
              (Ast.Child, false))
      | Some _ | None -> (Ast.Child, false)
    in
    let test = parse_node_test st in
    skip_ws st;
    let predicates = parse_predicates st in
    let axis =
      (* @foo handled above; attribute::foo via explicit axis; a kind test
         attribute(...) on the child axis means the attribute axis *)
      if (not explicit_axis) && test_selects_attributes test then Ast.Attribute_axis
      else axis
    in
    { Ast.axis; test; predicates }

and test_selects_attributes = function
  | Ast.Kind_test (Seqtype.It_attribute _) -> true
  | Ast.Kind_test _ | Ast.Name_test _ -> false

and parse_node_test st : Ast.node_test =
  if peek st = Some '*' then (
    advance st 1;
    skip_ws st;
    Ast.Name_test "*")
  else
    let save = st.pos in
    let name = read_qname st in
    if List.mem name kind_test_keywords && (skip_ws st; peek st = Some '(') then (
      st.pos <- save;
      Ast.Kind_test (parse_item_type st))
    else Ast.Name_test name

and parse_step_expr st : Ast.expr =
  skip_ws st;
  match peek st with
  | Some '$' | Some '(' | Some '"' | Some '\'' -> parse_filter_expr st
  | Some '<' -> parse_filter_expr st
  | Some c when is_digit c -> parse_filter_expr st
  | Some '.' when not (looking_at st "..") -> parse_filter_expr st
  | Some '@' -> step_as_expr st
  | Some '*' -> step_as_expr st
  | Some '.' (* ".." *) -> step_as_expr st
  | Some c when is_name_start c ->
      (* name( => function call or kind test; text{/comment{ => computed
         constructor; else an axis step *)
      let save = st.pos in
      let name = read_qname st in
      skip_ws st;
      let after_name_paren = peek st = Some '(' in
      let after_name_brace = peek st = Some '{' in
      st.pos <- save;
      if List.mem name kind_test_keywords && after_name_paren then step_as_expr st
      else if after_name_paren && not (List.mem name reserved_function_names) then
        parse_filter_expr st
      else if after_name_brace && List.mem name [ "text"; "comment"; "document" ] then
        parse_filter_expr st
      else if
        (* computed constructor with a static name: element nm { ... } *)
        List.mem name [ "element"; "attribute"; "processing-instruction" ]
        && (not after_name_paren)
        && computed_constructor_follows st
      then parse_filter_expr st
      else step_as_expr st
  | Some c -> fail st "unexpected character %C in expression" c
  | None -> fail st "unexpected end of input"

(* Is the cursor at "name qname {"? (a computed constructor with a static
   name, e.g. "element foo { ... }") *)
and computed_constructor_follows st =
  let save = st.pos in
  let r =
    match
      (let _ = read_qname st in
       skip_ws st;
       match peek st with
       | Some c when is_name_start c ->
           let _ = read_qname st in
           skip_ws st;
           peek st = Some '{'
       | _ -> false)
    with
    | b -> b
    | exception Syntax_error _ -> false
  in
  st.pos <- save;
  r

and step_as_expr st =
  let step = parse_axis_step st in
  Ast.Path (Ast.Context_item, [ step ])

and parse_filter_expr st =
  let primary = parse_primary st in
  let predicates = parse_predicates st in
  if predicates = [] then primary else Ast.Filter (primary, predicates)

and parse_primary st : Ast.expr =
  skip_ws st;
  match peek st with
  | Some '$' ->
      advance st 1;
      let v = read_qname st in
      skip_ws st;
      Ast.Var v
  | Some '(' ->
      advance st 1;
      skip_ws st;
      if eat_char st ')' then Ast.Sequence_expr []
      else (
        let e = parse_expr st in
        expect_char st ')';
        e)
  | Some ('"' | '\'') -> Ast.Literal (Atomic.String (read_string_literal st))
  | Some c when is_digit c -> Ast.Literal (read_number st)
  | Some '.' ->
      advance st 1;
      skip_ws st;
      Ast.Context_item
  | Some '<' -> parse_direct_constructor st
  | Some c when is_name_start c -> (
      let save = st.pos in
      let name = read_qname st in
      skip_ws st;
      let enclosed () =
        expect_char st '{';
        let e = parse_expr st in
        expect_char st '}';
        e
      in
      if peek st = Some '{' then (
        (* computed constructors with implicit content: text { ... } *)
        match name with
        | "text" -> Ast.Text_constructor (enclosed ())
        | "comment" -> Ast.Comment_constructor (enclosed ())
        | "document" -> Ast.Document_constructor (enclosed ())
        | _ ->
            st.pos <- save;
            fail st "unexpected '{' after name %s" name)
      else if
        List.mem name [ "element"; "attribute"; "processing-instruction" ]
        && (match peek st with Some c when is_name_start c -> true | _ -> false)
      then (
        (* computed constructor with a static name: element nm { e } *)
        let cname = read_qname st in
        skip_ws st;
        let body = enclosed () in
        match name with
        | "element" -> Ast.Computed_element (cname, body)
        | "attribute" -> Ast.Computed_attribute (cname, body)
        | _ -> Ast.Pi_constructor (cname, body))
      else if peek st = Some '(' then (
        advance st 1;
        skip_ws st;
        let args =
          if eat_char st ')' then []
          else (
            let rec go acc =
              let a = parse_expr_single st in
              if eat_char st ',' then go (a :: acc)
              else (
                expect_char st ')';
                List.rev (a :: acc))
            in
            go [])
        in
        match name with
        | "element" | "attribute" -> fail st "computed constructors are not supported"
        | _ -> Ast.Call (name, args))
      else (
        st.pos <- save;
        fail st "unexpected name %s in primary position" name))
  | Some c -> fail st "unexpected character %C" c
  | None -> fail st "unexpected end of input"

(* ------------------------------------------------------------------ *)
(* Direct constructors                                                 *)
(* ------------------------------------------------------------------ *)

and parse_direct_constructor st : Ast.expr =
  (* pos is on '<' *)
  advance st 1;
  let name = read_qname st in
  let attrs = parse_constructor_attrs st in
  skip_ws_in_tag st;
  if looking_at st "/>" then (
    advance st 2;
    skip_ws st;
    Ast.Elem_constructor (name, attrs, []))
  else (
    (match peek st with
    | Some '>' -> advance st 1
    | _ -> fail st "malformed start tag <%s" name);
    let content = parse_constructor_content st name in
    skip_ws st;
    Ast.Elem_constructor (name, attrs, content))

and skip_ws_in_tag st =
  while
    st.pos < st.len
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st 1
  done

and parse_constructor_attrs st =
  let rec go acc =
    skip_ws_in_tag st;
    match peek st with
    | Some c when is_name_start c ->
        let name = read_qname st in
        skip_ws_in_tag st;
        (match peek st with
        | Some '=' -> advance st 1
        | _ -> fail st "expected '=' in attribute %s" name);
        skip_ws_in_tag st;
        let value = parse_attr_value_template st in
        go ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

and parse_attr_value_template st : Ast.attr_value =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st 1; q
    | _ -> fail st "expected a quoted attribute value"
  in
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then (
      parts := Ast.Attr_text (Buffer.contents buf) :: !parts;
      Buffer.clear buf)
  in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote ->
        advance st 1;
        if peek st = Some quote then (Buffer.add_char buf quote; advance st 1; go ())
    | Some '{' when peek2 st = Some '{' -> Buffer.add_char buf '{'; advance st 2; go ()
    | Some '}' when peek2 st = Some '}' -> Buffer.add_char buf '}'; advance st 2; go ()
    | Some '{' ->
        advance st 1;
        skip_ws st;
        flush_text ();
        let e = parse_expr st in
        (match peek st with
        | Some '}' -> advance st 1
        | _ -> fail st "expected '}' in attribute value template");
        parts := Ast.Attr_expr e :: !parts;
        go ()
    | Some '&' ->
        let sub = { Xml_parser.src = st.src; pos = st.pos; len = st.len } in
        (try Buffer.add_string buf (Xml_parser.decode_entity sub)
         with Xml_parser.Parse_error _ -> fail st "bad entity in attribute value");
        st.pos <- sub.Xml_parser.pos;
        go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  flush_text ();
  Ast.Attr_parts (List.rev !parts)

and parse_constructor_content st elem_name : Ast.expr list =
  let items = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then (
      items := Ast.Text_content (Buffer.contents buf) :: !items;
      Buffer.clear buf)
  in
  let rec go () =
    if st.pos >= st.len then fail st "unterminated element constructor <%s>" elem_name
    else if looking_at st "</" then (
      flush_text ();
      advance st 2;
      let close = read_qname st in
      if not (String.equal close elem_name) then
        fail st "mismatched </%s> for <%s>" close elem_name;
      skip_ws_in_tag st;
      match peek st with
      | Some '>' -> advance st 1
      | _ -> fail st "malformed end tag </%s>" close)
    else if looking_at st "<!--" then (
      advance st 4;
      let start = st.pos in
      while not (looking_at st "-->") && st.pos < st.len do
        advance st 1
      done;
      let body = String.sub st.src start (st.pos - start) in
      if not (looking_at st "-->") then fail st "unterminated comment";
      advance st 3;
      flush_text ();
      items := Ast.Comment_constructor (Ast.Literal (Atomic.String body)) :: !items;
      go ())
    else if peek st = Some '<' then (
      flush_text ();
      items := parse_direct_constructor st :: !items;
      go ())
    else if peek st = Some '{' && peek2 st = Some '{' then (
      Buffer.add_char buf '{';
      advance st 2;
      go ())
    else if peek st = Some '}' && peek2 st = Some '}' then (
      Buffer.add_char buf '}';
      advance st 2;
      go ())
    else if peek st = Some '{' then (
      advance st 1;
      skip_ws st;
      flush_text ();
      let e = parse_expr st in
      (match peek st with
      | Some '}' -> advance st 1
      | _ -> fail st "expected '}' in element content");
      items := Ast.Enclosed e :: !items;
      go ())
    else if peek st = Some '&' then (
      let sub = { Xml_parser.src = st.src; pos = st.pos; len = st.len } in
      (try Buffer.add_string buf (Xml_parser.decode_entity sub)
       with Xml_parser.Parse_error _ -> fail st "bad entity in element content");
      st.pos <- sub.Xml_parser.pos;
      go ())
    else (
      Buffer.add_char buf (Option.get (peek st));
      advance st 1;
      go ())
  in
  go ();
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Prolog and entry points                                             *)
(* ------------------------------------------------------------------ *)

let parse_prolog st =
  let decls = ref [] in
  let rec go () =
    skip_ws st;
    if at_word st "declare" then (
      expect_word st "declare";
      if eat_word st "function" then (
        let fname = read_qname st in
        skip_ws st;
        expect_char st '(';
        let params =
          if eat_char st ')' then []
          else (
            let rec one acc =
              expect_char st '$';
              let v = read_qname st in
              skip_ws st;
              let ty = if eat_word st "as" then Some (parse_sequence_type st) else None in
              let acc = (v, ty) :: acc in
              if eat_char st ',' then one acc
              else (
                expect_char st ')';
                List.rev acc)
            in
            one [])
        in
        let return_type = if eat_word st "as" then Some (parse_sequence_type st) else None in
        expect_char st '{';
        let body = parse_expr st in
        expect_char st '}';
        expect_char st ';';
        decls := Ast.Function_decl { Ast.fname; params; return_type; body } :: !decls;
        go ())
      else if eat_word st "variable" then (
        expect_char st '$';
        let v = read_qname st in
        skip_ws st;
        let _ = if eat_word st "as" then Some (parse_sequence_type st) else None in
        if not (eat_sym st ":=") then fail st "expected := in variable declaration";
        let e = parse_expr_single st in
        expect_char st ';';
        decls := Ast.Variable_decl (v, e) :: !decls;
        go ())
      else if eat_word st "namespace" then (
        (* accepted and ignored: we do not resolve namespaces *)
        let _ = read_qname st in
        skip_ws st;
        if not (eat_sym st "=") then fail st "expected = in namespace declaration";
        let _ = read_string_literal st in
        expect_char st ';';
        go ())
      else fail st "unsupported declaration")
  in
  go ();
  List.rev !decls

let parse_query (src : string) : Ast.query =
  let st = { src; pos = 0; len = String.length src } in
  skip_ws st;
  let prolog = parse_prolog st in
  let main = parse_expr st in
  skip_ws st;
  if st.pos < st.len then fail st "trailing input after query";
  { Ast.prolog; main }

let parse_expression (src : string) : Ast.expr = (parse_query src).Ast.main

(* ------------------------------------------------------------------ *)
(* Update scripts (XQuery Update Facility subset)                      *)
(* ------------------------------------------------------------------ *)

(* UpdateStmt ::= "insert" ("node"|"nodes") ExprSingle
                    ("into" | "as" ("first"|"last") "into" | "before" | "after")
                    ExprSingle
              | "delete" ("node"|"nodes") ExprSingle
              | "replace" "value" "of" "node" ExprSingle "with" ExprSingle
              | "replace" "node" ExprSingle "with" ExprSingle
              | "rename" "node" ExprSingle "as" ExprSingle

   Source/target positions are ordinary ExprSingles: the W3C "updating
   expression" stratification collapses in this subset to updates being
   statement-level only, so the expression grammar is reused unchanged
   (no keyword below clashes with an operator). *)
let parse_update_stmt st : Ast.update_stmt =
  skip_ws st;
  if eat_word st "insert" then (
    if not (eat_word st "node" || eat_word st "nodes") then
      fail st "expected \"node\" or \"nodes\" after insert";
    let src = parse_expr_single st in
    let pos =
      if eat_word st "into" then Ast.Into
      else if eat_word st "as" then (
        let first =
          if eat_word st "first" then true
          else if eat_word st "last" then false
          else fail st "expected \"first\" or \"last\" after as"
        in
        expect_word st "into";
        if first then Ast.As_first_into else Ast.As_last_into)
      else if eat_word st "before" then Ast.Before
      else if eat_word st "after" then Ast.After
      else fail st "expected into / as first into / as last into / before / after"
    in
    let tgt = parse_expr_single st in
    Ast.Insert (src, pos, tgt))
  else if eat_word st "delete" then (
    if not (eat_word st "node" || eat_word st "nodes") then
      fail st "expected \"node\" or \"nodes\" after delete";
    Ast.Delete (parse_expr_single st))
  else if eat_word st "replace" then
    if eat_word st "value" then (
      expect_word st "of";
      expect_word st "node";
      let tgt = parse_expr_single st in
      expect_word st "with";
      Ast.Replace_value (tgt, parse_expr_single st))
    else (
      expect_word st "node";
      let tgt = parse_expr_single st in
      expect_word st "with";
      Ast.Replace_node (tgt, parse_expr_single st))
  else if eat_word st "rename" then (
    expect_word st "node";
    let tgt = parse_expr_single st in
    expect_word st "as";
    Ast.Rename (tgt, parse_expr_single st))
  else fail st "expected an update statement (insert/delete/replace/rename)"

let parse_update (src : string) : Ast.update_script =
  let st = { src; pos = 0; len = String.length src } in
  skip_ws st;
  let uprolog = parse_prolog st in
  let stmts = ref [ parse_update_stmt st ] in
  while eat_char st ',' do
    stmts := parse_update_stmt st :: !stmts
  done;
  skip_ws st;
  if st.pos < st.len then fail st "trailing input after update script";
  { Ast.uprolog; stmts = List.rev !stmts }
