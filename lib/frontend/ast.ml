(* Abstract syntax of the XQuery surface language (the subset documented in
   README.md: FLWOR, paths with predicates, quantifiers, typeswitch,
   constructors, user-defined functions, the full operator grammar). *)

open Xqc_xml
open Xqc_types

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Attribute_axis
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Attribute_axis -> "attribute"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

type node_test =
  | Name_test of string  (** "*" is the wildcard *)
  | Kind_test of Seqtype.item_type

let node_test_to_string = function
  | Name_test n -> n
  | Kind_test k -> Seqtype.item_type_to_string k

type general_op = Gen_eq | Gen_ne | Gen_lt | Gen_le | Gen_gt | Gen_ge
type value_op = Val_eq | Val_ne | Val_lt | Val_le | Val_gt | Val_ge
type node_op = Node_is | Node_before | Node_after
type arith_op = Add | Sub | Mul | Div | Idiv | Mod
type quantifier = Some_quant | Every_quant
type sort_dir = Ascending | Descending
type empty_order = Empty_greatest | Empty_least

type expr =
  | Literal of Atomic.t
  | Var of string
  | Context_item  (** "." *)
  | Sequence_expr of expr list  (** comma; [] is "()" *)
  | Flwor of flwor_clause list * order_spec list * expr
  | If_expr of expr * expr * expr
  | Quantified of quantifier * (string * expr) list * expr
  | Typeswitch of expr * ts_case list * (string option * expr)
  | Or_expr of expr * expr
  | And_expr of expr * expr
  | General_comp of general_op * expr * expr
  | Value_comp of value_op * expr * expr
  | Node_comp of node_op * expr * expr
  | Range of expr * expr  (** e1 to e2 *)
  | Arith of arith_op * expr * expr
  | Unary_minus of expr
  | Union_expr of expr * expr
  | Intersect_expr of expr * expr
  | Except_expr of expr * expr
  | Path of expr * step list  (** origin then steps; origin may be Root *)
  | Root  (** leading "/" — the root of the context node's tree *)
  | Filter of expr * expr list  (** primary[pred1][pred2] *)
  | Call of string * expr list
  | Elem_constructor of string * (string * attr_value) list * expr list
      (** direct: <name a="..">content</name>; content items are literal
          text ([Literal (String _)] wrapped in [Text_content]) or
          enclosed expressions *)
  | Enclosed of expr  (** { e } inside constructor content *)
  | Text_content of string  (** literal text inside constructor content *)
  | Text_constructor of expr  (** text { e } *)
  | Comment_constructor of expr
  | Pi_constructor of string * expr  (** processing-instruction name { e } *)
  | Document_constructor of expr  (** document { e } *)
  | Computed_element of string * expr  (** element name { e } *)
  | Computed_attribute of string * expr  (** attribute name { e } *)
  | Instance_of of expr * Seqtype.t
  | Treat_as of expr * Seqtype.t
  | Castable_as of expr * Atomic.type_name * bool  (** bool: "?" allowed *)
  | Cast_as of expr * Atomic.type_name * bool
  | Validate_expr of expr

and attr_value = Attr_parts of attr_part list
and attr_part = Attr_text of string | Attr_expr of expr

and flwor_clause =
  | For_clause of {
      var : string;
      at_var : string option;
      astype : Seqtype.t option;
      source : expr;
    }
  | Let_clause of { var : string; astype : Seqtype.t option; value : expr }
  | Where_clause of expr

and order_spec = { key : expr; dir : sort_dir; empty : empty_order }

and step = { axis : axis; test : node_test; predicates : expr list }

and ts_case = { case_var : string option; case_type : Seqtype.t; case_body : expr }

type function_def = {
  fname : string;
  params : (string * Seqtype.t option) list;
  return_type : Seqtype.t option;
  body : expr;
}

type prolog_decl =
  | Function_decl of function_def
  | Variable_decl of string * expr

type query = { prolog : prolog_decl list; main : expr }

(* ------------------------------------------------------------------ *)
(* Update scripts (XQuery Update Facility subset)                      *)
(* ------------------------------------------------------------------ *)

(* Where an [insert] places its source relative to the target. *)
type insert_pos =
  | Into  (** default: as last into *)
  | As_first_into
  | As_last_into
  | Before
  | After

let insert_pos_to_string = function
  | Into -> "into"
  | As_first_into -> "as first into"
  | As_last_into -> "as last into"
  | Before -> "before"
  | After -> "after"

(* One updating statement.  Source/target positions hold ordinary
   (evaluating) expressions; the W3C "updating expression" stratification
   reduces in this subset to: updates appear only at statement level. *)
type update_stmt =
  | Insert of expr * insert_pos * expr  (** insert node(s) SRC pos TGT *)
  | Delete of expr  (** delete node(s) TGT *)
  | Replace_node of expr * expr  (** replace node TGT with SRC *)
  | Replace_value of expr * expr  (** replace value of node TGT with SRC *)
  | Rename of expr * expr  (** rename node TGT as NAME *)

(* A comma-separated sequence of updating statements sharing one prolog:
   all statements are evaluated against the same snapshot, their pending
   updates merged and applied atomically (snapshot semantics). *)
type update_script = { uprolog : prolog_decl list; stmts : update_stmt list }
