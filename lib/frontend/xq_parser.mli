(** A scannerless recursive-descent parser for the XQuery subset of
    ast.ml.

    XQuery lexing is context dependent ("*" is a wildcard in step position
    and multiplication in operator position; "<" starts a constructor in
    operand position and a comparison in operator position); a scannerless
    parser encodes those contexts in its call sites. *)

exception Syntax_error of { position : int; message : string }

val parse_query : string -> Ast.query
(** Parse a complete query (prolog + main expression).
    @raise Syntax_error with a byte offset on malformed input. *)

val parse_expression : string -> Ast.expr
(** Parse a query and return its main expression (convenience for
    tests). *)

val parse_update : string -> Ast.update_script
(** Parse an update script: an optional prolog followed by one or more
    comma-separated XQUF statements (insert node / delete node /
    replace [value of] node / rename node).
    @raise Syntax_error with a byte offset on malformed input. *)
