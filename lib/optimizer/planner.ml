(* Cost-based physical planning: Algebra.plan -> Physical.t.

   The planner owns every execution-strategy decision the evaluator used
   to make at closure-compile or run time:

   - join algorithm and build side: a split equality predicate runs as a
     hash join (Figure 6) built on its estimated-smaller side, a split
     inequality as a sort join, anything else as a nested loop; the
     choice minimizes the cost model below, so tiny inputs may still run
     a nested loop even when a split exists;
   - index vs walk per axis step: name tests over the store-covered
     axes are marked [Index_scan] when the store is enabled (the store
     can still decline a particular tree at run time, degrading that
     node to a walk);
   - step fusion: descendant-or-self::node()/child::t chains fuse to
     descendant::t, and a maximal TreeJoin chain becomes one [PSteps]
     whose [ordered] flag records the static streaming-order condition;
   - streaming boundaries: positional selections become bounded
     take-while prefixes ([PStreamSelect]), fn:exists / fn:empty /
     fn:count / fn:subsequence over suitable chains become streaming /
     index-probing calls ([PCallStream]), and join and product build
     sides are cut with explicit [PMaterialize] markers.

   Cardinalities come from the Xqc_store statistics API — exact
   per-qname element/attribute counts from the interval indexes, spread
   over the number of indexed roots — with fixed fan-out and
   selectivity defaults where no index has been built.  Costs are
   abstract work units: roughly one unit per tuple or item moved, with
   a factor [nl_pair_cost] per nested-loop pair for the per-pair
   predicate closure, and n·log n for sorts. *)

open Xqc_frontend
open Xqc_algebra
open Algebra
module Promotion = Xqc_types.Promotion
module P = Physical
module Store = Xqc_store.Store
module Rel = Xqc_rel.Rel_algebra
module Lower = Xqc_rel_lower.Lower

type config = {
  force_join : P.join_algorithm option;
      (** override the cost-based algorithm choice for split predicates;
          an incompatible force (e.g. [Sort] on an equality) falls back
          to the always-sound nested loop *)
  par_degree : int;
      (** per-query partition budget from the shared domain pool (wired
          in by the driver — this library cannot see the runtime); 1
          disables partitioned annotations entirely *)
  par_threshold : float;
      (** estimated rows below which partitioning is not worth the task
          dispatch, when statistics exist to estimate with *)
}

(* The ambient threshold [default_config] (and the driver's
   [planner_config]) picks up: a ref so tests and benchmarks can force
   partitioned plans onto small documents without threading a config. *)
let default_par_threshold = ref 1000.

let default_config =
  { force_join = None; par_degree = 1; par_threshold = !default_par_threshold }

(* ------------------------------------------------------------------ *)
(* Cost-model constants                                                *)
(* ------------------------------------------------------------------ *)

let sel_select = 0.25  (* generic selection selectivity *)
let sel_eq = 0.1  (* equality join selectivity *)
let sel_ineq = 0.3  (* inequality join selectivity *)
let sel_ne = 0.9  (* != join selectivity *)
let nl_pair_cost = 3.0  (* predicate closure per nested-loop pair *)

let join_selectivity (op : Promotion.cmp_op) : float =
  match op with
  | Promotion.Eq -> sel_eq
  | Promotion.Ne -> sel_ne
  | Promotion.Lt | Promotion.Le | Promotion.Gt | Promotion.Ge -> sel_ineq

(* ------------------------------------------------------------------ *)
(* Statistics-fed step estimation                                      *)
(* ------------------------------------------------------------------ *)

(* Default fan-out per axis when no index statistics apply — also the
   per-input work factor of a walking step. *)
let walk_factor (axis : Ast.axis) : float =
  match axis with
  | Ast.Descendant | Ast.Descendant_or_self -> 10.
  | Ast.Child -> 3.
  | Ast.Attribute_axis | Ast.Self | Ast.Parent -> 1.
  | _ -> 2.

let indexed_roots () = max 1 (Store.stats ()).Store.st_roots

(* Estimated output cardinality of one axis step over [input_rows]
   context nodes.  Name tests consult the store's exact per-qname
   counts; the global count is averaged over the indexed roots (a
   context node holds at most one document's worth) and capped at the
   global total. *)
let step_rows (axis : Ast.axis) (test : Ast.node_test) (input_rows : float) :
    float =
  let counted get name =
    match get name with
    | Some c ->
        let total = float_of_int c in
        let per_root = total /. float_of_int (indexed_roots ()) in
        Some (Float.min total (Float.max 1. (input_rows *. per_root)))
    | None -> None
  in
  match (axis, test) with
  | (Ast.Descendant | Ast.Descendant_or_self), Ast.Name_test name -> (
      match counted Store.element_count name with
      | Some est -> est
      | None -> input_rows *. walk_factor axis)
  | Ast.Child, Ast.Name_test name -> (
      let fanout = input_rows *. walk_factor axis in
      match counted Store.element_count name with
      | Some est -> Float.min est fanout
      | None -> fanout)
  | Ast.Attribute_axis, Ast.Name_test name -> (
      match Store.attribute_count name with
      | Some c -> Float.min input_rows (float_of_int c)
      | None -> input_rows)
  | _ -> input_rows *. walk_factor axis

(* Store coverage of one step: which steps [Eval]'s indexed paths can
   serve at all.  Mirrors the axes of [Eval.indexed_axis_nodes]. *)
let index_available (axis : Ast.axis) (test : Ast.node_test) : bool =
  !Store.mode <> Store.Off
  &&
  match (test, axis) with
  | Ast.Name_test _, (Ast.Descendant | Ast.Descendant_or_self | Ast.Child) ->
      true
  | Ast.Name_test name, Ast.Attribute_axis -> not (String.equal name "*")
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Chain analysis (moved here from the evaluator)                      *)
(* ------------------------------------------------------------------ *)

(* descendant-or-self::node()/child::t ≡ descendant::t — the expansion of
   the // abbreviation.  Fusing the pair leaves a chain the ordered
   cursor can stream (a descendant step is legal in final position, the
   expanded form is not) and skips a full node()-walk either way. *)
let rec fuse_steps (steps : (Ast.axis * Ast.node_test) list) =
  match steps with
  | (Ast.Descendant_or_self, Ast.Kind_test Xqc_types.Seqtype.It_node)
    :: (Ast.Child, t)
    :: rest ->
      fuse_steps ((Ast.Descendant, t) :: rest)
  | s :: rest -> s :: fuse_steps rest
  | [] -> []

(* Decompose a chain of TreeJoin steps down to its source plan; steps are
   returned in application order (innermost first). *)
let chain_steps (p : plan) : (Ast.axis * Ast.node_test) list * plan =
  let rec go p =
    match p with
    | TreeJoin (axis, test, input) ->
        let steps, src = go input in
        (steps @ [ (axis, test) ], src)
    | _ -> ([], p)
  in
  let steps, src = go p in
  (fuse_steps steps, src)

(* A step chain is order-preserving when fed sorted, duplicate-free,
   mutually non-nesting nodes: child/attribute/self steps maintain that
   invariant (subtree spans of such nodes are disjoint and ordered, and
   siblings never nest), and a descendant step — whose output may nest —
   is only allowed as the last step, where sortedness and uniqueness
   still follow from the disjoint spans.  A single source node satisfies
   the invariant trivially; the ordered cursor checks that at runtime. *)
let ordered_chain (steps : (Ast.axis * Ast.node_test) list) : bool =
  let rec go = function
    | [] -> true
    | [ (axis, _) ] -> (
        match axis with
        | Ast.Child | Ast.Attribute_axis | Ast.Self | Ast.Descendant
        | Ast.Descendant_or_self ->
            true
        | _ -> false)
    | (axis, _) :: rest -> (
        match axis with
        | Ast.Child | Ast.Attribute_axis | Ast.Self -> go rest
        | _ -> false)
  in
  go steps

(* Positional early termination: a Select over a MapIndex whose predicate
   compares the freshly minted index field against an integer literal can
   stop pulling once the position exceeds the bound — [1]-style
   predicates and normalized fn:subsequence windows. *)
let positional_bound (pred : plan) (input : plan) : int option =
  match input with
  | MapIndex (q, _) | MapIndexStep (q, _) -> (
      match pred with
      | Call (op, [ FieldAccess q'; Scalar (Xqc_xml.Atomic.Integer k) ])
        when String.equal q q' -> (
          match op with
          | "op:eq" | "op:le" -> Some k
          | "op:lt" -> Some (k - 1)
          | _ -> None)
      | Call (op, [ Scalar (Xqc_xml.Atomic.Integer k); FieldAccess q' ])
        when String.equal q q' -> (
          match op with
          | "op:eq" | "op:ge" -> Some k
          | "op:gt" -> Some (k - 1)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let rows (p : P.t) = p.P.pest.P.est_rows
let cost (p : P.t) = p.P.pest.P.est_cost

let mk pop ~rows:r ~cost:c : P.t =
  { P.pop; pest = { P.est_rows = Float.max 0. r; est_cost = Float.max 0. c } }

(* Explicit materialization marker for a join/product build side. *)
let materialized (p : P.t) : P.t =
  mk (P.PMaterialize p) ~rows:(rows p) ~cost:(cost p +. rows p)

(* [PCallStream] shapes: the argument chain the streaming implementations
   of Eval accept. *)
let is_steps (a : P.t) =
  match a.P.pop with P.PSteps _ -> true | _ -> false

let is_ordered_steps (a : P.t) =
  match a.P.pop with P.PSteps { ordered; _ } -> ordered | _ -> false

(* fn:count is answered from index range bounds only for a one-step name
   chain, where the step output is duplicate-free by construction. *)
let countable_steps (a : P.t) =
  match a.P.pop with
  | P.PSteps
      {
        steps =
          [
            {
              P.ps_axis = Ast.Descendant | Ast.Descendant_or_self | Ast.Child;
              ps_test = Ast.Name_test _;
              _;
            };
          ];
        _;
      } ->
      true
  | _ -> false

let steps_input_cost (a : P.t) =
  match a.P.pop with P.PSteps { input; _ } -> cost input | _ -> cost a

let call_rows (name : string) (pargs : P.t list) : float =
  match (name, pargs) with
  | ("fn:data" | "fn:distinct-values" | "fn:reverse" | "fn:unordered"), [ a ]
    ->
      rows a
  | _ -> 1.

(* Cost gate for a partitioned annotation.  With index statistics the
   estimate is trustworthy: partition only above the row threshold.
   Without any statistics (nothing indexed yet — the common first-query
   state on the server, where the document index builds on first touch)
   the estimate is a fan-out guess that systematically lowballs scans,
   so the annotation is granted optimistically: the evaluator re-gates
   on the *actual* partition width at run time, which makes an
   optimistic annotation cost one integer comparison, not a bad plan. *)
let par_gate (config : config) (est_rows : float) : int =
  if config.par_degree <= 1 then 1
  else if est_rows >= config.par_threshold then config.par_degree
  else
    match Store.total_elements () with
    | None -> config.par_degree
    | Some _ -> 1

(* Joins skip the static estimate: both join inputs are materialized
   before the partition decision, so the runtime re-gate sees the exact
   probe width, and the static estimate systematically lowballs join
   inputs reached by root child-chains (the fan-out cap estimates
   site/people/person at 3 rows where the store holds a thousand).
   The annotation is a budget, not a command — granting it costs one
   list-length comparison when the probe side turns out narrow. *)
let par_gate_join (config : config) : int = max 1 config.par_degree

let plan ?(config = default_config) (p : plan) : P.t =
  (* Set while planning a relational twin: the fallback plan must be
     fully native, and a rejected candidate must not re-offer its own
     subtree (its children still may). *)
  let offload_disabled = ref false in
  let rec go (p : plan) : P.t =
    match try_offload p with Some t -> t | None -> go_core p
  (* Offload a table subplan to the relational backend when the second
     lowering accepts it.  Candidates are the table-operator roots the
     lowering grammar can start from; [uses_input p] rules out plans
     whose scans depend on the surrounding tuple (the relational bridge
     evaluates with only the variable environment).  Under [Rel] every
     lowerable candidate offloads; under [Auto] only subplans containing
     a join or group-by, and only when the native twin's estimated cost
     clears [auto_cost_threshold] (optimistic when no statistics
     exist, mirroring the parallelism gate). *)
  and try_offload (p : plan) : P.t option =
    if !offload_disabled || !Rel.backend = Rel.Native then None
    else
      match p with
      | (Join _ | LOuterJoin _ | GroupBy _ | OrderBy _ | Select _)
        when not (uses_input p) -> (
          match Lower.lower p with
          | None -> None
          | Some rplan ->
              let twin =
                offload_disabled := true;
                Fun.protect
                  ~finally:(fun () -> offload_disabled := false)
                  (fun () -> go_core p)
              in
              let offload =
                match !Rel.backend with
                | Rel.Native -> false
                | Rel.Rel -> true
                | Rel.Auto ->
                    Lower.heavy rplan
                    && (match Store.total_elements () with
                       | None -> true
                       | Some _ -> cost twin >= !Rel.auto_cost_threshold)
              in
              if not offload then None
              else
                Some
                  (mk
                     (P.PRelational
                        {
                          rplan;
                          rfields = output_fields p;
                          rparams = Rel.params rplan;
                          fallback = twin;
                        })
                     ~rows:(rows twin)
                     ~cost:((0.3 *. cost twin) +. rows twin)))
      | _ -> None
  and go_core (p : plan) : P.t =
    match p with
    | Input -> mk P.PInput ~rows:1. ~cost:0.
    | Empty -> mk P.PEmpty ~rows:0. ~cost:0.
    | Scalar a -> mk (P.PScalar a) ~rows:1. ~cost:0.
    | Seq (a, b) ->
        let pa = go a and pb = go b in
        mk (P.PSeq (pa, pb)) ~rows:(rows pa +. rows pb)
          ~cost:(cost pa +. cost pb +. 1.)
    | Element (name, c) -> construct (fun x -> P.PElement (name, x)) c
    | Attribute (name, c) -> construct (fun x -> P.PAttribute (name, x)) c
    | Text c -> construct (fun x -> P.PText x) c
    | Comment c -> construct (fun x -> P.PComment x) c
    | Pi (target, c) -> construct (fun x -> P.PPi (target, x)) c
    | TreeJoin _ ->
        let steps, src = chain_steps p in
        let psrc = go src in
        let rsteps, out_rows, steps_cost =
          List.fold_left
            (fun (acc, r, c) (axis, test) ->
              let out = step_rows axis test r in
              let impl =
                if index_available axis test then P.Index_scan else P.Tree_walk
              in
              let work =
                match impl with
                | P.Index_scan -> out +. Float.log2 (out +. 2.)
                | P.Tree_walk -> (r *. walk_factor axis) +. out
              in
              ( { P.ps_axis = axis; ps_test = test; ps_impl = impl; ps_est = out }
                :: acc,
                out,
                c +. work ))
            ([], rows psrc, 0.) steps
        in
        mk
          (P.PSteps
             {
               steps = List.rev rsteps;
               ordered = ordered_chain steps;
               par = par_gate config out_rows;
               input = psrc;
             })
          ~rows:out_rows
          ~cost:(cost psrc +. steps_cost)
    | TreeProject (paths, input) ->
        let pi = go input in
        mk (P.PTreeProject (paths, pi)) ~rows:(rows pi) ~cost:(cost pi +. rows pi)
    | Castable (tn, opt, input) -> scalar_of (fun x -> P.PCastable (tn, opt, x)) input
    | Cast (tn, opt, input) -> scalar_of (fun x -> P.PCast (tn, opt, x)) input
    | Validate input -> scalar_of (fun x -> P.PValidate x) input
    | TypeMatches (ty, input) -> scalar_of (fun x -> P.PTypeMatches (ty, x)) input
    | TypeAssert (ty, input) ->
        let pi = go input in
        mk (P.PTypeAssert (ty, pi)) ~rows:(rows pi) ~cost:(cost pi +. 1.)
    | Var q -> mk (P.PVar q) ~rows:1. ~cost:0.
    | Call (name, args) -> (
        let pargs = List.map go args in
        match (name, pargs) with
        | ("fn:exists" | "fn:empty"), [ a ] when is_steps a ->
            mk
              (P.PCallStream (P.SExists (String.equal name "fn:empty"), name, pargs))
              ~rows:1.
              ~cost:(steps_input_cost a +. 2.)
        | "fn:count", [ a ] when countable_steps a ->
            mk
              (P.PCallStream (P.SCount, name, pargs))
              ~rows:1.
              ~cost:(steps_input_cost a +. 2.)
        | "fn:subsequence", [ a; _; _ ] when is_ordered_steps a ->
            mk
              (P.PCallStream (P.SSubseq, name, pargs))
              ~rows:(Float.min (rows a) 10.)
              ~cost:(steps_input_cost a +. Float.min (rows a) 10.)
        | _ ->
            mk
              (P.PCall (name, pargs))
              ~rows:(call_rows name pargs)
              ~cost:(List.fold_left (fun c a -> c +. cost a) 1. pargs))
    | Cond (c, t, e) ->
        let pc = go c and pt = go t and pe = go e in
        mk (P.PCond (pc, pt, pe))
          ~rows:(Float.max (rows pt) (rows pe))
          ~cost:(cost pc +. Float.max (cost pt) (cost pe))
    | Quantified (q, v, source, body) ->
        let ps = go source and pb = go body in
        mk
          (P.PQuantified (q, v, ps, pb))
          ~rows:1.
          ~cost:((cost ps *. 0.5) +. (rows ps *. 0.5 *. Float.max 1. (cost pb)))
    | Parse uri ->
        let pu = go uri in
        mk (P.PParse pu) ~rows:1. ~cost:(cost pu +. 100.)
    | Serialize (uri, input) ->
        let pi = go input in
        mk (P.PSerialize (uri, pi)) ~rows:0. ~cost:(cost pi +. rows pi)
    | TupleConstruct fields ->
        let pfields = List.map (fun (q, fp) -> (q, go fp)) fields in
        mk (P.PTupleConstruct pfields) ~rows:1.
          ~cost:(List.fold_left (fun c (_, fp) -> c +. cost fp) 1. pfields)
    | FieldAccess q -> mk (P.PFieldAccess q) ~rows:1. ~cost:0.
    | Select (pred, input) -> (
        match positional_bound pred input with
        | Some bound ->
            let pi = go input and pp = go pred in
            let out = Float.min (float_of_int bound) (rows pi) in
            mk
              (P.PStreamSelect { pred = pp; bound; input = pi })
              ~rows:out
              ~cost:((cost pi *. 0.5) +. out)
        | None ->
            let pi = go input and pp = go pred in
            mk (P.PSelect (pp, pi))
              ~rows:(Float.max 1. (rows pi *. sel_select))
              ~cost:(cost pi +. (rows pi *. Float.max 1. (cost pp))))
    | Product (a, b) ->
        let pa = go a and pb = go b in
        let out = rows pa *. rows pb in
        mk
          (P.PProduct (pa, materialized pb))
          ~rows:out
          ~cost:(cost pa +. cost pb +. rows pb +. out)
    | Join (pred, a, b) -> plan_join None pred a b
    | LOuterJoin (q, pred, a, b) -> plan_join (Some q) pred a b
    | Map (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMap (pd, pi)) ~rows:(rows pi)
          ~cost:(cost pi +. (rows pi *. Float.max 1. (cost pd)))
    | OMap (q, input) ->
        let pi = go input in
        mk (P.POMap (q, pi)) ~rows:(Float.max 1. (rows pi)) ~cost:(cost pi +. rows pi)
    | MapConcat (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMapConcat (pd, pi))
          ~rows:(rows pi *. Float.max 1. (rows pd))
          ~cost:(cost pi +. (rows pi *. Float.max 1. (cost pd)))
    | OMapConcat (q, dep, input) ->
        let pd = go dep and pi = go input in
        mk
          (P.POMapConcat (q, pd, pi))
          ~rows:(Float.max (rows pi) (rows pi *. rows pd))
          ~cost:(cost pi +. (rows pi *. Float.max 1. (cost pd)))
    | MapIndex (q, input) ->
        let pi = go input in
        mk (P.PMapIndex (q, pi)) ~rows:(rows pi) ~cost:(cost pi +. rows pi)
    | MapIndexStep (q, input) ->
        let pi = go input in
        mk (P.PMapIndexStep (q, pi)) ~rows:(rows pi) ~cost:(cost pi +. rows pi)
    | OrderBy (specs, input) ->
        let pi = go input in
        let pspecs =
          List.map
            (fun s -> { P.pskey = go s.skey; psdir = s.sdir; psempty = s.sempty })
            specs
        in
        let n = rows pi in
        mk (P.POrderBy (pspecs, pi)) ~rows:n
          ~cost:(cost pi +. (n *. Float.log2 (n +. 2.)))
    | GroupBy (g, input) ->
        let pi = go input in
        let pg =
          {
            P.pg_agg = g.g_agg;
            pg_indices = g.g_indices;
            pg_nulls = g.g_nulls;
            pg_post = go g.g_post;
            pg_pre = go g.g_pre;
          }
        in
        let out =
          if g.g_indices = [] then 1. else Float.max 1. (rows pi *. 0.5)
        in
        mk (P.PGroupBy (pg, pi)) ~rows:out ~cost:(cost pi +. rows pi +. out)
    | MapFromItem (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMapFromItem (pd, pi)) ~rows:(rows pi) ~cost:(cost pi +. rows pi)
    | MapToItem (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMapToItem (pd, pi)) ~rows:(rows pi)
          ~cost:(cost pi +. (rows pi *. Float.max 1. (cost pd)))
    | MapSome (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMapSome (pd, pi)) ~rows:1.
          ~cost:((cost pi *. 0.5) +. (rows pi *. 0.5 *. Float.max 1. (cost pd)))
    | MapEvery (dep, input) ->
        let pd = go dep and pi = go input in
        mk (P.PMapEvery (pd, pi)) ~rows:1.
          ~cost:((cost pi *. 0.5) +. (rows pi *. 0.5 *. Float.max 1. (cost pd)))
  (* XML node constructors: one node out, content cost in. *)
  and construct wrap content =
    let pc = go content in
    mk (wrap pc) ~rows:1. ~cost:(cost pc +. 1.)
  and scalar_of wrap input =
    let pi = go input in
    mk (wrap pi) ~rows:1. ~cost:(cost pi +. 1.)
  (* Join planning: algorithm, build side and materialization points. *)
  and plan_join (outer : field option) (pred : join_pred) (a : plan) (b : plan)
      : P.t =
    let pa = go a and pb = go b in
    let l = Float.max 1. (rows pa) and r = Float.max 1. (rows pb) in
    let base = cost pa +. cost pb in
    let out_of sel =
      let out = Float.max 1. (l *. r *. sel) in
      match outer with Some _ -> Float.max l out | None -> out
    in
    match pred with
    | Pred d ->
        let pd = go d in
        let out = out_of 0.5 in
        mk
          (P.PNestedLoop
             { outer; pred = P.PWholePred pd; left = pa; right = materialized pb })
          ~rows:out
          ~cost:(base +. r +. (l *. r *. nl_pair_cost))
    | Split_pred { op; left_key; right_key } -> (
        let lk = go left_key and rk = go right_key in
        let out = out_of (join_selectivity op) in
        let nl_cost = base +. r +. (l *. r *. nl_pair_cost) in
        let hash_cost = base +. l +. r +. out in
        let sort_cost = base +. ((l +. r) *. Float.log2 (l +. r +. 2.)) +. out in
        let algorithm =
          match config.force_join with
          | Some P.Hash when op = Promotion.Eq -> P.Hash
          | Some P.Sort
            when op = Promotion.Lt || op = Promotion.Le || op = Promotion.Gt
                 || op = Promotion.Ge ->
              P.Sort
          | Some _ -> P.Nested_loop
          | None -> (
              match op with
              | Promotion.Eq -> if hash_cost <= nl_cost then P.Hash else P.Nested_loop
              | Promotion.Lt | Promotion.Le | Promotion.Gt | Promotion.Ge ->
                  if sort_cost <= nl_cost then P.Sort else P.Nested_loop
              | Promotion.Ne -> P.Nested_loop)
        in
        match algorithm with
        | P.Hash ->
            let build = if l < r then P.Build_left else P.Build_right in
            let left, right =
              match build with
              | P.Build_left -> (materialized pa, pb)
              | P.Build_right -> (pa, materialized pb)
            in
            mk
              (P.PHashJoin
                 {
                   outer;
                   build;
                   par = par_gate_join config;
                   left_key = lk;
                   right_key = rk;
                   left;
                   right;
                 })
              ~rows:out ~cost:hash_cost
        | P.Sort ->
            mk
              (P.PSortJoin
                 {
                   outer;
                   op;
                   left_key = lk;
                   right_key = rk;
                   left = pa;
                   right = materialized pb;
                 })
              ~rows:out ~cost:sort_cost
        | P.Nested_loop ->
            mk
              (P.PNestedLoop
                 {
                   outer;
                   pred = P.PSplitPred { op; left_key = lk; right_key = rk };
                   left = pa;
                   right = materialized pb;
                 })
              ~rows:out ~cost:nl_cost)
  in
  go p
