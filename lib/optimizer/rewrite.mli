(** Logical optimization — the rewritings of Figure 5 — plus the
    join-predicate splitting of Section 6.

    Standard rules: (remove map), (insert product), (insert join).
    New rules: (insert group-by), (map through group-by),
    (remove duplicate null), (insert outer-join).
    Robustness rules beyond the paper's figure (in the spirit of its
    "more robust to variations" discussion): (hoist nested flwor) for
    blocks nested inside return-position constructors, hoisting out of
    GroupBy pre-grouping plans for multi-level nesting, (push product
    through map-concat), select/MapIndexStep commutation, and a
    generalized (insert outer-join) that finds the buried [Join(IN, X)]
    through a chain of row-preserving operators, fusing intervening
    selections into the join predicate.

    Rules are applied top-down (outer nesting levels first) to a
    fixpoint; see DESIGN.md for why the order matters.

    The output stays purely logical: joins carry no algorithm
    annotation.  {!split_join_predicates} only rewrites predicates into
    the [Split_pred] shape the Section 6 hash/sort joins can execute;
    the cost-based physical planner (Planner) chooses the actual
    algorithm, build side and materialization points. *)

open Xqc_algebra
open Xqc_types

val fresh_field : string -> Algebra.field
(** A fresh tuple-field name ("base~N").  The counter is reset at the
    start of every {!rewrite}, so generated names — and therefore
    explain / EXPLAIN ANALYZE output — are deterministic across repeated
    [prepare]s in one process. *)

val rewrite : ?trace:Xqc_obs.Obs.rewrite_trace -> Algebra.plan -> Algebra.plan
(** Apply the logical rewritings to a fixpoint.  With [~trace], every
    rule firing is counted under its Figure 5 rule name and the number
    of fixpoint passes is recorded. *)

val split_pred :
  Algebra.join_pred -> Algebra.plan -> Algebra.plan -> Algebra.join_pred option
(** Split a [Pred] into a [Split_pred] when it is a general comparison
    whose two sides read disjoint halves of the concatenated tuple
    (mirroring the operator when the sides are swapped). *)

val split_join_predicates :
  ?trace:Xqc_obs.Obs.rewrite_trace -> Algebra.plan -> Algebra.plan
(** Apply {!split_pred} to every join.  With [~trace], each split is
    recorded under the algorithm it enables: "choose hash join" for
    equality, "choose sort join" for inequalities, "split nested-loop
    predicate" for [!=]. *)

val mirror_op : Promotion.cmp_op -> Promotion.cmp_op

type options = {
  unnest : bool;  (** apply the Figure 5 rewritings *)
  split_preds : bool;  (** split disjoint join predicates (Section 6) *)
  static_types : bool;  (** type-driven simplification (Static_type) *)
}

val default_options : options

val optimize :
  ?options:options -> ?trace:Xqc_obs.Obs.rewrite_trace -> Algebra.plan -> Algebra.plan
