(* Logical optimization: the rewritings of Figure 5.

   Standard rules
     (remove map)      MapConcat{Op1}([])                  => Op1
     (insert product)  MapConcat{Op1}(Op2)                 => Product(Op2, Op1)
                       when Op1 is independent of IN
     (insert join)     Select{p}(Product(Op2, Op3))        => Join{p}(Op2, Op3)

   New rules
     (insert group-by)
       [x : C(MapToItem{Op2}(Op3))]
         => GroupBy[x,[],[null]]{C(IN)}{Op2}(OMap[null](Op3))
       where C is a linear context of item operators; the unary tuple
       constructor is a GroupBy whose whole input forms one partition.
     (map through group-by)
       MapConcat{GroupBy[x,inds,nulls]{Op1}{Op2}(Op3)}(Op4)
         => GroupBy[x,inds+ind1,nulls+null1]{Op1}{Op2}
              (OMapConcat[null1]{Op3}(MapIndexStep[ind1](Op4)))
     (remove duplicate null)
       GroupBy[..,nulls]{..}{..}(OMapConcat[n1]{OMap[n2](Op1)}(Op2))
         => GroupBy[..,nulls-n2]{..}{..}(OMapConcat[n1]{Op1}(Op2))
     (insert outer-join)
       OMapConcat[null]{Join{p}(IN, Op1)}(Op2)
         => LOuterJoin[null]{p}(Op2, Op1)

   The driver applies rules top-down (outer nesting levels first) to a
   fixpoint; see the note at rewrite_pass.  A separate pass
   (split_join_predicates) splits join predicates whose two sides touch
   disjoint inputs into independent key plans — the shape the Section 6
   hash/sort joins can execute.  Which algorithm actually runs (and on
   which build side) is decided later by the cost-based physical planner
   (Planner); the logical plan carries no algorithm annotation.
   Static_type.simplify removes provable dynamic type tests. *)

open Xqc_algebra
open Algebra
module Obs = Xqc_obs.Obs

(* Per-domain gensym state, reset at the start of every [rewrite]:
   generated field names — and therefore explain / EXPLAIN ANALYZE
   output — are deterministic across repeated [prepare]s, and compiles
   running concurrently on server worker domains cannot interleave each
   other's counters (a process-global ref here would make two parallel
   prepares of the same query produce different, possibly colliding,
   field names).  One rewrite runs at a time per domain, so domain-local
   state is exactly per-rewrite state.  Fields only need to be unique
   within one plan; separate plans (main, globals, function bodies)
   never share a layout. *)
let gensym : (int ref * (string, unit) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, Hashtbl.create 16))

let fresh_field base =
  let c, _ = Domain.DLS.get gensym in
  incr c;
  Printf.sprintf "%s~%d" base !c

(* Null flags whose defining OMap has been removed by (remove duplicate
   null); the enclosing GroupBy's null list is stripped of them in a
   follow-up step.  Field names are fresh within the rewrite, so a
   simple set is precise. *)
let dead_nulls () : (string, unit) Hashtbl.t = snd (Domain.DLS.get gensym)

(* ------------------------------------------------------------------ *)
(* (insert group-by): locate MapToItem under a linear item-op context.  *)
(* ------------------------------------------------------------------ *)

(* Try to decompose [p] as C(MapToItem{pre}(table_plan)) where the hole
   occurs once under item operators; returns the context as a function
   rebuilding C(hole) plus the MapToItem parts. *)
let rec find_maptoitem (p : plan) : ((plan -> plan) * plan * plan) option =
  match p with
  | MapToItem (pre, table_plan) -> Some ((fun h -> h), pre, table_plan)
  | TypeAssert (ty, inner) ->
      Option.map
        (fun (c, pre, t) -> ((fun h -> TypeAssert (ty, c h)), pre, t))
        (find_maptoitem inner)
  | Cast (tn, o, inner) ->
      Option.map
        (fun (c, pre, t) -> ((fun h -> Cast (tn, o, c h)), pre, t))
        (find_maptoitem inner)
  | Validate inner ->
      Option.map
        (fun (c, pre, t) -> ((fun h -> Validate (c h)), pre, t))
        (find_maptoitem inner)
  | TreeJoin (axis, test, inner) ->
      Option.map
        (fun (c, pre, t) -> ((fun h -> TreeJoin (axis, test, c h)), pre, t))
        (find_maptoitem inner)
  | Call (f, args) ->
      (* descend into the unique argument containing a MapToItem, provided
         the other arguments do not depend on IN *)
      let rec split before = function
        | [] -> None
        | arg :: after -> (
            match find_maptoitem arg with
            | Some (c, pre, t)
              when List.for_all (fun a -> not (uses_input a)) (before @ after) ->
                Some
                  ( (fun h -> Call (f, List.rev_append before (c h :: after))),
                    pre,
                    t )
            | Some _ | None -> split (arg :: before) after)
      in
      split [] args
  | _ -> None

(* ------------------------------------------------------------------ *)
(* (hoist nested flwor): locate a nested FLWOR block (a MapToItem over   *)
(* a table) anywhere under item operators sharing the same IN.  Clio-    *)
(* style queries nest FLWOR blocks inside element constructors in the    *)
(* return clause rather than in a let, so before (insert group-by) can   *)
(* fire the block must be hoisted into a fresh tuple field.              *)
(* ------------------------------------------------------------------ *)

let rec find_nested_flwor (p : plan) : ((plan -> plan) * plan) option =
  match p with
  | MapToItem _ -> Some ((fun h -> h), p)
  | Seq (a, b) -> (
      match find_nested_flwor a with
      | Some (c, m) -> Some ((fun h -> Seq (c h, b)), m)
      | None ->
          Option.map (fun (c, m) -> ((fun h -> Seq (a, c h)), m)) (find_nested_flwor b))
  | Element (n, a) ->
      Option.map (fun (c, m) -> ((fun h -> Element (n, c h)), m)) (find_nested_flwor a)
  | Attribute (n, a) ->
      Option.map (fun (c, m) -> ((fun h -> Attribute (n, c h)), m)) (find_nested_flwor a)
  | Text a -> Option.map (fun (c, m) -> ((fun h -> Text (c h)), m)) (find_nested_flwor a)
  | Comment a ->
      Option.map (fun (c, m) -> ((fun h -> Comment (c h)), m)) (find_nested_flwor a)
  | Pi (n, a) ->
      Option.map (fun (c, m) -> ((fun h -> Pi (n, c h)), m)) (find_nested_flwor a)
  | TreeJoin (ax, t, a) ->
      Option.map
        (fun (c, m) -> ((fun h -> TreeJoin (ax, t, c h)), m))
        (find_nested_flwor a)
  | TypeAssert (ty, a) ->
      Option.map
        (fun (c, m) -> ((fun h -> TypeAssert (ty, c h)), m))
        (find_nested_flwor a)
  | TypeMatches (ty, a) ->
      Option.map
        (fun (c, m) -> ((fun h -> TypeMatches (ty, c h)), m))
        (find_nested_flwor a)
  | Cast (tn, o, a) ->
      Option.map (fun (c, m) -> ((fun h -> Cast (tn, o, c h)), m)) (find_nested_flwor a)
  | Castable (tn, o, a) ->
      Option.map
        (fun (c, m) -> ((fun h -> Castable (tn, o, c h)), m))
        (find_nested_flwor a)
  | Validate a ->
      Option.map (fun (c, m) -> ((fun h -> Validate (c h)), m)) (find_nested_flwor a)
  | Call (f, args) ->
      let rec split before = function
        | [] -> None
        | arg :: after -> (
            match find_nested_flwor arg with
            | Some (c, m) ->
                Some ((fun h -> Call (f, List.rev_append before (c h :: after))), m)
            | None -> split (arg :: before) after)
      in
      split [] args
  | Cond (c0, t, e) -> (
      (* only the condition shares IN unconditionally; hoisting from a
         branch would evaluate it even when the branch is not taken, which
         can turn a guarded expression into an error *)
      match find_nested_flwor c0 with
      | Some (c, m) -> Some ((fun h -> Cond (c h, t, e)), m)
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* (insert outer-join), generalized: inside an OMapConcat dependent,    *)
(* the Join over IN may be buried under a chain of row- and emptiness-  *)
(* preserving operators (MapIndexStep, GroupBy, the left input of a     *)
(* LOuterJoin) left behind by inner unnesting rounds.  The chain can be *)
(* pulled out of the OMapConcat wholesale: each chain operator is       *)
(* row-wise or partition-wise, and the partition criteria of any chain  *)
(* GroupBy come from a chain MapIndexStep, whose global renumbering     *)
(* keeps partitions of different outer tuples apart (this is the reason *)
(* MapIndexStep, which does not promise consecutive integers, exists).  *)
(* ------------------------------------------------------------------ *)

type chain = {
  ch_context : plan -> plan;  (** rebuild the chain around a replacement *)
  ch_right : plan;  (** the independent right input of the buried join *)
  ch_pred : plan option;  (** predicate collected from the buried Join/Selects *)
  ch_mis_below : field list;  (** MapIndexStep fields introduced below *)
  ch_introduced : field list;  (** all fields the chain adds to tuples *)
}

let and_pred (a : plan option) (b : plan) : plan option =
  match a with
  | None -> Some b
  | Some a -> Some (Cond (a, Call ("fn:boolean", [ b ]), Scalar (Xqc_xml.Atomic.Boolean false)))

let rec find_input_join (d : plan) : chain option =
  match d with
  | Join (Pred jp, Input, x) when not (uses_input x) ->
      Some
        {
          ch_context = (fun h -> h);
          ch_right = x;
          ch_pred = Some jp;
          ch_mis_below = [];
          ch_introduced = [];
        }
  | Product (Input, x) when not (uses_input x) ->
      Some
        {
          ch_context = (fun h -> h);
          ch_right = x;
          ch_pred = None;
          ch_mis_below = [];
          ch_introduced = [];
        }
  | Select (p, inner) -> (
      (* fuse the selection into the join predicate, provided it reads no
         chain-introduced field (so it is evaluable at the join) *)
      match find_input_join inner with
      | Some ch
        when (not (uses_bare_input p))
             && List.for_all
                  (fun f -> not (List.mem f ch.ch_introduced))
                  (input_fields p) ->
          Some { ch with ch_pred = and_pred ch.ch_pred p }
      | Some _ | None -> None)
  | MapIndexStep (q, inner) ->
      Option.map
        (fun ch ->
          {
            ch with
            ch_context = (fun h -> MapIndexStep (q, ch.ch_context h));
            ch_mis_below = q :: ch.ch_mis_below;
            ch_introduced = q :: ch.ch_introduced;
          })
        (find_input_join inner)
  | GroupBy (g, inner) -> (
      match find_input_join inner with
      | Some ch
        when g.g_indices <> []
             && List.for_all (fun q -> List.mem q ch.ch_mis_below) g.g_indices ->
          Some
            {
              ch with
              ch_context = (fun h -> GroupBy (g, ch.ch_context h));
              ch_introduced = g.g_agg :: ch.ch_introduced;
            }
      | Some _ | None -> None)
  | LOuterJoin (q2, pred2, left, right) when not (uses_input right) ->
      Option.map
        (fun ch ->
          {
            ch with
            ch_context = (fun h -> LOuterJoin (q2, pred2, ch.ch_context h, right));
            ch_introduced = (q2 :: output_fields right) @ ch.ch_introduced;
          })
        (find_input_join left)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* One rewriting step at a single node                                  *)
(* ------------------------------------------------------------------ *)

(* Each rule application is labelled with its (Figure 5) rule name so
   the driver can trace firings. *)
let rewrite_at (p : plan) : (string * plan) option =
  match p with
  (* (remove map) — also for the top-level MapToItem over the unit table *)
  | MapConcat (dep, TupleConstruct []) when not (uses_input dep) ->
      Some ("remove map", dep)
  (* (hoist nested flwor) out of a return clause into a tuple field *)
  | MapToItem (dep, input) -> (
      match find_nested_flwor dep with
      | Some (context, m) ->
          let x = fresh_field "hoist" in
          Some
            ( "hoist nested flwor",
              MapToItem
                (context (FieldAccess x), MapConcat (TupleConstruct [ (x, m) ], input)) )
      | None -> None)
  (* (insert group-by) — only for correlated nested blocks; uncorrelated
     ones are better served by (insert product) at the enclosing MapConcat *)
  | TupleConstruct [ (x, field_plan) ] when uses_input field_plan -> (
      match find_maptoitem field_plan with
      | Some (context, pre, table_plan) ->
          let null = fresh_field "null" in
          Some
            ( "insert group-by",
              GroupBy
                ( {
                    g_agg = x;
                    g_indices = [];
                    g_nulls = [ null ];
                    g_post = context Input;
                    g_pre = pre;
                  },
                  OMap (null, table_plan) ) )
      | None -> None)
  (* (hoist nested flwor) out of a GroupBy pre-grouping plan: multi-level
     nesting lands in the pre plan after one round of unnesting *)
  | GroupBy (g, input) when Option.is_some (find_nested_flwor g.g_pre) -> (
      match find_nested_flwor g.g_pre with
      | Some (context, m) ->
          let y = fresh_field "hoist" in
          Some
            ( "hoist nested flwor from group-by pre",
              GroupBy
                ( { g with g_pre = context (FieldAccess y) },
                  MapConcat (TupleConstruct [ (y, m) ], input) ) )
      | None -> None)
  (* (push product through map-concat): lets the product float out of a
     dependent join whose dependent plan only reads right-hand fields *)
  | MapConcat (dep, Product (a, b))
    when (not (uses_bare_input dep))
         && List.for_all (fun f -> List.mem f (output_fields b)) (input_fields dep) ->
      Some ("push product through map-concat", Product (a, MapConcat (dep, b)))
  (* (map through group-by) *)
  | MapConcat (GroupBy (g, op3), op4) ->
      let ind1 = fresh_field "index" in
      let null1 = fresh_field "null" in
      Some
        ( "map through group-by",
          GroupBy
            ( {
                g with
                g_indices = g.g_indices @ [ ind1 ];
                g_nulls = g.g_nulls @ [ null1 ];
              },
              OMapConcat (null1, op3, MapIndexStep (ind1, op4)) ) )
  (* (remove duplicate null), first half: the inner OMap is redundant —
     when its input is empty the enclosing OMapConcat raises its own flag *)
  | OMapConcat (n1, OMap (n2, op1), op2) ->
      Hashtbl.replace (dead_nulls ()) n2 ();
      Some ("remove duplicate null", OMapConcat (n1, op1, op2))
  (* (remove duplicate null), second half: strip removed flags from the
     GroupBy's null list *)
  | GroupBy (g, input)
    when List.exists (fun n -> Hashtbl.mem (dead_nulls ()) n) g.g_nulls ->
      Some
        ( "remove duplicate null",
          GroupBy
            ( { g with
                g_nulls =
                  List.filter (fun n -> not (Hashtbl.mem (dead_nulls ()) n)) g.g_nulls
              },
              input ) )
  (* (insert product) *)
  | MapConcat (dep, input) when not (uses_input dep) ->
      Some ("insert product", Product (input, dep))
  (* (insert join) *)
  | Select (pred, Product (a, b)) ->
      Some ("insert join", Join (Pred pred, a, b))
  (* (select / map-index-step commutation): sound for MapIndexStep, whose
     contract is only distinct ascending integers *)
  | Select (pred, MapIndexStep (q, input))
    when not (List.mem q (input_fields pred)) ->
      Some ("select/map-index-step commutation", MapIndexStep (q, Select (pred, input)))
  (* (insert outer-join), through a chain of row-preserving operators,
     fusing chain selections into the join predicate *)
  | OMapConcat (null, dep, op2) -> (
      match find_input_join dep with
      | Some ch ->
          let pred =
            match ch.ch_pred with
            | Some p -> Pred p
            | None -> Pred (Scalar (Xqc_xml.Atomic.Boolean true))
          in
          Some
            ( "insert outer-join",
              ch.ch_context (LOuterJoin (null, pred, op2, ch.ch_right)) )
      | None -> None)
  | _ -> None

(* Rules are applied top-down: a node is rewritten before its children.
   This matters for multi-level nesting — the outer block must be hoisted
   and grouped first so that inner blocks land in the GroupBy's pre plan,
   from which (hoist nested flwor) lifts them into the join pipeline; a
   bottom-up order would unnest inner levels in place and bury their
   joins inside dependent sub-plans where the outer-join rule cannot see
   them. *)
let rec rewrite_pass ?trace (p : plan) : plan * bool =
  match rewrite_at p with
  | Some (rule, p') ->
      (match trace with Some t -> Obs.fire t rule | None -> ());
      (p', true)
  | None ->
      let changed = ref false in
      let p =
        map_children
          (fun c ->
            let c', ch = rewrite_pass ?trace c in
            if ch then changed := true;
            c')
          p
      in
      (p, !changed)

let max_passes = 400

let rewrite ?trace (p : plan) : plan =
  let c, dn = Domain.DLS.get gensym in
  c := 0;
  Hashtbl.reset dn;
  let rec fix p n =
    if n = 0 then p
    else begin
      let p', changed = rewrite_pass ?trace p in
      (match trace with Some t -> t.Obs.rw_passes <- t.Obs.rw_passes + 1 | None -> ());
      if changed then fix p' (n - 1) else p'
    end
  in
  fix p max_passes

(* ------------------------------------------------------------------ *)
(* Join-predicate splitting (Section 6)                                *)
(* ------------------------------------------------------------------ *)

open Xqc_types

let mirror_op = function
  | Promotion.Eq -> Promotion.Eq
  | Promotion.Ne -> Promotion.Ne
  | Promotion.Lt -> Promotion.Gt
  | Promotion.Le -> Promotion.Ge
  | Promotion.Gt -> Promotion.Lt
  | Promotion.Ge -> Promotion.Le

let op_of_name = function
  | "op:general-eq" -> Some Promotion.Eq
  | "op:general-ne" -> Some Promotion.Ne
  | "op:general-lt" -> Some Promotion.Lt
  | "op:general-le" -> Some Promotion.Le
  | "op:general-gt" -> Some Promotion.Gt
  | "op:general-ge" -> Some Promotion.Ge
  | _ -> None

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Split a Pred into a Split_pred when it is a general comparison whose
   sides read disjoint halves of the concatenated tuple. *)
let split_pred (pred : join_pred) (left : plan) (right : plan) : join_pred option =
  match pred with
  | Split_pred _ -> Some pred
  | Pred p -> (
      let p = match p with Call ("fn:boolean", [ inner ]) -> inner | other -> other in
      match p with
      | Call (name, [ l; r ]) -> (
          match op_of_name name with
          | None -> None
          | Some op ->
              let fl = input_fields l and fr = input_fields r in
              let fa = output_fields left and fb = output_fields right in
              if subset fl fa && subset fr fb then
                Some (Split_pred { op; left_key = l; right_key = r })
              else if subset fl fb && subset fr fa then
                Some (Split_pred { op = mirror_op op; left_key = r; right_key = l })
              else None)
      | _ -> None)

(* The rule names record which Section 6 algorithm the split enables; the
   cost-based planner makes the final call (and may still pick a nested
   loop when the inputs are tiny). *)
let rec split_join_predicates ?trace (p : plan) : plan =
  let p = map_children (split_join_predicates ?trace) p in
  let note op =
    match trace with
    | None -> ()
    | Some t ->
        Obs.fire t
          (match op with
          | Promotion.Eq -> "choose hash join"
          | Promotion.Lt | Promotion.Le | Promotion.Gt | Promotion.Ge ->
              "choose sort join"
          | Promotion.Ne -> "split nested-loop predicate")
  in
  match p with
  | Join ((Pred _ as pred), a, b) -> (
      match split_pred pred a b with
      | Some (Split_pred { op; _ } as pred') ->
          note op;
          Join (pred', a, b)
      | Some _ | None -> p)
  | LOuterJoin (q, (Pred _ as pred), a, b) -> (
      match split_pred pred a b with
      | Some (Split_pred { op; _ } as pred') ->
          note op;
          LOuterJoin (q, pred', a, b)
      | Some _ | None -> p)
  | other -> other

(* ------------------------------------------------------------------ *)

type options = {
  unnest : bool;  (** apply the Figure 5 rewritings *)
  split_preds : bool;  (** split disjoint join predicates (Section 6) *)
  static_types : bool;  (** type-driven simplification (Static_type) *)
}

let default_options = { unnest = true; split_preds = true; static_types = true }

let optimize ?(options = default_options) ?trace (p : plan) : plan =
  let p = if options.unnest then rewrite ?trace p else p in
  let p = if options.static_types then Static_type.simplify p else p in
  let p = if options.split_preds then split_join_predicates ?trace p else p in
  p
