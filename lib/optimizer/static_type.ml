(* Lightweight static type inference over logical plans.

   Section 6 of the paper observes that "static type analysis can improve
   our algorithm" — knowing operand types lets the compiler drop dynamic
   type tests and specialize joins.  This module infers a small abstract
   type (an item-kind approximation plus an occurrence range) for
   item-valued plans, without tracking tuple-field types (a field access
   infers to the unknown type).  The optimizer uses it to

   - remove TypeAssert operators whose input provably matches,
   - fold TypeMatches to a constant, pruning dead typeswitch branches,
   - fold Castable to a constant where decidable. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend
open Xqc_algebra
open Algebra

(* Item-kind approximation, a join-semilattice with top = AK_item. *)
type kind =
  | AK_integer
  | AK_decimal
  | AK_double  (** includes float *)
  | AK_string
  | AK_boolean
  | AK_untyped
  | AK_atomic  (** any atomic value *)
  | AK_element
  | AK_attribute
  | AK_text
  | AK_comment
  | AK_pi
  | AK_document
  | AK_node  (** any node *)
  | AK_item  (** anything *)

type occ = { lo : int; hi : int option }  (** cardinality range; hi None = unbounded *)

type t = { kind : kind; occ : occ }

let exactly_one = { lo = 1; hi = Some 1 }
let zero_or_one = { lo = 0; hi = Some 1 }
let zero_or_more = { lo = 0; hi = None }
let empty_occ = { lo = 0; hi = Some 0 }

let unknown = { kind = AK_item; occ = zero_or_more }

let is_atomic_kind = function
  | AK_integer | AK_decimal | AK_double | AK_string | AK_boolean | AK_untyped
  | AK_atomic ->
      true
  | AK_element | AK_attribute | AK_text | AK_comment | AK_pi | AK_document
  | AK_node | AK_item ->
      false

let is_node_kind = function
  | AK_element | AK_attribute | AK_text | AK_comment | AK_pi | AK_document
  | AK_node ->
      true
  | _ -> false

(* Least upper bound of two kinds. *)
let join_kind a b =
  if a = b then a
  else if is_atomic_kind a && is_atomic_kind b then
    match (a, b) with
    | (AK_integer | AK_decimal), (AK_integer | AK_decimal) -> AK_decimal
    | _ -> AK_atomic
  else if is_node_kind a && is_node_kind b then AK_node
  else AK_item

let join_occ a b =
  {
    lo = min a.lo b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (max x y) | _ -> None);
  }

let add_occ a b =
  {
    lo = a.lo + b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None);
  }

let join a b = { kind = join_kind a.kind b.kind; occ = join_occ a.occ b.occ }

let kind_of_atomic (a : Atomic.t) =
  match Atomic.type_of a with
  | Atomic.T_integer -> AK_integer
  | Atomic.T_decimal -> AK_decimal
  | Atomic.T_double -> AK_double
  | Atomic.T_string -> AK_string
  | Atomic.T_boolean -> AK_boolean
  | Atomic.T_untyped -> AK_untyped
  | _ -> AK_atomic

(* Builtins with statically known result types. *)
let call_type (f : string) : t option =
  match f with
  | "fn:count" | "fn:string-length" -> Some { kind = AK_integer; occ = exactly_one }
  | "fn:boolean" | "fn:not" | "fn:empty" | "fn:exists" | "fn:true" | "fn:false"
  | "fn:contains" | "fn:starts-with" | "fn:ends-with" | "fn:matches"
  | "fn:deep-equal" | "op:general-eq" | "op:general-ne" | "op:general-lt"
  | "op:general-le" | "op:general-gt" | "op:general-ge"
  | "fs:predicate-truth" ->
      Some { kind = AK_boolean; occ = exactly_one }
  | "op:eq" | "op:ne" | "op:lt" | "op:le" | "op:gt" | "op:ge"
  | "op:is-same-node" | "op:node-before" | "op:node-after" ->
      Some { kind = AK_boolean; occ = zero_or_one }
  | "fn:string" | "fn:concat" | "fn:string-join" | "fn:normalize-space"
  | "fn:upper-case" | "fn:lower-case" | "fn:substring" | "fn:translate"
  | "fn:replace" | "fn:substring-before" | "fn:substring-after" | "fn:name"
  | "fn:local-name" | "fs:item-sequence-to-string" ->
      Some { kind = AK_string; occ = exactly_one }
  | "fn:tokenize" -> Some { kind = AK_string; occ = zero_or_more }
  | "fn:number" | "fn:avg" -> Some { kind = AK_double; occ = zero_or_one }
  | "op:to" | "fn:index-of" | "fn:string-to-codepoints" ->
      Some { kind = AK_integer; occ = zero_or_more }
  | "op:union" | "op:intersect" | "op:except" ->
      Some { kind = AK_node; occ = zero_or_more }
  | "fn:data" | "fn:distinct-values" -> Some { kind = AK_atomic; occ = zero_or_more }
  | _ -> None

(* Environment: static types of the dependent input's tuple fields and of
   the dependent item input (IN), threaded the same way the evaluator
   threads layouts. *)
type env = { fields : (field * t) list; input_item : t option }

let top_env = { fields = []; input_item = None }

(* The static type of an item-valued plan.  Conservative: anything not
   understood infers to [unknown]. *)
let rec infer (env : env) (p : plan) : t =
  match p with
  | Empty -> { kind = AK_item; occ = empty_occ }
  | Scalar a -> { kind = kind_of_atomic a; occ = exactly_one }
  | Seq (a, b) ->
      let ta = infer env a and tb = infer env b in
      { kind = join_kind ta.kind tb.kind; occ = add_occ ta.occ tb.occ }
  | Element _ -> { kind = AK_element; occ = exactly_one }
  | Attribute _ -> { kind = AK_attribute; occ = exactly_one }
  | Text _ -> { kind = AK_text; occ = zero_or_one }
  | Comment _ -> { kind = AK_comment; occ = exactly_one }
  | Pi _ -> { kind = AK_pi; occ = exactly_one }
  | TreeJoin (_, test, _) ->
      let kind =
        match test with
        | Ast.Kind_test Seqtype.It_text -> AK_text
        | Ast.Kind_test Seqtype.It_comment -> AK_comment
        | Ast.Kind_test Seqtype.It_pi -> AK_pi
        | Ast.Kind_test (Seqtype.It_element _) -> AK_element
        | Ast.Kind_test (Seqtype.It_attribute _) -> AK_attribute
        | Ast.Kind_test Seqtype.It_document -> AK_document
        | Ast.Kind_test (Seqtype.It_node | Seqtype.It_item | Seqtype.It_atomic _) ->
            AK_node
        | Ast.Name_test _ -> AK_node (* element or attribute, depending on axis *)
      in
      { kind; occ = zero_or_more }
  | TreeProject (_, _) -> { kind = AK_node; occ = zero_or_more }
  | Castable _ | TypeMatches _ | MapSome _ | MapEvery _ ->
      { kind = AK_boolean; occ = exactly_one }
  | Cast (tn, optional, _) ->
      let kind =
        match tn with
        | Atomic.T_integer -> AK_integer
        | Atomic.T_decimal -> AK_decimal
        | Atomic.T_double -> AK_double
        | Atomic.T_string -> AK_string
        | Atomic.T_boolean -> AK_boolean
        | Atomic.T_untyped -> AK_untyped
        | _ -> AK_atomic
      in
      { kind; occ = (if optional then zero_or_one else exactly_one) }
  | Validate _ -> { kind = AK_node; occ = exactly_one }
  | TypeAssert (_, inner) -> infer env inner
  | Cond (_, t, e) -> join (infer env t) (infer env e)
  | Call (f, _) -> ( match call_type f with Some t -> t | None -> unknown)
  | Parse _ -> { kind = AK_document; occ = exactly_one }
  | MapToItem (dep, input) ->
      let td = infer { env with fields = infer_fields env input @ env.fields } dep in
      { td with occ = zero_or_more }
  | Input -> ( match env.input_item with Some t -> t | None -> unknown)
  | FieldAccess q -> (
      match List.assoc_opt q env.fields with Some t -> t | None -> unknown)
  | Var _ | Serialize _ | Quantified _ -> unknown
  | TupleConstruct _ | Select _ | Product _ | Join _ | LOuterJoin _ | Map _
  | OMap _ | MapConcat _ | OMapConcat _ | MapIndex _ | MapIndexStep _
  | OrderBy _ | GroupBy _ | MapFromItem _ ->
      unknown

(* Static types of the output tuple fields of a table-producing plan,
   mirroring the layout inference of the evaluator.  Unknown operators
   contribute nothing (absent fields infer to [unknown]). *)
and infer_fields (env : env) (p : plan) : (field * t) list =
  match p with
  | TupleConstruct fields -> List.map (fun (q, fp) -> (q, infer env fp)) fields
  | Select (_, i) | OrderBy (_, i) -> infer_fields env i
  | Product (a, b) | Join (_, a, b) -> infer_fields env a @ infer_fields env b
  | LOuterJoin (q, _, a, b) ->
      ignore q;
      (* the null flag and the weakening of the right side's occurrences
         are ignored: a right field's kind is unchanged, and occurrences
         only weaken towards zero, which all match-judgments treat
         conservatively below through join with empty *)
      infer_fields env a
      @ List.map
          (fun (f, t) -> (f, { t with occ = { t.occ with lo = 0 } }))
          (infer_fields env b)
  | Map (d, i) -> infer_fields { env with fields = infer_fields env i @ env.fields } d
  | OMap (_, i) -> infer_fields env i
  | MapConcat (d, i) ->
      let fi = infer_fields env i in
      fi @ infer_fields { env with fields = fi @ env.fields } d
  | OMapConcat (_, d, i) ->
      let fi = infer_fields env i in
      fi
      @ List.map
          (fun (f, t) -> (f, { t with occ = { t.occ with lo = 0 } }))
          (infer_fields { env with fields = fi @ env.fields } d)
  | MapIndex (q, i) | MapIndexStep (q, i) ->
      (q, { kind = AK_integer; occ = exactly_one }) :: infer_fields env i
  | GroupBy (g, i) ->
      (* the aggregate field's type is the post-plan's, with IN unknown *)
      infer_fields env i @ [ (g.g_agg, unknown) ]
  | MapFromItem (d, i) ->
      let item =
        let ti = infer env i in
        { ti with occ = exactly_one }
      in
      infer_fields { env with input_item = Some item } d
  | Cond (_, t, _) -> infer_fields env t
  | _ -> []

(* Does static type [t] prove membership in sequence type [ty]?  Only
   schema-independent judgments are made (nominal element types need the
   schema and stay dynamic). *)
let definitely_matches (t : t) (ty : Seqtype.t) : bool =
  let kind_matches kind (it : Seqtype.item_type) =
    match (kind, it) with
    | _, Seqtype.It_item -> true
    | k, Seqtype.It_node -> is_node_kind k
    | AK_element, Seqtype.It_element (None, None) -> true
    | AK_attribute, Seqtype.It_attribute (None, None) -> true
    | AK_text, Seqtype.It_text -> true
    | AK_comment, Seqtype.It_comment -> true
    | AK_pi, Seqtype.It_pi -> true
    | AK_document, Seqtype.It_document -> true
    | AK_integer, Seqtype.It_atomic (Atomic.T_integer | Atomic.T_decimal) -> true
    | AK_decimal, Seqtype.It_atomic Atomic.T_decimal -> true
    | AK_double, Seqtype.It_atomic Atomic.T_double -> true
    | AK_string, Seqtype.It_atomic Atomic.T_string -> true
    | AK_boolean, Seqtype.It_atomic Atomic.T_boolean -> true
    | AK_untyped, Seqtype.It_atomic Atomic.T_untyped -> true
    | _ -> false
  in
  let occ_matches occ (o : Seqtype.occurrence) =
    match o with
    | Seqtype.Exactly_one -> occ.lo >= 1 && occ.hi = Some 1
    | Seqtype.Zero_or_one -> ( match occ.hi with Some h -> h <= 1 | None -> false)
    | Seqtype.Zero_or_more -> true
    | Seqtype.One_or_more -> occ.lo >= 1
  in
  match ty with
  | Seqtype.Empty_sequence -> t.occ.hi = Some 0
  | Seqtype.Occ (it, o) ->
      (occ_matches t.occ o && (t.occ.hi = Some 0 || kind_matches t.kind it))

(* Can [t] definitely NOT match [ty]?  Used to prune typeswitch branches.
   Sound only for kind-level disjointness with wildcard tests. *)
let definitely_mismatches (t : t) (ty : Seqtype.t) : bool =
  let disjoint kind (it : Seqtype.item_type) =
    match (kind, it) with
    | _, Seqtype.It_item -> false
    | k, Seqtype.It_node -> is_atomic_kind k
    | k, Seqtype.It_element _ when is_atomic_kind k -> true
    | k, Seqtype.It_attribute _ when is_atomic_kind k -> true
    | k, Seqtype.It_atomic _ when is_node_kind k -> true
    | AK_text, (Seqtype.It_element _ | Seqtype.It_attribute _ | Seqtype.It_document) -> true
    | AK_element, (Seqtype.It_text | Seqtype.It_attribute _ | Seqtype.It_document | Seqtype.It_comment | Seqtype.It_pi) -> true
    | AK_attribute, (Seqtype.It_text | Seqtype.It_element _ | Seqtype.It_document | Seqtype.It_comment | Seqtype.It_pi) -> true
    | AK_boolean, Seqtype.It_atomic tn -> tn <> Atomic.T_boolean
    | AK_integer, Seqtype.It_atomic tn ->
        not (List.mem tn [ Atomic.T_integer; Atomic.T_decimal ])
    | AK_string, Seqtype.It_atomic tn -> tn <> Atomic.T_string
    | AK_untyped, Seqtype.It_atomic tn -> tn <> Atomic.T_untyped
    | _ -> false
  in
  match ty with
  | Seqtype.Empty_sequence -> t.occ.lo >= 1
  | Seqtype.Occ (it, o) -> (
      (* cardinality contradiction *)
      (match o with
      | Seqtype.Exactly_one | Seqtype.Zero_or_one -> t.occ.lo > 1
      | Seqtype.One_or_more -> t.occ.hi = Some 0
      | Seqtype.Zero_or_more -> false)
      ||
      (* kind contradiction on a provably non-empty value *)
      match o with
      | Seqtype.Exactly_one | Seqtype.One_or_more ->
          t.occ.lo >= 1 && disjoint t.kind it
      | Seqtype.Zero_or_one | Seqtype.Zero_or_more ->
          t.occ.lo >= 1 && disjoint t.kind it)

(* The type-driven simplification pass: remove provable TypeAsserts, fold
   provable TypeMatches/Castable, prune dead Cond branches.  The
   environment is threaded into dependent sub-plans the same way the
   evaluator threads layouts. *)
let rec simplify_in (env : env) (p : plan) : plan =
  let dep_env i = { env with fields = infer_fields env i @ env.fields } in
  let p =
    match p with
    | Select (d, i) -> Select (simplify_in (dep_env i) d, simplify_in env i)
    | Map (d, i) -> Map (simplify_in (dep_env i) d, simplify_in env i)
    | MapConcat (d, i) -> MapConcat (simplify_in (dep_env i) d, simplify_in env i)
    | OMapConcat (q, d, i) ->
        OMapConcat (q, simplify_in (dep_env i) d, simplify_in env i)
    | MapToItem (d, i) -> MapToItem (simplify_in (dep_env i) d, simplify_in env i)
    | MapSome (d, i) -> MapSome (simplify_in (dep_env i) d, simplify_in env i)
    | MapEvery (d, i) -> MapEvery (simplify_in (dep_env i) d, simplify_in env i)
    | MapFromItem (d, i) ->
        let item = { (infer env i) with occ = exactly_one } in
        MapFromItem
          (simplify_in { env with input_item = Some item } d, simplify_in env i)
    | OrderBy (specs, i) ->
        OrderBy
          ( List.map (fun sp -> { sp with skey = simplify_in (dep_env i) sp.skey }) specs,
            simplify_in env i )
    | GroupBy (g, i) ->
        GroupBy
          ( {
              g with
              g_pre = simplify_in (dep_env i) g.g_pre;
              g_post = simplify_in top_env g.g_post;
            },
            simplify_in env i )
    | other -> map_children (simplify_in env) other
  in
  match p with
  | TypeAssert (ty, inner) when definitely_matches (infer env inner) ty -> inner
  | TypeMatches (ty, inner) when definitely_matches (infer env inner) ty ->
      Scalar (Atomic.Boolean true)
  | TypeMatches (ty, inner) when definitely_mismatches (infer env inner) ty ->
      Scalar (Atomic.Boolean false)
  | Cond (Scalar (Atomic.Boolean true), t, _) -> t
  | Cond (Scalar (Atomic.Boolean false), _, e) -> e
  | Call ("fn:boolean", [ inner ])
    when (infer env inner).kind = AK_boolean && (infer env inner).occ = exactly_one ->
      inner
  | other -> other

let simplify (p : plan) : plan = simplify_in top_env p
