(** Cost-based physical planning: translate a (rewritten) logical plan
    into the execution-strategy-carrying physical algebra.

    The planner makes every physical decision the evaluator dispatches
    on — join algorithm (hash / sort / nested loop) and hash build side,
    index-vs-walk per axis step, step fusion and streaming-order
    analysis, positional take-while bounds, streaming builtin calls, and
    the explicit materialization of join/product build sides — and
    annotates every operator with an estimated output cardinality and
    cumulative cost.

    Cardinality estimates are fed by the {!Xqc_store.Store} statistics
    API (exact per-qname counts from the interval-encoded name indexes,
    averaged over the indexed document roots), with fixed fan-out and
    selectivity defaults when no index has been built.  Planning is
    therefore statistics-sensitive: the same logical plan may get a
    different physical plan once documents have been indexed. *)

open Xqc_algebra

type config = {
  force_join : Physical.join_algorithm option;
      (** override the cost-based algorithm choice for split join
          predicates (benchmarks, the nested-loop-only strategy, and
          the planner-agreement property tests); an incompatible force —
          e.g. [Sort] on an equality predicate — falls back to the
          always-sound nested loop *)
  par_degree : int;
      (** per-query partition budget (from the shared domain pool, wired
          in by the driver); 1 disables partitioned annotations *)
  par_threshold : float;
      (** estimated rows below which a partitioned annotation is not
          granted, when index statistics exist; without statistics the
          annotation is optimistic and the evaluator gates on actual
          width at run time *)
}

val default_config : config

val default_par_threshold : float ref
(** The ambient [par_threshold] drivers start from (default 1000.);
    tests and benchmarks lower it to force partitioned plans onto small
    documents. *)

val plan : ?config:config -> Algebra.plan -> Physical.t

(** {1 Estimation internals} — exposed for tests and EXPLAIN tooling. *)

val step_rows : Xqc_frontend.Ast.axis -> Xqc_frontend.Ast.node_test -> float -> float
(** Estimated output cardinality of one axis step over the given number
    of context nodes. *)

val index_available : Xqc_frontend.Ast.axis -> Xqc_frontend.Ast.node_test -> bool
(** Whether the store's indexed paths can serve this step at all (store
    enabled and axis/test covered). *)

val positional_bound : Algebra.plan -> Algebra.plan -> int option
(** [positional_bound pred input]: the position cutoff when [pred] is a
    positional comparison against the index field minted by [input]
    (a MapIndex/MapIndexStep). *)

val ordered_chain : (Xqc_frontend.Ast.axis * Xqc_frontend.Ast.node_test) list -> bool
(** The static condition under which a step chain preserves document
    order when streamed item by item. *)

val fuse_steps :
  (Xqc_frontend.Ast.axis * Xqc_frontend.Ast.node_test) list ->
  (Xqc_frontend.Ast.axis * Xqc_frontend.Ast.node_test) list
(** descendant-or-self::node()/child::t -> descendant::t fusion. *)
