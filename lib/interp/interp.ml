(* Direct interpretation of the XQuery Core AST.

   This is the paper's "No algebra" baseline (Table 3): the original Galax
   evaluated the normalized abstract syntax tree directly, with variable
   bindings kept in a dynamic environment.  We reproduce that design
   deliberately — association-list environments, re-evaluation of nested
   FLWOR blocks per outer binding, no unnesting, no join algorithms — so
   the benchmark measures the same gap the paper measured.

   The [Indexed] variant (see indexed.ml) adds an automatic hash index on
   equality where-clauses and stands in for Saxon in Table 5. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend
open Xqc_runtime
open Core_ast

type env = (string * Item.sequence) list

type hooks = {
  (* The indexed interpreter overrides this to short-circuit joinable
     for/where combinations; the naive interpreter leaves it as None. *)
  try_for_where :
    (hooks -> Dynamic_ctx.t -> env -> cclause list ->
     (env -> Item.sequence) -> Item.sequence option)
    option;
}

let naive_hooks = { try_for_where = None }

let ebv = Item.effective_boolean_value

let rec eval (h : hooks) (ctx : Dynamic_ctx.t) (env : env) (e : cexpr) :
    Item.sequence =
  match e with
  | C_empty -> []
  | C_scalar a -> [ Item.Atom a ]
  | C_seq (a, b) -> eval h ctx env a @ eval h ctx env b
  | C_var v -> (
      match List.assoc_opt v env with
      | Some s -> s
      | None -> Dynamic_ctx.lookup_variable ctx v)
  | C_elem (name, content) ->
      [ Eval.construct_element name (eval h ctx env content) ]
  | C_attr (name, content) ->
      [ Eval.construct_attribute name (eval h ctx env content) ]
  | C_text content -> (
      match eval h ctx env content with
      | [] -> []
      | items ->
          [ Item.Node (Node.text (String.concat " " (List.map Item.string_value items))) ])
  | C_comment content ->
      [ Item.Node (Node.comment (String.concat " " (List.map Item.string_value (eval h ctx env content)))) ]
  | C_pi (target, content) ->
      [ Item.Node (Node.pi target (String.concat " " (List.map Item.string_value (eval h ctx env content)))) ]
  | C_if (c, t, e) -> if ebv (eval h ctx env c) then eval h ctx env t else eval h ctx env e
  | C_flwor (clauses, orders, ret) -> eval_flwor h ctx env clauses orders ret
  | C_quant (q, v, source, body) ->
      let items = eval h ctx env source in
      let test it = ebv (eval h ctx ((v, [ it ]) :: env) body) in
      let result =
        match q with
        | Ast.Some_quant -> List.exists test items
        | Ast.Every_quant -> List.for_all test items
      in
      [ Item.Atom (Atomic.Boolean result) ]
  | C_typeswitch (x, scrut, cases, default) ->
      let v = eval h ctx env scrut in
      let env' = (x, v) :: env in
      let rec pick = function
        | [] -> eval h ctx env' default
        | (ty, body) :: rest ->
            if Seqtype.matches ctx.Dynamic_ctx.schema v ty then eval h ctx env' body
            else pick rest
      in
      pick cases
  | C_call (name, args) -> eval_call h ctx env name args
  | C_treejoin (axis, test, input) ->
      Eval.tree_join ctx.Dynamic_ctx.schema axis test (eval h ctx env input)
  | C_instance_of (c, ty) ->
      [ Item.Atom (Atomic.Boolean (Seqtype.matches ctx.Dynamic_ctx.schema (eval h ctx env c) ty)) ]
  | C_typeassert (c, ty) ->
      Seqtype.assert_matches ctx.Dynamic_ctx.schema (eval h ctx env c) ty
  | C_cast (c, tn, optional) -> (
      match Item.atomize (eval h ctx env c) with
      | [] ->
          if optional then []
          else Dynamic_ctx.dynamic_error "cast of an empty sequence"
      | [ a ] -> [ Item.Atom (Atomic.cast tn a) ]
      | _ -> Dynamic_ctx.dynamic_error "cast of a non-singleton sequence")
  | C_castable (c, tn, optional) ->
      let ok =
        match Item.atomize (eval h ctx env c) with
        | [] -> optional
        | [ a ] -> Atomic.castable tn a
        | _ -> false
      in
      [ Item.Atom (Atomic.Boolean ok) ]
  | C_validate c -> (
      match eval h ctx env c with
      | [ Item.Node n ] -> [ Item.Node (Schema.validate ctx.Dynamic_ctx.schema n) ]
      | _ -> Dynamic_ctx.dynamic_error "validate requires a single node")

and eval_call h ctx env name args =
  let vals = List.map (eval h ctx env) args in
  match Hashtbl.find_opt ctx.Dynamic_ctx.functions name with
  | Some f -> f.Dynamic_ctx.func_impl ctx vals
  | None -> (
      match Builtins.find name with
      | Some f -> f ctx vals
      | None -> Dynamic_ctx.dynamic_error "unknown function %s" name)

(* FLWOR evaluation: nested iteration over the clauses; with order-by the
   completed environments are materialized and sorted first. *)
and eval_flwor h ctx env clauses orders ret =
  match orders with
  | [] -> run_clauses h ctx env clauses (fun env -> eval h ctx env ret)
  | _ ->
      let envs = ref [] in
      let _ =
        run_clauses h ctx env clauses (fun env ->
            envs := env :: !envs;
            [])
      in
      let envs = List.rev !envs in
      (* keys are classified once into typed comparison classes — the
         same [Promotion.order_key] ordering the algebraic evaluator
         uses, so all strategies sort mixed-type keys identically *)
      let classify a =
        match Promotion.order_key a with
        | k -> k
        | exception Promotion.Type_mismatch _ ->
            Dynamic_ctx.dynamic_error "order by: incomparable values"
      in
      let keyed =
        List.map
          (fun env ->
            let keys =
              List.map
                (fun o ->
                  match Item.atomize (eval h ctx env o.ckey) with
                  | [] -> None
                  | [ a ] -> Some (classify a)
                  | _ -> Dynamic_ctx.dynamic_error "order by key is not a singleton")
                orders
            in
            (keys, env))
          envs
      in
      let compare_keys k1 k2 =
        let rec go k1 k2 specs =
          match (k1, k2, specs) with
          | [], [], [] -> 0
          | a :: r1, b :: r2, o :: rs ->
              let c =
                match (a, b) with
                | None, None -> 0
                | None, Some _ -> (
                    match o.cempty with Ast.Empty_least -> -1 | Ast.Empty_greatest -> 1)
                | Some _, None -> (
                    match o.cempty with Ast.Empty_least -> 1 | Ast.Empty_greatest -> -1)
                | Some a, Some b -> (
                    match Promotion.compare_order_keys a b with
                    | c -> c
                    | exception Promotion.Type_mismatch _ ->
                        Dynamic_ctx.dynamic_error "order by: incomparable values")
              in
              let c = match o.cdir with Ast.Ascending -> c | Ast.Descending -> -c in
              if c <> 0 then c else go r1 r2 rs
          | _ -> 0
        in
        go k1 k2 orders
      in
      let sorted = List.stable_sort (fun (k1, _) (k2, _) -> compare_keys k1 k2) keyed in
      List.concat_map (fun (_, env) -> eval h ctx env ret) sorted

and run_clauses h ctx env clauses (k : env -> Item.sequence) : Item.sequence =
  (* give the indexed variant a chance to consume a for/where pair *)
  match h.try_for_where with
  | Some f -> (
      match f h ctx env clauses k with
      | Some result -> result
      | None -> run_one h ctx env clauses k)
  | None -> run_one h ctx env clauses k

and run_one h ctx env clauses k =
  match clauses with
  | [] -> k env
  | CC_for { var; at_var; astype; source } :: rest ->
      let items = eval h ctx env source in
      let items =
        match astype with
        | None -> items
        | Some ty ->
            List.concat_map
              (fun it -> Seqtype.assert_matches ctx.Dynamic_ctx.schema [ it ] ty)
              items
      in
      List.concat
        (List.mapi
           (fun i it ->
             let env = (var, [ it ]) :: env in
             let env =
               match at_var with
               | None -> env
               | Some a -> (a, [ Item.Atom (Atomic.Integer (i + 1)) ]) :: env
             in
             run_clauses h ctx env rest k)
           items)
  | CC_let { var; astype; value } :: rest ->
      let v = eval h ctx env value in
      let v =
        match astype with
        | None -> v
        | Some ty -> Seqtype.assert_matches ctx.Dynamic_ctx.schema v ty
      in
      run_clauses h ctx ((var, v) :: env) rest k
  | CC_where w :: rest ->
      if ebv (eval h ctx env w) then run_clauses h ctx env rest k else []

(* ------------------------------------------------------------------ *)
(* Whole-query evaluation                                              *)
(* ------------------------------------------------------------------ *)

let install_query ?(hooks = naive_hooks) (ctx : Dynamic_ctx.t) (q : cquery) :
    Dynamic_ctx.t -> Item.sequence =
  List.iter
    (fun (f : cfunction) ->
      let impl ctx args =
        let frame = List.combine (List.map fst f.cf_params) args in
        let result = eval hooks ctx frame f.cf_body in
        match f.cf_return with
        | None -> result
        | Some ty -> Seqtype.assert_matches ctx.Dynamic_ctx.schema result ty
      in
      Hashtbl.replace ctx.Dynamic_ctx.functions f.cf_name
        { Dynamic_ctx.func_params = List.map fst f.cf_params; func_impl = impl })
    q.cq_functions;
  fun ctx ->
    List.iter
      (fun (v, e) -> Dynamic_ctx.bind_global ctx v (eval hooks ctx [] e))
      q.cq_globals;
    eval hooks ctx [] q.cq_main

let run ?hooks ctx (q : cquery) : Item.sequence = (install_query ?hooks ctx q) ctx
