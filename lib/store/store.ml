(* Indexed document store: interval-encoded structural name indexes.

   Every renumbered tree already carries a pre/size interval encoding —
   preorder ids ([Node.nid]) plus cached subtree extents — so "m is a
   descendant of n" is the integer test

     n.nid < m.nid && m.nid < n.nid + n.extent

   On top of that, this module maintains one lazily built index per
   document root: for each element and attribute qname, the array of
   nodes with that name in document (= nid) order, plus a "*" entry
   holding every element.  An axis step against an indexed root then
   becomes two binary searches delimiting the qname's nid range inside
   the context node's interval:

     descendant::t          the sub-array  (n.nid, n.nid + n.extent)
     descendant-or-self::t  the same with the lower bound closed
     child::t               the range, filtered by parent identity
     fn:count(//t)          hi - lo, no node is touched at all
     fn:exists(//t)         hi > lo

   Validity protocol: indexes are keyed by the root's nid at build time.
   [Node.renumber] — the only operation that changes ids, called on
   every construction boundary — gives the root a fresh nid, so a stale
   index can never be looked up again: the next query misses the cache
   and rebuilds.  Stale entries are purged opportunistically on build.
   Nodes copied out of an indexed tree ([Node.copy]) are fresh nodes in
   a fresh tree and never alias old intervals.

   The build is a single preorder walk that also verifies the preorder
   invariant (strictly ascending nids); an assembled tree that was never
   renumbered as a whole is recorded as unindexable and served by the
   walking fallback.  All decisions are counted in the obs global
   counters (index_builds / index_hits / index_fallbacks) so EXPLAIN
   ANALYZE and --stats-json show which path ran. *)

open Xqc_xml
module Obs = Xqc_obs.Obs

(* [Auto] indexes roots of at least [!min_index_size] nodes, [Force]
   indexes everything (tests), [Off] disables lookups entirely.  The
   XQC_INDEX environment variable seeds the initial mode. *)
type mode = Auto | Off | Force

let mode =
  ref
    (match Option.map String.lowercase_ascii (Sys.getenv_opt "XQC_INDEX") with
    | Some ("off" | "0" | "no" | "walk") -> Off
    | Some ("force" | "always") -> Force
    | _ -> Auto)

let min_index_size = ref 64

let c_builds = Obs.global_counter "index_builds"
let c_build_nodes = Obs.global_counter "index_build_nodes"
let c_hits = Obs.global_counter "index_hits"
let c_fallbacks = Obs.global_counter "index_fallbacks"

type index = {
  ix_root : Node.t;
  ix_elems : (string, Node.t array) Hashtbl.t;
      (* element qname -> nodes in nid order; "*" -> every element *)
  ix_attrs : (string, Node.t array) Hashtbl.t;
  mutable ix_nodes : int;  (* total nodes walked at build (patched on update) *)
}

(* An entry remembers unindexable roots too, so a tree that violates the
   preorder invariant (or is below the Auto threshold) is not re-walked
   on every query. *)
type entry = Indexed of index | Unindexable of Node.t

(* The cache is shared across the query server's worker domains — and,
   since the partitioned execution tier, across the helper domains of a
   single query.  It is an immutable map published through one [Atomic]:
   readers do a plain [Atomic.get] + functional lookup and acquire NO
   lock at all.  PR 6's contention telemetry showed why this matters:
   the previous mutex-guarded hash table was acquired 450–630k times
   per bench run (once per axis step) — zero-contention overhead at one
   worker, 132 ms of lock wait at four, and a guaranteed serialization
   point for intra-query partitions all hammering the index at once.

   The tmutex now guards only the rebuild/publish path ([entry_for]'s
   miss branch, [clear]), never a read.  Publishing copies the map
   (persistent [Map], so "copy" is O(log n) path copying), purges stale
   keys, and [Atomic.set]s the new version; concurrent readers keep the
   old snapshot until their next lookup.

   Safety of the unlocked build (unchanged from the double-checked
   scheme this replaces): the walk re-derives subtree extents (writes to
   shared nodes), but every extent it writes is the same value any
   racing build — or the original [Node.renumber] — computes for that
   node, so racing writers store identical ints.  A concurrent reader
   sees either the old value or the new one; the only observable
   transition is 0 -> k on trees numbered before extent caching existed,
   and a reader seeing 0 takes the walking fallback ([name_range]
   refuses extent <= 0).  The per-name node arrays inside an [index] are
   immutable after [build], so they are read lock-free once handed
   out. *)
let lock = Obs.tmutex "store_publish"

module IntMap = Map.Make (Int)

let snapshot : entry IntMap.t Stdlib.Atomic.t = Stdlib.Atomic.make IntMap.empty

let entry_root = function Indexed ix -> ix.ix_root | Unindexable r -> r

let cache_size () = IntMap.cardinal (Stdlib.Atomic.get snapshot)
let clear () = Obs.with_lock lock (fun () -> Stdlib.Atomic.set snapshot IntMap.empty)

(* Entries whose root has been renumbered since build can never be
   looked up again (the key is the old nid); drop them so the cache does
   not keep dead trees alive. *)
let purge_stale (m : entry IntMap.t) : entry IntMap.t =
  IntMap.filter (fun key e -> (entry_root e).Node.nid = key) m

let live_entry key e = if (entry_root e).Node.nid = key then Some e else None

let empty_array : Node.t array = [||]

let build (root : Node.t) : entry =
  let elems : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let attrs : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let all_elems = ref [] in
  let push tbl name n =
    match Hashtbl.find_opt tbl name with
    | Some l -> l := n :: !l
    | None -> Hashtbl.add tbl name (ref [ n ])
  in
  let last = ref (root.Node.nid - 1) in
  let preorder = ref true in
  let count = ref 0 in
  (* one preorder walk: collect per-name node lists, re-derive subtree
     extents (covering trees numbered before extent caching existed),
     and verify that nids are strictly ascending *)
  let rec go n =
    if n.Node.nid <= !last then preorder := false;
    last := n.Node.nid;
    let start = !count in
    incr count;
    (match n.Node.desc with
    | Node.Element e ->
        push elems e.ename n;
        all_elems := n :: !all_elems
    | Node.Attribute a -> push attrs a.aname n
    | Node.Document _ | Node.Text _ | Node.Comment _ | Node.Pi _ -> ());
    List.iter go (Node.attributes n);
    List.iter go (Node.children n);
    (* re-derive the extent only when it was never cached: on
       gap-numbered (updatable) trees the extent is the reserved
       interval width, which a node-count walk must not clobber *)
    if n.Node.extent = 0 then n.Node.extent <- !count - start
  in
  go root;
  if not !preorder then Unindexable root
  else begin
    let finalize tbl =
      let out = Hashtbl.create (Hashtbl.length tbl) in
      Hashtbl.iter (fun name l -> Hashtbl.add out name (Array.of_list (List.rev !l))) tbl;
      out
    in
    let ix_elems = finalize elems in
    Hashtbl.replace ix_elems "*" (Array.of_list (List.rev !all_elems));
    Obs.incr_counter c_builds;
    Obs.add_counter c_build_nodes !count;
    Indexed { ix_root = root; ix_elems; ix_attrs = finalize attrs; ix_nodes = !count }
  end

(* Resolve: lock-free snapshot lookup (the hot path — no mutex, no
   write, just an [Atomic.get] and a functional [Map] descent), unlocked
   build on miss, then a locked re-check-and-publish where the loser of
   a racing build discards its entry and adopts the winner's.  Stale
   entries are purged as part of assembling the new version. *)
let entry_for (root : Node.t) : entry =
  match IntMap.find_opt root.Node.nid (Stdlib.Atomic.get snapshot) with
  | Some e when entry_root e == root -> e
  | _ ->
      let e =
        if !mode = Auto && root.Node.extent > 0 && root.Node.extent < !min_index_size
        then Unindexable root
        else build root
      in
      Obs.with_lock lock (fun () ->
          let m = Stdlib.Atomic.get snapshot in
          match IntMap.find_opt root.Node.nid m with
          | Some e' when entry_root e' == root ->
              (* lost a racing build: adopt the winner's entry *)
              e'
          | _ ->
              Stdlib.Atomic.set snapshot (IntMap.add root.Node.nid e (purge_stale m));
              e)

(* Resolve the index serving [n]'s tree, building it on first use.
   [None] means the caller must walk (mode off, tree unindexable, or
   below the Auto threshold). *)
let index_for (n : Node.t) : index option =
  match !mode with
  | Off -> None
  | Auto | Force -> (
      match entry_for (Node.root n) with
      | Indexed ix ->
          Obs.incr_counter c_hits;
          Some ix
      | Unindexable _ ->
          Obs.incr_counter c_fallbacks;
          None)

(* Smallest i with arr.(i).nid >= lo. *)
let lower_bound (arr : Node.t array) (lo : int) : int =
  let a = ref 0 and b = ref (Array.length arr) in
  while !a < !b do
    let m = (!a + !b) / 2 in
    if arr.(m).Node.nid < lo then a := m + 1 else b := m
  done;
  !a

(* The qname's occurrence range inside [n]'s subtree interval:
   [(arr, i, j)] with the matches at positions [i, j).  [self] closes
   the lower bound (descendant-or-self).  [None] only when no index
   serves the tree or [n]'s extent is unknown. *)
let name_range ?(self = false) (tbl : index -> (string, Node.t array) Hashtbl.t)
    (n : Node.t) (name : string) : (Node.t array * int * int) option =
  match index_for n with
  | None -> None
  | Some ix ->
      if n.Node.extent <= 0 then begin
        (* not part of the indexed interval numbering: fall back *)
        Obs.incr_counter c_fallbacks;
        None
      end
      else
        let arr =
          match Hashtbl.find_opt (tbl ix) name with Some a -> a | None -> empty_array
        in
        let lo = if self then n.Node.nid else n.Node.nid + 1 in
        let hi = n.Node.nid + n.Node.extent in
        let i = lower_bound arr lo in
        let j = lower_bound arr hi in
        Some (arr, i, j)

let elems ix = ix.ix_elems
let attrs ix = ix.ix_attrs

let slice_list arr i j =
  let out = ref [] in
  for k = j - 1 downto i do
    out := arr.(k) :: !out
  done;
  !out

let slice_seq (arr : Node.t array) i j : Node.t Seq.t =
  let rec go k () = if k >= j then Seq.Nil else Seq.Cons (arr.(k), go (k + 1)) in
  go i

(* ------------------------------------------------------------------ *)
(* Axis queries (None = caller falls back to the walking path)         *)
(* ------------------------------------------------------------------ *)

(* Raw range for the fused execution tier: the codegen executor blits
   the slice straight into its register batch, no list in between. *)
let descendant_range ?self n name : (Node.t array * int * int) option =
  name_range ?self elems n name

let descendants_by_name n name : Node.t list option =
  Option.map (fun (arr, i, j) -> slice_list arr i j) (name_range elems n name)

let descendants_by_name_seq n name : Node.t Seq.t option =
  Option.map (fun (arr, i, j) -> slice_seq arr i j) (name_range elems n name)

let descendant_or_self_by_name n name : Node.t list option =
  Option.map (fun (arr, i, j) -> slice_list arr i j) (name_range ~self:true elems n name)

let descendant_or_self_by_name_seq n name : Node.t Seq.t option =
  Option.map (fun (arr, i, j) -> slice_seq arr i j) (name_range ~self:true elems n name)

let count_descendants_by_name ?self n name : int option =
  Option.map (fun (_, i, j) -> j - i) (name_range ?self elems n name)

let exists_descendant_by_name ?self n name : bool option =
  Option.map (fun (_, i, j) -> j > i) (name_range ?self elems n name)

let is_child_of ~parent m =
  match Node.parent m with Some p -> p == parent | None -> false

(* Below this subtree size a direct scan of the child/attribute list
   beats two binary searches over document-sized arrays. *)
let small_subtree = ref 32

(* child::t through the descendant range, filtered by parent identity.
   Only worthwhile when the subtree holds few nodes of that name; when
   the range is larger than the child list — or the whole subtree is
   small enough to scan outright — the plain walk is cheaper, so the
   caller is sent back to it. *)
let children_by_name n name : Node.t list option =
  if n.Node.extent > 0 && n.Node.extent <= !small_subtree then None
  else
  match name_range elems n name with
  | None -> None
  | Some (arr, i, j) ->
      let r = j - i in
      (* r <= |children n| without computing the full length *)
      let rec at_least k l =
        k <= 0 || match l with [] -> false | _ :: rest -> at_least (k - 1) rest
      in
      if not (at_least r (Node.children n)) then begin
        Obs.incr_counter c_fallbacks;
        None
      end
      else Some (List.filter (is_child_of ~parent:n) (slice_list arr i j))

let attributes_by_name n name : Node.t list option =
  if n.Node.extent > 0 && n.Node.extent <= !small_subtree then None
  else
  match name_range attrs n name with
  | None -> None
  | Some (arr, i, j) ->
      let r = j - i in
      if r > List.length (Node.attributes n) then begin
        Obs.incr_counter c_fallbacks;
        None
      end
      else Some (List.filter (is_child_of ~parent:n) (slice_list arr i j))

let index_nodes n : int option = Option.map (fun ix -> ix.ix_nodes) (index_for n)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance (the update subsystem)                      *)
(* ------------------------------------------------------------------ *)

(* Look up the live index of [root] without building on miss: update
   patching must only touch indexes that already exist — a missing one
   is rebuilt lazily by the next query anyway. *)
let live_index (root : Node.t) : index option =
  match IntMap.find_opt root.Node.nid (Stdlib.Atomic.get snapshot) with
  | Some (Indexed ix) when ix.ix_root == root -> Some ix
  | _ -> None

(* Drop the entry keyed [nid] (retired document versions, evicted doc
   caches).  Without this an evicted root's index survives until some
   later publish happens to purge it — pinned memory, satellite of the
   renumber-only invalidation protocol. *)
let purge_nid (nid : int) : unit =
  Obs.with_lock lock (fun () ->
      let m = Stdlib.Atomic.get snapshot in
      if IntMap.mem nid m then Stdlib.Atomic.set snapshot (IntMap.remove nid m))

let purge_root (root : Node.t) : unit = purge_nid root.Node.nid

(* In-place patching of the per-name arrays.  Only the update subsystem
   calls these, and only on a document version with no admitted readers
   (the MVCC writer builds a fresh copy otherwise), so mutating the
   arrays inside the published entry races with nobody; the publish lock
   is still taken so a concurrent build of some other root republishing
   the snapshot map never interleaves with a table write.  Each patch is
   O(per-name array) array splicing — no tree walk beyond the changed
   subtree, no reparse. *)

(* Splice a contiguous ascending run (one inserted subtree's nodes of a
   given name; their nid interval is disjoint from every existing entry)
   into a sorted array. *)
let splice_run (arr : Node.t array) (add : Node.t array) : Node.t array =
  let n = Array.length arr and k = Array.length add in
  if k = 0 then arr
  else begin
    let p = lower_bound arr add.(0).Node.nid in
    let out = Array.make (n + k) add.(0) in
    Array.blit arr 0 out 0 p;
    Array.blit add 0 out p k;
    Array.blit arr p out (p + k) (n - p);
    out
  end

(* Drop every entry with nid in [lo, hi). *)
let remove_range (arr : Node.t array) (lo : int) (hi : int) : Node.t array =
  let i = lower_bound arr lo and j = lower_bound arr hi in
  if j <= i then arr
  else begin
    let n = Array.length arr in
    let out = Array.make (n - (j - i)) arr.(0) in
    Array.blit arr 0 out 0 i;
    Array.blit arr j out i (n - j);
    out
  end

(* Per-name node lists (document order) plus the node count of one
   subtree — the unit of insertion and deletion. *)
let collect_names (sub : Node.t) =
  let elems : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let attrs : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 4 in
  let all = ref [] in
  let count = ref 0 in
  let push tbl name n =
    match Hashtbl.find_opt tbl name with
    | Some l -> l := n :: !l
    | None -> Hashtbl.add tbl name (ref [ n ])
  in
  let rec go n =
    incr count;
    (match n.Node.desc with
    | Node.Element e ->
        push elems e.ename n;
        all := n :: !all
    | Node.Attribute a -> push attrs a.aname n
    | Node.Document _ | Node.Text _ | Node.Comment _ | Node.Pi _ -> ());
    List.iter go (Node.attributes n);
    List.iter go (Node.children n)
  in
  go sub;
  (elems, attrs, List.rev !all, !count)

(* [sub] was just placed (ids assigned) under [root]: merge its nodes
   into the live per-name arrays.  [false] = no live index to patch. *)
let patch_insert (root : Node.t) (sub : Node.t) : bool =
  match live_index root with
  | None -> false
  | Some ix ->
      let elems, attrs, all, count = collect_names sub in
      Obs.with_lock lock (fun () ->
          let add tbl name ns =
            let run = Array.of_list ns in
            let cur =
              Option.value (Hashtbl.find_opt tbl name) ~default:empty_array
            in
            Hashtbl.replace tbl name (splice_run cur run)
          in
          Hashtbl.iter (fun name l -> add ix.ix_elems name !l) elems;
          Hashtbl.iter (fun name l -> add ix.ix_attrs name !l) attrs;
          if all <> [] then add ix.ix_elems "*" all;
          ix.ix_nodes <- ix.ix_nodes + count);
      true

(* [sub] is being detached from [root] (ids still intact): remove its
   whole nid interval from every affected per-name array. *)
let patch_delete (root : Node.t) (sub : Node.t) : bool =
  match live_index root with
  | None -> false
  | Some ix ->
      let elems, attrs, all, count = collect_names sub in
      let lo = sub.Node.nid and hi = Node.interval_end sub in
      Obs.with_lock lock (fun () ->
          let rm tbl name =
            match Hashtbl.find_opt tbl name with
            | Some arr -> Hashtbl.replace tbl name (remove_range arr lo hi)
            | None -> ()
          in
          Hashtbl.iter (fun name _ -> rm ix.ix_elems name) elems;
          Hashtbl.iter (fun name _ -> rm ix.ix_attrs name) attrs;
          if all <> [] then rm ix.ix_elems "*";
          ix.ix_nodes <- ix.ix_nodes - count);
      true

(* [n] was renamed in place (same nid): move it between name buckets.
   The "*" array is name-independent and needs no change. *)
let patch_rename (root : Node.t) (n : Node.t) ~(old_name : string) : bool =
  match live_index root with
  | None -> false
  | Some ix -> (
      let tbl =
        match n.Node.desc with
        | Node.Element _ -> Some ix.ix_elems
        | Node.Attribute _ -> Some ix.ix_attrs
        | Node.Document _ | Node.Text _ | Node.Comment _ | Node.Pi _ -> None
      in
      match (tbl, Node.name n) with
      | Some tbl, Some new_name when not (String.equal old_name new_name) ->
          Obs.with_lock lock (fun () ->
              (match Hashtbl.find_opt tbl old_name with
              | Some arr ->
                  Hashtbl.replace tbl old_name
                    (remove_range arr n.Node.nid (n.Node.nid + 1))
              | None -> ());
              let cur =
                Option.value (Hashtbl.find_opt tbl new_name) ~default:empty_array
              in
              Hashtbl.replace tbl new_name (splice_run cur [| n |]));
          true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Statistics API (physical planner)                                   *)
(* ------------------------------------------------------------------ *)

type stats = { st_roots : int; st_nodes : int }

(* Statistics read the snapshot lock-free too (the planner calls these
   on every plan); stale entries are skipped rather than purged — the
   next publish drops them. *)
let stats () : stats =
  IntMap.fold
    (fun key e acc ->
      match live_entry key e with
      | Some (Indexed ix) ->
          { st_roots = acc.st_roots + 1; st_nodes = acc.st_nodes + ix.ix_nodes }
      | Some (Unindexable _) | None -> acc)
    (Stdlib.Atomic.get snapshot)
    { st_roots = 0; st_nodes = 0 }

(* Exact per-qname cardinality summed over every cached index: the
   length of the name's node array is the number of elements (or
   attributes) with that name in the indexed tree.  [None] when no index
   has been built (or lookups are off), in which case the planner falls
   back to its selectivity defaults. *)
let name_count (tbl : index -> (string, Node.t array) Hashtbl.t) (name : string)
    : int option =
  if !mode = Off then None
  else begin
    let found = ref false and total = ref 0 in
    IntMap.iter
      (fun key e ->
        match live_entry key e with
        | Some (Indexed ix) ->
            found := true;
            (match Hashtbl.find_opt (tbl ix) name with
            | Some arr -> total := !total + Array.length arr
            | None -> ())
        | Some (Unindexable _) | None -> ())
      (Stdlib.Atomic.get snapshot);
    if !found then Some !total else None
  end

let element_count (name : string) : int option = name_count elems name
let attribute_count (name : string) : int option = name_count attrs name

let total_elements () : int option = element_count "*"
