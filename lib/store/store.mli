(** Indexed document store: per-root structural name indexes over the
    pre/size interval encoding.

    Every renumbered tree carries preorder ids plus cached subtree
    extents, so the subtree of [n] is exactly the id interval
    [n.nid, n.nid + n.extent).  This module lazily builds, per document
    root, arrays of same-named element/attribute nodes in id order
    (plus a ["*"] entry holding every element); an axis step then
    resolves to two binary searches delimiting the name's range inside
    the context node's interval, and [fn:count]/[fn:exists] over a
    descendant step are answered from the range bounds without touching
    a node.

    Indexes are keyed by the root's nid at build time; [Node.renumber]
    gives the root a fresh nid, so stale indexes can never be looked up
    and are purged opportunistically.  Trees violating the preorder
    invariant are recorded as unindexable and served by the walking
    fallback.  All query functions return [None] when the caller should
    walk instead (mode off, unindexable tree, below the Auto threshold,
    or the index would be slower — e.g. [child::t] with more same-named
    descendants than children).  Builds, hits and fallbacks are recorded
    in the obs global counters (index_builds / index_build_nodes /
    index_hits / index_fallbacks). *)

open Xqc_xml

(** [Auto] indexes roots with at least [min_index_size] nodes, [Force]
    indexes everything, [Off] disables index lookups.  Seeded from the
    [XQC_INDEX] environment variable ("off"/"force"). *)
type mode = Auto | Off | Force

val mode : mode ref
val min_index_size : int ref

val small_subtree : int ref
(** Context nodes whose subtree is at most this many nodes answer
    [child::]/attribute queries by scanning, not through the index. *)

(** {1 Axis queries} — [None] means: walk instead. *)

val descendant_range :
  ?self:bool -> Node.t -> string -> (Node.t array * int * int) option
(** The raw occurrence range of descendant[-or-self]::name inside [n]'s
    subtree interval: [(arr, i, j)] with the matches at positions
    [i, j) of the name's nid-ordered node array.  Used by the fused
    execution tier to blit slices straight into register batches. *)

val descendants_by_name : Node.t -> string -> Node.t list option
val descendants_by_name_seq : Node.t -> string -> Node.t Seq.t option
val descendant_or_self_by_name : Node.t -> string -> Node.t list option
val descendant_or_self_by_name_seq : Node.t -> string -> Node.t Seq.t option

val count_descendants_by_name : ?self:bool -> Node.t -> string -> int option
(** Cardinality of descendant[-or-self]::name, from the range bounds
    alone. *)

val exists_descendant_by_name : ?self:bool -> Node.t -> string -> bool option

val children_by_name : Node.t -> string -> Node.t list option
(** The descendant range filtered by parent identity; falls back
    ([None]) when the range is larger than the child list. *)

val attributes_by_name : Node.t -> string -> Node.t list option

(** {1 Statistics} — the physical planner's cost-model inputs. *)

type stats = { st_roots : int;  (** indexed document roots *)
               st_nodes : int  (** total nodes covered by those indexes *) }

val stats : unit -> stats
(** Aggregate over every cached index (stale entries purged first). *)

val element_count : string -> int option
(** Exact number of elements with this qname summed over every cached
    index; [None] when no index has been built (or mode is [Off]), in
    which case the planner falls back to selectivity defaults. *)

val attribute_count : string -> int option

val total_elements : unit -> int option
(** [element_count "*"]: every element under any indexed root. *)

(** {1 Cache management} *)

val index_nodes : Node.t -> int option
(** Size (in nodes) of the index serving this node's tree, building it
    if needed; [None] when unindexed. *)

val cache_size : unit -> int
val clear : unit -> unit

val purge_root : Node.t -> unit
(** Drop the cached entry for this root (retired document versions,
    evicted doc caches).  Missing entries are a no-op. *)

val purge_nid : int -> unit
(** Like {!purge_root} when only the old key survives (the root has
    already been renumbered). *)

(** {1 Incremental maintenance} — the update subsystem's in-place index
    patching.  Callers guarantee exclusivity: patches run only on a
    document version with no admitted readers (the MVCC writer copies
    otherwise).  Each returns [false] when the root has no live index to
    patch (the next query rebuilds lazily). *)

val patch_insert : Node.t -> Node.t -> bool
(** [patch_insert root sub]: [sub] was just placed (ids assigned) under
    [root]; splice its nodes into the live per-name arrays. *)

val patch_delete : Node.t -> Node.t -> bool
(** [patch_delete root sub]: [sub] is being detached (old ids intact);
    remove its nid interval from every affected per-name array. *)

val patch_rename : Node.t -> Node.t -> old_name:string -> bool
(** The node was renamed in place (same nid): move it between name
    buckets. *)
