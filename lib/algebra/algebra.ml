(* The complete XQuery logical algebra — Table 1 of the paper, plus the
   distinguished Input leaf (the paper's IN) that dependent sub-operators
   use to refer to their input.

   Operators are written Op[params]{dependents}(inputs).  A dependent
   sub-operator is a plan evaluated once per input tuple (or per input
   item), with Input bound accordingly; an independent input is evaluated
   once.  Input in table position denotes the singleton table containing
   the current input tuple, which is what the (insert join) rewriting
   relies on. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type field = string

type sort_spec = { skey : plan; sdir : Ast.sort_dir; sempty : Ast.empty_order }

and group_spec = {
  g_agg : field;  (** output field bound to the post-grouping result *)
  g_indices : field list;  (** grouping criteria *)
  g_nulls : field list;  (** null flags: pre-op skipped when any is true *)
  g_post : plan;  (** applied to each partition's item sequence *)
  g_pre : plan;  (** applied to each non-null input tuple *)
}

and join_pred =
  | Pred of plan  (** arbitrary boolean dependent plan over τ1 ++ τ2 *)
  | Split_pred of {
      op : Promotion.cmp_op;
      left_key : plan;  (** depends only on left-input fields *)
      right_key : plan;  (** depends only on right-input fields *)
    }
      (** a general comparison whose sides touch disjoint inputs — the shape
          the XQuery hash/sort joins of Section 6 can execute *)

and plan =
  | Input  (** IN *)
  (* --- XML operators: constructors --- *)
  | Seq of plan * plan
  | Empty
  | Scalar of Atomic.t
  | Element of string * plan
  | Attribute of string * plan
  | Text of plan
  | Comment of plan
  | Pi of string * plan
  (* --- navigation, projection --- *)
  | TreeJoin of Ast.axis * Ast.node_test * plan
  | TreeProject of (Ast.axis * Ast.node_test) list list * plan
  (* --- type operators --- *)
  | Castable of Atomic.type_name * bool * plan
  | Cast of Atomic.type_name * bool * plan
  | Validate of plan
  | TypeMatches of Seqtype.t * plan
  | TypeAssert of Seqtype.t * plan
  (* --- functional operators --- *)
  | Var of string  (** function parameter or global/external variable *)
  | Call of string * plan list
  | Cond of plan * plan * plan  (** Cond{then,else}(bool-input) *)
  | Quantified of Ast.quantifier * string * plan * plan
      (** retained item-level quantifier used inside pure XML sub-plans;
          the tuple-level forms are MapSome/MapEvery *)
  (* --- I/O operators --- *)
  | Parse of plan  (** URI -> document node *)
  | Serialize of string * plan
  (* --- tuple operators: constructors --- *)
  | TupleConstruct of (field * plan) list
      (** [q1:Op1;...;qn:Opn] — the singleton table holding that tuple;
          [TupleConstruct []] is the unit table ([] in the paper) *)
  | FieldAccess of field  (** IN#q *)
  (* --- select, project, join --- *)
  | Select of plan * plan  (** Select{pred}(input) *)
  | Product of plan * plan
  | Join of join_pred * plan * plan
  | LOuterJoin of field * join_pred * plan * plan
  (* --- maps --- *)
  | Map of plan * plan  (** Map{dep: τ1 -> τ2}(input) *)
  | OMap of field * plan
  | MapConcat of plan * plan  (** dependent join *)
  | OMapConcat of field * plan * plan
  | MapIndex of field * plan
  | MapIndexStep of field * plan
  (* --- grouping, sorting --- *)
  | OrderBy of sort_spec list * plan
  | GroupBy of group_spec * plan
  (* --- XML/tuple boundary --- *)
  | MapFromItem of plan * plan  (** dep: item -> tuple *)
  | MapToItem of plan * plan  (** dep: tuple -> items *)
  | MapSome of plan * plan
  | MapEvery of plan * plan

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* Children as (is_dependent, plan) pairs, with a rebuild function.  Used
   by the optimizer's generic bottom-up rewriting driver. *)
let children_of (p : plan) : plan list =
  match p with
  | Input | Empty | Scalar _ | Var _ | FieldAccess _ -> []
  | Seq (a, b) -> [ a; b ]
  | Element (_, a) | Attribute (_, a) | Text a | Comment a | Pi (_, a) -> [ a ]
  | TreeJoin (_, _, a) | TreeProject (_, a) -> [ a ]
  | Castable (_, _, a) | Cast (_, _, a) | Validate a | TypeMatches (_, a)
  | TypeAssert (_, a) ->
      [ a ]
  | Call (_, args) -> args
  | Cond (c, t, e) -> [ c; t; e ]
  | Quantified (_, _, s, b) -> [ s; b ]
  | Parse a -> [ a ]
  | Serialize (_, a) -> [ a ]
  | TupleConstruct fields -> List.map snd fields
  | Select (d, i) -> [ d; i ]
  | Product (a, b) -> [ a; b ]
  | Join (Pred d, a, b) -> [ d; a; b ]
  | Join (Split_pred { left_key; right_key; _ }, a, b) -> [ left_key; right_key; a; b ]
  | LOuterJoin (_, Pred d, a, b) -> [ d; a; b ]
  | LOuterJoin (_, Split_pred { left_key; right_key; _ }, a, b) ->
      [ left_key; right_key; a; b ]
  | Map (d, i) | MapConcat (d, i) -> [ d; i ]
  | OMap (_, i) -> [ i ]
  | OMapConcat (_, d, i) -> [ d; i ]
  | MapIndex (_, i) | MapIndexStep (_, i) -> [ i ]
  | OrderBy (specs, i) -> List.map (fun s -> s.skey) specs @ [ i ]
  | GroupBy (g, i) -> [ g.g_post; g.g_pre; i ]
  | MapFromItem (d, i) | MapToItem (d, i) | MapSome (d, i) | MapEvery (d, i) -> [ d; i ]

(* Map a function over every direct child plan, preserving structure. *)
let rec map_children (f : plan -> plan) (p : plan) : plan =
  match p with
  | Input | Empty | Scalar _ | Var _ | FieldAccess _ -> p
  | Seq (a, b) -> Seq (f a, f b)
  | Element (n, a) -> Element (n, f a)
  | Attribute (n, a) -> Attribute (n, f a)
  | Text a -> Text (f a)
  | Comment a -> Comment (f a)
  | Pi (n, a) -> Pi (n, f a)
  | TreeJoin (ax, t, a) -> TreeJoin (ax, t, f a)
  | TreeProject (paths, a) -> TreeProject (paths, f a)
  | Castable (tn, o, a) -> Castable (tn, o, f a)
  | Cast (tn, o, a) -> Cast (tn, o, f a)
  | Validate a -> Validate (f a)
  | TypeMatches (ty, a) -> TypeMatches (ty, f a)
  | TypeAssert (ty, a) -> TypeAssert (ty, f a)
  | Call (n, args) -> Call (n, List.map f args)
  | Cond (c, t, e) -> Cond (f c, f t, f e)
  | Quantified (q, v, s, b) -> Quantified (q, v, f s, f b)
  | Parse a -> Parse (f a)
  | Serialize (u, a) -> Serialize (u, f a)
  | TupleConstruct fields -> TupleConstruct (List.map (fun (q, p) -> (q, f p)) fields)
  | Select (d, i) -> Select (f d, f i)
  | Product (a, b) -> Product (f a, f b)
  | Join (pred, a, b) -> Join (map_pred f pred, f a, f b)
  | LOuterJoin (q, pred, a, b) -> LOuterJoin (q, map_pred f pred, f a, f b)
  | Map (d, i) -> Map (f d, f i)
  | OMap (q, i) -> OMap (q, f i)
  | MapConcat (d, i) -> MapConcat (f d, f i)
  | OMapConcat (q, d, i) -> OMapConcat (q, f d, f i)
  | MapIndex (q, i) -> MapIndex (q, f i)
  | MapIndexStep (q, i) -> MapIndexStep (q, f i)
  | OrderBy (specs, i) ->
      OrderBy (List.map (fun s -> { s with skey = f s.skey }) specs, f i)
  | GroupBy (g, i) -> GroupBy ({ g with g_post = f g.g_post; g_pre = f g.g_pre }, f i)
  | MapFromItem (d, i) -> MapFromItem (f d, f i)
  | MapToItem (d, i) -> MapToItem (f d, f i)
  | MapSome (d, i) -> MapSome (f d, f i)
  | MapEvery (d, i) -> MapEvery (f d, f i)

and map_pred f = function
  | Pred p -> Pred (f p)
  | Split_pred s ->
      Split_pred { s with left_key = f s.left_key; right_key = f s.right_key }

(* Fields read from the dependent input tuple by a plan, *not* descending
   into sub-plans that rebind Input (dependent positions of inner map-like
   operators still see the same IN only in independent inputs).  Used to
   decide whether a dependent plan is independent of IN and which side of a
   join a predicate leg touches. *)
let rec input_fields (p : plan) : field list =
  match p with
  | FieldAccess q -> [ q ]
  | Input -> []
  (* dependent positions of these operators rebind Input: only traverse
     their independent inputs *)
  | Select (_, i)
  | Map (_, i)
  | MapConcat (_, i)
  | OMapConcat (_, _, i)
  | MapFromItem (_, i)
  | MapToItem (_, i)
  | MapSome (_, i)
  | MapEvery (_, i) ->
      input_fields i
  | OrderBy (_, i) -> input_fields i
  | GroupBy (_, i) -> input_fields i
  | Join (_, a, b) | LOuterJoin (_, _, a, b) ->
      input_fields a @ input_fields b
  | other -> List.concat_map input_fields (children_of other)

(* Does the plan refer to its dependent input at all (via Input or #q)?
   The (insert product) rewriting applies when the dependent sub-plan of a
   MapConcat is independent of IN. *)
let rec uses_input (p : plan) : bool =
  match p with
  | Input | FieldAccess _ -> true
  | Select (_, i)
  | Map (_, i)
  | MapConcat (_, i)
  | OMapConcat (_, _, i)
  | MapFromItem (_, i)
  | MapToItem (_, i)
  | MapSome (_, i)
  | MapEvery (_, i)
  | OrderBy (_, i)
  | GroupBy (_, i) ->
      uses_input i
  | Join (_, a, b) | LOuterJoin (_, _, a, b) -> uses_input a || uses_input b
  | other -> List.exists uses_input (children_of other)

(* Does the plan use IN as a whole (the bare Input leaf, e.g. as the
   singleton table of the current tuple), as opposed to reading individual
   fields?  Rewritings that re-route a dependent plan onto a narrower
   input must not fire when the plan captures the whole tuple. *)
let rec uses_bare_input (p : plan) : bool =
  match p with
  | Input -> true
  | FieldAccess _ -> false
  | Select (_, i)
  | Map (_, i)
  | MapConcat (_, i)
  | OMapConcat (_, _, i)
  | MapFromItem (_, i)
  | MapToItem (_, i)
  | MapSome (_, i)
  | MapEvery (_, i)
  | OrderBy (_, i)
  | GroupBy (_, i) ->
      uses_bare_input i
  | Join (_, a, b) | LOuterJoin (_, _, a, b) ->
      uses_bare_input a || uses_bare_input b
  | other -> List.exists uses_bare_input (children_of other)

(* The output tuple fields of a table-producing plan.  Fields are only
   appended by the algebra, so this is a total syntactic function; it is
   the basis of the physical slot resolution. *)
let rec output_fields (p : plan) : field list =
  match p with
  | TupleConstruct fields -> List.map fst fields
  | Select (_, i) | OrderBy (_, i) -> output_fields i
  | Product (a, b) -> output_fields a @ output_fields b
  | Join (_, a, b) -> output_fields a @ output_fields b
  | LOuterJoin (q, _, a, b) -> (q :: output_fields a) @ output_fields b
  | Map (d, _) -> output_fields d
  | OMap (q, i) -> q :: output_fields i
  | MapConcat (d, i) -> output_fields i @ output_fields d
  | OMapConcat (q, d, i) -> (q :: output_fields i) @ output_fields d
  | MapIndex (q, i) | MapIndexStep (q, i) -> q :: output_fields i
  | GroupBy (g, i) -> output_fields i @ [ g.g_agg ]
  | MapFromItem (d, _) -> output_fields d
  | Cond (_, t, _) -> output_fields t
  | Input -> []  (* resolved against the enclosing layout at compile time *)
  | _ -> []
