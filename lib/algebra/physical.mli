(** The physical algebra: the execution-strategy-carrying counterpart of
    the logical algebra of Table 1.

    A logical plan says {e what} to compute; a physical plan additionally
    says {e how}: which join algorithm runs a Join and on which side it
    builds, whether an axis step is answered by the structural name index
    or by walking, where positional selections become streamed take-while
    prefixes, where builtin calls stream or probe the index instead of
    materializing their argument, and where pipelines are cut by explicit
    materialization.  Every node carries the planner's cardinality and
    cost estimate so EXPLAIN can render estimated-vs-actual.

    Produced from the logical plan by [Planner.plan]; the evaluator
    dispatches on this tree and re-makes no physical decision. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type field = Algebra.field

(** The three join algorithms of Section 6.  [Nested_loop] is always
    sound; [Hash] executes equality split predicates (Figure 6); [Sort]
    executes inequality split predicates. *)
type join_algorithm = Nested_loop | Hash | Sort

type build_side = Build_left | Build_right

(** How an axis step resolves: through the per-root structural name
    index, or by walking.  [Index_scan] still degrades to a walk at run
    time when no index serves the tree. *)
type step_impl = Index_scan | Tree_walk

(** Planner estimates: output cardinality (tuples or items) and
    cumulative cost in abstract work units. *)
type est = { est_rows : float; est_cost : float }

(** One step of a fused navigation chain (the planner performs the
    [//]-fusion, so these steps are what executes). *)
type pstep = {
  ps_axis : Ast.axis;
  ps_test : Ast.node_test;
  ps_impl : step_impl;
  ps_est : float;
}

(** Streaming execution of a builtin over a navigation chain:
    [SExists true] is fn:empty. *)
type stream_call = SExists of bool | SCount | SSubseq

type t = { pop : pop; pest : est }

and ppred =
  | PWholePred of t
  | PSplitPred of { op : Promotion.cmp_op; left_key : t; right_key : t }

and psort_spec = { pskey : t; psdir : Ast.sort_dir; psempty : Ast.empty_order }

and pgroup_spec = {
  pg_agg : field;
  pg_indices : field list;
  pg_nulls : field list;
  pg_post : t;
  pg_pre : t;
}

and pop =
  | PInput
  | PSeq of t * t
  | PEmpty
  | PScalar of Atomic.t
  | PElement of string * t
  | PAttribute of string * t
  | PText of t
  | PComment of t
  | PPi of string * t
  | PSteps of { steps : pstep list; ordered : bool; par : int; input : t }
      (** a maximal fused TreeJoin chain; [ordered] = streaming the chain
          item by item preserves document order; [par > 1] = the strict
          evaluator may split the context set into up to [par] contiguous
          pre-order partitions evaluated in parallel (runtime-gated on
          actual width) *)
  | PTreeProject of (Ast.axis * Ast.node_test) list list * t
  | PCastable of Atomic.type_name * bool * t
  | PCast of Atomic.type_name * bool * t
  | PValidate of t
  | PTypeMatches of Seqtype.t * t
  | PTypeAssert of Seqtype.t * t
  | PVar of string
  | PCall of string * t list
  | PCallStream of stream_call * string * t list
      (** args.(0) is a [PSteps] chain; the name is kept so a run-time
          user redefinition still takes the generic call path *)
  | PCond of t * t * t
  | PQuantified of Ast.quantifier * string * t * t
  | PParse of t
  | PSerialize of string * t
  | PTupleConstruct of (field * t) list
  | PFieldAccess of field
  | PSelect of t * t
  | PStreamSelect of { pred : t; bound : int; input : t }
      (** positional selection: cut the input cursor after [bound]
          tuples, then filter the prefix with [pred] *)
  | PProduct of t * t
  | PNestedLoop of { outer : field option; pred : ppred; left : t; right : t }
      (** [outer = Some q]: left outer join with null-flag field [q] *)
  | PHashJoin of {
      outer : field option;
      build : build_side;
      par : int;
          (** [> 1]: hash-partition the build side and probe contiguous
              chunks of the probe side in parallel, merging in probe
              order *)
      left_key : t;
      right_key : t;
      left : t;
      right : t;
    }
  | PSortJoin of {
      outer : field option;
      op : Promotion.cmp_op;
      left_key : t;
      right_key : t;
      left : t;
      right : t;
    }
  | PMaterialize of t  (** explicit pipeline breaker (join build sides) *)
  | PRelational of {
      rplan : Xqc_rel.Rel_algebra.plan;
      rfields : field list;  (** output layout, = the rel plan's cols *)
      rparams : string list;  (** free variables the scans read *)
      fallback : t;
          (** native twin, run when the relational engine signals a
              limitation at execution time (not reported as a child) *)
    }  (** a table subplan offloaded to the relational backend *)
  | PMap of t * t
  | POMap of field * t
  | PMapConcat of t * t
  | POMapConcat of field * t * t
  | PMapIndex of field * t
  | PMapIndexStep of field * t
  | POrderBy of psort_spec list * t
  | PGroupBy of pgroup_spec * t
  | PMapFromItem of t * t
  | PMapToItem of t * t
  | PMapSome of t * t
  | PMapEvery of t * t

(** A full planned query: the physical counterpart of
    [Compile.compiled_query]. *)
type pfunction = { pf_name : string; pf_params : string list; pf_body : t }

type query = {
  pfunctions : pfunction list;
  pglobals : (string * t) list;
  pmain : t;
}

val join_algorithm_name : join_algorithm -> string
val build_side_name : build_side -> string
val step_impl_name : step_impl -> string

val children : t -> t list
val size : t -> int
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val max_par : t -> int
(** Largest partition budget annotated anywhere in the plan (1 = fully
    sequential) — consulted by the fused execution tier, whose lowering
    erases the operator boundaries the annotation sits on. *)
