(** The complete XQuery logical algebra — Table 1 of the paper.

    Operators are written [Op\[params\]{dependents}(inputs)].  A dependent
    sub-operator is a plan evaluated once per input tuple (or item) with
    the distinguished {!constructor:Input} leaf (the paper's IN) bound to
    it; an independent input is evaluated once, with IN passed through
    unchanged.  [Input] in table position denotes the singleton table of
    the current tuple, which the (insert join) rewriting relies on. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type field = string
(** Tuple field names (the paper's q).  Normalization alpha-renames all
    variables, so fields are globally unique within a plan. *)

type sort_spec = {
  skey : plan;  (** dependent key plan, atomized per tuple *)
  sdir : Ast.sort_dir;
  sempty : Ast.empty_order;
}

(** GroupBy[q_Agg, q_Indices, q_Nulls]{post}{pre}(input) — the paper's
    XQuery-specific group-by (Section 5).  Input tuples are partitioned
    by the [g_indices] fields (an empty list means one partition for the
    whole input); [g_pre] maps each tuple whose [g_nulls] flags are all
    false to an item sequence; the partition's concatenated items feed
    [g_post], whose result is bound to [g_agg]; each partition yields its
    first tuple extended with the aggregate, in first-occurrence order. *)
and group_spec = {
  g_agg : field;
  g_indices : field list;
  g_nulls : field list;
  g_post : plan;  (** item sequence -> item sequence, IN = the partition *)
  g_pre : plan;  (** tuple -> item sequence, IN = the tuple *)
}

(** A join predicate: either an arbitrary boolean dependent plan over the
    concatenated tuple, or a general comparison already split into two
    independent key plans — the shape the Section 6 algorithms execute. *)
and join_pred =
  | Pred of plan
  | Split_pred of {
      op : Promotion.cmp_op;
      left_key : plan;  (** reads only left-input fields *)
      right_key : plan;  (** reads only right-input fields *)
    }

and plan =
  | Input  (** IN — the current dependent input *)
  (* XML operators: constructors (compositional, unlike the serialized
     Xi operator the paper contrasts with) *)
  | Seq of plan * plan  (** Sequence(s1, s2) *)
  | Empty
  | Scalar of Atomic.t
  | Element of string * plan  (** content sequence -> new element node *)
  | Attribute of string * plan
  | Text of plan
  | Comment of plan
  | Pi of string * plan
  (* navigation and projection *)
  | TreeJoin of Ast.axis * Ast.node_test * plan
      (** set-at-a-time navigation: document-ordered, duplicate-free *)
  | TreeProject of (Ast.axis * Ast.node_test) list list * plan
  (* type operators *)
  | Castable of Atomic.type_name * bool * plan  (** bool: "?" allowed *)
  | Cast of Atomic.type_name * bool * plan
  | Validate of plan
  | TypeMatches of Seqtype.t * plan
  | TypeAssert of Seqtype.t * plan
  (* functional operators *)
  | Var of string  (** function parameter or global/external variable *)
  | Call of string * plan list
  | Cond of plan * plan * plan  (** Cond{then, else}(boolean input) *)
  | Quantified of Ast.quantifier * string * plan * plan
      (** item-level quantifier (the tuple-level forms are
          MapSome/MapEvery); binds its variable in the parameter frame *)
  (* I/O operators *)
  | Parse of plan  (** URI -> document node, through the context's cache *)
  | Serialize of string * plan
  (* tuple constructors *)
  | TupleConstruct of (field * plan) list
      (** \[q1:Op1; ...\] — the singleton table holding that tuple;
          [TupleConstruct \[\]] is the paper's unit table (\[\]) *)
  | FieldAccess of field  (** IN#q — slot-resolved at compile time *)
  (* selection, product, joins *)
  | Select of plan * plan
  | Product of plan * plan  (** left-major pair order *)
  | Join of join_pred * plan * plan
      (** order-preserving: left-major, matches in right order,
          de-duplicated per the existential predicate semantics.  The
          logical operator carries no execution strategy: the join
          algorithm, build side and materialization points are chosen by
          the physical planner (see {!Physical}). *)
  | LOuterJoin of field * join_pred * plan * plan
      (** adds a boolean null-flag field (true on unmatched left rows,
          whose right fields are empty sequences) *)
  (* maps *)
  | Map of plan * plan  (** tuple -> tuple, 1:1 *)
  | OMap of field * plan
      (** null-plug: an empty input table becomes one flagged tuple *)
  | MapConcat of plan * plan  (** dependent join (the D-Join of Natix) *)
  | OMapConcat of field * plan * plan  (** outer dependent join *)
  | MapIndex of field * plan  (** prepends 1-based consecutive positions *)
  | MapIndexStep of field * plan
      (** like MapIndex but only promises distinct ascending integers,
          which is what lets it commute with selections and float through
          rewritings (Section 5) *)
  (* grouping, sorting *)
  | OrderBy of sort_spec list * plan
  | GroupBy of group_spec * plan
  (* XML/tuple boundary *)
  | MapFromItem of plan * plan  (** dep: item -> tuple *)
  | MapToItem of plan * plan  (** dep: tuple -> item sequence *)
  | MapSome of plan * plan
  | MapEvery of plan * plan

(** {1 Traversal helpers} *)

val children_of : plan -> plan list
(** All direct sub-plans (dependents, inputs, predicate legs). *)

val map_children : (plan -> plan) -> plan -> plan
(** Rebuild with every direct sub-plan transformed. *)

val map_pred : (plan -> plan) -> join_pred -> join_pred

val input_fields : plan -> field list
(** Fields read from the {e current} dependent input (IN#q), not
    descending into sub-plans that rebind IN.  Decides which side of a
    join a predicate leg touches. *)

val uses_input : plan -> bool
(** Does the plan depend on IN at all (bare or by field)?  The side
    condition of (insert product). *)

val uses_bare_input : plan -> bool
(** Does the plan use IN as a whole (e.g. as a singleton table)?
    Rewritings that re-route a dependent onto a narrower input must not
    fire in that case. *)

val output_fields : plan -> field list
(** The output tuple fields of a table-producing plan.  Fields are only
    appended by the algebra, so this is a total syntactic function; it is
    the basis of the evaluator's slot resolution. *)
