(* The physical algebra: the execution-strategy-carrying counterpart of
   the logical algebra of Table 1.

   A logical plan says *what* to compute; a physical plan additionally
   says *how*: which join algorithm runs a Join (PNestedLoop /
   PHashJoin / PSortJoin) and which side it builds on, whether an axis
   step is answered by the structural name index or by walking
   (Index_scan / Tree_walk inside PSteps), where positional selections
   become streamed take-while prefixes (PStreamSelect), where
   aggregate/existential calls stream or probe the index instead of
   materializing their argument (PCallStream), and where pipelines are
   cut by explicit materialization (PMaterialize).  Every node carries
   the planner's cardinality and cost estimate, so EXPLAIN can render
   estimated-vs-actual.

   The tree is produced from the logical plan by Planner.plan (a
   cost-based translation fed by the Xqc_store statistics API) and is
   the only thing the evaluator dispatches on: no physical decision is
   re-made at closure-compile or run time. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type field = Algebra.field

(* The three join algorithms of Section 6.  Nested_loop is always
   sound; Hash executes equality split predicates (Figure 6); Sort
   executes inequality split predicates. *)
type join_algorithm = Nested_loop | Hash | Sort

type build_side = Build_left | Build_right

(* How one axis step resolves its matches: through the per-root
   structural name index of Xqc_store, or by walking the tree.  The
   index path still degrades to a walk at run time when no index serves
   the tree (store mode off, unindexable root); Index_scan records that
   the planner expects — and costed — the index. *)
type step_impl = Index_scan | Tree_walk

(* Planner estimates: output cardinality (rows for tuple operators,
   items for XML operators) and cumulative cost in abstract work units. *)
type est = { est_rows : float; est_cost : float }

(* One step of a fused navigation chain.  The planner performs the
   descendant-or-self::node()/child::t -> descendant::t fusion, so the
   steps here are what actually executes. *)
type pstep = {
  ps_axis : Ast.axis;
  ps_test : Ast.node_test;
  ps_impl : step_impl;
  ps_est : float;  (** estimated items out of this step *)
}

(* Streaming execution of a builtin over a navigation chain:
   fn:exists / fn:empty stop at the first item (SExists negate=true is
   fn:empty), fn:count is answered from index range bounds where
   possible, fn:subsequence pulls a bounded prefix. *)
type stream_call = SExists of bool | SCount | SSubseq

type t = { pop : pop; pest : est }

and ppred =
  | PWholePred of t  (** arbitrary boolean dependent plan over τ1 ++ τ2 *)
  | PSplitPred of { op : Promotion.cmp_op; left_key : t; right_key : t }

and psort_spec = { pskey : t; psdir : Ast.sort_dir; psempty : Ast.empty_order }

and pgroup_spec = {
  pg_agg : field;
  pg_indices : field list;
  pg_nulls : field list;
  pg_post : t;
  pg_pre : t;
}

and pop =
  | PInput
  (* XML constructors *)
  | PSeq of t * t
  | PEmpty
  | PScalar of Atomic.t
  | PElement of string * t
  | PAttribute of string * t
  | PText of t
  | PComment of t
  | PPi of string * t
  (* navigation: a maximal TreeJoin chain, fused, each step carrying its
     index-vs-walk decision.  [ordered] states the chain preserves
     document order when streamed item by item (the static condition the
     cursor pipeline needs).  [par > 1] marks the chain eligible for
     partitioned execution: the strict evaluator may split the context
     node set (or the head step's nid range) into up to [par] contiguous
     pre-order partitions evaluated in parallel — contiguity preserves
     per-partition document order by construction, and a closing
     sorted-merge restores the global order on the rare nesting cases.
     The runtime still gates on the actual input width, so [par] is a
     budget, not a command. *)
  | PSteps of { steps : pstep list; ordered : bool; par : int; input : t }
  | PTreeProject of (Ast.axis * Ast.node_test) list list * t
  (* type operators *)
  | PCastable of Atomic.type_name * bool * t
  | PCast of Atomic.type_name * bool * t
  | PValidate of t
  | PTypeMatches of Seqtype.t * t
  | PTypeAssert of Seqtype.t * t
  (* functional operators *)
  | PVar of string
  | PCall of string * t list
  | PCallStream of stream_call * string * t list
      (** args.(0) is a PSteps chain; the callee name is kept so a
          run-time user redefinition of the builtin still takes the
          generic call path *)
  | PCond of t * t * t
  | PQuantified of Ast.quantifier * string * t * t
  (* I/O *)
  | PParse of t
  | PSerialize of string * t
  (* tuple constructors *)
  | PTupleConstruct of (field * t) list
  | PFieldAccess of field
  (* selection, product, joins *)
  | PSelect of t * t
  | PStreamSelect of { pred : t; bound : int; input : t }
      (** positional selection over a MapIndex input: the input cursor is
          cut after [bound] tuples (take-while on the position field),
          then the predicate filters the prefix *)
  | PProduct of t * t
  | PNestedLoop of { outer : field option; pred : ppred; left : t; right : t }
      (** [outer = Some q] is the left outer join with null-flag q *)
  | PHashJoin of {
      outer : field option;
      build : build_side;
      par : int;
          (** partition budget: [> 1] lets the evaluator hash-partition
              the build side and split the probe side into contiguous
              chunks probed in parallel, merged back in probe order *)
      left_key : t;
      right_key : t;
      left : t;
      right : t;
    }  (** equality split predicate; the [build] side is hashed *)
  | PSortJoin of {
      outer : field option;
      op : Promotion.cmp_op;
      left_key : t;
      right_key : t;
      left : t;
      right : t;
    }  (** inequality split predicate; always builds right *)
  | PMaterialize of t
      (** pipeline breaker: the planner marks the build sides of joins
          and products so blocking boundaries are visible in the plan *)
  | PRelational of {
      rplan : Xqc_rel.Rel_algebra.plan;
      rfields : field list;  (** output layout, = the rel plan's cols *)
      rparams : string list;  (** free variables the scans read *)
      fallback : t;
          (** the native twin: compiled lazily, run when the relational
              engine signals a limitation at execution time *)
    }
      (** a whole table subplan offloaded to the relational backend:
          executed over shredded documents by [Xqc_rel.Rel_exec] and
          bridged back into the tuple pipeline *)
  (* maps *)
  | PMap of t * t
  | POMap of field * t
  | PMapConcat of t * t
  | POMapConcat of field * t * t
  | PMapIndex of field * t
  | PMapIndexStep of field * t
  (* grouping, sorting *)
  | POrderBy of psort_spec list * t
  | PGroupBy of pgroup_spec * t
  (* XML/tuple boundary *)
  | PMapFromItem of t * t
  | PMapToItem of t * t
  | PMapSome of t * t
  | PMapEvery of t * t

(* A full planned query: the physical counterpart of
   Compile.compiled_query. *)
type pfunction = { pf_name : string; pf_params : string list; pf_body : t }

type query = {
  pfunctions : pfunction list;
  pglobals : (string * t) list;
  pmain : t;
}

let join_algorithm_name = function
  | Nested_loop -> "nl"
  | Hash -> "hash"
  | Sort -> "sort"

let build_side_name = function Build_left -> "left" | Build_right -> "right"
let step_impl_name = function Index_scan -> "index" | Tree_walk -> "walk"

let children (p : t) : t list =
  match p.pop with
  | PInput | PEmpty | PScalar _ | PVar _ | PFieldAccess _ -> []
  | PSeq (a, b) -> [ a; b ]
  | PElement (_, a) | PAttribute (_, a) | PText a | PComment a | PPi (_, a) ->
      [ a ]
  | PSteps { input; _ } -> [ input ]
  | PTreeProject (_, a) -> [ a ]
  | PCastable (_, _, a) | PCast (_, _, a) | PValidate a | PTypeMatches (_, a)
  | PTypeAssert (_, a) ->
      [ a ]
  | PCall (_, args) | PCallStream (_, _, args) -> args
  | PCond (c, t, e) -> [ c; t; e ]
  | PQuantified (_, _, s, b) -> [ s; b ]
  | PParse a -> [ a ]
  | PSerialize (_, a) -> [ a ]
  | PTupleConstruct fields -> List.map snd fields
  | PSelect (d, i) -> [ d; i ]
  | PStreamSelect { pred; input; _ } -> [ pred; input ]
  | PProduct (a, b) -> [ a; b ]
  | PNestedLoop { pred = PWholePred d; left; right; _ } -> [ d; left; right ]
  | PNestedLoop { pred = PSplitPred { left_key; right_key; _ }; left; right; _ }
    ->
      [ left_key; right_key; left; right ]
  | PHashJoin { left_key; right_key; left; right; _ }
  | PSortJoin { left_key; right_key; left; right; _ } ->
      [ left_key; right_key; left; right ]
  | PMaterialize a -> [ a ]
  (* the native twin is an alternative, not a sub-computation: keep it
     out of traversals (size/cost/fused-segment discovery) *)
  | PRelational _ -> []
  | PMap (d, i) | PMapConcat (d, i) -> [ d; i ]
  | POMap (_, i) -> [ i ]
  | POMapConcat (_, d, i) -> [ d; i ]
  | PMapIndex (_, i) | PMapIndexStep (_, i) -> [ i ]
  | POrderBy (specs, i) -> List.map (fun s -> s.pskey) specs @ [ i ]
  | PGroupBy (g, i) -> [ g.pg_post; g.pg_pre; i ]
  | PMapFromItem (d, i) | PMapToItem (d, i) | PMapSome (d, i) | PMapEvery (d, i)
    ->
      [ d; i ]

let rec size (p : t) : int = 1 + List.fold_left (fun n c -> n + size c) 0 (children p)

let rec fold (f : 'a -> t -> 'a) (acc : 'a) (p : t) : 'a =
  List.fold_left (fold f) (f acc p) (children p)

(* Largest partition budget annotated anywhere in the plan — what the
   fused execution tier consults before splitting a lowered program
   (the lowering erases operator boundaries, so the annotation is
   recovered from the source subplan). *)
let max_par (p : t) : int =
  fold
    (fun acc n ->
      match n.pop with
      | PSteps { par; _ } | PHashJoin { par; _ } -> max acc par
      | _ -> acc)
    1 p
