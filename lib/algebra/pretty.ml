(* Plan printer in the paper's notation: Op[params]{dependents}(inputs),
   indented one operator per line as in the paper's plan listings. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend
open Algebra

let pred_params = function
  | Pred _ -> ""
  | Split_pred { op; _ } -> Printf.sprintf "<%s>" (Promotion.cmp_op_name op)

let rec pp ?(indent = 0) ppf (p : plan) =
  let open Format in
  let pad = String.make indent ' ' in
  let line fmt = fprintf ppf ("%s" ^^ fmt) pad in
  let sub ppf p = pp ~indent:(indent + 2) ppf p in
  let subs ppf ps =
    List.iteri
      (fun i p ->
        if i > 0 then fprintf ppf ",@,";
        sub ppf p)
      ps
  in
  let op name params deps inputs =
    line "%s" name;
    if params <> "" then fprintf ppf "[%s]" params;
    (match deps with
    | [] -> ()
    | _ ->
        fprintf ppf "@,%s{@,%a@,%s}" pad subs deps pad);
    match inputs with
    | [] -> if deps = [] then fprintf ppf "()"
    | _ -> fprintf ppf "@,%s(@,%a@,%s)" pad subs inputs pad
  in
  match p with
  | Input -> line "IN"
  | Empty -> line "Empty()"
  | Scalar a -> line "Scalar[%s]()" (Atomic.to_string a)
  | Seq (a, b) -> op "Sequence" "" [] [ a; b ]
  | Element (n, c) -> op "Element" n [] [ c ]
  | Attribute (n, c) -> op "Attribute" n [] [ c ]
  | Text c -> op "Text" "" [] [ c ]
  | Comment c -> op "Comment" "" [] [ c ]
  | Pi (n, c) -> op "PI" n [] [ c ]
  | TreeJoin (axis, test, i) ->
      op "TreeJoin"
        (Printf.sprintf "%s::%s" (Ast.axis_to_string axis) (Ast.node_test_to_string test))
        [] [ i ]
  | TreeProject (_, i) -> op "TreeProject" "paths" [] [ i ]
  | Castable (tn, _, i) -> op "Castable" (Atomic.type_name_to_string tn) [] [ i ]
  | Cast (tn, _, i) -> op "Cast" (Atomic.type_name_to_string tn) [] [ i ]
  | Validate i -> op "Validate" "" [] [ i ]
  | TypeMatches (ty, i) -> op "TypeMatches" (Seqtype.to_string ty) [] [ i ]
  | TypeAssert (ty, i) -> op "TypeAssert" (Seqtype.to_string ty) [] [ i ]
  | Var q -> line "Var[%s]()" q
  | Call (f, args) -> op "Call" f [] args
  | Cond (c, t, e) -> op "Cond" "" [ t; e ] [ c ]
  | Quantified (q, v, s, b) ->
      op
        (match q with Ast.Some_quant -> "Some" | Ast.Every_quant -> "Every")
        v [ b ] [ s ]
  | Parse i -> op "Parse" "" [] [ i ]
  | Serialize (uri, i) -> op "Serialize" uri [] [ i ]
  | TupleConstruct [] -> line "[]"
  | TupleConstruct fields ->
      line "[%s]" (String.concat ";" (List.map fst fields));
      fprintf ppf "@,%s(@,%a@,%s)" pad subs (List.map snd fields) pad
  | FieldAccess q -> line "IN#%s" q
  | Select (d, i) -> op "Select" "" [ d ] [ i ]
  | Product (a, b) -> op "Product" "" [] [ a; b ]
  | Join (pred, a, b) ->
      op (Printf.sprintf "Join%s" (pred_params pred)) "" (pred_plans pred) [ a; b ]
  | LOuterJoin (q, pred, a, b) ->
      op
        (Printf.sprintf "LOuterJoin%s" (pred_params pred))
        q (pred_plans pred) [ a; b ]
  | Map (d, i) -> op "Map" "" [ d ] [ i ]
  | OMap (q, i) -> op "OMap" q [] [ i ]
  | MapConcat (d, i) -> op "MapConcat" "" [ d ] [ i ]
  | OMapConcat (q, d, i) -> op "OMapConcat" q [ d ] [ i ]
  | MapIndex (q, i) -> op "MapIndex" q [] [ i ]
  | MapIndexStep (q, i) -> op "MapIndexStep" q [] [ i ]
  | OrderBy (specs, i) ->
      op "OrderBy"
        (String.concat ","
           (List.map
              (fun s ->
                match s.sdir with Ast.Ascending -> "asc" | Ast.Descending -> "desc")
              specs))
        (List.map (fun s -> s.skey) specs)
        [ i ]
  | GroupBy (g, i) ->
      op "GroupBy"
        (Printf.sprintf "%s,[%s],[%s]" g.g_agg
           (String.concat ";" g.g_indices)
           (String.concat ";" g.g_nulls))
        [ g.g_post; g.g_pre ] [ i ]
  | MapFromItem (d, i) -> op "MapFromItem" "" [ d ] [ i ]
  | MapToItem (d, i) -> op "MapToItem" "" [ d ] [ i ]
  | MapSome (d, i) -> op "MapSome" "" [ d ] [ i ]
  | MapEvery (d, i) -> op "MapEvery" "" [ d ] [ i ]

and pred_plans = function
  | Pred p -> [ p ]
  | Split_pred { left_key; right_key; _ } -> [ left_key; right_key ]

let to_string (p : plan) : string =
  Format.asprintf "@[<v>%a@]" (pp ~indent:0) p

(* One-line operator label — the first line of [pp] without children;
   used to label the nodes of an instrumented (EXPLAIN ANALYZE) plan. *)
let node_label (p : plan) : string =
  match p with
  | Input -> "IN"
  | Empty -> "Empty"
  | Scalar a -> Printf.sprintf "Scalar[%s]" (Atomic.to_string a)
  | Seq _ -> "Sequence"
  | Element (n, _) -> Printf.sprintf "Element[%s]" n
  | Attribute (n, _) -> Printf.sprintf "Attribute[%s]" n
  | Text _ -> "Text"
  | Comment _ -> "Comment"
  | Pi (n, _) -> Printf.sprintf "PI[%s]" n
  | TreeJoin (axis, test, _) ->
      Printf.sprintf "TreeJoin[%s::%s]" (Ast.axis_to_string axis)
        (Ast.node_test_to_string test)
  | TreeProject _ -> "TreeProject[paths]"
  | Castable (tn, _, _) -> Printf.sprintf "Castable[%s]" (Atomic.type_name_to_string tn)
  | Cast (tn, _, _) -> Printf.sprintf "Cast[%s]" (Atomic.type_name_to_string tn)
  | Validate _ -> "Validate"
  | TypeMatches (ty, _) -> Printf.sprintf "TypeMatches[%s]" (Seqtype.to_string ty)
  | TypeAssert (ty, _) -> Printf.sprintf "TypeAssert[%s]" (Seqtype.to_string ty)
  | Var q -> Printf.sprintf "Var[%s]" q
  | Call (f, _) -> Printf.sprintf "Call[%s]" f
  | Cond _ -> "Cond"
  | Quantified (q, v, _, _) ->
      Printf.sprintf "%s[%s]"
        (match q with Ast.Some_quant -> "Some" | Ast.Every_quant -> "Every")
        v
  | Parse _ -> "Parse"
  | Serialize (uri, _) -> Printf.sprintf "Serialize[%s]" uri
  | TupleConstruct [] -> "[]"
  | TupleConstruct fields ->
      Printf.sprintf "[%s]" (String.concat ";" (List.map fst fields))
  | FieldAccess q -> Printf.sprintf "IN#%s" q
  | Select _ -> "Select"
  | Product _ -> "Product"
  | Join (pred, _, _) -> Printf.sprintf "Join%s" (pred_params pred)
  | LOuterJoin (q, pred, _, _) ->
      Printf.sprintf "LOuterJoin%s[%s]" (pred_params pred) q
  | Map _ -> "Map"
  | OMap (q, _) -> Printf.sprintf "OMap[%s]" q
  | MapConcat _ -> "MapConcat"
  | OMapConcat (q, _, _) -> Printf.sprintf "OMapConcat[%s]" q
  | MapIndex (q, _) -> Printf.sprintf "MapIndex[%s]" q
  | MapIndexStep (q, _) -> Printf.sprintf "MapIndexStep[%s]" q
  | OrderBy (specs, _) ->
      Printf.sprintf "OrderBy[%s]"
        (String.concat ","
           (List.map
              (fun s ->
                match s.sdir with Ast.Ascending -> "asc" | Ast.Descending -> "desc")
              specs))
  | GroupBy (g, _) ->
      Printf.sprintf "GroupBy[%s,[%s],[%s]]" g.g_agg
        (String.concat ";" g.g_indices)
        (String.concat ";" g.g_nulls)
  | MapFromItem _ -> "MapFromItem"
  | MapToItem _ -> "MapToItem"
  | MapSome _ -> "MapSome"
  | MapEvery _ -> "MapEvery"

(* EXPLAIN ANALYZE rendering of an instrumented plan: the indented
   operator tree annotated with call counts, cumulative (inclusive)
   time, output cardinality (estimated vs actual when the planner
   annotated the operator) and, on joins, build/probe statistics. *)
let analyze_to_string (root : Xqc_obs.Obs.op_node) : string =
  let open Xqc_obs in
  let buf = Buffer.create 1024 in
  let cardinality (st : Obs.op_stats) =
    match (st.Obs.op_tuples, st.Obs.op_items) with
    | 0, 0 -> "out=0"
    | t, 0 -> Printf.sprintf "tuples=%d" t
    | 0, i -> Printf.sprintf "items=%d" i
    | t, i -> Printf.sprintf "tuples=%d items=%d" t i
  in
  let estimate (n : Obs.op_node) =
    match n.Obs.on_est with
    | None -> ""
    | Some e -> Printf.sprintf " est=%.0f" e
  in
  let mode (n : Obs.op_node) =
    match n.Obs.on_stream with
    | Obs.Opaque -> ""
    | k -> " " ^ Obs.stream_kind_name k
  in
  let rec go indent (n : Obs.op_node) =
    let st = n.Obs.on_stats in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (calls=%d time=%.3fms %s%s%s)" (String.make indent ' ')
         n.Obs.on_label st.Obs.op_calls (Obs.ms st.Obs.op_secs) (cardinality st)
         (estimate n) (mode n));
    (match n.Obs.on_join with
    | Some js -> Buffer.add_string buf ("  [" ^ Obs.join_stats_to_string js ^ "]")
    | None -> ());
    Buffer.add_char buf '\n';
    List.iter (go (indent + 2)) n.Obs.on_children
  in
  go 0 root;
  Buffer.contents buf

(* Count of operators in a plan, used in tests and explain output. *)
let rec size (p : plan) : int =
  1 + List.fold_left (fun acc c -> acc + size c) 0 (children_of p)

(* Collect the multiset of operator names, used by rewriting tests to
   assert e.g. that the optimized plan contains a GroupBy and an
   LOuterJoin and no MapConcat. *)
let rec operator_names (p : plan) : string list =
  let name =
    match p with
    | Input -> "IN"
    | Empty -> "Empty"
    | Scalar _ -> "Scalar"
    | Seq _ -> "Sequence"
    | Element _ -> "Element"
    | Attribute _ -> "Attribute"
    | Text _ -> "Text"
    | Comment _ -> "Comment"
    | Pi _ -> "PI"
    | TreeJoin _ -> "TreeJoin"
    | TreeProject _ -> "TreeProject"
    | Castable _ -> "Castable"
    | Cast _ -> "Cast"
    | Validate _ -> "Validate"
    | TypeMatches _ -> "TypeMatches"
    | TypeAssert _ -> "TypeAssert"
    | Var _ -> "Var"
    | Call _ -> "Call"
    | Cond _ -> "Cond"
    | Quantified _ -> "Quantified"
    | Parse _ -> "Parse"
    | Serialize _ -> "Serialize"
    | TupleConstruct _ -> "TupleConstruct"
    | FieldAccess _ -> "FieldAccess"
    | Select _ -> "Select"
    | Product _ -> "Product"
    | Join _ -> "Join"
    | LOuterJoin _ -> "LOuterJoin"
    | Map _ -> "Map"
    | OMap _ -> "OMap"
    | MapConcat _ -> "MapConcat"
    | OMapConcat _ -> "OMapConcat"
    | MapIndex _ -> "MapIndex"
    | MapIndexStep _ -> "MapIndexStep"
    | OrderBy _ -> "OrderBy"
    | GroupBy _ -> "GroupBy"
    | MapFromItem _ -> "MapFromItem"
    | MapToItem _ -> "MapToItem"
    | MapSome _ -> "MapSome"
    | MapEvery _ -> "MapEvery"
  in
  name :: List.concat_map operator_names (children_of p)

(* ------------------------------------------------------------------ *)
(* Physical plans                                                      *)
(* ------------------------------------------------------------------ *)

let cmp_tag op = Printf.sprintf "<%s>" (Promotion.cmp_op_name op)

let pstep_label (s : Physical.pstep) : string =
  Printf.sprintf "%s[%s::%s]"
    (match s.Physical.ps_impl with
    | Physical.Index_scan -> "IndexScan"
    | Physical.Tree_walk -> "TreeWalk")
    (Ast.axis_to_string s.Physical.ps_axis)
    (Ast.node_test_to_string s.Physical.ps_test)

let stream_call_tag (sc : Physical.stream_call) : string =
  match sc with
  | Physical.SExists _ -> "early-exit"
  | Physical.SCount -> "index-count"
  | Physical.SSubseq -> "prefix"

let outer_tag = function
  | None -> ""
  | Some q -> Printf.sprintf "[outer %s]" q

(* One-line label of a physical operator.  Mirror operators reuse the
   logical labels (so instrumented cardinality reports stay comparable
   across the two algebras); the strategy-carrying operators name their
   choice: PHashJoin<eq>[build=left], StreamSelect[limit=1], ... *)
let physical_label (p : Physical.t) : string =
  let open Physical in
  match p.pop with
  | PInput -> "IN"
  | PEmpty -> "Empty"
  | PScalar a -> Printf.sprintf "Scalar[%s]" (Atomic.to_string a)
  | PSeq _ -> "Sequence"
  | PElement (n, _) -> Printf.sprintf "Element[%s]" n
  | PAttribute (n, _) -> Printf.sprintf "Attribute[%s]" n
  | PText _ -> "Text"
  | PComment _ -> "Comment"
  | PPi (n, _) -> Printf.sprintf "PI[%s]" n
  | PSteps { steps; ordered; par; _ } ->
      Printf.sprintf "Steps[%d%s%s]" (List.length steps)
        (if ordered then ",ordered" else "")
        (if par > 1 then Printf.sprintf ",par=%d" par else "")
  | PTreeProject _ -> "TreeProject[paths]"
  | PCastable (tn, _, _) ->
      Printf.sprintf "Castable[%s]" (Atomic.type_name_to_string tn)
  | PCast (tn, _, _) -> Printf.sprintf "Cast[%s]" (Atomic.type_name_to_string tn)
  | PValidate _ -> "Validate"
  | PTypeMatches (ty, _) ->
      Printf.sprintf "TypeMatches[%s]" (Seqtype.to_string ty)
  | PTypeAssert (ty, _) -> Printf.sprintf "TypeAssert[%s]" (Seqtype.to_string ty)
  | PVar q -> Printf.sprintf "Var[%s]" q
  | PCall (f, _) -> Printf.sprintf "Call[%s]" f
  | PCallStream (sc, f, _) ->
      Printf.sprintf "StreamCall[%s,%s]" f (stream_call_tag sc)
  | PCond _ -> "Cond"
  | PQuantified (q, v, _, _) ->
      Printf.sprintf "%s[%s]"
        (match q with Ast.Some_quant -> "Some" | Ast.Every_quant -> "Every")
        v
  | PParse _ -> "Parse"
  | PSerialize (uri, _) -> Printf.sprintf "Serialize[%s]" uri
  | PTupleConstruct [] -> "[]"
  | PTupleConstruct fields ->
      Printf.sprintf "[%s]" (String.concat ";" (List.map fst fields))
  | PFieldAccess q -> Printf.sprintf "IN#%s" q
  | PSelect _ -> "Select"
  | PStreamSelect { bound; _ } -> Printf.sprintf "StreamSelect[limit=%d]" bound
  | PProduct _ -> "Product"
  | PNestedLoop { outer; pred; _ } ->
      Printf.sprintf "PNestedLoop%s%s"
        (match pred with PWholePred _ -> "" | PSplitPred { op; _ } -> cmp_tag op)
        (outer_tag outer)
  | PHashJoin { outer; build; par; _ } ->
      Printf.sprintf "PHashJoin<eq>[build=%s%s]%s" (build_side_name build)
        (if par > 1 then Printf.sprintf ",par=%d" par else "")
        (outer_tag outer)
  | PSortJoin { outer; op; _ } ->
      Printf.sprintf "PSortJoin%s%s" (cmp_tag op) (outer_tag outer)
  | PMaterialize _ -> "Materialize"
  | PRelational { rplan; rfields; _ } ->
      Printf.sprintf "Relational[%d ops -> %s]"
        (Xqc_rel.Rel_algebra.size rplan)
        (String.concat ";" rfields)
  | PMap _ -> "Map"
  | POMap (q, _) -> Printf.sprintf "OMap[%s]" q
  | PMapConcat _ -> "MapConcat"
  | POMapConcat (q, _, _) -> Printf.sprintf "OMapConcat[%s]" q
  | PMapIndex (q, _) -> Printf.sprintf "MapIndex[%s]" q
  | PMapIndexStep (q, _) -> Printf.sprintf "MapIndexStep[%s]" q
  | POrderBy (specs, _) ->
      Printf.sprintf "OrderBy[%s]"
        (String.concat ","
           (List.map
              (fun s ->
                match s.psdir with
                | Ast.Ascending -> "asc"
                | Ast.Descending -> "desc")
              specs))
  | PGroupBy (g, _) ->
      Printf.sprintf "GroupBy[%s,[%s],[%s]]" g.pg_agg
        (String.concat ";" g.pg_indices)
        (String.concat ";" g.pg_nulls)
  | PMapFromItem _ -> "MapFromItem"
  | PMapToItem _ -> "MapToItem"
  | PMapSome _ -> "MapSome"
  | PMapEvery _ -> "MapEvery"

let est_num (x : float) : string =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.1f" x

(* The physical plan, one operator per line with the planner's estimated
   output cardinality and cumulative cost; fused navigation chains list
   their steps (with per-step estimates) under the Steps node. *)
let physical_to_string (p : Physical.t) : string =
  let buf = Buffer.create 1024 in
  let rec go indent (p : Physical.t) =
    let e = p.Physical.pest in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (est_rows=%s cost=%s)\n" (String.make indent ' ')
         (physical_label p) (est_num e.Physical.est_rows)
         (est_num e.Physical.est_cost));
    (match p.Physical.pop with
    | Physical.PSteps { steps; _ } ->
        List.iter
          (fun s ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s  (est_rows=%s)\n"
                 (String.make (indent + 2) ' ')
                 (pstep_label s)
                 (est_num s.Physical.ps_est)))
          steps
    | _ -> ());
    List.iter (go (indent + 2)) (Physical.children p)
  in
  go 0 p;
  Buffer.contents buf

let physical_query_to_string (q : Physical.query) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "function %s(%s):\n%s" f.Physical.pf_name
           (String.concat ", " f.Physical.pf_params)
           (physical_to_string f.Physical.pf_body)))
    q.Physical.pfunctions;
  List.iter
    (fun (v, p) ->
      Buffer.add_string buf
        (Printf.sprintf "global $%s:\n%s" v (physical_to_string p)))
    q.Physical.pglobals;
  Buffer.add_string buf (physical_to_string q.Physical.pmain);
  Buffer.contents buf
